// Command mailsim demonstrates the live SMTP substrate: it starts a
// real RFC 5321 receiver MTA on loopback whose policy callbacks run the
// same checks as the bulk simulator (user existence, quota, greylist,
// blocklist, content filter, STARTTLS mandate), then delivers a set of
// emails through the real client and prints each wire-level verdict.
//
// Usage:
//
//	mailsim            # run the scripted scenario
//	mailsim -listen 127.0.0.1:2525 -serve   # leave the server running
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/greylist"
	"repro/internal/mail"
	"repro/internal/ndr"
	"repro/internal/smtp"
	"repro/internal/spamfilter"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mailsim: ")
	var (
		listen = flag.String("listen", "127.0.0.1:0", "listen address")
		serve  = flag.Bool("serve", false, "keep serving after the scenario")
	)
	flag.Parse()

	users := map[string]bool{"bob": true, "carol": true, "dave": true}
	full := map[string]bool{"carol": true}
	gl := greylist.New(2*time.Second, time.Hour)
	filter := spamfilter.NewCanonical("demo-receiver")
	blocked := map[string]bool{} // client IPs "on the blocklist"

	backend := smtp.Backend{
		Hostname: "mx1.demo.example",
		MaxSize:  1 << 20,
		OnConnect: func(s *smtp.Session) *smtp.Reply {
			if blocked[s.RemoteAddr] {
				return smtp.FromNDRLine("554 Service unavailable; Client host [" + s.RemoteAddr + "] blocked using Spamhaus")
			}
			return nil
		},
		OnRcpt: func(s *smtp.Session, from, to string) *smtp.Reply {
			addr, err := mail.ParseAddress(to)
			if err != nil {
				return smtp.NewReply(553, mail.EnhBadMailbox, "malformed recipient")
			}
			// Greylisting guards dave's mailbox in this scenario (a real
			// deployment would greylist every unseen tuple).
			if addr.Local == "dave" {
				if v := gl.Check(s.RemoteAddr, from, to, time.Now()); v == greylist.Defer {
					return smtp.NewReply(450, mail.EnhGreylisted, "Greylisted, please try again in 2 seconds")
				}
			}
			if !users[addr.Local] {
				line := ndr.Catalog[ndr.TemplatesFor(ndr.T8NoSuchUser)[0]].Render(ndr.Params{Addr: to, Local: addr.Local, Vendor: "demo"})
				return smtp.FromNDRLine(line)
			}
			if full[addr.Local] {
				return smtp.NewReply(452, mail.EnhMailboxFull, "The email account that you tried to reach is over quota")
			}
			return nil
		},
		OnData: func(s *smtp.Session, data []byte) *smtp.Reply {
			if filter.Classify(strings.Fields(string(data))) {
				return smtp.NewReply(550, mail.EnhSecurityPolicy, "Message contains spam or virus.")
			}
			return nil
		},
	}
	srv := smtp.NewServer(backend)
	if err := srv.ListenAndServe(*listen); err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	addr := srv.Addr().String()
	fmt.Printf("receiver MTA listening on %s\n\n", addr)

	scenario := []struct {
		desc, from, to, body string
	}{
		{"existing user", "alice@corp.example", "bob@demo.example", "meeting agenda attached"},
		{"greylisted first attempt", "alice@corp.example", "dave@demo.example", "quarterly-report draft"},
		{"non-existent user (typo)", "alice@corp.example", "bbo@demo.example", "meeting agenda"},
		{"mailbox over quota", "alice@corp.example", "carol@demo.example", "invoice attached"},
		{"spam content", "offers@bulk.example", "bob@demo.example", "free-money crypto-double prize winner lottery act-now"},
	}
	opts := smtp.SendOptions{Timeout: 5 * time.Second}
	for _, sc := range scenario {
		rep, err := smtp.SendMail(addr, sc.from, sc.to, []byte(sc.body), opts)
		if err != nil {
			log.Fatalf("%s: %v", sc.desc, err)
		}
		fmt.Printf("%-28s -> %s\n", sc.desc, rep)
	}

	// Greylist retry: same tuple after the delay is accepted.
	fmt.Println("\nretrying greylisted tuple after the minimum delay...")
	time.Sleep(2100 * time.Millisecond)
	rep, err := smtp.SendMail(addr, "alice@corp.example", "dave@demo.example", []byte("quarterly-report draft"), opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s -> %s\n", "greylisted retry", rep)

	if *serve {
		fmt.Println("\nserving until interrupted (ctrl-c)...")
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		<-ch
	}
}
