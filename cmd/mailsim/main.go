// Command mailsim demonstrates the live SMTP substrate: it builds a
// small generated world, serves one of its receiver domains through a
// real RFC 5321 MTA on loopback — the policy callbacks are the SAME
// stage chain the bulk simulator executes — then delivers a scripted
// set of emails through the real client and prints each wire-level
// verdict.
//
// Usage:
//
//	mailsim                                  # run the scripted scenario
//	mailsim -list-stages                     # show the policy-stage catalog
//	mailsim -domain gmail.com -serve         # serve a specific world domain
//	mailsim -disable-stage source-rate       # ablate chain stages on the wire
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/clock"
	"repro/internal/policy"
	"repro/internal/simrng"
	"repro/internal/smtp"
	"repro/internal/smtpbridge"
	"repro/internal/spamfilter"
	"repro/internal/world"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mailsim: ")
	var (
		listen     = flag.String("listen", "127.0.0.1:0", "listen address")
		serve      = flag.Bool("serve", false, "keep serving after the scenario")
		domain     = flag.String("domain", "", "world domain to serve (default: first plain-policy domain)")
		seed       = flag.Uint64("seed", 42, "world seed")
		disable    = flag.String("disable-stage", "", "comma-separated policy stages to ablate (see -list-stages)")
		force      = flag.String("force-stage", "", "comma-separated policy stages forced to reject")
		listStages = flag.Bool("list-stages", false, "print the policy-stage catalog and exit")
	)
	flag.Parse()

	if *listStages {
		fmt.Printf("%-14s %-8s %-6s %s\n", "STAGE", "PHASE", "TYPE", "CHECK")
		for _, s := range policy.Stages() {
			typ := s.Type.String()
			if typ == "T0" {
				typ = "-"
			}
			fmt.Printf("%-14s %-8s %-6s %s\n", s.Name, s.Phase, typ, s.Doc)
		}
		return
	}
	disabled, err := policy.ParseStageList(*disable)
	if err != nil {
		log.Fatalf("-disable-stage: %v", err)
	}
	forced, err := policy.ParseStageList(*force)
	if err != nil {
		log.Fatalf("-force-stage: %v", err)
	}

	cfg := world.TinyConfig()
	cfg.Seed = *seed
	w := world.New(cfg)

	d := pickDomain(w, *domain)
	at := clock.StudyStart.AddDate(0, 0, 30).Add(10 * time.Hour)
	srv := smtp.NewServer(smtpbridge.Backend(w, d, smtpbridge.Options{
		At:            at,
		Seed:          *seed,
		DisableStages: disabled,
		ForceStages:   forced,
	}))
	if err := srv.ListenAndServe(*listen); err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	addr := srv.Addr().String()
	fmt.Printf("receiver MTA for %s (rank %d) listening on %s\n", d.Name, d.Rank, addr)
	fmt.Printf("policy: dnsbl=%v greylist=%v auth=%v tls=%d ambiguous=%v\n\n",
		d.Policy.UsesDNSBL, d.Policy.Greylisting, d.Policy.EnforceAuth, d.Policy.TLS, d.Policy.AmbiguousNDR)

	if len(d.UserList) == 0 {
		log.Fatalf("domain %s has no mailboxes", d.Name)
	}
	known := d.UserList[0] + "@" + d.Name
	spam := strings.Join(spamfilter.GenerateTokens(simrng.New(*seed).Stream("mailsim"), 0.97, 14), " ")
	scenario := []struct {
		desc, from, to, body string
	}{
		{"existing user", "alice@corp.example", known, "meeting agenda attached"},
		{"non-existent user (typo)", "alice@corp.example", "no-such-user-zz@" + d.Name, "meeting agenda"},
		{"spam content", "offers@bulk.example", known, spam},
		{"existing user again", "alice@corp.example", known, "quarterly-report draft"},
		{"and again (rate window)", "alice@corp.example", known, "timesheet reminder"},
		{"and again (rate window)", "alice@corp.example", known, "invoice attached"},
	}
	opts := smtp.SendOptions{Timeout: 5 * time.Second}
	for _, sc := range scenario {
		rep, err := smtp.SendMail(addr, sc.from, sc.to, []byte(sc.body), opts)
		if err != nil {
			log.Fatalf("%s: %v", sc.desc, err)
		}
		fmt.Printf("%-28s -> %s\n", sc.desc, rep)
	}
	fmt.Println("\nthe repeated sends walk into the per-source rate window (T7);")
	fmt.Println("rerun with -disable-stage source-rate to ablate that stage.")

	if *serve {
		fmt.Println("\nserving until interrupted (ctrl-c)...")
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		<-ch
	}
}

// pickDomain returns the named domain, or the highest-ranked domain
// whose policy lets the scripted scenario show plain verdicts.
func pickDomain(w *world.World, name string) *world.ReceiverDomain {
	if name != "" {
		d, ok := w.DomainByName[name]
		if !ok {
			log.Fatalf("unknown domain %q (world has %d domains)", name, len(w.Domains))
		}
		return d
	}
	for _, d := range w.Domains {
		p := d.Policy
		if !p.AmbiguousNDR && !p.UsesDNSBL && !p.Greylisting &&
			p.TLS != world.TLSMandatory && p.QuirkProb == 0 && len(d.UserList) > 0 {
			return d
		}
	}
	return w.Domains[0]
}
