// Command ebrc trains and evaluates the Email Bounce Reason Classifier
// in isolation, replicating the paper's evaluation protocol: train on
// template-matched raw NDR messages, then manually-verify a 100-message
// sample per type via the confusion matrix (paper: 93.85% recall,
// 91.24% precision).
//
// Usage:
//
//	ebrc -train 1000 -eval 100 -seed 7
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"sync"

	"repro/internal/ebrc"
	"repro/internal/ndr"
	"repro/internal/simrng"
)

func main() {
	log.SetFlags(0)
	var (
		trainN  = flag.Int("train", 1000, "training samples per type")
		evalN   = flag.Int("eval", 100, "evaluation samples per type (the paper's manual check)")
		seed    = flag.Uint64("seed", 7, "sampling seed")
		noise   = flag.Float64("noise", 0.5, "per-message probability of wire-level corruption in the eval set")
		workers = flag.Int("workers", 1, "prediction fan-out width (results are identical for any value)")
	)
	flag.Parse()

	train := corpus(*trainN, simrng.New(*seed))
	test := corpus(*evalN, simrng.New(*seed^0x5eed))
	// Real NDRs are messier than freshly rendered templates: truncated
	// lines, injected gateway prefixes, dropped words. Perturb the eval
	// set so the measurement reflects the paper's conditions.
	nrng := simrng.New(*seed ^ 0xab15e)
	for i := range test {
		if nrng.Bool(*noise) {
			test[i].Text = corrupt(nrng, test[i].Text)
		}
	}
	cls := ebrc.Train(train)

	// Prediction is read-only on the trained model, so the eval set
	// splits across workers; the confusion matrix fills in eval order.
	nw := *workers
	if nw < 1 {
		nw = 1
	}
	preds := make([]ndr.Type, len(test))
	var wg sync.WaitGroup
	for wk := 0; wk < nw; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			for i := wk; i < len(test); i += nw {
				preds[i], _ = cls.Predict(test[i].Text)
			}
		}(wk)
	}
	wg.Wait()
	cm := ebrc.NewConfusion(cls.Classes())
	for i, s := range test {
		cm.Add(s.Type, preds[i])
	}

	fmt.Printf("EBRC evaluation over %d samples/type (trained on %d/type)\n", *evalN, *trainN)
	fmt.Printf("%-5s %8s %9s\n", "type", "recall", "precision")
	for _, t := range cls.Classes() {
		fmt.Printf("%-5s %7.2f%% %8.2f%%\n", t, cm.Recall(t)*100, cm.Precision(t)*100)
	}
	fmt.Printf("\nmacro recall:    %6.2f%% (paper: 93.85%%)\n", cm.MacroRecall()*100)
	fmt.Printf("macro precision: %6.2f%% (paper: 91.24%%)\n", cm.MacroPrecision()*100)
	fmt.Printf("accuracy:        %6.2f%%\n", cm.Accuracy()*100)

	top := cm.TopConfusions(5)
	if len(top) > 0 {
		fmt.Println("\ntop confusions (truth -> predicted):")
		for _, c := range top {
			fmt.Printf("  %s -> %s: %d\n", c.Truth, c.Pred, c.Count)
		}
	}
	if cm.MacroRecall() < 0.85 || cm.MacroPrecision() < 0.85 {
		fmt.Fprintln(os.Stderr, "ebrc: WARNING: below the paper's >90% operating point")
		os.Exit(1)
	}
}

// corpus renders n labeled samples per non-ambiguous catalog template.
func corpus(n int, rng *simrng.RNG) []ebrc.Sample {
	var out []ebrc.Sample
	for _, typ := range ndr.AllTypes {
		idxs := ndr.NonAmbiguousTemplatesFor(typ)
		if len(idxs) == 0 {
			continue
		}
		per := n / len(idxs)
		if per < 1 {
			per = 1
		}
		for _, ti := range idxs {
			for k := 0; k < per; k++ {
				out = append(out, ebrc.Sample{Text: ndr.Catalog[ti].Render(randParams(rng)), Type: typ})
			}
		}
	}
	return out
}

// corrupt applies one wire-level mutation: gateway prefix injection,
// word dropout, truncation, or casing damage.
func corrupt(rng *simrng.RNG, line string) string {
	words := strings.Fields(line)
	switch rng.IntN(4) {
	case 0:
		return "smtp;" + line // relay prefix
	case 1:
		if len(words) > 3 {
			i := 1 + rng.IntN(len(words)-2)
			words = append(words[:i], words[i+1:]...)
		}
		return strings.Join(words, " ")
	case 2:
		if len(words) > 4 {
			words = words[:len(words)-1-rng.IntN(2)]
		}
		return strings.Join(words, " ")
	default:
		return strings.ToUpper(line)
	}
}

func randParams(rng *simrng.RNG) ndr.Params {
	return ndr.Params{
		Addr:   fmt.Sprintf("u%d@d%d.com", rng.IntN(100000), rng.IntN(5000)),
		Local:  fmt.Sprintf("u%d", rng.IntN(100000)),
		Domain: fmt.Sprintf("d%d.com", rng.IntN(5000)),
		IP:     fmt.Sprintf("%d.%d.%d.%d", 5+rng.IntN(200), rng.IntN(250), rng.IntN(250), 1+rng.IntN(250)),
		MX:     fmt.Sprintf("mx%d.d%d.com", rng.IntN(4), rng.IntN(5000)),
		BL:     []string{"Spamhaus", "SpamCop", "Barracuda"}[rng.IntN(3)],
		Vendor: fmt.Sprintf("v%x", rng.Uint64()&0xffffff),
		Sec:    fmt.Sprintf("%d", 60+rng.IntN(600)),
		Size:   fmt.Sprintf("%d", 1000000+rng.IntN(50000000)),
	}
}
