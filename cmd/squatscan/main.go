// Command squatscan runs the Section-5 email-address squatting
// evaluation: the vulnerable-domain funnel, the username
// registration-UI probe, exposure quantification, the Figure-9 weekly
// timeline, and the re-registration WHOIS audit.
//
// Usage:
//
//	squatscan -emails 400000 -seed 42 -min-user-emails 3
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro"
	"repro/internal/advise"
	"repro/internal/report"
	"repro/internal/squat"
	"repro/internal/world"
)

func main() {
	log.SetFlags(0)
	var (
		emails   = flag.Int("emails", 400_000, "corpus size")
		protect  = flag.Int("protect", 30, "protective registrations to plan")
		seed     = flag.Uint64("seed", 42, "world seed")
		minUser  = flag.Int("min-user-emails", 3, "incoming-email threshold for username probing")
		maxProbe = flag.Int("max-probes", 875, "maximum username registration probes (paper: 875)")
		scan     = flag.String("scan-date", "2023-12-03", "domain availability scan date")
		audit    = flag.String("audit-date", "2024-02-03", "WHOIS re-registration audit date")
	)
	flag.Parse()

	cfg := world.DefaultConfig()
	cfg.TotalEmails = *emails
	cfg.Seed = *seed
	study := bounce.Run(bounce.Options{Config: cfg})

	sc := squat.DefaultConfig()
	sc.MinUsernameEmails = *minUser
	sc.MaxUsernameProbes = *maxProbe
	sc.ScanDate = mustDate(*scan)
	sc.AuditDate = mustDate(*audit)

	res := study.Squat(sc)
	report.Squat(os.Stdout, res)
	report.Typos(os.Stdout, study.Detections)

	// The paper's interventions: protective registration of the top-30
	// most-mailed vulnerable domains, and one rate-limited notification
	// per exposed sender.
	fmt.Println("\n== Protective registration plan (paper: 30 domains) ==")
	for _, f := range advise.ProtectivePlan(res, *protect) {
		class := "expired"
		if f.IsTypo {
			class = "typo"
		}
		fmt.Printf("  register %-28s %-8s %4d emails from %3d senders\n", f.Domain, class, f.Emails, f.Senders)
	}
	plan := advise.NotificationPlan(study.Analysis, res, time.Now().UTC().Truncate(time.Minute))
	fmt.Printf("\n== Notification plan: %d senders, one email per minute (paper: 672) ==\n", len(plan))
	for i, n := range plan {
		if i >= 5 {
			fmt.Printf("  ... and %d more\n", len(plan)-5)
			break
		}
		fmt.Printf("  %s -> %s: %s\n", n.SendAt.Format("15:04"), n.To, n.Subject)
	}
}

func mustDate(s string) time.Time {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		log.Fatalf("squatscan: bad date %q: %v", s, err)
	}
	return t
}
