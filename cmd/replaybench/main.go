// Command replaybench measures crash-recovery cost: how long a bounced
// restart takes to rebuild its analysis state from a checkpoint plus a
// WAL tail, versus a cold replay of the entire log. The setup mirrors
// production — records flow through a durable server, a checkpoint is
// taken at ~90% of the stream, and the process is then torn down the
// crash-shaped way (no final checkpoint) — so the timed recovery is
// exactly what the next boot would do. Both recovery paths are
// asserted state-identical before any timing is reported.
//
// Usage:
//
//	replaybench                       # 100k emails, append to BENCH_bounced.json
//	replaybench -emails 1000000 -out -  # the 1M row, print to stdout
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"log"
	"os"
	"time"

	"repro"
	"repro/internal/analysis"
	"repro/internal/bounced"
	"repro/internal/dataset"
	"repro/internal/store"
	"repro/internal/world"
)

type result struct {
	Bench             string  `json:"bench"`
	Timestamp         string  `json:"timestamp"`
	Records           int     `json:"records"`
	CheckpointRecords uint64  `json:"checkpoint_records"`
	TailRecords       int     `json:"tail_records"`
	WALBytes          int64   `json:"wal_bytes"`
	IngestMs          float64 `json:"ingest_ms"`
	CheckpointMs      float64 `json:"checkpoint_ms"`
	RecoverMs         float64 `json:"recover_ms"`
	ColdReplayMs      float64 `json:"cold_replay_ms"`
	RecoverVsCold     float64 `json:"recover_vs_cold_ratio"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("replaybench: ")
	var (
		emails = flag.Int("emails", 100_000, "corpus size to generate in memory")
		seed   = flag.Uint64("seed", 42, "world seed")
		out    = flag.String("out", "BENCH_bounced.json", "append the result line here ('-' for stdout)")
	)
	flag.Parse()

	cfg := world.DefaultConfig()
	cfg.TotalEmails = *emails
	cfg.Seed = *seed
	_, records := bounce.Generate(cfg)
	// Round-trip the corpus through the NDJSON codec once, the way any
	// real ingest arrives: the states being diffed must not depend on
	// whether a record came from memory or from a WAL replay.
	var dec dataset.Decoder
	for i := range records {
		b, err := records[i].MarshalJSON()
		if err != nil {
			log.Fatal(err)
		}
		records[i] = dataset.Record{}
		if err := dec.Decode(b, &records[i]); err != nil {
			log.Fatal(err)
		}
	}
	res := result{
		Bench:     "replay",
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Records:   len(records),
	}

	dir, err := os.MkdirTemp("", "replaybench-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// One giant segment: checkpoint pruning never removes history, so
	// the cold-replay baseline can still scan the log from record zero.
	open := func(readOnly bool) *store.FS {
		eng, err := store.Open(store.FSOptions{Dir: dir, SegmentBytes: 1 << 40, ReadOnly: readOnly})
		if err != nil {
			log.Fatal(err)
		}
		return eng
	}

	srv, err := bounced.New(bounced.Config{Store: open(false), QueueDepth: 4096})
	if err != nil {
		log.Fatal(err)
	}
	cut := len(records) * 9 / 10
	start := time.Now()
	feed := func(part []dataset.Record) {
		for i := range part {
			if err := srv.Ingest(&part[i]); err != nil {
				log.Fatal(err)
			}
		}
		for srv.Consumed() < srv.Accepted() {
			time.Sleep(time.Millisecond)
		}
	}
	feed(records[:cut])
	ingestHead := time.Since(start)
	cpStart := time.Now()
	if err := srv.CheckpointNow(); err != nil {
		log.Fatal(err)
	}
	res.CheckpointMs = ms(time.Since(cpStart))
	start = time.Now()
	feed(records[cut:])
	res.IngestMs = ms(ingestHead + time.Since(start))
	res.CheckpointRecords = uint64(cut)
	res.TailRecords = len(records) - cut
	srv.Abort() // crash-shaped teardown: no final checkpoint

	// Timed path 1: what the next boot does — newest checkpoint, then
	// the ~10% WAL tail. The clock stops at a serviceable state, i.e.
	// with the pipeline builders trained to the full record count:
	// CaptureState is the catch-up (the checkpoint's builders arrive
	// pre-trained, so only the tail needs mining).
	start = time.Now()
	recInc, info, err := bounced.RecoverIncremental(dir, analysis.DefaultPipelineConfig())
	if err != nil {
		log.Fatal(err)
	}
	recState := recInc.CaptureState()
	res.RecoverMs = ms(time.Since(start))
	if recInc.Len() != len(records) || info.Replayed != res.TailRecords {
		log.Fatalf("recovery holds %d records (%d replayed), want %d (%d)",
			recInc.Len(), info.Replayed, len(records), res.TailRecords)
	}

	// Timed path 2: the cold baseline — ignore the checkpoint, rebuild
	// the accumulator by replaying the whole log, then train from zero
	// to reach the same serviceable state.
	eng := open(true)
	coldInc := analysis.NewIncremental(analysis.DefaultPipelineConfig())
	start = time.Now()
	coldInfo, err := eng.Tail(0, func(_ uint64, rec *dataset.Record) error {
		coldInc.Add(rec)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	coldState := coldInc.CaptureState()
	res.ColdReplayMs = ms(time.Since(start))
	st := eng.Stats()
	res.WALBytes = st.WALBytes
	eng.Close()
	if coldInfo.Replayed != len(records) {
		log.Fatalf("cold replay saw %d records, want %d", coldInfo.Replayed, len(records))
	}

	// Both paths must land on the same state before the numbers mean
	// anything: the serialized captures are compared byte for byte.
	recBlob, err := recState.MarshalBinary()
	if err != nil {
		log.Fatal(err)
	}
	coldBlob, err := coldState.MarshalBinary()
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(recBlob, coldBlob) {
		log.Fatal("checkpoint recovery and cold replay produced different states")
	}
	if res.ColdReplayMs > 0 {
		res.RecoverVsCold = res.RecoverMs / res.ColdReplayMs
	}
	log.Printf("%d records: recover %.1fms (checkpoint %d + tail %d) vs cold replay %.1fms (%.3fx)",
		res.Records, res.RecoverMs, res.CheckpointRecords, res.TailRecords, res.ColdReplayMs, res.RecoverVsCold)
	if res.RecoverMs >= res.ColdReplayMs {
		log.Fatal("recovery from checkpoint is not faster than cold replay")
	}

	line, err := json.Marshal(res)
	if err != nil {
		log.Fatal(err)
	}
	line = append(line, '\n')
	if *out == "-" {
		os.Stdout.Write(line)
		return
	}
	f, err := os.OpenFile(*out, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write(line); err != nil {
		log.Fatal(err)
	}
	log.Printf("-> %s", *out)
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
