// Command bounced runs the bounce-analytics service: a long-running
// HTTP server that ingests Figure-3 delivery records online and serves
// the paper's tables and figures live, over exactly the records
// ingested so far. GET /v1/report is byte-identical to a bounceanalyze
// batch run over the same records.
//
// Usage:
//
//	bounced                                # serve, ingest via POST /v1/records
//	bounced -generate -emails 400000       # feed an in-process delivery run
//	bounced -replay dataset.jsonl.gz       # preload a bouncegen file, then serve
//	bounced loadgen -in dataset.jsonl -url http://localhost:8425
//	bounced loadgen -in dataset.jsonl -spawn -out BENCH_bounced.json
//	bounced -fault-spec 'seed=7,torn=0.05' -read-timeout 5s   # hostile-stream drills
//	bounced loadgen -in dataset.jsonl -spawn -chaos 'seed=3,torn=0.3,dup=0.5'
//	bounced -data-dir /var/lib/bounced -fsync batch           # durable: WAL + checkpoints, kill -9 safe
//
// Cluster mode (DESIGN.md §10) splits one logical service across shard
// nodes plus a stateless coordinator; the coordinator's merged report
// is byte-identical to a single node ingesting the full stream:
//
//	bounced -role=shard -shard-index=0 -shard-count=3 -addr :8425
//	bounced -role=shard -shard-index=1 -shard-count=3 -addr :8426
//	bounced -role=shard -shard-index=2 -shard-count=3 -addr :8427
//	bounced -role=coordinator -shards http://h0:8425,http://h1:8426,http://h2:8427
//
// Replication (DESIGN.md §12) pairs a durable primary with standbys
// that stream its checkpoint plus WAL tail and stay hot; on primary
// death a standby promotes (POST /v1/promote, or automatically after
// -failover-timeout) and serves the identical report with zero
// acked-record loss. A router gives clients one stable address across
// the failover:
//
//	bounced -data-dir /var/a -repl-ack 1 -addr :8425
//	bounced -role=standby -primary http://h0:8425 -data-dir /var/b -failover-timeout 5s -addr :8426
//	bounced -role=router -peers http://h0:8425,http://h1:8426 -addr :8427
//
// Replicated shards (DESIGN.md §14) compose the two: each shard is a
// replica set — a shard-role primary with standbys carrying the same
// -shard-index/-shard-count, fronted by its own router — and the
// coordinator fans in through the router URLs, following each shard's
// elected highest-epoch primary:
//
//	bounced -role=shard -shard-index=0 -shard-count=2 -data-dir /var/s0a -repl-ack 1 -addr :8425
//	bounced -role=standby -shard-index=0 -shard-count=2 -primary http://h0:8425 -data-dir /var/s0b -failover-timeout 5s -addr :8426
//	bounced -role=router -peers http://h0:8425,http://h0:8426 -addr :8427
//	... same trio for shard 1 on :8428-:8430 ...
//	bounced -role=coordinator -shards http://h0:8427,http://h1:8430
//
// Endpoints: POST /v1/records (NDJSON, gzip-aware), GET /v1/report
// ?section=table1,fig8, GET /v1/stats, POST /v1/snapshot, GET
// /v1/partial (shard snapshot for coordinators), GET /metrics
// (Prometheus text), GET /healthz.
//
// SIGINT/SIGTERM shuts down gracefully: HTTP ingestion stops, the
// queue drains completely into the store (no accepted record is
// dropped), and a final report is flushed to stdout.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/bounced"
	"repro/internal/dataset"
	"repro/internal/delivery"
	"repro/internal/faultinject"
	"repro/internal/replication"
	"repro/internal/store"
	"repro/internal/world"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bounced: ")
	// bounced is an in-memory analytics store: the resident dataset IS
	// the live heap, and Go's default 100% growth target makes the
	// collector rescan every stored record's pointers once per heap
	// doubling — >10% of replay CPU by GODEBUG=gctrace. Trading memory
	// headroom for fewer rescans is the right default for a retention
	// service; an explicit GOGC env var still wins.
	if os.Getenv("GOGC") == "" {
		debug.SetGCPercent(400)
	}
	if len(os.Args) > 1 && os.Args[1] == "loadgen" {
		loadgenMain(os.Args[2:])
		return
	}
	serveMain(os.Args[1:])
}

func serveMain(args []string) {
	fs := flag.NewFlagSet("bounced", flag.ExitOnError)
	var (
		addr     = fs.String("addr", ":8425", "listen address")
		generate = fs.Bool("generate", false, "feed the service from an in-process delivery engine run")
		replay   = fs.String("replay", "", "preload a JSONL(.gz) dataset before serving")
		emails   = fs.Int("emails", 400_000, "corpus size (generate mode and env replay)")
		seed     = fs.Uint64("seed", 42, "world seed")
		workers  = fs.Int("workers", 1, "delivery fan-out width (generate mode)")
		queue    = fs.Int("queue", 1024, "ingest queue depth (backpressure bound)")
		noEnv    = fs.Bool("no-env", false, "skip world regeneration; env-dependent sections degrade")
		flushSec = fs.String("flush-sections", "overview", "report sections flushed to stdout on shutdown ('' to disable, 'all' for everything)")
		decodeW  = fs.Int("decode-workers", 0, "NDJSON decode fan-out per ingest request (0 = GOMAXPROCS)")
		pprofOn  = fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		faultArg = fs.String("fault-spec", "", "arm deterministic fault injection, e.g. 'seed=7,torn=0.05,stall=2ms' (DESIGN.md §9)")
		readTO   = fs.Duration("read-timeout", 0, "per-request body read deadline; slow-loris cutoff (0 disables)")
		dedupWin = fs.Int("dedup-window", 256, "idempotent X-Batch-Id dedup window, in batches")
		role     = fs.String("role", "single", "node role: single, shard (owns a slice of the 16 substreams), coordinator (merges shard partials), standby (replicates a primary), or router (fronts a replica set)")
		shardIdx = fs.Int("shard-index", 0, "shard/standby role: this node's index in [0, shard-count)")
		shardCnt = fs.Int("shard-count", 0, "shard/standby role: total shards; a record belongs here iff OwnerOf(record, shard-count) == shard-index (standbys carry their shard primary's values so ownership survives promotion)")
		shardArg = fs.String("shards", "", "coordinator role: comma-separated shard base URLs (their order is the merge order)")
		dataDir  = fs.String("data-dir", "", "durability directory (WAL + checkpoints); boot recovers from it, empty = memory-only")
		cpEvery  = fs.Duration("checkpoint-interval", 30*time.Second, "background checkpoint cadence with -data-dir (0 disables; shutdown still checkpoints)")
		fsyncArg = fs.String("fsync", "batch", "WAL fsync mode with -data-dir: batch (per acked batch), always, or off (flush-to-OS only)")
		primary  = fs.String("primary", "", "standby role: the primary's base URL to replicate from")
		sbID     = fs.String("standby-id", "", "standby role: this node's name in the primary's standby registry (default the listen address)")
		pollWait = fs.Duration("poll-interval", 2*time.Second, "standby role: WAL long-poll hold time on the primary")
		failTO   = fs.Duration("failover-timeout", 0, "standby role: auto-promote after this long without a successful sync (0 = manual /v1/promote only)")
		peersArg = fs.String("peers", "", "router role: comma-separated replica-set base URLs to probe and forward to")
		replAck  = fs.Int("repl-ack", 0, "primary: semi-sync — gate each ingest ack on this many standbys having applied the batch (0 = async)")
		replAckT = fs.Duration("repl-ack-timeout", 5*time.Second, "primary: semi-sync ack wait bound; on expiry the client gets a retryable 503")
	)
	fs.Parse(args)

	if *pprofOn {
		// CPU and heap endpoints work unconditionally; contention
		// profiling needs explicit sampling turned on. Rates follow the
		// net/http/pprof documentation: every 1000th contended mutex
		// event, and block events with ≥100µs of cumulative wait —
		// cheap enough to leave on for a profiling run, informative
		// enough to rank the walMu/storeMu critical sections.
		runtime.SetMutexProfileFraction(1000)
		runtime.SetBlockProfileRate(100_000)
	}

	switch *role {
	case "single":
	case "shard":
		if *shardCnt <= 0 || *shardIdx < 0 || *shardIdx >= *shardCnt {
			log.Fatalf("-role=shard needs 0 <= -shard-index < -shard-count (got index %d, count %d)", *shardIdx, *shardCnt)
		}
		if *generate {
			log.Fatal("-generate is incompatible with -role=shard: feed shards over HTTP so records route by ownership")
		}
	case "coordinator":
		if *shardArg == "" {
			log.Fatal("-role=coordinator requires -shards (comma-separated shard base URLs)")
		}
		if *generate || *replay != "" {
			log.Fatal("-role=coordinator holds no records; -generate and -replay are shard-side flags")
		}
		if *dataDir != "" {
			log.Fatal("-role=coordinator holds no records; -data-dir is a single/shard flag")
		}
	case "standby":
		if *primary == "" {
			log.Fatal("-role=standby requires -primary (the primary's base URL)")
		}
		if *dataDir == "" {
			log.Fatal("-role=standby requires -data-dir: a standby replays the primary's WAL into its own durable log so it can survive promotion")
		}
		if *generate || *replay != "" {
			log.Fatal("-role=standby refuses local ingestion; -generate and -replay are primary-side flags")
		}
		// A standby may replicate a *shard* primary; it then carries the
		// same shard coordinates so a promotion keeps enforcing ownership.
		if (*shardCnt != 0 || *shardIdx != 0) && (*shardCnt <= 0 || *shardIdx < 0 || *shardIdx >= *shardCnt) {
			log.Fatalf("standby shard attachment needs 0 <= -shard-index < -shard-count (got index %d, count %d)", *shardIdx, *shardCnt)
		}
	case "router":
		if *peersArg == "" {
			log.Fatal("-role=router requires -peers (comma-separated replica-set base URLs)")
		}
		if *generate || *replay != "" || *dataDir != "" {
			log.Fatal("-role=router holds no records; -generate, -replay, and -data-dir are replica-side flags")
		}
	default:
		log.Fatalf("unknown -role %q (want single, shard, coordinator, standby, or router)", *role)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *role == "router" {
		// Routers hold no records and serve no reports of their own, so
		// they skip the world/env restore entirely.
		var peers []string
		for _, u := range strings.Split(*peersArg, ",") {
			if u = strings.TrimSpace(u); u != "" {
				peers = append(peers, u)
			}
		}
		rt, err := replication.NewRouter(replication.RouterConfig{Peers: peers})
		if err != nil {
			log.Fatal(err)
		}
		go rt.Run(ctx)
		ln, err := net.Listen("tcp", *addr)
		if err != nil {
			log.Fatal(err)
		}
		httpSrv := &http.Server{Handler: rt.Handler()}
		go func() {
			if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Fatal(err)
			}
		}()
		log.Printf("router listening on %s over %d peers", ln.Addr(), len(peers))
		<-ctx.Done()
		stop()
		shCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shCtx); err != nil {
			log.Printf("http shutdown: %v", err)
		}
		return
	}

	cfg := world.DefaultConfig()
	cfg.TotalEmails = *emails
	cfg.Seed = *seed

	sCfg := bounced.Config{
		QueueDepth: *queue, Seed: *seed, DecodeWorkers: *decodeW, EnablePprof: *pprofOn,
		ReadTimeout: *readTO, DedupWindow: *dedupWin,
		Standby: *role == "standby", ReplAck: *replAck, ReplAckTimeout: *replAckT,
	}
	if *faultArg != "" {
		sp, err := faultinject.ParseSpec(*faultArg)
		if err != nil {
			log.Fatal(err)
		}
		sCfg.Faults = sp
		log.Printf("fault injection armed: %s", sp)
	}
	var engine *delivery.Engine
	var w *world.World
	switch {
	case *generate:
		w = world.New(cfg)
		engine = delivery.New(w)
		sCfg.Env = bounce.NewEnvironment(w)
		sCfg.PolicyMetrics = engine.Metrics
	case !*noEnv:
		// Ingest mode: regenerate the world from the seed and replay the
		// delivery (discarding records) to restore the stateful external
		// services — blocklist listings accrue during delivery — exactly
		// like bounceanalyze -in does.
		log.Printf("restoring environment (seed %d, %d emails); -no-env skips this", *seed, *emails)
		w = world.New(cfg)
		e := delivery.New(w)
		if err := e.ParallelRunCtx(ctx, *workers, func(dataset.Record, *world.Submission, delivery.Truth) {}); err != nil {
			log.Fatal(err)
		}
		sCfg.Env = bounce.NewEnvironment(w)
		sCfg.PolicyMetrics = e.Metrics
	}

	if *role == "coordinator" {
		var urls []string
		for _, u := range strings.Split(*shardArg, ",") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, u)
			}
		}
		coord, err := bounced.NewCoordinator(bounced.CoordinatorConfig{ShardURLs: urls, Env: sCfg.Env})
		if err != nil {
			log.Fatal(err)
		}
		ln, err := net.Listen("tcp", *addr)
		if err != nil {
			log.Fatal(err)
		}
		httpSrv := &http.Server{Handler: coord.Handler()}
		go func() {
			if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Fatal(err)
			}
		}()
		log.Printf("coordinator listening on %s over %d shards", ln.Addr(), len(urls))
		<-ctx.Done()
		stop()
		// Coordinators hold no records: shutdown is just closing the
		// listener, no drain and no final report.
		shCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shCtx); err != nil {
			log.Printf("http shutdown: %v", err)
		}
		return
	}
	if *role == "shard" || (*role == "standby" && *shardCnt > 0) {
		sCfg.ShardCount = *shardCnt
		sCfg.ShardIndex = *shardIdx
	}

	if *dataDir != "" {
		mode, err := store.ParseFsyncMode(*fsyncArg)
		if err != nil {
			log.Fatal(err)
		}
		eng, err := store.Open(store.FSOptions{Dir: *dataDir, Mode: mode, Logf: log.Printf})
		if err != nil {
			log.Fatal(err)
		}
		sCfg.Store = eng
		sCfg.CheckpointInterval = *cpEvery
	}

	srv, err := bounced.New(sCfg)
	if err != nil {
		log.Fatal(err)
	}
	if *dataDir != "" {
		ri := srv.Recovery()
		log.Printf("recovered from %s: checkpoint at %d records, %d replayed from WAL (%d batches re-registered, fsync=%s)",
			*dataDir, ri.CheckpointRecords, ri.Replayed, ri.Batches, *fsyncArg)
		if ri.TornTruncated || ri.DroppedUncommitted > 0 {
			log.Printf("recovery repaired a torn WAL tail (%d uncommitted records dropped; their batch was never acked)",
				ri.DroppedUncommitted)
		}
	}

	if *role == "standby" {
		id := *sbID
		if id == "" {
			id = *addr
		}
		sl, err := replication.NewStandby(replication.StandbyConfig{
			PrimaryURL:      *primary,
			ID:              id,
			PollWait:        *pollWait,
			FailoverTimeout: *failTO,
		}, srv)
		if err != nil {
			log.Fatal(err)
		}
		srv.SetSync(sl)
		go func() {
			if err := sl.Run(ctx); err != nil {
				log.Printf("sync loop: %v", err)
			}
		}()
		log.Printf("standby %q replicating from %s (failover-timeout %s)", id, *primary, *failTO)
	}

	if *replay != "" {
		n, err := preload(srv, *replay)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("replayed %d records from %s", n, *replay)
	}

	engineDone := make(chan error, 1)
	if engine != nil {
		go func() {
			engineDone <- engine.ParallelRunCtx(ctx, *workers, func(rec dataset.Record, _ *world.Submission, _ delivery.Truth) {
				if err := srv.Ingest(&rec); err != nil {
					log.Printf("engine ingest: %v", err)
				}
			})
			log.Printf("delivery engine finished (%d records)", srv.Accepted())
		}()
	} else {
		engineDone <- nil
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() {
		if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}()
	switch *role {
	case "shard":
		log.Printf("shard %d/%d listening on %s (seed %d)", *shardIdx, *shardCnt, ln.Addr(), *seed)
	case "standby":
		if *shardCnt > 0 {
			log.Printf("standby for shard %d/%d listening on %s (seed %d)", *shardIdx, *shardCnt, ln.Addr(), *seed)
		} else {
			log.Printf("standby listening on %s (seed %d)", ln.Addr(), *seed)
		}
	default:
		log.Printf("listening on %s (seed %d)", ln.Addr(), *seed)
	}

	<-ctx.Done()
	log.Print("shutting down: stopping producers, draining queue")
	stop() // restore default signal behavior: a second Ctrl-C kills

	// Shutdown order matters for the zero-loss guarantee: stop every
	// producer first (engine at its next day boundary, HTTP after
	// in-flight requests), then close and drain the queue.
	if err := <-engineDone; err != nil && !errors.Is(err, context.Canceled) {
		log.Printf("engine: %v", err)
	}
	shCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	n := srv.Drain()
	log.Printf("drained: %d records in store", n)

	if *flushSec != "" && n > 0 {
		sections := []bounce.Section{}
		if *flushSec == "all" {
			sections = bounce.AllSections
		} else {
			for _, s := range strings.Split(*flushSec, ",") {
				sections = append(sections, bounce.Section(strings.TrimSpace(s)))
			}
		}
		if err := srv.WriteFinalReport(os.Stdout, sections); err != nil {
			log.Printf("final report: %v", err)
		}
	}
}

// preload streams a JSONL(.gz) dataset file into the service through
// the parallel decoder.
func preload(srv *bounced.Server, path string) (int, error) {
	f, err := dataset.OpenParallel(path, 0)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	n := 0
	for {
		rec, ok := f.Next()
		if !ok {
			break
		}
		// The reader reuses its record buffers; hand the queue its own
		// copy (strings/slices are fresh per record and safe to share).
		c := *rec
		if err := srv.Ingest(&c); err != nil {
			return n, err
		}
		n++
	}
	return n, f.Err()
}

func loadgenMain(args []string) {
	fs := flag.NewFlagSet("bounced loadgen", flag.ExitOnError)
	var (
		url     = fs.String("url", "http://localhost:8425", "bounced base URL")
		in      = fs.String("in", "", "JSONL(.gz) record file to replay (required)")
		rate    = fs.Float64("rate", 0, "records per second (0 = unthrottled)")
		batch   = fs.Int("batch", 500, "records per POST")
		workers = fs.Int("workers", 4, "concurrent senders")
		gz      = fs.Bool("gzip", false, "gzip request bodies")
		out     = fs.String("out", "-", "write the result JSON here ('-' for stdout)")
		spawn   = fs.Bool("spawn", false, "boot an in-process server on a loopback port and replay against it (for benchmarks)")
		warm    = fs.Int("warm", 0, "re-post this many head records after the replay and measure the warm snapshot")
		cpuProf = fs.String("cpuprofile", "", "write a CPU profile of the replay here")
		memProf = fs.String("memprofile", "", "write a heap profile after the replay here")
		chaos   = fs.String("chaos", "", "chaos mode: client-side fault spec, e.g. 'seed=3,torn=0.3,truncgz=0.2,dup=0.5' (DESIGN.md §9)")
		shardsA = fs.String("shard-urls", "", "chaos mode: comma-separated per-shard ingest URLs (shard node or its router); records route by substream ownership")
		noVerif = fs.Bool("no-verify", false, "chaos mode: skip the server-counter balance check (needed when the server restarts mid-run, which resets its counters)")
		seed    = fs.Uint64("seed", 1, "chaos mode: batch-ID namespace and default fault seed")
		retries = fs.Int("retries", 0, "chaos mode: max attempts per batch (0 = default 50)")
	)
	fs.Parse(args)
	if *in == "" {
		log.Fatal("loadgen: -in is required")
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	target := *url
	var shutdown func()
	if *spawn {
		// A self-contained benchmark server: no env (classify latency
		// and ingest throughput do not depend on it), loopback only. In
		// chaos mode it also gets a read deadline so client slow-loris
		// sends are actually cut off.
		sCfg := bounced.Config{}
		if *chaos != "" {
			sCfg.ReadTimeout = 5 * time.Second
			sCfg.Seed = *seed
		}
		srv, err := bounced.New(sCfg)
		if err != nil {
			log.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		httpSrv := &http.Server{Handler: srv.Handler()}
		go httpSrv.Serve(ln)
		target = "http://" + ln.Addr().String()
		log.Printf("spawned in-process server on %s", target)
		shutdown = func() {
			httpSrv.Close()
			srv.Abort()
		}
	}

	if *chaos != "" {
		csp, err := faultinject.ParseSpec(*chaos)
		if err != nil {
			log.Fatal(err)
		}
		if csp.Seed == 0 {
			csp.Seed = *seed
		}
		var shardURLs []string
		if *shardsA != "" {
			for _, u := range strings.Split(*shardsA, ",") {
				if u = strings.TrimSpace(u); u != "" {
					shardURLs = append(shardURLs, u)
				}
			}
		}
		cres, err := bounced.Chaos(bounced.ChaosConfig{
			URL: target, ShardURLs: shardURLs, Path: *in, BatchSize: *batch, Seed: *seed,
			Faults: csp, MaxRetries: *retries, Gzip: *gz, Rate: *rate,
			Progress: os.Stderr,
		})
		if err != nil {
			log.Fatal(err)
		}
		// The zero-loss balance is the run's pass/fail line: every
		// presented record classified exactly once, server-side. A
		// restarted server starts its counters over, so cross-restart
		// drills verify by report differential instead (-no-verify).
		// Sharded runs also skip it: no single node's counters cover the
		// stream (the drill verifies by coordinator report differential).
		if !*noVerif && len(shardURLs) == 0 {
			if err := bounced.ChaosVerify(target, cres); err != nil {
				log.Fatal(err)
			}
		}
		if shutdown != nil {
			shutdown()
		}
		verdict := "balance OK"
		if *noVerif {
			verdict = "balance unchecked"
		}
		log.Printf("chaos: %d records in %d batches (%d presented, %d retries, %d shed, %d faulted, %d dups) in %.2fs — %s",
			cres.Records, cres.Batches, cres.Presented, cres.Retries, cres.Shed, cres.Faulted, cres.Duplicates, cres.Seconds, verdict)
		writeResult(*out, cres)
		return
	}

	res, err := bounced.Loadgen(bounced.LoadgenConfig{
		URL: target, Path: *in, Rate: *rate, BatchSize: *batch,
		Workers: *workers, Gzip: *gz, WarmRecords: *warm, Progress: os.Stderr,
	})
	if shutdown != nil {
		shutdown()
	}
	if err != nil {
		log.Fatal(err)
	}
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			log.Fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
	}
	log.Printf("replayed %d records in %.2fs (%.0f records/s; server classify p50 %.0fns p99 %.0fns)",
		res.Records, res.Seconds, res.RecordsPerSec, res.ClassifyP50NS, res.ClassifyP99NS)

	writeResult(*out, res)
}

// writeResult emits a run summary: pretty JSON on stdout for "-", or
// one compact appended line per run so a bench/chaos file accumulates
// a history (ingestbench entries land in the same file).
func writeResult(out string, v any) {
	if out == "-" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(v); err != nil {
			log.Fatal(err)
		}
		return
	}
	f, err := os.OpenFile(out, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := json.NewEncoder(f).Encode(v); err != nil {
		log.Fatal(err)
	}
}
