// Command ingestbench micro-benchmarks the analysis hot path without
// the HTTP stack: NDJSON decode throughput (serial fast path and the
// worker-pool ParallelReader), heap allocations per decoded record,
// and the incremental engine's snapshot build times cold (full
// re-classify) versus warm (suffix-only, after re-posting known
// lines). The result is appended as one timestamped JSON line to the
// bench history file, next to the loadgen entries make bench-serve
// writes.
//
// Usage:
//
//	ingestbench                          # 100k records, append to BENCH_bounced.json
//	ingestbench -emails 200000 -out -    # bigger corpus, print to stdout
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"log"
	"os"
	"runtime"
	"time"

	"repro"
	"repro/internal/analysis"
	"repro/internal/dataset"
	"repro/internal/world"
)

type result struct {
	Bench                string  `json:"bench"`
	Timestamp            string  `json:"timestamp"`
	Records              int     `json:"records"`
	Bytes                int     `json:"bytes"`
	DecodeNsPerRecord    float64 `json:"decode_ns_per_record"`
	DecodeMBPerSec       float64 `json:"decode_mb_per_s"`
	ParallelNsPerRecord  float64 `json:"parallel_decode_ns_per_record"`
	AllocsPerRecord      float64 `json:"allocs_per_record"`
	SnapshotMsCold       float64 `json:"snapshot_ms_cold"`
	SnapshotMsWarm       float64 `json:"snapshot_ms_warm"`
	SnapshotWarm         bool    `json:"snapshot_warm"`
	SnapshotColdWarmRate float64 `json:"snapshot_cold_warm_ratio"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("ingestbench: ")
	var (
		emails  = flag.Int("emails", 100_000, "corpus size to generate in memory")
		seed    = flag.Uint64("seed", 42, "world seed")
		workers = flag.Int("workers", 0, "parallel decode fan-out (0 = GOMAXPROCS)")
		warmK   = flag.Int("warm", 1000, "suffix size for the warm snapshot measurement")
		out     = flag.String("out", "BENCH_bounced.json", "append the result line here ('-' for stdout)")
	)
	flag.Parse()

	cfg := world.DefaultConfig()
	cfg.TotalEmails = *emails
	cfg.Seed = *seed
	_, records := bounce.Generate(cfg)
	var buf bytes.Buffer
	w := dataset.NewWriter(&buf)
	for i := range records {
		if err := w.Write(&records[i]); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	corpus := buf.Bytes()
	res := result{
		Bench:     "ingest",
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Records:   len(records),
		Bytes:     len(corpus),
	}

	// Serial decode: the per-record fast path, with allocation count.
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	n := decodeAll(dataset.NewReaderSource(bytes.NewReader(corpus)))
	serial := time.Since(start)
	runtime.ReadMemStats(&after)
	if n != len(records) {
		log.Fatalf("serial decode yielded %d of %d records", n, len(records))
	}
	res.DecodeNsPerRecord = float64(serial.Nanoseconds()) / float64(n)
	res.DecodeMBPerSec = float64(len(corpus)) / serial.Seconds() / 1e6
	res.AllocsPerRecord = float64(after.Mallocs-before.Mallocs) / float64(n)

	// Parallel decode: chunked worker-pool path with input-order merge.
	start = time.Now()
	n = decodeAll(dataset.NewParallelReader(bytes.NewReader(corpus), *workers))
	parallel := time.Since(start)
	if n != len(records) {
		log.Fatalf("parallel decode yielded %d of %d records", n, len(records))
	}
	res.ParallelNsPerRecord = float64(parallel.Nanoseconds()) / float64(n)

	// Snapshot cold vs warm: ingest everything, snapshot (full
	// classify), re-add a head suffix of already-mined lines, snapshot
	// again (cached verdicts + suffix-only classify).
	inc := analysis.NewIncremental(analysis.DefaultPipelineConfig())
	for i := range records {
		inc.Add(&records[i])
	}
	start = time.Now()
	inc.Snapshot(nil)
	res.SnapshotMsCold = float64(time.Since(start).Nanoseconds()) / 1e6
	k := *warmK
	if k > len(records) {
		k = len(records)
	}
	for i := 0; i < k; i++ {
		inc.Add(&records[i])
	}
	start = time.Now()
	inc.Snapshot(nil)
	res.SnapshotMsWarm = float64(time.Since(start).Nanoseconds()) / 1e6
	warm, _ := inc.Snapshots()
	res.SnapshotWarm = warm > 0
	if res.SnapshotMsWarm > 0 {
		res.SnapshotColdWarmRate = res.SnapshotMsCold / res.SnapshotMsWarm
	}

	line, err := json.Marshal(res)
	if err != nil {
		log.Fatal(err)
	}
	line = append(line, '\n')
	if *out == "-" {
		os.Stdout.Write(line)
		return
	}
	f, err := os.OpenFile(*out, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write(line); err != nil {
		log.Fatal(err)
	}
	log.Printf("decode %.0fns/record (%.0f MB/s, %.1f allocs), parallel %.0fns/record, snapshot cold %.1fms warm %.1fms (%.1fx, warm=%v) -> %s",
		res.DecodeNsPerRecord, res.DecodeMBPerSec, res.AllocsPerRecord,
		res.ParallelNsPerRecord, res.SnapshotMsCold, res.SnapshotMsWarm,
		res.SnapshotColdWarmRate, res.SnapshotWarm, *out)
}

// decodeAll drains a record source, counting records.
func decodeAll(src interface {
	Next() (*dataset.Record, bool)
	Err() error
}) int {
	n := 0
	for {
		_, ok := src.Next()
		if !ok {
			break
		}
		n++
	}
	if err := src.Err(); err != nil {
		log.Fatal(err)
	}
	return n
}
