// Command bouncegen generates a synthetic global email-delivery dataset
// in the paper's Figure-3 JSONL schema by building a world and running
// the full 15-month delivery simulation.
//
// Usage:
//
//	bouncegen -emails 400000 -seed 42 -out dataset.jsonl -workers 4
//	bouncegen -list-stages                 # show the policy-stage catalog
//	bouncegen -disable-stage dnsbl,greylist -out ablated.jsonl
//	bouncegen -force-stage content -out all-spam.jsonl
//
// The output is byte-identical for any -workers value: delivery state
// is sharded by receiver domain and records merge back in submission
// order. -disable-stage and -force-stage ablate named policy-chain
// stages across every receiver domain, turning each of the paper's
// bounce mechanisms into an experiment knob; per-stage rejection
// counts are reported on stderr after the run.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/dataset"
	"repro/internal/delivery"
	"repro/internal/policy"
	"repro/internal/world"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bouncegen: ")
	var (
		emails     = flag.Int("emails", 400_000, "total emails across the 15-month window")
		seed       = flag.Uint64("seed", 42, "world seed (all randomness derives from it)")
		out        = flag.String("out", "dataset.jsonl", "output JSONL path ('-' for stdout)")
		workers    = flag.Int("workers", 1, "delivery fan-out width (output is identical for any value)")
		disable    = flag.String("disable-stage", "", "comma-separated policy stages to ablate (see -list-stages)")
		force      = flag.String("force-stage", "", "comma-separated policy stages forced to reject")
		listStages = flag.Bool("list-stages", false, "print the policy-stage catalog and exit")
	)
	flag.Parse()

	if *listStages {
		printStages(os.Stdout)
		return
	}
	disabled, err := policy.ParseStageList(*disable)
	if err != nil {
		log.Fatalf("-disable-stage: %v", err)
	}
	forced, err := policy.ParseStageList(*force)
	if err != nil {
		log.Fatalf("-force-stage: %v", err)
	}

	cfg := world.DefaultConfig()
	cfg.TotalEmails = *emails
	cfg.Seed = *seed

	w := world.New(cfg)
	e := delivery.New(w)
	if err := e.DisableStages(disabled...); err != nil {
		log.Fatal(err)
	}
	if err := e.ForceStages(forced...); err != nil {
		log.Fatal(err)
	}

	f := os.Stdout
	if *out != "-" {
		var err error
		f, err = os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
	}
	// Ctrl-C stops at the next day boundary; the records written so far
	// are a clean prefix of the full run (still valid JSONL).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	wr := dataset.NewWriter(f)
	runErr := e.ParallelRunCtx(ctx, *workers, func(rec dataset.Record, _ *world.Submission, _ delivery.Truth) {
		if err := wr.Write(&rec); err != nil {
			log.Fatal(err)
		}
	})
	if err := wr.Flush(); err != nil {
		log.Fatal(err)
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "bouncegen: interrupted; output is a clean prefix of the full run\n")
	}
	fmt.Fprintf(os.Stderr, "bouncegen: wrote %d records (seed %d) to %s\n", wr.Count(), *seed, *out)
	if hits := e.Metrics.Format(); hits != "" {
		fmt.Fprintf(os.Stderr, "bouncegen: stage rejections: %s\n", hits)
	}
}

func printStages(f *os.File) {
	fmt.Fprintf(f, "%-14s %-8s %-6s %s\n", "STAGE", "PHASE", "TYPE", "CHECK")
	for _, s := range policy.Stages() {
		typ := s.Type.String()
		if typ == "T0" {
			typ = "-" // side-effect stage, never the rejection itself
		}
		fmt.Fprintf(f, "%-14s %-8s %-6s %s\n", s.Name, s.Phase, typ, s.Doc)
	}
}
