// Command bouncegen generates a synthetic global email-delivery dataset
// in the paper's Figure-3 JSONL schema by building a world and running
// the full 15-month delivery simulation.
//
// Usage:
//
//	bouncegen -emails 400000 -seed 42 -out dataset.jsonl -workers 4
//
// The output is byte-identical for any -workers value: delivery state
// is sharded by receiver domain and records merge back in submission
// order.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/dataset"
	"repro/internal/delivery"
	"repro/internal/world"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bouncegen: ")
	var (
		emails  = flag.Int("emails", 400_000, "total emails across the 15-month window")
		seed    = flag.Uint64("seed", 42, "world seed (all randomness derives from it)")
		out     = flag.String("out", "dataset.jsonl", "output JSONL path ('-' for stdout)")
		workers = flag.Int("workers", 1, "delivery fan-out width (output is identical for any value)")
	)
	flag.Parse()

	cfg := world.DefaultConfig()
	cfg.TotalEmails = *emails
	cfg.Seed = *seed

	w := world.New(cfg)
	e := delivery.New(w)

	f := os.Stdout
	if *out != "-" {
		var err error
		f, err = os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
	}
	wr := dataset.NewWriter(f)
	e.ParallelRun(*workers, func(rec dataset.Record, _ *world.Submission, _ delivery.Truth) {
		if err := wr.Write(&rec); err != nil {
			log.Fatal(err)
		}
	})
	if err := wr.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "bouncegen: wrote %d records (seed %d) to %s\n", wr.Count(), *seed, *out)
}
