// Command bounceanalyze reproduces every table and figure of the paper
// over a simulated corpus: it generates (or loads) a dataset, runs the
// Drain+EBRC classification pipeline, and prints the requested report
// sections with the paper's published values alongside.
//
// Usage:
//
//	bounceanalyze                         # full report at default scale
//	bounceanalyze -emails 100000          # faster run
//	bounceanalyze -section table1,fig8    # specific sections
//	bounceanalyze -in dataset.jsonl -seed 42   # analyze a bouncegen file
//	bounceanalyze -in dataset.jsonl.gz    # gzip input, sniffed by magic bytes
//	bounceanalyze -workers 4              # parallel delivery, identical results
//	bounceanalyze -data-dir /var/lib/bounced   # analyze a bounced durability dir offline
//
// When -in is given, the world is regenerated from -seed (deterministic)
// to supply the external services — geolocation, blocklist state, leak
// corpus, registries — that the paper also consulted out-of-band.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"

	"repro"
	"repro/internal/analysis"
	"repro/internal/bounced"
	"repro/internal/dataset"
	"repro/internal/delivery"
	"repro/internal/faultinject"
	"repro/internal/world"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bounceanalyze: ")
	var (
		emails  = flag.Int("emails", 400_000, "corpus size when generating")
		seed    = flag.Uint64("seed", 42, "world seed")
		in      = flag.String("in", "", "analyze an existing JSONL dataset instead of generating")
		section = flag.String("section", "all", "comma-separated sections or 'all'")
		asJSON  = flag.Bool("json", false, "emit a machine-readable summary instead of the report")
		workers = flag.Int("workers", 1, "delivery fan-out width (results are identical for any value)")
		shards  = flag.Int("shards", 0, "with -in: partition the file into N shard analyses and merge their partial aggregates (report bytes identical to -shards 0)")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile here")
		memProf = flag.String("memprofile", "", "write a heap profile on exit here")
		faults  = flag.String("fault-spec", "", "with -in: replay the file through a deterministic fault-injection wrapper (DESIGN.md §9)")
		dataDir = flag.String("data-dir", "", "analyze a bounced durability directory (newest checkpoint + WAL tail, opened read-only)")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
		}()
	}

	// Ctrl-C stops delivery at the next day boundary (or file streaming
	// at the next record) instead of hanging to the end of the workload.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := world.DefaultConfig()
	cfg.TotalEmails = *emails
	cfg.Seed = *seed

	if *shards > 1 && *in == "" {
		log.Fatal("-shards requires -in (sharding partitions an existing dataset file)")
	}
	if *shards > 1 && *asJSON {
		log.Fatal("-json is unavailable with -shards (the summary needs the full corpus)")
	}
	if *dataDir != "" && (*in != "" || *shards > 1 || *faults != "") {
		log.Fatal("-data-dir replaces -in (and is incompatible with -shards and -fault-spec)")
	}

	var study *bounce.Study
	if *in == "" && *dataDir == "" {
		var err error
		study, err = bounce.RunCtx(ctx, bounce.Options{Config: cfg, Workers: *workers})
		if err != nil && !errors.Is(err, context.Canceled) {
			log.Fatal(err)
		}
	} else if *dataDir != "" {
		// Offline analysis of a bounced data directory: the exact state a
		// restarted bounced would recover, without starting a server. The
		// store is opened read-only, so a live bounced on the same
		// directory is unaffected.
		inc, info, err := bounced.RecoverIncremental(*dataDir, analysis.DefaultPipelineConfig())
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("recovered %d records from %s (checkpoint at %d, %d replayed from the WAL tail)",
			inc.Len(), *dataDir, uint64(inc.Len())-uint64(info.Replayed), info.Replayed)
		w := world.New(cfg)
		e := delivery.New(w)
		if err := e.ParallelRunCtx(ctx, *workers, func(dataset.Record, *world.Submission, delivery.Truth) {}); err != nil {
			log.Fatal(err)
		}
		a := inc.Finish(bounce.NewEnvironment(w))
		study = &bounce.Study{World: w, Records: a.Records, Analysis: a}
		study.Detections = a.Detect()
	} else {
		// Transparently decodes .jsonl.gz; NDJSON decode fans out across
		// GOMAXPROCS workers with an input-order merge.
		f, err := openDataset(*in, *faults)
		if err != nil {
			log.Fatal(err)
		}
		w := world.New(cfg)
		// Re-run the delivery to restore stateful external services
		// (blocklist listings accrue during delivery).
		e := delivery.New(w)
		if err := e.ParallelRunCtx(ctx, *workers, func(dataset.Record, *world.Submission, delivery.Truth) {}); err != nil {
			log.Fatal(err)
		}
		src := dataset.NewContextSource(ctx, f)
		env := bounce.NewEnvironment(w)
		if *shards > 1 {
			// Sharded batch mode: partition by substream ownership, analyze
			// each shard independently, round-trip every partial through the
			// wire codec, merge, and render — the offline twin of the
			// shard/coordinator topology. Bytes match the unsharded run.
			runSharded(src, f, env, *shards, *section)
			return
		}
		// Stream the file through the pipeline in a single pass.
		a := analysis.NewFromSource(src, analysis.DefaultPipelineConfig(), env)
		f.Close()
		if err := src.Err(); err != nil {
			log.Fatal(err)
		}
		study = &bounce.Study{World: w, Records: a.Records, Analysis: a}
		study.Detections = a.Detect()
	}

	if *asJSON {
		if err := study.Summary().WriteJSON(os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}

	sections := bounce.AllSections
	if *section != "all" {
		sections = nil
		for _, s := range strings.Split(*section, ",") {
			sections = append(sections, bounce.Section(strings.TrimSpace(s)))
		}
	}
	if err := study.WriteReport(os.Stdout, sections); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// runSharded is the offline twin of the shard/coordinator topology
// (satellite of DESIGN.md §10): records are partitioned by substream
// ownership exactly as a cluster router would, each shard is analyzed
// independently, and the shard partials — round-tripped through the
// wire codec a shard node serves on /v1/partial — are merged in shard
// order. The merged report bytes equal the unsharded run's for every
// partial-renderable section.
func runSharded(src *dataset.ContextSource, f recordSource, env *analysis.Environment, shards int, section string) {
	parts := make([][]dataset.Record, shards)
	for {
		rec, ok := src.Next()
		if !ok {
			break
		}
		// The reader reuses its record buffers — copy the struct out.
		c := *rec
		own := analysis.OwnerOf(&c, shards)
		parts[own] = append(parts[own], c)
	}
	f.Close()
	if err := src.Err(); err != nil {
		log.Fatal(err)
	}

	var merged *analysis.PartialSet
	for i, recs := range parts {
		ps := analysis.New(recs, env).Partials()
		rt, err := analysis.UnmarshalPartialSet(ps.Marshal(), env)
		if err != nil {
			log.Fatalf("shard %d: %v", i, err)
		}
		if merged == nil {
			merged = rt
			continue
		}
		if err := merged.Merge(rt); err != nil {
			log.Fatalf("shard %d: %v", i, err)
		}
	}

	sections := bounce.PartialSections
	if section != "all" {
		sections = nil
		for _, s := range strings.Split(section, ",") {
			sections = append(sections, bounce.Section(strings.TrimSpace(s)))
		}
	} else {
		log.Print("note: squat and advice need the full corpus; run without -shards to include them")
	}
	if err := bounce.NewPartialStudy(merged).WriteReport(os.Stdout, sections); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// recordSource is what the -in path needs: streamed records plus a
// terminal error and a Close.
type recordSource interface {
	dataset.RecordSource
	Close() error
}

// openDataset opens the record file, optionally routed through the
// deterministic fault-injection wrapper — the offline twin of the
// bounced ingest path, for reproducing a hostile-stream failure as a
// batch run (same seed, same fault schedule, same line-numbered error).
func openDataset(path, faultSpec string) (recordSource, error) {
	if faultSpec == "" {
		return dataset.OpenParallel(path, 0)
	}
	sp, err := faultinject.ParseSpec(faultSpec)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	plan := faultinject.New(sp).NextPlan()
	rd, err := dataset.NewDecodingReader(plan.WrapRaw(f))
	if err != nil {
		f.Close()
		return nil, err
	}
	log.Printf("fault injection armed: %s", sp)
	return &faultSource{ParallelReader: dataset.NewParallelReader(plan.WrapDecoded(rd), 0), f: f}, nil
}

type faultSource struct {
	*dataset.ParallelReader
	f *os.File
}

func (s *faultSource) Close() error {
	s.ParallelReader.Close()
	return s.f.Close()
}
