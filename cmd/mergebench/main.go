// Command mergebench measures the coordinator's fan-in cost: how long
// decoding and merging K shard partial snapshots takes (exactly the
// coordinator's gather step, after the HTTP fetches land) versus one
// cold snapshot over the same records. Each shard's snapshot is built
// the way a live shard node would — records partitioned by substream
// ownership, analyzed independently, marshaled through the versioned
// wire codec — and the merged bytes are asserted identical to the
// unsharded partial set before any timing is reported.
//
// Usage:
//
//	mergebench                        # 100k records, shard counts 1/2/4/16
//	mergebench -emails 200000 -out -  # bigger corpus, print to stdout
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"log"
	"os"
	"time"

	"repro"
	"repro/internal/analysis"
	"repro/internal/dataset"
	"repro/internal/world"
)

type shardCost struct {
	Shards       int     `json:"shards"`
	PartialBytes int     `json:"partial_bytes_total"`
	MergeMs      float64 `json:"merge_ms"`
}

type result struct {
	Bench          string      `json:"bench"`
	Timestamp      string      `json:"timestamp"`
	Records        int         `json:"records"`
	SnapshotMsCold float64     `json:"snapshot_ms_cold"`
	Merges         []shardCost `json:"merges"`
	Merge16VsCold  float64     `json:"merge16_vs_cold_ratio"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("mergebench: ")
	var (
		emails = flag.Int("emails", 100_000, "corpus size to generate in memory")
		seed   = flag.Uint64("seed", 42, "world seed")
		out    = flag.String("out", "BENCH_bounced.json", "append the result line here ('-' for stdout)")
	)
	flag.Parse()

	cfg := world.DefaultConfig()
	cfg.TotalEmails = *emails
	cfg.Seed = *seed
	_, records := bounce.Generate(cfg)
	res := result{
		Bench:     "merge",
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Records:   len(records),
	}

	// Cold-snapshot baseline: the incremental engine's full classify,
	// the same measurement ingestbench records as snapshot_ms_cold.
	inc := analysis.NewIncremental(analysis.DefaultPipelineConfig())
	for i := range records {
		inc.Add(&records[i])
	}
	start := time.Now()
	inc.Snapshot(nil)
	res.SnapshotMsCold = float64(time.Since(start).Nanoseconds()) / 1e6

	// The unsharded partial set is the byte-identity reference every
	// merged result must reproduce exactly.
	want := analysis.New(records, nil).Partials().Marshal()

	for _, n := range []int{1, 2, 4, 16} {
		parts := make([][]dataset.Record, n)
		for i := range records {
			own := analysis.OwnerOf(&records[i], n)
			parts[own] = append(parts[own], records[i])
		}
		blobs := make([][]byte, n)
		total := 0
		for i, part := range parts {
			blobs[i] = analysis.New(part, nil).Partials().Marshal()
			total += len(blobs[i])
		}

		// The timed region mirrors Coordinator.gather after the HTTP
		// fetches land: decode every blob, merge in shard order.
		start = time.Now()
		var merged *analysis.PartialSet
		for i, b := range blobs {
			ps, err := analysis.UnmarshalPartialSet(b, nil)
			if err != nil {
				log.Fatalf("shards=%d: decode shard %d: %v", n, i, err)
			}
			if merged == nil {
				merged = ps
				continue
			}
			if err := merged.Merge(ps); err != nil {
				log.Fatalf("shards=%d: merge shard %d: %v", n, i, err)
			}
		}
		ms := float64(time.Since(start).Nanoseconds()) / 1e6

		if !bytes.Equal(merged.Marshal(), want) {
			log.Fatalf("shards=%d: merged partial set is not byte-identical to the unsharded one", n)
		}
		res.Merges = append(res.Merges, shardCost{Shards: n, PartialBytes: total, MergeMs: ms})
		if n == 16 && res.SnapshotMsCold > 0 {
			res.Merge16VsCold = ms / res.SnapshotMsCold
		}
		log.Printf("shards=%2d merge %.2fms (%d snapshot bytes)", n, ms, total)
	}

	line, err := json.Marshal(res)
	if err != nil {
		log.Fatal(err)
	}
	line = append(line, '\n')
	if *out == "-" {
		os.Stdout.Write(line)
		return
	}
	f, err := os.OpenFile(*out, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write(line); err != nil {
		log.Fatal(err)
	}
	log.Printf("cold snapshot %.1fms, 16-shard merge %.1fms (%.3fx cold) -> %s",
		res.SnapshotMsCold, res.Merges[len(res.Merges)-1].MergeMs, res.Merge16VsCold, *out)
}
