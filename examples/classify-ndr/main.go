// classify-ndr: use the Section-3.2 methodology on a raw NDR corpus —
// mine templates with Drain, label the top templates, train the EBRC,
// and classify previously unseen bounce messages, including the
// ambiguous Table-6 lines that must be recognized and excluded.
package main

import (
	"fmt"

	"repro"
	"repro/internal/analysis"
	"repro/internal/ndr"
)

func main() {
	// Build a corpus the honest way: deliver a tiny world and keep only
	// what a postmaster sees — the NDR strings.
	fmt.Println("building an NDR corpus from a tiny simulated world...")
	study := bounce.Run(bounce.Options{Scale: bounce.ScaleTiny})
	lines := 0
	for i := 0; i < study.Records.Len(); i++ {
		lines += len(study.Records.At(i).NDRs())
	}

	p := study.Analysis.Pipeline
	labeled, coverage := p.ManualLabelStats()
	fmt.Printf("corpus: %d NDR lines -> %d Drain templates; top %d labeled (%.1f%% coverage)\n\n",
		lines, p.NumTemplates(), labeled, coverage*100)

	// Classify fresh lines an operator might paste in.
	samples := []string{
		"550-5.1.1 jun@b.com Email address could not be found, or was misspelled (g-1991)",
		"452-4.2.2 The email account that you tried to reach is over quota",
		"554 Service unavailable; Client host [203.0.113.9] blocked using Spamhaus",
		"450 4.7.1 Greylisted, please try again in 300 seconds",
		"421 4.4.1 [internal] Connection timed out while talking to mx7.example.net",
		"550-5.7.26 This message does not have authentication information or fails to pass authentication checks (SPF or DKIM)",
		"550 5.4.1 Recipient address rejected: Access denied. AS(201806281) [x99]",
	}
	fmt.Println("classifying fresh NDR lines:")
	for _, line := range samples {
		typ, ambiguous := p.ClassifyLine(line)
		tag := typ.String()
		if ambiguous {
			tag = "AMBIGUOUS (excluded, Table 6)"
		}
		fmt.Printf("  %-32s <- %s\n", tag+" ("+describe(typ, ambiguous)+")", clip(line, 80))
	}

	// Show the mined ambiguous templates, Table-6 style.
	fmt.Println("\nmined ambiguous templates:")
	for i, t := range study.Analysis.AmbiguousTemplates() {
		if i >= 5 {
			break
		}
		fmt.Printf("  %6d  %s\n", t.Count, clip(t.Template, 80))
	}
	_ = analysis.DefaultPipelineConfig() // the pipeline parameters are tunable; see docs
}

func describe(t ndr.Type, ambiguous bool) string {
	if ambiguous {
		return "unclear meaning"
	}
	return t.Description()
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}
