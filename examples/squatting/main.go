// squatting: evaluate the email-address squatting risk of Section 5 —
// generate typo candidates like dnstwist, run the vulnerable-domain and
// vulnerable-username funnels over a simulated corpus, and print the
// exposure findings.
package main

import (
	"fmt"
	"os"

	"repro"
	"repro/internal/report"
	"repro/internal/squat"
	"repro/internal/typo"
)

func main() {
	// Part 1: the typo generator that feeds the funnel.
	fmt.Println("typo candidates for hotmail.com (dnstwist-style):")
	byKind := map[typo.Kind][]string{}
	for _, c := range typo.Domain("hotmail.com") {
		if len(byKind[c.Kind]) < 3 {
			byKind[c.Kind] = append(byKind[c.Kind], c.Name)
		}
	}
	for _, k := range []typo.Kind{typo.Omission, typo.Replacement, typo.Bitsquatting,
		typo.Transposition, typo.Repetition, typo.TLDRepetition} {
		fmt.Printf("  %-15s %v\n", k, byKind[k])
	}

	// The paper's own example: hotmail.com -> lotmail.com (bitsquatting).
	if kind, ok := typo.Classify("lotmail.com", "hotmail.com"); ok {
		fmt.Printf("\n\"lotmail.com\" is a %s typo of \"hotmail.com\" (paper's example)\n\n", kind)
	}

	// Part 2: the full funnel over a simulated world.
	fmt.Println("running the squatting funnel over a small simulated corpus...")
	study := bounce.Run(bounce.Options{Scale: bounce.ScaleTiny})
	res := study.Squat(squat.DefaultConfig())
	report.Squat(os.Stdout, res)

	if len(res.VulnerableDomains) > 0 {
		fmt.Println("\nmost-exposed vulnerable domains:")
		for i, f := range res.VulnerableDomains {
			if i >= 5 {
				break
			}
			class := "expired"
			if f.IsTypo {
				class = "typo"
			}
			fmt.Printf("  %-28s %-8s %3d senders %4d emails (received historically: %v)\n",
				f.Domain, class, f.Senders, f.Emails, f.ReceivedHistorically)
		}
	}
}
