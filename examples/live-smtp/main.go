// live-smtp: deliver email over real TCP sockets with the RFC 5321
// substrate — including the paper's Section-4.3.1 STARTTLS interplay:
// a TLS-mandating receiver rejects plaintext MAIL with 530, and the
// Coremail-style client immediately upgrades and redelivers (the T4
// soft-bounce mechanism).
package main

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"fmt"
	"log"
	"math/big"
	"time"

	"repro/internal/mail"
	"repro/internal/smtp"
)

func main() {
	log.SetFlags(0)
	serverTLS, clientTLS := selfSigned()

	received := 0
	backend := smtp.Backend{
		Hostname:   "mx1.mandatory-tls.example",
		TLSConfig:  serverTLS,
		RequireTLS: true, // the 11K-domain posture from the paper
		OnRcpt: func(s *smtp.Session, from, to string) *smtp.Reply {
			if !s.TLS {
				return smtp.NewReply(530, mail.EnhTLSRequired, "Must issue a STARTTLS command first")
			}
			return nil
		},
		OnData: func(s *smtp.Session, data []byte) *smtp.Reply {
			received++
			fmt.Printf("  server: accepted %d bytes from %s over TLS=%v\n", len(data), s.From, s.TLS)
			return nil
		},
	}
	srv := smtp.NewServer(backend)
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	addr := srv.Addr().String()
	fmt.Printf("TLS-mandating receiver MTA on %s\n\n", addr)

	// 1. A legacy sender without STARTTLS support: permanent T4-style
	// failure (the paper's 572K soft-bounced emails come from senders
	// that CAN upgrade; ones that can't keep failing).
	fmt.Println("1) sender without STARTTLS support:")
	rep, err := smtp.SendMail(addr, "alice@a.com", "bob@b.com", []byte("hello"),
		smtp.SendOptions{Timeout: 5 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   -> %s\n\n", rep)

	// 2. Coremail's compatibility behaviour: plaintext first, upgrade on
	// the 530 mandate, redeliver in the same session.
	fmt.Println("2) Coremail-style sender (plaintext first, upgrade on mandate):")
	rep, err = smtp.SendMail(addr, "alice@a.com", "bob@b.com",
		[]byte("Subject: quarterly report\n\nnumbers attached\n"),
		smtp.SendOptions{TLSConfig: clientTLS, Timeout: 5 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   -> %s\n\n", rep)

	// 3. A modern sender that always negotiates TLS up front.
	fmt.Println("3) TLS-first sender:")
	rep, err = smtp.SendMail(addr, "alice@a.com", "bob@b.com", []byte("hi again"),
		smtp.SendOptions{TLSConfig: clientTLS, ForceTLS: true, Timeout: 5 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   -> %s\n\n", rep)

	fmt.Printf("messages accepted by the receiver: %d\n", received)
}

// selfSigned builds a throwaway server certificate and trusting client
// config for the loopback demo.
func selfSigned() (*tls.Config, *tls.Config) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		log.Fatal(err)
	}
	tmpl := x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: "mx1.mandatory-tls.example"},
		DNSNames:              []string{"mx1.mandatory-tls.example"},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(24 * time.Hour),
		KeyUsage:              x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		BasicConstraintsValid: true,
		IsCA:                  true,
	}
	der, err := x509.CreateCertificate(rand.Reader, &tmpl, &tmpl, &key.PublicKey, key)
	if err != nil {
		log.Fatal(err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		log.Fatal(err)
	}
	pool := x509.NewCertPool()
	pool.AddCert(cert)
	return &tls.Config{Certificates: []tls.Certificate{{Certificate: [][]byte{der}, PrivateKey: key}}},
		&tls.Config{RootCAs: pool, ServerName: "mx1.mandatory-tls.example"}
}
