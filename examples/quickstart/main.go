// Quickstart: run a small end-to-end study — generate a world, deliver
// the 15-month workload, classify every NDR with the Drain+EBRC
// pipeline, and print the headline numbers the paper reports.
package main

import (
	"fmt"
	"os"

	"repro"
)

func main() {
	fmt.Println("generating a tiny world and delivering its 15-month workload...")
	study := bounce.Run(bounce.Options{Scale: bounce.ScaleTiny})

	fmt.Printf("delivered %d emails through %d proxy MTAs to %d receiver domains\n\n",
		study.Records.Len(), len(study.World.Proxies), len(study.World.Domains))

	if err := study.WriteReport(os.Stdout, []bounce.Section{
		bounce.SecOverview, bounce.SecPipeline, bounce.SecTable1,
	}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Individual records are plain data: inspect one bounced email.
	for i := 0; i < study.Records.Len(); i++ {
		rec := study.Records.At(i)
		if rec.Attempts() > 1 && !rec.Succeeded() {
			fmt.Printf("example hard-bounced email %s -> %s:\n", rec.From, rec.To)
			for j, line := range rec.DeliveryResult {
				fmt.Printf("  attempt %d via %-15s %6dms  %s\n",
					j+1, rec.FromIP[j], rec.DeliveryLatency[j], line)
			}
			break
		}
	}
}
