package bounce

import (
	"fmt"
	"io"

	"repro/internal/advise"
	"repro/internal/report"
	"repro/internal/squat"
)

// writeSection dispatches one report section.
func (s *Study) writeSection(w io.Writer, sec Section) error {
	a := s.Analysis
	switch sec {
	case SecOverview:
		o := a.Overview()
		report.Overview(w, o)
		report.EnhancedCodeStat(w, a.NoEnhancedCodeShare())
	case SecPipeline:
		labeled, coverage := a.Pipeline.ManualLabelStats()
		report.PipelineStats(w, a.Pipeline.NumTemplates(), labeled, coverage)
	case SecTable1:
		o := a.Overview()
		report.Table1(w, a.TypeDistribution(), o.Bounced()-o.AmbiguousBounced)
	case SecTable2:
		report.Table2(w, a.RootCauses(s.Detections))
	case SecTable3:
		report.Table3(w, a.TopDomains(10))
	case SecTable4:
		report.Table4(w, a.TopASes(10))
	case SecTable5:
		report.Table5(w, a.CountryBounces(s.countryThreshold()), 10)
	case SecTable6:
		o := a.Overview()
		report.Table6(w, a.AmbiguousTemplates(), o.AmbiguousBounced)
	case SecFig4:
		report.Fig4(w, a.MTACountryDistribution(), 15)
	case SecFig5:
		report.Fig5(w, a.Timeline())
	case SecFig6:
		report.Fig6(w, a.BlocklistFigure())
	case SecFig7:
		report.Fig7(w, a.Durations(s.Detections))
	case SecFig8:
		report.Fig8(w, a.InfraMatrix(s.countryThreshold(), 20))
	case SecFig10:
		report.Fig10(w, a.LatencyByCountry(s.countryThreshold()), 10)
	case SecSTARTTLS:
		report.STARTTLS(w, a.STARTTLS())
	case SecAttacker:
		report.Attackers(w, s.Detections)
	case SecTypos:
		report.Typos(w, s.Detections)
	case SecSquat:
		report.Squat(w, s.Squat(squat.DefaultConfig()))
	case SecFilters:
		report.Filters(w, a.FilterDisagreement(), a.BlocklistRecovery())
	case SecAdvice:
		sq := s.Squat(squat.DefaultConfig())
		report.Advisories(w, advise.Run(s.Analysis, s.Detections, sq, advise.DefaultConfig()))
	default:
		return fmt.Errorf("bounce: unknown section %q", sec)
	}
	return nil
}

// countryThreshold scales the paper's 1,000-incoming-email
// representativeness cutoff to the corpus size (1,000 per 298M).
func (s *Study) countryThreshold() int {
	t := s.Records.Len() / 4000
	if t < 50 {
		t = 50
	}
	return t
}
