package bounce

import (
	"fmt"
	"io"

	"repro/internal/advise"
	"repro/internal/analysis"
	"repro/internal/ndr"
	"repro/internal/report"
	"repro/internal/squat"
)

// sectionSource is the data a report section draws on — satisfied by
// both *analysis.Analysis (single-pass corpus) and *analysis.PartialSet
// (merged shard aggregates). Every section except squat and advice
// renders identically from either.
type sectionSource interface {
	Overview() analysis.Overview
	NoEnhancedCodeShare() float64
	PipelineSummary() analysis.PipelineSummary
	TypeDistribution() map[ndr.Type]int
	RootCauses(*analysis.Detections) analysis.RootCauseTable
	TopDomains(int) []analysis.DomainStats
	TopASes(int) []analysis.ASStats
	CountryBounces(int) []analysis.CountryStats
	AmbiguousTemplates() []analysis.AmbiguousTemplate
	MTACountryDistribution() []analysis.MTACountry
	Timeline() analysis.Timeline
	BlocklistFigure() analysis.BlocklistFigure
	Durations(*analysis.Detections) analysis.DurationsFigure
	InfraMatrix(int, int) analysis.InfraMatrix
	LatencyByCountry(int) analysis.LatencyStats
	STARTTLS() analysis.STARTTLSStats
	FilterDisagreement() analysis.FilterDisagreement
	BlocklistRecovery() analysis.BlocklistRecovery
}

// renderSection writes one section from any source. total is the
// record count (scales the representativeness threshold); det carries
// the entity detections the attribution sections need.
func renderSection(w io.Writer, src sectionSource, det *analysis.Detections, total int, sec Section) error {
	threshold := countryThreshold(total)
	switch sec {
	case SecOverview:
		o := src.Overview()
		report.Overview(w, o)
		report.EnhancedCodeStat(w, src.NoEnhancedCodeShare())
	case SecPipeline:
		pipe := src.PipelineSummary()
		report.PipelineStats(w, pipe.Templates, pipe.Labeled, pipe.Coverage())
	case SecTable1:
		o := src.Overview()
		report.Table1(w, src.TypeDistribution(), o.Bounced()-o.AmbiguousBounced)
	case SecTable2:
		report.Table2(w, src.RootCauses(det))
	case SecTable3:
		report.Table3(w, src.TopDomains(10))
	case SecTable4:
		report.Table4(w, src.TopASes(10))
	case SecTable5:
		report.Table5(w, src.CountryBounces(threshold), 10)
	case SecTable6:
		o := src.Overview()
		report.Table6(w, src.AmbiguousTemplates(), o.AmbiguousBounced)
	case SecFig4:
		report.Fig4(w, src.MTACountryDistribution(), 15)
	case SecFig5:
		report.Fig5(w, src.Timeline())
	case SecFig6:
		report.Fig6(w, src.BlocklistFigure())
	case SecFig7:
		report.Fig7(w, src.Durations(det))
	case SecFig8:
		report.Fig8(w, src.InfraMatrix(threshold, 20))
	case SecFig10:
		report.Fig10(w, src.LatencyByCountry(threshold), 10)
	case SecSTARTTLS:
		report.STARTTLS(w, src.STARTTLS())
	case SecAttacker:
		report.Attackers(w, det)
	case SecTypos:
		report.Typos(w, det)
	case SecFilters:
		report.Filters(w, src.FilterDisagreement(), src.BlocklistRecovery())
	case SecSquat, SecAdvice:
		return fmt.Errorf("bounce: section %q needs the full corpus (not available from partial aggregates)", sec)
	default:
		return fmt.Errorf("bounce: unknown section %q", sec)
	}
	return nil
}

// writeSection dispatches one report section. The squat scan and the
// advisory engine walk the raw corpus, so they stay Study-only; every
// other section renders through the shared partial-aggregate path.
func (s *Study) writeSection(w io.Writer, sec Section) error {
	switch sec {
	case SecSquat:
		report.Squat(w, s.Squat(squat.DefaultConfig()))
	case SecAdvice:
		sq := s.Squat(squat.DefaultConfig())
		report.Advisories(w, advise.Run(s.Analysis, s.Detections, sq, advise.DefaultConfig()))
	default:
		return renderSection(w, s.Analysis, s.Detections, s.Records.Len(), sec)
	}
	return nil
}

// countryThreshold scales the paper's 1,000-incoming-email
// representativeness cutoff to the corpus size (1,000 per 298M).
func countryThreshold(total int) int {
	t := total / 4000
	if t < 50 {
		t = 50
	}
	return t
}
