package bounce_test

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"reflect"
	"testing"

	"repro"
)

// TestWorkerCountInvariance runs the full study at several worker
// counts and requires identical datasets (FNV hash of the serialized
// records), identical Table 1 type distributions, and identical
// Table 2 root-cause attributions — the paper-reproduction numbers
// must not depend on the fan-out width.
func TestWorkerCountInvariance(t *testing.T) {
	type outcome struct {
		hash   uint64
		n      int
		table1 map[string]int
		table2 []string
	}
	run := func(workers int) outcome {
		s := bounce.Run(bounce.Options{Scale: bounce.ScaleTiny, Workers: workers})
		h := fnv.New64a()
		for i := 0; i < s.Records.Len(); i++ {
			b, err := json.Marshal(s.Records.At(i))
			if err != nil {
				t.Fatal(err)
			}
			h.Write(b)
		}
		table1 := map[string]int{}
		for typ, n := range s.Analysis.TypeDistribution() {
			table1[typ.String()] = n
		}
		var table2 []string
		for _, row := range s.Analysis.RootCauses(s.Detections).Rows {
			table2 = append(table2, fmt.Sprintf("%s|%s|%d", row.Type, row.Reason, row.Emails))
		}
		return outcome{hash: h.Sum64(), n: s.Records.Len(), table1: table1, table2: table2}
	}

	base := run(1)
	if base.n == 0 {
		t.Fatal("study produced no records")
	}
	for _, workers := range []int{4, 8} {
		got := run(workers)
		if got.n != base.n {
			t.Errorf("workers=%d: %d records, workers=1: %d", workers, got.n, base.n)
		}
		if got.hash != base.hash {
			t.Errorf("workers=%d: dataset hash %x, workers=1: %x", workers, got.hash, base.hash)
		}
		if !reflect.DeepEqual(got.table1, base.table1) {
			t.Errorf("workers=%d: Table 1 differs:\n%v\nvs\n%v", workers, got.table1, base.table1)
		}
		if !reflect.DeepEqual(got.table2, base.table2) {
			t.Errorf("workers=%d: Table 2 differs:\n%v\nvs\n%v", workers, got.table2, base.table2)
		}
	}
}
