package bounce

import (
	"fmt"
	"io"

	"repro/internal/analysis"
)

// PartialSections lists the sections renderable from merged partial
// aggregates: AllSections minus squat and advice, which walk the raw
// corpus and therefore need a full Study.
var PartialSections = func() []Section {
	out := make([]Section, 0, len(AllSections))
	for _, sec := range AllSections {
		if sec == SecSquat || sec == SecAdvice {
			continue
		}
		out = append(out, sec)
	}
	return out
}()

// PartialStudy renders reports from a merged partial aggregate — the
// coordinator's view of a sharded deployment. Sections render through
// the same dispatcher a Study uses, so the bytes are identical to a
// single node that ingested the full stream.
type PartialStudy struct {
	P   *analysis.PartialSet
	det *analysis.Detections
}

// NewPartialStudy wraps a merged partial set.
func NewPartialStudy(p *analysis.PartialSet) *PartialStudy {
	return &PartialStudy{P: p}
}

// Detections resolves (and caches) the entity detections.
func (s *PartialStudy) Detections() *analysis.Detections {
	if s.det == nil {
		s.det = s.P.Detect()
	}
	return s.det
}

// WriteReport renders the requested sections (default PartialSections).
func (s *PartialStudy) WriteReport(w io.Writer, sections []Section) error {
	if len(sections) == 0 {
		sections = PartialSections
	}
	for _, sec := range sections {
		if err := renderSection(w, s.P, s.Detections(), s.P.Total, sec); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Partials condenses the study's classified corpus into its partial
// aggregate (cached — a Study is immutable once built).
func (s *Study) Partials() *analysis.PartialSet {
	if s.partials == nil {
		s.partials = s.Analysis.Partials()
	}
	return s.partials
}
