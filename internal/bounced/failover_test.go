package bounced_test

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/bounced"
	"repro/internal/dataset"
	"repro/internal/replication"
	"repro/internal/store"
)

// replPair boots a durable primary and a standby wired together by a
// real replication sync loop over real HTTP. The returned stop func
// tears everything down and waits for the sync goroutine to exit.
type replPair struct {
	primary, standby *bounced.Server
	pts, sts         *httptest.Server
	sync             *replication.Standby
	stop             func()
}

func newReplPair(t *testing.T, primaryCfg, standbyCfg bounced.Config, syncCfg replication.StandbyConfig) *replPair {
	t.Helper()
	if primaryCfg.Store == nil {
		primaryCfg.Store = store.NewMem()
	}
	if primaryCfg.QueueDepth == 0 {
		primaryCfg.QueueDepth = 8192
	}
	standbyCfg.Standby = true
	if standbyCfg.Store == nil {
		standbyCfg.Store = store.NewMem()
	}
	if standbyCfg.QueueDepth == 0 {
		standbyCfg.QueueDepth = 8192
	}
	p := &replPair{
		primary: newServer(t, primaryCfg),
		standby: newServer(t, standbyCfg),
	}
	p.pts = httptest.NewServer(p.primary.Handler())
	p.sts = httptest.NewServer(p.standby.Handler())
	syncCfg.PrimaryURL = p.pts.URL
	if syncCfg.ID == "" {
		syncCfg.ID = "standby-1"
	}
	if syncCfg.PollWait == 0 {
		syncCfg.PollWait = 250 * time.Millisecond
	}
	if syncCfg.RetryInterval == 0 {
		syncCfg.RetryInterval = 20 * time.Millisecond
	}
	syncCfg.Logf = func(string, ...any) {}
	sl, err := replication.NewStandby(syncCfg, p.standby)
	if err != nil {
		t.Fatal(err)
	}
	p.sync = sl
	p.standby.SetSync(sl)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		sl.Run(ctx)
	}()
	var once bool
	p.stop = func() {
		if once {
			return
		}
		once = true
		cancel()
		<-done
		p.pts.Close()
		p.sts.Close()
		p.primary.Abort()
		p.standby.Abort()
	}
	return p
}

func waitFor(t *testing.T, d time.Duration, what string, ok func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if ok() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func fullReport(t *testing.T, url string) []byte {
	t.Helper()
	status, b := getBody(t, url+"/v1/report?section=all")
	if status != http.StatusOK {
		t.Fatalf("report status %d: %s", status, b)
	}
	return b
}

// TestFailoverReportByteIdentical is the subsystem's acceptance test:
// a primary semi-sync-replicating to a standby dies mid-stream, the
// standby promotes, the remaining traffic lands on the survivor, and
// its final report is byte-identical to a single uninterrupted node
// over the same corpus — with a pre-failover batch ID still deduping
// on the promoted node (exactly-once across the failover).
func TestFailoverReportByteIdentical(t *testing.T) {
	records, env := fixture(t)

	// Reference: one memory node over the whole corpus, no failover.
	ref := newServer(t, bounced.Config{Env: env})
	rts := httptest.NewServer(ref.Handler())
	if ir := postRecords(t, rts.URL, encodeNDJSON(t, records)); ir.status != http.StatusOK {
		t.Fatalf("reference ingest: status %d: %s", ir.status, ir.Error)
	}
	want := fullReport(t, rts.URL)
	rts.Close()
	ref.Abort()

	p := newReplPair(t,
		bounced.Config{Env: env, ReplAck: 1, ReplAckTimeout: 10 * time.Second},
		bounced.Config{Env: env},
		replication.StandbyConfig{})
	defer p.stop()

	const per = 64
	var batches [][]dataset.Record
	for i := 0; i < len(records); i += per {
		end := i + per
		if end > len(records) {
			end = len(records)
		}
		batches = append(batches, records[i:end])
	}
	cut := len(batches) / 2
	for i, b := range batches[:cut] {
		ir := postBatch(t, p.pts.URL, fmt.Sprintf("fo-%d", i), b)
		if ir.status != http.StatusOK || ir.Accepted != len(b) {
			t.Fatalf("batch %d: status %d accepted %d of %d: %s", i, ir.status, ir.Accepted, len(b), ir.Error)
		}
	}
	// Semi-sync acks mean every acked record is already applied on the
	// standby — the kill below cannot lose any of them.
	if got, want := p.standby.AppliedIndex(), p.primary.AppliedIndex(); got != want {
		t.Fatalf("standby applied %d, primary log end %d (semi-sync ack leaked ahead)", got, want)
	}

	p.pts.Close()
	p.primary.Abort()
	resp, err := http.Post(p.sts.URL+"/v1/promote", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("promote: status %d", resp.StatusCode)
	}
	if p.standby.IsStandby() {
		t.Fatal("node still reports standby after promote")
	}
	if got := p.standby.Epoch(); got != 2 {
		t.Fatalf("promoted epoch = %d, want 2", got)
	}

	// A client retrying a pre-failover batch against the survivor must
	// dedup with the original count — the replicated idempotency window.
	ir := postBatch(t, p.sts.URL, "fo-0", batches[0])
	if ir.status != http.StatusOK || !ir.Deduped || ir.Accepted != len(batches[0]) {
		t.Fatalf("pre-failover batch replay: status %d deduped %v accepted %d, want 200/true/%d",
			ir.status, ir.Deduped, ir.Accepted, len(batches[0]))
	}

	for i, b := range batches[cut:] {
		ir := postBatch(t, p.sts.URL, fmt.Sprintf("fo-%d", cut+i), b)
		if ir.status != http.StatusOK || ir.Accepted != len(b) {
			t.Fatalf("post-failover batch %d: status %d accepted %d: %s", cut+i, ir.status, ir.Accepted, ir.Error)
		}
	}
	got := fullReport(t, p.sts.URL)
	if !bytes.Equal(got, want) {
		t.Fatalf("promoted standby report diverges from uninterrupted single node (%d vs %d bytes)", len(got), len(want))
	}

	status, body := getBody(t, p.sts.URL+replication.PathStatus)
	if status != http.StatusOK || !strings.Contains(string(body), `"role": "primary"`) {
		t.Fatalf("promoted node status: %d %s", status, body)
	}
}

// TestSemiSyncAckGate pins the zero-acked-loss mechanism: with
// ReplAck=1 and no standby attached, an ingest ack times out into a
// retryable 503 — including the dedup-hit retry — and succeeds only
// once a standby has really applied the batch.
func TestSemiSyncAckGate(t *testing.T) {
	records, env := fixture(t)
	batch := records[:32]

	primary := newServer(t, bounced.Config{
		Env: env, Store: store.NewMem(), ReplAck: 1, ReplAckTimeout: 100 * time.Millisecond,
	})
	pts := httptest.NewServer(primary.Handler())

	ir := postBatch(t, pts.URL, "gate-1", batch)
	if ir.status != http.StatusServiceUnavailable {
		t.Fatalf("ack without standby: status %d, want 503", ir.status)
	}
	// The batch is committed locally; the retry takes the dedup path,
	// which must also hold the ack until a standby confirms.
	ir = postBatch(t, pts.URL, "gate-1", batch)
	if ir.status != http.StatusServiceUnavailable {
		t.Fatalf("dedup-path ack without standby: status %d, want 503", ir.status)
	}

	standby := newServer(t, bounced.Config{Env: env, Standby: true, Store: store.NewMem(), QueueDepth: 8192})
	defer standby.Abort()
	sl, err := replication.NewStandby(replication.StandbyConfig{
		PrimaryURL: pts.URL, ID: "s1", PollWait: 100 * time.Millisecond,
		RetryInterval: 20 * time.Millisecond, Logf: func(string, ...any) {},
	}, standby)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); sl.Run(ctx) }()
	defer func() { cancel(); <-done; pts.Close(); primary.Abort() }()

	waitFor(t, 5*time.Second, "standby catch-up", func() bool {
		return standby.AppliedIndex() == primary.AppliedIndex()
	})
	ir = postBatch(t, pts.URL, "gate-1", batch)
	if ir.status != http.StatusOK || !ir.Deduped || ir.Accepted != len(batch) {
		t.Fatalf("retry with standby attached: status %d deduped %v accepted %d", ir.status, ir.Deduped, ir.Accepted)
	}

	status, stats := getBody(t, pts.URL+"/v1/stats")
	if status != http.StatusOK || !strings.Contains(string(stats), `"ack_timeouts": `) {
		t.Fatalf("stats missing replication block: %d", status)
	}
	if !strings.Contains(string(stats), `"role": "primary"`) {
		t.Fatal("stats replication block missing role")
	}
}

// TestStandbyRefusesWrites: a standby answers direct ingest with a
// retryable 503 pointing at the primary.
func TestStandbyRefusesWrites(t *testing.T) {
	records, env := fixture(t)
	standby := newServer(t, bounced.Config{Env: env, Standby: true, Store: store.NewMem(), QueueDepth: 8192})
	defer standby.Abort()
	sts := httptest.NewServer(standby.Handler())
	defer sts.Close()

	ir := postRecords(t, sts.URL, encodeNDJSON(t, records[:4]))
	if ir.status != http.StatusServiceUnavailable || !strings.Contains(ir.Error, "standby") {
		t.Fatalf("standby ingest: status %d error %q, want 503 naming the standby role", ir.status, ir.Error)
	}
	ir = postBatch(t, sts.URL, "sb-1", records[:4])
	if ir.status != http.StatusServiceUnavailable {
		t.Fatalf("standby batch ingest: status %d, want 503", ir.status)
	}
}

// TestStandbyResyncFromCheckpoint covers the 410 path: a standby
// starting from offset 0 against a primary whose WAL tail is pruned
// must bootstrap from the shipped checkpoint, then stream the rest,
// and still serve the same report bytes.
func TestStandbyResyncFromCheckpoint(t *testing.T) {
	records, env := fixture(t)
	half := len(records) / 2

	primary := newServer(t, bounced.Config{Env: env, Store: store.NewMem(), QueueDepth: 8192})
	pts := httptest.NewServer(primary.Handler())
	if ir := postBatch(t, pts.URL, "rs-0", records[:half]); ir.status != http.StatusOK {
		t.Fatalf("primary ingest: %d %s", ir.status, ir.Error)
	}
	// Checkpoint prunes the Mem engine's whole tail: offset 0 is gone.
	resp, err := http.Post(pts.URL+"/v1/checkpoint", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	standby := newServer(t, bounced.Config{Env: env, Standby: true, Store: store.NewMem(), QueueDepth: 8192})
	sl, err := replication.NewStandby(replication.StandbyConfig{
		PrimaryURL: pts.URL, ID: "s1", PollWait: 100 * time.Millisecond,
		RetryInterval: 20 * time.Millisecond, Logf: func(string, ...any) {},
	}, standby)
	if err != nil {
		t.Fatal(err)
	}
	standby.SetSync(sl)
	sts := httptest.NewServer(standby.Handler())
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); sl.Run(ctx) }()
	defer func() {
		cancel()
		<-done
		pts.Close()
		sts.Close()
		primary.Abort()
		standby.Abort()
	}()

	waitFor(t, 5*time.Second, "resync catch-up", func() bool {
		return standby.AppliedIndex() == primary.AppliedIndex()
	})
	if got := sl.Status().Resyncs; got != 1 {
		t.Fatalf("resyncs = %d, want 1", got)
	}
	if ir := postBatch(t, pts.URL, "rs-1", records[half:]); ir.status != http.StatusOK {
		t.Fatalf("primary ingest after resync: %d %s", ir.status, ir.Error)
	}
	waitFor(t, 5*time.Second, "incremental catch-up", func() bool {
		return standby.AppliedIndex() == primary.AppliedIndex()
	})
	want := fullReport(t, pts.URL)
	got := fullReport(t, sts.URL)
	if !bytes.Equal(got, want) {
		t.Fatalf("resynced standby report diverges from primary (%d vs %d bytes)", len(got), len(want))
	}
}

// TestAutoFailoverPromotes: a standby with a heartbeat timeout
// promotes itself when the primary stops answering, keeping every
// replicated record.
func TestAutoFailoverPromotes(t *testing.T) {
	records, env := fixture(t)
	p := newReplPair(t,
		bounced.Config{Env: env, ReplAck: 1, ReplAckTimeout: 10 * time.Second},
		bounced.Config{Env: env},
		replication.StandbyConfig{
			PollWait:        100 * time.Millisecond,
			FailoverTimeout: 400 * time.Millisecond,
		})
	defer p.stop()

	n := len(records) / 4
	if ir := postBatch(t, p.pts.URL, "af-0", records[:n]); ir.status != http.StatusOK {
		t.Fatalf("ingest: %d %s", ir.status, ir.Error)
	}
	applied := p.standby.AppliedIndex()
	if applied != uint64(n) {
		t.Fatalf("standby applied %d, want %d", applied, n)
	}

	p.pts.CloseClientConnections()
	p.pts.Close()
	p.primary.Abort()
	waitFor(t, 5*time.Second, "auto-promotion", func() bool { return !p.standby.IsStandby() })
	if got := p.standby.Epoch(); got != 2 {
		t.Fatalf("epoch after auto-failover = %d, want 2", got)
	}
	if got := p.standby.AppliedIndex(); got != applied {
		t.Fatalf("records across failover: applied %d, want %d (zero loss)", got, applied)
	}
}

// TestRouterFailoverEndToEnd drives the full cluster shape the chaos
// drill scripts: client → router → primary, primary dies, standby
// promotes, the router re-elects it, and the client's retried batch
// lands exactly once.
func TestRouterFailoverEndToEnd(t *testing.T) {
	records, env := fixture(t)
	p := newReplPair(t,
		bounced.Config{Env: env, ReplAck: 1, ReplAckTimeout: 10 * time.Second},
		bounced.Config{Env: env},
		replication.StandbyConfig{})
	defer p.stop()

	router, err := replication.NewRouter(replication.RouterConfig{
		Peers:         []string{p.pts.URL, p.sts.URL},
		ProbeInterval: 20 * time.Millisecond,
		Logf:          func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	rctx, rcancel := context.WithCancel(context.Background())
	defer rcancel()
	go router.Run(rctx)
	rts := httptest.NewServer(router.Handler())
	defer rts.Close()

	waitFor(t, 5*time.Second, "router election", func() bool { return router.Primary() == p.pts.URL })

	half := len(records) / 2
	if ir := postBatch(t, rts.URL, "rt-0", records[:half]); ir.status != http.StatusOK || ir.Accepted != half {
		t.Fatalf("ingest via router: %d accepted %d: %s", ir.status, ir.Accepted, ir.Error)
	}

	p.pts.Close()
	p.primary.Abort()
	resp, err := http.Post(p.sts.URL+"/v1/promote", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitFor(t, 5*time.Second, "router re-election", func() bool { return router.Primary() == p.sts.URL })

	// The batch retry a client owes after a failover-window error must
	// dedup; fresh traffic flows to the survivor.
	ir := postBatch(t, rts.URL, "rt-0", records[:half])
	if ir.status != http.StatusOK || !ir.Deduped {
		t.Fatalf("replay via router: status %d deduped %v", ir.status, ir.Deduped)
	}
	ir = postBatch(t, rts.URL, "rt-1", records[half:])
	if ir.status != http.StatusOK || ir.Accepted != len(records)-half {
		t.Fatalf("fresh batch via router: %d accepted %d: %s", ir.status, ir.Accepted, ir.Error)
	}
	if got := p.standby.Consumed(); got != uint64(len(records)) {
		// Drain the queue before judging: consumed trails accepted.
		waitFor(t, 5*time.Second, "survivor consumption", func() bool {
			return p.standby.Consumed() == uint64(len(records))
		})
		_ = got
	}
}
