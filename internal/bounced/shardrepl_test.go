package bounced_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/bounced"
	"repro/internal/dataset"
	"repro/internal/replication"
)

// TestCoordinatorShardURLsNotMutated: URL normalization must work on a
// private copy, not write through the caller's slice.
func TestCoordinatorShardURLsNotMutated(t *testing.T) {
	urls := []string{"http://a:1/", "http://b:2///"}
	want := append([]string(nil), urls...)
	if _, err := bounced.NewCoordinator(bounced.CoordinatorConfig{ShardURLs: urls}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(urls, want) {
		t.Fatalf("caller slice mutated: %v, want %v", urls, want)
	}
}

// TestCoordinatorGatherAbortsOnClientDisconnect: the fan-in must run
// under the inbound request's context, so a report client that hangs up
// cancels the shard fetches promptly instead of leaving them running
// against the shard tier for the fan-in client's full timeout.
func TestCoordinatorGatherAbortsOnClientDisconnect(t *testing.T) {
	var once sync.Once
	canceled := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc(replication.PathStatus, func(w http.ResponseWriter, _ *http.Request) {
		json.NewEncoder(w).Encode(replication.NodeStatus{Role: "primary", Epoch: 1})
	})
	mux.HandleFunc("/v1/partial", func(w http.ResponseWriter, r *http.Request) {
		// Serve nothing until the coordinator gives up on us.
		<-r.Context().Done()
		once.Do(func() { close(canceled) })
	})
	shard := httptest.NewServer(mux)
	defer shard.Close()

	coord, err := bounced.NewCoordinator(bounced.CoordinatorConfig{ShardURLs: []string{shard.URL}})
	if err != nil {
		t.Fatal(err)
	}
	cts := httptest.NewServer(coord.Handler())
	defer cts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, cts.URL+"/v1/report", nil)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
		t.Fatal("report finished despite the blocked shard")
	}
	// The shard-side fetch must be torn down almost immediately after
	// the client walks away — not after the fan-in client's 30s timeout.
	select {
	case <-canceled:
	case <-time.After(3 * time.Second):
		t.Fatal("shard fetch still running after client disconnect")
	}
}

// TestCoordinatorReprobeFollowsNewPrimary: when the primary a router
// reported dies before the partial fetch lands, one re-probe must pick
// up the router's next election instead of failing the gather.
func TestCoordinatorReprobeFollowsNewPrimary(t *testing.T) {
	records, env := fixture(t)
	want := singleNodeReport(t, records, env)

	live := newServer(t, bounced.Config{Env: env})
	defer live.Abort()
	lts := httptest.NewServer(live.Handler())
	defer lts.Close()
	if ir := postRecords(t, lts.URL, encodeNDJSON(t, records)); ir.status != http.StatusOK {
		t.Fatalf("live shard ingest: %d %s", ir.status, ir.Error)
	}

	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // connection refused from here on

	// A scripted router: the first status probe names the dead primary
	// (it just crashed), every later probe names the promoted survivor.
	var mu sync.Mutex
	probes := 0
	rmux := http.NewServeMux()
	rmux.HandleFunc(replication.PathRouterStatus, func(w http.ResponseWriter, _ *http.Request) {
		mu.Lock()
		probes++
		primary := dead.URL
		if probes > 1 {
			primary = lts.URL
		}
		mu.Unlock()
		json.NewEncoder(w).Encode(replication.RouterStatus{Primary: primary, PrimaryEpoch: 2})
	})
	router := httptest.NewServer(rmux)
	defer router.Close()

	coord, err := bounced.NewCoordinator(bounced.CoordinatorConfig{ShardURLs: []string{router.URL}, Env: env})
	if err != nil {
		t.Fatal(err)
	}
	cts := httptest.NewServer(coord.Handler())
	defer cts.Close()

	status, got := getBody(t, cts.URL+"/v1/report")
	if status != http.StatusOK {
		t.Fatalf("report through re-probe: status %d: %s", status, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("re-probed report diverges from single node (%d vs %d bytes)", len(got), len(want))
	}
	status, stats := getBody(t, cts.URL+"/v1/stats")
	if status != http.StatusOK {
		t.Fatalf("stats: status %d", status)
	}
	for _, needle := range []string{`"reprobes": 1`, `"routed": true`, `"epoch": 2`} {
		if !strings.Contains(string(stats), needle) {
			t.Fatalf("stats missing %s: %s", needle, stats)
		}
	}
}

// shardSet is one shard of a replicated-shard deployment: a semi-sync
// primary plus a standby (both carrying the shard's coordinates) behind
// a router, the topology DESIGN.md §14 describes.
type shardSet struct {
	pair   *replPair
	router *replication.Router
	rts    *httptest.Server
	stop   func()
}

func newShardSet(t *testing.T, env *analysis.Environment, idx, cnt int) *shardSet {
	t.Helper()
	pair := newReplPair(t,
		bounced.Config{Env: env, ShardCount: cnt, ShardIndex: idx, ReplAck: 1, ReplAckTimeout: 10 * time.Second},
		bounced.Config{Env: env, ShardCount: cnt, ShardIndex: idx},
		replication.StandbyConfig{ID: fmt.Sprintf("shard%d-standby", idx)})
	router, err := replication.NewRouter(replication.RouterConfig{
		Peers:         []string{pair.pts.URL, pair.sts.URL},
		ProbeInterval: 20 * time.Millisecond,
		Logf:          func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go router.Run(ctx)
	rts := httptest.NewServer(router.Handler())
	return &shardSet{
		pair:   pair,
		router: router,
		rts:    rts,
		stop: func() {
			cancel()
			rts.Close()
			pair.stop()
		},
	}
}

// TestReplicatedShardsFailover is the composition's acceptance test:
// two shards, each a replica set behind its own router, a coordinator
// fanning in through the routers. Shard 0's primary dies mid-stream,
// its standby promotes at a bumped epoch, the router re-elects it, the
// client's owed retry dedups, and the coordinator's merged report is
// byte-identical to an uninterrupted single node — every record
// classified exactly once across the failover.
func TestReplicatedShardsFailover(t *testing.T) {
	records, env := fixture(t)
	want := singleNodeReport(t, records, env)

	sets := []*shardSet{newShardSet(t, env, 0, 2), newShardSet(t, env, 1, 2)}
	defer sets[0].stop()
	defer sets[1].stop()
	for i, s := range sets {
		primary := s.pair.pts.URL
		waitFor(t, 5*time.Second, fmt.Sprintf("shard %d router election", i), func() bool {
			return s.router.Primary() == primary
		})
	}

	coord, err := bounced.NewCoordinator(bounced.CoordinatorConfig{
		ShardURLs: []string{sets[0].rts.URL, sets[1].rts.URL}, Env: env,
	})
	if err != nil {
		t.Fatal(err)
	}
	cts := httptest.NewServer(coord.Handler())
	defer cts.Close()

	parts := make([][]dataset.Record, 2)
	for i := range records {
		own := analysis.OwnerOf(&records[i], 2)
		parts[own] = append(parts[own], records[i])
	}
	if len(parts[0]) < 2 || len(parts[1]) < 1 {
		t.Fatalf("degenerate split: %d/%d", len(parts[0]), len(parts[1]))
	}

	// Shard 1 ingests its whole slice through its router, undisturbed.
	if ir := postBatch(t, sets[1].rts.URL, "sr1-all", parts[1]); ir.status != http.StatusOK || ir.Accepted != len(parts[1]) {
		t.Fatalf("shard 1 ingest: %d accepted %d of %d: %s", ir.status, ir.Accepted, len(parts[1]), ir.Error)
	}

	// Shard 0 gets half its slice, then loses its primary.
	half := len(parts[0]) / 2
	if ir := postBatch(t, sets[0].rts.URL, "sr0-0", parts[0][:half]); ir.status != http.StatusOK || ir.Accepted != half {
		t.Fatalf("shard 0 first half: %d accepted %d: %s", ir.status, ir.Accepted, ir.Error)
	}
	// Semi-sync acks: everything acked is already on the standby.
	if got, want := sets[0].pair.standby.AppliedIndex(), sets[0].pair.primary.AppliedIndex(); got != want {
		t.Fatalf("shard 0 standby applied %d, primary log end %d", got, want)
	}
	sets[0].pair.pts.Close()
	sets[0].pair.primary.Abort()
	resp, err := http.Post(sets[0].pair.sts.URL+replication.PathPromote, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("promote: status %d", resp.StatusCode)
	}
	if got := sets[0].pair.standby.Epoch(); got != 2 {
		t.Fatalf("promoted epoch = %d, want 2", got)
	}
	survivor := sets[0].pair.sts.URL
	waitFor(t, 5*time.Second, "shard 0 router re-election", func() bool {
		return sets[0].router.Primary() == survivor
	})

	// The retry a client owes for its in-flight batch must dedup on the
	// promoted standby, through the same router address.
	if ir := postBatch(t, sets[0].rts.URL, "sr0-0", parts[0][:half]); ir.status != http.StatusOK || !ir.Deduped {
		t.Fatalf("owed retry via router: status %d deduped %v", ir.status, ir.Deduped)
	}
	// The rest of the stream lands on the survivor.
	if ir := postBatch(t, sets[0].rts.URL, "sr0-1", parts[0][half:]); ir.status != http.StatusOK || ir.Accepted != len(parts[0])-half {
		t.Fatalf("shard 0 second half: %d accepted %d: %s", ir.status, ir.Accepted, ir.Error)
	}
	// Ownership still holds on the promoted standby: a shard-1 record
	// through shard 0's router is refused, not silently absorbed.
	if ir := postBatch(t, sets[0].rts.URL, "sr0-stray", parts[1][:1]); ir.status != http.StatusBadRequest || !strings.Contains(ir.Error, "owned by shard 1") {
		t.Fatalf("misroute after promotion: status %d error %q", ir.status, ir.Error)
	}

	status, got := getBody(t, cts.URL+"/v1/report")
	if status != http.StatusOK {
		t.Fatalf("coordinator report: status %d: %s", status, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("post-failover merged report diverges from single node (%d vs %d bytes)", len(got), len(want))
	}

	// The topology view names the promoted primary and its epoch.
	status, stats := getBody(t, cts.URL+"/v1/stats")
	if status != http.StatusOK {
		t.Fatalf("coordinator stats: status %d", status)
	}
	var cs struct {
		Shards []struct {
			URL     string `json:"url"`
			Routed  bool   `json:"routed"`
			Primary string `json:"primary"`
			Epoch   uint64 `json:"epoch"`
		} `json:"shards"`
	}
	if err := json.Unmarshal(stats, &cs); err != nil {
		t.Fatal(err)
	}
	if len(cs.Shards) != 2 {
		t.Fatalf("stats shards = %d", len(cs.Shards))
	}
	if !cs.Shards[0].Routed || cs.Shards[0].Primary != survivor || cs.Shards[0].Epoch != 2 {
		t.Fatalf("shard 0 view = %+v, want routed primary %s at epoch 2", cs.Shards[0], survivor)
	}
	if !cs.Shards[1].Routed || cs.Shards[1].Epoch != 1 {
		t.Fatalf("shard 1 view = %+v, want routed epoch 1", cs.Shards[1])
	}

	// Metrics expose the per-shard epoch gauges after the gather.
	status, metrics := getBody(t, cts.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("coordinator metrics: status %d", status)
	}
	epochLine := fmt.Sprintf("coordinator_shard_epoch{shard=%q} 2", sets[0].rts.URL)
	if !strings.Contains(string(metrics), epochLine) {
		t.Fatalf("metrics missing %q:\n%s", epochLine, metrics)
	}
	if !strings.Contains(string(metrics), "coordinator_shard_lag_records{") {
		t.Fatal("metrics missing per-shard lag gauge")
	}
}
