package bounced

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/analysis"
)

// CoordinatorConfig assembles a Coordinator.
type CoordinatorConfig struct {
	// ShardURLs are the shard nodes' base URLs (e.g.
	// "http://10.0.0.1:8080"). Their order is the merge order — any
	// order yields the same report bytes, but keeping it fixed makes the
	// fan-in fully deterministic.
	ShardURLs []string
	// Env supplies the external services report sections consult (same
	// contract as Config.Env).
	Env *analysis.Environment
	// Client overrides the HTTP client used for shard fan-in.
	Client *http.Client
}

// Coordinator is the thin fan-in tier of a sharded bounced deployment:
// it holds no records and no classifier state. Every report request
// fetches each shard's /v1/partial snapshot, merges the partial
// aggregates, and renders through the same section dispatcher a single
// node uses — so the report bytes are identical to one node having
// ingested the full stream (for the partial-renderable sections).
type Coordinator struct {
	cfg    CoordinatorConfig
	client *http.Client

	fanins    atomic.Uint64 // successful full fan-ins
	faninErrs atomic.Uint64 // fan-ins failed by an unreachable/invalid shard
	reports   atomic.Uint64 // reports rendered

	mu          sync.Mutex
	lastMergeMs float64
	lastRecords int
	startedAt   time.Time
}

// NewCoordinator wires a coordinator over the given shards.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if len(cfg.ShardURLs) == 0 {
		return nil, fmt.Errorf("bounced: coordinator needs at least one shard URL")
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	return &Coordinator{cfg: cfg, client: client, startedAt: time.Now()}, nil
}

// Handler returns the coordinator's HTTP routes.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/report", c.handleReport)
	mux.HandleFunc("/v1/stats", c.handleStats)
	mux.HandleFunc("/metrics", c.handleMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	return mux
}

// shardInfo is one shard's contribution to a fan-in.
type shardInfo struct {
	URL     string `json:"url"`
	Records int    `json:"records"`
	Bytes   int    `json:"snapshot_bytes"`
}

// gather fans in every shard's partial snapshot (concurrently) and
// merges them in ShardURLs order. Any unreachable or undecodable shard
// fails the whole fan-in: a silently partial report would be worse
// than no report.
func (c *Coordinator) gather() (*analysis.PartialSet, []shardInfo, error) {
	blobs := make([][]byte, len(c.cfg.ShardURLs))
	errs := make([]error, len(c.cfg.ShardURLs))
	var wg sync.WaitGroup
	for i, base := range c.cfg.ShardURLs {
		wg.Add(1)
		go func(i int, base string) {
			defer wg.Done()
			resp, err := c.client.Get(strings.TrimRight(base, "/") + "/v1/partial")
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %s", resp.Status)
				return
			}
			blobs[i], errs[i] = io.ReadAll(resp.Body)
		}(i, base)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			c.faninErrs.Add(1)
			return nil, nil, fmt.Errorf("shard %d (%s): %v", i, c.cfg.ShardURLs[i], err)
		}
	}

	infos := make([]shardInfo, len(blobs))
	t0 := time.Now()
	var merged *analysis.PartialSet
	for i, b := range blobs {
		ps, err := analysis.UnmarshalPartialSet(b, c.cfg.Env)
		if err != nil {
			c.faninErrs.Add(1)
			return nil, nil, fmt.Errorf("shard %d (%s): %v", i, c.cfg.ShardURLs[i], err)
		}
		infos[i] = shardInfo{URL: c.cfg.ShardURLs[i], Records: ps.Total, Bytes: len(b)}
		if merged == nil {
			merged = ps
			continue
		}
		if err := merged.Merge(ps); err != nil {
			c.faninErrs.Add(1)
			return nil, nil, fmt.Errorf("shard %d (%s): %v", i, c.cfg.ShardURLs[i], err)
		}
	}
	ms := float64(time.Since(t0).Nanoseconds()) / 1e6
	c.mu.Lock()
	c.lastMergeMs = ms
	c.lastRecords = merged.Total
	c.mu.Unlock()
	c.fanins.Add(1)
	return merged, infos, nil
}

// parseCoordinatorSections mirrors the node's -section grammar, with
// "all" meaning every partial-renderable section (squat and advice
// need the raw corpus, which no coordinator holds).
func parseCoordinatorSections(arg string) []bounce.Section {
	if arg == "" || arg == "all" {
		return bounce.PartialSections
	}
	var out []bounce.Section
	for _, s := range strings.Split(arg, ",") {
		out = append(out, bounce.Section(strings.TrimSpace(s)))
	}
	return out
}

// handleReport renders the merged report. Bytes are identical to a
// single node serving the same sections over the union of the shards'
// records.
func (c *Coordinator) handleReport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, 0, 0, "GET only")
		return
	}
	merged, _, err := c.gather()
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, 0, 0, err.Error())
		return
	}
	var buf strings.Builder
	st := bounce.NewPartialStudy(merged)
	if err := st.WriteReport(&buf, parseCoordinatorSections(r.URL.Query().Get("section"))); err != nil {
		httpError(w, http.StatusBadRequest, 0, 0, err.Error())
		return
	}
	c.reports.Add(1)
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte(buf.String()))
}

// coordinatorStats is the coordinator's /v1/stats schema.
type coordinatorStats struct {
	UptimeSeconds float64     `json:"uptime_seconds"`
	Shards        []shardInfo `json:"shards"`
	Records       int         `json:"records"`
	MergeMs       float64     `json:"merge_ms"`
	Fanins        uint64      `json:"fanins"`
	FaninErrors   uint64      `json:"fanin_errors"`
	Reports       uint64      `json:"reports"`
}

// handleStats fans in fresh shard snapshots and reports the topology.
func (c *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	merged, infos, err := c.gather()
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, 0, 0, err.Error())
		return
	}
	c.mu.Lock()
	ms := c.lastMergeMs
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, coordinatorStats{
		UptimeSeconds: time.Since(c.startedAt).Seconds(),
		Shards:        infos,
		Records:       merged.Total,
		MergeMs:       ms,
		Fanins:        c.fanins.Load(),
		FaninErrors:   c.faninErrs.Load(),
		Reports:       c.reports.Load(),
	})
}

// handleMetrics serves the coordinator counters in Prometheus text
// format. It does not fan in: metrics reflect the last gather, so a
// scrape never hammers the shard tier.
func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	ms := c.lastMergeMs
	records := c.lastRecords
	c.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "# HELP coordinator_shards Configured shard nodes.\n# TYPE coordinator_shards gauge\ncoordinator_shards %d\n", len(c.cfg.ShardURLs))
	fmt.Fprintf(&b, "# HELP coordinator_records Records covered by the last merged snapshot.\n# TYPE coordinator_records gauge\ncoordinator_records %d\n", records)
	fmt.Fprintf(&b, "# HELP coordinator_merge_ms Milliseconds the last partial merge took.\n# TYPE coordinator_merge_ms gauge\ncoordinator_merge_ms %g\n", ms)
	fmt.Fprintf(&b, "# HELP coordinator_fanins_total Successful shard fan-ins.\n# TYPE coordinator_fanins_total counter\ncoordinator_fanins_total %d\n", c.fanins.Load())
	fmt.Fprintf(&b, "# HELP coordinator_fanin_errors_total Fan-ins failed by an unreachable or invalid shard.\n# TYPE coordinator_fanin_errors_total counter\ncoordinator_fanin_errors_total %d\n", c.faninErrs.Load())
	fmt.Fprintf(&b, "# HELP coordinator_reports_total Merged reports rendered.\n# TYPE coordinator_reports_total counter\ncoordinator_reports_total %d\n", c.reports.Load())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write([]byte(b.String()))
}
