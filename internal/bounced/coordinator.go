package bounced

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/analysis"
	"repro/internal/replication"
)

// CoordinatorConfig assembles a Coordinator.
type CoordinatorConfig struct {
	// ShardURLs are the shards' base URLs (e.g. "http://10.0.0.1:8080").
	// Each entry may be a plain shard node or a -role=router front door
	// for that shard's replica set — the coordinator probes which one it
	// is on every fan-in. Their order is the merge order — any order
	// yields the same report bytes, but keeping it fixed makes the
	// fan-in fully deterministic.
	ShardURLs []string
	// Env supplies the external services report sections consult (same
	// contract as Config.Env).
	Env *analysis.Environment
	// Client overrides the HTTP client used for shard fan-in.
	Client *http.Client
}

// Coordinator is the thin fan-in tier of a sharded bounced deployment:
// it holds no records and no classifier state. Every report request
// fetches each shard's /v1/partial snapshot, merges the partial
// aggregates, and renders through the same section dispatcher a single
// node uses — so the report bytes are identical to one node having
// ingested the full stream (for the partial-renderable sections).
//
// When a shard URL fronts a replica set (a -role=router instance), the
// coordinator follows the router's elected highest-epoch primary for
// the partial fetch, and retries one re-probe before failing the
// gather — enough to ride through a promotion that completed between
// the probe and the fetch.
type Coordinator struct {
	cfg    CoordinatorConfig
	client *http.Client

	fanins    atomic.Uint64 // successful full fan-ins
	faninErrs atomic.Uint64 // fan-ins failed by an unreachable/invalid shard
	reports   atomic.Uint64 // reports rendered
	reprobes  atomic.Uint64 // second-chance re-probes after a failed shard fetch

	mu          sync.Mutex
	lastMergeMs float64
	lastRecords int
	lastShards  []shardInfo // topology view from the last successful gather
	startedAt   time.Time
}

// NewCoordinator wires a coordinator over the given shards.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if len(cfg.ShardURLs) == 0 {
		return nil, fmt.Errorf("bounced: coordinator needs at least one shard URL")
	}
	// Normalize into a private copy: the caller's slice stays untouched.
	urls := make([]string, len(cfg.ShardURLs))
	for i, u := range cfg.ShardURLs {
		urls[i] = strings.TrimRight(u, "/")
	}
	cfg.ShardURLs = urls
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	return &Coordinator{cfg: cfg, client: client, startedAt: time.Now()}, nil
}

// Handler returns the coordinator's HTTP routes.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/report", c.handleReport)
	mux.HandleFunc("/v1/stats", c.handleStats)
	mux.HandleFunc("/metrics", c.handleMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	return mux
}

// shardInfo is one shard's contribution to a fan-in.
type shardInfo struct {
	URL        string `json:"url"`
	Routed     bool   `json:"routed,omitempty"`  // URL is a replica-set router
	Primary    string `json:"primary,omitempty"` // elected node the partial came from
	Epoch      uint64 `json:"epoch,omitempty"`
	LagRecords uint64 `json:"lag_records,omitempty"` // worst standby lag behind the primary
	Records    int    `json:"records"`
	Bytes      int    `json:"snapshot_bytes"`
}

// resolveShard decides where a shard's partial snapshot lives. A
// replica-set router answers /v1/router/status: follow its elected
// primary and record epoch plus the worst standby lag. A plain node
// 404s there; fall back to its own /v1/repl/status for the epoch and
// fetch from the node itself.
func (c *Coordinator) resolveShard(ctx context.Context, base string) (target string, info shardInfo, err error) {
	info = shardInfo{URL: base}
	var rs replication.RouterStatus
	ok, err := c.getJSON(ctx, base+replication.PathRouterStatus, &rs)
	if err != nil {
		return "", info, err
	}
	if ok {
		if rs.Primary == "" {
			return "", info, fmt.Errorf("router has no elected primary")
		}
		info.Routed = true
		info.Primary = rs.Primary
		info.Epoch = rs.PrimaryEpoch
		var primaryNext uint64
		for _, p := range rs.Peers {
			if p.URL == rs.Primary {
				primaryNext = p.NextIndex
			}
		}
		for _, p := range rs.Peers {
			if p.Role == "standby" && p.Error == "" && primaryNext > p.NextIndex {
				if lag := primaryNext - p.NextIndex; lag > info.LagRecords {
					info.LagRecords = lag
				}
			}
		}
		return rs.Primary, info, nil
	}
	// Not a router. A bounced node reports its own role/epoch; tolerate
	// a 404 (foreign or ancient node) and fetch from the base URL with
	// no epoch rather than failing the gather.
	var ns replication.NodeStatus
	if ok, err = c.getJSON(ctx, base+replication.PathStatus, &ns); err != nil {
		return "", info, err
	} else if ok {
		info.Epoch = ns.Epoch
	}
	return base, info, nil
}

// getJSON fetches and decodes url into out. A 404 reports (false, nil)
// so callers can treat "endpoint not there" as a topology signal;
// transport errors and other statuses are hard errors.
func (c *Coordinator) getJSON(ctx context.Context, url string, out any) (bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return false, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, resp.Body)
		return false, nil
	}
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("%s: status %s", url, resp.Status)
	}
	return true, json.NewDecoder(resp.Body).Decode(out)
}

// fetchPartial grabs one node's partial snapshot.
func (c *Coordinator) fetchPartial(ctx context.Context, target string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, strings.TrimRight(target, "/")+"/v1/partial", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %s", resp.Status)
	}
	return io.ReadAll(resp.Body)
}

// fetchShard resolves one shard and fetches its partial. On any
// failure it re-probes once: a primary that died between the probe and
// the fetch has usually been replaced by the router's next sweep, so a
// single second look rides through the election instead of failing the
// whole gather.
func (c *Coordinator) fetchShard(ctx context.Context, base string) ([]byte, shardInfo, error) {
	target, info, err := c.resolveShard(ctx, base)
	if err == nil {
		var blob []byte
		if blob, err = c.fetchPartial(ctx, target); err == nil {
			return blob, info, nil
		}
		err = fmt.Errorf("partial from %s: %v", target, err)
	}
	if ctx.Err() != nil {
		return nil, info, err
	}
	c.reprobes.Add(1)
	target, info, err2 := c.resolveShard(ctx, base)
	if err2 != nil {
		return nil, info, fmt.Errorf("%v (re-probe: %v)", err, err2)
	}
	blob, err2 := c.fetchPartial(ctx, target)
	if err2 != nil {
		return nil, info, fmt.Errorf("%v (re-probe partial from %s: %v)", err, target, err2)
	}
	return blob, info, nil
}

// gather fans in every shard's partial snapshot (concurrently) and
// merges them in ShardURLs order. Any unreachable or undecodable shard
// fails the whole fan-in: a silently partial report would be worse
// than no report. ctx is the inbound request's context, so a client
// that disconnects cancels the fan-in instead of leaving it running
// against the shard tier.
func (c *Coordinator) gather(ctx context.Context) (*analysis.PartialSet, []shardInfo, error) {
	blobs := make([][]byte, len(c.cfg.ShardURLs))
	infos := make([]shardInfo, len(c.cfg.ShardURLs))
	errs := make([]error, len(c.cfg.ShardURLs))
	var wg sync.WaitGroup
	for i, base := range c.cfg.ShardURLs {
		wg.Add(1)
		go func(i int, base string) {
			defer wg.Done()
			blobs[i], infos[i], errs[i] = c.fetchShard(ctx, base)
		}(i, base)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			c.faninErrs.Add(1)
			return nil, nil, fmt.Errorf("shard %d (%s): %v", i, c.cfg.ShardURLs[i], err)
		}
	}

	t0 := time.Now()
	var merged *analysis.PartialSet
	for i, b := range blobs {
		ps, err := analysis.UnmarshalPartialSet(b, c.cfg.Env)
		if err != nil {
			c.faninErrs.Add(1)
			return nil, nil, fmt.Errorf("shard %d (%s): %v", i, c.cfg.ShardURLs[i], err)
		}
		infos[i].Records, infos[i].Bytes = ps.Total, len(b)
		if merged == nil {
			merged = ps
			continue
		}
		if err := merged.Merge(ps); err != nil {
			c.faninErrs.Add(1)
			return nil, nil, fmt.Errorf("shard %d (%s): %v", i, c.cfg.ShardURLs[i], err)
		}
	}
	ms := float64(time.Since(t0).Nanoseconds()) / 1e6
	c.mu.Lock()
	c.lastMergeMs = ms
	c.lastRecords = merged.Total
	c.lastShards = append([]shardInfo(nil), infos...)
	c.mu.Unlock()
	c.fanins.Add(1)
	return merged, infos, nil
}

// parseCoordinatorSections mirrors the node's -section grammar, with
// "all" meaning every partial-renderable section (squat and advice
// need the raw corpus, which no coordinator holds).
func parseCoordinatorSections(arg string) []bounce.Section {
	if arg == "" || arg == "all" {
		return bounce.PartialSections
	}
	var out []bounce.Section
	for _, s := range strings.Split(arg, ",") {
		out = append(out, bounce.Section(strings.TrimSpace(s)))
	}
	return out
}

// handleReport renders the merged report. Bytes are identical to a
// single node serving the same sections over the union of the shards'
// records.
func (c *Coordinator) handleReport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, 0, 0, "GET only")
		return
	}
	merged, _, err := c.gather(r.Context())
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, 0, 0, err.Error())
		return
	}
	var buf strings.Builder
	st := bounce.NewPartialStudy(merged)
	if err := st.WriteReport(&buf, parseCoordinatorSections(r.URL.Query().Get("section"))); err != nil {
		httpError(w, http.StatusBadRequest, 0, 0, err.Error())
		return
	}
	c.reports.Add(1)
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte(buf.String()))
}

// coordinatorStats is the coordinator's /v1/stats schema.
type coordinatorStats struct {
	UptimeSeconds float64     `json:"uptime_seconds"`
	Shards        []shardInfo `json:"shards"`
	Records       int         `json:"records"`
	MergeMs       float64     `json:"merge_ms"`
	Fanins        uint64      `json:"fanins"`
	FaninErrors   uint64      `json:"fanin_errors"`
	Reprobes      uint64      `json:"reprobes"`
	Reports       uint64      `json:"reports"`
}

// handleStats fans in fresh shard snapshots and reports the topology,
// including each shard's replication epoch and worst standby lag.
func (c *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	merged, infos, err := c.gather(r.Context())
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, 0, 0, err.Error())
		return
	}
	c.mu.Lock()
	ms := c.lastMergeMs
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, coordinatorStats{
		UptimeSeconds: time.Since(c.startedAt).Seconds(),
		Shards:        infos,
		Records:       merged.Total,
		MergeMs:       ms,
		Fanins:        c.fanins.Load(),
		FaninErrors:   c.faninErrs.Load(),
		Reprobes:      c.reprobes.Load(),
		Reports:       c.reports.Load(),
	})
}

// handleMetrics serves the coordinator counters in Prometheus text
// format. It does not fan in: metrics reflect the last gather, so a
// scrape never hammers the shard tier.
func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	ms := c.lastMergeMs
	records := c.lastRecords
	shards := append([]shardInfo(nil), c.lastShards...)
	c.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "# HELP coordinator_shards Configured shard nodes.\n# TYPE coordinator_shards gauge\ncoordinator_shards %d\n", len(c.cfg.ShardURLs))
	fmt.Fprintf(&b, "# HELP coordinator_records Records covered by the last merged snapshot.\n# TYPE coordinator_records gauge\ncoordinator_records %d\n", records)
	fmt.Fprintf(&b, "# HELP coordinator_merge_ms Milliseconds the last partial merge took.\n# TYPE coordinator_merge_ms gauge\ncoordinator_merge_ms %g\n", ms)
	fmt.Fprintf(&b, "# HELP coordinator_fanins_total Successful shard fan-ins.\n# TYPE coordinator_fanins_total counter\ncoordinator_fanins_total %d\n", c.fanins.Load())
	fmt.Fprintf(&b, "# HELP coordinator_fanin_errors_total Fan-ins failed by an unreachable or invalid shard.\n# TYPE coordinator_fanin_errors_total counter\ncoordinator_fanin_errors_total %d\n", c.faninErrs.Load())
	fmt.Fprintf(&b, "# HELP coordinator_reprobes_total Second-chance shard re-probes after a failed fetch.\n# TYPE coordinator_reprobes_total counter\ncoordinator_reprobes_total %d\n", c.reprobes.Load())
	fmt.Fprintf(&b, "# HELP coordinator_reports_total Merged reports rendered.\n# TYPE coordinator_reports_total counter\ncoordinator_reports_total %d\n", c.reports.Load())
	if len(shards) > 0 {
		b.WriteString("# HELP coordinator_shard_epoch Replication epoch of the shard's elected primary at the last gather.\n# TYPE coordinator_shard_epoch gauge\n")
		for _, s := range shards {
			fmt.Fprintf(&b, "coordinator_shard_epoch{shard=%q} %d\n", s.URL, s.Epoch)
		}
		b.WriteString("# HELP coordinator_shard_lag_records Worst standby lag (records) behind the shard's primary at the last gather.\n# TYPE coordinator_shard_lag_records gauge\n")
		for _, s := range shards {
			fmt.Fprintf(&b, "coordinator_shard_lag_records{shard=%q} %d\n", s.URL, s.LagRecords)
		}
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write([]byte(b.String()))
}
