// Package bounced implements the always-on bounce-analytics service:
// an HTTP server that ingests Figure-3 delivery records online and
// serves the paper's analyses live. Where bouncegen/bounceanalyze are
// one-shot batch tools, bounced mirrors the production shape of the
// paper's pipeline at Coremail — telemetry arrives continuously, and
// every table and figure is queryable at any instant over exactly the
// records ingested so far.
//
// The data path is a single bounded pipeline:
//
//	POST /v1/records ──┐                      ┌─ GET /v1/report  (batch-identical bytes)
//	                   ├─▶ queue ─▶ store ────┼─ GET /v1/stats   (JSON counters)
//	engine -generate ──┘  (Pipe)  (Incremental)└─ GET /metrics    (Prometheus text)
//
// Ingestion accepts NDJSON batches (gzip-aware, line-numbered 400s on
// malformed lines) and backpressures producers through the bounded
// queue. Reports are served from analysis.Incremental snapshots, so
// GET /v1/report returns byte-identical output to a bounceanalyze
// batch run over the same records — the equivalence the differential
// test enforces. Graceful shutdown drains the queue completely and
// flushes a final snapshot; no accepted record is ever dropped.
package bounced

import (
	"errors"
	"net/http"
	httppprof "net/http/pprof"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/analysis"
	"repro/internal/dataset"
	"repro/internal/ndr"
	"repro/internal/policy"
)

// ErrIngestClosed is returned by Ingest once shutdown has begun.
var ErrIngestClosed = errors.New("bounced: ingestion closed")

// Config assembles a Server.
type Config struct {
	// Env supplies the external services (geo, blocklist, leak corpus,
	// registries) report sections consult. May be nil for ingest-only
	// deployments; env-dependent sections then return zero results.
	Env *analysis.Environment
	// Pipeline overrides the classification pipeline parameters (zero
	// selects the paper defaults).
	Pipeline analysis.PipelineConfig
	// QueueDepth bounds the ingest queue (default 1024). Producers
	// block once it fills — backpressure, not loss.
	QueueDepth int
	// PolicyMetrics, when set, surfaces per-stage policy-chain
	// rejection counters on /v1/stats and /metrics (from the delivery
	// engine backing -generate mode or the startup replay).
	PolicyMetrics *policy.Metrics
	// Seed is reported on /v1/stats so clients can reproduce the
	// environment.
	Seed uint64
	// DecodeWorkers sets the NDJSON decode fan-out per ingest request
	// (<=0 selects GOMAXPROCS).
	DecodeWorkers int
	// EnablePprof mounts the net/http/pprof handlers under
	// /debug/pprof/ on the service mux.
	EnablePprof bool
}

// Server is the bounce-analytics service. Create with New, mount
// Handler on an http.Server, and stop with Drain (graceful) or Abort.
type Server struct {
	cfg   Config
	inc   *analysis.Incremental
	queue *dataset.Pipe

	accepted atomic.Uint64 // records admitted to the queue
	consumed atomic.Uint64 // records folded into the store
	badLines atomic.Uint64 // rejected NDJSON lines
	batches  atomic.Uint64 // POST /v1/records calls admitted

	// consumedCond broadcasts store progress for drain barriers: a
	// report taken after an ingest request returns covers everything
	// that request admitted.
	consumedMu   sync.Mutex
	consumedCond *sync.Cond
	consumerDone bool

	// live classification state: the most recent snapshot pipeline
	// labels records as they arrive for the /metrics counters and the
	// classify-latency histogram.
	liveMu   sync.RWMutex
	livePipe *analysis.Pipeline

	hist      *latencyHist
	degrees   [3]atomic.Uint64            // by dataset.Degree
	typeHits  map[ndr.Type]*atomic.Uint64 // live bounce-type counters
	ambiguous atomic.Uint64

	// snapshot cache: rebuilding is skipped while no new records have
	// been consumed since the last snapshot. snapColdMs/snapWarmMs
	// hold the wall time of the most recent cold (full re-classify)
	// and warm (suffix-only) snapshot builds.
	snapMu     sync.Mutex
	snapStudy  *bounce.Study
	snapAt     uint64 // consumed count the cached snapshot covers
	snapColdMs float64
	snapWarmMs float64
	snapTaken  atomic.Uint64
	startedAt  time.Time
	closed     atomic.Bool
	consumerWG sync.WaitGroup
}

// New creates a Server and starts its store consumer.
func New(cfg Config) *Server {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	s := &Server{
		cfg:       cfg,
		inc:       analysis.NewIncremental(cfg.Pipeline),
		queue:     dataset.NewPipe(cfg.QueueDepth),
		hist:      newLatencyHist(),
		typeHits:  make(map[ndr.Type]*atomic.Uint64, len(ndr.AllTypes)),
		startedAt: time.Now(),
	}
	s.consumedCond = sync.NewCond(&s.consumedMu)
	for _, t := range ndr.AllTypes {
		s.typeHits[t] = new(atomic.Uint64)
	}
	s.inc.StartTrainer()
	s.consumerWG.Add(1)
	go s.consume()
	return s
}

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/records", s.handleRecords)
	mux.HandleFunc("/v1/report", s.handleReport)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/snapshot", s.handleSnapshot)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	if s.cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", httppprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	}
	return mux
}

// Ingest queues one record from an in-process producer (the -generate
// delivery engine), under the same backpressure as HTTP ingestion.
// The live metrics update here, on the producer's goroutine, so many
// concurrent producers observe in parallel instead of serializing on
// the single store consumer.
func (s *Server) Ingest(rec *dataset.Record) error {
	if s.closed.Load() {
		return ErrIngestClosed
	}
	if err := s.queue.Write(rec); err != nil {
		return ErrIngestClosed
	}
	s.accepted.Add(1)
	s.observe(rec)
	return nil
}

// consume is the single store writer: it drains the queue into the
// incremental analysis store. The store append is a short critical
// section (Drain training rides the Incremental's own trainer
// goroutine), so the consumer keeps pace with many producers.
func (s *Server) consume() {
	defer s.consumerWG.Done()
	defer func() {
		s.consumedMu.Lock()
		s.consumerDone = true
		s.consumedCond.Broadcast()
		s.consumedMu.Unlock()
	}()
	for {
		rec, ok := s.queue.Next()
		if !ok {
			return
		}
		s.inc.Add(rec)
		s.consumed.Add(1)
		s.consumedMu.Lock()
		s.consumedCond.Broadcast()
		s.consumedMu.Unlock()
	}
}

// observe updates the live metrics for one record: bounce degree
// always, bounce types and classify latency once a snapshot pipeline
// exists. Live counters are an operational view labeled by the latest
// snapshot — reports always re-classify against a fresh snapshot.
func (s *Server) observe(rec *dataset.Record) {
	deg := rec.BounceDegree()
	s.degrees[int(deg)].Add(1)
	s.liveMu.RLock()
	p := s.livePipe
	s.liveMu.RUnlock()
	if p == nil {
		return
	}
	start := time.Now()
	c := p.ClassifyRecord(rec)
	s.hist.observe(time.Since(start).Nanoseconds())
	if c.Ambiguous {
		s.ambiguous.Add(1)
		return
	}
	for _, t := range c.Types {
		if ctr, ok := s.typeHits[t]; ok {
			ctr.Add(1)
		}
	}
}

// waitConsumed blocks until the store has folded in at least target
// records (or the consumer exited) and reports whether the target was
// reached — the barrier that makes a report cover every record whose
// ingest request already returned.
func (s *Server) waitConsumed(target uint64) bool {
	s.consumedMu.Lock()
	defer s.consumedMu.Unlock()
	for s.consumed.Load() < target && !s.consumerDone {
		s.consumedCond.Wait()
	}
	return s.consumed.Load() >= target
}

// Drain closes ingestion, waits for the queue to empty into the
// store, and returns the final record count. Every record admitted
// before Drain is in the store when it returns — the zero-loss
// shutdown guarantee. Callers must stop HTTP traffic first
// (http.Server.Shutdown), so no writer is mid-flight.
func (s *Server) Drain() uint64 {
	if s.closed.CompareAndSwap(false, true) {
		s.queue.Close()
	}
	s.consumerWG.Wait()
	s.inc.StopTrainer()
	return s.consumed.Load()
}

// Abort hard-stops the service: buffered records are discarded and
// blocked producers unblock with errors. For tests and emergency
// teardown only; Drain is the production path.
func (s *Server) Abort() {
	s.closed.Store(true)
	s.queue.CloseRead()
	s.consumerWG.Wait()
	s.inc.StopTrainer()
}

// Accepted reports how many records ingestion has admitted.
func (s *Server) Accepted() uint64 { return s.accepted.Load() }

// Consumed reports how many records the store has folded in.
func (s *Server) Consumed() uint64 { return s.consumed.Load() }
