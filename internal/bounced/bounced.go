// Package bounced implements the always-on bounce-analytics service:
// an HTTP server that ingests Figure-3 delivery records online and
// serves the paper's analyses live. Where bouncegen/bounceanalyze are
// one-shot batch tools, bounced mirrors the production shape of the
// paper's pipeline at Coremail — telemetry arrives continuously, and
// every table and figure is queryable at any instant over exactly the
// records ingested so far.
//
// The data path is a single bounded pipeline:
//
//	POST /v1/records ──┐                      ┌─ GET /v1/report  (batch-identical bytes)
//	                   ├─▶ queue ─▶ store ────┼─ GET /v1/stats   (JSON counters)
//	engine -generate ──┘  (Pipe)  (Incremental)└─ GET /metrics    (Prometheus text)
//
// Ingestion accepts NDJSON batches (gzip-aware, line-numbered 400s on
// malformed lines) and backpressures producers through the bounded
// queue. Reports are served from analysis.Incremental snapshots, so
// GET /v1/report returns byte-identical output to a bounceanalyze
// batch run over the same records — the equivalence the differential
// test enforces. Graceful shutdown drains the queue completely and
// flushes a final snapshot; no accepted record is ever dropped.
package bounced

import (
	"errors"
	"fmt"
	"log"
	"net/http"
	httppprof "net/http/pprof"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/analysis"
	"repro/internal/dataset"
	"repro/internal/faultinject"
	"repro/internal/ndr"
	"repro/internal/policy"
	"repro/internal/replication"
	"repro/internal/simrng"
	"repro/internal/store"
)

// ErrIngestClosed is returned by Ingest once shutdown has begun.
var ErrIngestClosed = errors.New("bounced: ingestion closed")

// Config assembles a Server.
type Config struct {
	// Env supplies the external services (geo, blocklist, leak corpus,
	// registries) report sections consult. May be nil for ingest-only
	// deployments; env-dependent sections then return zero results.
	Env *analysis.Environment
	// Pipeline overrides the classification pipeline parameters (zero
	// selects the paper defaults).
	Pipeline analysis.PipelineConfig
	// QueueDepth bounds the ingest queue (default 1024). Producers
	// block once it fills — backpressure, not loss.
	QueueDepth int
	// PolicyMetrics, when set, surfaces per-stage policy-chain
	// rejection counters on /v1/stats and /metrics (from the delivery
	// engine backing -generate mode or the startup replay).
	PolicyMetrics *policy.Metrics
	// Seed is reported on /v1/stats so clients can reproduce the
	// environment.
	Seed uint64
	// DecodeWorkers sets the NDJSON decode fan-out per ingest request
	// (<=0 selects GOMAXPROCS).
	DecodeWorkers int
	// EnablePprof mounts the net/http/pprof handlers under
	// /debug/pprof/ on the service mux.
	EnablePprof bool
	// ReadTimeout bounds how long one /v1/records request may spend
	// reading its body — the slow-loris countermeasure. Zero disables
	// the per-request deadline.
	ReadTimeout time.Duration
	// Faults, when active, injects deterministic stream faults into
	// every ingest request and stalls the store consumer (-fault-spec).
	Faults *faultinject.Spec
	// DedupWindow is how many recent batch IDs the idempotency window
	// remembers (default 256). A replayed X-Batch-Id inside the window
	// is acknowledged without re-ingesting its records, which is what
	// makes client retries after a 429 or a dropped response safe.
	DedupWindow int
	// ShardCount > 0 puts the node in shard role: HTTP ingestion admits
	// only records owned by this shard (analysis.OwnerOf(rec, ShardCount)
	// == ShardIndex) and rejects others as line errors, so a misrouted
	// feed fails loudly instead of double-counting. ShardIndex must be
	// in [0, ShardCount). Zero means single role: own everything.
	ShardCount int
	ShardIndex int
	// Store, when set, makes the node durable: every admitted record is
	// WAL-appended before its ack, checkpoints capture the analysis
	// state off the hot path, and New recovers from the newest
	// checkpoint plus the WAL tail. The Server owns the engine from New
	// on (Drain/Abort close it). Nil keeps the server memory-only.
	Store store.Engine
	// CheckpointInterval is the background checkpoint cadence when a
	// Store is configured. Zero disables periodic checkpoints; Drain
	// still takes a final one, and POST /v1/checkpoint forces one.
	CheckpointInterval time.Duration
	// Standby boots the node as a replication standby: ingestion is
	// refused with a retryable 503 and records arrive only through
	// ApplyBatch (the replication sync loop). Requires a Store. A
	// standby flips to primary via Promote (POST /v1/promote or the
	// sync loop's heartbeat timeout).
	Standby bool
	// ReplAck > 0 makes acks semi-synchronous: an ingest response
	// leaves only after this many standbys confirm they applied the
	// batch's records. With a standby attached this is what makes
	// "zero acked records lost" across failover a guarantee — anything
	// the client saw acked is already on the survivor.
	ReplAck int
	// ReplAckTimeout bounds a semi-sync ack wait (default 5s); on
	// expiry the batch stays in the local WAL but the client gets a
	// retryable 503 and must retry the same X-Batch-Id.
	ReplAckTimeout time.Duration
}

// Server is the bounce-analytics service. Create with New, mount
// Handler on an http.Server, and stop with Drain (graceful) or Abort.
type Server struct {
	cfg   Config
	inc   *analysis.Incremental
	queue *dataset.Pipe

	accepted atomic.Uint64 // records admitted to the queue
	consumed atomic.Uint64 // records folded into the store
	badLines atomic.Uint64 // rejected NDJSON lines
	batches  atomic.Uint64 // POST /v1/records calls admitted

	// Overload-shedding and idempotency accounting. The zero-loss
	// balance every chaos run must satisfy, per request classified
	// exactly once: accepted + shed + rejected + deduped == presented.
	reserved     atomic.Int64  // queue slots reserved by admitted, unconsumed records
	shedRecords  atomic.Uint64 // records refused with 429 (declared batch size)
	shedBatches  atomic.Uint64 // batches refused with 429
	rejected     atomic.Uint64 // records refused with 4xx (malformed/oversized)
	deduped      atomic.Uint64 // records skipped as batch-ID replays
	dedupBatches atomic.Uint64 // batches acknowledged from the dedup window
	shedStreak   atomic.Uint64 // consecutive sheds, drives the Retry-After backoff
	retryRNG     *simrng.RNG   // jitter source for Retry-After hints
	retryRNGMu   sync.Mutex

	faults *faultinject.Injector
	dedup  dedupWindow

	// Durability (nil eng = memory-only). walMu orders WAL appends with
	// queue writes so replay order equals store-fold order — the
	// property that makes recovery byte-identical. cpMu serializes
	// checkpoint writers; lastCP is the record count the newest
	// checkpoint covers (the skip test for idle checkpoints).
	eng      store.Engine
	walMu    sync.Mutex
	cpMu     sync.Mutex
	lastCP   atomic.Uint64
	recovery RecoveryInfo
	cpStop   chan struct{}
	cpWG     sync.WaitGroup

	// Replication (durable nodes only). walIndex mirrors the engine's
	// next WAL index and is bumped under walMu so it always equals the
	// log end in append order; the tracker wakes standby long-polls
	// when it advances past a synced prefix and gates semi-sync acks.
	// incMu protects the s.inc pointer itself, which a standby resync
	// (ResetTo) swaps while readers are live. epoch is the fencing
	// token: promotion bumps it, the checkpoint persists it, and the
	// router prefers the highest one it can see.
	standby            atomic.Bool
	epoch              atomic.Uint64
	lastCPEpoch        atomic.Uint64
	promotions         atomic.Uint64
	walIndex           atomic.Uint64
	tracker            *replication.Tracker
	incMu              sync.RWMutex
	syncLoop           atomic.Pointer[replication.Standby]
	replApplies        atomic.Uint64
	replAppliedRecords atomic.Uint64
	replAckWaits       atomic.Uint64
	replAckTimeouts    atomic.Uint64

	// consumedCond broadcasts store progress for drain barriers: a
	// report taken after an ingest request returns covers everything
	// that request admitted.
	consumedMu   sync.Mutex
	consumedCond *sync.Cond
	consumerDone bool

	// live classification state: the most recent snapshot pipeline
	// labels records as they arrive for the /metrics counters and the
	// classify-latency histogram. obsPool recycles per-goroutine
	// ClassifyCtx wrappers (zero-alloc classification); a pooled ctx
	// bound to a superseded pipeline is dropped on retrieval.
	liveMu   sync.RWMutex
	livePipe *analysis.ShardedPipeline
	obsPool  sync.Pool // of *obsCtx

	hist      *latencyHist
	degrees   [3]atomic.Uint64            // by dataset.Degree
	typeHits  map[ndr.Type]*atomic.Uint64 // live bounce-type counters
	ambiguous atomic.Uint64

	// snapshot cache: rebuilding is skipped while no new records have
	// been consumed since the last snapshot. snapColdMs/snapWarmMs
	// hold the wall time of the most recent cold (full re-classify)
	// and warm (suffix-only) snapshot builds.
	snapMu     sync.Mutex
	snapStudy  *bounce.Study
	snapAt     uint64 // consumed count the cached snapshot covers
	snapColdMs float64
	snapWarmMs float64

	// partial snapshot cache: the marshaled partial aggregate for the
	// cached study (rebuilt only when the study advances).
	partialMu    sync.Mutex
	partialFor   *bounce.Study
	partialBytes []byte
	snapTaken    atomic.Uint64
	startedAt    time.Time
	closed       atomic.Bool
	consumerWG   sync.WaitGroup
}

// New creates a Server and starts its store consumer. With a
// configured Store it first recovers: newest decodable checkpoint,
// then a WAL-tail replay, so the server resumes exactly where the
// previous process — cleanly drained or killed — left off.
func New(cfg Config) (*Server, error) {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	if cfg.DedupWindow <= 0 {
		cfg.DedupWindow = 256
	}
	if cfg.Standby && cfg.Store == nil {
		return nil, errors.New("bounced: a standby needs a storage engine (replication ships WAL tails)")
	}
	s := &Server{
		cfg:       cfg,
		inc:       analysis.NewIncremental(cfg.Pipeline),
		queue:     dataset.NewPipe(cfg.QueueDepth),
		hist:      newLatencyHist(),
		typeHits:  make(map[ndr.Type]*atomic.Uint64, len(ndr.AllTypes)),
		startedAt: time.Now(),
		faults:    faultinject.New(cfg.Faults),
		retryRNG:  simrng.New(cfg.Seed).Stream("retry-after"),
		eng:       cfg.Store,
	}
	s.dedup.init(cfg.DedupWindow)
	s.consumedCond = sync.NewCond(&s.consumedMu)
	for _, t := range ndr.AllTypes {
		s.typeHits[t] = new(atomic.Uint64)
	}
	s.epoch.Store(1)
	s.standby.Store(cfg.Standby)
	if s.eng != nil {
		if err := s.recover(); err != nil {
			return nil, err
		}
		next := s.eng.Stats().NextIndex
		s.walIndex.Store(next)
		s.lastCPEpoch.Store(s.epoch.Load())
		s.tracker = replication.NewTracker(next)
	}
	s.inc.StartTrainer()
	s.consumerWG.Add(1)
	go s.consume()
	if s.eng != nil && cfg.CheckpointInterval > 0 {
		s.cpStop = make(chan struct{})
		s.cpWG.Add(1)
		go s.checkpointLoop(cfg.CheckpointInterval)
	}
	return s, nil
}

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/records", s.handleRecords)
	mux.HandleFunc("/v1/report", s.handleReport)
	mux.HandleFunc("/v1/partial", s.handlePartial)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/snapshot", s.handleSnapshot)
	mux.HandleFunc("/v1/checkpoint", s.handleCheckpoint)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc(replication.PathStatus, s.handleReplStatus)
	mux.HandleFunc(replication.PathWAL, s.handleReplWAL)
	mux.HandleFunc(replication.PathCheckpoint, s.handleReplCheckpoint)
	mux.HandleFunc(replication.PathPromote, s.handlePromote)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	if s.cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", httppprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	}
	return mux
}

// tryAdmit reserves n queue slots without blocking: the admission
// check HTTP batch ingestion sheds on. The reservation counts records
// admitted but not yet consumed, so a grant means the queue will have
// room as the consumer drains — writers never block indefinitely
// behind a full buffer.
func (s *Server) tryAdmit(n int) bool {
	depth := int64(s.cfg.QueueDepth)
	for {
		r := s.reserved.Load()
		if r+int64(n) > depth {
			return false
		}
		if s.reserved.CompareAndSwap(r, r+int64(n)) {
			return true
		}
	}
}

// admitWait reserves n slots, blocking until the consumer frees
// enough — the backpressure path in-process producers and streamed
// (non-batch-ID) HTTP ingestion use. Returns false once shutdown
// begins.
func (s *Server) admitWait(n int) bool {
	s.consumedMu.Lock()
	defer s.consumedMu.Unlock()
	for {
		if s.closed.Load() {
			return false
		}
		if s.tryAdmit(n) {
			return true
		}
		if s.consumerDone {
			return false
		}
		s.consumedCond.Wait()
	}
}

// enqueue writes an already-admitted record to the queue, WAL-first on
// durable nodes. The caller must hold a reservation for it; on failure
// the reservation is released.
func (s *Server) enqueue(rec *dataset.Record) error {
	if s.eng == nil {
		return s.queueAdmitted(rec)
	}
	s.walMu.Lock()
	defer s.walMu.Unlock()
	if err := s.eng.Append(store.Batch{Records: []dataset.Record{*rec}}); err != nil {
		s.reserved.Add(-1)
		return fmt.Errorf("bounced: wal append: %w", err)
	}
	s.walIndex.Add(1)
	return s.queueAdmitted(rec)
}

// queueAdmitted is the queue half of enqueue: the record is already
// reserved (and, on durable nodes, already in the WAL).
func (s *Server) queueAdmitted(rec *dataset.Record) error {
	if err := s.queue.Write(rec); err != nil {
		s.reserved.Add(-1)
		return ErrIngestClosed
	}
	s.accepted.Add(1)
	s.observe(rec)
	return nil
}

// incState returns the current analysis accumulator. The pointer is
// stable for the caller's use — a standby resync swaps s.inc for a
// fresh accumulator but never mutates the old one again — so holding
// the read lock only around the load is enough.
func (s *Server) incState() *analysis.Incremental {
	s.incMu.RLock()
	defer s.incMu.RUnlock()
	return s.inc
}

// owns reports whether this node's shard role covers rec. Single-role
// nodes own everything; shard nodes own the substreams OwnerOf assigns
// them.
func (s *Server) owns(rec *dataset.Record) bool {
	return s.cfg.ShardCount <= 0 || analysis.OwnerOf(rec, s.cfg.ShardCount) == s.cfg.ShardIndex
}

// Ingest queues one record from an in-process producer (the -generate
// delivery engine), under the same backpressure as HTTP ingestion.
// The live metrics update here, on the producer's goroutine, so many
// concurrent producers observe in parallel instead of serializing on
// the single store consumer.
func (s *Server) Ingest(rec *dataset.Record) error {
	if s.closed.Load() {
		return ErrIngestClosed
	}
	if s.standby.Load() {
		return errStandbyIngest
	}
	if !s.admitWait(1) {
		return ErrIngestClosed
	}
	return s.enqueue(rec)
}

// ingestSubBatch caps how many records IngestBatch admits per
// reservation — small enough that a sub-batch never starves other
// producers of the whole queue, large enough to amortize the admission
// and WAL costs.
const ingestSubBatch = 256

// IngestBatch queues a slice of records under the same blocking
// admission as Ingest, moving them in sub-batches so one caller cannot
// reserve the entire queue. Records are enqueued in slice order; the
// caller keeps ownership of recs afterwards (the queue copies). It
// reports how many records were enqueued — short only when shutdown
// (or a WAL failure) interrupts the batch.
func (s *Server) IngestBatch(recs []dataset.Record) (int, error) {
	max := ingestSubBatch
	if s.cfg.QueueDepth < max {
		max = s.cfg.QueueDepth
	}
	done := 0
	for done < len(recs) {
		if s.closed.Load() {
			return done, ErrIngestClosed
		}
		if s.standby.Load() {
			return done, errStandbyIngest
		}
		n := len(recs) - done
		if n > max {
			n = max
		}
		if !s.admitWait(n) {
			return done, ErrIngestClosed
		}
		w, err := s.enqueueBatch(recs[done : done+n])
		done += w
		if err != nil {
			return done, err
		}
	}
	return done, nil
}

// enqueueBatch writes already-admitted records to the queue under one
// WAL group and one ring-buffer pass, reporting how many landed. On a
// short write the unused reservations are released; replay order still
// equals store order because the WAL append and the queue writes share
// the walMu section, exactly as in the per-record path.
func (s *Server) enqueueBatch(recs []dataset.Record) (int, error) {
	if s.eng != nil {
		s.walMu.Lock()
		if err := s.eng.Append(store.Batch{Records: recs}); err != nil {
			s.walMu.Unlock()
			s.reserved.Add(-int64(len(recs)))
			return 0, fmt.Errorf("bounced: wal append: %w", err)
		}
		s.walIndex.Add(uint64(len(recs)))
		n, err := s.queue.WriteBatch(recs)
		s.walMu.Unlock()
		return s.finishEnqueueBatch(recs, n, err)
	}
	n, err := s.queue.WriteBatch(recs)
	return s.finishEnqueueBatch(recs, n, err)
}

// finishEnqueueBatch settles accounting after a (possibly short) batch
// queue write: accepted and live metrics for what landed, reservation
// release for what did not.
func (s *Server) finishEnqueueBatch(recs []dataset.Record, n int, err error) (int, error) {
	if n > 0 {
		s.accepted.Add(uint64(n))
		s.observeBatch(recs[:n])
	}
	if err != nil {
		s.reserved.Add(-int64(len(recs) - n))
		return n, ErrIngestClosed
	}
	return n, nil
}

// consume is the single store writer: it drains the queue into the
// incremental analysis store. The store append is a short critical
// section (Drain training rides the Incremental's own trainer
// goroutine), so the consumer keeps pace with many producers.
func (s *Server) consume() {
	defer s.consumerWG.Done()
	defer func() {
		s.consumedMu.Lock()
		s.consumerDone = true
		s.consumedCond.Broadcast()
		s.consumedMu.Unlock()
	}()
	stall := s.faults.ConsumerStall()
	if stall > 0 {
		// Injected downstream stall: the consumer wedges per record,
		// which is what backs the queue up and exercises shedding.
		for {
			rec, ok := s.queue.Next()
			if !ok {
				return
			}
			time.Sleep(stall)
			s.incState().Add(rec)
			s.consumed.Add(1)
			s.reserved.Add(-1)
			s.consumedMu.Lock()
			s.consumedCond.Broadcast()
			s.consumedMu.Unlock()
		}
	}
	// Fast path: drain whatever is buffered in one ring-buffer pass and
	// fold it into the store under one critical section. Equivalent to
	// the per-record loop (AddBatch appends in order), with per-record
	// lock traffic amortized across the batch.
	batch := make([]dataset.Record, ingestSubBatch)
	for {
		n, ok := s.queue.NextBatch(batch)
		if !ok {
			return
		}
		s.incState().AddBatch(batch[:n])
		clear(batch[:n]) // the store copied; do not pin record strings
		s.consumed.Add(uint64(n))
		s.reserved.Add(-int64(n))
		s.consumedMu.Lock()
		s.consumedCond.Broadcast()
		s.consumedMu.Unlock()
	}
}

// dedupWindow is a FIFO idempotency window over recent batch IDs. A
// batch ID is registered only after its records are fully admitted, so
// a shed or rejected batch can be retried under the same ID.
type dedupWindow struct {
	mu    sync.Mutex
	seen  map[string]int // batch ID -> records accepted
	order []string
	cap   int
}

func (d *dedupWindow) init(capacity int) {
	d.seen = make(map[string]int, capacity)
	d.cap = capacity
}

// lookup reports the accepted-record count of a previously admitted
// batch ID.
func (d *dedupWindow) lookup(id string) (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	n, ok := d.seen[id]
	return n, ok
}

// register remembers an admitted batch, evicting the oldest entry once
// the window is full.
func (d *dedupWindow) register(id string, n int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.seen[id]; ok {
		return
	}
	if len(d.order) >= d.cap {
		delete(d.seen, d.order[0])
		d.order = d.order[1:]
	}
	d.seen[id] = n
	d.order = append(d.order, id)
}

// retryAfter computes the shed-response backoff hint: exponential in
// the current shed streak with deterministic jitter, so a retrying
// client herd spreads out instead of stampeding the next admission
// window.
func (s *Server) retryAfter() time.Duration {
	streak := s.shedStreak.Add(1)
	if streak > 7 {
		streak = 7
	}
	base := 50 * time.Millisecond << (streak - 1)
	s.retryRNGMu.Lock()
	jitter := 0.7 + 0.6*s.retryRNG.Float64() // ±30%
	s.retryRNGMu.Unlock()
	return time.Duration(float64(base) * jitter)
}

// obsCtx pairs a reusable zero-alloc classification context with the
// pipeline it was built over, so the pool can detect and drop contexts
// orphaned by a snapshot swap.
type obsCtx struct {
	pipe *analysis.ShardedPipeline
	cx   *analysis.ClassifyCtx
}

// obsCtxFor returns a pooled classification context for p, building a
// fresh one when the pool is empty or its context predates p.
func (s *Server) obsCtxFor(p *analysis.ShardedPipeline) *obsCtx {
	if v := s.obsPool.Get(); v != nil {
		if oc := v.(*obsCtx); oc.pipe == p {
			return oc
		}
	}
	return &obsCtx{pipe: p, cx: p.NewClassifyCtx()}
}

// observe updates the live metrics for one record: bounce degree
// always, bounce types and classify latency once a snapshot pipeline
// exists. Live counters are an operational view labeled by the latest
// snapshot — reports always re-classify against a fresh snapshot.
func (s *Server) observe(rec *dataset.Record) {
	s.degrees[int(rec.BounceDegree())].Add(1)
	s.liveMu.RLock()
	p := s.livePipe
	s.liveMu.RUnlock()
	if p == nil {
		return
	}
	oc := s.obsCtxFor(p)
	s.observeClassified(oc, rec)
	s.obsPool.Put(oc)
}

// observeBatch is observe over a slice, fetching the classification
// context once per batch instead of once per record.
func (s *Server) observeBatch(recs []dataset.Record) {
	for i := range recs {
		s.degrees[int(recs[i].BounceDegree())].Add(1)
	}
	s.liveMu.RLock()
	p := s.livePipe
	s.liveMu.RUnlock()
	if p == nil {
		return
	}
	oc := s.obsCtxFor(p)
	for i := range recs {
		s.observeClassified(oc, &recs[i])
	}
	s.obsPool.Put(oc)
}

// observeClassified classifies one record through oc and folds the
// verdict into the live counters and the classify-latency histogram.
func (s *Server) observeClassified(oc *obsCtx, rec *dataset.Record) {
	start := time.Now()
	c := oc.cx.ClassifyRecord(rec)
	s.hist.observe(time.Since(start).Nanoseconds())
	if c.Ambiguous {
		s.ambiguous.Add(1)
		return
	}
	for _, t := range c.Types {
		if ctr, ok := s.typeHits[t]; ok {
			ctr.Add(1)
		}
	}
}

// waitConsumed blocks until the store has folded in at least target
// records (or the consumer exited) and reports whether the target was
// reached — the barrier that makes a report cover every record whose
// ingest request already returned.
func (s *Server) waitConsumed(target uint64) bool {
	s.consumedMu.Lock()
	defer s.consumedMu.Unlock()
	for s.consumed.Load() < target && !s.consumerDone {
		s.consumedCond.Wait()
	}
	return s.consumed.Load() >= target
}

// Drain closes ingestion, waits for the queue to empty into the
// store, and returns the final record count. Every record admitted
// before Drain is in the store when it returns — the zero-loss
// shutdown guarantee. Callers must stop HTTP traffic first
// (http.Server.Shutdown), so no writer is mid-flight.
func (s *Server) Drain() uint64 {
	if s.closed.CompareAndSwap(false, true) {
		s.queue.Close()
	}
	s.consumerWG.Wait()
	s.incState().StopTrainer()
	if s.eng != nil {
		s.stopCheckpointLoop()
		// The final checkpoint makes the next boot replay-free; failing
		// to take it only costs the restart a WAL-tail replay.
		if err := s.CheckpointNow(); err != nil {
			log.Printf("bounced: final checkpoint: %v", err)
		}
		if err := s.eng.Close(); err != nil {
			log.Printf("bounced: store close: %v", err)
		}
	}
	return s.consumed.Load()
}

// Abort hard-stops the service: buffered records are discarded and
// blocked producers unblock with errors. For tests and emergency
// teardown only; Drain is the production path. On durable nodes Abort
// deliberately skips the final checkpoint — it is the crash-shaped
// teardown, and recovery must rebuild the dropped queue tail from the
// WAL alone.
func (s *Server) Abort() {
	s.closed.Store(true)
	s.queue.CloseRead()
	s.consumerWG.Wait()
	s.incState().StopTrainer()
	if s.eng != nil {
		s.stopCheckpointLoop()
		s.eng.Close()
	}
}

func (s *Server) stopCheckpointLoop() {
	if s.cpStop != nil {
		close(s.cpStop)
		s.cpWG.Wait()
		s.cpStop = nil
	}
}

// Accepted reports how many records ingestion has admitted.
func (s *Server) Accepted() uint64 { return s.accepted.Load() }

// Consumed reports how many records the store has folded in.
func (s *Server) Consumed() uint64 { return s.consumed.Load() }
