package bounced

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/ndr"
	"repro/internal/store"
)

// latencyBounds are the classify-latency histogram bucket upper bounds
// in nanoseconds (500ns .. ~8ms, doubling), plus an implicit +Inf.
var latencyBounds = []int64{
	500, 1000, 2000, 4000, 8000, 16000, 32000, 64000,
	128000, 256000, 512000, 1024000, 2048000, 4096000, 8192000,
}

// latencyHist is a fixed-bucket latency histogram. Buckets are coarse
// enough for a mutex: observe is a handful of nanoseconds next to the
// classification it measures.
type latencyHist struct {
	mu      sync.Mutex
	buckets []uint64 // len(latencyBounds)+1, last is +Inf
	count   uint64
	sum     int64
}

func newLatencyHist() *latencyHist {
	return &latencyHist{buckets: make([]uint64, len(latencyBounds)+1)}
}

func (h *latencyHist) observe(ns int64) {
	i := sort.Search(len(latencyBounds), func(i int) bool { return ns <= latencyBounds[i] })
	h.mu.Lock()
	h.buckets[i]++
	h.count++
	h.sum += ns
	h.mu.Unlock()
}

// quantile estimates the q-quantile (0..1) in nanoseconds by linear
// interpolation within the containing bucket, the same estimate a
// Prometheus histogram_quantile would produce from /metrics. bounds
// are the bucket upper bounds; buckets has one extra +Inf bucket.
func quantile(bounds []int64, buckets []uint64, count uint64, q float64) float64 {
	if count == 0 {
		return 0
	}
	rank := q * float64(count)
	var seen float64
	for i, b := range buckets {
		if b == 0 {
			continue
		}
		lo := float64(0)
		if i > 0 {
			lo = float64(bounds[i-1])
		}
		hi := lo * 2
		if i < len(bounds) {
			hi = float64(bounds[i])
		}
		if seen+float64(b) >= rank {
			frac := (rank - seen) / float64(b)
			return lo + frac*(hi-lo)
		}
		seen += float64(b)
	}
	return float64(bounds[len(bounds)-1])
}

// stats summarizes the histogram for /v1/stats and BENCH_bounced.json.
func (h *latencyHist) stats() latencyStats {
	h.mu.Lock()
	buckets := append([]uint64(nil), h.buckets...)
	count, sum := h.count, h.sum
	h.mu.Unlock()
	st := latencyStats{Count: count}
	if count == 0 {
		return st
	}
	st.P50NS = quantile(latencyBounds, buckets, count, 0.50)
	st.P90NS = quantile(latencyBounds, buckets, count, 0.90)
	st.P99NS = quantile(latencyBounds, buckets, count, 0.99)
	st.MeanNS = float64(sum) / float64(count)
	return st
}

// handleMetrics serves the service counters in the Prometheus text
// exposition format (hand-rolled; the repo is stdlib-only).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	gauge := func(name, help string, v interface{}) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}

	counter("bounced_records_accepted_total", "Records admitted to the ingest queue.", s.accepted.Load())
	counter("bounced_records_consumed_total", "Records folded into the analysis store.", s.consumed.Load())
	counter("bounced_ingest_batches_total", "Accepted POST /v1/records batches.", s.batches.Load())
	counter("bounced_ingest_bad_lines_total", "Rejected NDJSON lines.", s.badLines.Load())
	counter("bounced_records_shed_total", "Records refused with 429 under queue overload.", s.shedRecords.Load())
	counter("bounced_shed_batches_total", "Batches refused with 429 under queue overload.", s.shedBatches.Load())
	counter("bounced_records_rejected_total", "Records refused with 4xx (malformed or oversized batches).", s.rejected.Load())
	counter("bounced_records_deduped_total", "Records skipped as batch-ID replays.", s.deduped.Load())
	counter("bounced_dedup_batches_total", "Batches acknowledged from the idempotency window.", s.dedupBatches.Load())
	if faults := s.faults.Counts(); len(faults) > 0 {
		kinds := make([]string, 0, len(faults))
		for k := range faults {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		fmt.Fprintf(&b, "# HELP bounced_faults_injected_total Faults fired by the fault-injection layer.\n# TYPE bounced_faults_injected_total counter\n")
		for _, k := range kinds {
			fmt.Fprintf(&b, "bounced_faults_injected_total{kind=%q} %d\n", k, faults[k])
		}
	}
	counter("bounced_snapshots_total", "Analysis snapshots built.", s.snapTaken.Load())
	warmSnaps, coldSnaps := s.incState().Snapshots()
	counter("bounced_snapshots_warm_total", "Snapshots that reused cached verdicts (suffix-only classify).", warmSnaps)
	counter("bounced_snapshots_cold_total", "Snapshots that re-classified the full corpus.", coldSnaps)
	gauge("bounced_queue_depth", "Records buffered in the ingest queue.", s.queue.Len())
	gauge("bounced_queue_capacity", "Ingest queue capacity.", s.queue.Cap())

	fmt.Fprintf(&b, "# HELP bounced_bounce_degree_total Records by bounce degree.\n# TYPE bounced_bounce_degree_total counter\n")
	for d := dataset.NonBounced; d <= dataset.HardBounced; d++ {
		fmt.Fprintf(&b, "bounced_bounce_degree_total{degree=%q} %d\n", d.String(), s.degrees[int(d)].Load())
	}

	fmt.Fprintf(&b, "# HELP bounced_bounce_type_total Live-classified failed attempts by bounce type.\n# TYPE bounced_bounce_type_total counter\n")
	for _, t := range ndr.AllTypes {
		fmt.Fprintf(&b, "bounced_bounce_type_total{type=%q} %d\n", t.String(), s.typeHits[t].Load())
	}
	counter("bounced_ambiguous_records_total", "Live-classified records with only ambiguous failures.", s.ambiguous.Load())

	if s.cfg.PolicyMetrics != nil {
		fmt.Fprintf(&b, "# HELP bounced_policy_stage_hits_total Delivery-engine policy-chain rejections by stage.\n# TYPE bounced_policy_stage_hits_total counter\n")
		for _, h := range s.cfg.PolicyMetrics.Snapshot() {
			fmt.Fprintf(&b, "bounced_policy_stage_hits_total{stage=%q,phase=%q,type=%q} %d\n",
				h.Stage, h.Phase, h.Type, h.Hits)
		}
	}

	if s.eng != nil {
		est := s.eng.Stats()
		gauge("bounced_wal_segments", "WAL segments on disk (gauge; pruning shrinks it).", est.Segments)
		gauge("bounced_wal_bytes", "Total WAL bytes on disk.", est.WALBytes)
		gauge("bounced_wal_next_index", "Record index the next WAL append assigns (log length over all time).", est.NextIndex)
		counter("bounced_wal_appended_records_total", "Records appended to the WAL by this process.", est.AppendedRecords)
		counter("bounced_wal_appended_batches_total", "Batches appended to the WAL by this process.", est.AppendedBatches)
		counter("bounced_wal_pruned_segments_total", "WAL segments removed by checkpoint pruning.", est.PrunedSegments)
		counter("bounced_checkpoints_total", "Checkpoints written by this process.", est.Checkpoints)
		gauge("bounced_last_checkpoint_records", "Record count the newest checkpoint covers.", est.LastCheckpointRecords)
		if est.LastCheckpointUnix > 0 {
			gauge("bounced_last_checkpoint_age_seconds", "Seconds since the newest checkpoint was written.",
				fmt.Sprintf("%g", time.Since(time.Unix(est.LastCheckpointUnix, 0)).Seconds()))
		}
		gauge("bounced_records_replayed_at_start", "WAL-tail records replayed during boot recovery.", s.recovery.Replayed)
		fmt.Fprintf(&b, "# HELP bounced_fsync_latency_seconds WAL fsync latency.\n# TYPE bounced_fsync_latency_seconds histogram\n")
		var cum uint64
		for i, bound := range store.FsyncBounds {
			cum += est.FsyncHist[i]
			fmt.Fprintf(&b, "bounced_fsync_latency_seconds_bucket{le=\"%g\"} %d\n", float64(bound)/1e9, cum)
		}
		fmt.Fprintf(&b, "bounced_fsync_latency_seconds_bucket{le=\"+Inf\"} %d\n", est.Fsyncs)
		fmt.Fprintf(&b, "bounced_fsync_latency_seconds_sum %g\n", float64(est.FsyncNanos)/1e9)
		fmt.Fprintf(&b, "bounced_fsync_latency_seconds_count %d\n", est.Fsyncs)
	}

	if s.tracker != nil {
		role := 0
		if s.standby.Load() {
			role = 1
		}
		standbys, maxLag := s.tracker.Snapshot()
		gauge("bounced_standby", "1 when the node is a replication standby, 0 when primary.", role)
		gauge("bounced_epoch", "Replication fencing epoch; promotion bumps it.", s.epoch.Load())
		gauge("bounced_repl_next_index", "WAL log end in record indices (replication offset space).", s.walIndex.Load())
		gauge("bounced_repl_standbys", "Standbys currently polling this node.", len(standbys))
		gauge("bounced_repl_max_lag_records", "Records the slowest polling standby is behind the log end.", maxLag)
		counter("bounced_promotions_total", "Standby-to-primary promotions on this node.", s.promotions.Load())
		counter("bounced_repl_ack_waits_total", "Ingest acks gated on a semi-sync standby confirmation.", s.replAckWaits.Load())
		counter("bounced_repl_ack_timeouts_total", "Semi-sync ack waits that timed out into a retryable 503.", s.replAckTimeouts.Load())
		counter("bounced_repl_applies_total", "Replicated WAL units applied by this standby.", s.replApplies.Load())
		counter("bounced_repl_applied_records_total", "Records applied from replicated WAL units.", s.replAppliedRecords.Load())
		if sl := s.syncLoop.Load(); sl != nil && s.standby.Load() {
			st := sl.Status()
			gauge("bounced_repl_sync_lag_records", "Records this standby is behind the primary's reported log end.", st.LagRecords)
			counter("bounced_repl_polls_total", "WAL-tail polls this standby has completed.", st.Polls)
			counter("bounced_repl_resyncs_total", "Full checkpoint resyncs this standby has performed.", st.Resyncs)
		}
	}

	h := s.hist
	h.mu.Lock()
	buckets := append([]uint64(nil), h.buckets...)
	count, sum := h.count, h.sum
	h.mu.Unlock()
	fmt.Fprintf(&b, "# HELP bounced_classify_latency_seconds Live per-record classification latency.\n# TYPE bounced_classify_latency_seconds histogram\n")
	var cum uint64
	for i, bound := range latencyBounds {
		cum += buckets[i]
		fmt.Fprintf(&b, "bounced_classify_latency_seconds_bucket{le=\"%g\"} %d\n", float64(bound)/1e9, cum)
	}
	fmt.Fprintf(&b, "bounced_classify_latency_seconds_bucket{le=\"+Inf\"} %d\n", count)
	fmt.Fprintf(&b, "bounced_classify_latency_seconds_sum %g\n", float64(sum)/1e9)
	fmt.Fprintf(&b, "bounced_classify_latency_seconds_count %d\n", count)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write([]byte(b.String()))
}
