package bounced

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"time"

	"repro/internal/analysis"
	"repro/internal/dataset"
	"repro/internal/faultinject"
)

// ChaosConfig drives a hostile replay: the corpus is sent as
// idempotent batches (X-Batch-Id) while a client-side fault schedule
// deliberately damages sends — torn bodies, truncated gzip, slow-loris
// trickles, duplicate replays — and every refusal is retried until the
// batch lands. A chaos run against a healthy (or fault-injecting)
// server must converge on exactly the clean run's final state.
type ChaosConfig struct {
	// URL is the service base, e.g. http://localhost:8425. Ignored when
	// ShardURLs is set.
	URL string
	// ShardURLs, when non-empty, runs the replay against a sharded
	// deployment: each record routes to the shard that owns its
	// substream (analysis.OwnerOf over len(ShardURLs) shards), so every
	// entry must be shard i's ingest address — the shard node itself or
	// its replica-set router. Batches stay sequential across the whole
	// stream, which preserves per-substream ingestion order because a
	// substream lives entirely inside one shard.
	ShardURLs []string
	// Path is the JSONL (optionally gzipped) record file to replay.
	Path string
	// BatchSize is records per POST (default 200).
	BatchSize int
	// Seed namespaces the batch IDs so reruns against a shared server
	// do not collide with a previous run's dedup window.
	Seed uint64
	// Faults is the client-side fault schedule. Nil or inactive runs a
	// plain sequential idempotent replay.
	Faults *faultinject.Spec
	// MaxRetries bounds attempts per batch (default 50). 429 sheds
	// honor the server's Retry-After hint between attempts.
	MaxRetries int
	// Gzip compresses clean request bodies.
	Gzip bool
	// Rate caps the replay at records per second; 0 means as fast as
	// acceptance allows. The kill -9 drill uses it to hold the stream
	// open long enough to crash the server mid-flight.
	Rate float64
	// Progress, when set, receives one line per ~50 batches.
	Progress io.Writer
}

// ChaosResult summarizes a chaos replay. Presented is the total record
// count across every HTTP send (damaged, shed, duplicated, and clean):
// the server's accepted+shed+rejected+deduped counters must sum to
// exactly this, or records were lost or double-counted.
type ChaosResult struct {
	Records     int               `json:"records"`
	Batches     int               `json:"batches"`
	Presented   int               `json:"presented"`
	Retries     int               `json:"retries"`
	Shed        int               `json:"shed_429"`
	Faulted     int               `json:"faulted_sends"`
	Duplicates  int               `json:"duplicate_sends"`
	Deduped     int               `json:"deduped_acks"`
	Seconds     float64           `json:"seconds"`
	FaultCounts map[string]uint64 `json:"fault_counts,omitempty"`
}

// Chaos replays cfg.Path against cfg.URL under the fault schedule.
// Batches are sent sequentially — batch k+1 only after k is accepted —
// because the server's report depends on ingestion order; the price is
// throughput, the prize is a byte-identical final report.
func Chaos(cfg ChaosConfig) (*ChaosResult, error) {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 200
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 50
	}
	f, err := os.Open(cfg.Path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rd, err := dataset.NewDecodingReader(f)
	if err != nil {
		return nil, err
	}

	inj := faultinject.New(cfg.Faults)
	client := &http.Client{Timeout: 2 * time.Minute}
	res := &ChaosResult{}
	start := time.Now()
	var sendErr error
	if n := len(cfg.ShardURLs); n > 0 {
		// Sharded replay: per-shard batch streams with per-shard ID
		// namespaces, still one batch in flight at a time overall.
		idxs := make([]int, n)
		sent := 0
		scanErr := scanShardRecordLines(rd, LoadgenConfig{BatchSize: cfg.BatchSize, Rate: cfg.Rate}, n, start, func(shard int, body []byte, count int) {
			if sendErr != nil {
				return
			}
			idxs[shard]++
			sent++
			id := fmt.Sprintf("chaos-%d-s%d-%d", cfg.Seed, shard, idxs[shard])
			sendErr = sendChaosBatch(client, cfg, cfg.ShardURLs[shard], inj.NextPlan(), res, id, body, count)
			if cfg.Progress != nil && sent%50 == 0 {
				fmt.Fprintf(cfg.Progress, "chaos: %d records in %d batches across %d shards (%d retries, %d shed)\n",
					res.Records, res.Batches, n, res.Retries, res.Shed)
			}
		})
		if sendErr != nil {
			return nil, sendErr
		}
		if scanErr != nil {
			return nil, scanErr
		}
		res.Seconds = time.Since(start).Seconds()
		res.FaultCounts = inj.Counts()
		return res, nil
	}
	idx := 0
	scanRecordLines(rd, LoadgenConfig{BatchSize: cfg.BatchSize, Rate: cfg.Rate}, start, func(body []byte, count int) {
		if sendErr != nil {
			return
		}
		idx++
		id := fmt.Sprintf("chaos-%d-%d", cfg.Seed, idx)
		sendErr = sendChaosBatch(client, cfg, cfg.URL, inj.NextPlan(), res, id, body, count)
		if cfg.Progress != nil && idx%50 == 0 {
			fmt.Fprintf(cfg.Progress, "chaos: %d records in %d batches (%d retries, %d shed)\n",
				res.Records, res.Batches, res.Retries, res.Shed)
		}
	})
	if sendErr != nil {
		return nil, sendErr
	}
	res.Seconds = time.Since(start).Seconds()
	res.FaultCounts = inj.Counts()
	return res, nil
}

// scanShardRecordLines is scanRecordLines for a sharded target: it
// decodes every line just enough to compute its owning shard and
// accumulates per-shard batch bodies, flushing each shard's batch when
// it fills. Rate pacing covers the total record stream. The final
// short batches flush in shard order at EOF.
func scanShardRecordLines(r io.Reader, cfg LoadgenConfig, shards int, start time.Time, emit func(shard int, body []byte, count int)) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	bufs := make([]bytes.Buffer, shards)
	counts := make([]int, shards)
	total := 0
	var dec dataset.Decoder
	var rec dataset.Record
	flush := func(shard int) {
		if counts[shard] == 0 {
			return
		}
		if cfg.Rate > 0 {
			due := start.Add(time.Duration(float64(total) / cfg.Rate * float64(time.Second)))
			if d := time.Until(due); d > 0 {
				time.Sleep(d)
			}
		}
		body := make([]byte, bufs[shard].Len())
		copy(body, bufs[shard].Bytes())
		emit(shard, body, counts[shard])
		bufs[shard].Reset()
		counts[shard] = 0
	}
	line := 0
	for sc.Scan() {
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		line++
		if err := dec.Decode(b, &rec); err != nil {
			return fmt.Errorf("chaos: line %d: %v", line, err)
		}
		shard := analysis.OwnerOf(&rec, shards)
		bufs[shard].Write(b)
		bufs[shard].WriteByte('\n')
		counts[shard]++
		total++
		if counts[shard] >= cfg.BatchSize {
			flush(shard)
		}
	}
	for s := range bufs {
		flush(s)
	}
	return sc.Err()
}

// sendChaosBatch delivers one batch to acceptance: an optional doomed
// damaged send first, then clean sends retried through 429 sheds and
// fault-injected refusals, then an optional duplicate replay that must
// be acknowledged from the dedup window.
func sendChaosBatch(client *http.Client, cfg ChaosConfig, url string, plan faultinject.Plan, res *ChaosResult, id string, body []byte, count int) error {
	// The damaged send is expected to be refused whole: the batch ID
	// stays unregistered and the ID-carrying retry below lands the real
	// records. A 2xx here would mean the server admitted a mangled body.
	if status, reply, err := sendDamaged(client, cfg, url, plan, res, id, body, count); err != nil {
		return err
	} else if status == http.StatusOK {
		return fmt.Errorf("chaos: damaged send of %s was accepted: %+v", id, reply)
	}

	attempt := 0
	for {
		attempt++
		slow := time.Duration(0)
		if plan.Loris && attempt == 1 && cfg.Faults != nil {
			// First real send trickles; retries are full speed so a
			// server read deadline cannot starve the batch forever.
			slow = cfg.Faults.LorisPause
			plan.Fired(faultinject.KindLoris)
			res.Faulted++
		}
		status, reply, retryMs, err := postChaos(client, url, id, count, cleanBody(cfg, body), cfg.Gzip, slow)
		if err != nil {
			if attempt > cfg.MaxRetries {
				return fmt.Errorf("chaos: batch %s: %w", id, err)
			}
			res.Retries++
			// A transport error usually means the server is gone (the
			// kill -9 drill restarts it); pace the reconnect attempts so
			// the retry budget survives the restart window.
			time.Sleep(20 * time.Millisecond)
			continue
		}
		res.Presented += count
		switch status {
		case http.StatusOK:
			if reply.Deduped {
				// A previous attempt was admitted but its response lost;
				// the ack still covers exactly these records.
				res.Deduped++
			}
			res.Records += count
			res.Batches++
		case http.StatusTooManyRequests:
			res.Shed++
			if attempt > cfg.MaxRetries {
				return fmt.Errorf("chaos: batch %s still shed after %d attempts", id, attempt)
			}
			res.Retries++
			wait := time.Duration(retryMs * float64(time.Millisecond))
			if wait <= 0 {
				wait = 25 * time.Millisecond
			}
			time.Sleep(wait)
			continue
		default:
			// A server-injected fault (torn stream, read deadline) refused
			// the whole batch; the ID is still unregistered, so retry.
			if attempt > cfg.MaxRetries {
				return fmt.Errorf("chaos: batch %s refused after %d attempts: %d %s", id, attempt, status, reply.Error)
			}
			res.Retries++
			continue
		}
		break
	}

	if plan.Dup {
		// Replay the accepted batch verbatim — the crash-retry a real
		// client issues after losing an ack. Anything but a dedup
		// acknowledgement means the server double-ingested.
		plan.Fired(faultinject.KindDup)
		res.Duplicates++
		status, reply, _, err := postChaos(client, url, id, count, cleanBody(cfg, body), cfg.Gzip, 0)
		if err != nil {
			return fmt.Errorf("chaos: dup replay of %s: %w", id, err)
		}
		res.Presented += count
		if status != http.StatusOK || !reply.Deduped || reply.Accepted != count {
			return fmt.Errorf("chaos: dup replay of %s not deduped: %d %+v", id, status, reply)
		}
		res.Deduped++
	}
	return nil
}

// sendDamaged issues the plan's deliberately broken send, if any:
// a torn body cut mid-record or a truncated gzip stream. Returns the
// refusal status (0 when the plan injects no damage here).
func sendDamaged(client *http.Client, cfg ChaosConfig, url string, plan faultinject.Plan, res *ChaosResult, id string, body []byte, count int) (int, ingestResponse, error) {
	switch {
	case plan.TruncGzip:
		var zbuf bytes.Buffer
		zw := gzip.NewWriter(&zbuf)
		zw.Write(body)
		zw.Close()
		cut := plan.TornAfter % zbuf.Len()
		if cut < 1 {
			cut = 1
		}
		plan.Fired(faultinject.KindTruncGz)
		res.Faulted++
		status, reply, _, err := postChaos(client, url, id, count, zbuf.Bytes()[:cut], true, 0)
		if err == nil {
			res.Presented += count
		}
		return status, reply, err
	case plan.Torn && len(body) > 1:
		cut := plan.TornAfter % (len(body) - 1)
		if cut < 1 {
			cut = 1
		}
		plan.Fired(faultinject.KindTorn)
		res.Faulted++
		status, reply, _, err := postChaos(client, url, id, count, body[:cut], false, 0)
		if err == nil {
			res.Presented += count
		}
		return status, reply, err
	}
	return 0, ingestResponse{}, nil
}

// cleanBody returns the send-ready clean payload (gzipped if enabled).
func cleanBody(cfg ChaosConfig, body []byte) []byte {
	if !cfg.Gzip {
		return body
	}
	var zbuf bytes.Buffer
	zw := gzip.NewWriter(&zbuf)
	zw.Write(body)
	zw.Close()
	return zbuf.Bytes()
}

// postChaos posts one payload under the batch ID, always declaring the
// true record count so the server's shed/reject accounting is exact
// even for bodies it never decodes. slow > 0 trickles the body in
// small pauses — the slow-loris shape.
func postChaos(client *http.Client, url string, id string, count int, payload []byte, gzipped bool, slow time.Duration) (int, ingestResponse, float64, error) {
	var rd io.Reader = bytes.NewReader(payload)
	if slow > 0 {
		pr, pw := io.Pipe()
		go func() {
			defer pw.Close()
			for off := 0; off < len(payload); off += 256 {
				end := off + 256
				if end > len(payload) {
					end = len(payload)
				}
				if _, err := pw.Write(payload[off:end]); err != nil {
					return
				}
				time.Sleep(slow)
			}
		}()
		rd = pr
	}
	req, err := http.NewRequest(http.MethodPost, url+"/v1/records", rd)
	if err != nil {
		return 0, ingestResponse{}, 0, err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	req.Header.Set(headerBatchID, id)
	req.Header.Set(headerBatchRecords, strconv.Itoa(count))
	if gzipped {
		req.Header.Set("Content-Encoding", "gzip")
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, ingestResponse{}, 0, err
	}
	defer resp.Body.Close()
	var reply ingestResponse
	json.NewDecoder(resp.Body).Decode(&reply)
	retryMs := reply.RetryAfterMs
	if v := resp.Header.Get(headerRetryAfterMs); retryMs == 0 && v != "" {
		retryMs, _ = strconv.ParseFloat(v, 64)
	}
	// Every send presents its declared records once, whatever the
	// verdict — the client half of the zero-loss balance.
	return resp.StatusCode, reply, retryMs, nil
}

// ChaosVerify checks the zero-loss balance on the target server after
// a chaos run that started from an empty store: every record the
// client presented must be classified exactly once as accepted, shed,
// rejected, or deduped, and the store must have consumed every
// accepted record.
func ChaosVerify(url string, res *ChaosResult) error {
	resp, err := http.Get(url + "/v1/stats")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return err
	}
	if int(st.Accepted) != res.Records {
		return fmt.Errorf("chaos verify: server accepted %d records, client was acked %d", st.Accepted, res.Records)
	}
	balance := st.Accepted + st.RecordsShed + st.RecordsRejected + st.RecordsDeduped
	if int(balance) != res.Presented {
		return fmt.Errorf("chaos verify: accepted %d + shed %d + rejected %d + deduped %d = %d, client presented %d",
			st.Accepted, st.RecordsShed, st.RecordsRejected, st.RecordsDeduped, balance, res.Presented)
	}
	return nil
}
