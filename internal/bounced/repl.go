package bounced

import (
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"time"

	"repro/internal/analysis"
	"repro/internal/dataset"
	"repro/internal/replication"
	"repro/internal/store"
)

// This file is the server side of internal/replication: the primary's
// WAL-tail and checkpoint endpoints, the standby's Applier (fold
// replicated units exactly as local ingest would), promotion, and the
// semi-sync ack gate. The correctness argument for byte-identical
// failover lives on these four facts:
//
//  1. WAL order equals fold order on both nodes (walMu orders appends
//     with queue writes; ApplyBatch reuses the same section), so a
//     standby's analysis state is the primary's replayed.
//  2. Units ship whole: a standby never applies half a client batch,
//     mirroring crash replay's uncommitted-batch discard.
//  3. With ReplAck ≥ 1, an ack reaches the client only after the
//     batch is applied on a standby, so an acked record exists on the
//     survivor by definition.
//  4. Unacked batches are retried by the client through the router and
//     land on the promoted standby, where the replicated dedup window
//     (shipped inside checkpoints and re-registered from WAL units)
//     makes the retry exactly-once.

// errStandbyIngest is the refusal standbys answer writes with; the
// router never routes here, but a direct client gets a clear pointer.
var errStandbyIngest = errors.New("standby node: writes go to the primary")

// maxReplBatch caps records per WAL-tail response regardless of the
// standby's asked max, bounding the memory one poll can pin.
const maxReplBatch = 65536

// SetSync attaches the replication sync loop driving this standby so
// /v1/promote can cut its in-flight poll and /v1/stats can report
// sync-side lag. Harmless on a primary.
func (s *Server) SetSync(sl *replication.Standby) { s.syncLoop.Store(sl) }

// Epoch reports the node's current fencing epoch.
func (s *Server) Epoch() uint64 { return s.epoch.Load() }

// IsStandby reports whether the node currently refuses writes.
func (s *Server) IsStandby() bool { return s.standby.Load() }

func (s *Server) role() string {
	if s.standby.Load() {
		return "standby"
	}
	return "primary"
}

// handleReplStatus serves the node's replication identity — the
// router's probe target and the failover drill's assertion surface.
func (s *Server) handleReplStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, 0, 0, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, replication.NodeStatus{
		Role:      s.role(),
		Epoch:     s.epoch.Load(),
		NextIndex: s.walIndex.Load(),
		Consumed:  s.consumed.Load(),
	})
}

// handleReplCheckpoint ships the node's newest checkpoint — the
// standby's full-resync bootstrap. A fresh checkpoint is forced first
// so the shipped state is as close to the log end as possible, which
// minimizes the WAL tail the standby must then stream.
func (s *Server) handleReplCheckpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, 0, 0, "GET only")
		return
	}
	if s.eng == nil {
		httpError(w, http.StatusNotFound, 0, 0, "no storage engine configured (-data-dir)")
		return
	}
	if err := s.CheckpointNow(); err != nil {
		httpError(w, http.StatusInternalServerError, 0, 0, err.Error())
		return
	}
	cp, err := s.eng.Recover()
	if err != nil {
		httpError(w, http.StatusInternalServerError, 0, 0, err.Error())
		return
	}
	if cp == nil {
		httpError(w, http.StatusNotFound, 0, 0, "no checkpoint exists yet")
		return
	}
	blob := store.EncodeCheckpoint(cp)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(blob)))
	w.Write(blob)
}

// handleReplWAL streams the WAL tail from ?from= as whole units,
// long-polling up to ?wait= when the log end is at from. The poll
// doubles as the standby's progress report: ?id= and ?applied= feed
// the tracker that semi-sync acks wait on.
//
//	409 Conflict — the asked offset is past this node's log end (the
//	    poller has diverged; it must resync from a checkpoint).
//	410 Gone — the tail below from was pruned by checkpointing; the
//	    poller fetches /v1/repl/checkpoint and resyncs onto it.
func (s *Server) handleReplWAL(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, 0, 0, "GET only")
		return
	}
	if s.eng == nil || s.tracker == nil {
		httpError(w, http.StatusNotFound, 0, 0, "no storage engine configured (-data-dir)")
		return
	}
	q := r.URL.Query()
	from, err := strconv.ParseUint(q.Get("from"), 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, 0, 0, "bad from offset")
		return
	}
	if id := q.Get("id"); id != "" {
		applied := from
		if v := q.Get("applied"); v != "" {
			if a, err := strconv.ParseUint(v, 10, 64); err == nil {
				applied = a
			}
		}
		s.tracker.Observe(id, applied)
	}
	if from > s.walIndex.Load() {
		httpError(w, http.StatusConflict, 0, 0,
			fmt.Sprintf("offset %d is past this node's log end %d", from, s.walIndex.Load()))
		return
	}
	var wait time.Duration
	if v := q.Get("wait"); v != "" {
		if wait, err = time.ParseDuration(v); err != nil || wait < 0 {
			httpError(w, http.StatusBadRequest, 0, 0, "bad wait duration")
			return
		}
		if wait > 30*time.Second {
			wait = 30 * time.Second
		}
	}
	max := 8192
	if v := q.Get("max"); v != "" {
		if max, err = strconv.Atoi(v); err != nil || max <= 0 {
			httpError(w, http.StatusBadRequest, 0, 0, "bad max")
			return
		}
		if max > maxReplBatch {
			max = maxReplBatch
		}
	}
	if wait > 0 {
		// The tracker advances on sync, not append, so a wake means the
		// tail bytes are already visible to ReadTail.
		s.tracker.WaitNext(from, wait)
	}

	// The writer is created lazily on the first unit so a truncated
	// tail can still turn into a clean 410 instead of a torn 200.
	var tw *replication.TailWriter
	sent := 0
	_, err = s.eng.ReadTail(from, func(start uint64, b store.RawBatch) error {
		if tw == nil {
			w.Header().Set("Content-Type", "application/octet-stream")
			if tw, err = replication.NewTailWriter(w, from); err != nil {
				return err
			}
		}
		if err := tw.Unit(start, b.ID, b.Payloads); err != nil {
			return err
		}
		sent += len(b.Payloads)
		if sent >= max {
			return store.ErrStopTail
		}
		return nil
	})
	if err != nil {
		if tw == nil {
			if errors.Is(err, store.ErrTailTruncated) {
				httpError(w, http.StatusGone, 0, 0, err.Error())
			} else {
				httpError(w, http.StatusInternalServerError, 0, 0, err.Error())
			}
			return
		}
		// Headers are gone; the stream stays torn and the standby's
		// reader discards the unfinished unit, exactly like crash replay.
		log.Printf("bounced: wal tail stream from %d: %v", from, err)
		return
	}
	if tw == nil {
		if tw, err = replication.NewTailWriter(w, from); err != nil {
			return
		}
	}
	if err := tw.End(s.walIndex.Load(), s.epoch.Load()); err != nil {
		log.Printf("bounced: wal tail stream end: %v", err)
	}
}

// handlePromote flips a standby to primary — the operator's manual
// failover. On a node with an attached sync loop the promotion goes
// through it, cutting any in-flight poll; already-primary nodes 409.
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, 0, 0, "POST only")
		return
	}
	if !s.standby.Load() {
		httpError(w, http.StatusConflict, 0, 0, "already primary")
		return
	}
	if sl := s.syncLoop.Load(); sl != nil {
		sl.Promote("manual POST " + replication.PathPromote)
	} else {
		s.Promote(s.epoch.Load()+1, "manual POST "+replication.PathPromote)
	}
	writeJSON(w, http.StatusOK, replication.NodeStatus{
		Role:      s.role(),
		Epoch:     s.epoch.Load(),
		NextIndex: s.walIndex.Load(),
		Consumed:  s.consumed.Load(),
	})
}

// AppliedIndex reports how far this node's log reaches — the offset
// the sync loop polls from. Implements replication.Applier.
func (s *Server) AppliedIndex() uint64 { return s.walIndex.Load() }

// ApplyBatch folds one replicated WAL unit through the same path local
// ingest uses: WAL append, dedup registration, and queue writes under
// one walMu section, so the standby's replay order — and therefore its
// report bytes — match the primary's. A unit straddling the local log
// end (a mid-batch checkpoint boundary after a resync) is trimmed to
// its unapplied suffix. Implements replication.Applier.
func (s *Server) ApplyBatch(u *replication.Unit) error {
	if !s.standby.Load() {
		return errors.New("bounced: ApplyBatch on a primary")
	}
	if s.closed.Load() {
		return ErrIngestClosed
	}
	cur := s.walIndex.Load()
	end := u.Start + uint64(len(u.Payloads))
	if u.Start > cur {
		return fmt.Errorf("bounced: replication gap: unit starts at %d, local log ends at %d", u.Start, cur)
	}
	if end <= cur {
		// Wholly applied already (a re-sent overlap); only make sure the
		// batch ID still dedups client retries.
		if u.ID != "" {
			s.dedup.register(u.ID, len(u.Payloads))
		}
		return nil
	}
	payloads := u.Payloads[cur-u.Start:]
	recs := make([]dataset.Record, len(payloads))
	dec := &dataset.Decoder{}
	for i, p := range payloads {
		if err := dec.Decode(p, &recs[i]); err != nil {
			return fmt.Errorf("bounced: replicated record %d fails to decode: %w", u.Start+uint64(i), err)
		}
	}
	if !s.admitWait(len(recs)) {
		return ErrIngestClosed
	}
	s.walMu.Lock()
	if err := s.eng.Append(store.Batch{ID: u.ID, Records: recs}); err != nil {
		s.walMu.Unlock()
		s.reserved.Add(-int64(len(recs)))
		return fmt.Errorf("bounced: wal append: %w", err)
	}
	s.walIndex.Store(end)
	if u.ID != "" {
		// Register the full original count: a client retry of this batch
		// after failover must be acked with the number the primary
		// admitted, not the trimmed suffix this node happened to apply.
		s.dedup.register(u.ID, len(u.Payloads))
	}
	var enqErr error
	for i := range recs {
		if err := s.queue.Write(&recs[i]); err != nil {
			// Shutdown raced the unit after its WAL commit; recovery folds
			// the dropped tail back in from the log.
			s.reserved.Add(-int64(len(recs) - i))
			enqErr = ErrIngestClosed
			break
		}
		s.accepted.Add(1)
		s.observe(&recs[i])
	}
	s.walMu.Unlock()
	if err := s.syncWAL(); err != nil {
		return err
	}
	s.replApplies.Add(1)
	s.replAppliedRecords.Add(uint64(len(recs)))
	return enqErr
}

// ResetTo discards this standby's state and restores from a checkpoint
// shipped by the primary — the full-resync path when the primary
// pruned the WAL tail past our offset (or we diverged). Implements
// replication.Applier.
func (s *Server) ResetTo(cp *store.Checkpoint) error {
	if !s.standby.Load() {
		return errors.New("bounced: ResetTo on a primary")
	}
	// Quiesce: the sync loop is the caller, so no ApplyBatch is in
	// flight and ingest is refused; draining the queue leaves the
	// consumer idle and the old accumulator untouched from here on.
	s.waitConsumed(s.accepted.Load())
	s.cpMu.Lock()
	defer s.cpMu.Unlock()
	blob, ok := cp.Sections[sectionIncremental]
	if !ok {
		return fmt.Errorf("bounced: checkpoint at %d records has no %q section", cp.Records, sectionIncremental)
	}
	inc, err := analysis.RestoreIncremental(blob)
	if err != nil {
		return fmt.Errorf("bounced: checkpoint %s section: %w", sectionIncremental, err)
	}
	if got := uint64(inc.Len()); got != cp.Records {
		return fmt.Errorf("bounced: checkpoint covers %d records but its state holds %d", cp.Records, got)
	}
	if err := s.dedup.reset(cp.Sections[sectionDedup]); err != nil {
		return fmt.Errorf("bounced: checkpoint %s section: %w", sectionDedup, err)
	}
	epoch := replEpoch(cp)
	if err := s.eng.Reset(cp.Records); err != nil {
		return err
	}
	// Persist the restore point immediately: a crash between here and
	// the next checkpoint must not reboot into an empty log.
	if err := s.eng.Checkpoint(cp); err != nil {
		return err
	}
	s.incMu.Lock()
	old := s.inc
	s.inc = inc
	s.incMu.Unlock()
	old.StopTrainer()
	inc.StartTrainer()
	if epoch > 0 {
		s.epoch.Store(epoch)
	}
	s.walIndex.Store(cp.Records)
	s.tracker.Reset(cp.Records)
	s.lastCP.Store(cp.Records)
	s.lastCPEpoch.Store(s.epoch.Load())
	s.consumedMu.Lock()
	s.accepted.Store(cp.Records)
	s.consumed.Store(cp.Records)
	s.consumedCond.Broadcast()
	s.consumedMu.Unlock()
	s.snapMu.Lock()
	s.snapStudy, s.snapAt = nil, 0
	s.snapMu.Unlock()
	s.partialMu.Lock()
	s.partialFor, s.partialBytes = nil, nil
	s.partialMu.Unlock()
	return nil
}

// Promote flips the node from standby to primary under the given
// epoch. Idempotent; reports whether this call won the flip. The new
// epoch is checkpointed right away so a post-promotion restart cannot
// resurrect the old one (which would un-fence a zombie). Implements
// replication.Applier.
func (s *Server) Promote(epoch uint64, reason string) bool {
	if !s.standby.CompareAndSwap(true, false) {
		return false
	}
	if epoch > s.epoch.Load() {
		s.epoch.Store(epoch)
	}
	s.promotions.Add(1)
	log.Printf("bounced: promoted to primary at epoch %d: %s", s.epoch.Load(), reason)
	if s.eng != nil {
		go func() {
			if err := s.CheckpointNow(); err != nil {
				log.Printf("bounced: post-promotion checkpoint: %v", err)
			}
		}()
	}
	return true
}

// waitReplicated is the semi-sync ack gate: with ReplAck > 0 an ingest
// response may leave only after that many standbys confirm they
// applied through end. On timeout the batch stays in the local WAL but
// the client gets a retryable error — it must not treat the records as
// safely delivered yet.
func (s *Server) waitReplicated(end uint64) error {
	n := s.cfg.ReplAck
	if n <= 0 || s.tracker == nil || s.standby.Load() {
		return nil
	}
	timeout := s.cfg.ReplAckTimeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	s.replAckWaits.Add(1)
	if !s.tracker.WaitApplied(end, n, timeout) {
		s.replAckTimeouts.Add(1)
		return fmt.Errorf("bounced: %d standby(s) did not confirm WAL index %d within %s; retry", n, end, timeout)
	}
	return nil
}
