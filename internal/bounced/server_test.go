package bounced_test

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro"
	"repro/internal/analysis"
	"repro/internal/bounced"
	"repro/internal/dataset"
)

// The tiny corpus is generated once: every test replays slices of it.
var (
	fixtureOnce sync.Once
	fixtureRecs []dataset.Record
	fixtureEnv  *analysis.Environment
)

func fixture(t *testing.T) ([]dataset.Record, *analysis.Environment) {
	t.Helper()
	fixtureOnce.Do(func() {
		st := bounce.Run(bounce.Options{Scale: bounce.ScaleTiny})
		fixtureRecs = st.Records.Flatten()
		fixtureEnv = bounce.NewEnvironment(st.World)
	})
	if len(fixtureRecs) == 0 {
		t.Fatal("empty fixture corpus")
	}
	return fixtureRecs, fixtureEnv
}

// newServer builds a Server, failing the test on a construction error
// (only durable configs can produce one).
func newServer(t *testing.T, cfg bounced.Config) *bounced.Server {
	t.Helper()
	srv, err := bounced.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// batchReport renders the sections the way bounceanalyze does over a
// record file: single-pass streaming analysis, then report.
func batchReport(t *testing.T, records []dataset.Record, env *analysis.Environment, sections []bounce.Section) []byte {
	t.Helper()
	a := analysis.NewFromSource(dataset.NewSliceSource(records), analysis.DefaultPipelineConfig(), env)
	st := &bounce.Study{Records: a.Records, Analysis: a}
	st.Detections = a.Detect()
	var buf bytes.Buffer
	if err := st.WriteReport(&buf, sections); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func encodeNDJSON(t *testing.T, records []dataset.Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for i := range records {
		if err := enc.Encode(&records[i]); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func postRecords(t *testing.T, url string, body []byte) ingestReply {
	t.Helper()
	resp, err := http.Post(url+"/v1/records", "application/x-ndjson", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ir ingestReply
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		t.Fatal(err)
	}
	ir.status = resp.StatusCode
	return ir
}

type ingestReply struct {
	Accepted     int     `json:"accepted"`
	Line         int     `json:"line"`
	Error        string  `json:"error"`
	Deduped      bool    `json:"deduped"`
	RetryAfterMs float64 `json:"retry_after_ms"`
	status       int
}

func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// TestReportMatchesBatchBytes is the differential test behind the
// service's core invariant: at any checkpoint, GET /v1/report returns
// byte-identical output to a batch bounceanalyze run over exactly the
// records ingested so far.
func TestReportMatchesBatchBytes(t *testing.T) {
	records, env := fixture(t)
	srv := newServer(t, bounced.Config{Env: env})
	defer srv.Abort()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cut := len(records) / 2
	checkpoints := []struct {
		name string
		upto int
	}{{"half", cut}, {"full", len(records)}}
	sent := 0
	for _, cp := range checkpoints {
		// Ingest the next slice in several batches to exercise batching.
		for sent < cp.upto {
			end := sent + 200
			if end > cp.upto {
				end = cp.upto
			}
			ir := postRecords(t, ts.URL, encodeNDJSON(t, records[sent:end]))
			if ir.status != http.StatusOK || ir.Accepted != end-sent {
				t.Fatalf("%s: batch [%d:%d): status %d accepted %d: %s",
					cp.name, sent, end, ir.status, ir.Accepted, ir.Error)
			}
			sent = end
		}
		want := batchReport(t, records[:cp.upto], env, bounce.AllSections)
		status, got := getBody(t, ts.URL+"/v1/report?section=all")
		if status != http.StatusOK {
			t.Fatalf("%s: /v1/report status %d", cp.name, status)
		}
		if !bytes.Equal(got, want) {
			// Dump both reports so the divergence is diffable.
			dir := os.TempDir()
			os.WriteFile(filepath.Join(dir, "bounced_online.txt"), got, 0o644)
			os.WriteFile(filepath.Join(dir, "bounced_batch.txt"), want, 0o644)
			t.Fatalf("%s: online report diverges from batch over %d records\nonline %d bytes, batch %d bytes; dumps in %s",
				cp.name, cp.upto, len(got), len(want), dir)
		}
	}

	// Section subsets go through the same path as bounceanalyze -section.
	want := batchReport(t, records, env, []bounce.Section{bounce.SecTable1, bounce.SecFig8})
	status, got := getBody(t, ts.URL+"/v1/report?section=table1,fig8")
	if status != http.StatusOK || !bytes.Equal(got, want) {
		t.Fatalf("section subset diverges (status %d, %d vs %d bytes)", status, len(got), len(want))
	}

	if status, _ := getBody(t, ts.URL+"/v1/report?section=nope"); status != http.StatusBadRequest {
		t.Fatalf("unknown section: got status %d, want 400", status)
	}
}

// TestDrainZeroLoss verifies the graceful-shutdown guarantee: every
// record admitted before Drain is in the store when Drain returns,
// even under concurrent producers and a tiny queue.
func TestDrainZeroLoss(t *testing.T) {
	records, env := fixture(t)
	srv := newServer(t, bounced.Config{Env: env, QueueDepth: 2})
	const producers = 4
	per := len(records) / producers
	var wg sync.WaitGroup
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func(part []dataset.Record) {
			defer wg.Done()
			for i := range part {
				if err := srv.Ingest(&part[i]); err != nil {
					t.Errorf("ingest: %v", err)
					return
				}
			}
		}(records[w*per : (w+1)*per])
	}
	wg.Wait()
	want := uint64(producers * per)
	if got := srv.Drain(); got != want {
		t.Fatalf("drain consumed %d, want %d", got, want)
	}
	if srv.Consumed() != want {
		t.Fatalf("consumed %d after drain, want %d", srv.Consumed(), want)
	}
	if err := srv.Ingest(&records[0]); err == nil {
		t.Fatal("ingest after drain succeeded")
	}
	// The final flush covers every drained record.
	var buf bytes.Buffer
	if err := srv.WriteFinalReport(&buf, []bounce.Section{bounce.SecOverview}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), fmt.Sprintf("%d", want)) {
		t.Errorf("final report does not mention %d records:\n%s", want, buf.String())
	}
}

// TestIngestMalformedLine checks the line-numbered 400 contract: the
// bad line's 1-based number is reported and every preceding valid
// line stays accepted.
func TestIngestMalformedLine(t *testing.T) {
	records, env := fixture(t)
	srv := newServer(t, bounced.Config{Env: env})
	defer srv.Abort()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := append(encodeNDJSON(t, records[:2]), []byte("{this is not json}\n")...)
	ir := postRecords(t, ts.URL, body)
	if ir.status != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", ir.status)
	}
	if ir.Line != 3 || ir.Accepted != 2 {
		t.Fatalf("line %d accepted %d, want line 3 accepted 2", ir.Line, ir.Accepted)
	}
	srv.Drain()
	if srv.Consumed() != 2 {
		t.Fatalf("consumed %d, want the 2 valid lines", srv.Consumed())
	}
}

// TestIngestGzip covers both gzip paths: declared via Content-Encoding
// and sniffed from the magic bytes.
func TestIngestGzip(t *testing.T) {
	records, env := fixture(t)
	srv := newServer(t, bounced.Config{Env: env})
	defer srv.Abort()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	plain := encodeNDJSON(t, records[:50])
	var zbuf bytes.Buffer
	zw := gzip.NewWriter(&zbuf)
	zw.Write(plain)
	zw.Close()

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/records", bytes.NewReader(zbuf.Bytes()))
	req.Header.Set("Content-Encoding", "gzip")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var ir ingestReply
	json.NewDecoder(resp.Body).Decode(&ir)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ir.Accepted != 50 {
		t.Fatalf("declared gzip: status %d accepted %d", resp.StatusCode, ir.Accepted)
	}

	// Same bytes, no header: the magic-byte sniff must catch it.
	ir = postRecords(t, ts.URL, zbuf.Bytes())
	if ir.status != http.StatusOK || ir.Accepted != 50 {
		t.Fatalf("sniffed gzip: status %d accepted %d", ir.status, ir.Accepted)
	}
}

// TestStatsAndMetrics smoke-tests the two observability endpoints.
func TestStatsAndMetrics(t *testing.T) {
	records, env := fixture(t)
	srv := newServer(t, bounced.Config{Env: env, Seed: 42})
	defer srv.Abort()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	n := 300
	postRecords(t, ts.URL, encodeNDJSON(t, records[:n]))
	// A report arms the live classifier; the next batch is then timed.
	getBody(t, ts.URL+"/v1/report?section=overview")
	postRecords(t, ts.URL, encodeNDJSON(t, records[n:2*n]))
	getBody(t, ts.URL+"/v1/report?section=overview")

	status, body := getBody(t, ts.URL+"/v1/stats")
	if status != http.StatusOK {
		t.Fatalf("/v1/stats status %d", status)
	}
	var st struct {
		Seed     uint64 `json:"seed"`
		Accepted uint64 `json:"accepted"`
		Consumed uint64 `json:"consumed"`
		Batches  uint64 `json:"batches"`
		Classify struct {
			Count uint64  `json:"count"`
			P50NS float64 `json:"p50_ns"`
		} `json:"classify_latency"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("decode stats: %v\n%s", err, body)
	}
	if st.Seed != 42 || st.Accepted != uint64(2*n) || st.Consumed != uint64(2*n) || st.Batches != 2 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Classify.Count == 0 || st.Classify.P50NS <= 0 {
		t.Fatalf("classify latency never observed: %+v", st.Classify)
	}

	status, body = getBody(t, ts.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics status %d", status)
	}
	for _, want := range []string{
		"bounced_records_accepted_total 600",
		"bounced_records_consumed_total 600",
		"bounced_queue_capacity 1024",
		"bounced_bounce_degree_total{degree=\"hard-bounced\"}",
		"bounced_classify_latency_seconds_bucket{le=\"+Inf\"}",
		"bounced_classify_latency_seconds_count",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestLoadgenRoundTrip replays a gzipped JSONL file through the real
// HTTP stack and checks the bench result accounting.
func TestLoadgenRoundTrip(t *testing.T) {
	records, env := fixture(t)
	srv := newServer(t, bounced.Config{Env: env})
	defer srv.Abort()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	path := filepath.Join(t.TempDir(), "replay.jsonl.gz")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	zw := gzip.NewWriter(f)
	zw.Write(encodeNDJSON(t, records))
	zw.Close()
	f.Close()

	res, err := bounced.Loadgen(bounced.LoadgenConfig{
		URL: ts.URL, Path: path, BatchSize: 128, Workers: 3, Gzip: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != len(records) {
		t.Fatalf("replayed %d records, want %d", res.Records, len(records))
	}
	if res.ServerConsumed != uint64(len(records)) {
		t.Fatalf("server consumed %d, want %d", res.ServerConsumed, len(records))
	}
	if res.RecordsPerSec <= 0 {
		t.Fatalf("bad rate: %+v", res)
	}
}
