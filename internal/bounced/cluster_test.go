package bounced_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro"
	"repro/internal/analysis"
	"repro/internal/bounced"
	"repro/internal/dataset"
)

// clusterNodes boots n shard servers over the real HTTP stack and
// routes the corpus to them by substream ownership. The caller owns
// shutdown via the returned cleanup.
func clusterNodes(t *testing.T, records []dataset.Record, env *analysis.Environment, n int) ([]*httptest.Server, func()) {
	t.Helper()
	servers := make([]*httptest.Server, n)
	srvs := make([]*bounced.Server, n)
	for i := 0; i < n; i++ {
		srvs[i] = newServer(t, bounced.Config{Env: env, ShardCount: n, ShardIndex: i})
		servers[i] = httptest.NewServer(srvs[i].Handler())
	}
	parts := make([][]dataset.Record, n)
	for i := range records {
		own := analysis.OwnerOf(&records[i], n)
		parts[own] = append(parts[own], records[i])
	}
	for i, part := range parts {
		if len(part) == 0 {
			continue
		}
		ir := postRecords(t, servers[i].URL, encodeNDJSON(t, part))
		if ir.status != http.StatusOK || ir.Accepted != len(part) {
			t.Fatalf("shard %d: status %d accepted %d of %d: %s", i, ir.status, ir.Accepted, len(part), ir.Error)
		}
	}
	return servers, func() {
		for i := range servers {
			servers[i].Close()
			srvs[i].Abort()
		}
	}
}

// partialSectionQuery asks a single node for exactly the sections a
// coordinator serves by default.
func partialSectionQuery() string {
	names := make([]string, len(bounce.PartialSections))
	for i, s := range bounce.PartialSections {
		names[i] = string(s)
	}
	return "/v1/report?section=" + strings.Join(names, ",")
}

// singleNodeReport ingests the whole corpus into one unsharded node
// and returns its partial-section report bytes.
func singleNodeReport(t *testing.T, records []dataset.Record, env *analysis.Environment) []byte {
	t.Helper()
	srv := newServer(t, bounced.Config{Env: env})
	defer srv.Abort()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	ir := postRecords(t, ts.URL, encodeNDJSON(t, records))
	if ir.status != http.StatusOK || ir.Accepted != len(records) {
		t.Fatalf("single node: status %d accepted %d of %d: %s", ir.status, ir.Accepted, len(records), ir.Error)
	}
	status, b := getBody(t, ts.URL+partialSectionQuery())
	if status != http.StatusOK {
		t.Fatalf("single node report: status %d", status)
	}
	return b
}

// TestClusterReportMatchesSingleNode is the topology's acceptance
// test: 3 shard nodes plus a coordinator, all over real HTTP, must
// serve a report byte-identical to one node that ingested the full
// stream — for every permutation of the coordinator's merge order.
func TestClusterReportMatchesSingleNode(t *testing.T) {
	records, env := fixture(t)
	want := singleNodeReport(t, records, env)

	servers, cleanup := clusterNodes(t, records, env, 3)
	defer cleanup()
	urls := []string{servers[0].URL, servers[1].URL, servers[2].URL}

	perms := [][]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	for _, perm := range perms {
		ordered := []string{urls[perm[0]], urls[perm[1]], urls[perm[2]]}
		coord, err := bounced.NewCoordinator(bounced.CoordinatorConfig{ShardURLs: ordered, Env: env})
		if err != nil {
			t.Fatal(err)
		}
		cts := httptest.NewServer(coord.Handler())
		status, got := getBody(t, cts.URL+"/v1/report")
		cts.Close()
		if status != http.StatusOK {
			t.Fatalf("order %v: coordinator report status %d", perm, status)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("order %v: coordinator report diverges from single node (%d vs %d bytes)",
				perm, len(got), len(want))
		}
	}
}

// TestClusterEndpointsAndFailure covers the coordinator's sidecar
// surfaces: stats and metrics respond, and a dead shard turns every
// fan-in into a clean 503 instead of a silently partial report.
func TestClusterEndpointsAndFailure(t *testing.T) {
	records, env := fixture(t)
	servers, cleanup := clusterNodes(t, records, env, 3)
	defer cleanup()

	dead := httptest.NewServer(http.NotFoundHandler())
	urls := []string{servers[0].URL, servers[1].URL, servers[2].URL}
	coord, err := bounced.NewCoordinator(bounced.CoordinatorConfig{ShardURLs: urls, Env: env})
	if err != nil {
		t.Fatal(err)
	}
	cts := httptest.NewServer(coord.Handler())
	defer cts.Close()

	if status, b := getBody(t, cts.URL+"/v1/stats"); status != http.StatusOK ||
		!bytes.Contains(b, []byte(`"shards"`)) {
		t.Fatalf("stats: status %d body %s", status, b)
	}
	if status, b := getBody(t, cts.URL+"/metrics"); status != http.StatusOK ||
		!bytes.Contains(b, []byte("coordinator_records")) {
		t.Fatalf("metrics: status %d body %s", status, b)
	}

	// A shard without /v1/partial (404) must fail the whole fan-in.
	broken, err := bounced.NewCoordinator(bounced.CoordinatorConfig{
		ShardURLs: []string{urls[0], dead.URL, urls[2]}, Env: env,
	})
	if err != nil {
		t.Fatal(err)
	}
	bts := httptest.NewServer(broken.Handler())
	defer bts.Close()
	if status, _ := getBody(t, bts.URL+"/v1/report"); status != http.StatusServiceUnavailable {
		t.Fatalf("dead shard: report status %d, want 503", status)
	}
	dead.Close()
	if status, _ := getBody(t, bts.URL+"/v1/report"); status != http.StatusServiceUnavailable {
		t.Fatalf("unreachable shard: report status %d, want 503", status)
	}
}

// TestClusterShardRejectsMisrouted: a record whose substream another
// node owns is refused with a line-numbered 400 naming the owner, in
// both streamed and batch admission.
func TestClusterShardRejectsMisrouted(t *testing.T) {
	records, env := fixture(t)
	// Find a record shard 1 owns and post it to shard 0.
	var stray *dataset.Record
	for i := range records {
		if analysis.OwnerOf(&records[i], 3) == 1 {
			stray = &records[i]
			break
		}
	}
	if stray == nil {
		t.Skip("corpus has no shard-1 record")
	}
	srv := newServer(t, bounced.Config{Env: env, ShardCount: 3, ShardIndex: 0})
	defer srv.Abort()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := encodeNDJSON(t, []dataset.Record{*stray})
	ir := postRecords(t, ts.URL, body)
	if ir.status != http.StatusBadRequest || !strings.Contains(ir.Error, "owned by shard 1") {
		t.Fatalf("streamed misroute: status %d error %q", ir.status, ir.Error)
	}

	_, bir := postBatchID(t, ts.URL, "misroute-1", 1, body)
	if bir.status != http.StatusBadRequest || !strings.Contains(bir.Error, "owned by shard 1") {
		t.Fatalf("batch misroute: status %d error %q", bir.status, bir.Error)
	}
}

// TestClusterChaosTornShardStream sweeps seeds over the failure the
// batch protocol exists for: one shard's upload dies mid-body, the
// client re-feeds the same batch ID, and the final coordinator report
// is still byte-identical to the single node's.
func TestClusterChaosTornShardStream(t *testing.T) {
	records, env := fixture(t)
	want := singleNodeReport(t, records, env)

	for seed := int64(1); seed <= 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		servers := make([]*httptest.Server, 3)
		srvs := make([]*bounced.Server, 3)
		for i := 0; i < 3; i++ {
			// Queue depth must admit a whole shard's corpus as one
			// all-or-nothing batch.
			srvs[i] = newServer(t, bounced.Config{Env: env, ShardCount: 3, ShardIndex: i, QueueDepth: len(records)})
			servers[i] = httptest.NewServer(srvs[i].Handler())
		}
		parts := make([][]dataset.Record, 3)
		for i := range records {
			own := analysis.OwnerOf(&records[i], 3)
			parts[own] = append(parts[own], records[i])
		}
		victim := rng.Intn(3)
		for i, part := range parts {
			if len(part) == 0 {
				continue
			}
			body := encodeNDJSON(t, part)
			batchID := fmt.Sprintf("chaos-%d-%d", seed, i)
			if i == victim {
				// Tear the body at a random interior byte. The declared
				// record count makes any truncation reject atomically.
				cut := 1 + rng.Intn(len(body)-1)
				_, ir := postBatchID(t, servers[i].URL, batchID, len(part), body[:cut])
				if ir.status == http.StatusOK {
					t.Fatalf("seed %d: torn batch (cut %d of %d) was accepted", seed, cut, len(body))
				}
			}
			_, ir := postBatchID(t, servers[i].URL, batchID, len(part), body)
			if ir.status != http.StatusOK || ir.Accepted != len(part) {
				t.Fatalf("seed %d shard %d: status %d accepted %d of %d: %s",
					seed, i, ir.status, ir.Accepted, len(part), ir.Error)
			}
		}

		coord, err := bounced.NewCoordinator(bounced.CoordinatorConfig{
			ShardURLs: []string{servers[0].URL, servers[1].URL, servers[2].URL}, Env: env,
		})
		if err != nil {
			t.Fatal(err)
		}
		cts := httptest.NewServer(coord.Handler())
		status, got := getBody(t, cts.URL+"/v1/report")
		cts.Close()
		if status != http.StatusOK {
			t.Fatalf("seed %d: coordinator report status %d", seed, status)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("seed %d: post-chaos report diverges from single node (%d vs %d bytes)",
				seed, len(got), len(want))
		}
		for i := range servers {
			servers[i].Close()
			srvs[i].Abort()
		}
	}
}
