package bounced

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"

	"repro/internal/dataset"
)

// ingestResponse is the JSON body of every /v1/records reply.
type ingestResponse struct {
	Accepted int    `json:"accepted"`
	Line     int    `json:"line,omitempty"`
	Error    string `json:"error,omitempty"`
}

// handleRecords ingests one NDJSON batch. Lines are validated and
// queued one at a time: a malformed line yields a 400 naming its
// 1-based line number, with every preceding valid line already
// accepted (the response's accepted count says how many). Bodies may
// be gzip-compressed, signalled by Content-Encoding: gzip or sniffed
// from the magic bytes. Queue-full backpressure blocks the request,
// never drops records.
func (s *Server) handleRecords(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, 0, 0, "POST only")
		return
	}
	if s.closed.Load() {
		httpError(w, http.StatusServiceUnavailable, 0, 0, "shutting down")
		return
	}
	body := bufio.NewReaderSize(r.Body, 1<<16)
	var reader io.Reader = body
	switch enc := strings.ToLower(r.Header.Get("Content-Encoding")); enc {
	case "", "identity":
		// Sniff anyway: loadgen may stream a .jsonl.gz byte-for-byte.
		dr, err := dataset.NewDecodingReader(body)
		if err != nil {
			httpError(w, http.StatusBadRequest, 0, 0, err.Error())
			return
		}
		reader = dr
	case "gzip":
		zr, err := gzip.NewReader(body)
		if err != nil {
			httpError(w, http.StatusBadRequest, 0, 0, "bad gzip body: "+err.Error())
			return
		}
		defer zr.Close()
		reader = zr
	default:
		httpError(w, http.StatusUnsupportedMediaType, 0, 0, "unsupported Content-Encoding "+enc)
		return
	}

	// Decode fans out across workers while this goroutine queues the
	// in-order results; records surface strictly in body order, so the
	// accepted prefix before a malformed line is exactly what a serial
	// scan would have admitted.
	pr := dataset.NewParallelReader(reader, s.cfg.DecodeWorkers)
	defer pr.Close()
	accepted := 0
	for {
		rec, ok := pr.Next()
		if !ok {
			break
		}
		// The reader reuses its record buffers once a chunk is consumed,
		// but the queue holds the pointer until the store folds it in —
		// copy the (small) struct out; its strings and slices are fresh
		// per-record allocations and safe to share.
		c := *rec
		if err := s.Ingest(&c); err != nil {
			httpError(w, http.StatusServiceUnavailable, pr.Line(), accepted, err.Error())
			return
		}
		accepted++
	}
	if err := pr.Err(); err != nil {
		s.badLines.Add(1)
		var le *dataset.LineError
		if errors.As(err, &le) {
			line := le.Line
			if le.After {
				// Mid-body read failures (truncated gzip, dropped
				// connection) still report how far ingestion got.
				line++
			}
			httpError(w, http.StatusBadRequest, line, accepted, le.Err.Error())
			return
		}
		httpError(w, http.StatusBadRequest, 0, accepted, err.Error())
		return
	}
	s.batches.Add(1)
	writeJSON(w, http.StatusOK, ingestResponse{Accepted: accepted})
}

func httpError(w http.ResponseWriter, status, line, accepted int, msg string) {
	writeJSON(w, status, ingestResponse{Accepted: accepted, Line: line, Error: msg})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
