package bounced

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/dataset"
	"repro/internal/faultinject"
	"repro/internal/store"
)

// Batch headers for the idempotent ingest mode. X-Batch-Id switches a
// request to all-or-nothing semantics; X-Batch-Records declares the
// batch's record count so shed and reject accounting stays exact even
// when the body is never decoded.
const (
	headerBatchID      = "X-Batch-Id"
	headerBatchRecords = "X-Batch-Records"
	headerRetryAfterMs = "X-Retry-After-Ms"
)

// ingestResponse is the JSON body of every /v1/records reply.
type ingestResponse struct {
	Accepted     int     `json:"accepted"`
	Line         int     `json:"line,omitempty"`
	Error        string  `json:"error,omitempty"`
	Deduped      bool    `json:"deduped,omitempty"`
	RetryAfterMs float64 `json:"retry_after_ms,omitempty"`
}

// handleRecords ingests one NDJSON batch. Bodies may be
// gzip-compressed, signalled by Content-Encoding: gzip or sniffed from
// the magic bytes.
//
// Two admission modes share the endpoint:
//
//   - Streamed (no X-Batch-Id): lines are validated and queued one at
//     a time under blocking backpressure. A malformed line yields a 400
//     naming its 1-based line number, with every preceding valid line
//     already accepted.
//
//   - Idempotent batch (X-Batch-Id set): the whole body is decoded
//     first, then admitted atomically — all records or none. A full
//     queue sheds the batch with 429 + Retry-After instead of
//     blocking; a replayed ID inside the dedup window is acknowledged
//     without re-ingesting, so client retries are safe.
//
// With a configured ReadTimeout, a request that cannot deliver its
// body in time (slow-loris) is cut off at the read deadline.
func (s *Server) handleRecords(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, 0, 0, "POST only")
		return
	}
	if s.closed.Load() {
		httpError(w, http.StatusServiceUnavailable, 0, 0, "shutting down")
		return
	}
	if s.standby.Load() {
		// The router never routes here; a client that does (or hits the
		// promotion window) gets a retryable refusal.
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, 0, 0, errStandbyIngest.Error())
		return
	}
	if s.cfg.ReadTimeout > 0 {
		// Best-effort: ResponseController reaches the connection under
		// the standard http.Server; httptest/recorder stacks without
		// deadline support just proceed unbounded.
		http.NewResponseController(w).SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
	}

	batchID := r.Header.Get(headerBatchID)
	declared := -1
	if v := r.Header.Get(headerBatchRecords); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, 0, 0, "bad "+headerBatchRecords+" header")
			return
		}
		declared = n
	}
	if batchID != "" {
		if n, ok := s.dedup.lookup(batchID); ok {
			// A replay of a batch already admitted: acknowledge with the
			// original accepted count, ingest nothing. The semi-sync gate
			// still applies — the usual reason for this replay is a retry
			// after an ack timed out waiting for a standby, and acking it
			// before the standby catches up would reopen the loss window.
			if err := s.waitReplicated(s.walIndex.Load()); err != nil {
				w.Header().Set("Retry-After", "1")
				httpError(w, http.StatusServiceUnavailable, 0, 0, err.Error())
				return
			}
			s.deduped.Add(uint64(n))
			s.dedupBatches.Add(1)
			writeJSON(w, http.StatusOK, ingestResponse{Accepted: n, Deduped: true})
			return
		}
	}

	var plan faultinject.Plan
	if s.faults.Spec().Active() {
		plan = s.faults.NextPlan()
	}

	body := bufio.NewReaderSize(plan.WrapRaw(r.Body), 1<<16)
	var reader io.Reader
	switch enc := strings.ToLower(r.Header.Get("Content-Encoding")); enc {
	case "", "identity":
		// Sniff anyway: loadgen may stream a .jsonl.gz byte-for-byte.
		dr, err := dataset.NewDecodingReader(body)
		if err != nil {
			s.countRejected(declared, 0)
			httpError(w, http.StatusBadRequest, 0, 0, err.Error())
			return
		}
		reader = dr
	case "gzip":
		zr, err := gzip.NewReader(body)
		if err != nil {
			s.countRejected(declared, 0)
			httpError(w, http.StatusBadRequest, 0, 0, "bad gzip body: "+err.Error())
			return
		}
		defer zr.Close()
		// Inflate ahead of the decoder from a dedicated goroutine, so
		// decompression overlaps the parallel NDJSON decode instead of
		// serializing with it.
		ra := dataset.NewReadAhead(zr, 4)
		defer ra.Close()
		reader = ra
	default:
		s.countRejected(declared, 0)
		httpError(w, http.StatusUnsupportedMediaType, 0, 0, "unsupported Content-Encoding "+enc)
		return
	}
	reader = plan.WrapDecoded(reader)

	if batchID != "" {
		s.ingestBatch(w, reader, batchID, declared)
		return
	}
	s.ingestStream(w, reader)
}

// ingestStream is the legacy streamed path: records enter the queue as
// they decode, blocking on backpressure, and a mid-body fault keeps
// the already-accepted prefix.
func (s *Server) ingestStream(w http.ResponseWriter, reader io.Reader) {
	// Decode fans out across workers while this goroutine queues the
	// in-order results; records surface strictly in body order, so the
	// accepted prefix before a malformed line is exactly what a serial
	// scan would have admitted.
	pr := dataset.NewParallelReader(reader, s.cfg.DecodeWorkers)
	defer pr.Close()
	accepted := 0
	if s.cfg.ShardCount > 0 {
		// Shard role: the ownership check needs the per-record line
		// number for its 400, so admit record by record.
		for {
			rec, ok := pr.Next()
			if !ok {
				break
			}
			if !s.owns(rec) {
				s.badLines.Add(1)
				s.rejected.Add(1)
				httpError(w, http.StatusBadRequest, pr.Line(), accepted,
					s.notOwnedMsg(rec))
				return
			}
			// The reader reuses its record buffers once a chunk is consumed,
			// but the queue holds the pointer until the store folds it in —
			// copy the (small) struct out; its strings and slices are fresh
			// per-record allocations and safe to share.
			c := *rec
			if err := s.Ingest(&c); err != nil {
				httpError(w, http.StatusServiceUnavailable, pr.Line(), accepted, err.Error())
				return
			}
			accepted++
		}
	} else {
		// Single role owns everything: admit whole decoded chunks. The
		// queue copies the records before the reader reuses the chunk.
		for {
			batch, ok := pr.NextBatch()
			if !ok {
				break
			}
			n, err := s.IngestBatch(batch)
			accepted += n
			if err != nil {
				httpError(w, http.StatusServiceUnavailable, pr.Line(), accepted, err.Error())
				return
			}
		}
	}
	if err := pr.Err(); err != nil {
		s.badLines.Add(1)
		s.rejected.Add(1)
		status, line, msg := classifyIngestErr(err)
		httpError(w, status, line, accepted, msg)
		return
	}
	if err := s.syncWAL(); err != nil {
		httpError(w, http.StatusInternalServerError, 0, accepted, err.Error())
		return
	}
	if err := s.waitReplicated(s.walIndex.Load()); err != nil {
		// The streamed path is not idempotent: the records are durable
		// locally but the client must not count them as delivered. Use
		// X-Batch-Id batches when semi-sync replication is on.
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, 0, accepted, err.Error())
		return
	}
	s.batches.Add(1)
	s.shedStreak.Store(0)
	writeJSON(w, http.StatusOK, ingestResponse{Accepted: accepted})
}

// ingestBatch is the idempotent all-or-nothing path: decode the whole
// body, then admit every record or none. Admission failure sheds with
// 429 + Retry-After rather than blocking the request on a full queue.
func (s *Server) ingestBatch(w http.ResponseWriter, reader io.Reader, batchID string, declared int) {
	pr := dataset.NewParallelReader(reader, s.cfg.DecodeWorkers)
	defer pr.Close()
	var recs []dataset.Record
	if declared > 0 {
		recs = make([]dataset.Record, 0, declared)
	}
	if s.cfg.ShardCount > 0 {
		for {
			rec, ok := pr.Next()
			if !ok {
				break
			}
			if !s.owns(rec) {
				// All-or-nothing: a misrouted record rejects the whole batch
				// before anything is admitted, so the client can re-partition
				// and resend under the same ID.
				s.badLines.Add(1)
				s.countRejected(declared, len(recs)+1)
				httpError(w, http.StatusBadRequest, pr.Line(), 0, s.notOwnedMsg(rec))
				return
			}
			recs = append(recs, *rec)
		}
	} else {
		for {
			batch, ok := pr.NextBatch()
			if !ok {
				break
			}
			recs = append(recs, batch...)
		}
	}
	if err := pr.Err(); err != nil {
		// Nothing was admitted: the whole batch is rejected and the
		// client may fix and resend it under the same ID.
		s.badLines.Add(1)
		s.countRejected(declared, len(recs))
		status, line, msg := classifyIngestErr(err)
		httpError(w, status, line, 0, msg)
		return
	}
	if declared >= 0 && declared != len(recs) {
		s.countRejected(declared, len(recs))
		httpError(w, http.StatusBadRequest, 0, 0,
			fmt.Sprintf("%s declares %d records, body has %d", headerBatchRecords, declared, len(recs)))
		return
	}
	if len(recs) > s.cfg.QueueDepth {
		// Larger than the queue can ever hold: admission would shed it
		// forever, so refuse it outright instead of sending the client
		// into a retry loop.
		s.countRejected(declared, len(recs))
		httpError(w, http.StatusRequestEntityTooLarge, 0, 0,
			fmt.Sprintf("batch of %d records exceeds queue capacity %d; split it", len(recs), s.cfg.QueueDepth))
		return
	}
	if !s.tryAdmit(len(recs)) {
		s.shedRecords.Add(uint64(len(recs)))
		s.shedBatches.Add(1)
		hint := s.retryAfter()
		// One rounding for both header and body so clients comparing the
		// two never see them disagree.
		ms := math.Round(float64(hint.Nanoseconds())/1e5) / 10
		w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(hint.Seconds()))))
		w.Header().Set(headerRetryAfterMs, strconv.FormatFloat(ms, 'f', 1, 64))
		writeJSON(w, http.StatusTooManyRequests, ingestResponse{
			Error: "queue full, batch shed; retry with the same " + headerBatchID, RetryAfterMs: ms,
		})
		return
	}
	if s.eng != nil {
		if !s.ingestBatchDurable(w, batchID, recs) {
			return
		}
	} else {
		for i := range recs {
			if err := s.enqueue(&recs[i]); err != nil {
				// Shutdown raced the admitted batch: release the unused
				// reservations and report how far it got. The batch ID stays
				// unregistered, but the server is terminal at this point.
				s.reserved.Add(-int64(len(recs) - i - 1))
				httpError(w, http.StatusServiceUnavailable, 0, i, err.Error())
				return
			}
		}
		s.dedup.register(batchID, len(recs))
	}
	s.batches.Add(1)
	s.shedStreak.Store(0)
	writeJSON(w, http.StatusOK, ingestResponse{Accepted: len(recs)})
}

// ingestBatchDurable commits an admitted batch on a durable node and
// reports whether the caller should send the 200. The WAL group and the
// queue writes share one walMu section so replay order equals store
// order; the batch ID registers as soon as the group is in the log —
// before any ack and before any of its records can be consumed — so no
// checkpoint can capture the records while missing the ID (the race
// that would double-count a post-crash client retry). The group-commit
// fsync lands before the ack.
func (s *Server) ingestBatchDurable(w http.ResponseWriter, batchID string, recs []dataset.Record) bool {
	s.walMu.Lock()
	if err := s.eng.Append(store.Batch{ID: batchID, Records: recs}); err != nil {
		s.walMu.Unlock()
		s.reserved.Add(-int64(len(recs)))
		httpError(w, http.StatusInternalServerError, 0, 0, "wal append: "+err.Error())
		return false
	}
	end := s.walIndex.Add(uint64(len(recs)))
	s.dedup.register(batchID, len(recs))
	enqueued, enqErr := s.queue.WriteBatch(recs)
	s.walMu.Unlock()
	if enqueued > 0 {
		s.accepted.Add(uint64(enqueued))
		s.observeBatch(recs[:enqueued])
	}
	if enqErr != nil {
		// Shutdown raced the batch after its WAL commit: the dropped
		// tail is not lost — recovery folds it back in from the log.
		// Release the reservations the queue never took.
		s.reserved.Add(-int64(len(recs) - enqueued))
	}
	if err := s.syncWAL(); err != nil {
		httpError(w, http.StatusInternalServerError, 0, enqueued, err.Error())
		return false
	}
	if enqErr != nil {
		httpError(w, http.StatusServiceUnavailable, 0, enqueued, ErrIngestClosed.Error())
		return false
	}
	if err := s.waitReplicated(end); err != nil {
		// The batch is committed and registered locally, so the retry the
		// client now owes dedups — and its ack waits here again until a
		// standby really holds the records.
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, 0, 0, err.Error())
		return false
	}
	return true
}

// notOwnedMsg names the shard a misrouted record belongs to.
func (s *Server) notOwnedMsg(rec *dataset.Record) string {
	return fmt.Sprintf("record owned by shard %d, this node is shard %d/%d",
		analysis.OwnerOf(rec, s.cfg.ShardCount), s.cfg.ShardIndex, s.cfg.ShardCount)
}

// countRejected adds a refused batch to the rejected-records counter:
// the declared size when the client sent one, otherwise however many
// records were decoded before the refusal.
func (s *Server) countRejected(declared, decoded int) {
	n := decoded
	if declared > n {
		n = declared
	}
	if n > 0 {
		s.rejected.Add(uint64(n))
	}
}

// classifyIngestErr maps a decode-pipeline error to an HTTP status,
// the 1-based line to report, and a message. A read deadline expiring
// mid-body (slow-loris cut off) is a 408; everything else is a
// line-numbered 400.
func classifyIngestErr(err error) (status, line int, msg string) {
	status = http.StatusBadRequest
	if errors.Is(err, os.ErrDeadlineExceeded) {
		status = http.StatusRequestTimeout
	}
	var le *dataset.LineError
	if errors.As(err, &le) {
		line = le.Line
		if le.After {
			// Mid-body read failures (truncated gzip, dropped
			// connection) still report how far ingestion got.
			line++
		}
		return status, line, le.Err.Error()
	}
	return status, 0, err.Error()
}

func httpError(w http.ResponseWriter, status, line, accepted int, msg string) {
	writeJSON(w, status, ingestResponse{Accepted: accepted, Line: line, Error: msg})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
