package bounced

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"io"
	"net/http"
	"strings"

	"repro/internal/dataset"
)

// ingestResponse is the JSON body of every /v1/records reply.
type ingestResponse struct {
	Accepted int    `json:"accepted"`
	Line     int    `json:"line,omitempty"`
	Error    string `json:"error,omitempty"`
}

// handleRecords ingests one NDJSON batch. Lines are validated and
// queued one at a time: a malformed line yields a 400 naming its
// 1-based line number, with every preceding valid line already
// accepted (the response's accepted count says how many). Bodies may
// be gzip-compressed, signalled by Content-Encoding: gzip or sniffed
// from the magic bytes. Queue-full backpressure blocks the request,
// never drops records.
func (s *Server) handleRecords(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, 0, 0, "POST only")
		return
	}
	if s.closed.Load() {
		httpError(w, http.StatusServiceUnavailable, 0, 0, "shutting down")
		return
	}
	body := bufio.NewReaderSize(r.Body, 1<<16)
	var reader io.Reader = body
	switch enc := strings.ToLower(r.Header.Get("Content-Encoding")); enc {
	case "", "identity":
		// Sniff anyway: loadgen may stream a .jsonl.gz byte-for-byte.
		dr, err := dataset.NewDecodingReader(body)
		if err != nil {
			httpError(w, http.StatusBadRequest, 0, 0, err.Error())
			return
		}
		reader = dr
	case "gzip":
		zr, err := gzip.NewReader(body)
		if err != nil {
			httpError(w, http.StatusBadRequest, 0, 0, "bad gzip body: "+err.Error())
			return
		}
		defer zr.Close()
		reader = zr
	default:
		httpError(w, http.StatusUnsupportedMediaType, 0, 0, "unsupported Content-Encoding "+enc)
		return
	}

	sc := bufio.NewScanner(reader)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	accepted, line := 0, 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec dataset.Record
		if err := json.Unmarshal(raw, &rec); err != nil {
			s.badLines.Add(1)
			httpError(w, http.StatusBadRequest, line, accepted, err.Error())
			return
		}
		if err := s.Ingest(&rec); err != nil {
			httpError(w, http.StatusServiceUnavailable, line, accepted, err.Error())
			return
		}
		accepted++
	}
	if err := sc.Err(); err != nil {
		// Mid-body read failures (truncated gzip, dropped connection)
		// still report how far ingestion got.
		s.badLines.Add(1)
		httpError(w, http.StatusBadRequest, line+1, accepted, err.Error())
		return
	}
	s.batches.Add(1)
	writeJSON(w, http.StatusOK, ingestResponse{Accepted: accepted})
}

func httpError(w http.ResponseWriter, status, line, accepted int, msg string) {
	writeJSON(w, status, ingestResponse{Accepted: accepted, Line: line, Error: msg})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
