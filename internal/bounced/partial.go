package bounced

import (
	"net/http"
	"strconv"
)

// headerPartialRecords reports how many records a partial snapshot
// covers — the coordinator surfaces it on /v1/stats.
const headerPartialRecords = "X-Partial-Records"

// handlePartial serves the node's versioned partial-aggregate snapshot
// (analysis.PartialSet wire format) over everything consumed so far.
// The same drain barrier /v1/report uses applies: the snapshot covers
// every record whose ingest request already returned. Bytes are cached
// per study, so repeated coordinator polls while no new record arrived
// are free.
func (s *Server) handlePartial(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, 0, 0, "GET only")
		return
	}
	st := s.study()
	s.partialMu.Lock()
	if s.partialFor != st {
		s.partialBytes = st.Partials().Marshal()
		s.partialFor = st
	}
	b := s.partialBytes
	s.partialMu.Unlock()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(headerPartialRecords, strconv.Itoa(st.Records.Len()))
	w.Write(b)
}
