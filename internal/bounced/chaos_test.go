package bounced_test

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro"
	"repro/internal/bounced"
	"repro/internal/faultinject"
)

// TestChaosDifferentialSeedSweep is the chaos soak: replay the corpus
// through a fault-injecting server with a fault-injecting client —
// torn bodies, truncated gzip, slow-loris sends, duplicate replays,
// server-side torn streams and a stalled consumer forcing 429 sheds —
// retrying every refusal. The run must converge on exactly the clean
// state: a final /v1/report byte-identical to the batch analyzer over
// the same records, and an accounting balance with no record lost or
// double-counted. `make chaos` runs this sweep.
func TestChaosDifferentialSeedSweep(t *testing.T) {
	records, env := fixture(t)
	path := filepath.Join(t.TempDir(), "corpus.jsonl")
	if err := os.WriteFile(path, encodeNDJSON(t, records), 0o644); err != nil {
		t.Fatal(err)
	}
	clean := batchReport(t, records, env, bounce.AllSections)

	seeds := []uint64{1, 7, 42}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			srv := newServer(t, bounced.Config{
				Env: env, QueueDepth: 96, Seed: seed, ReadTimeout: 5 * time.Second,
				// Server-side hostility: torn request streams and a slowed
				// consumer so admission control actually sheds. Corruption
				// faults are excluded on purpose — a flipped byte can still
				// be valid JSON, which is data corruption, not delivery
				// failure, and would (correctly) break byte-equality.
				Faults: &faultinject.Spec{Seed: seed, Torn: 0.2, Stall: 200 * time.Microsecond},
			})
			defer srv.Abort()
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()

			res, err := bounced.Chaos(bounced.ChaosConfig{
				URL: ts.URL, Path: path, BatchSize: 64, Seed: seed, Gzip: seed%2 == 0,
				Faults: &faultinject.Spec{
					Seed: seed + 100, Torn: 0.3, TruncGzip: 0.2, Dup: 0.5,
					Loris: 0.15, LorisPause: time.Millisecond,
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("chaos seed %d: %d records, %d batches, %d presented, %d retries, %d shed, %d faulted, %d dups (%.2fs) faults=%v",
				seed, res.Records, res.Batches, res.Presented, res.Retries, res.Shed,
				res.Faulted, res.Duplicates, res.Seconds, res.FaultCounts)

			if res.Records != len(records) {
				t.Fatalf("chaos delivered %d records, want %d", res.Records, len(records))
			}
			if res.Faulted == 0 || res.Duplicates == 0 {
				t.Fatalf("fault schedule fired nothing (faulted %d, duplicates %d) — chaos run degenerated to a clean replay", res.Faulted, res.Duplicates)
			}
			if res.Deduped < res.Duplicates {
				t.Fatalf("%d duplicate sends but only %d dedup acks", res.Duplicates, res.Deduped)
			}
			if err := bounced.ChaosVerify(ts.URL, res); err != nil {
				t.Fatal(err)
			}

			status, got := getBody(t, ts.URL+"/v1/report")
			if status != http.StatusOK {
				t.Fatalf("/v1/report status %d", status)
			}
			if !bytes.Equal(got, clean) {
				t.Fatalf("chaos report diverged from clean batch report (%d vs %d bytes)", len(got), len(clean))
			}
		})
	}
}

// TestChaosCleanScheduleIsPlainReplay: an inactive fault spec must
// degrade Chaos to an ordinary idempotent replay with zero damage.
func TestChaosCleanScheduleIsPlainReplay(t *testing.T) {
	records, env := fixture(t)
	path := filepath.Join(t.TempDir(), "corpus.jsonl")
	if err := os.WriteFile(path, encodeNDJSON(t, records[:500]), 0o644); err != nil {
		t.Fatal(err)
	}
	srv := newServer(t, bounced.Config{Env: env})
	defer srv.Abort()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	res, err := bounced.Chaos(bounced.ChaosConfig{URL: ts.URL, Path: path, BatchSize: 100, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 500 || res.Faulted != 0 || res.Duplicates != 0 || res.Retries != 0 {
		t.Fatalf("clean chaos run not clean: %+v", res)
	}
	if res.Presented != 500 {
		t.Fatalf("presented %d, want 500", res.Presented)
	}
	if err := bounced.ChaosVerify(ts.URL, res); err != nil {
		t.Fatal(err)
	}
}
