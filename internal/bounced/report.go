package bounced

import (
	"bytes"
	"net/http"
	"strings"
	"time"

	"repro"
	"repro/internal/dataset"
	"repro/internal/ndr"
	"repro/internal/policy"
	"repro/internal/replication"
	"repro/internal/store"
)

// study returns a Study over every record consumed so far, first
// waiting for the store to catch up with everything ingestion has
// already admitted. Snapshots are cached: while no new record has
// been consumed, the previous study is reused. The snapshot pipeline
// also becomes the live classifier for subsequent ingest metrics.
func (s *Server) study() *bounce.Study {
	s.waitConsumed(s.accepted.Load())
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	n := s.consumed.Load()
	if s.snapStudy != nil && s.snapAt == n {
		return s.snapStudy
	}
	inc := s.incState()
	warmBefore, _ := inc.Snapshots()
	t0 := time.Now()
	a := inc.Snapshot(s.cfg.Env)
	ms := float64(time.Since(t0).Nanoseconds()) / 1e6
	if warmAfter, _ := inc.Snapshots(); warmAfter > warmBefore {
		s.snapWarmMs = ms
	} else {
		s.snapColdMs = ms
	}
	st := &bounce.Study{Records: a.Records, Analysis: a}
	st.Detections = a.Detect()
	s.snapStudy, s.snapAt = st, n
	s.snapTaken.Add(1)
	s.liveMu.Lock()
	s.livePipe = a.Pipeline
	s.liveMu.Unlock()
	return st
}

// parseSections mirrors bounceanalyze's -section flag: a
// comma-separated list, or "all" for every section in presentation
// order. Validation happens in WriteReport (unknown sections 400).
func parseSections(arg string) []bounce.Section {
	if arg == "" || arg == "all" {
		return bounce.AllSections
	}
	var out []bounce.Section
	for _, s := range strings.Split(arg, ",") {
		out = append(out, bounce.Section(strings.TrimSpace(s)))
	}
	return out
}

// handleReport serves the batch report over the records ingested so
// far: the bytes are identical to `bounceanalyze -in <file>` over a
// file holding the same records (the differential test's invariant).
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, 0, 0, "GET only")
		return
	}
	st := s.study()
	var buf bytes.Buffer
	if err := st.WriteReport(&buf, parseSections(r.URL.Query().Get("section"))); err != nil {
		httpError(w, http.StatusBadRequest, 0, 0, err.Error())
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(buf.Bytes())
}

// WriteFinalReport drains nothing (call Drain first) and writes the
// final snapshot report — the shutdown flush.
func (s *Server) WriteFinalReport(w interface{ Write([]byte) (int, error) }, sections []bounce.Section) error {
	if len(sections) == 0 {
		sections = bounce.AllSections
	}
	return s.study().WriteReport(w, sections)
}

// handleSnapshot forces a fresh analysis snapshot and reports its
// shape — the explicit warm-up hook loadgen uses to arm the live
// classifier before measuring classify latency.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, 0, 0, "POST only")
		return
	}
	warm0, cold0 := s.incState().Snapshots()
	t0 := time.Now()
	st := s.study()
	elapsedMs := float64(time.Since(t0).Nanoseconds()) / 1e6
	warm1, cold1 := s.incState().Snapshots()
	labeled, coverage := st.Analysis.Pipeline.ManualLabelStats()
	writeJSON(w, http.StatusOK, map[string]any{
		"records":        st.Records.Len(),
		"templates":      st.Analysis.Pipeline.NumTemplates(),
		"labeled":        labeled,
		"label_coverage": coverage,
		"elapsed_ms":     elapsedMs,
		"warm":           warm1 > warm0,
		"cached":         warm1 == warm0 && cold1 == cold0,
	})
}

// latencyStats is the classify-latency summary on /v1/stats.
type latencyStats struct {
	Count  uint64  `json:"count"`
	P50NS  float64 `json:"p50_ns"`
	P90NS  float64 `json:"p90_ns"`
	P99NS  float64 `json:"p99_ns"`
	MeanNS float64 `json:"mean_ns"`
}

// statsResponse is the /v1/stats JSON schema.
type statsResponse struct {
	Seed            uint64            `json:"seed"`
	UptimeSeconds   float64           `json:"uptime_seconds"`
	Accepted        uint64            `json:"accepted"`
	Consumed        uint64            `json:"consumed"`
	QueueDepth      int               `json:"queue_depth"`
	QueueCapacity   int               `json:"queue_capacity"`
	Batches         uint64            `json:"batches"`
	BadLines        uint64            `json:"bad_lines"`
	RecordsShed     uint64            `json:"records_shed"`
	ShedBatches     uint64            `json:"shed_batches"`
	RecordsRejected uint64            `json:"records_rejected"`
	RecordsDeduped  uint64            `json:"records_deduped"`
	DedupBatches    uint64            `json:"dedup_batches"`
	FaultsInjected  uint64            `json:"faults_injected"`
	FaultsByKind    map[string]uint64 `json:"faults_by_kind,omitempty"`
	Snapshots       uint64            `json:"snapshots"`
	SnapshotRecords uint64            `json:"snapshot_records"`
	SnapshotsWarm   uint64            `json:"snapshots_warm"`
	SnapshotsCold   uint64            `json:"snapshots_cold"`
	SnapshotMsCold  float64           `json:"snapshot_ms_cold"`
	SnapshotMsWarm  float64           `json:"snapshot_ms_warm"`
	Degrees         map[string]uint64 `json:"degrees"`
	Types           map[string]uint64 `json:"types,omitempty"`
	AmbiguousLive   uint64            `json:"ambiguous_live"`
	Classify        latencyStats      `json:"classify_latency"`
	PolicyStages    []policy.StageHit `json:"policy_stages,omitempty"`
	Durability      *durabilityStats  `json:"durability,omitempty"`
	Replication     *replicationStats `json:"replication,omitempty"`
}

// replicationStats is the /v1/stats replication sub-object, present on
// durable nodes. On a primary it lists the standby registry and the
// semi-sync ack counters; on a standby it carries the sync loop's view
// of its lag behind the primary.
type replicationStats struct {
	Role           string                    `json:"role"`
	Epoch          uint64                    `json:"epoch"`
	NextIndex      uint64                    `json:"next_index"`
	Promotions     uint64                    `json:"promotions"`
	Standbys       []replication.StandbyInfo `json:"standbys,omitempty"`
	MaxLagRecords  uint64                    `json:"max_lag_records"`
	AckWaits       uint64                    `json:"ack_waits"`
	AckTimeouts    uint64                    `json:"ack_timeouts"`
	Applies        uint64                    `json:"applies"`
	AppliedRecords uint64                    `json:"applied_records"`
	Sync           *replication.SyncStatus   `json:"sync,omitempty"`
}

// replicationBlock assembles the sub-object; nil on memory-only nodes.
func (s *Server) replicationBlock() *replicationStats {
	if s.tracker == nil {
		return nil
	}
	standbys, maxLag := s.tracker.Snapshot()
	rs := &replicationStats{
		Role:           s.role(),
		Epoch:          s.epoch.Load(),
		NextIndex:      s.walIndex.Load(),
		Promotions:     s.promotions.Load(),
		Standbys:       standbys,
		MaxLagRecords:  maxLag,
		AckWaits:       s.replAckWaits.Load(),
		AckTimeouts:    s.replAckTimeouts.Load(),
		Applies:        s.replApplies.Load(),
		AppliedRecords: s.replAppliedRecords.Load(),
	}
	if sl := s.syncLoop.Load(); sl != nil && s.standby.Load() {
		st := sl.Status()
		rs.Sync = &st
	}
	return rs
}

// durabilityStats is the /v1/stats durability sub-object, present only
// on durable nodes (-data-dir).
type durabilityStats struct {
	FsyncMode             string       `json:"fsync_mode"`
	WALSegments           int          `json:"wal_segments"`
	WALBytes              int64        `json:"wal_bytes"`
	NextIndex             uint64       `json:"next_index"`
	AppendedRecords       uint64       `json:"appended_records"`
	AppendedBatches       uint64       `json:"appended_batches"`
	Fsync                 latencyStats `json:"fsync_latency"`
	Checkpoints           uint64       `json:"checkpoints"`
	LastCheckpointRecords uint64       `json:"last_checkpoint_records"`
	// LastCheckpointAgeSeconds is -1 until the first checkpoint exists.
	LastCheckpointAgeSeconds float64      `json:"last_checkpoint_age_seconds"`
	PrunedSegments           uint64       `json:"pruned_segments"`
	Recovery                 RecoveryInfo `json:"recovery"`
}

// durability assembles the sub-object from engine counters; nil on
// memory-only nodes.
func (s *Server) durability() *durabilityStats {
	if s.eng == nil {
		return nil
	}
	st := s.eng.Stats()
	d := &durabilityStats{
		WALSegments:              st.Segments,
		WALBytes:                 st.WALBytes,
		NextIndex:                st.NextIndex,
		AppendedRecords:          st.AppendedRecords,
		AppendedBatches:          st.AppendedBatches,
		Checkpoints:              st.Checkpoints,
		LastCheckpointRecords:    st.LastCheckpointRecords,
		LastCheckpointAgeSeconds: -1,
		PrunedSegments:           st.PrunedSegments,
		Recovery:                 s.recovery,
	}
	if fs, ok := s.eng.(*store.FS); ok {
		d.FsyncMode = fs.Mode().String()
	}
	if st.LastCheckpointUnix > 0 {
		d.LastCheckpointAgeSeconds = time.Since(time.Unix(st.LastCheckpointUnix, 0)).Seconds()
	}
	d.Fsync = latencyStats{Count: st.Fsyncs}
	if st.Fsyncs > 0 {
		d.Fsync.P50NS = quantile(store.FsyncBounds, st.FsyncHist, st.Fsyncs, 0.50)
		d.Fsync.P90NS = quantile(store.FsyncBounds, st.FsyncHist, st.Fsyncs, 0.90)
		d.Fsync.P99NS = quantile(store.FsyncBounds, st.FsyncHist, st.Fsyncs, 0.99)
		d.Fsync.MeanNS = float64(st.FsyncNanos) / float64(st.Fsyncs)
	}
	return d
}

// handleStats serves the service counters as JSON — the programmatic
// twin of /metrics, including the policy-chain per-stage hit counters.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := statsResponse{
		Seed:            s.cfg.Seed,
		UptimeSeconds:   time.Since(s.startedAt).Seconds(),
		Accepted:        s.accepted.Load(),
		Consumed:        s.consumed.Load(),
		QueueDepth:      s.queue.Len(),
		QueueCapacity:   s.queue.Cap(),
		Batches:         s.batches.Load(),
		BadLines:        s.badLines.Load(),
		RecordsShed:     s.shedRecords.Load(),
		ShedBatches:     s.shedBatches.Load(),
		RecordsRejected: s.rejected.Load(),
		RecordsDeduped:  s.deduped.Load(),
		DedupBatches:    s.dedupBatches.Load(),
		FaultsInjected:  s.faults.Total(),
		Snapshots:       s.snapTaken.Load(),
		AmbiguousLive:   s.ambiguous.Load(),
		Degrees:         make(map[string]uint64, 3),
		Types:           make(map[string]uint64),
		Classify:        s.hist.stats(),
	}
	for d := dataset.NonBounced; d <= dataset.HardBounced; d++ {
		resp.Degrees[d.String()] = s.degrees[int(d)].Load()
	}
	for _, t := range ndr.AllTypes {
		if n := s.typeHits[t].Load(); n > 0 {
			resp.Types[t.String()] = n
		}
	}
	if faults := s.faults.Counts(); len(faults) > 0 {
		resp.FaultsByKind = faults
	}
	resp.SnapshotsWarm, resp.SnapshotsCold = s.incState().Snapshots()
	s.snapMu.Lock()
	resp.SnapshotRecords = s.snapAt
	resp.SnapshotMsCold = s.snapColdMs
	resp.SnapshotMsWarm = s.snapWarmMs
	s.snapMu.Unlock()
	if s.cfg.PolicyMetrics != nil {
		resp.PolicyStages = s.cfg.PolicyMetrics.Snapshot()
	}
	resp.Durability = s.durability()
	resp.Replication = s.replicationBlock()
	writeJSON(w, http.StatusOK, resp)
}
