package bounced

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sort"
	"time"

	"repro/internal/analysis"
	"repro/internal/dataset"
	"repro/internal/store"
)

// Checkpoint section names. The storage engine treats sections as
// opaque; these are the server's composition of them.
const (
	// sectionIncremental is the analysis accumulator: slab store, drain
	// trees, training watermark (analysis.IncrementalState).
	sectionIncremental = "incremental"
	// sectionDedup is the X-Batch-Id idempotency window, so a client
	// replaying an already-acked batch after a crash still dedups.
	sectionDedup = "dedup"
	// sectionPartial is the PartialSet wire envelope of the newest
	// study at checkpoint time — a coordinator-mergeable summary whose
	// coverage may lag the checkpoint's record count (it is advisory;
	// recovery only validates that it decodes).
	sectionPartial = "partial"
	// sectionRepl carries the replication epoch, the fencing token a
	// promotion bumps. Persisting it in the checkpoint is what keeps a
	// promoted node's epoch ahead of the dead primary's across its own
	// restarts — and what ships it to standbys during a resync.
	sectionRepl = "repl"
)

// replSectionBody is the JSON layout of sectionRepl.
type replSectionBody struct {
	Epoch uint64 `json:"epoch"`
}

// replEpoch decodes a checkpoint's epoch; 0 when the section is
// missing (pre-replication checkpoints) or malformed.
func replEpoch(cp *store.Checkpoint) uint64 {
	blob, ok := cp.Sections[sectionRepl]
	if !ok {
		return 0
	}
	var body replSectionBody
	if err := json.Unmarshal(blob, &body); err != nil {
		return 0
	}
	return body.Epoch
}

// RecoveryInfo describes what New restored from the storage engine.
type RecoveryInfo struct {
	// CheckpointRecords is the record count the restored checkpoint
	// covered (0 when the directory held none).
	CheckpointRecords uint64 `json:"checkpoint_records"`
	// Replayed is how many WAL-tail records were folded back in.
	Replayed int `json:"replayed"`
	// Batches is how many committed batch IDs the tail re-registered
	// into the dedup window.
	Batches int `json:"batches"`
	// DroppedUncommitted counts records discarded from a trailing WAL
	// batch whose commit marker never hit the disk (never acked; the
	// client retries it).
	DroppedUncommitted int `json:"dropped_uncommitted"`
	// TornTruncated reports that a torn trailing write was cut from
	// the WAL — the kill -9 signature.
	TornTruncated bool `json:"torn_truncated"`
}

// Recovery reports what New restored from the storage engine; zero for
// memory-only servers.
func (s *Server) Recovery() RecoveryInfo { return s.recovery }

// recoverState rebuilds an analysis accumulator from eng: the newest
// decodable checkpoint (whose embedded pipeline config wins over cfg),
// then a WAL-tail replay in append order. Shared by the server boot
// path and the offline RecoverIncremental helper.
func recoverState(eng store.Engine, cfg analysis.PipelineConfig) (*analysis.Incremental, *store.Checkpoint, store.TailInfo, error) {
	cp, err := eng.Recover()
	if err != nil {
		return nil, nil, store.TailInfo{}, err
	}
	inc := analysis.NewIncremental(cfg)
	var from uint64
	if cp != nil {
		blob, ok := cp.Sections[sectionIncremental]
		if !ok {
			return nil, nil, store.TailInfo{}, fmt.Errorf("bounced: checkpoint at %d records has no %q section", cp.Records, sectionIncremental)
		}
		if inc, err = analysis.RestoreIncremental(blob); err != nil {
			return nil, nil, store.TailInfo{}, fmt.Errorf("bounced: checkpoint %s section: %w", sectionIncremental, err)
		}
		if got := uint64(inc.Len()); got != cp.Records {
			return nil, nil, store.TailInfo{}, fmt.Errorf("bounced: checkpoint covers %d records but its state holds %d", cp.Records, got)
		}
		from = cp.Records
	}
	info, err := eng.Tail(from, func(_ uint64, rec *dataset.Record) error {
		inc.Add(rec) // Add clones; the pointer is only valid in-callback
		return nil
	})
	if err != nil {
		return nil, nil, info, err
	}
	if got := uint64(inc.Len()); got != info.NextIndex {
		return nil, nil, info, fmt.Errorf("bounced: recovery holds %d records, WAL index says %d", got, info.NextIndex)
	}
	return inc, cp, info, nil
}

// recover is New's boot path on durable nodes: restore the analysis
// state and dedup window from the newest checkpoint, replay the WAL
// tail, and re-register tail batches so a client retrying an acked
// batch from before the crash still dedups.
func (s *Server) recover() error {
	inc, cp, info, err := recoverState(s.eng, s.cfg.Pipeline)
	if err != nil {
		return err
	}
	s.inc = inc
	var from uint64
	if cp != nil {
		from = cp.Records
		if blob, ok := cp.Sections[sectionDedup]; ok {
			if err := s.dedup.restore(blob); err != nil {
				return fmt.Errorf("bounced: checkpoint %s section: %w", sectionDedup, err)
			}
		}
		if blob, ok := cp.Sections[sectionPartial]; ok && len(blob) > 0 {
			if _, err := analysis.UnmarshalPartialSet(blob, s.cfg.Env); err != nil {
				return fmt.Errorf("bounced: checkpoint %s section: %w", sectionPartial, err)
			}
		}
	}
	// Sorted for a deterministic FIFO eviction order; the window is
	// far larger than any plausible tail batch count.
	ids := make([]string, 0, len(info.Batches))
	for id := range info.Batches {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		s.dedup.register(id, info.Batches[id])
	}
	if cp != nil {
		if epoch := replEpoch(cp); epoch > s.epoch.Load() {
			s.epoch.Store(epoch)
		}
	}
	s.lastCP.Store(from)
	s.recovery = RecoveryInfo{
		CheckpointRecords:  from,
		Replayed:           info.Replayed,
		Batches:            len(info.Batches),
		DroppedUncommitted: info.DroppedUncommitted,
		TornTruncated:      info.TornTruncated,
	}
	return nil
}

// RecoverIncremental rebuilds the analysis accumulator from a bounced
// data directory without starting a server — the offline-analysis path
// (bounceanalyze -data-dir). The directory is opened read-only, so a
// live bounced on the same directory is unaffected; a torn WAL tail is
// skipped during replay but left on disk.
func RecoverIncremental(dir string, cfg analysis.PipelineConfig) (*analysis.Incremental, store.TailInfo, error) {
	eng, err := store.Open(store.FSOptions{Dir: dir, ReadOnly: true, Logf: log.Printf})
	if err != nil {
		return nil, store.TailInfo{}, err
	}
	defer eng.Close()
	inc, _, info, err := recoverState(eng, cfg)
	return inc, info, err
}

// CheckpointNow captures the analysis state at a record boundary and
// persists it — with the dedup window and the newest partial envelope —
// as one atomic checkpoint, then prunes WAL segments the retained
// checkpoints fully cover. Returns nil without writing when no record
// has been consumed since the last checkpoint. Safe to call
// concurrently with ingestion; the capture runs under the analysis
// locks, the (expensive) serialization and file writes do not.
func (s *Server) CheckpointNow() error {
	if s.eng == nil {
		return errors.New("bounced: no storage engine configured")
	}
	s.cpMu.Lock()
	defer s.cpMu.Unlock()
	st := s.incState().CaptureState()
	n := uint64(st.Records())
	epoch := s.epoch.Load()
	// An epoch bump alone (promotion with no new records) still forces
	// a write: the fencing token must survive a restart.
	if n == s.lastCP.Load() && epoch == s.lastCPEpoch.Load() {
		return nil
	}
	blob, err := st.MarshalBinary()
	if err != nil {
		return err
	}
	replBody, _ := json.Marshal(replSectionBody{Epoch: epoch})
	// The dedup window is captured after the analysis state: it may
	// include batches newer than n, which is safe — their records sit in
	// the WAL tail past n and replay re-registers them idempotently.
	// The reverse order would lose a batch registered between the two
	// captures whose records were already consumed.
	cp := &store.Checkpoint{Records: n, Sections: map[string][]byte{
		sectionIncremental: blob,
		sectionDedup:       s.dedup.marshal(),
		sectionPartial:     s.partialSection(),
		sectionRepl:        replBody,
	}}
	if err := s.eng.Checkpoint(cp); err != nil {
		return err
	}
	s.lastCP.Store(n)
	s.lastCPEpoch.Store(epoch)
	return nil
}

// partialSection returns the marshaled partial aggregate of the newest
// study, refreshing the /v1/partial cache as a side effect. Coverage
// may differ from the checkpoint's record boundary; the section is a
// warm-start convenience for coordinators, not recovery state.
func (s *Server) partialSection() []byte {
	st := s.study()
	s.partialMu.Lock()
	defer s.partialMu.Unlock()
	if s.partialFor != st {
		s.partialBytes = st.Partials().Marshal()
		s.partialFor = st
	}
	return s.partialBytes
}

// checkpointLoop checkpoints on a fixed cadence until Drain/Abort.
func (s *Server) checkpointLoop(every time.Duration) {
	defer s.cpWG.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-s.cpStop:
			return
		case <-t.C:
			if err := s.CheckpointNow(); err != nil && !s.closed.Load() {
				log.Printf("bounced: checkpoint: %v", err)
			}
		}
	}
}

// syncWAL makes every prior append durable per the engine's fsync mode
// — the group-commit point an ingest ack waits on. The replication
// tracker advances here, not at append time, so a woken standby poll
// always finds the promised tail bytes readable.
func (s *Server) syncWAL() error {
	if s.eng == nil {
		return nil
	}
	if err := s.eng.Sync(); err != nil {
		return fmt.Errorf("wal sync: %w", err)
	}
	if s.tracker != nil {
		s.tracker.Advance(s.walIndex.Load())
	}
	return nil
}

// handleCheckpoint forces a checkpoint — the operational hook (and the
// crash drill's way to pin a mid-stream checkpoint deterministically).
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, 0, 0, "POST only")
		return
	}
	if s.eng == nil {
		httpError(w, http.StatusNotFound, 0, 0, "no storage engine configured (-data-dir)")
		return
	}
	if err := s.CheckpointNow(); err != nil {
		httpError(w, http.StatusInternalServerError, 0, 0, err.Error())
		return
	}
	st := s.eng.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"checkpoint_records": st.LastCheckpointRecords,
		"wal_segments":       st.Segments,
		"wal_bytes":          st.WALBytes,
	})
}

// dedupSnapshot is the JSON layout of the dedup checkpoint section:
// parallel arrays in FIFO order, so eviction order survives restarts.
type dedupSnapshot struct {
	IDs    []string `json:"ids"`
	Counts []int    `json:"counts"`
}

func (d *dedupWindow) marshal() []byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	snap := dedupSnapshot{IDs: append([]string(nil), d.order...), Counts: make([]int, len(d.order))}
	for i, id := range d.order {
		snap.Counts[i] = d.seen[id]
	}
	b, err := json.Marshal(snap)
	if err != nil {
		// Strings and ints cannot fail to marshal; keep the section
		// well-formed regardless.
		return []byte(`{"ids":[],"counts":[]}`)
	}
	return b
}

// reset discards the window and restores it from a checkpoint section
// (empty blob = empty window) — the standby full-resync path, where
// the local history is being replaced, not merged.
func (d *dedupWindow) reset(b []byte) error {
	d.mu.Lock()
	d.seen = make(map[string]int, d.cap)
	d.order = nil
	d.mu.Unlock()
	if len(b) == 0 {
		return nil
	}
	return d.restore(b)
}

func (d *dedupWindow) restore(b []byte) error {
	var snap dedupSnapshot
	if err := json.Unmarshal(b, &snap); err != nil {
		return err
	}
	if len(snap.IDs) != len(snap.Counts) {
		return fmt.Errorf("dedup snapshot has %d ids but %d counts", len(snap.IDs), len(snap.Counts))
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for i, id := range snap.IDs {
		if _, ok := d.seen[id]; ok {
			continue
		}
		if len(d.order) >= d.cap {
			delete(d.seen, d.order[0])
			d.order = d.order[1:]
		}
		d.seen[id] = snap.Counts[i]
		d.order = append(d.order, id)
	}
	return nil
}
