package bounced

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataset"
)

// LoadgenConfig drives one replay run against a bounced endpoint.
type LoadgenConfig struct {
	// URL is the service base, e.g. http://localhost:8425.
	URL string
	// Path is the JSONL (optionally gzipped) record file to replay.
	Path string
	// Rate caps replay at records per second; 0 means as fast as
	// possible (the bench mode).
	Rate float64
	// BatchSize is records per POST (default 500).
	BatchSize int
	// Workers is the number of concurrent senders (default 4).
	Workers int
	// Gzip compresses request bodies (Content-Encoding: gzip).
	Gzip bool
	// WarmRecords, when positive, re-posts that many head records
	// after the main replay and snapshots again: the re-posted lines
	// are structurally known to the template miner, so the second
	// snapshot exercises the warm (suffix-only) path and its duration
	// lands in SnapshotMsWarm. Zero skips the warm phase.
	WarmRecords int
	// Progress, when set, receives one line per ~100 batches.
	Progress io.Writer
}

// LoadgenResult is the replay summary; it is the BENCH_bounced.json
// schema for make bench-serve.
type LoadgenResult struct {
	Records       int     `json:"records"`
	Batches       int     `json:"batches"`
	Seconds       float64 `json:"seconds"`
	RecordsPerSec float64 `json:"records_per_sec"`
	// Server-side classify latency over the run, from /v1/stats.
	ClassifyP50NS  float64 `json:"classify_p50_ns"`
	ClassifyP99NS  float64 `json:"classify_p99_ns"`
	ClassifyCount  uint64  `json:"classify_count"`
	ServerConsumed uint64  `json:"server_consumed"`
	// SnapshotMsCold is the server's full-corpus snapshot build time;
	// SnapshotMsWarm (WarmRecords>0 only) the suffix-only rebuild after
	// re-posting head records, with SnapshotWarm confirming the server
	// actually took the warm path.
	SnapshotMsCold float64 `json:"snapshot_ms_cold"`
	SnapshotMsWarm float64 `json:"snapshot_ms_warm,omitempty"`
	SnapshotWarm   bool    `json:"snapshot_warm"`
	// AllocsPerRecord is the client-measured heap allocation count of
	// the fast NDJSON decode path over the corpus head.
	AllocsPerRecord float64 `json:"allocs_per_record"`
	Timestamp       string  `json:"timestamp"`
}

// Loadgen replays cfg.Path against cfg.URL as NDJSON batches. Memory
// stays bounded: the file is streamed, and at most Workers+1 batches
// are in flight at once. Every non-2xx response aborts the run.
func Loadgen(cfg LoadgenConfig) (*LoadgenResult, error) {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 500
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	f, err := os.Open(cfg.Path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	// Replay raw lines (decoded if gzipped) rather than parsed records:
	// the server is the component under test, including its decoding.
	rd, err := dataset.NewDecodingReader(f)
	if err != nil {
		return nil, err
	}

	// Arm the live classifier so classify latency is measured over the
	// whole run, not just post-first-report records. Ignore failure:
	// an empty store cannot snapshot a pipeline yet.
	http.Post(cfg.URL+"/v1/snapshot", "", nil)

	type batch struct {
		body  []byte
		count int
	}
	batches := make(chan batch, cfg.Workers)
	var sent atomic.Int64
	var nBatches atomic.Int64
	errc := make(chan error, cfg.Workers+1)
	var wg sync.WaitGroup
	client := &http.Client{Timeout: 2 * time.Minute}
	for i := 0; i < cfg.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := range batches {
				if err := postBatch(client, cfg, b.body, b.count); err != nil {
					select {
					case errc <- err:
					default:
					}
					// Drain remaining batches so the producer never blocks.
					for range batches {
					}
					return
				}
				sent.Add(int64(b.count))
				nBatches.Add(1)
			}
		}()
	}

	start := time.Now()
	scanRecordLines(rd, cfg, start, func(body []byte, count int) {
		batches <- batch{body, count}
	})
	close(batches)
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	select {
	case err := <-errc:
		return nil, err
	default:
	}

	res := &LoadgenResult{
		Records: int(sent.Load()),
		Batches: int(nBatches.Load()),
		Seconds: elapsed,
	}
	if elapsed > 0 {
		res.RecordsPerSec = float64(res.Records) / elapsed
	}
	// Barrier: a snapshot waits for the store to fold in everything
	// accepted, so the stats below cover the whole replay.
	if resp, err := http.Post(cfg.URL+"/v1/snapshot", "", nil); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if err := fetchServerStats(client, cfg.URL, res); err != nil {
		return nil, err
	}
	if err := warmPhase(client, cfg, res); err != nil {
		return nil, err
	}
	if allocs, err := measureDecodeAllocs(cfg.Path); err == nil {
		res.AllocsPerRecord = allocs
	}
	res.Timestamp = time.Now().UTC().Format(time.RFC3339)
	return res, nil
}

// warmPhase re-posts the corpus head and snapshots again so the run
// also measures the incremental engine's warm path. The extra records
// land after ServerConsumed was captured, keeping the main accounting
// untouched.
func warmPhase(client *http.Client, cfg LoadgenConfig, res *LoadgenResult) error {
	if cfg.WarmRecords <= 0 {
		return nil
	}
	lines, err := headLines(cfg.Path, cfg.WarmRecords)
	if err != nil {
		return err
	}
	var body bytes.Buffer
	for _, l := range lines {
		body.Write(l)
		body.WriteByte('\n')
	}
	if err := postBatch(client, cfg, body.Bytes(), len(lines)); err != nil {
		return err
	}
	if resp, err := http.Post(cfg.URL+"/v1/snapshot", "", nil); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	resp, err := client.Get(cfg.URL + "/v1/stats")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return err
	}
	res.SnapshotMsWarm = st.SnapshotMsWarm
	res.SnapshotWarm = st.SnapshotsWarm > 0
	return nil
}

// headLines reads up to n non-empty raw NDJSON lines from the
// (optionally gzipped) record file.
func headLines(path string, n int) ([][]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rd, err := dataset.NewDecodingReader(bufio.NewReaderSize(f, 1<<16))
	if err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var out [][]byte
	for len(out) < n && sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		out = append(out, append([]byte(nil), sc.Bytes()...))
	}
	return out, sc.Err()
}

// measureDecodeAllocs reports heap allocations per record of the fast
// NDJSON decode path over the corpus head — the client-side twin of
// the BenchmarkDecoderDecode -benchmem figure, recorded in
// BENCH_bounced.json so regressions show up in the bench history.
func measureDecodeAllocs(path string) (float64, error) {
	lines, err := headLines(path, 2000)
	if err != nil || len(lines) == 0 {
		return 0, err
	}
	var dec dataset.Decoder
	var rec dataset.Record
	// One untimed pass warms the decoder's scratch buffers.
	for _, l := range lines {
		if err := dec.Decode(l, &rec); err != nil {
			return 0, err
		}
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for _, l := range lines {
		dec.Decode(l, &rec)
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(len(lines)), nil
}

// scanRecordLines streams the (decoded) file, groups non-empty lines
// into NDJSON batch bodies, and paces emission to cfg.Rate.
func scanRecordLines(r io.Reader, cfg LoadgenConfig, start time.Time, emit func(body []byte, count int)) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var buf bytes.Buffer
	count, total, emitted := 0, 0, 0
	flush := func() {
		if count == 0 {
			return
		}
		if cfg.Rate > 0 {
			due := start.Add(time.Duration(float64(total) / cfg.Rate * float64(time.Second)))
			if d := time.Until(due); d > 0 {
				time.Sleep(d)
			}
		}
		body := make([]byte, buf.Len())
		copy(body, buf.Bytes())
		emit(body, count)
		emitted++
		if cfg.Progress != nil && emitted%100 == 0 {
			fmt.Fprintf(cfg.Progress, "loadgen: %d records in %d batches\n", total, emitted)
		}
		buf.Reset()
		count = 0
	}
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		buf.Write(line)
		buf.WriteByte('\n')
		count++
		total++
		if count >= cfg.BatchSize {
			flush()
		}
	}
	flush()
}

func postBatch(client *http.Client, cfg LoadgenConfig, body []byte, count int) error {
	var rd io.Reader = bytes.NewReader(body)
	enc := ""
	if cfg.Gzip {
		var zbuf bytes.Buffer
		zw := gzip.NewWriter(&zbuf)
		zw.Write(body)
		zw.Close()
		rd, enc = &zbuf, "gzip"
	}
	req, err := http.NewRequest(http.MethodPost, cfg.URL+"/v1/records", rd)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	if enc != "" {
		req.Header.Set("Content-Encoding", enc)
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var ir ingestResponse
		json.NewDecoder(resp.Body).Decode(&ir)
		return fmt.Errorf("loadgen: POST /v1/records: %s (line %d, %d/%d accepted): %s",
			resp.Status, ir.Line, ir.Accepted, count, ir.Error)
	}
	return nil
}

// fetchServerStats fills the server-side latency fields from /v1/stats.
func fetchServerStats(client *http.Client, base string, res *LoadgenResult) error {
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return fmt.Errorf("loadgen: decode /v1/stats: %w", err)
	}
	res.ClassifyP50NS = st.Classify.P50NS
	res.ClassifyP99NS = st.Classify.P99NS
	res.ClassifyCount = st.Classify.Count
	res.ServerConsumed = st.Consumed
	res.SnapshotMsCold = st.SnapshotMsCold
	return nil
}
