package bounced

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/store"
)

// TestLatencyHistBucketInclusivity pins the Prometheus bucket
// semantics: `le` is an inclusive upper bound, so an observation
// exactly at a bound lands in that bound's bucket, and one past the
// last bound lands only in +Inf.
func TestLatencyHistBucketInclusivity(t *testing.T) {
	h := newLatencyHist()
	h.observe(500) // exactly at the first bound: le="5e-07" includes it
	h.observe(501) // one past: next bucket
	h.observe(8192000)
	h.observe(8192001) // beyond every finite bound: +Inf only

	if h.buckets[0] != 1 {
		t.Errorf("bucket[le=500ns] = %d, want 1 (bounds are inclusive)", h.buckets[0])
	}
	if h.buckets[1] != 1 {
		t.Errorf("bucket[le=1000ns] = %d, want 1", h.buckets[1])
	}
	last := len(latencyBounds) - 1
	if h.buckets[last] != 1 {
		t.Errorf("bucket[le=8.192ms] = %d, want 1", h.buckets[last])
	}
	if h.buckets[last+1] != 1 {
		t.Errorf("+Inf overflow bucket = %d, want 1", h.buckets[last+1])
	}
	if h.count != 4 {
		t.Errorf("count = %d, want 4", h.count)
	}
	if want := int64(500 + 501 + 8192000 + 8192001); h.sum != want {
		t.Errorf("sum = %d, want %d", h.sum, want)
	}
}

// TestMetricsHistogramGoldenFormat locks the exposition text of the
// classify-latency histogram: cumulative buckets in bound order, the
// observation at a bound counted at that bound, +Inf equal to _count,
// and _sum in seconds.
func TestMetricsHistogramGoldenFormat(t *testing.T) {
	s, err := New(Config{QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Abort()

	// Known observations: one at the first bound exactly, one mid-range,
	// one past every finite bound.
	s.hist.observe(500)
	s.hist.observe(3000)
	s.hist.observe(10_000_000)

	rec := httptest.NewRecorder()
	s.handleMetrics(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	body := rec.Body.String()

	golden := `# HELP bounced_classify_latency_seconds Live per-record classification latency.
# TYPE bounced_classify_latency_seconds histogram
bounced_classify_latency_seconds_bucket{le="5e-07"} 1
bounced_classify_latency_seconds_bucket{le="1e-06"} 1
bounced_classify_latency_seconds_bucket{le="2e-06"} 1
bounced_classify_latency_seconds_bucket{le="4e-06"} 2
bounced_classify_latency_seconds_bucket{le="8e-06"} 2
bounced_classify_latency_seconds_bucket{le="1.6e-05"} 2
bounced_classify_latency_seconds_bucket{le="3.2e-05"} 2
bounced_classify_latency_seconds_bucket{le="6.4e-05"} 2
bounced_classify_latency_seconds_bucket{le="0.000128"} 2
bounced_classify_latency_seconds_bucket{le="0.000256"} 2
bounced_classify_latency_seconds_bucket{le="0.000512"} 2
bounced_classify_latency_seconds_bucket{le="0.001024"} 2
bounced_classify_latency_seconds_bucket{le="0.002048"} 2
bounced_classify_latency_seconds_bucket{le="0.004096"} 2
bounced_classify_latency_seconds_bucket{le="0.008192"} 2
bounced_classify_latency_seconds_bucket{le="+Inf"} 3
bounced_classify_latency_seconds_sum 0.0100035
bounced_classify_latency_seconds_count 3
`
	if !strings.Contains(body, golden) {
		t.Fatalf("histogram block diverges from golden format.\n--- want ---\n%s\n--- /metrics ---\n%s", golden, body)
	}
}

// TestMetricsReplicationBlock locks the replication series on durable
// nodes: role/epoch gauges and the promotion counter, flipping with a
// promotion, and absent entirely on memory-only nodes.
func TestMetricsReplicationBlock(t *testing.T) {
	scrape := func(s *Server) string {
		rec := httptest.NewRecorder()
		s.handleMetrics(rec, httptest.NewRequest("GET", "/metrics", nil))
		return rec.Body.String()
	}

	mem, err := New(Config{QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Abort()
	if body := scrape(mem); strings.Contains(body, "bounced_epoch") {
		t.Fatal("memory-only node exposes replication metrics")
	}

	s, err := New(Config{QueueDepth: 4, Standby: true, Store: store.NewMem()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Abort()
	body := scrape(s)
	for _, want := range []string{
		"bounced_standby 1\n",
		"bounced_epoch 1\n",
		"bounced_repl_next_index 0\n",
		"bounced_repl_standbys 0\n",
		"bounced_promotions_total 0\n",
		"bounced_repl_ack_waits_total 0\n",
		"bounced_repl_applies_total 0\n",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("standby /metrics missing %q", strings.TrimSpace(want))
		}
	}
	if !s.Promote(7, "test") {
		t.Fatal("Promote returned false on a standby")
	}
	body = scrape(s)
	for _, want := range []string{
		"bounced_standby 0\n",
		"bounced_epoch 7\n",
		"bounced_promotions_total 1\n",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("promoted /metrics missing %q", strings.TrimSpace(want))
		}
	}
}

// TestMetricsHistogramInvariants re-parses the exposition output and
// checks the structural invariants any Prometheus scraper assumes:
// buckets are cumulative and non-decreasing in bound order, and the
// +Inf bucket equals _count.
func TestMetricsHistogramInvariants(t *testing.T) {
	s, err := New(Config{QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Abort()
	for ns := int64(100); ns < 20_000_000; ns = ns*3 + 17 {
		s.hist.observe(ns)
	}

	rec := httptest.NewRecorder()
	s.handleMetrics(rec, httptest.NewRequest("GET", "/metrics", nil))

	var prev, inf, count uint64
	var seenInf bool
	for _, line := range strings.Split(rec.Body.String(), "\n") {
		switch {
		case strings.HasPrefix(line, "bounced_classify_latency_seconds_bucket{le=\"+Inf\"}"):
			fmt.Sscanf(line, "bounced_classify_latency_seconds_bucket{le=\"+Inf\"} %d", &inf)
			seenInf = true
			if inf < prev {
				t.Errorf("+Inf bucket %d < previous cumulative %d", inf, prev)
			}
		case strings.HasPrefix(line, "bounced_classify_latency_seconds_bucket"):
			var v uint64
			i := strings.LastIndexByte(line, ' ')
			fmt.Sscanf(line[i+1:], "%d", &v)
			if v < prev {
				t.Errorf("bucket series decreased: %d after %d (%s)", v, prev, line)
			}
			prev = v
		case strings.HasPrefix(line, "bounced_classify_latency_seconds_count"):
			fmt.Sscanf(line, "bounced_classify_latency_seconds_count %d", &count)
		}
	}
	if !seenInf {
		t.Fatal("no +Inf bucket emitted")
	}
	if inf != count {
		t.Errorf("+Inf bucket %d != _count %d", inf, count)
	}
}
