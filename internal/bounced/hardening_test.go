package bounced_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/bounced"
	"repro/internal/faultinject"
)

// postBatchID posts an NDJSON body under an idempotent batch ID,
// optionally declaring the record count.
func postBatchID(t *testing.T, url, id string, declared int, body []byte) (*http.Response, ingestReply) {
	t.Helper()
	req, err := http.NewRequest("POST", url+"/v1/records", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	req.Header.Set("X-Batch-Id", id)
	if declared >= 0 {
		req.Header.Set("X-Batch-Records", strconv.Itoa(declared))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ir ingestReply
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		t.Fatal(err)
	}
	ir.status = resp.StatusCode
	return resp, ir
}

func serverStats(t *testing.T, url string) map[string]any {
	t.Helper()
	status, b := getBody(t, url+"/v1/stats")
	if status != http.StatusOK {
		t.Fatalf("/v1/stats status %d", status)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestBatchIdempotentDedup: replaying an admitted batch ID must be
// acknowledged with the original accepted count without re-ingesting a
// single record.
func TestBatchIdempotentDedup(t *testing.T) {
	records, env := fixture(t)
	srv := newServer(t, bounced.Config{Env: env})
	defer srv.Abort()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := encodeNDJSON(t, records[:50])
	_, ir := postBatchID(t, ts.URL, "batch-1", 50, body)
	if ir.status != http.StatusOK || ir.Accepted != 50 {
		t.Fatalf("first send: status %d accepted %d: %s", ir.status, ir.Accepted, ir.Error)
	}
	// Replay: same ID, same body — the retry a client issues when the
	// first response was lost.
	_, ir = postBatchID(t, ts.URL, "batch-1", 50, body)
	if ir.status != http.StatusOK || ir.Accepted != 50 {
		t.Fatalf("replay: status %d accepted %d: %s", ir.status, ir.Accepted, ir.Error)
	}
	if srv.Accepted() != 50 {
		t.Fatalf("server accepted %d records, want 50 (replay must not re-ingest)", srv.Accepted())
	}
	st := serverStats(t, ts.URL)
	if st["records_deduped"].(float64) != 50 || st["dedup_batches"].(float64) != 1 {
		t.Fatalf("dedup accounting: deduped=%v batches=%v", st["records_deduped"], st["dedup_batches"])
	}

	// A fresh ID with the same payload ingests normally.
	_, ir = postBatchID(t, ts.URL, "batch-2", 50, body)
	if ir.status != http.StatusOK || srv.Accepted() != 100 {
		t.Fatalf("new ID: status %d, server accepted %d want 100", ir.status, srv.Accepted())
	}
}

// TestBatchShedWith429: once the queue cannot hold a batch, admission
// must shed it immediately with 429 + Retry-After instead of blocking
// the request, and a later retry under the same ID must succeed with
// exact shed accounting.
func TestBatchShedWith429(t *testing.T) {
	records, env := fixture(t)
	// A stalled consumer (2ms per record) keeps the tiny queue full.
	srv := newServer(t, bounced.Config{
		Env: env, QueueDepth: 8,
		Faults: &faultinject.Spec{Stall: 2 * time.Millisecond},
	})
	defer srv.Abort()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if _, ir := postBatchID(t, ts.URL, "fill", 8, encodeNDJSON(t, records[:8])); ir.status != http.StatusOK {
		t.Fatalf("fill batch: status %d: %s", ir.status, ir.Error)
	}
	// The queue holds 8 unconsumed records: the next batch cannot fit.
	resp, ir := postBatchID(t, ts.URL, "shed-me", 8, encodeNDJSON(t, records[8:16]))
	if ir.status != http.StatusTooManyRequests {
		t.Fatalf("overload batch: status %d, want 429: %s", ir.status, ir.Error)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want integer seconds >= 1", resp.Header.Get("Retry-After"))
	}
	ms, err := strconv.ParseFloat(resp.Header.Get("X-Retry-After-Ms"), 64)
	if err != nil || ms <= 0 {
		t.Fatalf("X-Retry-After-Ms = %q, want positive milliseconds", resp.Header.Get("X-Retry-After-Ms"))
	}
	if ir.RetryAfterMs != ms {
		t.Fatalf("body retry_after_ms %v != header %v", ir.RetryAfterMs, ms)
	}

	// Retry under the same ID until the consumer drains the queue.
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, ir = postBatchID(t, ts.URL, "shed-me", 8, encodeNDJSON(t, records[8:16]))
		if ir.status == http.StatusOK {
			break
		}
		if ir.status != http.StatusTooManyRequests {
			t.Fatalf("retry: status %d: %s", ir.status, ir.Error)
		}
		if time.Now().After(deadline) {
			t.Fatal("batch still shed after 10s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if srv.Accepted() != 16 {
		t.Fatalf("accepted %d records, want 16", srv.Accepted())
	}
	st := serverStats(t, ts.URL)
	shed := uint64(st["records_shed"].(float64))
	if shed < 8 || shed%8 != 0 {
		t.Fatalf("records_shed = %d, want a positive multiple of 8", shed)
	}
	// The balance every chaos run must satisfy: presented = accepted +
	// shed + rejected + deduped, with each request classified once.
	presented := srv.Accepted() + shed +
		uint64(st["records_rejected"].(float64)) + uint64(st["records_deduped"].(float64))
	wantPresented := uint64(16 + shed) // 2 admitted batches + shed attempts
	if presented != wantPresented {
		t.Fatalf("accounting balance: presented %d, want %d", presented, wantPresented)
	}
}

// TestBatchOversizedRejected: a batch larger than the queue could ever
// admit must 413 instead of shedding forever.
func TestBatchOversizedRejected(t *testing.T) {
	records, env := fixture(t)
	srv := newServer(t, bounced.Config{Env: env, QueueDepth: 4})
	defer srv.Abort()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	_, ir := postBatchID(t, ts.URL, "too-big", 16, encodeNDJSON(t, records[:16]))
	if ir.status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch: status %d, want 413: %s", ir.status, ir.Error)
	}
	if srv.Accepted() != 0 {
		t.Fatalf("oversized batch partially ingested: %d", srv.Accepted())
	}
	st := serverStats(t, ts.URL)
	if st["records_rejected"].(float64) != 16 {
		t.Fatalf("records_rejected = %v, want 16", st["records_rejected"])
	}
}

// TestBatchAtomicOnDecodeError: with a batch ID, a malformed line
// must reject the whole batch — no partial prefix — and the ID stays
// unregistered so a corrected resend under the same ID succeeds.
func TestBatchAtomicOnDecodeError(t *testing.T) {
	records, env := fixture(t)
	srv := newServer(t, bounced.Config{Env: env})
	defer srv.Abort()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	good := encodeNDJSON(t, records[:20])
	lines := bytes.SplitAfter(good, []byte("\n"))
	bad := bytes.Join([][]byte{bytes.Join(lines[:10], nil), []byte("{broken\n"), bytes.Join(lines[10:], nil)}, nil)

	_, ir := postBatchID(t, ts.URL, "atomic", -1, bad)
	if ir.status != http.StatusBadRequest || ir.Accepted != 0 {
		t.Fatalf("malformed batch: status %d accepted %d, want 400/0", ir.status, ir.Accepted)
	}
	if ir.Line != 11 {
		t.Fatalf("malformed batch line %d, want 11", ir.Line)
	}
	if srv.Accepted() != 0 {
		t.Fatalf("atomic batch leaked %d records before the bad line", srv.Accepted())
	}
	// Declared-count mismatches reject the batch too.
	if _, ir := postBatchID(t, ts.URL, "miscount", 19, good); ir.status != http.StatusBadRequest {
		t.Fatalf("declared mismatch: status %d, want 400", ir.status)
	}
	// The corrected resend reuses the same ID.
	if _, ir := postBatchID(t, ts.URL, "atomic", 20, good); ir.status != http.StatusOK || ir.Accepted != 20 {
		t.Fatalf("corrected resend: status %d accepted %d: %s", ir.status, ir.Accepted, ir.Error)
	}
	if srv.Accepted() != 20 {
		t.Fatalf("accepted %d, want 20", srv.Accepted())
	}
}

// TestServerFaultInjectionSurfacesDecodeError: a torn-stream fault
// injected server-side must surface as an ordinary line-numbered 400,
// be counted in faults_injected, and leave the stream retryable. The
// torn cut always lands in the first 16 KiB, so a larger body trips it
// deterministically.
func TestServerFaultInjectionSurfacesDecodeError(t *testing.T) {
	records, env := fixture(t)
	srv := newServer(t, bounced.Config{
		Env:    env,
		Faults: &faultinject.Spec{Seed: 3, Torn: 1},
	})
	defer srv.Abort()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := encodeNDJSON(t, records[:50])
	for len(body) <= 17<<10 {
		body = append(body, body...)
	}
	ir := postRecords(t, ts.URL, body)
	if ir.status != http.StatusBadRequest || ir.Line < 1 {
		t.Fatalf("torn stream: status %d line %d, want a line-numbered 400", ir.status, ir.Line)
	}
	st := serverStats(t, ts.URL)
	if st["faults_injected"].(float64) < 1 {
		t.Fatalf("faults_injected = %v, want >= 1", st["faults_injected"])
	}
	status, metrics := getBody(t, ts.URL+"/metrics")
	if status != http.StatusOK || !strings.Contains(string(metrics), `bounced_faults_injected_total{kind="torn"}`) {
		t.Fatalf("metrics missing injected-fault counter (status %d)", status)
	}
}

// TestReadDeadlineCutsSlowLoris: a client that trickles its body
// slower than the read deadline must be cut off with 408 instead of
// holding the ingest goroutine hostage, keeping the complete prefix.
func TestReadDeadlineCutsSlowLoris(t *testing.T) {
	records, env := fixture(t)
	srv := newServer(t, bounced.Config{Env: env, ReadTimeout: 250 * time.Millisecond})
	defer srv.Abort()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	pr, pw := io.Pipe()
	done := make(chan ingestReply, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/records", "application/x-ndjson", pr)
		if err != nil {
			done <- ingestReply{status: -1, Error: err.Error()}
			return
		}
		defer resp.Body.Close()
		var ir ingestReply
		json.NewDecoder(resp.Body).Decode(&ir)
		ir.status = resp.StatusCode
		done <- ir
	}()

	// One complete record, then silence past the deadline.
	pw.Write(encodeNDJSON(t, records[:1]))
	start := time.Now()
	select {
	case ir := <-done:
		if ir.status != http.StatusRequestTimeout {
			t.Fatalf("slow-loris reply: status %d (%s), want 408", ir.status, ir.Error)
		}
		if ir.Accepted != 1 {
			t.Fatalf("slow-loris accepted %d, want the 1 complete record", ir.Accepted)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("slow-loris request never cut off")
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("deadline took %v to fire", waited)
	}
	pw.Close()
}

// TestDrainZeroLossUnderSlowLoris extends the zero-loss drain
// guarantee to fault load: shutdown arriving while an injected
// slow-loris ingest is mid-flight must still flush a final report
// covering every accepted record — the streamed prefix of the loris
// request included.
func TestDrainZeroLossUnderSlowLoris(t *testing.T) {
	records, env := fixture(t)
	srv := newServer(t, bounced.Config{Env: env, QueueDepth: 64, ReadTimeout: 300 * time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// A healthy batch lands first.
	if ir := postRecords(t, ts.URL, encodeNDJSON(t, records[:100])); ir.status != http.StatusOK {
		t.Fatalf("healthy batch: status %d", ir.status)
	}

	// The loris client delivers 3 complete records, then stalls past
	// the read deadline while shutdown begins.
	// A dedicated transport keeps the loris request off the keep-alive
	// connection the healthy batch left idle: Shutdown may close an
	// idle connection in the instant before the server notices the new
	// request on it, which would reset the client instead of serving it.
	lorisClient := &http.Client{Transport: &http.Transport{}}
	defer lorisClient.CloseIdleConnections()
	pr, pw := io.Pipe()
	lorisDone := make(chan ingestReply, 1)
	go func() {
		resp, err := lorisClient.Post(ts.URL+"/v1/records", "application/x-ndjson", pr)
		if err != nil {
			lorisDone <- ingestReply{status: -1, Error: err.Error()}
			return
		}
		defer resp.Body.Close()
		var ir ingestReply
		json.NewDecoder(resp.Body).Decode(&ir)
		ir.status = resp.StatusCode
		lorisDone <- ir
	}()
	pw.Write(encodeNDJSON(t, records[100:103]))
	// Let the handler pick the request up before shutdown begins; even
	// if this overshoots the read deadline the assertions below hold.
	time.Sleep(100 * time.Millisecond)

	// SIGTERM path, exactly as cmd/bounced runs it: stop HTTP (waits
	// for the loris request to be cut at its deadline), then drain.
	shCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := ts.Config.Shutdown(shCtx); err != nil {
		t.Fatalf("http shutdown: %v", err)
	}
	ir := <-lorisDone
	if ir.status != http.StatusRequestTimeout || ir.Accepted != 3 {
		t.Fatalf("loris request: status %d accepted %d (%s), want 408 with 3 records", ir.status, ir.Accepted, ir.Error)
	}
	pw.Close()

	n := srv.Drain()
	want := uint64(103)
	if n != want || srv.Accepted() != want {
		t.Fatalf("drained %d records (accepted %d), want %d", n, srv.Accepted(), want)
	}
	var buf bytes.Buffer
	if err := srv.WriteFinalReport(&buf, []bounce.Section{bounce.SecOverview}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), fmt.Sprintf("%d", want)) {
		t.Errorf("final report does not cover all %d records:\n%s", want, buf.String())
	}
}
