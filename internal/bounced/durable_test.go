package bounced_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro"
	"repro/internal/bounced"
	"repro/internal/dataset"
	"repro/internal/store"
)

// openEngine opens (or reopens) a filesystem storage engine on dir.
func openEngine(t *testing.T, dir string) *store.FS {
	t.Helper()
	eng, err := store.Open(store.FSOptions{Dir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// postBatch sends one idempotent X-Batch-Id batch.
func postBatch(t *testing.T, url, id string, records []dataset.Record) ingestReply {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/records", bytes.NewReader(encodeNDJSON(t, records)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(headerBatchID, id)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ir ingestReply
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		t.Fatal(err)
	}
	ir.status = resp.StatusCode
	return ir
}

const headerBatchID = "X-Batch-Id"

// sendBatches posts records in batches of size per, with IDs
// "<prefix>-<index>" counting from firstIdx.
func sendBatches(t *testing.T, url, prefix string, firstIdx int, records []dataset.Record, per int) int {
	t.Helper()
	idx := firstIdx
	for off := 0; off < len(records); off += per {
		end := off + per
		if end > len(records) {
			end = len(records)
		}
		ir := postBatch(t, url, fmt.Sprintf("%s-%d", prefix, idx), records[off:end])
		if ir.status != http.StatusOK || ir.Accepted != end-off {
			t.Fatalf("batch %s-%d: status %d accepted %d: %s", prefix, idx, ir.status, ir.Accepted, ir.Error)
		}
		idx++
	}
	return idx
}

// reportBytes fetches the full online report.
func reportBytes(t *testing.T, url string) []byte {
	t.Helper()
	status, got := getBody(t, url+"/v1/report?section=all")
	if status != http.StatusOK {
		t.Fatalf("/v1/report status %d", status)
	}
	return got
}

// TestDurableRestartResume: a graceful Drain checkpoints, the next boot
// is replay-free, and the resumed server keeps producing batch-identical
// reports as ingestion continues past the restart.
func TestDurableRestartResume(t *testing.T) {
	records, env := fixture(t)
	dir := t.TempDir()
	half := len(records) / 2

	srv := newServer(t, bounced.Config{Env: env, Store: openEngine(t, dir)})
	ts := httptest.NewServer(srv.Handler())
	next := sendBatches(t, ts.URL, "a", 0, records[:half], 200)
	ts.Close()
	if got := srv.Drain(); got != uint64(half) {
		t.Fatalf("drained %d records, want %d", got, half)
	}

	srv2 := newServer(t, bounced.Config{Env: env, Store: openEngine(t, dir)})
	defer srv2.Abort()
	ri := srv2.Recovery()
	if ri.CheckpointRecords != uint64(half) || ri.Replayed != 0 {
		t.Fatalf("after clean drain: recovery %+v, want checkpoint at %d and no replay", ri, half)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()

	if got, want := reportBytes(t, ts2.URL), batchReport(t, records[:half], env, bounce.AllSections); !bytes.Equal(got, want) {
		t.Fatalf("post-restart report diverges from batch (%d vs %d bytes)", len(got), len(want))
	}
	sendBatches(t, ts2.URL, "a", next, records[half:], 200)
	if got, want := reportBytes(t, ts2.URL), batchReport(t, records, env, bounce.AllSections); !bytes.Equal(got, want) {
		t.Fatalf("resumed report diverges from batch over the full corpus (%d vs %d bytes)", len(got), len(want))
	}
}

// TestCrashRecoveryDifferential is the in-process kill -9 drill: Abort
// discards the queue tail mid-stream, recovery rebuilds it from the
// checkpoint plus the WAL tail, a client retry of an already-acked
// batch still dedups, and once the stream finishes the report is
// byte-identical to a batch run — zero loss, zero double-count.
func TestCrashRecoveryDifferential(t *testing.T) {
	records, env := fixture(t)
	dir := t.TempDir()
	per := 200
	if len(records) < 6*per {
		per = len(records) / 6
	}
	cut1 := 2 * per // checkpoint pinned here
	cut := 4 * per  // crash point, at a batch boundary

	srv := newServer(t, bounced.Config{Env: env, Store: openEngine(t, dir)})
	ts := httptest.NewServer(srv.Handler())
	next := sendBatches(t, ts.URL, "b", 0, records[:cut1], per)
	// Pin a mid-stream checkpoint, then keep ingesting past it.
	resp, err := http.Post(ts.URL+"/v1/checkpoint", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/checkpoint status %d", resp.StatusCode)
	}
	lastSent := sendBatches(t, ts.URL, "b", next, records[cut1:cut], per)
	ts.Close()
	srv.Abort() // the crash: buffered queue records are dropped

	srv2 := newServer(t, bounced.Config{Env: env, Store: openEngine(t, dir)})
	defer srv2.Abort()
	ri := srv2.Recovery()
	if ri.CheckpointRecords == 0 {
		t.Fatalf("recovery found no checkpoint: %+v", ri)
	}
	if ri.CheckpointRecords+uint64(ri.Replayed) != uint64(cut) {
		t.Fatalf("recovery covers %d+%d records, want %d", ri.CheckpointRecords, ri.Replayed, cut)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()

	// A retry of the last pre-crash batch (its ack may have been lost in
	// flight) must dedup against the recovered window, not double-count.
	retry := postBatch(t, ts2.URL, fmt.Sprintf("b-%d", lastSent-1), records[cut-per:cut])
	if retry.status != http.StatusOK || !retry.Deduped || retry.Accepted != per {
		t.Fatalf("post-crash retry: status %d deduped %v accepted %d", retry.status, retry.Deduped, retry.Accepted)
	}

	sendBatches(t, ts2.URL, "b", lastSent, records[cut:], per)
	got := reportBytes(t, ts2.URL)
	want := batchReport(t, records, env, bounce.AllSections)
	if !bytes.Equal(got, want) {
		tmp := os.TempDir()
		os.WriteFile(filepath.Join(tmp, "bounced_crash_online.txt"), got, 0o644)
		os.WriteFile(filepath.Join(tmp, "bounced_crash_batch.txt"), want, 0o644)
		t.Fatalf("post-crash report diverges from batch (%d vs %d bytes); dumps in %s", len(got), len(want), tmp)
	}

	// The balance: the retried batch is the only dedup, nothing was shed
	// or rejected, so accepted + deduped covers everything presented.
	status, body := getBody(t, ts2.URL+"/v1/stats")
	if status != http.StatusOK {
		t.Fatalf("/v1/stats status %d", status)
	}
	var st struct {
		Deduped    uint64 `json:"records_deduped"`
		Durability *struct {
			WALSegments int    `json:"wal_segments"`
			NextIndex   uint64 `json:"next_index"`
		} `json:"durability"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Deduped != uint64(per) {
		t.Fatalf("deduped %d records, want %d", st.Deduped, per)
	}
	if st.Durability == nil || st.Durability.NextIndex != uint64(len(records)) {
		t.Fatalf("durability stats: %+v, want next_index %d", st.Durability, len(records))
	}
}

// TestCrashRecoveryTornTail: a crash mid-write leaves a torn trailing
// frame; recovery truncates it, drops the uncommitted batch, and the
// client's retry of that batch restores zero loss.
func TestCrashRecoveryTornTail(t *testing.T) {
	records, env := fixture(t)
	dir := t.TempDir()
	per := 150
	n := 4 * per

	srv := newServer(t, bounced.Config{Env: env, Store: openEngine(t, dir)})
	ts := httptest.NewServer(srv.Handler())
	sendBatches(t, ts.URL, "c", 0, records[:n], per)
	ts.Close()
	srv.Abort()

	// Tear the log: cut into the final frame (the last batch's commit
	// marker), the signature of a power cut mid-write.
	segs, err := filepath.Glob(filepath.Join(dir, "wal", "seg-*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no WAL segments: %v", err)
	}
	last := segs[len(segs)-1]
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	srv2 := newServer(t, bounced.Config{Env: env, Store: openEngine(t, dir)})
	defer srv2.Abort()
	ri := srv2.Recovery()
	if !ri.TornTruncated {
		t.Fatalf("recovery did not flag the torn tail: %+v", ri)
	}
	if ri.DroppedUncommitted != per {
		t.Fatalf("dropped %d uncommitted records, want the whole trailing batch (%d)", ri.DroppedUncommitted, per)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()

	// Retry every batch, as a client that never saw acks would: the
	// dropped one re-ingests, the surviving ones dedup.
	reingested := 0
	for i := 0; i < n/per; i++ {
		ir := postBatch(t, ts2.URL, fmt.Sprintf("c-%d", i), records[i*per:(i+1)*per])
		if ir.status != http.StatusOK {
			t.Fatalf("retry c-%d: status %d: %s", i, ir.status, ir.Error)
		}
		if !ir.Deduped {
			reingested++
		}
	}
	if reingested != 1 {
		t.Fatalf("%d batches re-ingested on retry, want exactly the dropped one", reingested)
	}
	got := reportBytes(t, ts2.URL)
	want := batchReport(t, records[:n], env, bounce.AllSections)
	if !bytes.Equal(got, want) {
		t.Fatalf("post-torn-tail report diverges from batch (%d vs %d bytes)", len(got), len(want))
	}
}

// TestDurableStreamPath: the non-batch (streamed NDJSON) ingest path is
// WAL-backed too — an Abort after a plain POST loses nothing.
func TestDurableStreamPath(t *testing.T) {
	records, env := fixture(t)
	dir := t.TempDir()
	n := 300

	srv := newServer(t, bounced.Config{Env: env, Store: openEngine(t, dir)})
	ts := httptest.NewServer(srv.Handler())
	ir := postRecords(t, ts.URL, encodeNDJSON(t, records[:n]))
	if ir.status != http.StatusOK || ir.Accepted != n {
		t.Fatalf("stream ingest: status %d accepted %d", ir.status, ir.Accepted)
	}
	ts.Close()
	srv.Abort()

	srv2 := newServer(t, bounced.Config{Env: env, Store: openEngine(t, dir)})
	defer srv2.Abort()
	if got := srv2.Recovery().Replayed; got != n {
		t.Fatalf("replayed %d records, want %d", got, n)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	got := reportBytes(t, ts2.URL)
	want := batchReport(t, records[:n], env, bounce.AllSections)
	if !bytes.Equal(got, want) {
		t.Fatalf("post-crash stream report diverges (%d vs %d bytes)", len(got), len(want))
	}
}
