// Package replication turns a durable bounced node into a small HA
// cluster: a primary streams its checkpoint plus incremental WAL tails
// to standbys that continuously recover-and-apply, a standby promotes
// when the primary dies (manual POST /v1/promote or heartbeat
// timeout), and a thin ingest router forwards client batches to
// whichever node is currently primary. The design goal is the same
// byte-identical bar every other bounced path clears: a report served
// by a promoted standby is indistinguishable from one served by a
// primary that never died, with zero acked records lost. See
// DESIGN.md §12.
//
// This file is the wire format. A WAL tail response
// (GET /v1/repl/wal?from=N) is
//
//	"BRTL" version  from u64          header
//	frames: [kind u8][payload len uvarint][crc32c u32 LE][payload]
//
// kind 1 opens a unit (payload: batch ID length-prefixed + record
// count), kind 2 is one record's NDJSON bytes — the exact bytes the
// primary's WAL holds, shipped without a decode/re-encode round trip —
// and kind 3 ends the response (payload: the primary's log end index
// and current epoch). A response without its end frame is torn (the
// primary died mid-stream) and the standby discards the unfinished
// unit, exactly like WAL crash replay discards an uncommitted batch.
package replication

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

const (
	streamMagic   = "BRTL"
	streamVersion = 1

	frameUnit byte = 1
	frameRec  byte = 2
	frameEnd  byte = 3

	maxWireFrame = 1 << 30
)

// The HTTP surface, shared by the server handlers, the standby's sync
// loop, and the router's probes.
const (
	PathWAL        = "/v1/repl/wal"
	PathCheckpoint = "/v1/repl/checkpoint"
	PathStatus     = "/v1/repl/status"
	PathPromote    = "/v1/promote"
	// PathRouterStatus is served by -role=router nodes; the coordinator
	// probes it to follow each shard's elected primary.
	PathRouterStatus = "/v1/router/status"
)

var wireCRC = crc32.MakeTable(crc32.Castagnoli)

func frameSum(kind byte, payload []byte) uint32 {
	sum := crc32.Update(0, wireCRC, []byte{kind})
	return crc32.Update(sum, wireCRC, payload)
}

// Unit is one atomic WAL unit on the wire: a committed client batch
// (ID + one payload per record) or a bare record (ID "").
type Unit struct {
	Start    uint64
	ID       string
	Payloads [][]byte
}

// End is the stream trailer: how far the primary's log reaches and
// which epoch it believes itself to be.
type End struct {
	LogEnd uint64
	Epoch  uint64
}

// TailWriter streams a WAL tail response.
type TailWriter struct {
	w       *bufio.Writer
	scratch []byte
}

// NewTailWriter writes the stream header for a tail starting at from.
func NewTailWriter(w io.Writer, from uint64) (*TailWriter, error) {
	tw := &TailWriter{w: bufio.NewWriterSize(w, 64<<10)}
	var hdr [13]byte
	copy(hdr[:], streamMagic)
	hdr[4] = streamVersion
	binary.LittleEndian.PutUint64(hdr[5:], from)
	if _, err := tw.w.Write(hdr[:]); err != nil {
		return nil, err
	}
	return tw, nil
}

func (tw *TailWriter) frame(kind byte, payload []byte) error {
	tw.scratch = tw.scratch[:0]
	tw.scratch = append(tw.scratch, kind)
	tw.scratch = binary.AppendUvarint(tw.scratch, uint64(len(payload)))
	tw.scratch = binary.LittleEndian.AppendUint32(tw.scratch, frameSum(kind, payload))
	if _, err := tw.w.Write(tw.scratch); err != nil {
		return err
	}
	_, err := tw.w.Write(payload)
	return err
}

// Unit writes one atomic unit: its header frame then a frame per
// record payload.
func (tw *TailWriter) Unit(start uint64, id string, payloads [][]byte) error {
	hdr := binary.AppendUvarint(nil, start)
	hdr = binary.AppendUvarint(hdr, uint64(len(id)))
	hdr = append(hdr, id...)
	hdr = binary.AppendUvarint(hdr, uint64(len(payloads)))
	if err := tw.frame(frameUnit, hdr); err != nil {
		return err
	}
	for _, p := range payloads {
		if err := tw.frame(frameRec, p); err != nil {
			return err
		}
	}
	return nil
}

// End writes the trailer and flushes. A stream without it is torn.
func (tw *TailWriter) End(logEnd, epoch uint64) error {
	var payload [16]byte
	binary.LittleEndian.PutUint64(payload[:8], logEnd)
	binary.LittleEndian.PutUint64(payload[8:], epoch)
	if err := tw.frame(frameEnd, payload[:]); err != nil {
		return err
	}
	return tw.w.Flush()
}

// ErrTornStream reports a tail response cut off before its end frame —
// the primary died mid-send. Whatever complete units arrived before
// the tear are already applied; the unfinished one is discarded.
var ErrTornStream = errors.New("replication: tail stream torn (no end frame)")

// TailReader parses a WAL tail response.
type TailReader struct {
	br   *bufio.Reader
	From uint64
	done bool
}

// NewTailReader validates the stream header.
func NewTailReader(r io.Reader) (*TailReader, error) {
	br := bufio.NewReaderSize(r, 64<<10)
	var hdr [13]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("replication: reading stream header: %w", err)
	}
	if string(hdr[:4]) != streamMagic {
		return nil, errors.New("replication: not a tail stream")
	}
	if hdr[4] != streamVersion {
		return nil, fmt.Errorf("replication: stream version %d, want %d", hdr[4], streamVersion)
	}
	return &TailReader{br: br, From: binary.LittleEndian.Uint64(hdr[5:])}, nil
}

func (tr *TailReader) readFrame(want byte) (byte, []byte, error) {
	kind, err := tr.br.ReadByte()
	if err != nil {
		return 0, nil, ErrTornStream
	}
	plen, err := binary.ReadUvarint(tr.br)
	if err != nil || plen > maxWireFrame {
		return 0, nil, ErrTornStream
	}
	var crcb [4]byte
	if _, err := io.ReadFull(tr.br, crcb[:]); err != nil {
		return 0, nil, ErrTornStream
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(tr.br, payload); err != nil {
		return 0, nil, ErrTornStream
	}
	if frameSum(kind, payload) != binary.LittleEndian.Uint32(crcb[:]) {
		return 0, nil, errors.New("replication: frame checksum mismatch")
	}
	if want != 0 && kind != want {
		return 0, nil, fmt.Errorf("replication: frame kind %d, want %d", kind, want)
	}
	return kind, payload, nil
}

// Next returns the next unit, or the trailer (unit nil, end set), or
// an error. After the trailer it keeps returning io.EOF.
func (tr *TailReader) Next() (*Unit, *End, error) {
	if tr.done {
		return nil, nil, io.EOF
	}
	kind, payload, err := tr.readFrame(0)
	if err != nil {
		return nil, nil, err
	}
	switch kind {
	case frameEnd:
		if len(payload) != 16 {
			return nil, nil, errors.New("replication: malformed end frame")
		}
		tr.done = true
		return nil, &End{
			LogEnd: binary.LittleEndian.Uint64(payload[:8]),
			Epoch:  binary.LittleEndian.Uint64(payload[8:]),
		}, nil
	case frameUnit:
		u, err := parseUnitHeader(payload)
		if err != nil {
			return nil, nil, err
		}
		for i := range u.Payloads {
			_, rec, err := tr.readFrame(frameRec)
			if err != nil {
				return nil, nil, err
			}
			u.Payloads[i] = rec
		}
		return u, nil, nil
	default:
		return nil, nil, fmt.Errorf("replication: unexpected frame kind %d", kind)
	}
}

func parseUnitHeader(b []byte) (*Unit, error) {
	malformed := errors.New("replication: malformed unit header")
	start, w := binary.Uvarint(b)
	if w <= 0 {
		return nil, malformed
	}
	b = b[w:]
	idLen, w := binary.Uvarint(b)
	if w <= 0 || uint64(len(b)-w) < idLen {
		return nil, malformed
	}
	id := string(b[w : w+int(idLen)])
	b = b[w+int(idLen):]
	count, w := binary.Uvarint(b)
	if w <= 0 || len(b) != w || count > 1<<24 {
		return nil, malformed
	}
	return &Unit{Start: start, ID: id, Payloads: make([][]byte, count)}, nil
}
