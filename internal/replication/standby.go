package replication

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/store"
)

// NodeStatus is what GET /v1/repl/status reports — the router's probe
// target and the failover script's assertion surface.
type NodeStatus struct {
	Role      string `json:"role"` // "primary" or "standby"
	Epoch     uint64 `json:"epoch"`
	NextIndex uint64 `json:"next_index"`
	Consumed  uint64 `json:"consumed"`
}

// Applier is the standby side of the server: replication hands it
// whole WAL units in primary order and it folds them exactly as local
// ingest would — same WAL-first ordering, same dedup registration —
// so a promoted standby's report is byte-identical to the primary's.
type Applier interface {
	// AppliedIndex is how far the local log reaches; the next poll asks
	// the primary for records from here.
	AppliedIndex() uint64
	// ApplyBatch folds one unit whose records span
	// [b.Start, b.Start+len(b.Payloads)). A unit straddling the applied
	// index (a mid-batch checkpoint boundary) is trimmed by the applier;
	// a wholly-applied unit is a no-op.
	ApplyBatch(u *Unit) error
	// ResetTo discards all local state and restores from a checkpoint
	// fetched from the primary — the full-resync path when the WAL tail
	// is pruned past our offset.
	ResetTo(cp *store.Checkpoint) error
	// Promote flips the node to primary under the given epoch. It
	// returns false when the node already promoted.
	Promote(epoch uint64, reason string) bool
}

// StandbyConfig configures a sync loop.
type StandbyConfig struct {
	// PrimaryURL is the primary's base URL, e.g. http://10.0.0.1:8425.
	PrimaryURL string
	// ID names this standby in the primary's registry (and in
	// X-Batch-Id-free progress reports). Required.
	ID string
	// PollWait is how long the primary may hold an empty long-poll
	// (default 2s). Lag stays ~one RTT regardless; this only bounds
	// idle connection turnover.
	PollWait time.Duration
	// RetryInterval paces reconnect attempts after a failed poll
	// (default 200ms).
	RetryInterval time.Duration
	// FailoverTimeout promotes this standby automatically when the
	// primary has been unreachable for this long. 0 means manual
	// promotion only.
	FailoverTimeout time.Duration
	// MaxBatch caps records per poll response (default 8192) so a
	// standby catching up streams in bounded chunks.
	MaxBatch int
	// Client overrides the HTTP client (tests). Its Timeout is ignored;
	// per-request deadlines are derived from PollWait.
	Client *http.Client
	// Logf receives sync-loop events; default log.Printf.
	Logf func(format string, args ...any)
}

// Standby drives one node's sync loop against a primary.
type Standby struct {
	cfg     StandbyConfig
	applier Applier
	client  *http.Client
	logf    func(string, ...any)

	mu       sync.Mutex
	promoted bool
	cancel   context.CancelFunc // in-flight poll, cut on Promote

	primaryNext  atomic.Uint64 // log end the last poll reported
	primaryEpoch atomic.Uint64
	lastOKNanos  atomic.Int64
	polls        atomic.Uint64
	unitsApplied atomic.Uint64
	resyncs      atomic.Uint64
	pollErrs     atomic.Uint64
}

// SyncStatus is the standby-side /v1/stats block.
type SyncStatus struct {
	Primary        string  `json:"primary"`
	ID             string  `json:"id"`
	PrimaryNext    uint64  `json:"primary_next_index"`
	PrimaryEpoch   uint64  `json:"primary_epoch"`
	LagRecords     uint64  `json:"lag_records"`
	Polls          uint64  `json:"polls"`
	PollErrors     uint64  `json:"poll_errors"`
	UnitsApplied   uint64  `json:"units_applied"`
	Resyncs        uint64  `json:"resyncs"`
	LastOKAgoSecs  float64 `json:"last_ok_ago_seconds"`
	FailoverAfterS float64 `json:"failover_after_seconds"`
}

// errResync asks the loop to fetch a full checkpoint: the primary
// pruned past our offset (410) or disowns our position (409).
var errResync = errors.New("replication: resync required")

// NewStandby wires a sync loop; call Run to start it.
func NewStandby(cfg StandbyConfig, applier Applier) (*Standby, error) {
	if cfg.PrimaryURL == "" {
		return nil, errors.New("replication: standby needs a primary URL")
	}
	if _, err := url.Parse(cfg.PrimaryURL); err != nil {
		return nil, fmt.Errorf("replication: primary URL: %w", err)
	}
	if cfg.ID == "" {
		return nil, errors.New("replication: standby needs an ID")
	}
	if cfg.PollWait <= 0 {
		cfg.PollWait = 2 * time.Second
	}
	if cfg.RetryInterval <= 0 {
		cfg.RetryInterval = 200 * time.Millisecond
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 8192
	}
	st := &Standby{cfg: cfg, applier: applier, client: cfg.Client, logf: cfg.Logf}
	if st.client == nil {
		st.client = &http.Client{}
	}
	if st.logf == nil {
		st.logf = log.Printf
	}
	st.lastOKNanos.Store(time.Now().UnixNano())
	return st, nil
}

// Run polls the primary until ctx ends or the standby promotes. A sync
// error starts the failover clock; FailoverTimeout of silence promotes
// (when enabled). Returns nil on promotion or ctx cancellation.
func (st *Standby) Run(ctx context.Context) error {
	for ctx.Err() == nil && !st.Promoted() {
		err := st.syncOnce(ctx)
		switch {
		case err == nil:
			st.lastOKNanos.Store(time.Now().UnixNano())
			continue // long-poll paces us; re-poll immediately
		case errors.Is(err, errResync):
			st.resyncs.Add(1)
			if rerr := st.resync(ctx); rerr != nil {
				st.pollErrs.Add(1)
				st.logf("replication: resync from %s failed: %v", st.cfg.PrimaryURL, rerr)
			} else {
				st.lastOKNanos.Store(time.Now().UnixNano())
				continue
			}
		case errors.Is(err, context.Canceled):
			continue // promotion or shutdown cut the poll
		default:
			st.pollErrs.Add(1)
			st.logf("replication: poll %s: %v", st.cfg.PrimaryURL, err)
		}
		silent := time.Since(time.Unix(0, st.lastOKNanos.Load()))
		if st.cfg.FailoverTimeout > 0 && silent >= st.cfg.FailoverTimeout {
			st.Promote(fmt.Sprintf("primary %s unreachable for %s", st.cfg.PrimaryURL, silent.Round(time.Millisecond)))
			return nil
		}
		select {
		case <-ctx.Done():
		case <-time.After(st.cfg.RetryInterval):
		}
	}
	return nil
}

// pollCtx derives a cancellable per-request context and parks its
// cancel where Promote can reach it, so a manual promotion never waits
// out a long poll.
func (st *Standby) pollCtx(ctx context.Context, budget time.Duration) (context.Context, func()) {
	rctx, cancel := context.WithTimeout(ctx, budget)
	st.mu.Lock()
	st.cancel = cancel
	st.mu.Unlock()
	return rctx, func() {
		st.mu.Lock()
		st.cancel = nil
		st.mu.Unlock()
		cancel()
	}
}

func (st *Standby) syncOnce(ctx context.Context) error {
	from := st.applier.AppliedIndex()
	u := fmt.Sprintf("%s%s?from=%d&id=%s&applied=%d&wait=%s&max=%d",
		st.cfg.PrimaryURL, PathWAL, from, url.QueryEscape(st.cfg.ID), from,
		st.cfg.PollWait, st.cfg.MaxBatch)
	// The budget covers a held long-poll plus a full MaxBatch transfer.
	rctx, done := st.pollCtx(ctx, st.cfg.PollWait+30*time.Second)
	defer done()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	resp, err := st.client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
	}()
	st.polls.Add(1)
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone, http.StatusConflict:
		return errResync
	default:
		return fmt.Errorf("primary returned %s", resp.Status)
	}
	tr, err := NewTailReader(resp.Body)
	if err != nil {
		return err
	}
	if tr.From != from {
		return fmt.Errorf("primary streamed from %d, asked %d", tr.From, from)
	}
	for {
		unit, end, err := tr.Next()
		if err != nil {
			if errors.Is(err, ErrTornStream) {
				// The primary died mid-send; complete units already applied
				// stand, the rest re-arrives from whoever answers next.
				return fmt.Errorf("%w (applied %d complete units)", err, st.unitsApplied.Load())
			}
			return err
		}
		if end != nil {
			st.primaryNext.Store(end.LogEnd)
			st.primaryEpoch.Store(end.Epoch)
			return nil
		}
		if err := st.applier.ApplyBatch(unit); err != nil {
			return fmt.Errorf("applying unit at %d: %w", unit.Start, err)
		}
		st.unitsApplied.Add(1)
	}
}

// resync fetches the primary's current checkpoint and restores onto
// it — the catch-up path when the incremental tail is gone.
func (st *Standby) resync(ctx context.Context) error {
	rctx, done := st.pollCtx(ctx, 2*time.Minute)
	defer done()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, st.cfg.PrimaryURL+PathCheckpoint, nil)
	if err != nil {
		return err
	}
	resp, err := st.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("primary returned %s", resp.Status)
	}
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	cp, err := store.DecodeCheckpoint(blob)
	if err != nil {
		return err
	}
	if err := st.applier.ResetTo(cp); err != nil {
		return err
	}
	st.logf("replication: resynced onto checkpoint at %d records from %s", cp.Records, st.cfg.PrimaryURL)
	return nil
}

// Promote flips the node to primary at epoch primaryEpoch+1, cutting
// any in-flight poll. Idempotent; reports whether this call won.
func (st *Standby) Promote(reason string) bool {
	st.mu.Lock()
	if st.promoted {
		st.mu.Unlock()
		return false
	}
	st.promoted = true
	cancel := st.cancel
	st.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	return st.applier.Promote(st.primaryEpoch.Load()+1, reason)
}

// Promoted reports whether the sync loop has ended in promotion.
func (st *Standby) Promoted() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.promoted
}

// Status snapshots the sync loop for /v1/stats.
func (st *Standby) Status() SyncStatus {
	applied := st.applier.AppliedIndex()
	next := st.primaryNext.Load()
	lag := uint64(0)
	if next > applied {
		lag = next - applied
	}
	return SyncStatus{
		Primary:        st.cfg.PrimaryURL,
		ID:             st.cfg.ID,
		PrimaryNext:    next,
		PrimaryEpoch:   st.primaryEpoch.Load(),
		LagRecords:     lag,
		Polls:          st.polls.Load(),
		PollErrors:     st.pollErrs.Load(),
		UnitsApplied:   st.unitsApplied.Load(),
		Resyncs:        st.resyncs.Load(),
		LastOKAgoSecs:  time.Since(time.Unix(0, st.lastOKNanos.Load())).Seconds(),
		FailoverAfterS: st.cfg.FailoverTimeout.Seconds(),
	}
}
