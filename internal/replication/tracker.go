package replication

import (
	"sort"
	"sync"
	"time"
)

// Tracker is the primary's view of its replica set. Every standby WAL
// poll reports how far that standby has applied; every local append
// advances the log end. Two kinds of waiters park here:
//
//   - standby long-polls (WaitNext): "wake me when the log grows past
//     my offset" — this is what keeps replication lag at ~one RTT
//     instead of one poll interval;
//   - semi-sync acks (WaitApplied): "wake me when n standbys have
//     applied through index i" — this is what makes "zero acked
//     records lost" a guarantee instead of a bet. An ingest ack only
//     leaves the primary after its batch is on enough standbys.
//
// Waiters use a broadcast channel swapped on every advance; both waits
// are O(wakeups), not O(waiters × polls).
type Tracker struct {
	mu       sync.Mutex
	next     uint64 // log end: index the next append assigns
	standbys map[string]*standbyState
	wake     chan struct{}
}

type standbyState struct {
	applied  uint64
	lastSeen time.Time
}

// StandbyInfo is one standby's registry entry for /v1/stats.
type StandbyInfo struct {
	ID         string  `json:"id"`
	Applied    uint64  `json:"applied"`
	LagRecords uint64  `json:"lag_records"`
	AgoSeconds float64 `json:"last_seen_ago_seconds"`
}

// staleAfter drops a standby from the registry when it has not polled
// for this long — a promoted or dead standby must stop counting toward
// semi-sync acks, or every ingest would block until timeout.
const staleAfter = 10 * time.Second

// NewTracker returns a tracker with the log end at next.
func NewTracker(next uint64) *Tracker {
	return &Tracker{next: next, standbys: map[string]*standbyState{}, wake: make(chan struct{})}
}

func (t *Tracker) wakeLocked() {
	close(t.wake)
	t.wake = make(chan struct{})
}

// Advance moves the log end to next (monotone) and wakes waiters.
func (t *Tracker) Advance(next uint64) {
	t.mu.Lock()
	if next > t.next {
		t.next = next
		t.wakeLocked()
	}
	t.mu.Unlock()
}

// Observe records a standby's progress report and wakes ack waiters.
func (t *Tracker) Observe(id string, applied uint64) {
	if id == "" {
		return
	}
	t.mu.Lock()
	st := t.standbys[id]
	if st == nil {
		st = &standbyState{}
		t.standbys[id] = st
	}
	if applied > st.applied {
		st.applied = applied
	}
	st.lastSeen = time.Now()
	t.wakeLocked()
	t.mu.Unlock()
}

// Forget drops a standby from the registry (it promoted, or an
// operator detached it).
func (t *Tracker) Forget(id string) {
	t.mu.Lock()
	delete(t.standbys, id)
	t.wakeLocked()
	t.mu.Unlock()
}

// Reset forces the log end to next, downward included — the standby
// full-resync path, where the local log is rebuilt from a checkpoint
// whose boundary may sit below a diverged local tail.
func (t *Tracker) Reset(next uint64) {
	t.mu.Lock()
	t.next = next
	t.wakeLocked()
	t.mu.Unlock()
}

// Next reports the current log end.
func (t *Tracker) Next() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.next
}

// WaitNext blocks until the log end exceeds from (returning the new
// end) or the timeout lapses (returning the current end). This is the
// standby long-poll.
func (t *Tracker) WaitNext(from uint64, timeout time.Duration) uint64 {
	deadline := time.Now().Add(timeout)
	for {
		t.mu.Lock()
		next, wake := t.next, t.wake
		t.mu.Unlock()
		if next > from {
			return next
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return next
		}
		tm := time.NewTimer(remain)
		select {
		case <-wake:
			tm.Stop()
		case <-tm.C:
		}
	}
}

// appliedByLocked returns how many live standbys have applied through
// index, pruning stale entries on the way.
func (t *Tracker) appliedByLocked(index uint64, now time.Time) int {
	n := 0
	for id, st := range t.standbys {
		if now.Sub(st.lastSeen) > staleAfter {
			delete(t.standbys, id)
			continue
		}
		if st.applied >= index {
			n++
		}
	}
	return n
}

// WaitApplied blocks until at least n standbys report applied >= index
// or the timeout lapses. It returns whether the quorum was reached —
// the semi-sync ack gate.
func (t *Tracker) WaitApplied(index uint64, n int, timeout time.Duration) bool {
	if n <= 0 {
		return true
	}
	deadline := time.Now().Add(timeout)
	for {
		now := time.Now()
		t.mu.Lock()
		got := t.appliedByLocked(index, now)
		wake := t.wake
		t.mu.Unlock()
		if got >= n {
			return true
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return false
		}
		tm := time.NewTimer(remain)
		select {
		case <-wake:
			tm.Stop()
		case <-tm.C:
		}
	}
}

// Snapshot lists the live standbys (stale ones pruned) sorted by ID,
// plus the max lag in records — the /v1/stats and /metrics view.
func (t *Tracker) Snapshot() (infos []StandbyInfo, maxLag uint64) {
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	for id, st := range t.standbys {
		if now.Sub(st.lastSeen) > staleAfter {
			delete(t.standbys, id)
			continue
		}
		lag := uint64(0)
		if t.next > st.applied {
			lag = t.next - st.applied
		}
		if lag > maxLag {
			maxLag = lag
		}
		infos = append(infos, StandbyInfo{
			ID:         id,
			Applied:    st.applied,
			LagRecords: lag,
			AgoSeconds: now.Sub(st.lastSeen).Seconds(),
		})
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].ID < infos[j].ID })
	return infos, maxLag
}
