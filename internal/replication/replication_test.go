package replication

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/store"
)

func TestWireRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tw, err := NewTailWriter(&buf, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Unit(7, "batch-a", [][]byte{[]byte(`{"a":1}`), []byte(`{"a":2}`)}); err != nil {
		t.Fatal(err)
	}
	if err := tw.Unit(9, "", [][]byte{[]byte(`{"b":1}`)}); err != nil {
		t.Fatal(err)
	}
	if err := tw.End(10, 3); err != nil {
		t.Fatal(err)
	}

	tr, err := NewTailReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if tr.From != 7 {
		t.Fatalf("From = %d", tr.From)
	}
	u1, end, err := tr.Next()
	if err != nil || end != nil || u1.ID != "batch-a" || u1.Start != 7 || len(u1.Payloads) != 2 {
		t.Fatalf("unit 1 = %+v, %+v, %v", u1, end, err)
	}
	if string(u1.Payloads[1]) != `{"a":2}` {
		t.Fatalf("payload = %q", u1.Payloads[1])
	}
	u2, _, err := tr.Next()
	if err != nil || u2.ID != "" || u2.Start != 9 {
		t.Fatalf("unit 2 = %+v, %v", u2, err)
	}
	_, end, err = tr.Next()
	if err != nil || end == nil || end.LogEnd != 10 || end.Epoch != 3 {
		t.Fatalf("end = %+v, %v", end, err)
	}
	if _, _, err := tr.Next(); err != io.EOF {
		t.Fatalf("after end: %v", err)
	}
}

func TestWireTornAndCorrupt(t *testing.T) {
	var buf bytes.Buffer
	tw, _ := NewTailWriter(&buf, 0)
	tw.Unit(0, "b", [][]byte{[]byte(`{"x":1}`)})
	tw.End(1, 1)
	full := buf.Bytes()

	// Every truncation point before the end frame must surface as a torn
	// stream, never as silently-missing data.
	for cut := 13; cut < len(full)-1; cut += 3 {
		tr, err := NewTailReader(bytes.NewReader(full[:cut]))
		if err != nil {
			continue // header itself cut
		}
		sawEnd := false
		for {
			_, end, err := tr.Next()
			if err != nil {
				if !errors.Is(err, ErrTornStream) {
					t.Fatalf("cut %d: %v", cut, err)
				}
				break
			}
			if end != nil {
				sawEnd = true
				break
			}
		}
		if sawEnd {
			t.Fatalf("cut %d still produced an end frame", cut)
		}
	}

	// A flipped payload byte must fail the frame checksum.
	flipped := append([]byte(nil), full...)
	flipped[len(flipped)-20] ^= 0xff
	tr, err := NewTailReader(bytes.NewReader(flipped))
	if err == nil {
		for {
			_, _, err = tr.Next()
			if err != nil {
				break
			}
		}
	}
	if err == nil {
		t.Fatal("corrupt stream fully parsed")
	}
}

func TestTrackerWaits(t *testing.T) {
	tr := NewTracker(10)
	if got := tr.WaitNext(10, 20*time.Millisecond); got != 10 {
		t.Fatalf("timeout WaitNext = %d", got)
	}
	go func() {
		time.Sleep(10 * time.Millisecond)
		tr.Advance(15)
	}()
	if got := tr.WaitNext(10, 2*time.Second); got != 15 {
		t.Fatalf("WaitNext = %d", got)
	}

	// Semi-sync: no standbys → quorum unreachable.
	if tr.WaitApplied(15, 1, 20*time.Millisecond) {
		t.Fatal("quorum reached with no standbys")
	}
	go func() {
		time.Sleep(10 * time.Millisecond)
		tr.Observe("s1", 15)
	}()
	if !tr.WaitApplied(15, 1, 2*time.Second) {
		t.Fatal("quorum not reached after observe")
	}
	// Lag accounting.
	tr.Advance(20)
	infos, lag := tr.Snapshot()
	if len(infos) != 1 || infos[0].ID != "s1" || infos[0].Applied != 15 || lag != 5 {
		t.Fatalf("snapshot = %+v lag %d", infos, lag)
	}
	tr.Forget("s1")
	if infos, _ := tr.Snapshot(); len(infos) != 0 {
		t.Fatalf("after forget: %+v", infos)
	}
}

// fakeApplier is an in-memory Applier recording everything.
type fakeApplier struct {
	mu       sync.Mutex
	applied  uint64
	units    []string
	resets   []uint64
	promoted bool
	epoch    uint64
}

func (a *fakeApplier) AppliedIndex() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.applied
}

func (a *fakeApplier) ApplyBatch(u *Unit) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	end := u.Start + uint64(len(u.Payloads))
	if end <= a.applied {
		return nil
	}
	if u.Start > a.applied {
		return fmt.Errorf("gap: applied %d, unit starts %d", a.applied, u.Start)
	}
	a.units = append(a.units, fmt.Sprintf("%s@%d+%d", u.ID, u.Start, len(u.Payloads)))
	a.applied = end
	return nil
}

func (a *fakeApplier) ResetTo(cp *store.Checkpoint) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.resets = append(a.resets, cp.Records)
	a.applied = cp.Records
	return nil
}

func (a *fakeApplier) Promote(epoch uint64, reason string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.promoted {
		return false
	}
	a.promoted, a.epoch = true, epoch
	return true
}

// fakePrimary serves a scripted WAL over the replication protocol.
type fakePrimary struct {
	mu     sync.Mutex
	units  []Unit // ascending, gapless
	next   uint64
	epoch  uint64
	floor  uint64 // indexes below this are pruned (410)
	cp     *store.Checkpoint
	polls  int
	closed bool
}

func (p *fakePrimary) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PathWAL, func(w http.ResponseWriter, r *http.Request) {
		from, _ := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
		p.mu.Lock()
		defer p.mu.Unlock()
		p.polls++
		if from < p.floor {
			w.WriteHeader(http.StatusGone)
			return
		}
		if from > p.next {
			w.WriteHeader(http.StatusConflict)
			return
		}
		tw, err := NewTailWriter(w, from)
		if err != nil {
			return
		}
		for i := range p.units {
			u := &p.units[i]
			if u.Start+uint64(len(u.Payloads)) <= from {
				continue
			}
			tw.Unit(u.Start, u.ID, u.Payloads)
		}
		tw.End(p.next, p.epoch)
	})
	mux.HandleFunc(PathCheckpoint, func(w http.ResponseWriter, r *http.Request) {
		p.mu.Lock()
		defer p.mu.Unlock()
		w.Write(store.EncodeCheckpoint(p.cp))
	})
	return mux
}

func (p *fakePrimary) add(id string, n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	payloads := make([][]byte, n)
	for i := range payloads {
		payloads[i] = []byte(fmt.Sprintf(`{"i":%d}`, p.next+uint64(i)))
	}
	p.units = append(p.units, Unit{Start: p.next, ID: id, Payloads: payloads})
	p.next += uint64(n)
}

func TestStandbySyncAndResync(t *testing.T) {
	p := &fakePrimary{epoch: 1}
	p.add("b1", 3)
	p.add("", 1)
	srv := httptest.NewServer(p.handler())
	defer srv.Close()

	app := &fakeApplier{}
	st, err := NewStandby(StandbyConfig{
		PrimaryURL: srv.URL, ID: "s1",
		PollWait: 50 * time.Millisecond, RetryInterval: 10 * time.Millisecond,
		Logf: t.Logf,
	}, app)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { st.Run(ctx); close(done) }()

	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timeout waiting for %s", what)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitFor("initial units", func() bool { return app.AppliedIndex() == 4 })

	// Incremental growth arrives without resync.
	p.add("b2", 2)
	waitFor("incremental unit", func() bool { return app.AppliedIndex() == 6 })
	app.mu.Lock()
	units := append([]string(nil), app.units...)
	app.mu.Unlock()
	if len(units) != 3 || units[0] != "b1@0+3" || units[2] != "b2@4+2" {
		t.Fatalf("units = %v", units)
	}

	// Prune past the standby's offset: next poll 410s, the standby
	// fetches the checkpoint and continues from it.
	p.mu.Lock()
	p.cp = &store.Checkpoint{Records: 20, Sections: map[string][]byte{"s": []byte("x")}}
	p.floor, p.next = 20, 20
	p.units = nil
	p.mu.Unlock()
	p.add("b3", 2)
	waitFor("resync", func() bool { return app.AppliedIndex() == 22 })
	app.mu.Lock()
	resets := append([]uint64(nil), app.resets...)
	app.mu.Unlock()
	if len(resets) != 1 || resets[0] != 20 {
		t.Fatalf("resets = %v", resets)
	}
	if st.Status().Resyncs != 1 {
		t.Fatalf("status = %+v", st.Status())
	}

	// Manual promotion ends the loop and bumps the epoch past the
	// primary's.
	if !st.Promote("operator") {
		t.Fatal("promote refused")
	}
	if st.Promote("again") {
		t.Fatal("second promote won")
	}
	<-done
	if !app.promoted || app.epoch != 2 {
		t.Fatalf("applier promoted=%v epoch=%d", app.promoted, app.epoch)
	}
}

func TestStandbyAutoFailover(t *testing.T) {
	p := &fakePrimary{epoch: 4}
	p.add("b1", 2)
	srv := httptest.NewServer(p.handler())

	app := &fakeApplier{}
	st, err := NewStandby(StandbyConfig{
		PrimaryURL: srv.URL, ID: "s1",
		PollWait: 20 * time.Millisecond, RetryInterval: 10 * time.Millisecond,
		FailoverTimeout: 150 * time.Millisecond,
		Logf:            t.Logf,
	}, app)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { st.Run(context.Background()); close(done) }()
	deadline := time.Now().Add(5 * time.Second)
	for app.AppliedIndex() != 2 {
		if time.Now().After(deadline) {
			t.Fatal("standby never caught up")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Kill the primary; silence must promote within the timeout.
	srv.Close()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("auto-failover never fired")
	}
	if !app.promoted || app.epoch != 5 {
		t.Fatalf("promoted=%v epoch=%d (want epoch primary+1)", app.promoted, app.epoch)
	}
	// No acked data lost: everything the primary streamed is applied.
	if app.AppliedIndex() != 2 {
		t.Fatalf("applied = %d", app.AppliedIndex())
	}
}

// staticNode serves a fixed NodeStatus — a router probe target.
func staticNode(t *testing.T, role string, epoch uint64) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc(PathStatus, func(w http.ResponseWriter, _ *http.Request) {
		json.NewEncoder(w).Encode(NodeStatus{Role: role, Epoch: epoch, NextIndex: 1})
	})
	mux.HandleFunc("/v1/records", func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		w.Header().Set("X-Node-Epoch", strconv.FormatUint(epoch, 10))
		fmt.Fprintf(w, `{"echo":%d}`, len(body))
	})
	return httptest.NewServer(mux)
}

func TestRouterElectionAndForward(t *testing.T) {
	primary := staticNode(t, "primary", 1)
	defer primary.Close()
	standby := staticNode(t, "standby", 1)
	defer standby.Close()

	r, err := NewRouter(RouterConfig{
		Peers:         []string{standby.URL, primary.URL},
		ProbeInterval: 20 * time.Millisecond,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go r.Run(ctx)
	deadline := time.Now().Add(5 * time.Second)
	for r.Primary() != primary.URL {
		if time.Now().After(deadline) {
			t.Fatalf("router never found the primary (got %q)", r.Primary())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Forwarding carries the body through and returns the node's reply.
	front := httptest.NewServer(r.Handler())
	defer front.Close()
	resp, err := http.Post(front.URL+"/v1/records", "application/x-ndjson", bytes.NewReader(make([]byte, 42)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || string(body) != `{"echo":42}` {
		t.Fatalf("forward = %d %q", resp.StatusCode, body)
	}

	// Kill the primary: forwards turn into retryable errors, and once a
	// higher-epoch primary appears the router switches to it.
	primary.Close()
	deadline = time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Post(front.URL+"/v1/records", "text/plain", bytes.NewReader(nil))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusBadGateway || resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("dead primary still forwarding")
		}
		time.Sleep(5 * time.Millisecond)
	}

	promoted := staticNode(t, "primary", 2)
	defer promoted.Close()
	r2, err := NewRouter(RouterConfig{
		Peers:         []string{standby.URL, promoted.URL},
		ProbeInterval: 20 * time.Millisecond,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	go r2.Run(ctx)
	deadline = time.Now().Add(5 * time.Second)
	for r2.Primary() != promoted.URL {
		if time.Now().After(deadline) {
			t.Fatal("router never adopted the promoted standby")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRouterPrefersHighestEpoch: a zombie old primary next to the
// promoted standby must lose the election.
func TestRouterPrefersHighestEpoch(t *testing.T) {
	zombie := staticNode(t, "primary", 1)
	defer zombie.Close()
	promoted := staticNode(t, "primary", 2)
	defer promoted.Close()

	r, err := NewRouter(RouterConfig{
		Peers: []string{zombie.URL, promoted.URL},
		Logf:  t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.sweep()
	if r.Primary() != promoted.URL {
		t.Fatalf("router picked %q, want the epoch-2 node", r.Primary())
	}
	// Same answer regardless of peer order.
	r2, _ := NewRouter(RouterConfig{Peers: []string{promoted.URL, zombie.URL}, Logf: t.Logf})
	r2.sweep()
	if r2.Primary() != promoted.URL {
		t.Fatalf("order-flipped router picked %q", r2.Primary())
	}
}
