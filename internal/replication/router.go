package replication

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Router is the thin ingest front door for a replica set: it probes
// every peer's /v1/repl/status, remembers which one is primary, and
// forwards client requests there verbatim. Clients keep talking to one
// address across a failover; during the promotion window they see
// retryable 502/503s, which the idempotent X-Batch-Id protocol turns
// into exactly-once delivery.
//
// Split-brain is settled by epoch: promotion bumps the epoch (persisted
// in the promoted node's checkpoint), so when a zombie old primary
// reappears next to the promoted standby, the router prefers the
// highest epoch and the zombie never receives another batch.
type Router struct {
	cfg    RouterConfig
	logf   func(string, ...any)
	fwd    *http.Client // forwarding: no global timeout (reports can stream)
	probeC *http.Client

	mu           sync.Mutex
	primary      string
	primaryEpoch uint64
	peerStatus   map[string]*PeerStatus
	nudge        chan struct{}

	forwards    atomic.Uint64
	forwardErrs atomic.Uint64
	noPrimary   atomic.Uint64
	failovers   atomic.Uint64
	probes      atomic.Uint64
}

// RouterConfig configures a Router.
type RouterConfig struct {
	// Peers are the replica set's base URLs.
	Peers []string
	// ProbeInterval paces the health sweep (default 250ms).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one status probe (default 500ms).
	ProbeTimeout time.Duration
	// Client overrides the forwarding client (tests).
	Client *http.Client
	// Logf receives probe/failover events; default log.Printf.
	Logf func(format string, args ...any)
}

// PeerStatus is one probed peer in /v1/router/status.
type PeerStatus struct {
	URL       string  `json:"url"`
	Role      string  `json:"role,omitempty"`
	Epoch     uint64  `json:"epoch,omitempty"`
	NextIndex uint64  `json:"next_index,omitempty"`
	Error     string  `json:"error,omitempty"`
	AgoSecs   float64 `json:"probed_ago_seconds"`
	probedAt  time.Time
}

// RouterStatus is the /v1/router/status body.
type RouterStatus struct {
	Primary      string        `json:"primary"`
	PrimaryEpoch uint64        `json:"primary_epoch"`
	Peers        []*PeerStatus `json:"peers"`
	Forwards     uint64        `json:"forwards"`
	ForwardErrs  uint64        `json:"forward_errors"`
	NoPrimary    uint64        `json:"no_primary_rejects"`
	Failovers    uint64        `json:"failovers"`
	Probes       uint64        `json:"probe_sweeps"`
}

// NewRouter builds a router over the peer set; call Run to start the
// probe loop.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if len(cfg.Peers) == 0 {
		return nil, errors.New("replication: router needs peers")
	}
	// Normalize into a private copy: the caller's slice stays untouched.
	peers := make([]string, len(cfg.Peers))
	for i, p := range cfg.Peers {
		peers[i] = strings.TrimRight(p, "/")
	}
	cfg.Peers = peers
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 250 * time.Millisecond
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 500 * time.Millisecond
	}
	r := &Router{
		cfg:        cfg,
		logf:       cfg.Logf,
		fwd:        cfg.Client,
		probeC:     &http.Client{Timeout: cfg.ProbeTimeout},
		peerStatus: map[string]*PeerStatus{},
		nudge:      make(chan struct{}, 1),
	}
	if r.fwd == nil {
		r.fwd = &http.Client{}
	}
	if r.logf == nil {
		r.logf = log.Printf
	}
	return r, nil
}

// Run sweeps the peer set until ctx ends. The first sweep completes
// before Run starts waiting, so a freshly-started router routes as soon
// as any peer answers.
func (r *Router) Run(ctx interface{ Done() <-chan struct{} }) {
	r.sweep()
	tick := time.NewTicker(r.cfg.ProbeInterval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		case <-r.nudge:
		}
		r.sweep()
	}
}

// kick requests an immediate sweep (a forward just failed).
func (r *Router) kick() {
	select {
	case r.nudge <- struct{}{}:
	default:
	}
}

// sweep probes every peer concurrently and re-elects the forward
// target: the primary-role peer with the highest epoch.
func (r *Router) sweep() {
	r.probes.Add(1)
	type probe struct {
		url string
		st  NodeStatus
		err error
	}
	results := make([]probe, len(r.cfg.Peers))
	var wg sync.WaitGroup
	for i, peer := range r.cfg.Peers {
		wg.Add(1)
		go func(i int, peer string) {
			defer wg.Done()
			results[i] = probe{url: peer}
			resp, err := r.probeC.Get(peer + PathStatus)
			if err != nil {
				results[i].err = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				results[i].err = fmt.Errorf("status %s", resp.Status)
				return
			}
			results[i].err = json.NewDecoder(resp.Body).Decode(&results[i].st)
		}(i, peer)
	}
	wg.Wait()

	now := time.Now()
	best, bestEpoch := "", uint64(0)
	r.mu.Lock()
	for _, p := range results {
		ps := &PeerStatus{URL: p.url, probedAt: now}
		if p.err != nil {
			ps.Error = p.err.Error()
		} else {
			ps.Role, ps.Epoch, ps.NextIndex = p.st.Role, p.st.Epoch, p.st.NextIndex
			if p.st.Role == "primary" && p.st.Epoch >= bestEpoch {
				// Highest epoch wins; ties keep peer-list order stable
				// because >= only replaces on a strictly later peer when
				// its epoch is at least as new. A zombie pre-failover
				// primary always has a lower epoch and loses.
				if p.st.Epoch > bestEpoch || best == "" {
					best, bestEpoch = p.url, p.st.Epoch
				}
			}
		}
		r.peerStatus[p.url] = ps
	}
	prev := r.primary
	if best != "" {
		r.primary, r.primaryEpoch = best, bestEpoch
	} else if prev != "" {
		if ps := r.peerStatus[prev]; ps == nil || ps.Error != "" || ps.Role != "primary" {
			// The previous primary is gone — or answered the probe but no
			// longer claims the primary role (demoted after rejoining
			// post-failover) — and nothing has been elected yet: drop it
			// so forwards fail fast as 503s instead of hanging on a dead
			// socket or bouncing off a standby's write refusal.
			r.primary = ""
		}
	}
	if r.primary != prev {
		if prev != "" && r.primary != "" {
			r.failovers.Add(1)
		}
		r.logf("router: primary %q -> %q (epoch %d)", prev, r.primary, r.primaryEpoch)
	}
	r.mu.Unlock()
}

// Primary returns the current forward target ("" when none).
func (r *Router) Primary() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.primary
}

// Handler serves the router's own status plus the forwarding fallback.
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc(PathRouterStatus, r.handleStatus)
	mux.HandleFunc("/", r.forward)
	return mux
}

func (r *Router) handleStatus(w http.ResponseWriter, _ *http.Request) {
	now := time.Now()
	r.mu.Lock()
	st := RouterStatus{
		Primary:      r.primary,
		PrimaryEpoch: r.primaryEpoch,
		Forwards:     r.forwards.Load(),
		ForwardErrs:  r.forwardErrs.Load(),
		NoPrimary:    r.noPrimary.Load(),
		Failovers:    r.failovers.Load(),
		Probes:       r.probes.Load(),
	}
	for _, peer := range r.cfg.Peers {
		if ps := r.peerStatus[peer]; ps != nil {
			cp := *ps
			cp.AgoSecs = now.Sub(ps.probedAt).Seconds()
			st.Peers = append(st.Peers, &cp)
		}
	}
	r.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}

// forward proxies one request to the current primary, streaming the
// body through. One attempt only: a failure comes back as a retryable
// 502/503 and the idempotent client protocol carries the retry — the
// router never buffers-and-replays a batch itself, so it can never
// double-send one.
func (r *Router) forward(w http.ResponseWriter, req *http.Request) {
	primary := r.Primary()
	if primary == "" {
		r.noPrimary.Add(1)
		r.kick()
		w.Header().Set("Retry-After", "1")
		httpJSONError(w, http.StatusServiceUnavailable, "no primary in the replica set")
		return
	}
	out, err := http.NewRequestWithContext(req.Context(), req.Method, primary+req.URL.RequestURI(), req.Body)
	if err != nil {
		httpJSONError(w, http.StatusBadGateway, err.Error())
		return
	}
	out.Header = req.Header.Clone()
	stripHopByHop(out.Header)
	out.ContentLength = req.ContentLength
	resp, err := r.fwd.Do(out)
	if err != nil {
		r.forwardErrs.Add(1)
		r.kick()
		w.Header().Set("Retry-After", "1")
		httpJSONError(w, http.StatusBadGateway, fmt.Sprintf("forwarding to %s: %v", primary, err))
		return
	}
	defer resp.Body.Close()
	r.forwards.Add(1)
	stripHopByHop(resp.Header)
	hdr := w.Header()
	for k, vs := range resp.Header {
		hdr[k] = vs
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// hopByHopHeaders are the connection-scoped headers RFC 9110 §7.6.1
// forbids an intermediary from forwarding.
var hopByHopHeaders = []string{
	"Connection",
	"Keep-Alive",
	"Proxy-Connection",
	"Te",
	"Trailer",
	"Transfer-Encoding",
	"Upgrade",
}

// stripHopByHop removes the hop-by-hop header set plus every header the
// Connection header names: those belong to the connection the message
// arrived on and must not be relayed to the next hop. Used on both the
// outbound request and the relayed response.
func stripHopByHop(h http.Header) {
	for _, v := range h.Values("Connection") {
		for _, tok := range strings.Split(v, ",") {
			if tok = strings.TrimSpace(tok); tok != "" {
				h.Del(tok)
			}
		}
	}
	for _, k := range hopByHopHeaders {
		h.Del(k)
	}
}

func httpJSONError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
