package replication

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestStripHopByHop covers the full RFC 9110 §7.6.1 set plus headers
// nominated by the Connection header.
func TestStripHopByHop(t *testing.T) {
	cases := []struct {
		name   string
		in     http.Header
		gone   []string
		stayed map[string]string
	}{
		{
			name: "fixed set",
			in: http.Header{
				"Connection":        {"close"},
				"Keep-Alive":        {"timeout=5"},
				"Proxy-Connection":  {"keep-alive"},
				"Te":                {"trailers"},
				"Trailer":           {"X-T"},
				"Transfer-Encoding": {"chunked"},
				"Upgrade":           {"websocket"},
				"Content-Type":      {"application/x-ndjson"},
				"X-Batch-Id":        {"b-1"},
			},
			gone: []string{"Connection", "Keep-Alive", "Proxy-Connection",
				"Te", "Trailer", "Transfer-Encoding", "Upgrade"},
			stayed: map[string]string{
				"Content-Type": "application/x-ndjson",
				"X-Batch-Id":   "b-1",
			},
		},
		{
			name: "connection-nominated tokens",
			in: http.Header{
				"Connection": {"x-hop, x-other", "x-more"},
				"X-Hop":      {"1"},
				"X-Other":    {"2"},
				"X-More":     {"3"},
				"X-Keep":     {"4"},
			},
			gone:   []string{"Connection", "X-Hop", "X-Other", "X-More"},
			stayed: map[string]string{"X-Keep": "4"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			stripHopByHop(tc.in)
			for _, k := range tc.gone {
				if v, ok := tc.in[http.CanonicalHeaderKey(k)]; ok {
					t.Errorf("%s survived: %v", k, v)
				}
			}
			for k, want := range tc.stayed {
				if got := tc.in.Get(k); got != want {
					t.Errorf("%s = %q, want %q", k, got, want)
				}
			}
		})
	}
}

// TestRouterForwardStripsHopByHop drives both directions through a live
// router: hop-by-hop request headers (including one nominated by the
// Connection header) must not reach the backend, and the backend's
// hop-by-hop response headers must not reach the client. The client
// speaks raw HTTP/1.1 so Go's client machinery cannot sanitize the
// request before the router sees it.
func TestRouterForwardStripsHopByHop(t *testing.T) {
	var mu sync.Mutex
	var seen http.Header
	mux := http.NewServeMux()
	mux.HandleFunc(PathStatus, func(w http.ResponseWriter, _ *http.Request) {
		json.NewEncoder(w).Encode(NodeStatus{Role: "primary", Epoch: 1, NextIndex: 1})
	})
	mux.HandleFunc("/v1/records", func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		seen = r.Header.Clone()
		mu.Unlock()
		h := w.Header()
		h.Set("X-Backend", "yes")
		h.Set("Connection", "x-resp-hop")
		h.Set("X-Resp-Hop", "1")
		h.Set("Keep-Alive", "timeout=5")
		h.Set("Proxy-Connection", "keep-alive")
		h.Set("Upgrade", "h2c")
		io.Copy(io.Discard, r.Body)
		w.Write([]byte("ok"))
	})
	backend := httptest.NewServer(mux)
	defer backend.Close()

	r, err := NewRouter(RouterConfig{Peers: []string{backend.URL}, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	r.sweep()
	if r.Primary() != backend.URL {
		t.Fatalf("primary = %q", r.Primary())
	}
	front := httptest.NewServer(r.Handler())
	defer front.Close()

	conn, err := net.Dial("tcp", strings.TrimPrefix(front.URL, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	fmt.Fprintf(conn, "POST /v1/records HTTP/1.1\r\n"+
		"Host: router\r\n"+
		"Content-Length: 3\r\n"+
		"Connection: x-hop\r\n"+
		"X-Hop: 1\r\n"+
		"Keep-Alive: timeout=5\r\n"+
		"Proxy-Connection: keep-alive\r\n"+
		"Te: trailers\r\n"+
		"Upgrade: h2c\r\n"+
		"X-End-To-End: yes\r\n"+
		"\r\nabc")
	resp, err := http.ReadResponse(bufio.NewReader(conn), nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || string(body) != "ok" {
		t.Fatalf("forward = %d %q", resp.StatusCode, body)
	}

	mu.Lock()
	got := seen
	mu.Unlock()
	if got == nil {
		t.Fatal("backend never saw the request")
	}
	for _, k := range []string{"Connection", "X-Hop", "Keep-Alive", "Proxy-Connection", "Te", "Upgrade"} {
		if v, ok := got[http.CanonicalHeaderKey(k)]; ok {
			t.Errorf("hop-by-hop request header %s leaked to the backend: %v", k, v)
		}
	}
	if got.Get("X-End-To-End") != "yes" {
		t.Errorf("end-to-end request header lost; backend saw %v", got)
	}

	if resp.Header.Get("X-Backend") != "yes" {
		t.Errorf("end-to-end response header lost; client saw %v", resp.Header)
	}
	for _, k := range []string{"X-Resp-Hop", "Keep-Alive", "Proxy-Connection", "Upgrade"} {
		if v, ok := resp.Header[http.CanonicalHeaderKey(k)]; ok {
			t.Errorf("hop-by-hop response header %s leaked to the client: %v", k, v)
		}
	}
}

// mutableNode is a probe target whose role/epoch can change mid-test —
// a node living through demotion and promotion.
type mutableNode struct {
	mu    sync.Mutex
	role  string
	epoch uint64
	srv   *httptest.Server
}

func newMutableNode(role string, epoch uint64) *mutableNode {
	n := &mutableNode{role: role, epoch: epoch}
	mux := http.NewServeMux()
	mux.HandleFunc(PathStatus, func(w http.ResponseWriter, _ *http.Request) {
		n.mu.Lock()
		st := NodeStatus{Role: n.role, Epoch: n.epoch, NextIndex: 1}
		n.mu.Unlock()
		json.NewEncoder(w).Encode(st)
	})
	n.srv = httptest.NewServer(mux)
	return n
}

func (n *mutableNode) set(role string, epoch uint64) {
	n.mu.Lock()
	n.role, n.epoch = role, epoch
	n.mu.Unlock()
}

// TestRouterDropsDemotedPrimary: a previous primary that answers probes
// but no longer claims the primary role (it rejoined post-failover as a
// standby) must lose the election even while no replacement is visible —
// otherwise every batch bounces off its write refusal instead of
// getting a retryable 503.
func TestRouterDropsDemotedPrimary(t *testing.T) {
	a := newMutableNode("primary", 1)
	defer a.srv.Close()
	b := newMutableNode("standby", 1)
	defer b.srv.Close()

	r, err := NewRouter(RouterConfig{Peers: []string{a.srv.URL, b.srv.URL}, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	r.sweep()
	if r.Primary() != a.srv.URL {
		t.Fatalf("primary = %q, want %q", r.Primary(), a.srv.URL)
	}

	// A demotes but stays healthy; nothing else is primary yet.
	a.set("standby", 1)
	r.sweep()
	if got := r.Primary(); got != "" {
		t.Fatalf("demoted peer still elected: %q", got)
	}

	// B promotes at a bumped epoch; the next sweep follows it.
	b.set("primary", 2)
	r.sweep()
	if r.Primary() != b.srv.URL {
		t.Fatalf("primary = %q, want promoted %q", r.Primary(), b.srv.URL)
	}
}

// TestNewRouterDoesNotMutateCallerPeers: URL normalization must work on
// a private copy, not write through the caller's slice.
func TestNewRouterDoesNotMutateCallerPeers(t *testing.T) {
	peers := []string{"http://a:1/", "http://b:2///"}
	want := append([]string(nil), peers...)
	if _, err := NewRouter(RouterConfig{Peers: peers, Logf: t.Logf}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(peers, want) {
		t.Fatalf("caller slice mutated: %v, want %v", peers, want)
	}
}
