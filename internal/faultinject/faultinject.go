// Package faultinject is a deterministic, seedable fault-injection
// layer for the ingest and streaming paths: it wraps io.Readers (and
// through them dataset sources and the bounced HTTP ingest path) with
// the failure modes a long-running collector sees in the wild — torn
// mid-record streams, truncated gzip members, corrupted bytes that
// surface as decode errors, slow-loris peers, stalled consumers, and
// duplicated/replayed batches.
//
// Every decision is drawn from a simrng stream derived from the spec
// seed and a monotonically increasing stream index, so a fault
// schedule is a pure function of (seed, order of wrapped streams):
// re-running the same request sequence replays the same faults, which
// is what makes the chaos differential test (`make chaos`) a
// deterministic seed sweep rather than a flaky soak.
package faultinject

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/simrng"
)

// Fault kinds, used as counter keys and in injected error text.
const (
	KindTorn    = "torn"      // stream cut mid-record (unexpected EOF)
	KindTruncGz = "truncgz"   // gzip member truncated (client-side plans)
	KindCorrupt = "corrupt"   // one byte flipped (surfaces as decode error)
	KindLoris   = "slowloris" // body trickled with long pauses
	KindStall   = "stall"     // consumer stalled per record
	KindDup     = "dup"       // batch duplicated / replayed
)

// ErrInjected tags every error produced by an injected fault so tests
// and operators can distinguish injected failures from organic ones
// with errors.Is.
var ErrInjected = errors.New("faultinject: injected fault")

// injectedError carries the fault kind alongside ErrInjected.
type injectedError struct{ kind string }

func (e *injectedError) Error() string {
	return "faultinject: injected " + e.kind + " fault: unexpected EOF"
}

func (e *injectedError) Unwrap() error { return ErrInjected }

// Spec is the parsed -fault-spec configuration. Probabilities are per
// wrapped stream (or per batch, for client-side plans); zero disables
// the fault. The zero Spec injects nothing.
type Spec struct {
	// Seed drives every fault decision. Two injectors with the same
	// seed and spec fire identically over the same stream sequence.
	Seed uint64
	// Torn is the probability a stream is cut mid-record.
	Torn float64
	// TruncGzip is the probability a gzip body is truncated before
	// sending (client-side batch plans).
	TruncGzip float64
	// Corrupt is the probability one byte of the stream is flipped,
	// which downstream decoders surface as a line-numbered error.
	Corrupt float64
	// Loris is the probability a body is trickled slowly.
	Loris float64
	// LorisPause is the pause inserted between trickled chunks
	// (default 200ms when Loris > 0).
	LorisPause time.Duration
	// Dup is the probability a successfully delivered batch is
	// replayed verbatim (client-side batch plans).
	Dup float64
	// Stall delays the store consumer by this much per record,
	// simulating a wedged downstream so queue shedding engages.
	Stall time.Duration
}

// ParseSpec parses the -fault-spec grammar: a comma- or
// semicolon-separated list of key=value pairs, e.g.
//
//	seed=7,torn=0.05,corrupt=0.02,loris=0.01,lorispause=250ms,dup=0.1,stall=500us
//
// Keys: seed (uint), torn, truncgz, corrupt, loris, dup (probabilities
// in [0,1]), lorispause, stall (Go durations). An empty string yields
// a zero spec.
func ParseSpec(s string) (*Spec, error) {
	sp := &Spec{}
	s = strings.TrimSpace(s)
	if s == "" {
		return sp, nil
	}
	for _, field := range strings.FieldsFunc(s, func(r rune) bool { return r == ',' || r == ';' }) {
		k, v, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return nil, fmt.Errorf("faultinject: bad field %q (want key=value)", field)
		}
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		switch k {
		case "seed":
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faultinject: seed: %w", err)
			}
			sp.Seed = n
		case "lorispause", "stall":
			d, err := time.ParseDuration(v)
			if err != nil || d < 0 {
				return nil, fmt.Errorf("faultinject: %s: bad duration %q", k, v)
			}
			if k == "stall" {
				sp.Stall = d
			} else {
				sp.LorisPause = d
			}
		case "torn", "truncgz", "corrupt", "loris", "dup":
			p, err := strconv.ParseFloat(v, 64)
			if err != nil || p < 0 || p > 1 {
				return nil, fmt.Errorf("faultinject: %s: bad probability %q", k, v)
			}
			switch k {
			case "torn":
				sp.Torn = p
			case "truncgz":
				sp.TruncGzip = p
			case "corrupt":
				sp.Corrupt = p
			case "loris":
				sp.Loris = p
			case "dup":
				sp.Dup = p
			}
		default:
			return nil, fmt.Errorf("faultinject: unknown key %q", k)
		}
	}
	if sp.Loris > 0 && sp.LorisPause == 0 {
		sp.LorisPause = 200 * time.Millisecond
	}
	return sp, nil
}

// String renders the spec back in ParseSpec's grammar.
func (sp *Spec) String() string {
	var parts []string
	add := func(k string, v float64) {
		if v > 0 {
			parts = append(parts, fmt.Sprintf("%s=%g", k, v))
		}
	}
	parts = append(parts, fmt.Sprintf("seed=%d", sp.Seed))
	add("torn", sp.Torn)
	add("truncgz", sp.TruncGzip)
	add("corrupt", sp.Corrupt)
	add("loris", sp.Loris)
	if sp.Loris > 0 {
		parts = append(parts, fmt.Sprintf("lorispause=%s", sp.LorisPause))
	}
	add("dup", sp.Dup)
	if sp.Stall > 0 {
		parts = append(parts, fmt.Sprintf("stall=%s", sp.Stall))
	}
	return strings.Join(parts, ",")
}

// Active reports whether the spec injects any fault at all.
func (sp Spec) Active() bool {
	return sp.Torn > 0 || sp.TruncGzip > 0 || sp.Corrupt > 0 ||
		sp.Loris > 0 || sp.Dup > 0 || sp.Stall > 0
}

// Injector hands out per-stream fault plans and counts the faults that
// actually fire. Safe for concurrent use.
type Injector struct {
	spec   Spec
	stream atomic.Uint64

	counts sync.Map // kind -> *atomic.Uint64
}

// New creates an injector for spec. A nil or inactive spec still
// yields a usable injector that never injects.
func New(spec *Spec) *Injector {
	in := &Injector{}
	if spec != nil {
		in.spec = *spec
	}
	return in
}

// Spec returns the injector's configuration.
func (in *Injector) Spec() Spec { return in.spec }

// count bumps the fired-fault counter for kind.
func (in *Injector) count(kind string) {
	c, ok := in.counts.Load(kind)
	if !ok {
		c, _ = in.counts.LoadOrStore(kind, new(atomic.Uint64))
	}
	c.(*atomic.Uint64).Add(1)
}

// Counts returns the number of faults fired so far by kind.
func (in *Injector) Counts() map[string]uint64 {
	out := map[string]uint64{}
	in.counts.Range(func(k, v any) bool {
		out[k.(string)] = v.(*atomic.Uint64).Load()
		return true
	})
	return out
}

// Total returns the total number of faults fired so far.
func (in *Injector) Total() uint64 {
	var n uint64
	for _, v := range in.Counts() {
		n += v
	}
	return n
}

// CountsString renders Counts in deterministic key order, for logs.
func (in *Injector) CountsString() string {
	m := in.Counts()
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%d", k, m[k]))
	}
	return strings.Join(parts, " ")
}

// ConsumerStall returns the per-record consumer delay (zero when the
// stall fault is disabled).
func (in *Injector) ConsumerStall() time.Duration { return in.spec.Stall }

// Plan is one stream's drawn fault schedule. The zero Plan injects
// nothing.
type Plan struct {
	in *Injector

	// Torn cuts the raw stream after TornAfter bytes.
	Torn      bool
	TornAfter int
	// Corrupt flips one byte of the decoded stream at CorruptAt.
	Corrupt   bool
	CorruptAt int
	// Loris trickles reads in small chunks with Pause between them.
	Loris bool
	Pause time.Duration
	// TruncGzip and Dup are client-side decisions: the sender truncates
	// its gzip body / replays the batch. Reader wrappers ignore them.
	TruncGzip bool
	Dup       bool
}

// NextPlan draws the fault schedule for the next stream. Draws are
// consumed in a fixed order so a plan depends only on the seed and the
// stream index.
func (in *Injector) NextPlan() Plan {
	n := in.stream.Add(1)
	rng := simrng.New(in.spec.Seed ^ 0xfa017ec7).Stream(fmt.Sprintf("stream:%d", n))
	p := Plan{in: in, Pause: in.spec.LorisPause}
	p.Torn = rng.Bool(in.spec.Torn)
	p.TornAfter = 1 + rng.IntN(16<<10)
	p.Corrupt = rng.Bool(in.spec.Corrupt)
	p.CorruptAt = rng.IntN(32 << 10)
	p.Loris = rng.Bool(in.spec.Loris)
	p.TruncGzip = rng.Bool(in.spec.TruncGzip)
	p.Dup = rng.Bool(in.spec.Dup)
	return p
}

// Fired records a client-side fault (TruncGzip, Dup, client-built torn
// bodies) in the injector's counters.
func (p Plan) Fired(kind string) {
	if p.in != nil {
		p.in.count(kind)
	}
}

// WrapRaw applies the plan's raw-layer faults (torn stream,
// slow-loris pacing) to r. Wrapping the compressed layer of a gzip
// stream with a torn cut is exactly a truncated-gzip fault.
func (p Plan) WrapRaw(r io.Reader) io.Reader {
	if p.Loris && p.Pause > 0 {
		r = &lorisReader{r: r, pause: p.Pause, plan: p}
	}
	if p.Torn {
		r = &tornReader{r: r, left: p.TornAfter, plan: p}
	}
	return r
}

// WrapDecoded applies the plan's decoded-layer faults (byte
// corruption) to r, after any decompression.
func (p Plan) WrapDecoded(r io.Reader) io.Reader {
	if p.Corrupt {
		r = &corruptReader{r: r, at: p.CorruptAt, plan: p}
	}
	return r
}

// tornReader delivers left bytes, then fails with an injected
// unexpected-EOF — a connection dropped mid-record.
type tornReader struct {
	r     io.Reader
	left  int
	plan  Plan
	fired bool
}

func (t *tornReader) Read(b []byte) (int, error) {
	if t.left <= 0 {
		if !t.fired {
			t.fired = true
			t.plan.Fired(KindTorn)
		}
		return 0, &injectedError{kind: KindTorn}
	}
	if len(b) > t.left {
		b = b[:t.left]
	}
	n, err := t.r.Read(b)
	t.left -= n
	if err == io.EOF {
		// The stream ended before the cut: nothing to tear.
		return n, err
	}
	return n, err
}

// corruptReader flips one byte at offset at — enough to break a JSON
// record and exercise the decoder's line-numbered error path.
type corruptReader struct {
	r    io.Reader
	at   int
	off  int
	plan Plan
}

func (c *corruptReader) Read(b []byte) (int, error) {
	n, err := c.r.Read(b)
	if n > 0 && c.off <= c.at && c.at < c.off+n {
		i := c.at - c.off
		// XOR with a control byte: guaranteed to change the byte and
		// near-guaranteed to break JSON framing or a string literal.
		b[i] ^= 0x1f
		if b[i] == '\n' { // keep line framing intact
			b[i] = 0x01
		}
		c.plan.Fired(KindCorrupt)
	}
	c.off += n
	return n, err
}

// lorisReader trickles tiny reads with a pause between them — the
// read-side view of a slow-loris peer. A server-side read deadline is
// the intended countermeasure.
type lorisReader struct {
	r     io.Reader
	pause time.Duration
	plan  Plan
	fired bool
}

func (l *lorisReader) Read(b []byte) (int, error) {
	if !l.fired {
		l.fired = true
		l.plan.Fired(KindLoris)
	} else if l.pause > 0 {
		time.Sleep(l.pause)
	}
	if len(b) > 64 {
		b = b[:64]
	}
	return l.r.Read(b)
}
