package faultinject

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"time"
)

func TestParseSpecRoundTrip(t *testing.T) {
	sp, err := ParseSpec("seed=7,torn=0.05,truncgz=0.1,corrupt=0.02,loris=0.01,lorispause=250ms,dup=0.1,stall=500us")
	if err != nil {
		t.Fatal(err)
	}
	if sp.Seed != 7 || sp.Torn != 0.05 || sp.TruncGzip != 0.1 || sp.Corrupt != 0.02 ||
		sp.Loris != 0.01 || sp.LorisPause != 250*time.Millisecond || sp.Dup != 0.1 ||
		sp.Stall != 500*time.Microsecond {
		t.Fatalf("bad parse: %+v", sp)
	}
	if !sp.Active() {
		t.Fatal("spec should be active")
	}
	// String must re-parse to the same spec.
	sp2, err := ParseSpec(sp.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", sp.String(), err)
	}
	if *sp2 != *sp {
		t.Fatalf("round trip: %+v != %+v", sp2, sp)
	}
}

func TestParseSpecDefaultsAndErrors(t *testing.T) {
	sp, err := ParseSpec("")
	if err != nil || sp.Active() {
		t.Fatalf("empty spec: %+v, %v", sp, err)
	}
	sp, err = ParseSpec("loris=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if sp.LorisPause != 200*time.Millisecond {
		t.Fatalf("lorispause default: %v", sp.LorisPause)
	}
	for _, bad := range []string{"torn=2", "torn=-1", "seed=x", "stall=-1s", "wat=1", "torn"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q): want error", bad)
		}
	}
}

func TestPlansDeterministic(t *testing.T) {
	spec := &Spec{Seed: 11, Torn: 0.3, Corrupt: 0.3, Loris: 0.2, LorisPause: time.Millisecond, Dup: 0.25, TruncGzip: 0.2}
	a, b := New(spec), New(spec)
	anyFault := false
	for i := 0; i < 200; i++ {
		pa, pb := a.NextPlan(), b.NextPlan()
		pa.in, pb.in = nil, nil // compare draws only
		if pa != pb {
			t.Fatalf("plan %d diverged: %+v vs %+v", i, pa, pb)
		}
		if pa.Torn || pa.Corrupt || pa.Loris || pa.Dup || pa.TruncGzip {
			anyFault = true
		}
	}
	if !anyFault {
		t.Fatal("no faults drawn in 200 plans at these probabilities")
	}
	// A different seed must draw a different schedule.
	c := New(&Spec{Seed: 12, Torn: 0.3, Corrupt: 0.3, Loris: 0.2, LorisPause: time.Millisecond, Dup: 0.25, TruncGzip: 0.2})
	diverged := false
	a2 := New(spec)
	for i := 0; i < 200; i++ {
		pa, pc := a2.NextPlan(), c.NextPlan()
		pa.in, pc.in = nil, nil
		if pa != pc {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("seeds 11 and 12 drew identical schedules")
	}
}

func TestTornReaderCutsAndCounts(t *testing.T) {
	in := New(&Spec{Seed: 1, Torn: 1})
	p := in.NextPlan()
	if !p.Torn {
		t.Fatal("torn=1 must always fire")
	}
	p.TornAfter = 10
	src := strings.NewReader(strings.Repeat("x", 100))
	r := p.WrapRaw(src)
	got, err := io.ReadAll(r)
	if len(got) != 10 {
		t.Fatalf("read %d bytes, want 10", len(got))
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if in.Counts()[KindTorn] != 1 {
		t.Fatalf("counts: %v", in.Counts())
	}
	// A stream shorter than the cut point is untouched.
	p2 := in.NextPlan()
	p2.TornAfter = 1000
	got, err = io.ReadAll(p2.WrapRaw(strings.NewReader("short")))
	if err != nil || string(got) != "short" {
		t.Fatalf("short stream: %q, %v", got, err)
	}
}

func TestCorruptReaderFlipsExactlyOneByte(t *testing.T) {
	in := New(&Spec{Seed: 1, Corrupt: 1})
	p := in.NextPlan()
	p.CorruptAt = 5
	orig := []byte("hello, world: a perfectly fine record\n")
	got, err := io.ReadAll(p.WrapDecoded(bytes.NewReader(orig)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(orig) {
		t.Fatalf("length changed: %d != %d", len(got), len(orig))
	}
	diff := 0
	for i := range got {
		if got[i] != orig[i] {
			diff++
			if i != 5 {
				t.Fatalf("byte %d changed, want only 5", i)
			}
			if got[i] == '\n' {
				t.Fatal("corruption must not add line breaks")
			}
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes changed, want 1", diff)
	}
	if in.Counts()[KindCorrupt] != 1 {
		t.Fatalf("counts: %v", in.Counts())
	}
	// Corruption past EOF fires nothing.
	p2 := in.NextPlan()
	p2.CorruptAt = 1 << 20
	if got, _ := io.ReadAll(p2.WrapDecoded(strings.NewReader("tiny"))); string(got) != "tiny" {
		t.Fatalf("short stream corrupted: %q", got)
	}
}

func TestLorisReaderTricklesSmallChunks(t *testing.T) {
	in := New(&Spec{Seed: 1, Loris: 1, LorisPause: time.Microsecond})
	p := in.NextPlan()
	r := p.WrapRaw(strings.NewReader(strings.Repeat("y", 300)))
	buf := make([]byte, 256)
	n, err := r.Read(buf)
	if err != nil || n > 64 {
		t.Fatalf("first read %d bytes (err %v), want <= 64", n, err)
	}
	rest, err := io.ReadAll(r)
	if err != nil || n+len(rest) != 300 {
		t.Fatalf("total %d bytes (err %v), want 300", n+len(rest), err)
	}
	if in.Counts()[KindLoris] != 1 {
		t.Fatalf("counts: %v", in.Counts())
	}
}

func TestInactiveInjectorIsTransparent(t *testing.T) {
	in := New(nil)
	p := in.NextPlan()
	src := strings.NewReader("pass through")
	if r := p.WrapRaw(src); r != io.Reader(src) {
		t.Fatal("WrapRaw must be identity when inactive")
	}
	if r := p.WrapDecoded(src); r != io.Reader(src) {
		t.Fatal("WrapDecoded must be identity when inactive")
	}
	if in.Total() != 0 || in.ConsumerStall() != 0 {
		t.Fatalf("inactive injector fired: %v", in.Counts())
	}
}

func TestCountsString(t *testing.T) {
	in := New(&Spec{Seed: 1, Torn: 1, Corrupt: 1})
	p := in.NextPlan()
	p.TornAfter, p.CorruptAt = 1, 0
	io.ReadAll(p.WrapDecoded(p.WrapRaw(strings.NewReader("xxxx"))))
	s := in.CountsString()
	if !strings.Contains(s, "corrupt=1") || !strings.Contains(s, "torn=1") {
		t.Fatalf("CountsString: %q", s)
	}
	if in.Total() != 2 {
		t.Fatalf("Total: %d", in.Total())
	}
}
