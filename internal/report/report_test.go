package report

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/clock"
	"repro/internal/dataset"
	"repro/internal/ndr"
	"repro/internal/squat"
)

func corpus() []dataset.Record {
	day := func(d int) time.Time { return clock.StudyStart.AddDate(0, 0, d).Add(9 * time.Hour) }
	tpl := func(t ndr.Type) string {
		idx := ndr.NonAmbiguousTemplatesFor(t)[0]
		return ndr.Catalog[idx].Render(ndr.Params{
			Addr: "u@x.com", Local: "u", Domain: "x.com", IP: "5.0.0.1",
			MX: "mx1.x.com", BL: "Spamhaus", Vendor: "v", Sec: "60", Size: "1",
		})
	}
	var out []dataset.Record
	mk := func(to string, d int, results ...string) {
		r := dataset.Record{From: "a@s.com", To: to, StartTime: day(d),
			EndTime: day(d).Add(time.Minute), EmailFlag: "Normal"}
		for range results {
			r.FromIP = append(r.FromIP, "5.0.0.1")
			r.ToIP = append(r.ToIP, "20.0.0.1")
			r.DeliveryLatency = append(r.DeliveryLatency, 8000)
		}
		r.DeliveryResult = results
		out = append(out, r)
	}
	for i := 0; i < 200; i++ {
		mk(fmt.Sprintf("u%d@x.com", i%20), i%400, "250 OK")
	}
	for i := 0; i < 40; i++ {
		mk("g@x.com", i*3, tpl(ndr.T6Greylisted), "250 OK")
	}
	for i := 0; i < 40; i++ {
		mk("ghost@x.com", i*5, tpl(ndr.T8NoSuchUser))
	}
	for i := 0; i < 30; i++ {
		mk("u@x.com", i*7, tpl(ndr.T14Timeout), "250 OK")
	}
	return out
}

func newAnalysis() *analysis.Analysis { return analysis.New(corpus(), nil) }

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3, 4})
	if len([]rune(s)) != 5 {
		t.Errorf("sparkline length: %q", s)
	}
	if !strings.HasSuffix(s, "█") || !strings.HasPrefix(s, "▁") {
		t.Errorf("sparkline scaling: %q", s)
	}
	if got := Sparkline([]float64{0, 0}); got != "▁▁" {
		t.Errorf("all-zero sparkline: %q", got)
	}
}

func TestHbar(t *testing.T) {
	if got := hbar(5, 10, 10); got != "█████" {
		t.Errorf("hbar = %q", got)
	}
	if hbar(1, 0, 10) != "" {
		t.Error("zero max should render empty")
	}
	if got := hbar(20, 10, 10); len([]rune(got)) != 10 {
		t.Errorf("hbar overflow: %q", got)
	}
}

func TestOverviewRendering(t *testing.T) {
	a := newAnalysis()
	var buf bytes.Buffer
	Overview(&buf, a.Overview())
	out := buf.String()
	for _, want := range []string{"non-bounced", "soft-bounced", "hard-bounced", "87.07%"} {
		if !strings.Contains(out, want) {
			t.Errorf("overview missing %q:\n%s", want, out)
		}
	}
}

func TestTable1Rendering(t *testing.T) {
	a := newAnalysis()
	var buf bytes.Buffer
	o := a.Overview()
	Table1(&buf, a.TypeDistribution(), o.Bounced())
	out := buf.String()
	for _, tt := range ndr.AllTypes {
		if !strings.Contains(out, tt.String()+" ") {
			t.Errorf("Table1 missing %v", tt)
		}
	}
	if !strings.Contains(out, "31.10%") { // paper anchor column
		t.Error("Table1 missing paper comparison")
	}
}

func TestTable2Rendering(t *testing.T) {
	a := newAnalysis()
	var buf bytes.Buffer
	Table2(&buf, a.RootCauses(nil))
	out := buf.String()
	for _, cause := range []string{"Malicious Email Behavior", "Spam Blocking Policy",
		"Server Manager Misconfiguration", "Improper User Operation", "Poor Email Infrastructure"} {
		if !strings.Contains(out, cause) {
			t.Errorf("Table2 missing cause %q", cause)
		}
	}
}

func TestTablesAndFiguresDoNotPanic(t *testing.T) {
	a := newAnalysis()
	var buf bytes.Buffer
	Table3(&buf, a.TopDomains(10))
	Table4(&buf, a.TopASes(10)) // nil Env -> empty, must not panic
	Table5(&buf, a.CountryBounces(1), 10)
	o := a.Overview()
	Table6(&buf, a.AmbiguousTemplates(), o.AmbiguousBounced)
	Fig4(&buf, a.MTACountryDistribution(), 10)
	Fig5(&buf, a.Timeline())
	Fig6(&buf, a.BlocklistFigure())
	Fig7(&buf, a.Durations(nil))
	Fig8(&buf, a.InfraMatrix(1, 5))
	Fig10(&buf, a.LatencyByCountry(1), 5)
	STARTTLS(&buf, a.STARTTLS())
	det := a.Detect()
	Attackers(&buf, det)
	Typos(&buf, det)
	EnhancedCodeStat(&buf, a.NoEnhancedCodeShare())
	labeled, cov := a.Pipeline.ManualLabelStats()
	PipelineStats(&buf, a.Pipeline.NumTemplates(), labeled, cov)
	Squat(&buf, squat.Scan(a, det, squat.DefaultConfig()))
	if buf.Len() == 0 {
		t.Fatal("renderers produced nothing")
	}
}

func TestDownsample(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i)
	}
	got := downsample(xs, 10)
	if len(got) != 10 {
		t.Fatalf("downsample length %d", len(got))
	}
	if got[0] >= got[9] {
		t.Error("downsample lost ordering")
	}
	short := []float64{1, 2}
	if len(downsample(short, 10)) != 2 {
		t.Error("short series should pass through")
	}
}

func TestClip(t *testing.T) {
	if clip("hello", 10) != "hello" {
		t.Error("short string clipped")
	}
	if got := clip("abcdefghijkl", 10); got != "abcdefg..." || len(got) != 10 {
		t.Errorf("clip = %q", got)
	}
}

func TestFig7RendersAnchors(t *testing.T) {
	a := newAnalysis()
	var buf bytes.Buffer
	Fig7(&buf, a.Durations(nil))
	if !strings.Contains(buf.String(), "DKIM/SPF") || !strings.Contains(buf.String(), "mailbox full") {
		t.Errorf("Fig7 output:\n%s", buf.String())
	}
}
