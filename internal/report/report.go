// Package report renders every table and figure of the paper as plain
// text: aligned tables for Tables 1-6 and ASCII charts (sparklines,
// bar rows, heat grids, CDF tables) for Figures 4-10. All renderers
// write to an io.Writer so commands, examples and tests share them.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/advise"
	"repro/internal/analysis"
	"repro/internal/clock"
	"repro/internal/ndr"
	"repro/internal/squat"
	"repro/internal/stats"
)

// sparkChars are the eight block glyphs used for inline charts.
var sparkChars = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a block-glyph strip scaled to the series
// maximum.
func Sparkline(values []float64) string {
	max := 0.0
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		idx := 0
		if max > 0 {
			idx = int(v / max * float64(len(sparkChars)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkChars) {
			idx = len(sparkChars) - 1
		}
		b.WriteRune(sparkChars[idx])
	}
	return b.String()
}

// hbar renders a horizontal bar of width proportional to v/max.
func hbar(v, max float64, width int) string {
	if max <= 0 {
		return ""
	}
	n := int(v / max * float64(width))
	if n < 0 {
		n = 0
	}
	if n > width {
		n = width
	}
	return strings.Repeat("█", n)
}

// Overview prints the Section-4.1 headline numbers.
func Overview(w io.Writer, o analysis.Overview) {
	fmt.Fprintf(w, "== Overview (paper: 87.07%% non / 4.82%% soft / 8.11%% hard; soft ≈3 attempts) ==\n")
	fmt.Fprintf(w, "emails          %9d\n", o.Total)
	fmt.Fprintf(w, "non-bounced     %9d (%6.2f%%)\n", o.NonBounced, stats.Pct(o.NonBounced, o.Total))
	fmt.Fprintf(w, "soft-bounced    %9d (%6.2f%%)\n", o.SoftBounced, stats.Pct(o.SoftBounced, o.Total))
	fmt.Fprintf(w, "hard-bounced    %9d (%6.2f%%)\n", o.HardBounced, stats.Pct(o.HardBounced, o.Total))
	fmt.Fprintf(w, "bounced ≥1      %9d (%6.2f%%)\n", o.Bounced(), stats.Pct(o.Bounced(), o.Total))
	fmt.Fprintf(w, "ambiguous-only  %9d (%6.2f%% of bounced; paper: 6M of 38M)\n",
		o.AmbiguousBounced, stats.Pct(o.AmbiguousBounced, o.Bounced()))
	fmt.Fprintf(w, "soft avg attempts %.2f\n", o.SoftAvgAttempts)
}

// paperTable1 holds the published Table-1 shares for side-by-side
// comparison.
var paperTable1 = map[ndr.Type]float64{
	ndr.T1SenderDNS: 1.79, ndr.T2ReceiverDNS: 20.06, ndr.T3AuthFail: 2.65,
	ndr.T4STARTTLS: 1.86, ndr.T5Blocklisted: 31.10, ndr.T6Greylisted: 2.63,
	ndr.T7TooFast: 2.54, ndr.T8NoSuchUser: 7.46, ndr.T9MailboxFull: 2.06,
	ndr.T10TooManyRcpts: 0.78, ndr.T11RateLimited: 1.87, ndr.T12TooLarge: 0.53,
	ndr.T13ContentSpam: 9.31, ndr.T14Timeout: 15.04, ndr.T15Interrupted: 6.51,
	ndr.T16Unknown: 4.26,
}

// Table1 prints the NDR type distribution next to the paper's shares.
func Table1(w io.Writer, dist map[ndr.Type]int, bounced int) {
	fmt.Fprintf(w, "== Table 1: NDR message types among bounced emails ==\n")
	fmt.Fprintf(w, "%-4s %-46s %9s %8s %8s\n", "type", "reason", "emails", "share", "paper")
	for _, t := range ndr.AllTypes {
		fmt.Fprintf(w, "%-4s %-46s %9d %7.2f%% %7.2f%%\n",
			t, t.Description(), dist[t], stats.Pct(dist[t], bounced), paperTable1[t])
	}
}

// Table2 prints the root-cause attribution.
func Table2(w io.Writer, t analysis.RootCauseTable) {
	fmt.Fprintf(w, "== Table 2: root causes of bounced emails (total %d) ==\n", t.TotalBounced)
	last := analysis.RootCause(-1)
	for _, row := range t.Rows {
		if row.Cause != last {
			last = row.Cause
			fmt.Fprintf(w, "-- %s: %d (%.2f%%)\n", row.Cause,
				t.CauseTotal(row.Cause), stats.Pct(t.CauseTotal(row.Cause), t.TotalBounced))
		}
		fmt.Fprintf(w, "   %-7s %-40s %-9s %-22s %8d (%5.2f%%)\n",
			row.Type, row.Reason, row.Degree, row.Causer, row.Emails,
			stats.Pct(row.Emails, t.TotalBounced))
	}
}

// Table3 prints the top receiver domains.
func Table3(w io.Writer, rows []analysis.DomainStats) {
	fmt.Fprintf(w, "== Table 3: top receiver domains ==\n")
	fmt.Fprintf(w, "%-18s %9s %9s %9s\n", "domain", "emails", "hard", "soft")
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s %9d %8.2f%% %8.2f%%\n", r.Domain, r.Emails, r.HardPct(), r.SoftPct())
	}
}

// Table4 prints the top receiver ASes.
func Table4(w io.Writer, rows []analysis.ASStats) {
	fmt.Fprintf(w, "== Table 4: top receiver ASes ==\n")
	fmt.Fprintf(w, "%-8s %-38s %9s %8s %8s\n", "AS", "organization", "emails", "hard", "soft")
	for _, r := range rows {
		fmt.Fprintf(w, "AS%-6d %-38s %9d %7.2f%% %7.2f%%\n", r.ASN, r.Org, r.Emails, r.HardPct(), r.SoftPct())
	}
}

// Table5 prints the two country rankings.
func Table5(w io.Writer, all []analysis.CountryStats, n int) {
	fmt.Fprintf(w, "== Table 5: countries by bounce ratio (min-volume filtered) ==\n")
	print := func(rows []analysis.CountryStats, label string) {
		fmt.Fprintf(w, "-- top %d by %s --\n", len(rows), label)
		fmt.Fprintf(w, "%-3s %-8s %9s %8s %8s  %-24s %-5s\n",
			"cc", "", "emails", "hard", "soft", "major category", "type")
		for _, r := range rows {
			fmt.Fprintf(w, "%-3s %-8s %9d %7.2f%% %7.2f%%  %-24s %-5s (%.0f%%)\n",
				r.Country, "", r.Emails, r.HardPct(), r.SoftPct(), r.MajorCat, r.MajorTyp, 100*r.MajorTypShare)
		}
	}
	print(analysis.TopByHard(all, n), "hard-bounce ratio")
	print(analysis.TopBySoft(all, n), "soft-bounce ratio")
}

// Table6 prints the ambiguous template ranking.
func Table6(w io.Writer, rows []analysis.AmbiguousTemplate, ambiguousEmails int) {
	fmt.Fprintf(w, "== Table 6: ambiguous NDR templates (%d ambiguous-only emails) ==\n", ambiguousEmails)
	total := 0
	for _, r := range rows {
		total += r.Count
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Count > rows[j].Count })
	for i, r := range rows {
		if i >= 5 {
			break
		}
		fmt.Fprintf(w, "%8d (%5.2f%%)  %s\n", r.Count, stats.Pct(r.Count, total), clip(r.Template, 90))
	}
}

// Fig4 prints the receiver-MTA country distribution.
func Fig4(w io.Writer, rows []analysis.MTACountry, n int) {
	fmt.Fprintf(w, "== Figure 4: receiver MTA geographic distribution (paper: US 28.53%%, DE 10.59%%, CA 5.42%%) ==\n")
	max := 0.0
	for _, r := range rows {
		if r.Share > max {
			max = r.Share
		}
	}
	for i, r := range rows {
		if i >= n {
			break
		}
		fmt.Fprintf(w, "%-3s %6.2f%% %6d  %s\n", r.Country, r.Share*100, r.MTAs, hbar(r.Share, max, 40))
	}
}

// Fig5 prints the daily/monthly delivery timeline.
func Fig5(w io.Writer, tl analysis.Timeline) {
	fmt.Fprintf(w, "== Figure 5: daily deliveries by bounce degree + monthly volume ==\n")
	daily := make([]float64, clock.StudyDays)
	hard := make([]float64, clock.StudyDays)
	soft := make([]float64, clock.StudyDays)
	for d := 0; d < clock.StudyDays; d++ {
		daily[d] = float64(tl.Days[d].Non + tl.Days[d].Soft + tl.Days[d].Hard)
		hard[d] = float64(tl.Days[d].Hard)
		soft[d] = float64(tl.Days[d].Soft)
	}
	fmt.Fprintf(w, "daily volume : %s\n", Sparkline(downsample(daily, 90)))
	fmt.Fprintf(w, "daily hard   : %s\n", Sparkline(downsample(hard, 90)))
	fmt.Fprintf(w, "daily soft   : %s\n", Sparkline(downsample(soft, 90)))
	fmt.Fprintf(w, "%-8s %9s\n", "month", "emails")
	maxM := 0
	for _, m := range tl.Months {
		if m.Emails > maxM {
			maxM = m.Emails
		}
	}
	for _, m := range tl.Months {
		fmt.Fprintf(w, "%-8s %9d  %s\n", m.Month, m.Emails, hbar(float64(m.Emails), float64(maxM), 40))
	}
}

// Fig6 prints the blocklist dynamics.
func Fig6(w io.Writer, f analysis.BlocklistFigure) {
	fmt.Fprintf(w, "== Figure 6: proxies blocklisted + emails blocked via the DNSBL ==\n")
	listed := make([]float64, clock.StudyDays)
	blocked := make([]float64, clock.StudyDays)
	totN, totS := 0, 0
	for d := 0; d < clock.StudyDays; d++ {
		listed[d] = float64(f.ListedPerDay[d])
		blocked[d] = float64(f.BlockedNormal[d] + f.BlockedSpam[d])
		totN += f.BlockedNormal[d]
		totS += f.BlockedSpam[d]
	}
	fmt.Fprintf(w, "proxies listed/day : %s (avg %.1f of 34; paper: ~17)\n",
		Sparkline(downsample(listed, 90)), f.AvgListed)
	fmt.Fprintf(w, "blocked emails/day : %s (%d normal + %d spam)\n",
		Sparkline(downsample(blocked, 90)), totN, totS)
	fmt.Fprintf(w, "proxies listed >70%% of days: %d (paper: 5)\n", f.ProxiesOver70Pct)
	fmt.Fprintf(w, "normal share of blocked emails: %.2f%% (paper: 78.06%%)\n", f.NormalShare*100)
}

// Fig7 prints the misconfiguration-duration distributions.
func Fig7(w io.Writer, f analysis.DurationsFigure) {
	fmt.Fprintf(w, "== Figure 7: misconfiguration duration CDFs (days) ==\n")
	marks := []float64{1, 3, 7, 14, 30, 60, 90}
	header := "series              entities always recur  mean   med"
	for _, m := range marks {
		header += fmt.Sprintf(" ≤%3.0fd", m)
	}
	fmt.Fprintln(w, header)
	row := func(name string, e analysis.EpisodeStats) {
		line := fmt.Sprintf("%-19s %8d %6d %5d %5.1f %5.1f",
			name, e.Entities, e.AlwaysBroken, e.Recurrent, e.MeanDays(), e.MedianDays())
		for _, m := range marks {
			line += fmt.Sprintf(" %4.0f%%", 100*(1-e.ShareAtLeast(m+1e-9)))
		}
		fmt.Fprintln(w, line)
	}
	row("DKIM/SPF (senders)", f.AuthDKIMSPF)
	row("MX records (rcvrs)", f.MXRecords)
	row("mailbox full", f.MailboxFull)
	fmt.Fprintf(w, "paper anchors: DKIM/SPF mean fix 12d; MX mostly <1d; mailbox-full mean 86d, >51%% ≥30d\n")
}

// Fig8 prints the infrastructure heat matrix.
func Fig8(w io.Writer, m analysis.InfraMatrix) {
	fmt.Fprintf(w, "== Figure 8: SMTP timeout ratio (%%) by sender proxy country × receiver country ==\n")
	fmt.Fprintf(w, "%-3s", "")
	for _, cc := range m.ReceiverCCs {
		fmt.Fprintf(w, " %5s", cc)
	}
	fmt.Fprintln(w)
	for si, s := range m.SenderCCs {
		fmt.Fprintf(w, "%-3s", s)
		for ri := range m.ReceiverCCs {
			fmt.Fprintf(w, " %5.1f", m.Ratio[si][ri])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "paper anchors: HK→NA 35.11, US→NA 22.87, HK→BZ 0.34; 8 of top-20 in Africa\n")
}

// Fig9 prints the squatting exposure timeline.
func Fig9(w io.Writer, r *squat.Result) {
	fmt.Fprintf(w, "== Figure 9: weekly senders/emails exposed to squatting ==\n")
	senders := make([]float64, clock.StudyWeeks)
	emails := make([]float64, clock.StudyWeeks)
	maxS, maxE := 0, 0
	for i := 0; i < clock.StudyWeeks; i++ {
		senders[i] = float64(r.WeeklySenders[i])
		emails[i] = float64(r.WeeklyEmails[i])
		if r.WeeklySenders[i] > maxS {
			maxS = r.WeeklySenders[i]
		}
		if r.WeeklyEmails[i] > maxE {
			maxE = r.WeeklyEmails[i]
		}
	}
	fmt.Fprintf(w, "weekly senders: %s (peak %d)\n", Sparkline(senders), maxS)
	fmt.Fprintf(w, "weekly emails : %s (peak %d)\n", Sparkline(emails), maxE)
}

// Squat prints the full Section-5 results.
func Squat(w io.Writer, r *squat.Result) {
	fmt.Fprintf(w, "== Section 5: email address squatting ==\n")
	fmt.Fprintf(w, "never-resolved domains observed:   %d\n", r.NeverResolved)
	fmt.Fprintf(w, "NXDOMAIN at scan date:             %d\n", r.NXDomainAtScan)
	fmt.Fprintf(w, "vulnerable (registrable) domains:  %d (paper: 3K)\n", r.VulnerableCount)
	fmt.Fprintf(w, "  typo-sourced:                    %d\n", r.TypoDomains)
	fmt.Fprintf(w, "  historically received mail:      %d (paper: 592)\n", r.HistoricallyRecv)
	fmt.Fprintf(w, "  senders exposed / emails:        %d / %d (paper: 9K / 158K)\n", r.DomainSenders, r.DomainEmails)
	fmt.Fprintf(w, "re-registered by audit date:       %d (with MX: %d; same registrant: %d, changed: %d)\n",
		r.ReRegistered, r.ReRegisteredMX, r.RegistrantSame, r.RegistrantChanged)
	fmt.Fprintf(w, "usernames probed:                  %d (paper: 875)\n", r.ProbedUsernames)
	fmt.Fprintf(w, "registrable (vulnerable):          %d (%.1f%%; paper: 312 = 35.7%%)\n",
		r.RegistrableCount, stats.Pct(r.RegistrableCount, r.ProbedUsernames))
	fmt.Fprintf(w, "  past-working among vulnerable:   %d (paper: 25)\n", r.PastWorking)
	fmt.Fprintf(w, "  senders exposed / emails:        %d / %d (paper: 672 / 46K)\n", r.UsernameSenders, r.UsernameEmails)
	Fig9(w, r)
}

// Fig10 prints per-country latency plus the Appendix-C aggregates.
func Fig10(w io.Writer, l analysis.LatencyStats, n int) {
	fmt.Fprintf(w, "== Figure 10 / Appendix C: delivery latency of successful emails ==\n")
	fmt.Fprintf(w, "global mean/median: %.2fs / %.2fs (paper: 19.37s / 14.03s)\n",
		l.GlobalMeanMS/1000, l.GlobalMedianMS/1000)
	fmt.Fprintf(w, "fast-Internet mean/median: %.2fs / %.2fs (paper: 9.74s / 6.97s)\n",
		l.FastMeanMS/1000, l.FastMedianMS/1000)
	fmt.Fprintf(w, "slow-Internet mean/median: %.2fs / %.2fs (paper: 16.73s / 12.54s)\n",
		l.SlowMeanMS/1000, l.SlowMedianMS/1000)
	fmt.Fprintf(w, "-- %d slowest countries by median --\n", n)
	for i, c := range l.Countries {
		if i >= n {
			break
		}
		fmt.Fprintf(w, "%-3s %8.2fs (%d emails)\n", c.Country, c.MedianMS/1000, c.Emails)
	}
}

// STARTTLS prints the Section-4.3.1 mandate shares.
func STARTTLS(w io.Writer, s analysis.STARTTLSStats) {
	fmt.Fprintf(w, "== STARTTLS mandates (Section 4.3.1) ==\n")
	fmt.Fprintf(w, "mandating domains observed: %d; T4 soft-bounced emails: %d\n", s.MandatingDomains, s.SoftBounced)
	fmt.Fprintf(w, "top-100 share: %.2f%% (paper: 38%%); all-domain share: %.2f%% (paper: 8.53%% of top 10K)\n",
		s.Top100Share*100, s.AllShare*100)
}

// Attackers prints the Section-4.2.1 detections.
func Attackers(w io.Writer, d *analysis.Detections) {
	fmt.Fprintf(w, "== Attackers (Section 4.2.1) ==\n")
	fmt.Fprintf(w, "username-guessing sender domains: %d (paper: 9)\n", len(d.GuessingSenders))
	fmt.Fprintf(w, "  guessed addresses: %d, hits: %d (%.2f%%; paper: 0.91%%), malicious emails delivered: %d (paper: 536)\n",
		d.GuessTargets, d.GuessHits, stats.Pct(d.GuessHits, d.GuessTargets), d.GuessDelivered)
	fmt.Fprintf(w, "bulk-spam sender domains: %d (paper: 31)\n", len(d.BulkSpamSenders))
	fmt.Fprintf(w, "  emails: %d, hard: %d (%.2f%%; paper: 70.12%%), soft: %d (%.2f%%; paper: 7.32%%)\n",
		d.BulkEmails, d.BulkHard, stats.Pct(d.BulkHard, d.BulkEmails),
		d.BulkSoft, stats.Pct(d.BulkSoft, d.BulkEmails))
}

// Typos prints the Section-4.3.2 typo findings.
func Typos(w io.Writer, d *analysis.Detections) {
	fmt.Fprintf(w, "== Typos (Section 4.3.2) ==\n")
	fmt.Fprintf(w, "verified username typos: %d; never-resolving domains: %d; matched domain typos: %d\n",
		len(d.UsernameTypos), len(d.NeverResolved), len(d.DomainTypos))
	fmt.Fprintf(w, "username typo kinds (paper: omission 43.92%%, bitsquatting 12.83%%, replacement 10.58%%):\n")
	printKindDist(w, kindCounts(d.UsernameTypos))
	fmt.Fprintf(w, "domain typo kinds (paper: omission 37.14%%, replacement 15.02%%, bitsquatting 12.34%%):\n")
	printKindDist(w, kindCounts(d.DomainTypos))
}

func kindCounts[K comparable](m map[string]K) map[K]int {
	out := map[K]int{}
	for _, k := range m {
		out[k]++
	}
	return out
}

func printKindDist[K interface {
	comparable
	fmt.Stringer
}](w io.Writer, counts map[K]int) {
	total := 0
	for _, n := range counts {
		total += n
	}
	type kv struct {
		k K
		n int
	}
	var rows []kv
	for k, n := range counts {
		rows = append(rows, kv{k, n})
	}
	// Rows come from map iteration: the shared ranked ordering
	// (count desc, name asc) keeps the listing deterministic.
	analysis.SortRanked(rows, func(r kv) float64 { return float64(r.n) }, func(r kv) string { return r.k.String() })
	for _, r := range rows {
		fmt.Fprintf(w, "  %-15s %6d (%5.2f%%)\n", r.k.String(), r.n, stats.Pct(r.n, total))
	}
}

// EnhancedCodeStat prints the no-status-code share.
func EnhancedCodeStat(w io.Writer, share float64) {
	fmt.Fprintf(w, "NDR lines without enhanced status code: %.2f%% (paper: 28.79%%)\n", share*100)
}

// PipelineStats prints the Drain/EBRC pipeline shape.
func PipelineStats(w io.Writer, templates, labeled int, coverage float64) {
	fmt.Fprintf(w, "Drain templates mined: %d (paper: 10,089); labeled top templates: %d covering %.2f%% of NDRs (paper: 200 / 68.49%%)\n",
		templates, labeled, coverage*100)
}

// downsample reduces a series to at most n points by bucket means.
func downsample(xs []float64, n int) []float64 {
	if len(xs) <= n {
		return xs
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		lo := i * len(xs) / n
		hi := (i + 1) * len(xs) / n
		out[i] = stats.Mean(xs[lo:hi])
	}
	return out
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}

// Advisories prints the Section-6.2 recommendation engine's output.
func Advisories(w io.Writer, advs []advise.Advisory) {
	fmt.Fprintf(w, "== Recommendations (Section 6.2): %d advisories ==\n", len(advs))
	for _, a := range advs {
		fmt.Fprintf(w, "[%s] to %-15s %s\n", a.Severity, a.Audience, a.Subject)
		fmt.Fprintf(w, "       action:   %s\n", a.Action)
		fmt.Fprintf(w, "       evidence: %s\n", a.Evidence)
	}
}

// Filters prints the Section-4.2.2 cross-ESP filter comparison and the
// blocklist-recovery statistic.
func Filters(w io.Writer, f analysis.FilterDisagreement, r analysis.BlocklistRecovery) {
	fmt.Fprintf(w, "== Spam-filter disagreement (Section 4.2.2) ==\n")
	fmt.Fprintf(w, "sender-flagged spam not judged spam there:  %d/%d (%.2f%%; paper: 46.49%%)\n",
		f.SenderSpamNotSpamAtReceiver, f.SenderSpamTotal, f.SenderDisagreeShare()*100)
	fmt.Fprintf(w, "receiver-rejected spam flagged Normal:     %d/%d (%.2f%%; paper: 39.46%%)\n",
		f.ReceiverSpamFlaggedNormal, f.ReceiverSpamTotal, f.ReceiverDisagreeShare()*100)
	fmt.Fprintf(w, "extra retry attempts burned on them:       %d\n", f.NormalSpamRetryAttempts)
	fmt.Fprintf(w, "blocklist recovery by switching proxies:   %d/%d (%.2f%%; paper: 80.71%%), avg %.2f attempts (paper: 3)\n",
		r.Recovered, r.Affected, r.RecoveryShare()*100, r.AvgAttempts)
}
