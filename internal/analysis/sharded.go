package analysis

import (
	"repro/internal/dataset"
	"repro/internal/ndr"
)

// ShardedPipeline is the classifier stack partitioned across the fixed
// content-hash substreams: shard s is trained on exactly the records
// with StreamOf(rec) == s, in their substream arrival order. With one
// shard it degenerates to the plain pipeline (the NewWithPipeline
// path); with NumStreams shards it is the canonical sharded form every
// constructor builds, whose per-substream training order is invariant
// under any order-preserving split of the stream — the property that
// makes multi-node reports byte-identical to a single node's.
type ShardedPipeline struct {
	Shards []*Pipeline
}

// SinglePipeline wraps one pre-built pipeline as a 1-shard stack (all
// records route to it).
func SinglePipeline(p *Pipeline) *ShardedPipeline {
	return &ShardedPipeline{Shards: []*Pipeline{p}}
}

// For returns the shard pipeline responsible for rec.
func (sp *ShardedPipeline) For(rec *dataset.Record) *Pipeline {
	if len(sp.Shards) == 1 {
		return sp.Shards[0]
	}
	return sp.Shards[StreamOf(rec)]
}

// ClassifyRecord routes the record to its substream's pipeline.
func (sp *ShardedPipeline) ClassifyRecord(rec *dataset.Record) ClassifiedRecord {
	return sp.For(rec).ClassifyRecord(rec)
}

// ClassifyLine labels one bare NDR line (no record context to route
// by): the first shard whose parser matches the line classifies it,
// falling back to the first shard with a trained EBRC. Deterministic,
// and exact whenever the line's template was mined anywhere.
func (sp *ShardedPipeline) ClassifyLine(line string) (typ ndr.Type, ambiguous bool) {
	if len(sp.Shards) == 1 {
		return sp.Shards[0].ClassifyLine(line)
	}
	for _, p := range sp.Shards {
		if p.Parser.Match(line) != nil {
			return p.ClassifyLine(line)
		}
	}
	for _, p := range sp.Shards {
		if p.Classifier != nil {
			return p.ClassifyLine(line)
		}
	}
	return ndr.T16Unknown, false
}

// NumTemplates returns the number of mined Drain templates across all
// shards.
func (sp *ShardedPipeline) NumTemplates() int {
	n := 0
	for _, p := range sp.Shards {
		n += p.NumTemplates()
	}
	return n
}

// ManualLabelStats aggregates the per-shard labeling stats: total
// labeled templates, and covered NDR lines over total NDR lines.
func (sp *ShardedPipeline) ManualLabelStats() (labeled int, coverage float64) {
	covered, total := 0, 0
	for _, p := range sp.Shards {
		labeled += p.manualLabels
		covered += p.coveredLines
		total += p.totalLines
	}
	if total > 0 {
		coverage = float64(covered) / float64(total)
	}
	return labeled, coverage
}

// AmbiguousTemplates merges the shards' ambiguous templates by template
// text (summing counts) and normalizes the order: count descending,
// template ascending. The same normalization runs on every topology,
// so Table 6 is byte-identical however the corpus was sharded.
func (sp *ShardedPipeline) AmbiguousTemplates() []AmbiguousTemplate {
	byTmpl := map[string]int{}
	for _, p := range sp.Shards {
		for _, g := range p.Parser.Groups() {
			if p.groupAmbiguous[g.ID] {
				byTmpl[g.Template()] += g.Count
			}
		}
	}
	out := make([]AmbiguousTemplate, 0, len(byTmpl))
	for tmpl, n := range byTmpl {
		out = append(out, AmbiguousTemplate{Template: tmpl, Count: n})
	}
	SortRanked(out,
		func(t AmbiguousTemplate) float64 { return float64(t.Count) },
		func(t AmbiguousTemplate) string { return t.Template })
	return out
}

// Summary condenses the stack into the mergeable pipeline aggregate
// shipped inside partial snapshots.
func (sp *ShardedPipeline) Summary() PipelineSummary {
	covered, total := 0, 0
	labeled := 0
	for _, p := range sp.Shards {
		labeled += p.manualLabels
		covered += p.coveredLines
		total += p.totalLines
	}
	return PipelineSummary{
		Templates:    sp.NumTemplates(),
		Labeled:      labeled,
		CoveredLines: covered,
		TotalLines:   total,
		Ambiguous:    sp.AmbiguousTemplates(),
	}
}

// buildShardedPipeline trains the canonical NumStreams-shard stack over
// a record view in arrival order — the batch counterpart of the
// Incremental's per-shard builders.
func buildShardedPipeline(view dataset.Records, cfg PipelineConfig) *ShardedPipeline {
	var bs [NumStreams]*PipelineBuilder
	for s := range bs {
		bs[s] = NewPipelineBuilder(cfg)
	}
	for i := 0; i < view.Len(); i++ {
		rec := view.At(i)
		bs[StreamOf(rec)].Add(rec)
	}
	sp := &ShardedPipeline{Shards: make([]*Pipeline, NumStreams)}
	for s := range bs {
		sp.Shards[s] = bs[s].Finish()
	}
	return sp
}
