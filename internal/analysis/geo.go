package analysis

import (
	"repro/internal/dataset"
	"repro/internal/geo"
)

// MTACountry is one Figure-4 data point: distinct receiver-MTA IPs
// observed per country.
type MTACountry struct {
	Country string
	MTAs    int
	Share   float64
}

// mtaCollector accumulates Figure 4's distinct receiver-MTA IPs with
// their geolocated country. The same IP always geolocates to the same
// country, so first-wins insertion and set-union merge agree.
type mtaCollector struct {
	geo  *geo.DB
	seen map[string]string // ip -> country
}

func newMTACollector(db *geo.DB) *mtaCollector {
	return &mtaCollector{geo: db, seen: map[string]string{}}
}

func (mc *mtaCollector) Add(rec *dataset.Record, _ *ClassifiedRecord) {
	if mc.geo == nil {
		return
	}
	for _, ip := range rec.ToIP {
		if ip == "" {
			continue
		}
		if _, ok := mc.seen[ip]; ok {
			continue
		}
		cc, _, ok := mc.geo.Lookup(ip)
		if !ok {
			cc = "??"
		}
		mc.seen[ip] = cc
	}
}

func (mc *mtaCollector) Merge(other PartialCollector) error {
	o, ok := other.(*mtaCollector)
	if !ok {
		return mergeTypeError("mta", other)
	}
	for ip, cc := range o.seen {
		if _, dup := mc.seen[ip]; !dup {
			mc.seen[ip] = cc
		}
	}
	return nil
}

func (mc *mtaCollector) MarshalPartial() []byte {
	var e enc
	e.version(1)
	e.u64(uint64(len(mc.seen)))
	for _, ip := range sortedKeys(mc.seen) {
		e.str(ip)
		e.str(mc.seen[ip])
	}
	return e.buf
}

func (mc *mtaCollector) UnmarshalPartial(b []byte) error {
	d := dec{b: b}
	d.checkVersion("mta", 1)
	n := d.count()
	mc.seen = make(map[string]string, n)
	for i := 0; i < n; i++ {
		ip := d.str()
		mc.seen[ip] = d.str()
	}
	return d.err
}

func (mc *mtaCollector) result() []MTACountry {
	counts := map[string]int{}
	for _, cc := range mc.seen {
		counts[cc]++
	}
	total := len(mc.seen)
	out := make([]MTACountry, 0, len(counts))
	for cc, n := range counts {
		share := 0.0
		if total > 0 {
			share = float64(n) / float64(total)
		}
		out = append(out, MTACountry{Country: cc, MTAs: n, Share: share})
	}
	SortRanked(out,
		func(m MTACountry) float64 { return float64(m.MTAs) },
		func(m MTACountry) string { return m.Country })
	return out
}

// MTACountryDistribution computes Figure 4: the geographic distribution
// of receiver MTAs (distinct to_ip values), via the Env.Geo lookup the
// paper performed with ip-api.
func (a *Analysis) MTACountryDistribution() []MTACountry {
	if a.Env == nil || a.Env.Geo == nil {
		return nil
	}
	mc := newMTACollector(a.Env.Geo)
	a.visit(mc)
	return mc.result()
}
