package analysis

import "sort"

// MTACountry is one Figure-4 data point: distinct receiver-MTA IPs
// observed per country.
type MTACountry struct {
	Country string
	MTAs    int
	Share   float64
}

// MTACountryDistribution computes Figure 4: the geographic distribution
// of receiver MTAs (distinct to_ip values), via the Env.Geo lookup the
// paper performed with ip-api.
func (a *Analysis) MTACountryDistribution() []MTACountry {
	if a.Env == nil || a.Env.Geo == nil {
		return nil
	}
	seen := map[string]string{} // ip -> country
	for i := 0; i < a.Records.Len(); i++ {
		for _, ip := range a.Records.At(i).ToIP {
			if ip == "" {
				continue
			}
			if _, ok := seen[ip]; ok {
				continue
			}
			cc, _, ok := a.Env.Geo.Lookup(ip)
			if !ok {
				cc = "??"
			}
			seen[ip] = cc
		}
	}
	counts := map[string]int{}
	for _, cc := range seen {
		counts[cc]++
	}
	total := len(seen)
	out := make([]MTACountry, 0, len(counts))
	for cc, n := range counts {
		share := 0.0
		if total > 0 {
			share = float64(n) / float64(total)
		}
		out = append(out, MTACountry{Country: cc, MTAs: n, Share: share})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].MTAs != out[j].MTAs {
			return out[i].MTAs > out[j].MTAs
		}
		return out[i].Country < out[j].Country
	})
	return out
}
