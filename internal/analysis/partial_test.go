package analysis

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/dataset"
)

// partitionCorpus splits records by substream ownership — the same
// routing a cluster router, bounceanalyze -shards, and a shard node's
// admission check all use.
func partitionCorpus(records []dataset.Record, n int) [][]dataset.Record {
	parts := make([][]dataset.Record, n)
	for i := range records {
		own := OwnerOf(&records[i], n)
		parts[own] = append(parts[own], records[i])
	}
	return parts
}

// shardBlobs analyzes each partition independently and marshals its
// partial set — what a shard node serves on /v1/partial.
func shardBlobs(t *testing.T, parts [][]dataset.Record) [][]byte {
	t.Helper()
	blobs := make([][]byte, len(parts))
	for i, part := range parts {
		blobs[i] = New(part, nil).Partials().Marshal()
	}
	return blobs
}

func mergeBlobs(t *testing.T, blobs [][]byte, order []int) *PartialSet {
	t.Helper()
	var merged *PartialSet
	for _, i := range order {
		ps, err := UnmarshalPartialSet(blobs[i], nil)
		if err != nil {
			t.Fatalf("decode shard %d: %v", i, err)
		}
		if merged == nil {
			merged = ps
			continue
		}
		if err := merged.Merge(ps); err != nil {
			t.Fatalf("merge shard %d: %v", i, err)
		}
	}
	return merged
}

// TestPartialMarshalRoundTrip: decode(encode(x)) re-encodes to the
// same bytes, and the decoded set answers every result method the
// same way the original analysis does.
func TestPartialMarshalRoundTrip(t *testing.T) {
	records := testCorpus()
	a := New(records, nil)
	ps := a.Partials()
	b := ps.Marshal()
	rt, err := UnmarshalPartialSet(b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Total != len(records) {
		t.Fatalf("round-tripped Total = %d, want %d", rt.Total, len(records))
	}
	b2 := rt.Marshal()
	if !bytes.Equal(b, b2) {
		t.Fatalf("re-encode differs: %d vs %d bytes", len(b), len(b2))
	}
}

// TestPartialMergeShardIdentity is the core property: for every shard
// count and every (random) merge order, the merged partial set is
// byte-identical to the unsharded one. Byte equality of the canonical
// encoding implies every report derived from it is identical too.
func TestPartialMergeShardIdentity(t *testing.T) {
	records := testCorpus()
	want := New(records, nil).Partials().Marshal()
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 4, 16} {
		blobs := shardBlobs(t, partitionCorpus(records, n))
		for trial := 0; trial < 4; trial++ {
			order := rng.Perm(n)
			merged := mergeBlobs(t, blobs, order)
			if got := merged.Marshal(); !bytes.Equal(got, want) {
				t.Fatalf("shards=%d order=%v: merged set diverges from unsharded (%d vs %d bytes)",
					n, order, len(got), len(want))
			}
		}
	}
}

// TestPartialMergeAssociative: tree-shaped merges (pairs first, then
// pair results) equal the flat left-fold.
func TestPartialMergeAssociative(t *testing.T) {
	records := testCorpus()
	blobs := shardBlobs(t, partitionCorpus(records, 4))
	flat := mergeBlobs(t, blobs, []int{0, 1, 2, 3}).Marshal()

	left := mergeBlobs(t, blobs, []int{0, 1})
	right := mergeBlobs(t, blobs, []int{2, 3})
	if err := left.Merge(right); err != nil {
		t.Fatal(err)
	}
	if got := left.Marshal(); !bytes.Equal(got, flat) {
		t.Fatalf("tree merge diverges from flat merge (%d vs %d bytes)", len(got), len(flat))
	}
}

// TestPartialMergeEmptyShardIdentity: merging a fresh (zero-record)
// partial set changes nothing — empty shards in a cluster are free.
func TestPartialMergeEmptyShardIdentity(t *testing.T) {
	records := testCorpus()
	ps := New(records, nil).Partials()
	want := ps.Marshal()
	if err := ps.Merge(NewPartialSet(nil)); err != nil {
		t.Fatal(err)
	}
	if got := ps.Marshal(); !bytes.Equal(got, want) {
		t.Fatal("merging an empty partial set changed the encoding")
	}
}

// TestUnmarshalPartialHostile: every truncation errors cleanly, and
// seeded random byte flips never panic — the coordinator decodes
// whatever a shard (or an impostor) sends.
func TestUnmarshalPartialHostile(t *testing.T) {
	records := testCorpus()
	b := New(records, nil).Partials().Marshal()
	for i := 0; i < len(b); i += 13 {
		if _, err := UnmarshalPartialSet(b[:i], nil); err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded without error", i, len(b))
		}
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 300; trial++ {
		c := append([]byte(nil), b...)
		c[rng.Intn(len(c))] ^= byte(1 + rng.Intn(255))
		// Flips that land in value bytes may decode; the property under
		// test is "no panic, no hang" on arbitrary corruption.
		UnmarshalPartialSet(c, nil)
	}
}
