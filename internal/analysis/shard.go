package analysis

import (
	"hash/fnv"

	"repro/internal/dataset"
)

// NumStreams is the fixed number of content-hash substreams every
// corpus is partitioned into — mirroring the delivery engine's 16-way
// sharding discipline. Each substream trains its own classification
// pipeline in substream arrival order, which is what makes a sharded
// deployment byte-identical to a single node: any splitter that
// preserves per-record order also preserves every substream's internal
// order, so substream pipelines (and therefore verdicts) are the same
// no matter how many nodes the stream is spread across.
const NumStreams = 16

// StreamOf routes a record to its substream by FNV-1a over the fields
// that survive a JSON round trip byte-identically: sender, receiver,
// and the second-granularity start time. Records carry no message ID,
// so content addressing is the routing key.
func StreamOf(rec *dataset.Record) int {
	h := fnv.New64a()
	h.Write([]byte(rec.From))
	h.Write([]byte{0})
	h.Write([]byte(rec.To))
	h.Write([]byte{0})
	var ts [8]byte
	u := uint64(rec.StartTime.Unix())
	for i := 0; i < 8; i++ {
		ts[i] = byte(u >> (8 * i))
	}
	h.Write(ts[:])
	return int(h.Sum64() % NumStreams)
}

// OwnerOf maps a record to the cluster node that owns it in an
// n-node topology: node k owns the substreams s with s mod n == k.
// Ownership is substream-aligned (never splitting one substream across
// nodes), which keeps per-substream training order intact on every
// topology. n must be ≥ 1; values above NumStreams leave the extra
// nodes empty.
func OwnerOf(rec *dataset.Record, n int) int {
	if n <= 1 {
		return 0
	}
	return StreamOf(rec) % n
}
