package analysis

import (
	"reflect"
	"testing"

	"repro/internal/dataset"
)

// TestNewFromSourceMatchesNew: the single-pass streaming constructor
// must produce the same analysis as the slice constructor — same
// classifications, same rank, same Table 1.
func TestNewFromSourceMatchesNew(t *testing.T) {
	records := testCorpus()
	slice := New(records, nil)

	pipe := dataset.NewPipe(8)
	go func() {
		for i := range records {
			pipe.Write(&records[i])
		}
		pipe.Close()
	}()
	streamed := NewFromSource(pipe, DefaultPipelineConfig(), nil)

	if streamed.Records.Len() != slice.Records.Len() {
		t.Fatalf("streamed %d records, slice %d", streamed.Records.Len(), slice.Records.Len())
	}
	if !reflect.DeepEqual(streamed.Classified, slice.Classified) {
		t.Fatal("classifications differ between streaming and slice constructors")
	}
	if !reflect.DeepEqual(streamed.InEmailRank(), slice.InEmailRank()) {
		t.Fatal("popularity rank differs between streaming and slice constructors")
	}
	if !reflect.DeepEqual(streamed.TypeDistribution(), slice.TypeDistribution()) {
		t.Fatal("Table 1 differs between streaming and slice constructors")
	}
	if !reflect.DeepEqual(streamed.Overview(), slice.Overview()) {
		t.Fatal("overview differs between streaming and slice constructors")
	}
}

// TestCollectStreamMatchesVisit: feeding a record stream through
// collectors with a pre-trained pipeline must reproduce the stored-
// corpus aggregations without retaining records.
func TestCollectStreamMatchesVisit(t *testing.T) {
	records := testCorpus()
	a := New(records, nil)

	oc := &overviewCollector{}
	tc := newTypeDistCollector()
	dc := newDomainCollector()
	n := CollectStream(dataset.NewSliceSource(records), a.Pipeline, oc, tc, dc)
	if n != len(records) {
		t.Fatalf("CollectStream consumed %d records, want %d", n, len(records))
	}
	if got, want := oc.result(), a.Overview(); !reflect.DeepEqual(got, want) {
		t.Fatalf("streamed overview %+v, want %+v", got, want)
	}
	if !reflect.DeepEqual(tc.counts, a.TypeDistribution()) {
		t.Fatal("streamed Table 1 differs from stored-corpus Table 1")
	}
	if !reflect.DeepEqual(dc.result(10), a.TopDomains(10)) {
		t.Fatal("streamed Table 3 differs from stored-corpus Table 3")
	}
}
