package analysis

import (
	"sort"

	"repro/internal/dataset"
	"repro/internal/geo"
	"repro/internal/ndr"
)

// DomainStats is one Table-3 row.
type DomainStats struct {
	Domain string
	Emails int
	Hard   int
	Soft   int
}

// HardPct returns the hard-bounce percentage.
func (d DomainStats) HardPct() float64 { return pct(d.Hard, d.Emails) }

// SoftPct returns the soft-bounce percentage.
func (d DomainStats) SoftPct() float64 { return pct(d.Soft, d.Emails) }

// domainCollector aggregates Table 3 in one pass.
type domainCollector struct {
	agg map[string]*DomainStats
}

func newDomainCollector() *domainCollector {
	return &domainCollector{agg: map[string]*DomainStats{}}
}

func (dc *domainCollector) Add(rec *dataset.Record, c *ClassifiedRecord) {
	d := dc.agg[rec.ToDomain()]
	if d == nil {
		d = &DomainStats{Domain: rec.ToDomain()}
		dc.agg[rec.ToDomain()] = d
	}
	d.Emails++
	switch c.Degree {
	case dataset.HardBounced:
		d.Hard++
	case dataset.SoftBounced:
		d.Soft++
	}
}

func (dc *domainCollector) result(n int) []DomainStats {
	out := make([]DomainStats, 0, len(dc.agg))
	for _, d := range dc.agg {
		out = append(out, *d)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Emails != out[j].Emails {
			return out[i].Emails > out[j].Emails
		}
		return out[i].Domain < out[j].Domain
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// TopDomains returns Table 3: the n most popular receiver domains with
// their bounce ratios.
func (a *Analysis) TopDomains(n int) []DomainStats {
	dc := newDomainCollector()
	a.visit(dc)
	return dc.result(n)
}

// ASStats is one Table-4 row.
type ASStats struct {
	ASN    int
	Org    string
	Emails int
	Hard   int
	Soft   int
}

// HardPct returns the hard-bounce percentage.
func (s ASStats) HardPct() float64 { return pct(s.Hard, s.Emails) }

// SoftPct returns the soft-bounce percentage.
func (s ASStats) SoftPct() float64 { return pct(s.Soft, s.Emails) }

// asCollector aggregates Table 4 in one pass.
type asCollector struct {
	geo *geo.DB
	agg map[int]*ASStats
}

func newASCollector(db *geo.DB) *asCollector {
	return &asCollector{geo: db, agg: map[int]*ASStats{}}
}

func (ac *asCollector) Add(rec *dataset.Record, c *ClassifiedRecord) {
	ip := lastNonEmpty(rec.ToIP)
	if ip == "" {
		return
	}
	_, asn, ok := ac.geo.Lookup(ip)
	if !ok {
		return
	}
	s := ac.agg[asn]
	if s == nil {
		s = &ASStats{ASN: asn, Org: ac.geo.ASOrg(asn)}
		ac.agg[asn] = s
	}
	s.Emails++
	switch c.Degree {
	case dataset.HardBounced:
		s.Hard++
	case dataset.SoftBounced:
		s.Soft++
	}
}

func (ac *asCollector) result(n int) []ASStats {
	out := make([]ASStats, 0, len(ac.agg))
	for _, s := range ac.agg {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Emails != out[j].Emails {
			return out[i].Emails > out[j].Emails
		}
		return out[i].ASN < out[j].ASN
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// TopASes returns Table 4: ASes of receiver MTAs by email volume.
// Requires Env.Geo; attempts with no receiver IP are skipped.
func (a *Analysis) TopASes(n int) []ASStats {
	if a.Env == nil || a.Env.Geo == nil {
		return nil
	}
	ac := newASCollector(a.Env.Geo)
	a.visit(ac)
	return ac.result(n)
}

// CountryStats is one Table-5 row.
type CountryStats struct {
	Country  string
	Emails   int
	Hard     int
	Soft     int
	MajorCat ndr.Category // dominant bounce category
	MajorTyp ndr.Type     // dominant bounce type
	// MajorTypShare is the dominant type's share of the country's
	// bounced emails.
	MajorTypShare float64
}

// HardPct returns the hard-bounce percentage.
func (s CountryStats) HardPct() float64 { return pct(s.Hard, s.Emails) }

// SoftPct returns the soft-bounce percentage.
func (s CountryStats) SoftPct() float64 { return pct(s.Soft, s.Emails) }

// countryCollector aggregates Table 5 in one pass.
type countryCollector struct {
	geo  *geo.DB
	byCC map[string]*countryAgg
}

type countryAgg struct {
	CountryStats
	types map[ndr.Type]int
}

func newCountryCollector(db *geo.DB) *countryCollector {
	return &countryCollector{geo: db, byCC: map[string]*countryAgg{}}
}

func (cc *countryCollector) Add(rec *dataset.Record, c *ClassifiedRecord) {
	ip := lastNonEmpty(rec.ToIP)
	country := ""
	if ip != "" {
		country, _, _ = cc.geo.Lookup(ip)
	}
	if country == "" {
		return
	}
	s := cc.byCC[country]
	if s == nil {
		s = &countryAgg{CountryStats: CountryStats{Country: country}, types: map[ndr.Type]int{}}
		cc.byCC[country] = s
	}
	s.Emails++
	switch c.Degree {
	case dataset.HardBounced:
		s.Hard++
	case dataset.SoftBounced:
		s.Soft++
	}
	for _, t := range c.Types {
		s.types[t]++
	}
}

func (cc *countryCollector) result(minEmails int) []CountryStats {
	var out []CountryStats
	for _, s := range cc.byCC {
		if s.Emails < minEmails {
			continue
		}
		best, bestN := ndr.TNone, 0
		for _, t := range ndr.AllTypes {
			if s.types[t] > bestN {
				best, bestN = t, s.types[t]
			}
		}
		s.MajorTyp = best
		s.MajorCat = best.Category()
		if b := s.Hard + s.Soft; b > 0 {
			s.MajorTypShare = float64(bestN) / float64(b)
		}
		out = append(out, s.CountryStats)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Country < out[j].Country })
	return out
}

// CountryBounces aggregates per receiver-MTA country, excluding
// countries below minEmails (the paper's 1,000-email representativeness
// threshold, scaled by the caller). Requires Env.Geo.
func (a *Analysis) CountryBounces(minEmails int) []CountryStats {
	if a.Env == nil || a.Env.Geo == nil {
		return nil
	}
	cc := newCountryCollector(a.Env.Geo)
	a.visit(cc)
	return cc.result(minEmails)
}

// TopByHard / TopBySoft sort country stats for the two halves of
// Table 5.
func TopByHard(stats []CountryStats, n int) []CountryStats {
	out := append([]CountryStats(nil), stats...)
	sort.Slice(out, func(i, j int) bool { return out[i].HardPct() > out[j].HardPct() })
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// TopBySoft sorts countries by soft-bounce percentage.
func TopBySoft(stats []CountryStats, n int) []CountryStats {
	out := append([]CountryStats(nil), stats...)
	sort.Slice(out, func(i, j int) bool { return out[i].SoftPct() > out[j].SoftPct() })
	if n < len(out) {
		out = out[:n]
	}
	return out
}

func lastNonEmpty(xs []string) string {
	for i := len(xs) - 1; i >= 0; i-- {
		if xs[i] != "" {
			return xs[i]
		}
	}
	return ""
}

func pct(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return 100 * float64(num) / float64(den)
}
