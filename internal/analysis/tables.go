package analysis

import (
	"sort"

	"repro/internal/dataset"
	"repro/internal/geo"
	"repro/internal/ndr"
)

// DomainStats is one Table-3 row.
type DomainStats struct {
	Domain string
	Emails int
	Hard   int
	Soft   int
}

// HardPct returns the hard-bounce percentage.
func (d DomainStats) HardPct() float64 { return pct(d.Hard, d.Emails) }

// SoftPct returns the soft-bounce percentage.
func (d DomainStats) SoftPct() float64 { return pct(d.Soft, d.Emails) }

// domainCollector aggregates Table 3 in one pass.
type domainCollector struct {
	agg map[string]*DomainStats
}

func newDomainCollector() *domainCollector {
	return &domainCollector{agg: map[string]*DomainStats{}}
}

func (dc *domainCollector) Add(rec *dataset.Record, c *ClassifiedRecord) {
	d := dc.agg[rec.ToDomain()]
	if d == nil {
		d = &DomainStats{Domain: rec.ToDomain()}
		dc.agg[rec.ToDomain()] = d
	}
	d.Emails++
	switch c.Degree {
	case dataset.HardBounced:
		d.Hard++
	case dataset.SoftBounced:
		d.Soft++
	}
}

func (dc *domainCollector) Merge(other PartialCollector) error {
	o, ok := other.(*domainCollector)
	if !ok {
		return mergeTypeError("domain", other)
	}
	for dom, s := range o.agg {
		d := dc.agg[dom]
		if d == nil {
			cp := *s
			dc.agg[dom] = &cp
			continue
		}
		d.Emails += s.Emails
		d.Hard += s.Hard
		d.Soft += s.Soft
	}
	return nil
}

func (dc *domainCollector) MarshalPartial() []byte {
	var e enc
	e.version(1)
	e.u64(uint64(len(dc.agg)))
	for _, dom := range sortedKeys(dc.agg) {
		d := dc.agg[dom]
		e.str(dom)
		e.intv(d.Emails)
		e.intv(d.Hard)
		e.intv(d.Soft)
	}
	return e.buf
}

func (dc *domainCollector) UnmarshalPartial(b []byte) error {
	d := dec{b: b}
	d.checkVersion("domain", 1)
	n := d.count()
	dc.agg = make(map[string]*DomainStats, n)
	for i := 0; i < n; i++ {
		dom := d.str()
		dc.agg[dom] = &DomainStats{
			Domain: dom, Emails: d.intv(), Hard: d.intv(), Soft: d.intv(),
		}
	}
	return d.err
}

func (dc *domainCollector) result(n int) []DomainStats {
	out := make([]DomainStats, 0, len(dc.agg))
	for _, d := range dc.agg {
		out = append(out, *d)
	}
	SortRanked(out,
		func(d DomainStats) float64 { return float64(d.Emails) },
		func(d DomainStats) string { return d.Domain })
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// TopDomains returns Table 3: the n most popular receiver domains with
// their bounce ratios.
func (a *Analysis) TopDomains(n int) []DomainStats {
	dc := newDomainCollector()
	a.visit(dc)
	return dc.result(n)
}

// ASStats is one Table-4 row.
type ASStats struct {
	ASN    int
	Org    string
	Emails int
	Hard   int
	Soft   int
}

// HardPct returns the hard-bounce percentage.
func (s ASStats) HardPct() float64 { return pct(s.Hard, s.Emails) }

// SoftPct returns the soft-bounce percentage.
func (s ASStats) SoftPct() float64 { return pct(s.Soft, s.Emails) }

// asCollector aggregates Table 4 in one pass. geo may be nil, in which
// case Add is a no-op (the decode/merge side never calls Add).
type asCollector struct {
	geo *geo.DB
	agg map[int]*ASStats
}

func newASCollector(db *geo.DB) *asCollector {
	return &asCollector{geo: db, agg: map[int]*ASStats{}}
}

func (ac *asCollector) Add(rec *dataset.Record, c *ClassifiedRecord) {
	if ac.geo == nil {
		return
	}
	ip := lastNonEmpty(rec.ToIP)
	if ip == "" {
		return
	}
	_, asn, ok := ac.geo.Lookup(ip)
	if !ok {
		return
	}
	s := ac.agg[asn]
	if s == nil {
		s = &ASStats{ASN: asn, Org: ac.geo.ASOrg(asn)}
		ac.agg[asn] = s
	}
	s.Emails++
	switch c.Degree {
	case dataset.HardBounced:
		s.Hard++
	case dataset.SoftBounced:
		s.Soft++
	}
}

func (ac *asCollector) Merge(other PartialCollector) error {
	o, ok := other.(*asCollector)
	if !ok {
		return mergeTypeError("as", other)
	}
	for asn, s := range o.agg {
		t := ac.agg[asn]
		if t == nil {
			cp := *s
			ac.agg[asn] = &cp
			continue
		}
		t.Emails += s.Emails
		t.Hard += s.Hard
		t.Soft += s.Soft
	}
	return nil
}

func (ac *asCollector) MarshalPartial() []byte {
	var e enc
	e.version(1)
	e.u64(uint64(len(ac.agg)))
	for _, asn := range sortedIntKeys(ac.agg) {
		s := ac.agg[asn]
		e.intv(asn)
		e.str(s.Org)
		e.intv(s.Emails)
		e.intv(s.Hard)
		e.intv(s.Soft)
	}
	return e.buf
}

func (ac *asCollector) UnmarshalPartial(b []byte) error {
	d := dec{b: b}
	d.checkVersion("as", 1)
	n := d.count()
	ac.agg = make(map[int]*ASStats, n)
	for i := 0; i < n; i++ {
		asn := d.intv()
		ac.agg[asn] = &ASStats{
			ASN: asn, Org: d.str(), Emails: d.intv(), Hard: d.intv(), Soft: d.intv(),
		}
	}
	return d.err
}

func (ac *asCollector) result(n int) []ASStats {
	out := make([]ASStats, 0, len(ac.agg))
	for _, s := range ac.agg {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Emails != out[j].Emails {
			return out[i].Emails > out[j].Emails
		}
		return out[i].ASN < out[j].ASN
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// TopASes returns Table 4: ASes of receiver MTAs by email volume.
// Requires Env.Geo; attempts with no receiver IP are skipped.
func (a *Analysis) TopASes(n int) []ASStats {
	if a.Env == nil || a.Env.Geo == nil {
		return nil
	}
	ac := newASCollector(a.Env.Geo)
	a.visit(ac)
	return ac.result(n)
}

// CountryStats is one Table-5 row.
type CountryStats struct {
	Country  string
	Emails   int
	Hard     int
	Soft     int
	MajorCat ndr.Category // dominant bounce category
	MajorTyp ndr.Type     // dominant bounce type
	// MajorTypShare is the dominant type's share of the country's
	// bounced emails.
	MajorTypShare float64
}

// HardPct returns the hard-bounce percentage.
func (s CountryStats) HardPct() float64 { return pct(s.Hard, s.Emails) }

// SoftPct returns the soft-bounce percentage.
func (s CountryStats) SoftPct() float64 { return pct(s.Soft, s.Emails) }

// countryCollector aggregates Table 5 in one pass.
type countryCollector struct {
	geo  *geo.DB
	byCC map[string]*countryAgg
}

type countryAgg struct {
	CountryStats
	types map[ndr.Type]int
}

func newCountryCollector(db *geo.DB) *countryCollector {
	return &countryCollector{geo: db, byCC: map[string]*countryAgg{}}
}

func (cc *countryCollector) Add(rec *dataset.Record, c *ClassifiedRecord) {
	if cc.geo == nil {
		return
	}
	ip := lastNonEmpty(rec.ToIP)
	country := ""
	if ip != "" {
		country, _, _ = cc.geo.Lookup(ip)
	}
	if country == "" {
		return
	}
	s := cc.byCC[country]
	if s == nil {
		s = &countryAgg{CountryStats: CountryStats{Country: country}, types: map[ndr.Type]int{}}
		cc.byCC[country] = s
	}
	s.Emails++
	switch c.Degree {
	case dataset.HardBounced:
		s.Hard++
	case dataset.SoftBounced:
		s.Soft++
	}
	for _, t := range c.Types {
		s.types[t]++
	}
}

func (cc *countryCollector) Merge(other PartialCollector) error {
	o, ok := other.(*countryCollector)
	if !ok {
		return mergeTypeError("country", other)
	}
	for country, s := range o.byCC {
		t := cc.byCC[country]
		if t == nil {
			t = &countryAgg{CountryStats: CountryStats{Country: country}, types: map[ndr.Type]int{}}
			cc.byCC[country] = t
		}
		t.Emails += s.Emails
		t.Hard += s.Hard
		t.Soft += s.Soft
		for typ, n := range s.types {
			t.types[typ] += n
		}
	}
	return nil
}

func (cc *countryCollector) MarshalPartial() []byte {
	var e enc
	e.version(1)
	e.u64(uint64(len(cc.byCC)))
	for _, country := range sortedKeys(cc.byCC) {
		s := cc.byCC[country]
		e.str(country)
		e.intv(s.Emails)
		e.intv(s.Hard)
		e.intv(s.Soft)
		types := make(map[int]int, len(s.types))
		for t, n := range s.types {
			types[int(t)] = n
		}
		e.u64(uint64(len(types)))
		for _, t := range sortedIntKeys(types) {
			e.intv(t)
			e.intv(types[t])
		}
	}
	return e.buf
}

func (cc *countryCollector) UnmarshalPartial(b []byte) error {
	d := dec{b: b}
	d.checkVersion("country", 1)
	n := d.count()
	cc.byCC = make(map[string]*countryAgg, n)
	for i := 0; i < n; i++ {
		country := d.str()
		s := &countryAgg{CountryStats: CountryStats{Country: country}}
		s.Emails = d.intv()
		s.Hard = d.intv()
		s.Soft = d.intv()
		tn := d.count()
		s.types = make(map[ndr.Type]int, tn)
		for j := 0; j < tn; j++ {
			t := ndr.Type(d.intv())
			s.types[t] = d.intv()
		}
		cc.byCC[country] = s
	}
	return d.err
}

func (cc *countryCollector) result(minEmails int) []CountryStats {
	var out []CountryStats
	for _, s := range cc.byCC {
		if s.Emails < minEmails {
			continue
		}
		best, bestN := ndr.TNone, 0
		for _, t := range ndr.AllTypes {
			if s.types[t] > bestN {
				best, bestN = t, s.types[t]
			}
		}
		s.MajorTyp = best
		s.MajorCat = best.Category()
		if b := s.Hard + s.Soft; b > 0 {
			s.MajorTypShare = float64(bestN) / float64(b)
		}
		out = append(out, s.CountryStats)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Country < out[j].Country })
	return out
}

// CountryBounces aggregates per receiver-MTA country, excluding
// countries below minEmails (the paper's 1,000-email representativeness
// threshold, scaled by the caller). Requires Env.Geo.
func (a *Analysis) CountryBounces(minEmails int) []CountryStats {
	if a.Env == nil || a.Env.Geo == nil {
		return nil
	}
	cc := newCountryCollector(a.Env.Geo)
	a.visit(cc)
	return cc.result(minEmails)
}

// TopByHard / TopBySoft sort country stats for the two halves of
// Table 5.
func TopByHard(stats []CountryStats, n int) []CountryStats {
	out := append([]CountryStats(nil), stats...)
	sort.Slice(out, func(i, j int) bool { return out[i].HardPct() > out[j].HardPct() })
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// TopBySoft sorts countries by soft-bounce percentage.
func TopBySoft(stats []CountryStats, n int) []CountryStats {
	out := append([]CountryStats(nil), stats...)
	sort.Slice(out, func(i, j int) bool { return out[i].SoftPct() > out[j].SoftPct() })
	if n < len(out) {
		out = out[:n]
	}
	return out
}

func lastNonEmpty(xs []string) string {
	for i := len(xs) - 1; i >= 0; i-- {
		if xs[i] != "" {
			return xs[i]
		}
	}
	return ""
}

func pct(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return 100 * float64(num) / float64(den)
}
