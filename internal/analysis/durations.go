package analysis

import (
	"sort"
	"time"

	"repro/internal/ndr"
	"repro/internal/stats"
)

// EpisodeStats summarizes misconfiguration episodes inferred from the
// dataset for one entity class (Figure 7).
type EpisodeStats struct {
	Entities     int       // entities with at least one episode
	AlwaysBroken int       // never observed recovering
	Recurrent    int       // ≥2 separate episodes
	Durations    []float64 // completed episode durations in days
}

// MeanDays returns the mean completed-episode duration.
func (e EpisodeStats) MeanDays() float64 { return stats.Mean(e.Durations) }

// MedianDays returns the median completed-episode duration.
func (e EpisodeStats) MedianDays() float64 { return stats.Median(e.Durations) }

// ShareAtLeast returns the fraction of completed episodes lasting at
// least d days.
func (e EpisodeStats) ShareAtLeast(d float64) float64 {
	return stats.FractionAtLeast(e.Durations, d)
}

// DurationsFigure is Figure 7's three distributions.
type DurationsFigure struct {
	AuthDKIMSPF EpisodeStats // per sender domain (paper: 12-day mean fix)
	MXRecords   EpisodeStats // per receiver domain (mostly <1 day)
	MailboxFull EpisodeStats // per recipient (86-day mean, >51% ≥30d)
}

// event is a timestamped good/bad observation for one entity.
type event struct {
	at  time.Time
	bad bool
}

// episodize converts an entity's event sequence into episode durations:
// an episode starts at the first bad event and completes at the first
// subsequent good event. Entities whose final episode never completes
// count as always-broken when they had exactly one (unfinished)
// episode.
func episodize(events []event) (durations []float64, episodes int, completedAll bool) {
	sort.Slice(events, func(i, j int) bool { return events[i].at.Before(events[j].at) })
	var start time.Time
	inEpisode := false
	completedAll = true
	for _, ev := range events {
		if ev.bad {
			if !inEpisode {
				inEpisode = true
				start = ev.at
				episodes++
			}
			continue
		}
		if inEpisode {
			durations = append(durations, ev.at.Sub(start).Hours()/24)
			inEpisode = false
		}
	}
	if inEpisode {
		completedAll = false
	}
	return durations, episodes, completedAll
}

// Durations infers Figure 7 from the dataset alone: misconfiguration
// periods are bounded by observed bounces of the relevant type and the
// next observed success for the same entity.
func (a *Analysis) Durations(det *Detections) DurationsFigure {
	if det == nil {
		det = a.Detect()
	}
	var fig DurationsFigure

	// --- DKIM/SPF (T3) per sender domain. A "good" event is a success
	// from the sender at a receiver that previously T3-bounced it.
	authEvents := map[string][]event{}
	t3Receivers := map[string]map[string]bool{}
	for i := 0; i < a.Records.Len(); i++ {
		rec := a.Records.At(i)
		from := rec.FromDomain()
		if a.Classified[i].HasType(ndr.T3AuthFail) {
			authEvents[from] = append(authEvents[from], event{rec.StartTime, true})
			if t3Receivers[from] == nil {
				t3Receivers[from] = map[string]bool{}
			}
			t3Receivers[from][rec.ToDomain()] = true
		}
	}
	for i := 0; i < a.Records.Len(); i++ {
		rec := a.Records.At(i)
		from := rec.FromDomain()
		if rec.Succeeded() && t3Receivers[from][rec.ToDomain()] {
			authEvents[from] = append(authEvents[from], event{rec.EndTime, false})
		}
	}
	fig.AuthDKIMSPF = summarize(authEvents)

	// --- MX errors (T2, excluding typo domains) per receiver domain.
	// First pass finds affected domains, second collects their good/bad
	// events (successes before the first bounce delimit episodes too).
	mxEvents := map[string][]event{}
	t2Domains := map[string]bool{}
	for i := 0; i < a.Records.Len(); i++ {
		if a.Classified[i].HasType(ndr.T2ReceiverDNS) {
			to := a.Records.At(i).ToDomain()
			if _, isTypo := det.DomainTypos[to]; !isTypo {
				t2Domains[to] = true
			}
		}
	}
	for i := 0; i < a.Records.Len(); i++ {
		rec := a.Records.At(i)
		to := rec.ToDomain()
		if !t2Domains[to] {
			continue
		}
		if a.Classified[i].HasType(ndr.T2ReceiverDNS) {
			mxEvents[to] = append(mxEvents[to], event{rec.StartTime, true})
		} else if rec.Succeeded() {
			mxEvents[to] = append(mxEvents[to], event{rec.EndTime, false})
		}
	}
	fig.MXRecords = summarize(mxEvents)

	// --- Mailbox full (T9) per recipient address.
	fullEvents := map[string][]event{}
	t9Addrs := det.FullMailboxes
	for i := 0; i < a.Records.Len(); i++ {
		rec := a.Records.At(i)
		if !t9Addrs[rec.To] {
			continue
		}
		if a.Classified[i].HasType(ndr.T9MailboxFull) {
			fullEvents[rec.To] = append(fullEvents[rec.To], event{rec.StartTime, true})
		} else if rec.Succeeded() {
			fullEvents[rec.To] = append(fullEvents[rec.To], event{rec.EndTime, false})
		}
	}
	fig.MailboxFull = summarize(fullEvents)
	return fig
}

func summarize(events map[string][]event) EpisodeStats {
	var s EpisodeStats
	for _, evs := range events {
		durations, episodes, completed := episodize(evs)
		if episodes == 0 {
			continue
		}
		s.Entities++
		s.Durations = append(s.Durations, durations...)
		if !completed && len(durations) == 0 {
			s.AlwaysBroken++
		}
		if episodes >= 2 {
			s.Recurrent++
		}
	}
	sort.Float64s(s.Durations)
	return s
}
