package analysis

import (
	"sort"
	"time"

	"repro/internal/dataset"
	"repro/internal/ndr"
	"repro/internal/stats"
)

// EpisodeStats summarizes misconfiguration episodes inferred from the
// dataset for one entity class (Figure 7).
type EpisodeStats struct {
	Entities     int       // entities with at least one episode
	AlwaysBroken int       // never observed recovering
	Recurrent    int       // ≥2 separate episodes
	Durations    []float64 // completed episode durations in days
}

// MeanDays returns the mean completed-episode duration.
func (e EpisodeStats) MeanDays() float64 { return stats.Mean(e.Durations) }

// MedianDays returns the median completed-episode duration.
func (e EpisodeStats) MedianDays() float64 { return stats.Median(e.Durations) }

// ShareAtLeast returns the fraction of completed episodes lasting at
// least d days.
func (e EpisodeStats) ShareAtLeast(d float64) float64 {
	return stats.FractionAtLeast(e.Durations, d)
}

// DurationsFigure is Figure 7's three distributions.
type DurationsFigure struct {
	AuthDKIMSPF EpisodeStats // per sender domain (paper: 12-day mean fix)
	MXRecords   EpisodeStats // per receiver domain (mostly <1 day)
	MailboxFull EpisodeStats // per recipient (86-day mean, >51% ≥30d)
}

// event is a timestamped good/bad observation for one entity; the
// timestamp is UnixNano so partials carry it verbatim on the wire.
type event struct {
	at  int64
	bad bool
}

// episodize converts an entity's event sequence into episode durations:
// an episode starts at the first bad event and completes at the first
// subsequent good event. Entities whose final episode never completes
// count as always-broken when they had exactly one (unfinished)
// episode. The sort is a total order — time ascending, bad before good
// at equal times — so shard splits cannot reorder tied events.
func episodize(events []event) (durations []float64, episodes int, completedAll bool) {
	sort.Slice(events, func(i, j int) bool {
		if events[i].at != events[j].at {
			return events[i].at < events[j].at
		}
		return events[i].bad && !events[j].bad
	})
	var start int64
	inEpisode := false
	completedAll = true
	for _, ev := range events {
		if ev.bad {
			if !inEpisode {
				inEpisode = true
				start = ev.at
				episodes++
			}
			continue
		}
		if inEpisode {
			durations = append(durations, time.Duration(ev.at-start).Hours()/24)
			inEpisode = false
		}
	}
	if inEpisode {
		completedAll = false
	}
	return durations, episodes, completedAll
}

// durationsCollector accumulates the raw timestamps Figure 7 needs.
// Which entities count (and which T2 domains are typo-excluded) depends
// on the merged detections, so Add records timestamps per entity and
// resolve assembles the event sequences afterwards.
type durationsCollector struct {
	authBad  map[string][]int64         // sender domain -> T3 bounce starts
	authRcvr map[string]map[string]bool // sender domain -> receivers that T3-bounced it
	authOk   map[string][]int64         // "fromDom\x00toDom" -> success ends
	mxBad    map[string][]int64         // receiver domain -> T2 bounce starts
	okByDom  map[string][]int64         // receiver domain -> non-T2 success ends
	fullBad  map[string][]int64         // recipient -> T9 bounce starts
	okByAddr map[string][]int64         // recipient -> non-T9 success ends
}

func newDurationsCollector() *durationsCollector {
	return &durationsCollector{
		authBad:  map[string][]int64{},
		authRcvr: map[string]map[string]bool{},
		authOk:   map[string][]int64{},
		mxBad:    map[string][]int64{},
		okByDom:  map[string][]int64{},
		fullBad:  map[string][]int64{},
		okByAddr: map[string][]int64{},
	}
}

func (uc *durationsCollector) Add(rec *dataset.Record, c *ClassifiedRecord) {
	from := rec.FromDomain()
	to := rec.ToDomain()
	if c.HasType(ndr.T3AuthFail) {
		uc.authBad[from] = append(uc.authBad[from], rec.StartTime.UnixNano())
		set := uc.authRcvr[from]
		if set == nil {
			set = map[string]bool{}
			uc.authRcvr[from] = set
		}
		set[to] = true
	}
	if rec.Succeeded() {
		k := from + "\x00" + to
		uc.authOk[k] = append(uc.authOk[k], rec.EndTime.UnixNano())
	}
	if c.HasType(ndr.T2ReceiverDNS) {
		uc.mxBad[to] = append(uc.mxBad[to], rec.StartTime.UnixNano())
	} else if rec.Succeeded() {
		uc.okByDom[to] = append(uc.okByDom[to], rec.EndTime.UnixNano())
	}
	if c.HasType(ndr.T9MailboxFull) {
		uc.fullBad[rec.To] = append(uc.fullBad[rec.To], rec.StartTime.UnixNano())
	} else if rec.Succeeded() {
		uc.okByAddr[rec.To] = append(uc.okByAddr[rec.To], rec.EndTime.UnixNano())
	}
}

func mergeTimes(dst, src map[string][]int64) {
	for k, v := range src {
		dst[k] = append(dst[k], v...)
	}
}

func (uc *durationsCollector) Merge(other PartialCollector) error {
	o, ok := other.(*durationsCollector)
	if !ok {
		return mergeTypeError("durations", other)
	}
	mergeTimes(uc.authBad, o.authBad)
	for from, set := range o.authRcvr {
		t := uc.authRcvr[from]
		if t == nil {
			t = map[string]bool{}
			uc.authRcvr[from] = t
		}
		for to := range set {
			t[to] = true
		}
	}
	mergeTimes(uc.authOk, o.authOk)
	mergeTimes(uc.mxBad, o.mxBad)
	mergeTimes(uc.okByDom, o.okByDom)
	mergeTimes(uc.fullBad, o.fullBad)
	mergeTimes(uc.okByAddr, o.okByAddr)
	return nil
}

// encodeTimes writes a timestamp multiset map with sorted keys and
// sorted values, so equal states encode to equal bytes.
func (e *enc) encodeTimes(m map[string][]int64) {
	e.u64(uint64(len(m)))
	for _, k := range sortedKeys(m) {
		e.str(k)
		ts := append([]int64(nil), m[k]...)
		sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
		e.i64List(ts)
	}
}

func (d *dec) decodeTimes() map[string][]int64 {
	n := d.count()
	m := make(map[string][]int64, n)
	for i := 0; i < n; i++ {
		k := d.str()
		m[k] = d.i64List()
	}
	return m
}

func (uc *durationsCollector) MarshalPartial() []byte {
	var e enc
	e.version(1)
	e.encodeTimes(uc.authBad)
	e.u64(uint64(len(uc.authRcvr)))
	for _, from := range sortedKeys(uc.authRcvr) {
		e.str(from)
		e.strSet(uc.authRcvr[from])
	}
	e.encodeTimes(uc.authOk)
	e.encodeTimes(uc.mxBad)
	e.encodeTimes(uc.okByDom)
	e.encodeTimes(uc.fullBad)
	e.encodeTimes(uc.okByAddr)
	return e.buf
}

func (uc *durationsCollector) UnmarshalPartial(b []byte) error {
	d := dec{b: b}
	d.checkVersion("durations", 1)
	uc.authBad = d.decodeTimes()
	n := d.count()
	uc.authRcvr = make(map[string]map[string]bool, n)
	for i := 0; i < n; i++ {
		from := d.str()
		uc.authRcvr[from] = d.strSet()
	}
	uc.authOk = d.decodeTimes()
	uc.mxBad = d.decodeTimes()
	uc.okByDom = d.decodeTimes()
	uc.fullBad = d.decodeTimes()
	uc.okByAddr = d.decodeTimes()
	return d.err
}

func badGoodEvents(bads, goods []int64) []event {
	evs := make([]event, 0, len(bads)+len(goods))
	for _, at := range bads {
		evs = append(evs, event{at, true})
	}
	for _, at := range goods {
		evs = append(evs, event{at, false})
	}
	return evs
}

// resolve assembles the per-entity event sequences and summarizes them.
// Misconfiguration periods are bounded by observed bounces of the
// relevant type and the next observed success for the same entity.
func (uc *durationsCollector) resolve(det *Detections) DurationsFigure {
	var fig DurationsFigure

	// --- DKIM/SPF (T3) per sender domain. A "good" event is a success
	// from the sender at a receiver that T3-bounced it.
	authEvents := map[string][]event{}
	for from, bads := range uc.authBad {
		evs := badGoodEvents(bads, nil)
		for to := range uc.authRcvr[from] {
			for _, at := range uc.authOk[from+"\x00"+to] {
				evs = append(evs, event{at, false})
			}
		}
		authEvents[from] = evs
	}
	fig.AuthDKIMSPF = summarize(authEvents)

	// --- MX errors (T2, excluding typo domains) per receiver domain.
	mxEvents := map[string][]event{}
	for to, bads := range uc.mxBad {
		if _, isTypo := det.DomainTypos[to]; isTypo {
			continue
		}
		mxEvents[to] = badGoodEvents(bads, uc.okByDom[to])
	}
	fig.MXRecords = summarize(mxEvents)

	// --- Mailbox full (T9) per recipient address.
	fullEvents := map[string][]event{}
	for addr, bads := range uc.fullBad {
		if !det.FullMailboxes[addr] {
			continue
		}
		fullEvents[addr] = badGoodEvents(bads, uc.okByAddr[addr])
	}
	fig.MailboxFull = summarize(fullEvents)
	return fig
}

// Durations infers Figure 7 from the dataset alone.
func (a *Analysis) Durations(det *Detections) DurationsFigure {
	if det == nil {
		det = a.Detect()
	}
	uc := newDurationsCollector()
	a.visit(uc)
	return uc.resolve(det)
}

func summarize(events map[string][]event) EpisodeStats {
	var s EpisodeStats
	for _, evs := range events {
		durations, episodes, completed := episodize(evs)
		if episodes == 0 {
			continue
		}
		s.Entities++
		s.Durations = append(s.Durations, durations...)
		if !completed && len(durations) == 0 {
			s.AlwaysBroken++
		}
		if episodes >= 2 {
			s.Recurrent++
		}
	}
	sort.Float64s(s.Durations)
	return s
}
