package analysis

import (
	"reflect"
	"testing"

	"repro/internal/dataset"
)

// TestClassifyCtxMatchesClassifyRecord pins the zero-alloc batch
// classifier to the per-record path verdict for verdict — the
// byte-identity every differential test downstream depends on.
func TestClassifyCtxMatchesClassifyRecord(t *testing.T) {
	records := testCorpus()
	view := dataset.SliceRecords(records)
	sp := buildShardedPipeline(view, DefaultPipelineConfig())
	cx := sp.NewClassifyCtx()
	for i := range records {
		got := cx.ClassifyRecord(&records[i])
		want := sp.ClassifyRecord(&records[i])
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("record %d: ctx verdict %+v, per-record verdict %+v", i, got, want)
		}
	}
}

// TestClassifyCtxVerdictsAreStable: verdict slices handed out earlier
// must not change as the ctx keeps classifying (arena spans are never
// rewritten).
func TestClassifyCtxVerdictsAreStable(t *testing.T) {
	records := testCorpus()
	view := dataset.SliceRecords(records)
	sp := buildShardedPipeline(view, DefaultPipelineConfig())
	cx := sp.NewClassifyCtx()
	first := cx.ClassifyRecord(&records[0])
	want := sp.ClassifyRecord(&records[0])
	for i := range records {
		cx.ClassifyRecord(&records[i])
	}
	if !reflect.DeepEqual(first, want) {
		t.Fatalf("early verdict mutated by later classifications: %+v want %+v", first, want)
	}
}

func BenchmarkClassifyCtx(b *testing.B) {
	records := testCorpus()
	view := dataset.SliceRecords(records)
	sp := buildShardedPipeline(view, DefaultPipelineConfig())
	cx := sp.NewClassifyCtx()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cx.ClassifyRecord(&records[i%len(records)])
	}
}

func BenchmarkClassifyRecord(b *testing.B) {
	records := testCorpus()
	view := dataset.SliceRecords(records)
	sp := buildShardedPipeline(view, DefaultPipelineConfig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.ClassifyRecord(&records[i%len(records)])
	}
}
