// Package analysis implements the paper's measurement methodology over
// Figure-3 delivery records: the Drain+EBRC bounce-reason pipeline
// (Section 3.2), bounce-degree statistics, root-cause attribution
// (Section 4, Table 2), per-domain/AS/country breakdowns (Tables 3-5,
// Appendix A), misconfiguration-duration inference (Figure 7), the
// infrastructure matrix (Figure 8), and delivery-performance statistics
// (Figure 10, Appendix C). It consumes only the dataset records plus
// the external services the paper also used (geolocation, blocklist
// state, the leak corpus, registries) — never the simulator's ground
// truth.
package analysis

import (
	"maps"
	"sort"
	"strings"

	"repro/internal/dataset"
	"repro/internal/drain"
	"repro/internal/ebrc"
	"repro/internal/ndr"
)

// PipelineConfig scales the Section-3.2 classification pipeline.
type PipelineConfig struct {
	// TopTemplates is how many of the most frequent Drain templates get
	// "manually" labeled (paper: 200, covering 68.49% of NDRs).
	TopTemplates int
	// SamplesPerType bounds the EBRC training set per type
	// (paper: 4,000).
	SamplesPerType int
	// PredictSample is the per-template sample size for majority-vote
	// prediction of unlabeled templates (paper: 100).
	PredictSample int
	Seed          uint64
}

// DefaultPipelineConfig mirrors the paper's parameters at simulation
// scale.
func DefaultPipelineConfig() PipelineConfig {
	return PipelineConfig{TopTemplates: 200, SamplesPerType: 1500, PredictSample: 100, Seed: 7}
}

// Pipeline is the trained bounce-reason classifier stack.
type Pipeline struct {
	Parser     *drain.Parser
	Classifier *ebrc.Classifier

	cfg            PipelineConfig
	groupType      map[int]ndr.Type
	groupAmbiguous map[int]bool
	groupSamples   map[int][]string
	sigLabeled     map[int]bool // groups labeled by signature (not vote)
	manualLabels   int
	manualCoverage float64 // share of NDRs covered by the labeled top templates
	coveredLines   int     // NDR lines covered by the labeled top templates
	totalLines     int     // NDR lines the builder absorbed
	trainHash      uint64  // hash of the EBRC training set, for warm reuse
}

// PipelineBuilder accumulates NDR lines one record at a time, so the
// pipeline can train while records stream past instead of requiring a
// materialized slice. Feed every record to Add (order matters: Drain
// template mining is deterministic in line order), then call Finish
// exactly once.
type PipelineBuilder struct {
	p     *Pipeline
	total int
}

// NewPipelineBuilder starts an empty pipeline with cfg (zero
// TopTemplates selects the defaults).
func NewPipelineBuilder(cfg PipelineConfig) *PipelineBuilder {
	if cfg.TopTemplates <= 0 {
		cfg = DefaultPipelineConfig()
	}
	return &PipelineBuilder{p: &Pipeline{
		Parser:         drain.New(drain.DefaultConfig()),
		cfg:            cfg,
		groupType:      make(map[int]ndr.Type),
		groupAmbiguous: make(map[int]bool),
		groupSamples:   make(map[int][]string),
	}}
}

// Add mines templates from the record's NDR lines (the non-2xx
// delivery_result entries, walked in place — rec.NDRs would allocate
// on every record of the ingest hot path).
func (b *PipelineBuilder) Add(rec *dataset.Record) {
	for _, line := range rec.DeliveryResult {
		if !strings.HasPrefix(line, "2") {
			b.AddLine(line)
		}
	}
}

// AddLine mines templates from one raw NDR line.
func (b *PipelineBuilder) AddLine(line string) {
	b.total++
	g := b.p.Parser.Train(line)
	b.p.sampleLine(g.ID, line)
}

// BuildPipelineFrom drains src through a PipelineBuilder — the
// streaming equivalent of BuildPipeline.
func BuildPipelineFrom(src dataset.RecordSource, cfg PipelineConfig) *Pipeline {
	b := NewPipelineBuilder(cfg)
	for {
		rec, ok := src.Next()
		if !ok {
			break
		}
		b.Add(rec)
	}
	return b.Finish()
}

// BuildPipeline mines Drain templates from every NDR line in records,
// labels the top templates against the community template catalog (the
// reproduction's stand-in for the paper's manual labeling session with
// Coremail's professionals), trains the EBRC on template-matched raw
// messages, and labels the remaining templates by majority vote.
func BuildPipeline(records []dataset.Record, cfg PipelineConfig) *Pipeline {
	return BuildPipelineFrom(dataset.NewSliceSource(records), cfg)
}

// Finish labels the mined templates, trains the EBRC, and returns the
// ready pipeline. The builder must not be reused afterwards (the
// parser is frozen; further Train calls panic).
func (b *PipelineBuilder) Finish() *Pipeline {
	return finishPipeline(b.p, b.total, nil)
}

// FinishWarm is Finish, reusing work from prev — a finished pipeline
// from an EARLIER point of the same builder lineage — where provably
// equivalent: the EBRC is retrained only when the training set hash
// moved, and majority-vote template predictions carry over when the
// classifier and the group's sample set are unchanged. The result is
// identical to Finish's; only the cost differs.
func (b *PipelineBuilder) FinishWarm(prev *Pipeline) *Pipeline {
	return finishPipeline(b.p, b.total, prev)
}

// Clone deep-copies the builder (Drain tree, samples, labels), so the
// original keeps absorbing new records while the clone is finished for
// a point-in-time snapshot.
func (b *PipelineBuilder) Clone() *PipelineBuilder {
	src := b.p
	p := &Pipeline{
		Parser:         src.Parser.Clone(),
		cfg:            src.cfg,
		groupType:      make(map[int]ndr.Type, len(src.groupType)),
		groupAmbiguous: make(map[int]bool, len(src.groupAmbiguous)),
		groupSamples:   make(map[int][]string, len(src.groupSamples)),
	}
	for id, typ := range src.groupType {
		p.groupType[id] = typ
	}
	for id, amb := range src.groupAmbiguous {
		p.groupAmbiguous[id] = amb
	}
	for id, lines := range src.groupSamples {
		p.groupSamples[id] = append([]string(nil), lines...)
	}
	return &PipelineBuilder{p: p, total: b.total}
}

// Snapshot labels and trains a pipeline over everything mined so far
// WITHOUT consuming the builder. A snapshot over N records is
// identical to the pipeline Finish would produce after those same N
// records — the invariant behind the online report path.
func (b *PipelineBuilder) Snapshot() *Pipeline {
	return b.Clone().Finish()
}

// Total reports how many NDR lines the builder has absorbed.
func (b *PipelineBuilder) Total() int { return b.total }

// finishPipeline runs the post-mining steps (template labeling, EBRC
// training, majority-vote prediction) over an already-mined pipeline.
// prev, when non-nil, donates provably-identical work (see FinishWarm).
func finishPipeline(p *Pipeline, total int, prev *Pipeline) *Pipeline {
	cfg := p.cfg
	// The pipeline is immutable from here on; freezing the parser makes
	// Match lock-free, which the parallel classification pass needs to
	// scale.
	p.Parser.Freeze()
	p.totalLines = total
	if total == 0 {
		return p
	}

	// 2. "Manually" label the top templates via the catalog signatures.
	groups := p.Parser.Groups()
	p.sigLabeled = make(map[int]bool)
	covered := 0
	for i, g := range groups {
		if i >= cfg.TopTemplates {
			break
		}
		typ, amb, ok := labelBySignature(g.Template())
		if !ok {
			continue
		}
		p.groupType[g.ID] = typ
		p.groupAmbiguous[g.ID] = amb
		p.sigLabeled[g.ID] = true
		p.manualLabels++
		covered += g.Count
	}
	p.coveredLines = covered
	p.manualCoverage = float64(covered) / float64(total)

	// 3. Build the training set: per type, raw lines matched by its
	// labeled non-ambiguous templates, balanced across templates.
	samples := p.trainingSamples()
	p.trainHash = hashSamples(samples)
	if len(samples) == 0 {
		return p
	}
	if prev != nil && prev.Classifier != nil && prev.trainHash == p.trainHash {
		// ebrc.Train is deterministic and the classifier immutable, so
		// an identical training set means an identical model.
		p.Classifier = prev.Classifier
	} else {
		p.Classifier = ebrc.Train(samples)
	}

	// 4. Predict the remaining templates by majority vote over their
	// sampled raw messages.
	reuse := prev != nil && p.Classifier == prev.Classifier
	for _, g := range groups {
		if _, done := p.groupType[g.ID]; done {
			continue
		}
		lines := p.groupSamples[g.ID]
		if len(lines) == 0 {
			p.groupType[g.ID] = ndr.T16Unknown
			continue
		}
		if reuse && !prev.sigLabeled[g.ID] && !prev.groupAmbiguous[g.ID] {
			// Samples are append-only within one builder lineage, so an
			// unchanged count means unchanged content — the vote over
			// them under the same model cannot move.
			if pt, ok := prev.groupType[g.ID]; ok && len(prev.groupSamples[g.ID]) == len(lines) {
				p.groupType[g.ID] = pt
				continue
			}
		}
		p.groupType[g.ID] = p.Classifier.PredictTemplate(lines)
	}
	return p
}

// hashSamples fingerprints an EBRC training set (FNV-1a over type and
// text of every sample, in order).
func hashSamples(samples []ebrc.Sample) uint64 {
	h := uint64(14695981039346656037)
	mix := func(b byte) { h = (h ^ uint64(b)) * 1099511628211 }
	for _, s := range samples {
		mix(byte(s.Type))
		for i := 0; i < len(s.Text); i++ {
			mix(s.Text[i])
		}
		mix(0xff)
	}
	return h
}

// matchLabelingEqual reports whether two finished pipelines classify
// every line THEY BOTH SAW DURING TRAINING identically: same Drain
// structure (fingerprint) and same per-group labels. Lines trained
// into the parser always Match their group (absorption requires
// similarity ≥ threshold, and wildcarding only raises similarity), so
// the EBRC — consulted only for unmatched lines — does not bear on
// verdicts for retained records and is excluded from this check.
func matchLabelingEqual(a, b *Pipeline) bool {
	if a == nil || b == nil {
		return false
	}
	if a.Parser.Fingerprint() != b.Parser.Fingerprint() {
		return false
	}
	return maps.Equal(a.groupType, b.groupType) &&
		maps.Equal(a.groupAmbiguous, b.groupAmbiguous)
}

// sampleLine keeps up to PredictSample raw lines per group (reservoir
// not needed: templates are homogeneous, the first N suffice and keep
// the pipeline deterministic).
func (p *Pipeline) sampleLine(groupID int, line string) {
	if len(p.groupSamples[groupID]) < p.cfg.PredictSample {
		p.groupSamples[groupID] = append(p.groupSamples[groupID], line)
	}
}

func (p *Pipeline) trainingSamples() []ebrc.Sample {
	byType := map[ndr.Type][][]string{}
	for gid, typ := range p.groupType {
		if p.groupAmbiguous[gid] {
			continue
		}
		if lines := p.groupSamples[gid]; len(lines) > 0 {
			byType[typ] = append(byType[typ], lines)
		}
	}
	var out []ebrc.Sample
	for _, typ := range ndr.AllTypes {
		tmplLines := byType[typ]
		if len(tmplLines) == 0 {
			continue
		}
		// Balance across the type's templates, like the paper's "for
		// each type, we try to match a similar number of raw NDR
		// messages for each selected template".
		per := p.cfg.SamplesPerType / len(tmplLines)
		if per < 1 {
			per = 1
		}
		for _, lines := range tmplLines {
			n := per
			if n > len(lines) {
				n = len(lines)
			}
			for i := 0; i < n; i++ {
				out = append(out, ebrc.Sample{Text: lines[i], Type: typ})
			}
		}
	}
	return out
}

// ManualLabelStats reports how many top templates were labeled and the
// share of NDR messages they cover (paper: 200 templates, 68.49%).
func (p *Pipeline) ManualLabelStats() (labeled int, coverage float64) {
	return p.manualLabels, p.manualCoverage
}

// NumTemplates returns the number of mined Drain templates.
func (p *Pipeline) NumTemplates() int { return p.Parser.NumGroups() }

// ClassifyLine labels one NDR line; ambiguous reports whether the line
// matched one of the Table-6 ambiguous templates.
func (p *Pipeline) ClassifyLine(line string) (typ ndr.Type, ambiguous bool) {
	g := p.Parser.Match(line)
	if g == nil {
		if p.Classifier == nil {
			return ndr.T16Unknown, false
		}
		t, _ := p.Classifier.Predict(line)
		return t, false
	}
	if p.groupAmbiguous[g.ID] {
		return ndr.T16Unknown, true
	}
	if t, ok := p.groupType[g.ID]; ok {
		return t, false
	}
	return ndr.T16Unknown, false
}

// catalogSignature extracts the longest run of literal whitespace
// tokens in a catalog template. Drain wildcards whole tokens, so any
// token touching a placeholder (including attached punctuation like
// "[{ip}]") is variable; the signature must align to token boundaries
// to survive in the mined template.
func catalogSignature(text string) string {
	// Mark placeholders, then walk tokens.
	marked := text
	for {
		open := strings.IndexByte(marked, '{')
		if open < 0 {
			break
		}
		end := strings.IndexByte(marked[open:], '}')
		if end < 0 {
			break
		}
		marked = marked[:open] + "\x00" + marked[open+end+1:]
	}
	fields := strings.Fields(marked)
	best, cur := "", ""
	flush := func() {
		if len(cur) > len(best) {
			best = cur
		}
		cur = ""
	}
	for _, f := range fields {
		if strings.ContainsRune(f, '\x00') {
			flush()
			continue
		}
		if cur == "" {
			cur = f
		} else {
			cur += " " + f
		}
	}
	flush()
	return best
}

// signatureIndex is built once over the catalog, longest-signature
// first so the most specific match wins.
var signatureIndex = func() []struct {
	sig  string
	typ  ndr.Type
	amb  bool
	code string
} {
	out := make([]struct {
		sig  string
		typ  ndr.Type
		amb  bool
		code string
	}, 0, len(ndr.Catalog))
	for _, tp := range ndr.Catalog {
		out = append(out, struct {
			sig  string
			typ  ndr.Type
			amb  bool
			code string
		}{catalogSignature(tp.Text), tp.Type, tp.Ambiguous, tp.Text[:3]})
	}
	sort.Slice(out, func(i, j int) bool { return len(out[i].sig) > len(out[j].sig) })
	return out
}()

// labelBySignature labels a Drain template against the catalog — the
// stand-in for expert labeling. Templates matching no known signature
// stay unlabeled (the EBRC predicts them later).
func labelBySignature(template string) (ndr.Type, bool, bool) {
	for _, e := range signatureIndex {
		if len(e.sig) < 12 {
			continue
		}
		if strings.Contains(template, e.sig) {
			return e.typ, e.amb, true
		}
	}
	return ndr.TNone, false, false
}
