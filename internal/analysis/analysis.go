package analysis

import (
	"strings"

	"repro/internal/breach"
	"repro/internal/dataset"
	"repro/internal/dns"
	"repro/internal/dnsbl"
	"repro/internal/geo"
	"repro/internal/ndr"
	"repro/internal/registrar"
)

// Environment bundles the external services the paper consulted beside
// its passive dataset: geolocation (ip-api), the blocklist state
// (Spamhaus), the leak corpus (HaveIBeenPwned), DNS, and the registries
// (GoDaddy/WHOIS + provider registration UIs). All fields are optional;
// analyses requiring a missing service return zero results.
type Environment struct {
	Geo       *geo.DB
	Blocklist *dnsbl.Blocklist
	Breach    *breach.Corpus
	Resolver  *dns.Resolver
	Registry  *registrar.Registry
	UserRegs  map[string]*registrar.UsernameRegistry

	// ProxyIPs/ProxyRegion describe the sender fleet (known to the
	// operator running the analysis, as at Coremail).
	ProxyIPs    []string
	ProxyRegion map[string]string // proxy IP -> country code
}

// ClassifiedRecord is one record run through the bounce pipeline.
type ClassifiedRecord struct {
	Degree dataset.Degree
	// AttemptTypes aligns with DeliveryResult; TNone for accepted
	// attempts.
	AttemptTypes []ndr.Type
	// Types is the set of distinct non-ambiguous bounce types across
	// failed attempts.
	Types []ndr.Type
	// Ambiguous reports that every failed attempt carried only
	// ambiguous NDR text — the 6M emails the paper excludes.
	Ambiguous bool
}

// HasType reports whether t appears among the record's bounce types.
func (c *ClassifiedRecord) HasType(t ndr.Type) bool {
	for _, x := range c.Types {
		if x == t {
			return true
		}
	}
	return false
}

// Analysis holds a classified corpus ready for table/figure extraction.
// Records is an index-addressable view (plain slice or slab store
// prefix); use Records.Len/At to walk it.
type Analysis struct {
	Records    dataset.Records
	Classified []ClassifiedRecord
	Pipeline   *ShardedPipeline
	Env        *Environment

	rank    []dataset.RankEntry
	rankPos map[string]int
}

// New classifies records with freshly built per-substream pipelines and
// prepares the derived indexes. env may be nil for dataset-only
// analyses.
func New(records []dataset.Record, env *Environment) *Analysis {
	view := dataset.SliceRecords(records)
	sp := buildShardedPipeline(view, DefaultPipelineConfig())
	verdicts := make([]ClassifiedRecord, len(records))
	classifyRange(sp, view, verdicts, 0)
	counts := make(map[string]int, 64)
	for i := range records {
		counts[records[i].ToDomain()]++
	}
	return assemble(view, verdicts, sp, counts, env)
}

// NewWithPipeline classifies records with one pre-built pipeline (no
// substream split — every record routes to it).
func NewWithPipeline(records []dataset.Record, p *Pipeline, env *Environment) *Analysis {
	view := dataset.SliceRecords(records)
	sp := SinglePipeline(p)
	verdicts := make([]ClassifiedRecord, len(records))
	classifyRange(sp, view, verdicts, 0)
	counts := make(map[string]int, 64)
	for i := range records {
		counts[records[i].ToDomain()]++
	}
	return assemble(view, verdicts, sp, counts, env)
}

// NewFromSource consumes a record stream in a single pass: while
// records arrive it trains the classification pipeline and accumulates
// the popularity counts, then labels templates, trains the EBRC, and
// classifies the retained records. Because pipeline training order
// equals stream order, an Analysis built from a source is identical to
// one built from the collected slice.
func NewFromSource(src dataset.RecordSource, cfg PipelineConfig, env *Environment) *Analysis {
	inc := NewIncremental(cfg)
	// Train on the dedicated goroutine so template mining overlaps the
	// source's own decode work (Finish stops it and catches up).
	inc.StartTrainer()
	for {
		rec, ok := src.Next()
		if !ok {
			break
		}
		inc.Add(rec)
	}
	return inc.Finish(env)
}

// ClassifyRecord runs one record's attempt replies through the trained
// pipeline.
func (p *Pipeline) ClassifyRecord(rec *dataset.Record) ClassifiedRecord {
	c := ClassifiedRecord{Degree: rec.BounceDegree()}
	c.AttemptTypes = make([]ndr.Type, len(rec.DeliveryResult))
	seen := map[ndr.Type]bool{}
	failed, ambiguousOnly := 0, true
	for i, line := range rec.DeliveryResult {
		if strings.HasPrefix(line, "2") {
			c.AttemptTypes[i] = ndr.TNone
			continue
		}
		failed++
		typ, amb := p.ClassifyLine(line)
		c.AttemptTypes[i] = typ
		if amb {
			continue
		}
		ambiguousOnly = false
		if !seen[typ] {
			seen[typ] = true
			c.Types = append(c.Types, typ)
		}
	}
	c.Ambiguous = failed > 0 && ambiguousOnly
	return c
}

// InEmailRank returns the receiver-domain popularity list.
func (a *Analysis) InEmailRank() []dataset.RankEntry { return a.rank }

// PipelineSummary condenses the classifier stack into its mergeable
// aggregate (same shape a PartialSet carries).
func (a *Analysis) PipelineSummary() PipelineSummary { return a.Pipeline.Summary() }

// RankOf returns the InEmailRank position of domain (-1 if absent).
func (a *Analysis) RankOf(domain string) int {
	if p, ok := a.rankPos[domain]; ok {
		return p
	}
	return -1
}

// Overview is the Section-4.1 headline statistic.
type Overview struct {
	Total       int
	NonBounced  int
	SoftBounced int
	HardBounced int
	// SoftAvgAttempts is the mean delivery count of soft-bounced emails
	// (paper: ~3, grounding the "retry at least three times" advice).
	SoftAvgAttempts float64
	// AmbiguousBounced is the count of bounced emails with only
	// ambiguous NDRs (paper: 6M of 38M).
	AmbiguousBounced int
}

// Overview computes the bounce-degree distribution.
func (a *Analysis) Overview() Overview {
	var oc overviewCollector
	a.visit(&oc)
	return oc.result()
}

// Bounced reports the number of emails that bounced at least once.
func (o Overview) Bounced() int { return o.SoftBounced + o.HardBounced }

// TypeDistribution is Table 1: per-type email counts among bounced,
// non-ambiguous emails (an email may carry several types).
func (a *Analysis) TypeDistribution() map[ndr.Type]int {
	tc := newTypeDistCollector()
	a.visit(tc)
	return tc.counts
}

// NoEnhancedCodeShare returns the share of NDR lines lacking an RFC 3463
// enhanced status code (paper: 28.79%).
func (a *Analysis) NoEnhancedCodeShare() float64 {
	var ec enhancedCollector
	a.visit(&ec)
	return ec.result()
}

// AmbiguousTemplate is one Table-6 row.
type AmbiguousTemplate struct {
	Template string
	Count    int
}

// AmbiguousTemplates returns the mined templates flagged ambiguous with
// their message counts, normalized count-descending (Table 6).
func (a *Analysis) AmbiguousTemplates() []AmbiguousTemplate {
	return a.Pipeline.AmbiguousTemplates()
}
