package analysis

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/dataset"
	"repro/internal/ndr"
)

var t0 = clock.StudyStart.Add(12 * time.Hour)

// rec builds a record with the given reply sequence.
func rec(from, to string, at time.Time, results ...string) dataset.Record {
	r := dataset.Record{
		From: from, To: to,
		StartTime: at, EndTime: at.Add(time.Minute),
		EmailFlag: "Normal",
	}
	for i, line := range results {
		r.DeliveryResult = append(r.DeliveryResult, line)
		r.FromIP = append(r.FromIP, fmt.Sprintf("5.0.0.%d", i+1))
		r.ToIP = append(r.ToIP, "20.0.0.1")
		r.DeliveryLatency = append(r.DeliveryLatency, 9000)
	}
	return r
}

// renderT renders the first template of a type with plausible params.
func renderT(t ndr.Type, addr string) string {
	idx := ndr.NonAmbiguousTemplatesFor(t)[0]
	local, domain := addr, "x.com"
	if i := strings.IndexByte(addr, '@'); i > 0 {
		local, domain = addr[:i], addr[i+1:]
	}
	return ndr.Catalog[idx].Render(ndr.Params{
		Addr: addr, Local: local, Domain: domain, IP: "5.0.0.1",
		MX: "mx1." + domain, BL: "Spamhaus", Vendor: "v1", Sec: "300", Size: "1000",
	})
}

// corpus returns a hand-built mixed corpus exercising the pipeline.
// Volumes are large enough for Drain+EBRC to train.
func testCorpus() []dataset.Record {
	var out []dataset.Record
	day := func(d int) time.Time { return clock.StudyStart.AddDate(0, 0, d).Add(10 * time.Hour) }
	// 300 successes.
	for i := 0; i < 300; i++ {
		out = append(out, rec("a@s.com", fmt.Sprintf("u%d@ok.com", i%40), day(i%300), "250 2.0.0 OK"))
	}
	// 60 soft bounces: greylist then success.
	for i := 0; i < 60; i++ {
		out = append(out, rec("a@s.com", fmt.Sprintf("u%d@gl.com", i%10), day(i%300),
			renderT(ndr.T6Greylisted, fmt.Sprintf("u%d@gl.com", i%10)), "250 OK"))
	}
	// 80 hard bounces: no such user.
	for i := 0; i < 80; i++ {
		addr := fmt.Sprintf("ghost%d@ok.com", i%20)
		out = append(out, rec("a@s.com", addr, day(i%300),
			renderT(ndr.T8NoSuchUser, addr), renderT(ndr.T8NoSuchUser, addr)))
	}
	// 50 blocklist bounces then success.
	for i := 0; i < 50; i++ {
		addr := fmt.Sprintf("u%d@bl.com", i%10)
		out = append(out, rec("a@s.com", addr, day(i%300),
			renderT(ndr.T5Blocklisted, addr), "250 OK"))
	}
	// 40 timeouts then success.
	for i := 0; i < 40; i++ {
		addr := fmt.Sprintf("u%d@slow.com", i%10)
		out = append(out, rec("a@s.com", addr, day(i%300),
			renderT(ndr.T14Timeout, addr), "250 OK"))
	}
	// 30 ambiguous-only bounces.
	ambIdx := ndr.AmbiguousTemplates()[0]
	for i := 0; i < 30; i++ {
		line := ndr.Catalog[ambIdx].Render(ndr.Params{Vendor: fmt.Sprintf("a%d", i), IP: "5.0.0.9"})
		out = append(out, rec("a@s.com", fmt.Sprintf("u%d@amb.com", i%5), day(i%300), line, line))
	}
	// 25 mailbox-full (quota) bounces.
	for i := 0; i < 25; i++ {
		addr := "fullbox@ok.com"
		out = append(out, rec("a@s.com", addr, day(i*3),
			renderT(ndr.T9MailboxFull, addr)))
	}
	// Recovery success for the full mailbox at day 80.
	out = append(out, rec("a@s.com", "fullbox@ok.com", day(80), "250 OK"))
	// 30 MX-error bounces for mx-broken.com (days 10-19) bounded by
	// successes before and after.
	out = append(out, rec("a@s.com", "u@mx-broken.com", day(9), "250 OK"))
	for i := 0; i < 30; i++ {
		out = append(out, rec("a@s.com", "u@mx-broken.com", day(10+i%10),
			renderT(ndr.T2ReceiverDNS, "u@mx-broken.com")))
	}
	out = append(out, rec("a@s.com", "u@mx-broken.com", day(20), "250 OK"))
	// Never-resolving typo domain of ok.com ("okk.com" = repetition).
	for i := 0; i < 12; i++ {
		out = append(out, rec("a@s.com", "bob@okk.com", day(30+i),
			renderT(ndr.T2ReceiverDNS, "bob@okk.com")))
	}
	// Username typo: sender mails alice.smith@ok.com successfully and
	// alice.smth@ok.com bounces T8.
	for i := 0; i < 8; i++ {
		out = append(out, rec("typist@s.com", "alice.smith@ok.com", day(40+i), "250 OK"))
		out = append(out, rec("typist@s.com", "alice.smth@ok.com", day(40+i),
			renderT(ndr.T8NoSuchUser, "alice.smth@ok.com")))
	}
	return out
}

func buildAnalysis(t *testing.T) *Analysis {
	t.Helper()
	return New(testCorpus(), nil)
}

func TestOverview(t *testing.T) {
	a := buildAnalysis(t)
	o := a.Overview()
	if o.Total != a.Records.Len() {
		t.Errorf("total %d", o.Total)
	}
	// Soft = greylist(60) + blocklist(50) + timeout(40) = 150.
	if o.SoftBounced != 150 {
		t.Errorf("soft = %d want 150", o.SoftBounced)
	}
	if o.AmbiguousBounced != 30 {
		t.Errorf("ambiguous = %d want 30", o.AmbiguousBounced)
	}
	if o.SoftAvgAttempts != 2 {
		t.Errorf("soft avg attempts %g want 2", o.SoftAvgAttempts)
	}
	if o.NonBounced+o.SoftBounced+o.HardBounced != o.Total {
		t.Error("degrees don't partition")
	}
}

func TestClassificationTypes(t *testing.T) {
	a := buildAnalysis(t)
	dist := a.TypeDistribution()
	if dist[ndr.T6Greylisted] != 60 {
		t.Errorf("T6 = %d want 60", dist[ndr.T6Greylisted])
	}
	if dist[ndr.T8NoSuchUser] != 80+8 {
		t.Errorf("T8 = %d want 88", dist[ndr.T8NoSuchUser])
	}
	if dist[ndr.T5Blocklisted] != 50 {
		t.Errorf("T5 = %d want 50", dist[ndr.T5Blocklisted])
	}
	if dist[ndr.T14Timeout] != 40 {
		t.Errorf("T14 = %d want 40", dist[ndr.T14Timeout])
	}
	if dist[ndr.T2ReceiverDNS] != 30+12 {
		t.Errorf("T2 = %d want 42", dist[ndr.T2ReceiverDNS])
	}
	if dist[ndr.T9MailboxFull] != 25 {
		t.Errorf("T9 = %d want 25", dist[ndr.T9MailboxFull])
	}
}

func TestAmbiguousExcludedFromTypes(t *testing.T) {
	a := buildAnalysis(t)
	for i := 0; i < a.Records.Len(); i++ {
		c := &a.Classified[i]
		if c.Ambiguous && len(c.Types) != 0 {
			t.Fatalf("ambiguous record carries types %v", c.Types)
		}
	}
	amb := a.AmbiguousTemplates()
	if len(amb) == 0 {
		t.Fatal("no ambiguous templates mined")
	}
	if !strings.Contains(amb[0].Template, "Access denied") {
		t.Errorf("dominant ambiguous template: %q", amb[0].Template)
	}
}

func TestPipelineStats(t *testing.T) {
	a := buildAnalysis(t)
	labeled, coverage := a.Pipeline.ManualLabelStats()
	if labeled == 0 || coverage < 0.5 {
		t.Errorf("labeled=%d coverage=%g", labeled, coverage)
	}
	if a.Pipeline.NumTemplates() == 0 {
		t.Error("no templates mined")
	}
}

func TestDetectTypos(t *testing.T) {
	a := buildAnalysis(t)
	d := a.Detect()
	if _, ok := d.UsernameTypos["alice.smth@ok.com"]; !ok {
		t.Errorf("username typo not detected: %v", d.UsernameTypos)
	}
	if _, ok := d.DomainTypos["okk.com"]; !ok {
		t.Errorf("domain typo okk.com not detected: %v (never-resolved %v)", d.DomainTypos, d.NeverResolved)
	}
	// mx-broken.com recovered: must not be in never-resolved.
	for _, dom := range d.NeverResolved {
		if dom == "mx-broken.com" {
			t.Error("recovered domain flagged never-resolved")
		}
	}
	if !d.FullMailboxes["fullbox@ok.com"] {
		t.Error("full mailbox not detected")
	}
}

func TestRootCauses(t *testing.T) {
	a := buildAnalysis(t)
	tbl := a.RootCauses(nil)
	get := func(reason string) int {
		for _, r := range tbl.Rows {
			if r.Reason == reason {
				return r.Emails
			}
		}
		t.Fatalf("row %q missing", reason)
		return 0
	}
	if n := get("Sender MTA listed in blocklists"); n != 50 {
		t.Errorf("blocklist = %d", n)
	}
	if n := get("Receiver domain name typo"); n != 12 {
		t.Errorf("domain typo = %d", n)
	}
	if n := get("Error MX record for receiver domain"); n != 30 {
		t.Errorf("MX error = %d", n)
	}
	if n := get("Receiver mailbox is full"); n != 25 {
		t.Errorf("mailbox full = %d", n)
	}
	if n := get("SMTP session timeout"); n != 40 {
		t.Errorf("timeout = %d", n)
	}
	// Username typos: the 8 verified ones plus the unverified ghost T8s.
	if n := get("Receiver username typo"); n < 8 {
		t.Errorf("username typo = %d", n)
	}
	if tbl.TotalBounced != 150+80+25+30+12+8 {
		t.Errorf("total bounced = %d", tbl.TotalBounced)
	}
}

func TestTopDomains(t *testing.T) {
	a := buildAnalysis(t)
	rows := a.TopDomains(3)
	if rows[0].Domain != "ok.com" {
		t.Errorf("top domain %q", rows[0].Domain)
	}
	// gl.com: 60 emails all soft.
	for _, r := range rows {
		if r.Domain == "gl.com" && (r.Soft != 60 || r.Hard != 0) {
			t.Errorf("gl.com: %+v", r)
		}
	}
}

func TestTimeline(t *testing.T) {
	a := buildAnalysis(t)
	tl := a.Timeline()
	totalDays := 0
	for d := 0; d < clock.StudyDays; d++ {
		totalDays += tl.Days[d].Non + tl.Days[d].Soft + tl.Days[d].Hard
	}
	if totalDays != a.Records.Len() {
		t.Errorf("timeline loses records: %d vs %d", totalDays, a.Records.Len())
	}
	if len(tl.Months) == 0 {
		t.Error("no monthly volumes")
	}
	sum := 0
	for _, m := range tl.Months {
		sum += m.Emails
	}
	if sum != a.Records.Len() {
		t.Errorf("monthly sums %d", sum)
	}
}

func TestDurationsInference(t *testing.T) {
	a := buildAnalysis(t)
	fig := a.Durations(nil)
	// MX: one domain with one completed episode ≈ 11 days (day 10 →
	// day 20).
	if fig.MXRecords.Entities != 1 {
		t.Fatalf("MX entities = %d", fig.MXRecords.Entities)
	}
	if len(fig.MXRecords.Durations) != 1 {
		t.Fatalf("MX durations = %v", fig.MXRecords.Durations)
	}
	if d := fig.MXRecords.Durations[0]; d < 9 || d > 12 {
		t.Errorf("MX episode %g days, want ≈10-11", d)
	}
	// Mailbox full: fullbox recovered at day 80 (episode day 0 → 80).
	if fig.MailboxFull.Entities != 1 || len(fig.MailboxFull.Durations) != 1 {
		t.Fatalf("mailbox full stats: %+v", fig.MailboxFull)
	}
	if d := fig.MailboxFull.Durations[0]; d < 75 || d > 85 {
		t.Errorf("mailbox episode %g days", d)
	}
}

func TestSTARTTLSStats(t *testing.T) {
	// Add T4 bounces for one top domain.
	records := testCorpus()
	for i := 0; i < 10; i++ {
		records = append(records, rec("a@s.com", "u@ok.com", t0,
			renderT(ndr.T4STARTTLS, "u@ok.com"), "250 OK"))
	}
	a := New(records, nil)
	s := a.STARTTLS()
	if s.MandatingDomains != 1 || s.SoftBounced != 10 {
		t.Errorf("STARTTLS stats: %+v", s)
	}
	if s.Top100Share <= 0 {
		t.Errorf("top100 share %g", s.Top100Share)
	}
}

func TestNoEnhancedCodeShare(t *testing.T) {
	records := []dataset.Record{
		rec("a@s.com", "b@x.com", t0, "550 5.1.1 user unknown"),
		rec("a@s.com", "b@x.com", t0, "550 no status code here"),
	}
	a := NewWithPipeline(records, BuildPipeline(testCorpus(), DefaultPipelineConfig()), nil)
	if got := a.NoEnhancedCodeShare(); got != 0.5 {
		t.Errorf("no-enhanced-code share %g want 0.5", got)
	}
}

func TestEpisodize(t *testing.T) {
	mk := func(day int, bad bool) event {
		return event{at: clock.StudyStart.AddDate(0, 0, day).UnixNano(), bad: bad}
	}
	// bad(1) bad(2) good(5) bad(10) good(12): two episodes 4d and 2d.
	durations, episodes, completed := episodize([]event{
		mk(1, true), mk(2, true), mk(5, false), mk(10, true), mk(12, false),
	})
	if episodes != 2 || !completed || len(durations) != 2 {
		t.Fatalf("episodes=%d completed=%v durations=%v", episodes, completed, durations)
	}
	if durations[0] != 4 || durations[1] != 2 {
		t.Errorf("durations %v", durations)
	}
	// Unrecovered tail.
	_, episodes, completed = episodize([]event{mk(1, true), mk(2, true)})
	if episodes != 1 || completed {
		t.Errorf("open episode: %d %v", episodes, completed)
	}
	// Good-only events: no episode.
	_, episodes, _ = episodize([]event{mk(1, false)})
	if episodes != 0 {
		t.Errorf("good-only: %d episodes", episodes)
	}
}

func TestHasTypeAndRank(t *testing.T) {
	a := buildAnalysis(t)
	if a.RankOf("ok.com") != 0 {
		t.Errorf("ok.com rank %d", a.RankOf("ok.com"))
	}
	if a.RankOf("nope.example") != -1 {
		t.Error("unknown domain should rank -1")
	}
	c := ClassifiedRecord{Types: []ndr.Type{ndr.T5Blocklisted}}
	if !c.HasType(ndr.T5Blocklisted) || c.HasType(ndr.T8NoSuchUser) {
		t.Error("HasType mismatch")
	}
}

func TestCatalogSignatures(t *testing.T) {
	// Signatures must be token-aligned: they survive in a Drain template
	// where placeholder-touching tokens are wildcarded.
	cases := map[string]string{
		"554 Service unavailable; Client host [{ip}] blocked using {bl}":                  "554 Service unavailable; Client host",
		"550-5.1.1 {addr} Email address could not be found, or was misspelled ({vendor})": "Email address could not be found, or was misspelled",
		"450 4.2.0 {addr}: Recipient address rejected: Greylisted":                        "Recipient address rejected: Greylisted",
	}
	for text, want := range cases {
		if got := catalogSignature(text); got != want {
			t.Errorf("catalogSignature(%q) = %q want %q", text, got, want)
		}
	}
}

func TestLabelBySignature(t *testing.T) {
	typ, amb, ok := labelBySignature("554 Service unavailable; Client host (.*) blocked using Spamhaus")
	if !ok || amb || typ != ndr.T5Blocklisted {
		t.Errorf("T5 template: %v %v %v", typ, amb, ok)
	}
	typ, amb, ok = labelBySignature("550 5.4.1 Recipient address rejected: Access denied. AS(201806281) (.*)")
	if !ok || !amb || typ != ndr.T16Unknown {
		t.Errorf("ambiguous template: %v %v %v", typ, amb, ok)
	}
	if _, _, ok := labelBySignature("totally novel vendor specific gibberish line"); ok {
		t.Error("unknown template should stay unlabeled")
	}
}

func TestFilterDisagreement(t *testing.T) {
	var records []dataset.Record
	mkFlag := func(flag, to string, results ...string) dataset.Record {
		r := rec("a@s.com", to, t0, results...)
		r.EmailFlag = flag
		return r
	}
	// Build enough volume for the pipeline, with controlled outcomes.
	for i := 0; i < 60; i++ {
		records = append(records, mkFlag("Normal", fmt.Sprintf("u%d@x.com", i%10), "250 OK"))
	}
	t13 := renderT(ndr.T13ContentSpam, "u@x.com")
	// 10 sender-spam caught by the receiver too (agreement).
	for i := 0; i < 10; i++ {
		records = append(records, mkFlag("Spam", "u1@x.com", t13))
	}
	// 6 sender-spam accepted by the receiver (disagreement).
	for i := 0; i < 6; i++ {
		records = append(records, mkFlag("Spam", "u2@x.com", "250 OK"))
	}
	// 4 sender-spam bounced for a non-content reason (disagreement too).
	for i := 0; i < 4; i++ {
		records = append(records, mkFlag("Spam", "ghost@x.com", renderT(ndr.T8NoSuchUser, "ghost@x.com")))
	}
	// 8 receiver-spam flagged Normal, each retried twice (reputation cost).
	for i := 0; i < 8; i++ {
		records = append(records, mkFlag("Normal", "u3@x.com", t13, t13))
	}
	a := New(records, nil)
	f := a.FilterDisagreement()
	if f.SenderSpamTotal != 20 {
		t.Fatalf("sender spam total %d", f.SenderSpamTotal)
	}
	if f.SenderSpamNotSpamAtReceiver != 10 {
		t.Errorf("sender disagreement %d want 10", f.SenderSpamNotSpamAtReceiver)
	}
	if f.ReceiverSpamTotal != 18 {
		t.Errorf("receiver spam total %d want 18", f.ReceiverSpamTotal)
	}
	if f.ReceiverSpamFlaggedNormal != 8 {
		t.Errorf("receiver disagreement %d want 8", f.ReceiverSpamFlaggedNormal)
	}
	if f.NormalSpamRetryAttempts != 8 {
		t.Errorf("retry attempts %d want 8", f.NormalSpamRetryAttempts)
	}
	if f.SenderDisagreeShare() != 0.5 {
		t.Errorf("sender share %g", f.SenderDisagreeShare())
	}
}

func TestBlocklistRecovery(t *testing.T) {
	var records []dataset.Record
	t5 := renderT(ndr.T5Blocklisted, "u@x.com")
	for i := 0; i < 50; i++ {
		records = append(records, rec("a@s.com", "u@x.com", t0, "250 OK"))
	}
	// 8 recovered after 2-3 attempts, 2 never recovered.
	for i := 0; i < 8; i++ {
		records = append(records, rec("a@s.com", "u@x.com", t0, t5, t5, "250 OK"))
	}
	for i := 0; i < 2; i++ {
		records = append(records, rec("a@s.com", "u@x.com", t0, t5, t5, t5))
	}
	a := New(records, nil)
	r := a.BlocklistRecovery()
	if r.Affected != 10 || r.Recovered != 8 {
		t.Fatalf("recovery: %+v", r)
	}
	if r.RecoveryShare() != 0.8 {
		t.Errorf("share %g", r.RecoveryShare())
	}
	if r.AvgAttempts != 3 {
		t.Errorf("avg attempts %g want 3", r.AvgAttempts)
	}
}
