package analysis

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/dataset"
)

// TestIncrementalSnapshotMatchesBatchPrefix: a snapshot taken after N
// records must equal a batch analysis over exactly those N records —
// same classifications, rank, Table 1, overview. This is the
// batch/online equivalence invariant the bounced service serves
// reports under.
func TestIncrementalSnapshotMatchesBatchPrefix(t *testing.T) {
	records := testCorpus()
	inc := NewIncremental(DefaultPipelineConfig())
	checkpoints := map[int]bool{len(records) / 3: true, len(records): true}
	for i := range records {
		inc.Add(&records[i])
		n := i + 1
		if !checkpoints[n] {
			continue
		}
		snap := inc.Snapshot(nil)
		batch := NewFromSource(dataset.NewSliceSource(records[:n]), DefaultPipelineConfig(), nil)
		if len(snap.Records) != n {
			t.Fatalf("snapshot after %d records holds %d", n, len(snap.Records))
		}
		if !reflect.DeepEqual(snap.Classified, batch.Classified) {
			t.Fatalf("classifications diverge from batch at prefix %d", n)
		}
		if !reflect.DeepEqual(snap.InEmailRank(), batch.InEmailRank()) {
			t.Fatalf("popularity rank diverges from batch at prefix %d", n)
		}
		if !reflect.DeepEqual(snap.TypeDistribution(), batch.TypeDistribution()) {
			t.Fatalf("Table 1 diverges from batch at prefix %d", n)
		}
		if !reflect.DeepEqual(snap.Overview(), batch.Overview()) {
			t.Fatalf("overview diverges from batch at prefix %d", n)
		}
		if got, want := snap.Pipeline.NumTemplates(), batch.Pipeline.NumTemplates(); got != want {
			t.Fatalf("snapshot mined %d templates at prefix %d, batch %d", got, n, want)
		}
	}
}

// TestIncrementalSnapshotDoesNotFreezeBuilder: taking a snapshot must
// leave the accumulator live — later Adds change later snapshots but
// never the one already taken.
func TestIncrementalSnapshotDoesNotFreezeBuilder(t *testing.T) {
	records := testCorpus()
	half := len(records) / 2
	inc := NewIncremental(DefaultPipelineConfig())
	for i := 0; i < half; i++ {
		inc.Add(&records[i])
	}
	early := inc.Snapshot(nil)
	earlyOverview := early.Overview()
	for i := half; i < len(records); i++ {
		inc.Add(&records[i])
	}
	if got := inc.Len(); got != len(records) {
		t.Fatalf("accumulator holds %d records after snapshot + adds, want %d", got, len(records))
	}
	late := inc.Snapshot(nil)
	if len(late.Records) != len(records) {
		t.Fatalf("late snapshot holds %d records, want %d", len(late.Records), len(records))
	}
	if !reflect.DeepEqual(early.Overview(), earlyOverview) {
		t.Fatal("early snapshot mutated by later ingestion")
	}
	if len(early.Records) != half {
		t.Fatalf("early snapshot grew to %d records", len(early.Records))
	}
}

// TestIncrementalConcurrentAddSnapshot exercises the lock under the
// race detector: adders and snapshotters run concurrently.
func TestIncrementalConcurrentAddSnapshot(t *testing.T) {
	records := testCorpus()
	inc := NewIncremental(DefaultPipelineConfig())
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := range records {
			inc.Add(&records[i])
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			a := inc.Snapshot(nil)
			if len(a.Records) > len(records) {
				t.Errorf("snapshot holds %d records, more than ever added", len(a.Records))
			}
		}
	}()
	wg.Wait()
	if inc.Len() != len(records) {
		t.Fatalf("accumulator holds %d records, want %d", inc.Len(), len(records))
	}
}
