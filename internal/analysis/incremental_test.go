package analysis

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/dataset"
)

// TestIncrementalSnapshotMatchesBatchPrefix: a snapshot taken after N
// records must equal a batch analysis over exactly those N records —
// same classifications, rank, Table 1, overview. This is the
// batch/online equivalence invariant the bounced service serves
// reports under.
func TestIncrementalSnapshotMatchesBatchPrefix(t *testing.T) {
	records := testCorpus()
	inc := NewIncremental(DefaultPipelineConfig())
	checkpoints := map[int]bool{len(records) / 3: true, len(records): true}
	for i := range records {
		inc.Add(&records[i])
		n := i + 1
		if !checkpoints[n] {
			continue
		}
		snap := inc.Snapshot(nil)
		batch := NewFromSource(dataset.NewSliceSource(records[:n]), DefaultPipelineConfig(), nil)
		if snap.Records.Len() != n {
			t.Fatalf("snapshot after %d records holds %d", n, snap.Records.Len())
		}
		if !reflect.DeepEqual(snap.Classified, batch.Classified) {
			t.Fatalf("classifications diverge from batch at prefix %d", n)
		}
		if !reflect.DeepEqual(snap.InEmailRank(), batch.InEmailRank()) {
			t.Fatalf("popularity rank diverges from batch at prefix %d", n)
		}
		if !reflect.DeepEqual(snap.TypeDistribution(), batch.TypeDistribution()) {
			t.Fatalf("Table 1 diverges from batch at prefix %d", n)
		}
		if !reflect.DeepEqual(snap.Overview(), batch.Overview()) {
			t.Fatalf("overview diverges from batch at prefix %d", n)
		}
		if got, want := snap.Pipeline.NumTemplates(), batch.Pipeline.NumTemplates(); got != want {
			t.Fatalf("snapshot mined %d templates at prefix %d, batch %d", got, n, want)
		}
	}
}

// TestIncrementalSnapshotDoesNotFreezeBuilder: taking a snapshot must
// leave the accumulator live — later Adds change later snapshots but
// never the one already taken.
func TestIncrementalSnapshotDoesNotFreezeBuilder(t *testing.T) {
	records := testCorpus()
	half := len(records) / 2
	inc := NewIncremental(DefaultPipelineConfig())
	for i := 0; i < half; i++ {
		inc.Add(&records[i])
	}
	early := inc.Snapshot(nil)
	earlyOverview := early.Overview()
	for i := half; i < len(records); i++ {
		inc.Add(&records[i])
	}
	if got := inc.Len(); got != len(records) {
		t.Fatalf("accumulator holds %d records after snapshot + adds, want %d", got, len(records))
	}
	late := inc.Snapshot(nil)
	if late.Records.Len() != len(records) {
		t.Fatalf("late snapshot holds %d records, want %d", late.Records.Len(), len(records))
	}
	if !reflect.DeepEqual(early.Overview(), earlyOverview) {
		t.Fatal("early snapshot mutated by later ingestion")
	}
	if early.Records.Len() != half {
		t.Fatalf("early snapshot grew to %d records", early.Records.Len())
	}
}

// TestIncrementalConcurrentAddSnapshot exercises the lock under the
// race detector: adders and snapshotters run concurrently.
func TestIncrementalConcurrentAddSnapshot(t *testing.T) {
	records := testCorpus()
	inc := NewIncremental(DefaultPipelineConfig())
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := range records {
			inc.Add(&records[i])
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			a := inc.Snapshot(nil)
			if a.Records.Len() > len(records) {
				t.Errorf("snapshot holds %d records, more than ever added", a.Records.Len())
			}
		}
	}()
	wg.Wait()
	if inc.Len() != len(records) {
		t.Fatalf("accumulator holds %d records, want %d", inc.Len(), len(records))
	}
}

// TestIncrementalAddCopiesRecord is the aliasing regression test: Add
// must deep-copy the record so callers can reuse or mutate theirs (the
// parallel decoder recycles record buffers chunk by chunk).
func TestIncrementalAddCopiesRecord(t *testing.T) {
	records := testCorpus()
	ref := testCorpus() // deterministic second copy, untouched by the clobbering below
	inc := NewIncremental(DefaultPipelineConfig())
	for i := range records {
		inc.Add(&records[i])
		// Clobber everything the caller still owns — struct fields and
		// the slice backing arrays (a pooled decoder reuses both).
		records[i].To = "clobbered@evil.com"
		for j := range records[i].DeliveryResult {
			records[i].DeliveryResult[j] = "599 clobbered"
		}
		for j := range records[i].DeliveryLatency {
			records[i].DeliveryLatency[j] = -1
		}
	}
	snap := inc.Snapshot(nil)
	for i := 0; i < snap.Records.Len(); i++ {
		got, want := snap.Records.At(i), &ref[i]
		if got.To != want.To || !reflect.DeepEqual(got.DeliveryResult, want.DeliveryResult) {
			t.Fatalf("record %d aliased the caller's buffer: got %+v want %+v", i, got, want)
		}
	}
	batch := NewFromSource(dataset.NewSliceSource(ref), DefaultPipelineConfig(), nil)
	if !reflect.DeepEqual(snap.Classified, batch.Classified) {
		t.Fatal("classifications diverge after caller-side mutation")
	}
}

// TestIncrementalWarmSnapshotMatchesBatch: re-adding records whose NDR
// lines the template miner has already absorbed leaves the pipeline
// structure unchanged, so the second snapshot must take the warm path
// (cached verdicts + suffix-only classification) and still be
// byte-identical to a batch run over all records.
func TestIncrementalWarmSnapshotMatchesBatch(t *testing.T) {
	records := testCorpus()
	inc := NewIncremental(DefaultPipelineConfig())
	for i := range records {
		inc.Add(&records[i])
	}
	inc.Snapshot(nil)
	if w, c := inc.Snapshots(); w != 0 || c != 1 {
		t.Fatalf("first snapshot: warm=%d cold=%d, want 0/1", w, c)
	}
	// The suffix repeats the corpus: identical line shapes and label
	// proportions, so neither the Drain fingerprint nor any majority
	// vote can move.
	all := append(append([]dataset.Record(nil), records...), records...)
	for i := range records {
		inc.Add(&records[i])
	}
	snap := inc.Snapshot(nil)
	if w, c := inc.Snapshots(); w != 1 || c != 1 {
		t.Fatalf("second snapshot: warm=%d cold=%d, want 1/1", w, c)
	}
	batch := NewFromSource(dataset.NewSliceSource(all), DefaultPipelineConfig(), nil)
	if !reflect.DeepEqual(snap.Classified, batch.Classified) {
		t.Fatal("warm snapshot classifications diverge from batch")
	}
	if !reflect.DeepEqual(snap.Overview(), batch.Overview()) {
		t.Fatal("warm snapshot overview diverges from batch")
	}
	if !reflect.DeepEqual(snap.TypeDistribution(), batch.TypeDistribution()) {
		t.Fatal("warm snapshot Table 1 diverges from batch")
	}
	if !reflect.DeepEqual(snap.InEmailRank(), batch.InEmailRank()) {
		t.Fatal("warm snapshot rank diverges from batch")
	}
}

// TestIncrementalColdOnNewTemplate: a structurally novel NDR line
// founds a new Drain group, which must invalidate the verdict cache
// (cold snapshot) — and the re-pass must still equal the batch run.
func TestIncrementalColdOnNewTemplate(t *testing.T) {
	records := testCorpus()
	inc := NewIncremental(DefaultPipelineConfig())
	for i := range records {
		inc.Add(&records[i])
	}
	inc.Snapshot(nil)
	novel := rec("a@s.com", "u1@novel.com", clock.StudyStart.Add(10*time.Hour),
		"584 frobnication reactor deadline wobbled at node seven")
	inc.Add(&novel)
	all := append(append([]dataset.Record(nil), records...), novel)
	snap := inc.Snapshot(nil)
	if w, c := inc.Snapshots(); w != 0 || c != 2 {
		t.Fatalf("after novel template: warm=%d cold=%d, want 0/2", w, c)
	}
	batch := NewFromSource(dataset.NewSliceSource(all), DefaultPipelineConfig(), nil)
	if !reflect.DeepEqual(snap.Classified, batch.Classified) {
		t.Fatal("cold re-pass diverges from batch")
	}
	if !reflect.DeepEqual(snap.TypeDistribution(), batch.TypeDistribution()) {
		t.Fatal("cold re-pass Table 1 diverges from batch")
	}
}

// TestIncrementalTrainerConcurrent runs the dedicated trainer
// goroutine against concurrent adders and snapshotters (the bounced
// topology) under the race detector, then checks the final snapshot
// still equals the batch run.
func TestIncrementalTrainerConcurrent(t *testing.T) {
	records := testCorpus()
	inc := NewIncremental(DefaultPipelineConfig())
	inc.StartTrainer()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := range records {
			inc.Add(&records[i])
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			inc.Snapshot(nil)
		}
	}()
	wg.Wait()
	final := inc.Finish(nil) // Finish stops the trainer
	batch := NewFromSource(dataset.NewSliceSource(records), DefaultPipelineConfig(), nil)
	if !reflect.DeepEqual(final.Classified, batch.Classified) {
		t.Fatal("trainer-fed analysis diverges from batch")
	}
}

// TestWarmSnapshotFasterThanCold is the benchmark-backed acceptance
// check: with a large stored prefix and a small dirty suffix, a warm
// snapshot must run at least 5x faster than a cold one, because it
// classifies only the suffix instead of the whole corpus.
func TestWarmSnapshotFasterThanCold(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive benchmark test")
	}
	base := testCorpus()
	const copies = 40 // ~23k records; templates saturate within the first copy
	inc := NewIncremental(DefaultPipelineConfig())
	for c := 0; c < copies; c++ {
		for i := range base {
			inc.Add(&base[i])
		}
	}
	coldStart := time.Now()
	inc.Snapshot(nil)
	cold := time.Since(coldStart)
	if _, c := inc.Snapshots(); c != 1 {
		t.Fatal("first snapshot was not cold")
	}

	warm := time.Duration(1 << 62)
	for round := 0; round < 3; round++ {
		for i := 0; i < 64; i++ {
			inc.Add(&base[i%len(base)])
		}
		start := time.Now()
		inc.Snapshot(nil)
		if d := time.Since(start); d < warm {
			warm = d
		}
	}
	if w, _ := inc.Snapshots(); w != 3 {
		t.Fatalf("warm snapshots: %d, want 3", w)
	}
	if cold < 5*warm {
		t.Fatalf("warm snapshot not ≥5x faster: cold=%v warm=%v (%.1fx)",
			cold, warm, float64(cold)/float64(warm))
	}
	t.Logf("snapshot_ms_cold=%.2f snapshot_ms_warm=%.2f (%.1fx)",
		float64(cold.Nanoseconds())/1e6, float64(warm.Nanoseconds())/1e6,
		float64(cold)/float64(warm))
}
