package analysis

import (
	"sort"
	"strings"

	"repro/internal/dataset"
	"repro/internal/ndr"
	"repro/internal/typo"
)

// RootCause is one of the paper's five root causes (Table 2).
type RootCause int

// Root causes.
const (
	CauseMalicious RootCause = iota
	CauseSpamPolicy
	CauseMisconfig
	CauseUserOperation
	CauseInfrastructure
)

// String returns the Table-2 name.
func (c RootCause) String() string {
	switch c {
	case CauseMalicious:
		return "Malicious Email Behavior"
	case CauseSpamPolicy:
		return "Spam Blocking Policy"
	case CauseMisconfig:
		return "Server Manager Misconfiguration"
	case CauseUserOperation:
		return "Improper User Operation"
	case CauseInfrastructure:
		return "Poor Email Infrastructure"
	}
	return "?"
}

// RootCauseRow is one Table-2 line.
type RootCauseRow struct {
	Cause    RootCause
	Type     string // e.g. "T8", "T8/T13"
	Reason   string
	Degree   string // "hard", "soft", "hard/soft"
	Causer   string // causative entity
	Emails   int
	Examples []string // a few sample recipients/domains for reports
}

// RootCauseTable is the full Table 2.
type RootCauseTable struct {
	Rows         []RootCauseRow
	TotalBounced int // non-ambiguous bounced emails
}

// CauseTotal sums the rows of one cause.
func (t *RootCauseTable) CauseTotal(c RootCause) int {
	n := 0
	for _, r := range t.Rows {
		if r.Cause == c {
			n += r.Emails
		}
	}
	return n
}

// Detections holds the intermediate entity detections the attribution
// rules need; exposed for the attacker/typo sections of the report.
type Detections struct {
	// GuessingSenders maps sender domain -> victim receiver domain for
	// detected username-guessing campaigns.
	GuessingSenders map[string]string
	// GuessStats quantifies the campaigns (paper: 4,273 usernames, 39
	// hits = 0.91%, 536 malicious emails received).
	GuessTargets   int // distinct guessed addresses
	GuessHits      int // guessed addresses that accepted mail
	GuessDelivered int // emails accepted at guessed addresses

	// BulkSpamSenders are sender domains whose recipients are >80%
	// leaked (paper: 31 domains, 3M emails, 70.12% hard).
	BulkSpamSenders map[string]bool
	BulkEmails      int
	BulkHard        int
	BulkSoft        int

	// UsernameTypos maps bounced recipient address -> matched typo kind.
	UsernameTypos map[string]typo.Kind
	// DomainTypos maps never-resolving receiver domain -> typo kind
	// (matched against the top of InEmailRank, like dnstwist).
	DomainTypos map[string]typo.Kind
	// NeverResolved lists receiver domains whose deliveries always
	// failed DNS resolution (squat-scan input).
	NeverResolved []string
	// InactiveAddrs are recipients bounced with "inactive" NDR text.
	InactiveAddrs map[string]bool
	// FullMailboxes are recipients that bounced T9 at least once.
	FullMailboxes map[string]bool
}

// Detect runs the entity detections over the classified corpus.
func (a *Analysis) Detect() *Detections {
	d := &Detections{
		GuessingSenders: map[string]string{},
		BulkSpamSenders: map[string]bool{},
		UsernameTypos:   map[string]typo.Kind{},
		DomainTypos:     map[string]typo.Kind{},
		InactiveAddrs:   map[string]bool{},
		FullMailboxes:   map[string]bool{},
	}
	a.detectAttackers(d)
	a.detectTypos(d)
	a.detectMailboxStates(d)
	return d
}

// detectAttackers implements Section 4.2.1's two detections.
func (a *Analysis) detectAttackers(d *Detections) {
	type senderAgg struct {
		recipients map[string]bool
		t8PerRcvr  map[string]int // receiver domain -> distinct T8 rcpts
		total      int
	}
	agg := map[string]*senderAgg{}
	for i := 0; i < a.Records.Len(); i++ {
		rec := a.Records.At(i)
		s := agg[rec.FromDomain()]
		if s == nil {
			s = &senderAgg{recipients: map[string]bool{}, t8PerRcvr: map[string]int{}}
			agg[rec.FromDomain()] = s
		}
		s.total++
		s.recipients[rec.To] = true
		if a.Classified[i].HasType(ndr.T8NoSuchUser) {
			s.t8PerRcvr[rec.ToDomain()]++
		}
	}
	for domain, s := range agg {
		// Username guessing: many non-existent recipients concentrated
		// at one receiver domain.
		for rcvr, n := range s.t8PerRcvr {
			if n >= 30 && float64(n) > 0.5*float64(s.total) {
				d.GuessingSenders[domain] = rcvr
			}
		}
		// Bulk spam: >80% of recipients in the leak corpus.
		if a.Env != nil && a.Env.Breach != nil && len(s.recipients) >= 30 {
			addrs := make([]string, 0, len(s.recipients))
			for r := range s.recipients {
				addrs = append(addrs, r)
			}
			if a.Env.Breach.PwnedShare(addrs) > 0.80 {
				d.BulkSpamSenders[domain] = true
			}
		}
	}
	// Quantify.
	guessTargets := map[string]bool{}
	guessHits := map[string]bool{}
	for i := 0; i < a.Records.Len(); i++ {
		rec := a.Records.At(i)
		if victim, ok := d.GuessingSenders[rec.FromDomain()]; ok && rec.ToDomain() == victim {
			guessTargets[rec.To] = true
			if rec.Succeeded() {
				guessHits[rec.To] = true
				d.GuessDelivered++
			}
		}
		if d.BulkSpamSenders[rec.FromDomain()] {
			d.BulkEmails++
			switch a.Classified[i].Degree {
			case dataset.HardBounced:
				d.BulkHard++
			case dataset.SoftBounced:
				d.BulkSoft++
			}
		}
	}
	d.GuessTargets = len(guessTargets)
	d.GuessHits = len(guessHits)
}

// detectTypos implements the Section-4.3.2 pipelines for username and
// domain typos.
func (a *Analysis) detectTypos(d *Detections) {
	// Username typos: T8-bounced addresses paired with successful
	// recipients of the SAME sender at >90% similarity, verified against
	// the dnstwist-style candidate set.
	type senderIO struct {
		failed map[string]bool     // T8-bounced recipient addrs
		okBy   map[string][]string // domain -> successful locals
	}
	per := map[string]*senderIO{}
	for i := 0; i < a.Records.Len(); i++ {
		rec := a.Records.At(i)
		s := per[rec.From]
		if s == nil {
			s = &senderIO{failed: map[string]bool{}, okBy: map[string][]string{}}
			per[rec.From] = s
		}
		domain := rec.ToDomain()
		local := localOf(rec.To)
		if rec.Succeeded() {
			s.okBy[domain] = append(s.okBy[domain], local)
		}
		if a.Classified[i].HasType(ndr.T8NoSuchUser) {
			s.failed[rec.To] = true
		}
	}
	for _, s := range per {
		for failedAddr := range s.failed {
			dpos := strings.LastIndexByte(failedAddr, '@')
			if dpos < 0 {
				continue
			}
			flocal, fdomain := failedAddr[:dpos], failedAddr[dpos+1:]
			for _, okLocal := range s.okBy[fdomain] {
				if okLocal == flocal || typo.Similarity(flocal, okLocal) <= 0.9 {
					continue
				}
				if kind, ok := typo.ClassifyLocal(flocal, okLocal); ok {
					d.UsernameTypos[failedAddr] = kind
					break
				}
			}
		}
	}

	// Domain typos: domains whose deliveries never resolved, matched
	// against typo candidates of the top of InEmailRank.
	neverResolved := a.neverResolvedDomains()
	d.NeverResolved = neverResolved
	top := a.rank
	if len(top) > 1000 {
		top = top[:1000]
	}
	for _, cand := range neverResolved {
		for _, popular := range top {
			if kind, ok := typo.Classify(cand, popular.Domain); ok {
				d.DomainTypos[cand] = kind
				break
			}
		}
	}
}

// neverResolvedDomains returns receiver domains whose every attempt was
// classified T2 (DNS failure) and that never accepted an email.
func (a *Analysis) neverResolvedDomains() []string {
	status := map[string]int{} // 0 unseen, 1 only-T2, 2 had other outcome
	for i := 0; i < a.Records.Len(); i++ {
		rec := a.Records.At(i)
		domain := rec.ToDomain()
		onlyT2 := !rec.Succeeded()
		for _, t := range a.Classified[i].AttemptTypes {
			if t != ndr.T2ReceiverDNS {
				onlyT2 = false
				break
			}
		}
		if onlyT2 {
			if status[domain] == 0 {
				status[domain] = 1
			}
		} else {
			status[domain] = 2
		}
	}
	var out []string
	for domain, st := range status {
		if st == 1 {
			out = append(out, domain)
		}
	}
	sort.Strings(out)
	return out
}

// detectMailboxStates collects inactive and full recipients from NDR
// text.
func (a *Analysis) detectMailboxStates(d *Detections) {
	for i := 0; i < a.Records.Len(); i++ {
		rec := a.Records.At(i)
		c := &a.Classified[i]
		for j, t := range c.AttemptTypes {
			switch t {
			case ndr.T9MailboxFull:
				d.FullMailboxes[rec.To] = true
			case ndr.T8NoSuchUser:
				if strings.Contains(strings.ToLower(rec.DeliveryResult[j]), "inactive") {
					d.InactiveAddrs[rec.To] = true
				}
			}
		}
	}
}

func localOf(addr string) string {
	if i := strings.LastIndexByte(addr, '@'); i >= 0 {
		return addr[:i]
	}
	return addr
}

// causeCollector counts Table-2 attributions in one pass over the
// corpus, using the (already multi-pass) detections for the
// attacker/typo/inactive splits.
type causeCollector struct {
	d      *Detections
	counts map[string]int
	total  int
}

func (cc *causeCollector) Add(rec *dataset.Record, c *ClassifiedRecord) {
	if c.Degree == dataset.NonBounced || c.Ambiguous {
		return
	}
	d, counts := cc.d, cc.counts
	cc.total++
	fromDom := rec.FromDomain()
	toDom := rec.ToDomain()
	isGuess := false
	if victim, ok := d.GuessingSenders[fromDom]; ok && toDom == victim {
		isGuess = true
	}
	isBulk := d.BulkSpamSenders[fromDom]
	for _, t := range c.Types {
		switch t {
		case ndr.T8NoSuchUser:
			switch {
			case isGuess:
				counts["guess"]++
			case isBulk:
				counts["bulkspam"]++
			case d.UsernameTypos[rec.To] != typo.KindNone:
				counts["usertypo"]++
			case d.InactiveAddrs[rec.To]:
				counts["inactive"]++
			default:
				counts["usertypo-unverified"]++
			}
		case ndr.T13ContentSpam:
			if isBulk {
				counts["bulkspam"]++
			} else {
				counts["spamfilter"]++
			}
		case ndr.T5Blocklisted:
			counts["blocklist"]++
		case ndr.T6Greylisted:
			counts["greylist"]++
		case ndr.T7TooFast:
			counts["toofast"]++
		case ndr.T11RateLimited:
			counts["ratelimit"]++
		case ndr.T3AuthFail:
			counts["authfail"]++
		case ndr.T4STARTTLS:
			counts["starttls"]++
		case ndr.T2ReceiverDNS:
			if _, isTypo := d.DomainTypos[toDom]; isTypo {
				counts["domtypo"]++
			} else {
				counts["mxerror"]++
			}
		case ndr.T9MailboxFull:
			counts["mailboxfull"]++
		case ndr.T14Timeout:
			counts["timeout"]++
		}
	}
}

// RootCauses builds Table 2 using the detections.
func (a *Analysis) RootCauses(d *Detections) RootCauseTable {
	if d == nil {
		d = a.Detect()
	}
	cc := causeCollector{d: d, counts: map[string]int{}}
	a.visit(&cc)
	counts, total := cc.counts, cc.total

	rows := []RootCauseRow{
		{CauseMalicious, "T8", "Guess victim email addresses", "hard", "Attacker", counts["guess"], nil},
		{CauseMalicious, "T8/T13", "Delivering large amounts of spam", "hard", "Attacker", counts["bulkspam"], nil},
		{CauseSpamPolicy, "T5", "Sender MTA listed in blocklists", "hard/soft", "Receiver mail server", counts["blocklist"], nil},
		{CauseSpamPolicy, "T6", "Sender MTA blocked by greylisting", "hard/soft", "Receiver mail server", counts["greylist"], nil},
		{CauseSpamPolicy, "T7", "Sender MTA delivers too fast", "soft", "Receiver mail server", counts["toofast"], nil},
		{CauseSpamPolicy, "T13", "Email detected as spam", "hard", "Receiver mail server", counts["spamfilter"], nil},
		{CauseSpamPolicy, "T11", "User gets too much email", "hard", "Receiver mail server", counts["ratelimit"], nil},
		{CauseMisconfig, "T3", "Sender authentication failure", "hard", "Sender name server", counts["authfail"], nil},
		{CauseMisconfig, "T4", "Server does not support STARTTLS", "soft", "Sender mail server", counts["starttls"], nil},
		{CauseMisconfig, "T2", "Error MX record for receiver domain", "hard", "Receiver name server", counts["mxerror"], nil},
		{CauseUserOperation, "T2", "Receiver domain name typo", "hard", "Sender", counts["domtypo"], nil},
		{CauseUserOperation, "T8", "Receiver username typo", "hard", "Sender", counts["usertypo"] + counts["usertypo-unverified"], nil},
		{CauseUserOperation, "T8", "Receiver email address is inactive", "hard", "Receiver", counts["inactive"], nil},
		{CauseUserOperation, "T9", "Receiver mailbox is full", "hard", "Receiver", counts["mailboxfull"], nil},
		{CauseInfrastructure, "T14", "SMTP session timeout", "soft", "/", counts["timeout"], nil},
	}
	return RootCauseTable{Rows: rows, TotalBounced: total}
}
