package analysis

import (
	"sort"
	"strings"

	"repro/internal/dataset"
	"repro/internal/ndr"
	"repro/internal/typo"
)

// RootCause is one of the paper's five root causes (Table 2).
type RootCause int

// Root causes.
const (
	CauseMalicious RootCause = iota
	CauseSpamPolicy
	CauseMisconfig
	CauseUserOperation
	CauseInfrastructure
)

// String returns the Table-2 name.
func (c RootCause) String() string {
	switch c {
	case CauseMalicious:
		return "Malicious Email Behavior"
	case CauseSpamPolicy:
		return "Spam Blocking Policy"
	case CauseMisconfig:
		return "Server Manager Misconfiguration"
	case CauseUserOperation:
		return "Improper User Operation"
	case CauseInfrastructure:
		return "Poor Email Infrastructure"
	}
	return "?"
}

// RootCauseRow is one Table-2 line.
type RootCauseRow struct {
	Cause    RootCause
	Type     string // e.g. "T8", "T8/T13"
	Reason   string
	Degree   string // "hard", "soft", "hard/soft"
	Causer   string // causative entity
	Emails   int
	Examples []string // a few sample recipients/domains for reports
}

// RootCauseTable is the full Table 2.
type RootCauseTable struct {
	Rows         []RootCauseRow
	TotalBounced int // non-ambiguous bounced emails
}

// CauseTotal sums the rows of one cause.
func (t *RootCauseTable) CauseTotal(c RootCause) int {
	n := 0
	for _, r := range t.Rows {
		if r.Cause == c {
			n += r.Emails
		}
	}
	return n
}

// Detections holds the intermediate entity detections the attribution
// rules need; exposed for the attacker/typo sections of the report.
type Detections struct {
	// GuessingSenders maps sender domain -> victim receiver domain for
	// detected username-guessing campaigns.
	GuessingSenders map[string]string
	// GuessStats quantifies the campaigns (paper: 4,273 usernames, 39
	// hits = 0.91%, 536 malicious emails received).
	GuessTargets   int // distinct guessed addresses
	GuessHits      int // guessed addresses that accepted mail
	GuessDelivered int // emails accepted at guessed addresses

	// BulkSpamSenders are sender domains whose recipients are >80%
	// leaked (paper: 31 domains, 3M emails, 70.12% hard).
	BulkSpamSenders map[string]bool
	BulkEmails      int
	BulkHard        int
	BulkSoft        int

	// UsernameTypos maps bounced recipient address -> matched typo kind.
	UsernameTypos map[string]typo.Kind
	// DomainTypos maps never-resolving receiver domain -> typo kind
	// (matched against the top of InEmailRank, like dnstwist).
	DomainTypos map[string]typo.Kind
	// NeverResolved lists receiver domains whose deliveries always
	// failed DNS resolution (squat-scan input).
	NeverResolved []string
	// InactiveAddrs are recipients bounced with "inactive" NDR text.
	InactiveAddrs map[string]bool
	// FullMailboxes are recipients that bounced T9 at least once.
	FullMailboxes map[string]bool
}

// Detect runs the entity detections over the classified corpus.
func (a *Analysis) Detect() *Detections {
	dc := newDetectCollector()
	a.visit(dc)
	return dc.result(a.Env, a.rank)
}

// detectSender aggregates one sender domain's Section-4.2.1 state.
type detectSender struct {
	total      int
	recipients map[string]bool
	t8PerRcvr  map[string]int // receiver domain -> T8-bounced records
}

// detectIO aggregates one full sender address's typo-detection state.
type detectIO struct {
	failed map[string]bool     // T8-bounced recipient addrs
	okBy   map[string][]string // domain -> successful locals
}

// bulkAgg counts one sender domain's emails by degree, resolved
// against the bulk-spam sender set after merge.
type bulkAgg struct {
	emails, hard, soft int
}

// detectCollector accumulates, in one pass, the raw order-free state
// the Section-4.2.1/4.3.2 detections need. Everything threshold-
// dependent (the ≥30 cutoffs, the pwned-share test, typo matching,
// quantification) happens in result over the merged state, because a
// sender can cross a threshold only once shards combine.
type detectCollector struct {
	senders map[string]*detectSender // sender domain
	perFrom map[string]*detectIO     // full sender address
	// pairs counts succeeded deliveries per (sender domain, receiver
	// domain, recipient) — quantifies guessing campaigns after merge.
	pairs map[string]int // "fromDom\x00toDom\x00To" -> delivered
	bulk  map[string]*bulkAgg
	// resolved tracks receiver-domain DNS state: 1 = only-T2 so far,
	// 2 = had another outcome (merge takes the max).
	resolved map[string]uint8
	inactive map[string]bool
	full     map[string]bool
}

func newDetectCollector() *detectCollector {
	return &detectCollector{
		senders:  map[string]*detectSender{},
		perFrom:  map[string]*detectIO{},
		pairs:    map[string]int{},
		bulk:     map[string]*bulkAgg{},
		resolved: map[string]uint8{},
		inactive: map[string]bool{},
		full:     map[string]bool{},
	}
}

func (dc *detectCollector) Add(rec *dataset.Record, c *ClassifiedRecord) {
	fromDom := rec.FromDomain()
	toDom := rec.ToDomain()
	isT8 := c.HasType(ndr.T8NoSuchUser)

	s := dc.senders[fromDom]
	if s == nil {
		s = &detectSender{recipients: map[string]bool{}, t8PerRcvr: map[string]int{}}
		dc.senders[fromDom] = s
	}
	s.total++
	s.recipients[rec.To] = true
	if isT8 {
		s.t8PerRcvr[toDom]++
	}

	pk := fromDom + "\x00" + toDom + "\x00" + rec.To
	if rec.Succeeded() {
		dc.pairs[pk]++
	} else if _, ok := dc.pairs[pk]; !ok {
		dc.pairs[pk] = 0
	}

	b := dc.bulk[fromDom]
	if b == nil {
		b = &bulkAgg{}
		dc.bulk[fromDom] = b
	}
	b.emails++
	switch c.Degree {
	case dataset.HardBounced:
		b.hard++
	case dataset.SoftBounced:
		b.soft++
	}

	io := dc.perFrom[rec.From]
	if io == nil {
		io = &detectIO{failed: map[string]bool{}, okBy: map[string][]string{}}
		dc.perFrom[rec.From] = io
	}
	if rec.Succeeded() {
		io.okBy[toDom] = append(io.okBy[toDom], localOf(rec.To))
	}
	if isT8 {
		io.failed[rec.To] = true
	}

	onlyT2 := !rec.Succeeded()
	for _, t := range c.AttemptTypes {
		if t != ndr.T2ReceiverDNS {
			onlyT2 = false
			break
		}
	}
	if onlyT2 {
		if dc.resolved[toDom] == 0 {
			dc.resolved[toDom] = 1
		}
	} else {
		dc.resolved[toDom] = 2
	}

	for j, t := range c.AttemptTypes {
		switch t {
		case ndr.T9MailboxFull:
			dc.full[rec.To] = true
		case ndr.T8NoSuchUser:
			if strings.Contains(strings.ToLower(rec.DeliveryResult[j]), "inactive") {
				dc.inactive[rec.To] = true
			}
		}
	}
}

func (dc *detectCollector) Merge(other PartialCollector) error {
	o, ok := other.(*detectCollector)
	if !ok {
		return mergeTypeError("detect", other)
	}
	for dom, s := range o.senders {
		t := dc.senders[dom]
		if t == nil {
			t = &detectSender{recipients: map[string]bool{}, t8PerRcvr: map[string]int{}}
			dc.senders[dom] = t
		}
		t.total += s.total
		for r := range s.recipients {
			t.recipients[r] = true
		}
		for r, n := range s.t8PerRcvr {
			t.t8PerRcvr[r] += n
		}
	}
	for from, io := range o.perFrom {
		t := dc.perFrom[from]
		if t == nil {
			t = &detectIO{failed: map[string]bool{}, okBy: map[string][]string{}}
			dc.perFrom[from] = t
		}
		for f := range io.failed {
			t.failed[f] = true
		}
		for dom, locals := range io.okBy {
			t.okBy[dom] = append(t.okBy[dom], locals...)
		}
	}
	for pk, n := range o.pairs {
		dc.pairs[pk] += n
	}
	for dom, b := range o.bulk {
		t := dc.bulk[dom]
		if t == nil {
			t = &bulkAgg{}
			dc.bulk[dom] = t
		}
		t.emails += b.emails
		t.hard += b.hard
		t.soft += b.soft
	}
	for dom, st := range o.resolved {
		if st > dc.resolved[dom] {
			dc.resolved[dom] = st
		}
	}
	for addr := range o.inactive {
		dc.inactive[addr] = true
	}
	for addr := range o.full {
		dc.full[addr] = true
	}
	return nil
}

func (dc *detectCollector) MarshalPartial() []byte {
	var e enc
	e.version(1)
	e.u64(uint64(len(dc.senders)))
	for _, dom := range sortedKeys(dc.senders) {
		s := dc.senders[dom]
		e.str(dom)
		e.intv(s.total)
		e.strSet(s.recipients)
		e.strIntMap(s.t8PerRcvr)
	}
	e.u64(uint64(len(dc.perFrom)))
	for _, from := range sortedKeys(dc.perFrom) {
		io := dc.perFrom[from]
		e.str(from)
		e.strSet(io.failed)
		e.u64(uint64(len(io.okBy)))
		for _, dom := range sortedKeys(io.okBy) {
			e.str(dom)
			// Locals are a multiset; sorting canonicalizes the bytes.
			locals := append([]string(nil), io.okBy[dom]...)
			sort.Strings(locals)
			e.strList(locals)
		}
	}
	e.strIntMap(dc.pairs)
	e.u64(uint64(len(dc.bulk)))
	for _, dom := range sortedKeys(dc.bulk) {
		b := dc.bulk[dom]
		e.str(dom)
		e.intv(b.emails)
		e.intv(b.hard)
		e.intv(b.soft)
	}
	e.u64(uint64(len(dc.resolved)))
	for _, dom := range sortedKeys(dc.resolved) {
		e.str(dom)
		e.intv(int(dc.resolved[dom]))
	}
	e.strSet(dc.inactive)
	e.strSet(dc.full)
	return e.buf
}

func (dc *detectCollector) UnmarshalPartial(b []byte) error {
	d := dec{b: b}
	d.checkVersion("detect", 1)
	n := d.count()
	dc.senders = make(map[string]*detectSender, n)
	for i := 0; i < n; i++ {
		dom := d.str()
		s := &detectSender{}
		s.total = d.intv()
		s.recipients = d.strSet()
		s.t8PerRcvr = d.strIntMap()
		dc.senders[dom] = s
	}
	n = d.count()
	dc.perFrom = make(map[string]*detectIO, n)
	for i := 0; i < n; i++ {
		from := d.str()
		io := &detectIO{}
		io.failed = d.strSet()
		dn := d.count()
		io.okBy = make(map[string][]string, dn)
		for j := 0; j < dn; j++ {
			dom := d.str()
			io.okBy[dom] = d.strList()
		}
		dc.perFrom[from] = io
	}
	dc.pairs = d.strIntMap()
	n = d.count()
	dc.bulk = make(map[string]*bulkAgg, n)
	for i := 0; i < n; i++ {
		dom := d.str()
		dc.bulk[dom] = &bulkAgg{emails: d.intv(), hard: d.intv(), soft: d.intv()}
	}
	n = d.count()
	dc.resolved = make(map[string]uint8, n)
	for i := 0; i < n; i++ {
		dom := d.str()
		dc.resolved[dom] = uint8(d.intv())
	}
	dc.inactive = d.strSet()
	dc.full = d.strSet()
	return d.err
}

// result resolves the accumulated state into Detections. Everything
// here is a pure function of the merged state (sender/receiver
// iteration runs in sorted order wherever a write could collide), so
// any shard split and merge order yields the same detections.
func (dc *detectCollector) result(env *Environment, rank []dataset.RankEntry) *Detections {
	d := &Detections{
		GuessingSenders: map[string]string{},
		BulkSpamSenders: map[string]bool{},
		UsernameTypos:   map[string]typo.Kind{},
		DomainTypos:     map[string]typo.Kind{},
		InactiveAddrs:   dc.inactive,
		FullMailboxes:   dc.full,
	}

	// Username guessing + bulk spam (Section 4.2.1).
	for _, domain := range sortedKeys(dc.senders) {
		s := dc.senders[domain]
		for _, rcvr := range sortedKeys(s.t8PerRcvr) {
			n := s.t8PerRcvr[rcvr]
			if n >= 30 && float64(n) > 0.5*float64(s.total) {
				d.GuessingSenders[domain] = rcvr
			}
		}
		if env != nil && env.Breach != nil && len(s.recipients) >= 30 {
			addrs := sortedKeys(s.recipients)
			if env.Breach.PwnedShare(addrs) > 0.80 {
				d.BulkSpamSenders[domain] = true
			}
		}
	}

	// Quantify.
	guessTargets := map[string]bool{}
	guessHits := map[string]bool{}
	for pk, delivered := range dc.pairs {
		parts := strings.SplitN(pk, "\x00", 3)
		if len(parts) != 3 {
			continue
		}
		fromDom, toDom, to := parts[0], parts[1], parts[2]
		if victim, ok := d.GuessingSenders[fromDom]; ok && toDom == victim {
			guessTargets[to] = true
			if delivered > 0 {
				guessHits[to] = true
				d.GuessDelivered += delivered
			}
		}
	}
	d.GuessTargets = len(guessTargets)
	d.GuessHits = len(guessHits)
	for domain := range d.BulkSpamSenders {
		if b := dc.bulk[domain]; b != nil {
			d.BulkEmails += b.emails
			d.BulkHard += b.hard
			d.BulkSoft += b.soft
		}
	}

	// Username typos: T8-bounced addresses paired with successful
	// recipients of the SAME sender at >90% similarity, verified against
	// the dnstwist-style candidate set. Senders iterate in sorted order
	// and the first classification of an address wins, so colliding
	// writes across senders stay deterministic.
	for _, from := range sortedKeys(dc.perFrom) {
		s := dc.perFrom[from]
		for failedAddr := range s.failed {
			if _, done := d.UsernameTypos[failedAddr]; done {
				continue
			}
			dpos := strings.LastIndexByte(failedAddr, '@')
			if dpos < 0 {
				continue
			}
			flocal, fdomain := failedAddr[:dpos], failedAddr[dpos+1:]
			okLocals := append([]string(nil), s.okBy[fdomain]...)
			sort.Strings(okLocals)
			for _, okLocal := range okLocals {
				if okLocal == flocal || typo.Similarity(flocal, okLocal) <= 0.9 {
					continue
				}
				if kind, ok := typo.ClassifyLocal(flocal, okLocal); ok {
					d.UsernameTypos[failedAddr] = kind
					break
				}
			}
		}
	}

	// Domain typos: domains whose deliveries never resolved, matched
	// against typo candidates of the top of InEmailRank.
	var never []string
	for dom, st := range dc.resolved {
		if st == 1 {
			never = append(never, dom)
		}
	}
	sort.Strings(never)
	d.NeverResolved = never
	top := rank
	if len(top) > 1000 {
		top = top[:1000]
	}
	for _, cand := range never {
		for _, popular := range top {
			if kind, ok := typo.Classify(cand, popular.Domain); ok {
				d.DomainTypos[cand] = kind
				break
			}
		}
	}
	return d
}

func localOf(addr string) string {
	if i := strings.LastIndexByte(addr, '@'); i >= 0 {
		return addr[:i]
	}
	return addr
}

// causeCollector accumulates Table-2 attributions in one pass. The
// conditional attributions (guessing, bulk spam, typos, inactive)
// depend on the merged detections, so Add keys them by the entities the
// rules consult and resolve applies the rules afterwards.
type causeCollector struct {
	total int
	t8    map[string]int // "fromDom\x00toDom\x00To" -> T8 emails
	t13   map[string]int // sender domain -> T13 emails
	t2    map[string]int // receiver domain -> T2 emails
	flat  map[string]int // unconditional attributions
}

func newCauseCollector() *causeCollector {
	return &causeCollector{
		t8: map[string]int{}, t13: map[string]int{},
		t2: map[string]int{}, flat: map[string]int{},
	}
}

func (cc *causeCollector) Add(rec *dataset.Record, c *ClassifiedRecord) {
	if c.Degree == dataset.NonBounced || c.Ambiguous {
		return
	}
	cc.total++
	for _, t := range c.Types {
		switch t {
		case ndr.T8NoSuchUser:
			cc.t8[rec.FromDomain()+"\x00"+rec.ToDomain()+"\x00"+rec.To]++
		case ndr.T13ContentSpam:
			cc.t13[rec.FromDomain()]++
		case ndr.T2ReceiverDNS:
			cc.t2[rec.ToDomain()]++
		case ndr.T5Blocklisted:
			cc.flat["blocklist"]++
		case ndr.T6Greylisted:
			cc.flat["greylist"]++
		case ndr.T7TooFast:
			cc.flat["toofast"]++
		case ndr.T11RateLimited:
			cc.flat["ratelimit"]++
		case ndr.T3AuthFail:
			cc.flat["authfail"]++
		case ndr.T4STARTTLS:
			cc.flat["starttls"]++
		case ndr.T9MailboxFull:
			cc.flat["mailboxfull"]++
		case ndr.T14Timeout:
			cc.flat["timeout"]++
		}
	}
}

func (cc *causeCollector) Merge(other PartialCollector) error {
	o, ok := other.(*causeCollector)
	if !ok {
		return mergeTypeError("cause", other)
	}
	cc.total += o.total
	for k, n := range o.t8 {
		cc.t8[k] += n
	}
	for k, n := range o.t13 {
		cc.t13[k] += n
	}
	for k, n := range o.t2 {
		cc.t2[k] += n
	}
	for k, n := range o.flat {
		cc.flat[k] += n
	}
	return nil
}

func (cc *causeCollector) MarshalPartial() []byte {
	var e enc
	e.version(1)
	e.intv(cc.total)
	e.strIntMap(cc.t8)
	e.strIntMap(cc.t13)
	e.strIntMap(cc.t2)
	e.strIntMap(cc.flat)
	return e.buf
}

func (cc *causeCollector) UnmarshalPartial(b []byte) error {
	d := dec{b: b}
	d.checkVersion("cause", 1)
	cc.total = d.intv()
	cc.t8 = d.strIntMap()
	cc.t13 = d.strIntMap()
	cc.t2 = d.strIntMap()
	cc.flat = d.strIntMap()
	return d.err
}

// resolve applies the detection-dependent attribution rules to the
// accumulated keys.
func (cc *causeCollector) resolve(d *Detections) map[string]int {
	counts := map[string]int{}
	for k, n := range cc.flat {
		counts[k] += n
	}
	for pk, n := range cc.t8 {
		parts := strings.SplitN(pk, "\x00", 3)
		if len(parts) != 3 {
			continue
		}
		fromDom, toDom, to := parts[0], parts[1], parts[2]
		isGuess := false
		if victim, ok := d.GuessingSenders[fromDom]; ok && toDom == victim {
			isGuess = true
		}
		switch {
		case isGuess:
			counts["guess"] += n
		case d.BulkSpamSenders[fromDom]:
			counts["bulkspam"] += n
		case d.UsernameTypos[to] != typo.KindNone:
			counts["usertypo"] += n
		case d.InactiveAddrs[to]:
			counts["inactive"] += n
		default:
			counts["usertypo-unverified"] += n
		}
	}
	for fromDom, n := range cc.t13 {
		if d.BulkSpamSenders[fromDom] {
			counts["bulkspam"] += n
		} else {
			counts["spamfilter"] += n
		}
	}
	for toDom, n := range cc.t2 {
		if _, isTypo := d.DomainTypos[toDom]; isTypo {
			counts["domtypo"] += n
		} else {
			counts["mxerror"] += n
		}
	}
	return counts
}

// buildRootCauseTable lays the resolved counts out as the paper's
// fifteen Table-2 rows.
func buildRootCauseTable(counts map[string]int, total int) RootCauseTable {
	rows := []RootCauseRow{
		{CauseMalicious, "T8", "Guess victim email addresses", "hard", "Attacker", counts["guess"], nil},
		{CauseMalicious, "T8/T13", "Delivering large amounts of spam", "hard", "Attacker", counts["bulkspam"], nil},
		{CauseSpamPolicy, "T5", "Sender MTA listed in blocklists", "hard/soft", "Receiver mail server", counts["blocklist"], nil},
		{CauseSpamPolicy, "T6", "Sender MTA blocked by greylisting", "hard/soft", "Receiver mail server", counts["greylist"], nil},
		{CauseSpamPolicy, "T7", "Sender MTA delivers too fast", "soft", "Receiver mail server", counts["toofast"], nil},
		{CauseSpamPolicy, "T13", "Email detected as spam", "hard", "Receiver mail server", counts["spamfilter"], nil},
		{CauseSpamPolicy, "T11", "User gets too much email", "hard", "Receiver mail server", counts["ratelimit"], nil},
		{CauseMisconfig, "T3", "Sender authentication failure", "hard", "Sender name server", counts["authfail"], nil},
		{CauseMisconfig, "T4", "Server does not support STARTTLS", "soft", "Sender mail server", counts["starttls"], nil},
		{CauseMisconfig, "T2", "Error MX record for receiver domain", "hard", "Receiver name server", counts["mxerror"], nil},
		{CauseUserOperation, "T2", "Receiver domain name typo", "hard", "Sender", counts["domtypo"], nil},
		{CauseUserOperation, "T8", "Receiver username typo", "hard", "Sender", counts["usertypo"] + counts["usertypo-unverified"], nil},
		{CauseUserOperation, "T8", "Receiver email address is inactive", "hard", "Receiver", counts["inactive"], nil},
		{CauseUserOperation, "T9", "Receiver mailbox is full", "hard", "Receiver", counts["mailboxfull"], nil},
		{CauseInfrastructure, "T14", "SMTP session timeout", "soft", "/", counts["timeout"], nil},
	}
	return RootCauseTable{Rows: rows, TotalBounced: total}
}

// RootCauses builds Table 2 using the detections.
func (a *Analysis) RootCauses(d *Detections) RootCauseTable {
	if d == nil {
		d = a.Detect()
	}
	cc := newCauseCollector()
	a.visit(cc)
	return buildRootCauseTable(cc.resolve(d), cc.total)
}
