package analysis

import "sort"

// SortRanked orders rows by a descending measure with an ascending
// name tie-break — the shared normalization every result() uses for
// map-fed rows, where equal measures would otherwise order
// nondeterministically. One helper instead of a hand-rolled
// sort.Slice per table keeps the tie-break rule identical across the
// latency, infrastructure, typo-kind, domain, and MTA listings, which
// the partial-merge byte-identity invariant depends on.
func SortRanked[T any](rows []T, measure func(T) float64, name func(T) string) {
	sort.Slice(rows, func(i, j int) bool {
		mi, mj := measure(rows[i]), measure(rows[j])
		if mi != mj {
			return mi > mj
		}
		return name(rows[i]) < name(rows[j])
	})
}
