package analysis

import (
	"sync"

	"repro/internal/dataset"
)

// Incremental accumulates delivery records online — the always-on
// counterpart of the batch constructors. Records feed the Drain
// template miner and the popularity counts as they arrive; Snapshot
// produces, at any instant, an Analysis identical to a batch run over
// exactly the records added so far (the batch/online equivalence
// invariant the bounced service's differential test enforces).
//
// Add and Snapshot are safe for concurrent use. Snapshot holds the
// ingest lock only while cloning the pipeline state; record
// classification runs outside it, so ingestion stalls for the clone,
// not for the full analysis.
type Incremental struct {
	mu      sync.Mutex
	b       *PipelineBuilder
	records []dataset.Record
	counts  map[string]int
}

// NewIncremental starts an empty accumulator (zero cfg.TopTemplates
// selects the defaults, as in the batch constructors).
func NewIncremental(cfg PipelineConfig) *Incremental {
	return &Incremental{
		b:      NewPipelineBuilder(cfg),
		counts: make(map[string]int),
	}
}

// Add absorbs one record: Drain trains on its NDR lines and the
// popularity counts update. Order matters (template mining is
// deterministic in line order), so feed records in stream order.
func (inc *Incremental) Add(rec *dataset.Record) {
	inc.mu.Lock()
	inc.b.Add(rec)
	inc.counts[rec.ToDomain()]++
	inc.records = append(inc.records, *rec)
	inc.mu.Unlock()
}

// Len reports how many records have been added.
func (inc *Incremental) Len() int {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	return len(inc.records)
}

// Snapshot builds an Analysis over the records added so far without
// stopping ingestion: the pipeline state is deep-copied, labeled, and
// trained, then the retained records are classified against the copy.
func (inc *Incremental) Snapshot(env *Environment) *Analysis {
	inc.mu.Lock()
	n := len(inc.records)
	records := inc.records[:n:n]
	counts := make(map[string]int, len(inc.counts))
	for d, c := range inc.counts {
		counts[d] = c
	}
	p := inc.b.Snapshot()
	inc.mu.Unlock()
	return assemble(records, p, counts, env)
}

// Finish consumes the accumulator into its final Analysis without the
// snapshot copy — the batch path. The Incremental must not be used
// afterwards.
func (inc *Incremental) Finish(env *Environment) *Analysis {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	return assemble(inc.records, inc.b.Finish(), inc.counts, env)
}

// assemble classifies records with p and wires the derived indexes —
// the shared tail of every Analysis constructor.
func assemble(records []dataset.Record, p *Pipeline, counts map[string]int, env *Environment) *Analysis {
	a := &Analysis{
		Records:  records,
		Pipeline: p,
		Env:      env,
		rankPos:  make(map[string]int),
	}
	a.Classified = make([]ClassifiedRecord, len(records))
	for i := range records {
		a.Classified[i] = p.ClassifyRecord(&records[i])
	}
	a.rank = dataset.RankFromCounts(counts)
	for i, e := range a.rank {
		a.rankPos[e.Domain] = i
	}
	return a
}
