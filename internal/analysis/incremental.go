package analysis

import (
	"maps"
	"runtime"
	"sync"

	"repro/internal/dataset"
)

// Incremental accumulates delivery records online — the always-on
// counterpart of the batch constructors. Records land in a slab store
// as they arrive; Drain training rides a dedicated trainer goroutine
// (StartTrainer) or is caught up lazily by Snapshot/Finish, and
// Snapshot produces, at any instant, an Analysis identical to a batch
// run over exactly the records added so far (the batch/online
// equivalence invariant the bounced service's differential test
// enforces).
//
// Locking is split three ways so the hot paths never contend:
//
//   - storeMu guards the slab store and popularity counts — the only
//     state Add touches, keeping the ingest critical section to an
//     append and a map bump.
//   - trainMu guards the pipeline builder and the training watermark
//     (how many stored records Drain has absorbed). Lock order is
//     trainMu before storeMu, never the reverse.
//   - snapMu serializes snapshots and guards the warm-verdict cache.
//
// Snapshot reuse ("warm" snapshots): classification verdicts depend
// only on the finished pipeline's match structure and labels, so when
// those are unchanged since the previous snapshot (checked via the
// Drain structural fingerprint plus label-map equality), the cached
// verdicts for the previous prefix stay valid and only the new suffix
// is classified — work proportional to the records added since, not to
// the total. Any structural change invalidates the cache and forces a
// full re-pass, so results are byte-identical either way.
//
// Add, Snapshot, and Len are safe for concurrent use.
type Incremental struct {
	storeMu   sync.Mutex
	store     dataset.RecordStore
	counts    map[string]int
	trainCond *sync.Cond
	stopTrain bool
	trainerDn chan struct{} // non-nil while a trainer goroutine runs

	trainMu sync.Mutex
	b       [NumStreams]*PipelineBuilder // per-substream builders
	trained int                          // records [0,trained) are mined into b

	snapMu    sync.Mutex
	lastPipes [NumStreams]*Pipeline
	verdicts  []ClassifiedRecord // cache: verdicts[i] classifies record i under lastPipes
	warm      uint64
	cold      uint64
}

// NewIncremental starts an empty accumulator (zero cfg.TopTemplates
// selects the defaults, as in the batch constructors).
func NewIncremental(cfg PipelineConfig) *Incremental {
	inc := &Incremental{
		counts: make(map[string]int),
	}
	for s := range inc.b {
		inc.b[s] = NewPipelineBuilder(cfg)
	}
	inc.trainCond = sync.NewCond(&inc.storeMu)
	return inc
}

// Add absorbs one record under a short critical section: an isolated
// copy lands in the slab store via arena-backed AppendCopy (the caller
// keeps ownership of rec and may mutate it afterwards) and the
// popularity counts update. Order matters (template mining is
// deterministic in record order), so feed records in stream order.
// Drain training happens asynchronously.
func (inc *Incremental) Add(rec *dataset.Record) {
	dom := rec.ToDomain()
	inc.storeMu.Lock()
	inc.store.AppendCopy(rec)
	inc.counts[dom]++
	inc.storeMu.Unlock()
	inc.trainCond.Signal()
}

// AddBatch absorbs a slice of records under one critical section and
// one trainer wakeup — the batch counterpart of Add, with the same
// copy-on-append isolation. Records are appended in slice order.
func (inc *Incremental) AddBatch(recs []dataset.Record) {
	if len(recs) == 0 {
		return
	}
	inc.storeMu.Lock()
	for i := range recs {
		inc.store.AppendCopy(&recs[i])
		inc.counts[recs[i].ToDomain()]++
	}
	inc.storeMu.Unlock()
	inc.trainCond.Signal()
}

// Len reports how many records have been added.
func (inc *Incremental) Len() int {
	inc.storeMu.Lock()
	defer inc.storeMu.Unlock()
	return inc.store.Len()
}

// Snapshots reports how many snapshots ran warm (cached verdicts kept,
// only the new suffix classified) versus cold (full re-pass).
func (inc *Incremental) Snapshots() (warm, cold uint64) {
	inc.snapMu.Lock()
	defer inc.snapMu.Unlock()
	return inc.warm, inc.cold
}

// StartTrainer launches the dedicated training goroutine, which keeps
// the Drain builder caught up with the store so snapshots find little
// or no training backlog. Idempotent; pair with StopTrainer.
func (inc *Incremental) StartTrainer() {
	inc.storeMu.Lock()
	if inc.trainerDn != nil {
		inc.storeMu.Unlock()
		return
	}
	inc.stopTrain = false
	done := make(chan struct{})
	inc.trainerDn = done
	inc.storeMu.Unlock()
	go inc.trainLoop(done)
}

// StopTrainer stops the trainer goroutine and waits for it to finish
// its current stint. Safe to call when no trainer is running.
func (inc *Incremental) StopTrainer() {
	inc.storeMu.Lock()
	inc.stopTrain = true
	done := inc.trainerDn
	inc.trainerDn = nil
	inc.storeMu.Unlock()
	inc.trainCond.Broadcast()
	if done != nil {
		<-done
	}
}

func (inc *Incremental) trainLoop(done chan struct{}) {
	defer close(done)
	seen := 0
	for {
		inc.storeMu.Lock()
		for !inc.stopTrain && inc.store.Len() == seen {
			inc.trainCond.Wait()
		}
		stop := inc.stopTrain
		n := inc.store.Len()
		view := inc.store.View()
		inc.storeMu.Unlock()
		if n > seen {
			inc.trainMu.Lock()
			inc.trainTo(view, n)
			inc.trainMu.Unlock()
			seen = n
		}
		if stop {
			return
		}
	}
}

// trainTo advances the training watermark to n over an already-taken
// store view, routing each record to its substream's builder. Caller
// holds trainMu.
func (inc *Incremental) trainTo(view dataset.Records, n int) {
	for i := inc.trained; i < n; i++ {
		rec := view.At(i)
		inc.b[StreamOf(rec)].Add(rec)
	}
	if n > inc.trained {
		inc.trained = n
	}
}

// Snapshot builds an Analysis over the records added so far without
// stopping ingestion. The builder is caught up to the store, cloned,
// and finished outside the ingest lock; then either the cached
// verdicts carry over and only the new suffix is classified (warm), or
// the whole prefix is re-classified (cold, after a pipeline-structure
// change). Suffix classification fans out across GOMAXPROCS workers
// with a deterministic indexed merge.
func (inc *Incremental) Snapshot(env *Environment) *Analysis {
	inc.snapMu.Lock()
	defer inc.snapMu.Unlock()

	// trainMu before storeMu: with trainMu held, the watermark cannot
	// move, and the store length read below can only exceed it — so the
	// clone below covers exactly the n records of this snapshot.
	inc.trainMu.Lock()
	inc.storeMu.Lock()
	n := inc.store.Len()
	view := inc.store.View()
	counts := maps.Clone(inc.counts)
	inc.storeMu.Unlock()
	inc.trainTo(view, n)
	var bcs [NumStreams]*PipelineBuilder
	for s := range inc.b {
		bcs[s] = inc.b[s].Clone()
	}
	inc.trainMu.Unlock()

	// Finish each substream warm against its own predecessor — per-shard
	// EBRC and vote reuse even when a sibling shard changed.
	sp := &ShardedPipeline{Shards: make([]*Pipeline, NumStreams)}
	allEqual := true
	for s := range bcs {
		p := bcs[s].FinishWarm(inc.lastPipes[s])
		sp.Shards[s] = p
		if !matchLabelingEqual(p, inc.lastPipes[s]) {
			allEqual = false
		}
	}

	// The verdict cache is all-or-nothing: a structural change in any
	// substream forces a full re-pass, exactly as a single pipeline's
	// change did before sharding.
	if allEqual && len(inc.verdicts) <= n {
		inc.warm++
	} else {
		inc.cold++
		inc.verdicts = nil
	}
	start := len(inc.verdicts)
	if cap(inc.verdicts) < n {
		grown := make([]ClassifiedRecord, start, n+n/4+1)
		copy(grown, inc.verdicts)
		inc.verdicts = grown
	}
	inc.verdicts = inc.verdicts[:n]
	classifyRange(sp, view, inc.verdicts, start)
	copy(inc.lastPipes[:], sp.Shards)

	// The three-index cap isolates the returned Analysis from later
	// cache growth into the same backing array.
	return assemble(view, inc.verdicts[:n:n], sp, counts, env)
}

// Finish consumes the accumulator into its final Analysis — the batch
// path. The Incremental must not be used afterwards.
func (inc *Incremental) Finish(env *Environment) *Analysis {
	inc.StopTrainer()
	inc.trainMu.Lock()
	inc.storeMu.Lock()
	n := inc.store.Len()
	view := inc.store.View()
	counts := maps.Clone(inc.counts)
	inc.storeMu.Unlock()
	inc.trainTo(view, n)
	sp := &ShardedPipeline{Shards: make([]*Pipeline, NumStreams)}
	for s := range inc.b {
		sp.Shards[s] = inc.b[s].Finish()
	}
	inc.trainMu.Unlock()

	verdicts := make([]ClassifiedRecord, n)
	classifyRange(sp, view, verdicts, 0)
	return assemble(view, verdicts, sp, counts, env)
}

// classifyRange fills out[i] = classify(view.At(i)) for i in
// [start, len(out)), fanning out across GOMAXPROCS workers when the
// span is large enough to amortize them. Each worker classifies its
// contiguous block through its own ClassifyCtx (reused token buffers
// and verdict arenas — the zero-alloc batch path). Each slot depends
// only on its own record, so the output is identical for any worker
// count, and identical to per-record sp.ClassifyRecord.
func classifyRange(sp *ShardedPipeline, view dataset.Records, out []ClassifiedRecord, start int) {
	n := len(out)
	span := n - start
	workers := runtime.GOMAXPROCS(0)
	if w := span / 2048; workers > w {
		workers = w
	}
	if workers <= 1 {
		cx := sp.NewClassifyCtx()
		for i := start; i < n; i++ {
			out[i] = cx.ClassifyRecord(view.At(i))
		}
		return
	}
	var wg sync.WaitGroup
	step := (span + workers - 1) / workers
	for lo := start; lo < n; lo += step {
		hi := lo + step
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			cx := sp.NewClassifyCtx()
			for i := lo; i < hi; i++ {
				out[i] = cx.ClassifyRecord(view.At(i))
			}
		}(lo, hi)
	}
	wg.Wait()
}

// assemble wires a classified view into an Analysis — the shared tail
// of every constructor.
func assemble(view dataset.Records, verdicts []ClassifiedRecord, p *ShardedPipeline, counts map[string]int, env *Environment) *Analysis {
	a := &Analysis{
		Records:    view,
		Classified: verdicts,
		Pipeline:   p,
		Env:        env,
		rankPos:    make(map[string]int),
	}
	a.rank = dataset.RankFromCounts(counts)
	for i, e := range a.rank {
		a.rankPos[e.Domain] = i
	}
	return a
}
