package analysis

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
)

// Stable binary codec for partial-aggregate snapshots. The encoding is
// deliberately boring: unsigned varints, zigzag varints, IEEE-754 bits
// for floats, length-prefixed strings, and map entries emitted in
// sorted key order so that equal states marshal to equal bytes no
// matter what insertion order produced them. No reflection, no
// third-party dependencies, and every compound value is
// length-prefixed so decoders can reject truncated input early.

type enc struct {
	buf []byte
}

func (e *enc) u64(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

func (e *enc) i64(v int64) {
	e.buf = binary.AppendVarint(e.buf, v)
}

func (e *enc) intv(v int) { e.i64(int64(v)) }

func (e *enc) f64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}

func (e *enc) str(s string) {
	e.u64(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *enc) boolv(b bool) {
	if b {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

func (e *enc) bytes(b []byte) {
	e.u64(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

var errTruncated = errors.New("analysis: truncated partial snapshot")

type dec struct {
	b   []byte
	err error
}

func (d *dec) fail() {
	if d.err == nil {
		d.err = errTruncated
	}
}

func (d *dec) u64() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *dec) i64() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *dec) intv() int { return int(d.i64()) }

func (d *dec) f64() float64 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 8 {
		d.fail()
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b))
	d.b = d.b[8:]
	return v
}

func (d *dec) str() string {
	n := d.u64()
	if d.err != nil {
		return ""
	}
	if uint64(len(d.b)) < n {
		d.fail()
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

func (d *dec) boolv() bool {
	if d.err != nil {
		return false
	}
	if len(d.b) < 1 {
		d.fail()
		return false
	}
	v := d.b[0] != 0
	d.b = d.b[1:]
	return v
}

func (d *dec) bytes() []byte {
	n := d.u64()
	if d.err != nil {
		return nil
	}
	if uint64(len(d.b)) < n {
		d.fail()
		return nil
	}
	b := d.b[:n:n]
	d.b = d.b[n:]
	return b
}

// count guards slice/map allocations against hostile length prefixes:
// a declared element count can never exceed the remaining bytes.
func (d *dec) count() int {
	n := d.u64()
	if d.err != nil {
		return 0
	}
	if n > uint64(len(d.b)) {
		d.fail()
		return 0
	}
	return int(n)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedIntKeys[V any](m map[int]V) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func (e *enc) strIntMap(m map[string]int) {
	e.u64(uint64(len(m)))
	for _, k := range sortedKeys(m) {
		e.str(k)
		e.intv(m[k])
	}
}

func (d *dec) strIntMap() map[string]int {
	n := d.count()
	m := make(map[string]int, n)
	for i := 0; i < n; i++ {
		k := d.str()
		m[k] = d.intv()
	}
	return m
}

func (e *enc) strSet(m map[string]bool) {
	e.u64(uint64(len(m)))
	for _, k := range sortedKeys(m) {
		e.str(k)
	}
}

func (d *dec) strSet() map[string]bool {
	n := d.count()
	m := make(map[string]bool, n)
	for i := 0; i < n; i++ {
		m[d.str()] = true
	}
	return m
}

func (e *enc) strList(list []string) {
	e.u64(uint64(len(list)))
	for _, s := range list {
		e.str(s)
	}
}

func (d *dec) strList() []string {
	n := d.count()
	list := make([]string, 0, n)
	for i := 0; i < n; i++ {
		list = append(list, d.str())
	}
	return list
}

func (e *enc) f64List(list []float64) {
	e.u64(uint64(len(list)))
	for _, v := range list {
		e.f64(v)
	}
}

func (d *dec) f64List() []float64 {
	n := d.count()
	if n == 0 {
		return nil
	}
	list := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		list = append(list, d.f64())
	}
	return list
}

func (e *enc) i64List(list []int64) {
	e.u64(uint64(len(list)))
	for _, v := range list {
		e.i64(v)
	}
}

func (d *dec) i64List() []int64 {
	n := d.count()
	if n == 0 {
		return nil
	}
	list := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		list = append(list, d.i64())
	}
	return list
}

// checkVersion reads and validates a one-byte collector version.
func (d *dec) checkVersion(name string, want byte) {
	if d.err != nil {
		return
	}
	if len(d.b) < 1 {
		d.fail()
		return
	}
	got := d.b[0]
	d.b = d.b[1:]
	if got != want {
		d.err = fmt.Errorf("analysis: %s partial version %d, want %d", name, got, want)
	}
}

func (e *enc) version(v byte) {
	e.buf = append(e.buf, v)
}
