package analysis

import (
	"sort"
	"time"

	"repro/internal/clock"
	"repro/internal/dataset"
	"repro/internal/geo"
	"repro/internal/ndr"
	"repro/internal/stats"
)

// Timeline is Figure 5's data: per-day bounce-degree counts and
// per-month volumes.
type Timeline struct {
	Days   [clock.StudyDays]struct{ Non, Soft, Hard int }
	Months []MonthVolume
}

// MonthVolume is one point of Figure 5's monthly line.
type MonthVolume struct {
	Month  string
	Emails int
}

// timelineCollector accumulates Figure 5 in one pass.
type timelineCollector struct {
	tl      Timeline
	monthly map[string]int
}

func newTimelineCollector() *timelineCollector {
	return &timelineCollector{monthly: map[string]int{}}
}

func (tc *timelineCollector) Add(rec *dataset.Record, c *ClassifiedRecord) {
	day := clock.Day(rec.StartTime)
	switch c.Degree {
	case dataset.NonBounced:
		tc.tl.Days[day].Non++
	case dataset.SoftBounced:
		tc.tl.Days[day].Soft++
	default:
		tc.tl.Days[day].Hard++
	}
	tc.monthly[clock.MonthKey(rec.StartTime)]++
}

func (tc *timelineCollector) Merge(other PartialCollector) error {
	o, ok := other.(*timelineCollector)
	if !ok {
		return mergeTypeError("timeline", other)
	}
	for d := range tc.tl.Days {
		tc.tl.Days[d].Non += o.tl.Days[d].Non
		tc.tl.Days[d].Soft += o.tl.Days[d].Soft
		tc.tl.Days[d].Hard += o.tl.Days[d].Hard
	}
	for m, n := range o.monthly {
		tc.monthly[m] += n
	}
	return nil
}

func (tc *timelineCollector) MarshalPartial() []byte {
	var e enc
	e.version(1)
	e.intv(clock.StudyDays)
	for d := range tc.tl.Days {
		e.intv(tc.tl.Days[d].Non)
		e.intv(tc.tl.Days[d].Soft)
		e.intv(tc.tl.Days[d].Hard)
	}
	e.strIntMap(tc.monthly)
	return e.buf
}

func (tc *timelineCollector) UnmarshalPartial(b []byte) error {
	d := dec{b: b}
	d.checkVersion("timeline", 1)
	if days := d.intv(); d.err == nil && days != clock.StudyDays {
		return mergeTypeError("timeline-days", tc)
	}
	for i := range tc.tl.Days {
		tc.tl.Days[i].Non = d.intv()
		tc.tl.Days[i].Soft = d.intv()
		tc.tl.Days[i].Hard = d.intv()
	}
	tc.monthly = d.strIntMap()
	return d.err
}

func (tc *timelineCollector) result() Timeline {
	tl := tc.tl
	for m, n := range tc.monthly {
		tl.Months = append(tl.Months, MonthVolume{Month: m, Emails: n})
	}
	sort.Slice(tl.Months, func(i, j int) bool { return tl.Months[i].Month < tl.Months[j].Month })
	return tl
}

// Timeline computes Figure 5.
func (a *Analysis) Timeline() Timeline {
	tc := newTimelineCollector()
	a.visit(tc)
	return tc.result()
}

// BlocklistFigure is Figure 6's data.
type BlocklistFigure struct {
	// ListedPerDay is how many proxy MTAs are blocklisted each day.
	ListedPerDay [clock.StudyDays]int
	// BlockedNormal/BlockedSpam count T5-bounced emails per day by
	// sender-ESP flag.
	BlockedNormal [clock.StudyDays]int
	BlockedSpam   [clock.StudyDays]int
	// ProxiesOver70Pct counts proxies listed on >70% of days (paper: 5).
	ProxiesOver70Pct int
	// AvgListed is the mean number of listed proxies per day
	// (paper: about half of 34).
	AvgListed float64
	// NormalShare is the share of T5-blocked emails flagged Normal
	// (paper: 78.06%).
	NormalShare float64
}

// blockedCollector accumulates Figure 6's per-day T5 counts. The
// blocklist-probe half of the figure depends only on the Environment,
// so result recomputes it from env rather than carrying it in the
// partial.
type blockedCollector struct {
	normalDays   [clock.StudyDays]int
	spamDays     [clock.StudyDays]int
	normal, spam int
}

func (bc *blockedCollector) Add(rec *dataset.Record, c *ClassifiedRecord) {
	if !c.HasType(ndr.T5Blocklisted) {
		return
	}
	day := clock.Day(rec.StartTime)
	if rec.EmailFlag == "Spam" {
		bc.spamDays[day]++
		bc.spam++
	} else {
		bc.normalDays[day]++
		bc.normal++
	}
}

func (bc *blockedCollector) Merge(other PartialCollector) error {
	o, ok := other.(*blockedCollector)
	if !ok {
		return mergeTypeError("blocked", other)
	}
	for d := range bc.normalDays {
		bc.normalDays[d] += o.normalDays[d]
		bc.spamDays[d] += o.spamDays[d]
	}
	bc.normal += o.normal
	bc.spam += o.spam
	return nil
}

func (bc *blockedCollector) MarshalPartial() []byte {
	var e enc
	e.version(1)
	e.intv(clock.StudyDays)
	for d := range bc.normalDays {
		e.intv(bc.normalDays[d])
		e.intv(bc.spamDays[d])
	}
	e.intv(bc.normal)
	e.intv(bc.spam)
	return e.buf
}

func (bc *blockedCollector) UnmarshalPartial(b []byte) error {
	d := dec{b: b}
	d.checkVersion("blocked", 1)
	if days := d.intv(); d.err == nil && days != clock.StudyDays {
		return mergeTypeError("blocked-days", bc)
	}
	for i := range bc.normalDays {
		bc.normalDays[i] = d.intv()
		bc.spamDays[i] = d.intv()
	}
	bc.normal = d.intv()
	bc.spam = d.intv()
	return d.err
}

func (bc *blockedCollector) result(env *Environment) BlocklistFigure {
	var f BlocklistFigure
	if env == nil || env.Blocklist == nil {
		return f
	}
	perProxy := make([]int, len(env.ProxyIPs))
	sum := 0
	for day := 0; day < clock.StudyDays; day++ {
		at := clock.DayStart(day).Add(12 * time.Hour)
		n := 0
		for i, ip := range env.ProxyIPs {
			if env.Blocklist.Listed(ip, at) {
				n++
				perProxy[i]++
			}
		}
		f.ListedPerDay[day] = n
		sum += n
	}
	f.AvgListed = float64(sum) / clock.StudyDays
	for _, days := range perProxy {
		if float64(days)/clock.StudyDays > 0.7 {
			f.ProxiesOver70Pct++
		}
	}
	copy(f.BlockedNormal[:], bc.normalDays[:])
	copy(f.BlockedSpam[:], bc.spamDays[:])
	if bc.normal+bc.spam > 0 {
		f.NormalShare = float64(bc.normal) / float64(bc.normal+bc.spam)
	}
	return f
}

// BlocklistFigure computes Figure 6. Requires Env.Blocklist and
// Env.ProxyIPs.
func (a *Analysis) BlocklistFigure() BlocklistFigure {
	var bc blockedCollector
	if a.Env != nil && a.Env.Blocklist != nil {
		a.visit(&bc)
	}
	return bc.result(a.Env)
}

// InfraMatrix is Figure 8: timeout ratio per (sender proxy country,
// receiver country).
type InfraMatrix struct {
	SenderCCs   []string
	ReceiverCCs []string
	// Ratio[s][r] is timeouts/emails ×100 for sender CC s, receiver CC r.
	Ratio [][]float64
	// Totals per receiver country (for ranking the worst).
	ReceiverTimeoutPct map[string]float64
}

// infraCell is one (sender CC, receiver CC) accumulator.
type infraCell struct {
	emails, timeouts int
}

// infraCollector accumulates Figure 8 in one pass. The per-record
// email dedup (one email per pair/receiver) is record-local, so it
// lives in Add; all ranking lives in result.
type infraCollector struct {
	geo         *geo.DB
	proxyRegion map[string]string
	cells       map[string]*infraCell // "proxyCC\x00cc"
	rcvr        map[string]*infraCell
}

func newInfraCollector(db *geo.DB, proxyRegion map[string]string) *infraCollector {
	return &infraCollector{
		geo: db, proxyRegion: proxyRegion,
		cells: map[string]*infraCell{}, rcvr: map[string]*infraCell{},
	}
}

func (ic *infraCollector) Add(rec *dataset.Record, c *ClassifiedRecord) {
	if ic.geo == nil {
		return
	}
	// Attribute per attempt: each attempt has a proxy and may be a
	// timeout; email-level N2 counts an email once per sender CC it
	// timed out from.
	seenPair := map[string]bool{}
	seenRcvr := map[string]bool{}
	for j := range rec.DeliveryResult {
		proxyCC := ic.proxyRegion[rec.FromIP[j]]
		ip := rec.ToIP[j]
		cc := ""
		if ip != "" {
			cc, _, _ = ic.geo.Lookup(ip)
		}
		if cc == "" {
			cc = receiverCCIn(ic.geo, rec)
		}
		if proxyCC == "" || cc == "" {
			continue
		}
		key := proxyCC + "\x00" + cc
		cell := ic.cells[key]
		if cell == nil {
			cell = &infraCell{}
			ic.cells[key] = cell
		}
		rt := ic.rcvr[cc]
		if rt == nil {
			rt = &infraCell{}
			ic.rcvr[cc] = rt
		}
		if !seenPair[key] {
			seenPair[key] = true
			cell.emails++
		}
		if !seenRcvr[cc] {
			seenRcvr[cc] = true
			rt.emails++
		}
		if c.AttemptTypes[j] == ndr.T14Timeout {
			cell.timeouts++
			rt.timeouts++
		}
	}
}

func (ic *infraCollector) Merge(other PartialCollector) error {
	o, ok := other.(*infraCollector)
	if !ok {
		return mergeTypeError("infra", other)
	}
	for k, cell := range o.cells {
		t := ic.cells[k]
		if t == nil {
			cp := *cell
			ic.cells[k] = &cp
			continue
		}
		t.emails += cell.emails
		t.timeouts += cell.timeouts
	}
	for k, cell := range o.rcvr {
		t := ic.rcvr[k]
		if t == nil {
			cp := *cell
			ic.rcvr[k] = &cp
			continue
		}
		t.emails += cell.emails
		t.timeouts += cell.timeouts
	}
	return nil
}

func encodeCellMap(e *enc, m map[string]*infraCell) {
	e.u64(uint64(len(m)))
	for _, k := range sortedKeys(m) {
		e.str(k)
		e.intv(m[k].emails)
		e.intv(m[k].timeouts)
	}
}

func decodeCellMap(d *dec) map[string]*infraCell {
	n := d.count()
	m := make(map[string]*infraCell, n)
	for i := 0; i < n; i++ {
		k := d.str()
		m[k] = &infraCell{emails: d.intv(), timeouts: d.intv()}
	}
	return m
}

func (ic *infraCollector) MarshalPartial() []byte {
	var e enc
	e.version(1)
	encodeCellMap(&e, ic.cells)
	encodeCellMap(&e, ic.rcvr)
	return e.buf
}

func (ic *infraCollector) UnmarshalPartial(b []byte) error {
	d := dec{b: b}
	d.checkVersion("infra", 1)
	ic.cells = decodeCellMap(&d)
	ic.rcvr = decodeCellMap(&d)
	return d.err
}

func (ic *infraCollector) result(minEmails, n int) InfraMatrix {
	out := InfraMatrix{ReceiverTimeoutPct: map[string]float64{}}
	type rk struct {
		cc  string
		pct float64
	}
	var ranked []rk
	for cc, c := range ic.rcvr {
		if c.emails < minEmails {
			continue
		}
		p := 100 * float64(c.timeouts) / float64(c.emails)
		out.ReceiverTimeoutPct[cc] = p
		ranked = append(ranked, rk{cc, p})
	}
	// Map-fed rows: the shared measure-desc/name-asc normalization keeps
	// the column order deterministic on every topology.
	SortRanked(ranked,
		func(r rk) float64 { return r.pct },
		func(r rk) string { return r.cc })
	if n < len(ranked) {
		ranked = ranked[:n]
	}
	for _, r := range ranked {
		out.ReceiverCCs = append(out.ReceiverCCs, r.cc)
	}
	out.SenderCCs = []string{"US", "DE", "GB", "HK"} // Figure 8's rows
	out.Ratio = make([][]float64, len(out.SenderCCs))
	for si, s := range out.SenderCCs {
		out.Ratio[si] = make([]float64, len(out.ReceiverCCs))
		for ri, r := range out.ReceiverCCs {
			c := ic.cells[s+"\x00"+r]
			if c != nil && c.emails > 0 {
				out.Ratio[si][ri] = 100 * float64(c.timeouts) / float64(c.emails)
			}
		}
	}
	return out
}

// InfraMatrix computes Figure 8 over receiver countries with at least
// minEmails deliveries, reporting the worst n receiver countries.
// Requires Env.Geo and Env.ProxyRegion.
func (a *Analysis) InfraMatrix(minEmails, n int) InfraMatrix {
	if a.Env == nil || a.Env.Geo == nil {
		return InfraMatrix{ReceiverTimeoutPct: map[string]float64{}}
	}
	ic := newInfraCollector(a.Env.Geo, a.Env.ProxyRegion)
	a.visit(ic)
	return ic.result(minEmails, n)
}

// receiverCCIn geolocates a record's receiver by any attempt with an
// IP.
func receiverCCIn(db *geo.DB, rec *dataset.Record) string {
	ip := lastNonEmpty(rec.ToIP)
	if ip == "" {
		return ""
	}
	cc, _, _ := db.Lookup(ip)
	return cc
}

// receiverCC geolocates a record's receiver by any attempt with an IP.
func (a *Analysis) receiverCC(rec *dataset.Record) string {
	return receiverCCIn(a.Env.Geo, rec)
}

// CountryLatency is one Figure-10 point.
type CountryLatency struct {
	Country  string
	Emails   int
	MedianMS float64
}

// LatencyStats is Figure 10 plus the Appendix-C aggregates.
type LatencyStats struct {
	Countries []CountryLatency
	// Global latency over successful deliveries.
	GlobalMeanMS   float64
	GlobalMedianMS float64
	// Fast/slow-Internet split (Appendix C: 9.74s/6.97s vs 16.73s/12.54s).
	FastMeanMS   float64
	FastMedianMS float64
	SlowMeanMS   float64
	SlowMedianMS float64
}

// latencyCollector accumulates per-country latency samples of
// successful deliveries. Only the raw per-country sample lists are
// partial state; the global/fast/slow aggregates derive from them at
// result time, over value-sorted lists, so that sample arrival order —
// which sharding permutes — cannot perturb the floating-point sums.
type latencyCollector struct {
	geo   *geo.DB
	perCC map[string][]float64
}

func newLatencyCollector(db *geo.DB) *latencyCollector {
	return &latencyCollector{geo: db, perCC: map[string][]float64{}}
}

func (lc *latencyCollector) Add(rec *dataset.Record, _ *ClassifiedRecord) {
	if lc.geo == nil {
		return
	}
	if !rec.Succeeded() {
		return
	}
	// Latency of the successful (final) attempt.
	lat := float64(rec.DeliveryLatency[len(rec.DeliveryLatency)-1])
	cc := receiverCCIn(lc.geo, rec)
	if cc == "" {
		return
	}
	lc.perCC[cc] = append(lc.perCC[cc], lat)
}

func (lc *latencyCollector) Merge(other PartialCollector) error {
	o, ok := other.(*latencyCollector)
	if !ok {
		return mergeTypeError("latency", other)
	}
	for cc, lats := range o.perCC {
		lc.perCC[cc] = append(lc.perCC[cc], lats...)
	}
	return nil
}

func (lc *latencyCollector) MarshalPartial() []byte {
	var e enc
	e.version(1)
	e.u64(uint64(len(lc.perCC)))
	for _, cc := range sortedKeys(lc.perCC) {
		e.str(cc)
		// Values sort before encoding: the list is a multiset, and the
		// stable-bytes guarantee requires a canonical element order.
		lats := append([]float64(nil), lc.perCC[cc]...)
		sort.Float64s(lats)
		e.f64List(lats)
	}
	return e.buf
}

func (lc *latencyCollector) UnmarshalPartial(b []byte) error {
	d := dec{b: b}
	d.checkVersion("latency", 1)
	n := d.count()
	lc.perCC = make(map[string][]float64, n)
	for i := 0; i < n; i++ {
		cc := d.str()
		lc.perCC[cc] = d.f64List()
	}
	return d.err
}

func (lc *latencyCollector) result(env *Environment, minEmails int) LatencyStats {
	var out LatencyStats
	if env == nil || env.Geo == nil {
		return out
	}
	var global, fast, slow []float64
	for _, cc := range sortedKeys(lc.perCC) {
		lats := lc.perCC[cc]
		global = append(global, lats...)
		if c, ok := env.Geo.Country(cc); ok {
			if c.FastInternet {
				fast = append(fast, lats...)
			} else {
				slow = append(slow, lats...)
			}
		}
		if len(lats) < minEmails {
			continue
		}
		out.Countries = append(out.Countries, CountryLatency{
			Country: cc, Emails: len(lats), MedianMS: stats.Median(lats),
		})
	}
	SortRanked(out.Countries,
		func(c CountryLatency) float64 { return c.MedianMS },
		func(c CountryLatency) string { return c.Country })
	// Sum in value order: Mean is sensitive to float addition order, and
	// only a canonical order makes K-shard merges bit-equal to one pass.
	sort.Float64s(global)
	sort.Float64s(fast)
	sort.Float64s(slow)
	out.GlobalMeanMS = stats.Mean(global)
	out.GlobalMedianMS = stats.Median(global)
	out.FastMeanMS = stats.Mean(fast)
	out.FastMedianMS = stats.Median(fast)
	out.SlowMeanMS = stats.Mean(slow)
	out.SlowMedianMS = stats.Median(slow)
	return out
}

// LatencyByCountry computes Figure 10 over successful deliveries,
// excluding countries below minEmails. Requires Env.Geo.
func (a *Analysis) LatencyByCountry(minEmails int) LatencyStats {
	if a.Env == nil || a.Env.Geo == nil {
		return LatencyStats{}
	}
	lc := newLatencyCollector(a.Env.Geo)
	a.visit(lc)
	return lc.result(a.Env, minEmails)
}

// STARTTLSStats is the Section-4.3.1 TLS-mandate measurement, derived
// from observed T4 NDRs (behavior, not configuration).
type STARTTLSStats struct {
	MandatingDomains int
	// Top100Share / Top10KShare are the shares of the InEmailRank
	// top-100 and the whole observed population that mandate TLS
	// (paper: 38% vs 8.53%).
	Top100Share float64
	AllShare    float64
	// SoftBounced counts emails that T4-bounced.
	SoftBounced int
}

// starttlsCollector finds TLS-mandating domains from observed T4 NDRs.
type starttlsCollector struct {
	mandating   map[string]bool
	softBounced int
}

func newSTARTTLSCollector() *starttlsCollector {
	return &starttlsCollector{mandating: map[string]bool{}}
}

func (sc *starttlsCollector) Add(rec *dataset.Record, c *ClassifiedRecord) {
	if c.HasType(ndr.T4STARTTLS) {
		sc.mandating[rec.ToDomain()] = true
		sc.softBounced++
	}
}

func (sc *starttlsCollector) Merge(other PartialCollector) error {
	o, ok := other.(*starttlsCollector)
	if !ok {
		return mergeTypeError("starttls", other)
	}
	for dom := range o.mandating {
		sc.mandating[dom] = true
	}
	sc.softBounced += o.softBounced
	return nil
}

func (sc *starttlsCollector) MarshalPartial() []byte {
	var e enc
	e.version(1)
	e.strSet(sc.mandating)
	e.intv(sc.softBounced)
	return e.buf
}

func (sc *starttlsCollector) UnmarshalPartial(b []byte) error {
	d := dec{b: b}
	d.checkVersion("starttls", 1)
	sc.mandating = d.strSet()
	sc.softBounced = d.intv()
	return d.err
}

func (sc *starttlsCollector) result(rank []dataset.RankEntry) STARTTLSStats {
	var out STARTTLSStats
	out.SoftBounced = sc.softBounced
	out.MandatingDomains = len(sc.mandating)
	top100, all := 0, 0
	for pos, e := range rank {
		if sc.mandating[e.Domain] {
			all++
			if pos < 100 {
				top100++
			}
		}
	}
	if len(rank) > 0 {
		n100 := 100
		if len(rank) < 100 {
			n100 = len(rank)
		}
		out.Top100Share = float64(top100) / float64(n100)
		out.AllShare = float64(all) / float64(len(rank))
	}
	return out
}

// STARTTLS computes the TLS-mandate stats.
func (a *Analysis) STARTTLS() STARTTLSStats {
	sc := newSTARTTLSCollector()
	a.visit(sc)
	return sc.result(a.rank)
}

// FilterDisagreement is the Section-4.2.2 cross-ESP spam-filter
// comparison: rule differences between the sender ESP's filter (the
// email_flag) and receiver filters cause both wasted single-shot
// deliveries and reputation-damaging retries.
type FilterDisagreement struct {
	// SenderSpamTotal is the number of Coremail-flagged spam emails.
	SenderSpamTotal int
	// SenderSpamNotSpamAtReceiver: flagged Spam, yet the receiver did
	// not judge it spam — it was accepted or bounced for a non-content
	// reason (receiver disagreed; paper: 46.49%).
	SenderSpamNotSpamAtReceiver int
	// ReceiverSpamTotal is the number of emails receivers rejected as
	// spam content (T13).
	ReceiverSpamTotal int
	// ReceiverSpamFlaggedNormal: rejected as spam by the receiver but
	// flagged Normal by the sender (paper: 39.46%) — these get retried,
	// burning reputation.
	ReceiverSpamFlaggedNormal int
	// NormalSpamRetryAttempts counts the extra attempts spent retrying
	// receiver-rejected spam that the sender considered Normal.
	NormalSpamRetryAttempts int
}

// SenderDisagreeShare is the share of sender-flagged spam the receiver
// accepted.
func (f FilterDisagreement) SenderDisagreeShare() float64 {
	if f.SenderSpamTotal == 0 {
		return 0
	}
	return float64(f.SenderSpamNotSpamAtReceiver) / float64(f.SenderSpamTotal)
}

// ReceiverDisagreeShare is the share of receiver-rejected spam the
// sender flagged Normal.
func (f FilterDisagreement) ReceiverDisagreeShare() float64 {
	if f.ReceiverSpamTotal == 0 {
		return 0
	}
	return float64(f.ReceiverSpamFlaggedNormal) / float64(f.ReceiverSpamTotal)
}

// filterCollector accumulates the cross-filter comparison.
type filterCollector struct {
	f FilterDisagreement
}

func (fc *filterCollector) Add(rec *dataset.Record, c *ClassifiedRecord) {
	isT13 := c.HasType(ndr.T13ContentSpam)
	if rec.EmailFlag == "Spam" {
		fc.f.SenderSpamTotal++
		if rec.Succeeded() || !isT13 {
			fc.f.SenderSpamNotSpamAtReceiver++
		}
	}
	if isT13 {
		fc.f.ReceiverSpamTotal++
		if rec.EmailFlag != "Spam" {
			fc.f.ReceiverSpamFlaggedNormal++
			if n := rec.Attempts(); n > 1 {
				fc.f.NormalSpamRetryAttempts += n - 1
			}
		}
	}
}

func (fc *filterCollector) Merge(other PartialCollector) error {
	o, ok := other.(*filterCollector)
	if !ok {
		return mergeTypeError("filter", other)
	}
	fc.f.SenderSpamTotal += o.f.SenderSpamTotal
	fc.f.SenderSpamNotSpamAtReceiver += o.f.SenderSpamNotSpamAtReceiver
	fc.f.ReceiverSpamTotal += o.f.ReceiverSpamTotal
	fc.f.ReceiverSpamFlaggedNormal += o.f.ReceiverSpamFlaggedNormal
	fc.f.NormalSpamRetryAttempts += o.f.NormalSpamRetryAttempts
	return nil
}

func (fc *filterCollector) MarshalPartial() []byte {
	var e enc
	e.version(1)
	e.intv(fc.f.SenderSpamTotal)
	e.intv(fc.f.SenderSpamNotSpamAtReceiver)
	e.intv(fc.f.ReceiverSpamTotal)
	e.intv(fc.f.ReceiverSpamFlaggedNormal)
	e.intv(fc.f.NormalSpamRetryAttempts)
	return e.buf
}

func (fc *filterCollector) UnmarshalPartial(b []byte) error {
	d := dec{b: b}
	d.checkVersion("filter", 1)
	fc.f.SenderSpamTotal = d.intv()
	fc.f.SenderSpamNotSpamAtReceiver = d.intv()
	fc.f.ReceiverSpamTotal = d.intv()
	fc.f.ReceiverSpamFlaggedNormal = d.intv()
	fc.f.NormalSpamRetryAttempts = d.intv()
	return d.err
}

// FilterDisagreement computes the cross-filter comparison.
func (a *Analysis) FilterDisagreement() FilterDisagreement {
	var fc filterCollector
	a.visit(&fc)
	return fc.f
}

// BlocklistRecovery quantifies the Section-4.2.2 finding that most
// blocklist bounces recover by switching proxy MTAs (paper: 80.71%
// redelivered, at an average of three attempts).
type BlocklistRecovery struct {
	Affected    int // emails with at least one T5 attempt
	Recovered   int // of those, eventually delivered
	AvgAttempts float64
}

// RecoveryShare is Recovered/Affected.
func (b BlocklistRecovery) RecoveryShare() float64 {
	if b.Affected == 0 {
		return 0
	}
	return float64(b.Recovered) / float64(b.Affected)
}

// recoveryCollector accumulates the T5 recovery statistic.
type recoveryCollector struct {
	out      BlocklistRecovery
	attempts int
}

func (rc *recoveryCollector) Add(rec *dataset.Record, c *ClassifiedRecord) {
	if !c.HasType(ndr.T5Blocklisted) {
		return
	}
	rc.out.Affected++
	if rec.Succeeded() {
		rc.out.Recovered++
		rc.attempts += rec.Attempts()
	}
}

func (rc *recoveryCollector) Merge(other PartialCollector) error {
	o, ok := other.(*recoveryCollector)
	if !ok {
		return mergeTypeError("recovery", other)
	}
	rc.out.Affected += o.out.Affected
	rc.out.Recovered += o.out.Recovered
	rc.attempts += o.attempts
	return nil
}

func (rc *recoveryCollector) MarshalPartial() []byte {
	var e enc
	e.version(1)
	e.intv(rc.out.Affected)
	e.intv(rc.out.Recovered)
	e.intv(rc.attempts)
	return e.buf
}

func (rc *recoveryCollector) UnmarshalPartial(b []byte) error {
	d := dec{b: b}
	d.checkVersion("recovery", 1)
	rc.out.Affected = d.intv()
	rc.out.Recovered = d.intv()
	rc.attempts = d.intv()
	return d.err
}

func (rc *recoveryCollector) result() BlocklistRecovery {
	out := rc.out
	if out.Recovered > 0 {
		out.AvgAttempts = float64(rc.attempts) / float64(out.Recovered)
	}
	return out
}

// BlocklistRecovery computes the T5 recovery statistic.
func (a *Analysis) BlocklistRecovery() BlocklistRecovery {
	var rc recoveryCollector
	a.visit(&rc)
	return rc.result()
}
