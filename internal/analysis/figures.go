package analysis

import (
	"sort"
	"time"

	"repro/internal/clock"
	"repro/internal/dataset"
	"repro/internal/ndr"
	"repro/internal/stats"
)

// Timeline is Figure 5's data: per-day bounce-degree counts and
// per-month volumes.
type Timeline struct {
	Days   [clock.StudyDays]struct{ Non, Soft, Hard int }
	Months []MonthVolume
}

// MonthVolume is one point of Figure 5's monthly line.
type MonthVolume struct {
	Month  string
	Emails int
}

// timelineCollector accumulates Figure 5 in one pass.
type timelineCollector struct {
	tl      Timeline
	monthly map[string]int
}

func newTimelineCollector() *timelineCollector {
	return &timelineCollector{monthly: map[string]int{}}
}

func (tc *timelineCollector) Add(rec *dataset.Record, c *ClassifiedRecord) {
	day := clock.Day(rec.StartTime)
	switch c.Degree {
	case dataset.NonBounced:
		tc.tl.Days[day].Non++
	case dataset.SoftBounced:
		tc.tl.Days[day].Soft++
	default:
		tc.tl.Days[day].Hard++
	}
	tc.monthly[clock.MonthKey(rec.StartTime)]++
}

func (tc *timelineCollector) result() Timeline {
	tl := tc.tl
	for m, n := range tc.monthly {
		tl.Months = append(tl.Months, MonthVolume{Month: m, Emails: n})
	}
	sort.Slice(tl.Months, func(i, j int) bool { return tl.Months[i].Month < tl.Months[j].Month })
	return tl
}

// Timeline computes Figure 5.
func (a *Analysis) Timeline() Timeline {
	tc := newTimelineCollector()
	a.visit(tc)
	return tc.result()
}

// BlocklistFigure is Figure 6's data.
type BlocklistFigure struct {
	// ListedPerDay is how many proxy MTAs are blocklisted each day.
	ListedPerDay [clock.StudyDays]int
	// BlockedNormal/BlockedSpam count T5-bounced emails per day by
	// sender-ESP flag.
	BlockedNormal [clock.StudyDays]int
	BlockedSpam   [clock.StudyDays]int
	// ProxiesOver70Pct counts proxies listed on >70% of days (paper: 5).
	ProxiesOver70Pct int
	// AvgListed is the mean number of listed proxies per day
	// (paper: about half of 34).
	AvgListed float64
	// NormalShare is the share of T5-blocked emails flagged Normal
	// (paper: 78.06%).
	NormalShare float64
}

// BlocklistFigure computes Figure 6. Requires Env.Blocklist and
// Env.ProxyIPs.
func (a *Analysis) BlocklistFigure() BlocklistFigure {
	var f BlocklistFigure
	if a.Env == nil || a.Env.Blocklist == nil {
		return f
	}
	perProxy := make([]int, len(a.Env.ProxyIPs))
	sum := 0
	for day := 0; day < clock.StudyDays; day++ {
		at := clock.DayStart(day).Add(12 * time.Hour)
		n := 0
		for i, ip := range a.Env.ProxyIPs {
			if a.Env.Blocklist.Listed(ip, at) {
				n++
				perProxy[i]++
			}
		}
		f.ListedPerDay[day] = n
		sum += n
	}
	f.AvgListed = float64(sum) / clock.StudyDays
	for _, days := range perProxy {
		if float64(days)/clock.StudyDays > 0.7 {
			f.ProxiesOver70Pct++
		}
	}
	bc := blockedCollector{f: &f}
	a.visit(&bc)
	if bc.normal+bc.spam > 0 {
		f.NormalShare = float64(bc.normal) / float64(bc.normal+bc.spam)
	}
	return f
}

// blockedCollector accumulates Figure 6's per-day T5 counts.
type blockedCollector struct {
	f            *BlocklistFigure
	normal, spam int
}

func (bc *blockedCollector) Add(rec *dataset.Record, c *ClassifiedRecord) {
	if !c.HasType(ndr.T5Blocklisted) {
		return
	}
	day := clock.Day(rec.StartTime)
	if rec.EmailFlag == "Spam" {
		bc.f.BlockedSpam[day]++
		bc.spam++
	} else {
		bc.f.BlockedNormal[day]++
		bc.normal++
	}
}

// InfraMatrix is Figure 8: timeout ratio per (sender proxy country,
// receiver country).
type InfraMatrix struct {
	SenderCCs   []string
	ReceiverCCs []string
	// Ratio[s][r] is timeouts/emails ×100 for sender CC s, receiver CC r.
	Ratio [][]float64
	// Totals per receiver country (for ranking the worst).
	ReceiverTimeoutPct map[string]float64
}

// InfraMatrix computes Figure 8 over receiver countries with at least
// minEmails deliveries, reporting the worst n receiver countries.
// Requires Env.Geo and Env.ProxyRegion.
func (a *Analysis) InfraMatrix(minEmails, n int) InfraMatrix {
	out := InfraMatrix{ReceiverTimeoutPct: map[string]float64{}}
	if a.Env == nil || a.Env.Geo == nil {
		return out
	}
	type cell struct{ emails, timeouts int }
	cells := map[[2]string]*cell{}
	rcvrTotals := map[string]*cell{}
	for i := 0; i < a.Records.Len(); i++ {
		rec := a.Records.At(i)
		// Attribute per attempt: each attempt has a proxy and may be a
		// timeout; email-level N2 counts an email once per sender CC it
		// timed out from.
		seenPair := map[[2]string]bool{}
		seenRcvr := map[string]bool{}
		for j := range rec.DeliveryResult {
			proxyCC := a.Env.ProxyRegion[rec.FromIP[j]]
			ip := rec.ToIP[j]
			cc := ""
			if ip != "" {
				cc, _, _ = a.Env.Geo.Lookup(ip)
			}
			if cc == "" {
				cc = a.receiverCC(rec)
			}
			if proxyCC == "" || cc == "" {
				continue
			}
			key := [2]string{proxyCC, cc}
			c := cells[key]
			if c == nil {
				c = &cell{}
				cells[key] = c
			}
			rt := rcvrTotals[cc]
			if rt == nil {
				rt = &cell{}
				rcvrTotals[cc] = rt
			}
			if !seenPair[key] {
				seenPair[key] = true
				c.emails++
			}
			if !seenRcvr[cc] {
				seenRcvr[cc] = true
				rt.emails++
			}
			if a.Classified[i].AttemptTypes[j] == ndr.T14Timeout {
				c.timeouts++
				rt.timeouts++
			}
		}
	}
	// Rank receiver countries by timeout ratio.
	type rk struct {
		cc  string
		pct float64
	}
	var ranked []rk
	for cc, c := range rcvrTotals {
		if c.emails < minEmails {
			continue
		}
		p := 100 * float64(c.timeouts) / float64(c.emails)
		out.ReceiverTimeoutPct[cc] = p
		ranked = append(ranked, rk{cc, p})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].pct != ranked[j].pct {
			return ranked[i].pct > ranked[j].pct
		}
		// Map-fed rows: tie-break for a deterministic column order.
		return ranked[i].cc < ranked[j].cc
	})
	if n < len(ranked) {
		ranked = ranked[:n]
	}
	for _, r := range ranked {
		out.ReceiverCCs = append(out.ReceiverCCs, r.cc)
	}
	out.SenderCCs = []string{"US", "DE", "GB", "HK"} // Figure 8's rows
	out.Ratio = make([][]float64, len(out.SenderCCs))
	for si, s := range out.SenderCCs {
		out.Ratio[si] = make([]float64, len(out.ReceiverCCs))
		for ri, r := range out.ReceiverCCs {
			c := cells[[2]string{s, r}]
			if c != nil && c.emails > 0 {
				out.Ratio[si][ri] = 100 * float64(c.timeouts) / float64(c.emails)
			}
		}
	}
	return out
}

// receiverCC geolocates a record's receiver by any attempt with an IP.
func (a *Analysis) receiverCC(rec *dataset.Record) string {
	ip := lastNonEmpty(rec.ToIP)
	if ip == "" {
		return ""
	}
	cc, _, _ := a.Env.Geo.Lookup(ip)
	return cc
}

// CountryLatency is one Figure-10 point.
type CountryLatency struct {
	Country  string
	Emails   int
	MedianMS float64
}

// LatencyStats is Figure 10 plus the Appendix-C aggregates.
type LatencyStats struct {
	Countries []CountryLatency
	// Global latency over successful deliveries.
	GlobalMeanMS   float64
	GlobalMedianMS float64
	// Fast/slow-Internet split (Appendix C: 9.74s/6.97s vs 16.73s/12.54s).
	FastMeanMS   float64
	FastMedianMS float64
	SlowMeanMS   float64
	SlowMedianMS float64
}

// LatencyByCountry computes Figure 10 over successful deliveries,
// excluding countries below minEmails. Requires Env.Geo.
func (a *Analysis) LatencyByCountry(minEmails int) LatencyStats {
	var out LatencyStats
	if a.Env == nil || a.Env.Geo == nil {
		return out
	}
	perCC := map[string][]float64{}
	var global, fast, slow []float64
	for i := 0; i < a.Records.Len(); i++ {
		rec := a.Records.At(i)
		if !rec.Succeeded() {
			continue
		}
		// Latency of the successful (final) attempt.
		lat := float64(rec.DeliveryLatency[len(rec.DeliveryLatency)-1])
		cc := a.receiverCC(rec)
		if cc == "" {
			continue
		}
		perCC[cc] = append(perCC[cc], lat)
		global = append(global, lat)
		if c, ok := a.Env.Geo.Country(cc); ok {
			if c.FastInternet {
				fast = append(fast, lat)
			} else {
				slow = append(slow, lat)
			}
		}
	}
	for cc, lats := range perCC {
		if len(lats) < minEmails {
			continue
		}
		out.Countries = append(out.Countries, CountryLatency{
			Country: cc, Emails: len(lats), MedianMS: stats.Median(lats),
		})
	}
	sort.Slice(out.Countries, func(i, j int) bool {
		if out.Countries[i].MedianMS != out.Countries[j].MedianMS {
			return out.Countries[i].MedianMS > out.Countries[j].MedianMS
		}
		// Tie-break by country code: rows come from map iteration, so
		// without it equal medians would order nondeterministically.
		return out.Countries[i].Country < out.Countries[j].Country
	})
	out.GlobalMeanMS = stats.Mean(global)
	out.GlobalMedianMS = stats.Median(global)
	out.FastMeanMS = stats.Mean(fast)
	out.FastMedianMS = stats.Median(fast)
	out.SlowMeanMS = stats.Mean(slow)
	out.SlowMedianMS = stats.Median(slow)
	return out
}

// STARTTLSStats is the Section-4.3.1 TLS-mandate measurement, derived
// from observed T4 NDRs (behavior, not configuration).
type STARTTLSStats struct {
	MandatingDomains int
	// Top100Share / Top10KShare are the shares of the InEmailRank
	// top-100 and the whole observed population that mandate TLS
	// (paper: 38% vs 8.53%).
	Top100Share float64
	AllShare    float64
	// SoftBounced counts emails that T4-bounced.
	SoftBounced int
}

// starttlsCollector finds TLS-mandating domains from observed T4 NDRs.
type starttlsCollector struct {
	mandating   map[string]bool
	softBounced int
}

func (sc *starttlsCollector) Add(rec *dataset.Record, c *ClassifiedRecord) {
	if c.HasType(ndr.T4STARTTLS) {
		sc.mandating[rec.ToDomain()] = true
		sc.softBounced++
	}
}

// STARTTLS computes the TLS-mandate stats.
func (a *Analysis) STARTTLS() STARTTLSStats {
	var out STARTTLSStats
	sc := starttlsCollector{mandating: map[string]bool{}}
	a.visit(&sc)
	mandating := sc.mandating
	out.SoftBounced = sc.softBounced
	out.MandatingDomains = len(mandating)
	top100, all := 0, 0
	for rank, e := range a.rank {
		if mandating[e.Domain] {
			all++
			if rank < 100 {
				top100++
			}
		}
	}
	if len(a.rank) > 0 {
		n100 := 100
		if len(a.rank) < 100 {
			n100 = len(a.rank)
		}
		out.Top100Share = float64(top100) / float64(n100)
		out.AllShare = float64(all) / float64(len(a.rank))
	}
	return out
}

// FilterDisagreement is the Section-4.2.2 cross-ESP spam-filter
// comparison: rule differences between the sender ESP's filter (the
// email_flag) and receiver filters cause both wasted single-shot
// deliveries and reputation-damaging retries.
type FilterDisagreement struct {
	// SenderSpamTotal is the number of Coremail-flagged spam emails.
	SenderSpamTotal int
	// SenderSpamNotSpamAtReceiver: flagged Spam, yet the receiver did
	// not judge it spam — it was accepted or bounced for a non-content
	// reason (receiver disagreed; paper: 46.49%).
	SenderSpamNotSpamAtReceiver int
	// ReceiverSpamTotal is the number of emails receivers rejected as
	// spam content (T13).
	ReceiverSpamTotal int
	// ReceiverSpamFlaggedNormal: rejected as spam by the receiver but
	// flagged Normal by the sender (paper: 39.46%) — these get retried,
	// burning reputation.
	ReceiverSpamFlaggedNormal int
	// NormalSpamRetryAttempts counts the extra attempts spent retrying
	// receiver-rejected spam that the sender considered Normal.
	NormalSpamRetryAttempts int
}

// SenderDisagreeShare is the share of sender-flagged spam the receiver
// accepted.
func (f FilterDisagreement) SenderDisagreeShare() float64 {
	if f.SenderSpamTotal == 0 {
		return 0
	}
	return float64(f.SenderSpamNotSpamAtReceiver) / float64(f.SenderSpamTotal)
}

// ReceiverDisagreeShare is the share of receiver-rejected spam the
// sender flagged Normal.
func (f FilterDisagreement) ReceiverDisagreeShare() float64 {
	if f.ReceiverSpamTotal == 0 {
		return 0
	}
	return float64(f.ReceiverSpamFlaggedNormal) / float64(f.ReceiverSpamTotal)
}

// filterCollector accumulates the cross-filter comparison.
type filterCollector struct {
	f FilterDisagreement
}

func (fc *filterCollector) Add(rec *dataset.Record, c *ClassifiedRecord) {
	isT13 := c.HasType(ndr.T13ContentSpam)
	if rec.EmailFlag == "Spam" {
		fc.f.SenderSpamTotal++
		if rec.Succeeded() || !isT13 {
			fc.f.SenderSpamNotSpamAtReceiver++
		}
	}
	if isT13 {
		fc.f.ReceiverSpamTotal++
		if rec.EmailFlag != "Spam" {
			fc.f.ReceiverSpamFlaggedNormal++
			if n := rec.Attempts(); n > 1 {
				fc.f.NormalSpamRetryAttempts += n - 1
			}
		}
	}
}

// FilterDisagreement computes the cross-filter comparison.
func (a *Analysis) FilterDisagreement() FilterDisagreement {
	var fc filterCollector
	a.visit(&fc)
	return fc.f
}

// BlocklistRecovery quantifies the Section-4.2.2 finding that most
// blocklist bounces recover by switching proxy MTAs (paper: 80.71%
// redelivered, at an average of three attempts).
type BlocklistRecovery struct {
	Affected    int // emails with at least one T5 attempt
	Recovered   int // of those, eventually delivered
	AvgAttempts float64
}

// RecoveryShare is Recovered/Affected.
func (b BlocklistRecovery) RecoveryShare() float64 {
	if b.Affected == 0 {
		return 0
	}
	return float64(b.Recovered) / float64(b.Affected)
}

// recoveryCollector accumulates the T5 recovery statistic.
type recoveryCollector struct {
	out      BlocklistRecovery
	attempts int
}

func (rc *recoveryCollector) Add(rec *dataset.Record, c *ClassifiedRecord) {
	if !c.HasType(ndr.T5Blocklisted) {
		return
	}
	rc.out.Affected++
	if rec.Succeeded() {
		rc.out.Recovered++
		rc.attempts += rec.Attempts()
	}
}

// BlocklistRecovery computes the T5 recovery statistic.
func (a *Analysis) BlocklistRecovery() BlocklistRecovery {
	var rc recoveryCollector
	a.visit(&rc)
	out := rc.out
	if out.Recovered > 0 {
		out.AvgAttempts = float64(rc.attempts) / float64(out.Recovered)
	}
	return out
}
