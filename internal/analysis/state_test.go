package analysis

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"repro/internal/dataset"
)

// TestStateRoundTripMidStream: checkpoint an Incremental mid-stream,
// restore it, feed both the same remainder, and every analysis surface
// must match — the property crash recovery rests on.
func TestStateRoundTripMidStream(t *testing.T) {
	records := testCorpus()
	half := len(records) / 2

	live := NewIncremental(DefaultPipelineConfig())
	for i := 0; i < half; i++ {
		live.Add(&records[i])
	}
	st := live.CaptureState()
	if st.Records() != half {
		t.Fatalf("capture covers %d records, want %d", st.Records(), half)
	}
	blob, err := st.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreIncremental(blob)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Len() != half {
		t.Fatalf("restored holds %d records, want %d", restored.Len(), half)
	}

	for i := half; i < len(records); i++ {
		live.Add(&records[i])
		restored.Add(&records[i])
	}
	a := live.Finish(nil)
	b := restored.Finish(nil)
	if !reflect.DeepEqual(a.Classified, b.Classified) {
		t.Fatal("classifications diverge after restore")
	}
	if !reflect.DeepEqual(a.Overview(), b.Overview()) {
		t.Fatal("overview diverges after restore")
	}
	if !reflect.DeepEqual(a.TypeDistribution(), b.TypeDistribution()) {
		t.Fatal("type distribution diverges after restore")
	}
	if !reflect.DeepEqual(a.InEmailRank(), b.InEmailRank()) {
		t.Fatal("popularity rank diverges after restore")
	}
	if got, want := b.Pipeline.NumTemplates(), a.Pipeline.NumTemplates(); got != want {
		t.Fatalf("restored mined %d templates, live %d", got, want)
	}
}

// TestStateMarshalDeterministic: equal states marshal to equal bytes
// (map iteration order must not leak), and a restored state re-marshals
// to the exact same blob.
func TestStateMarshalDeterministic(t *testing.T) {
	records := testCorpus()
	inc := NewIncremental(DefaultPipelineConfig())
	for i := range records {
		inc.Add(&records[i])
	}
	a, err := inc.CaptureState().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	b, err := inc.CaptureState().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("repeated capture marshals differently")
	}
	restored, err := RestoreIncremental(a)
	if err != nil {
		t.Fatal(err)
	}
	c, err := restored.CaptureState().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, c) {
		t.Fatal("restore + re-capture marshals differently")
	}
}

// TestStateRecordFidelity: nil-versus-empty attempt slices and time
// instants survive the round trip — the same distinction the JSON wire
// form preserves.
func TestStateRecordFidelity(t *testing.T) {
	start := time.Date(2023, 4, 1, 10, 30, 0, 0, time.UTC)
	recs := []dataset.Record{
		{From: "a@s.com", To: "b@r.com", StartTime: start, EndTime: start.Add(time.Minute),
			FromIP: []string{"1.1.1.1"}, ToIP: []string{""}, DeliveryResult: []string{"250 OK"},
			DeliveryLatency: []int64{42}, EmailFlag: "Normal"},
		{From: "x@s.com", To: "y@r.com", StartTime: start, EndTime: start,
			FromIP: []string{}, ToIP: nil, DeliveryResult: []string{}, DeliveryLatency: []int64{}, EmailFlag: "Spam"},
		{From: "", To: "", StartTime: start, EndTime: start},
	}
	inc := NewIncremental(DefaultPipelineConfig())
	for i := range recs {
		inc.Add(&recs[i])
	}
	blob, err := inc.CaptureState().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreIncremental(blob)
	if err != nil {
		t.Fatal(err)
	}
	view := restored.Finish(nil).Records
	for i := range recs {
		if !reflect.DeepEqual(*view.At(i), recs[i]) {
			t.Fatalf("record %d differs:\n got %#v\nwant %#v", i, *view.At(i), recs[i])
		}
	}
}

// TestStateHostileInput: truncated blobs error instead of panicking.
func TestStateHostileInput(t *testing.T) {
	records := testCorpus()[:50]
	inc := NewIncremental(DefaultPipelineConfig())
	for i := range records {
		inc.Add(&records[i])
	}
	blob, err := inc.CaptureState().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(blob); cut += 97 {
		if _, err := RestoreIncremental(blob[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := RestoreIncremental(append(append([]byte(nil), blob...), 0)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}
