package analysis

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/geo"
	"repro/internal/ndr"
)

// PipelineSummary is the mergeable aggregate of a classifier stack:
// enough to reproduce the pipeline rows of the report (template and
// label counts, NDR-line coverage, Table 6) without shipping the
// pipelines themselves. Empty substream pipelines contribute zeroes,
// so summing node summaries equals the single-node summary.
type PipelineSummary struct {
	Templates    int
	Labeled      int
	CoveredLines int
	TotalLines   int
	// Ambiguous is Table 6, already normalized (count desc, template asc).
	Ambiguous []AmbiguousTemplate
}

// Coverage is the share of NDR lines covered by labeled templates.
func (ps PipelineSummary) Coverage() float64 {
	if ps.TotalLines == 0 {
		return 0
	}
	return float64(ps.CoveredLines) / float64(ps.TotalLines)
}

// Merge folds another summary in, re-normalizing Table 6.
func (ps *PipelineSummary) Merge(o PipelineSummary) {
	ps.Templates += o.Templates
	ps.Labeled += o.Labeled
	ps.CoveredLines += o.CoveredLines
	ps.TotalLines += o.TotalLines
	byTmpl := map[string]int{}
	for _, t := range ps.Ambiguous {
		byTmpl[t.Template] += t.Count
	}
	for _, t := range o.Ambiguous {
		byTmpl[t.Template] += t.Count
	}
	merged := make([]AmbiguousTemplate, 0, len(byTmpl))
	for tmpl, n := range byTmpl {
		merged = append(merged, AmbiguousTemplate{Template: tmpl, Count: n})
	}
	SortRanked(merged,
		func(t AmbiguousTemplate) float64 { return float64(t.Count) },
		func(t AmbiguousTemplate) string { return t.Template })
	ps.Ambiguous = merged
}

func (e *enc) pipeSummary(ps PipelineSummary) {
	e.intv(ps.Templates)
	e.intv(ps.Labeled)
	e.intv(ps.CoveredLines)
	e.intv(ps.TotalLines)
	e.u64(uint64(len(ps.Ambiguous)))
	for _, t := range ps.Ambiguous {
		e.str(t.Template)
		e.intv(t.Count)
	}
}

func (d *dec) pipeSummary() PipelineSummary {
	var ps PipelineSummary
	ps.Templates = d.intv()
	ps.Labeled = d.intv()
	ps.CoveredLines = d.intv()
	ps.TotalLines = d.intv()
	n := d.count()
	for i := 0; i < n; i++ {
		t := AmbiguousTemplate{Template: d.str()}
		t.Count = d.intv()
		ps.Ambiguous = append(ps.Ambiguous, t)
	}
	return ps
}

// namedPartial pairs a collector with its stable wire name.
type namedPartial struct {
	name string
	c    PartialCollector
}

// PartialSet is one shard's complete partial aggregate: every
// collector's mergeable state plus the popularity counts and pipeline
// summary the result methods need. Merging K sets (any order, any
// grouping) and calling the result methods reproduces the single-pass
// Analysis results byte-for-byte.
type PartialSet struct {
	// Total is the number of records folded in.
	Total int
	// Counts is the receiver-domain popularity histogram (InEmailRank
	// input).
	Counts map[string]int
	// Pipe summarizes the classifier stack that produced the verdicts.
	Pipe PipelineSummary
	// Env is the local environment used by result methods; it is not
	// part of the wire state.
	Env *Environment

	overview  overviewCollector
	typedist  *typeDistCollector
	domain    *domainCollector
	as        *asCollector
	country   *countryCollector
	timeline  *timelineCollector
	blocked   blockedCollector
	starttls  *starttlsCollector
	filter    filterCollector
	recovery  recoveryCollector
	enhanced  enhancedCollector
	mta       *mtaCollector
	infra     *infraCollector
	latency   *latencyCollector
	durations *durationsCollector
	detect    *detectCollector
	cause     *causeCollector

	cols    []namedPartial
	rank    []dataset.RankEntry
	rankPos map[string]int
}

// NewPartialSet returns an empty partial aggregate bound to env (which
// may be nil for dataset-only analyses).
func NewPartialSet(env *Environment) *PartialSet {
	var db *geo.DB
	var proxyRegion map[string]string
	if env != nil {
		db = env.Geo
		proxyRegion = env.ProxyRegion
	}
	ps := &PartialSet{
		Counts:    map[string]int{},
		Env:       env,
		typedist:  newTypeDistCollector(),
		domain:    newDomainCollector(),
		as:        newASCollector(db),
		country:   newCountryCollector(db),
		timeline:  newTimelineCollector(),
		starttls:  newSTARTTLSCollector(),
		mta:       newMTACollector(db),
		infra:     newInfraCollector(db, proxyRegion),
		latency:   newLatencyCollector(db),
		durations: newDurationsCollector(),
		detect:    newDetectCollector(),
		cause:     newCauseCollector(),
	}
	// The wire order. Append-only: adding a collector appends a name
	// here and bumps partialFormatVersion.
	ps.cols = []namedPartial{
		{"overview", &ps.overview},
		{"typedist", ps.typedist},
		{"domain", ps.domain},
		{"as", ps.as},
		{"country", ps.country},
		{"timeline", ps.timeline},
		{"blocked", &ps.blocked},
		{"starttls", ps.starttls},
		{"filter", &ps.filter},
		{"recovery", &ps.recovery},
		{"enhanced", &ps.enhanced},
		{"mta", ps.mta},
		{"infra", ps.infra},
		{"latency", ps.latency},
		{"durations", ps.durations},
		{"detect", ps.detect},
		{"cause", ps.cause},
	}
	return ps
}

// Add folds one classified record in. PartialSet implements Collector,
// so it plugs into visit and CollectStream directly.
func (ps *PartialSet) Add(rec *dataset.Record, c *ClassifiedRecord) {
	ps.Total++
	ps.Counts[rec.ToDomain()]++
	ps.rank, ps.rankPos = nil, nil
	for _, np := range ps.cols {
		np.c.Add(rec, c)
	}
}

// Merge folds another shard's aggregate into the receiver. Commutative
// and associative over set states.
func (ps *PartialSet) Merge(o *PartialSet) error {
	ps.Total += o.Total
	for dom, n := range o.Counts {
		ps.Counts[dom] += n
	}
	ps.Pipe.Merge(o.Pipe)
	for i := range ps.cols {
		if err := ps.cols[i].c.Merge(o.cols[i].c); err != nil {
			return err
		}
	}
	ps.rank, ps.rankPos = nil, nil
	return nil
}

// Wire envelope: magic, one-byte format version, then the named,
// individually versioned and length-prefixed collector blobs. The
// format version covers the envelope and the collector roster; each
// collector additionally versions its own blob.
const (
	partialMagic         = "BNCP"
	partialFormatVersion = 1
)

// Marshal encodes the set with the stable codec: equal states encode
// to equal bytes.
func (ps *PartialSet) Marshal() []byte {
	var e enc
	e.buf = append(e.buf, partialMagic...)
	e.version(partialFormatVersion)
	e.intv(ps.Total)
	e.strIntMap(ps.Counts)
	e.pipeSummary(ps.Pipe)
	e.u64(uint64(len(ps.cols)))
	for _, np := range ps.cols {
		e.str(np.name)
		e.bytes(np.c.MarshalPartial())
	}
	return e.buf
}

// UnmarshalPartialSet decodes a snapshot produced by Marshal, binding
// the result to env. Decoding is strict: a version, roster, or name
// mismatch is an error rather than a silent partial merge.
func UnmarshalPartialSet(b []byte, env *Environment) (*PartialSet, error) {
	if len(b) < len(partialMagic) || string(b[:len(partialMagic)]) != partialMagic {
		return nil, fmt.Errorf("analysis: not a partial snapshot")
	}
	d := dec{b: b[len(partialMagic):]}
	d.checkVersion("partialset", partialFormatVersion)
	ps := NewPartialSet(env)
	ps.Total = d.intv()
	ps.Counts = d.strIntMap()
	ps.Pipe = d.pipeSummary()
	n := d.count()
	if d.err != nil {
		return nil, d.err
	}
	if n != len(ps.cols) {
		return nil, fmt.Errorf("analysis: partial snapshot has %d collectors, want %d", n, len(ps.cols))
	}
	for i := 0; i < n; i++ {
		name := d.str()
		blob := d.bytes()
		if d.err != nil {
			return nil, d.err
		}
		if name != ps.cols[i].name {
			return nil, fmt.Errorf("analysis: partial snapshot collector %q, want %q", name, ps.cols[i].name)
		}
		if err := ps.cols[i].c.UnmarshalPartial(blob); err != nil {
			return nil, err
		}
	}
	return ps, d.err
}

// Partials condenses the classified corpus into its partial aggregate.
func (a *Analysis) Partials() *PartialSet {
	ps := NewPartialSet(a.Env)
	a.visit(ps)
	ps.Pipe = a.Pipeline.Summary()
	return ps
}

// --- Result methods mirroring the Analysis API. Each runs the same
// result() normalization the Analysis methods run, so a merged set
// reproduces the single-pass values exactly.

// InEmailRank returns the receiver-domain popularity list.
func (ps *PartialSet) InEmailRank() []dataset.RankEntry {
	if ps.rank == nil && len(ps.Counts) > 0 {
		ps.rank = dataset.RankFromCounts(ps.Counts)
		ps.rankPos = make(map[string]int, len(ps.rank))
		for i, e := range ps.rank {
			ps.rankPos[e.Domain] = i
		}
	}
	return ps.rank
}

// RankOf returns the InEmailRank position of domain (-1 if absent).
func (ps *PartialSet) RankOf(domain string) int {
	ps.InEmailRank()
	if p, ok := ps.rankPos[domain]; ok {
		return p
	}
	return -1
}

// Overview computes the bounce-degree distribution.
func (ps *PartialSet) Overview() Overview { return ps.overview.result() }

// TypeDistribution is Table 1.
func (ps *PartialSet) TypeDistribution() map[ndr.Type]int { return ps.typedist.counts }

// NoEnhancedCodeShare returns the share of NDR lines lacking an
// RFC 3463 enhanced status code.
func (ps *PartialSet) NoEnhancedCodeShare() float64 { return ps.enhanced.result() }

// AmbiguousTemplates returns Table 6 from the pipeline summary.
func (ps *PartialSet) AmbiguousTemplates() []AmbiguousTemplate { return ps.Pipe.Ambiguous }

// PipelineSummary returns the carried classifier summary.
func (ps *PartialSet) PipelineSummary() PipelineSummary { return ps.Pipe }

// TopDomains is Table 4.
func (ps *PartialSet) TopDomains(n int) []DomainStats { return ps.domain.result(n) }

// TopASes is Table 5.
func (ps *PartialSet) TopASes(n int) []ASStats { return ps.as.result(n) }

// CountryBounces is Figure 9's per-country bounce rates.
func (ps *PartialSet) CountryBounces(minEmails int) []CountryStats {
	return ps.country.result(minEmails)
}

// Timeline computes Figure 5.
func (ps *PartialSet) Timeline() Timeline { return ps.timeline.result() }

// BlocklistFigure computes Figure 6 (requires Env.Blocklist).
func (ps *PartialSet) BlocklistFigure() BlocklistFigure { return ps.blocked.result(ps.Env) }

// InfraMatrix computes Figure 8.
func (ps *PartialSet) InfraMatrix(minEmails, n int) InfraMatrix {
	return ps.infra.result(minEmails, n)
}

// LatencyByCountry computes the delivery-latency distribution.
func (ps *PartialSet) LatencyByCountry(minEmails int) LatencyStats {
	return ps.latency.result(ps.Env, minEmails)
}

// STARTTLS computes the TLS-mandate stats.
func (ps *PartialSet) STARTTLS() STARTTLSStats { return ps.starttls.result(ps.InEmailRank()) }

// FilterDisagreement computes the cross-filter comparison.
func (ps *PartialSet) FilterDisagreement() FilterDisagreement { return ps.filter.f }

// BlocklistRecovery computes the T5 recovery statistic.
func (ps *PartialSet) BlocklistRecovery() BlocklistRecovery { return ps.recovery.result() }

// MTACountryDistribution computes Figure 4 (requires Env.Geo).
func (ps *PartialSet) MTACountryDistribution() []MTACountry {
	if ps.Env == nil || ps.Env.Geo == nil {
		return nil
	}
	return ps.mta.result()
}

// Detect runs the entity detections over the merged state.
func (ps *PartialSet) Detect() *Detections {
	return ps.detect.result(ps.Env, ps.InEmailRank())
}

// RootCauses builds Table 2 using the detections.
func (ps *PartialSet) RootCauses(d *Detections) RootCauseTable {
	if d == nil {
		d = ps.Detect()
	}
	return buildRootCauseTable(ps.cause.resolve(d), ps.cause.total)
}

// Durations infers Figure 7.
func (ps *PartialSet) Durations(det *Detections) DurationsFigure {
	if det == nil {
		det = ps.Detect()
	}
	return ps.durations.resolve(det)
}
