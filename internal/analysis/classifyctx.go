package analysis

import (
	"strings"

	"repro/internal/dataset"
	"repro/internal/drain"
	"repro/internal/ndr"
)

// emptyTypes backs AttemptTypes for records with no delivery attempts:
// non-nil empty (as make([]ndr.Type, 0) is on the ctx-free path), zero
// capacity so caller appends copy out.
var emptyTypes = make([]ndr.Type, 0)

// ClassifyCtx is a per-goroutine classification context over finished
// (frozen) pipelines: it owns drain Matchers — reusable token buffers
// over the lock-free trees — and arenas backing the verdict slices, so
// a record classifies with amortized near-zero heap allocations where
// Pipeline.ClassifyRecord pays a token slice per NDR line plus two
// slices and a map per record. Verdicts are identical to
// Pipeline.ClassifyRecord's (the equivalence test pins this).
//
// A ctx is bound to one ShardedPipeline and is not safe for concurrent
// use; classification fan-outs create one per worker.
type ClassifyCtx struct {
	sp       *ShardedPipeline
	matchers []*drain.Matcher // lazily built, aligned with sp.Shards
	types    dataset.Arena[ndr.Type]
}

// NewClassifyCtx returns a classification context for the stack. Every
// shard pipeline must already be finished (parser frozen).
func (sp *ShardedPipeline) NewClassifyCtx() *ClassifyCtx {
	return &ClassifyCtx{sp: sp, matchers: make([]*drain.Matcher, len(sp.Shards))}
}

func (cx *ClassifyCtx) matcher(shard int) *drain.Matcher {
	if cx.matchers[shard] == nil {
		cx.matchers[shard] = cx.sp.Shards[shard].Parser.Matcher()
	}
	return cx.matchers[shard]
}

// ClassifyRecord routes the record to its substream's pipeline and
// classifies it through the ctx's reusable buffers. The returned
// verdict's slices are arena-backed: immutable once returned, valid
// indefinitely, full-capacity (appends copy out).
func (cx *ClassifyCtx) ClassifyRecord(rec *dataset.Record) ClassifiedRecord {
	shard := 0
	if len(cx.sp.Shards) > 1 {
		shard = StreamOf(rec)
	}
	p := cx.sp.Shards[shard]
	m := cx.matcher(shard)

	c := ClassifiedRecord{Degree: rec.BounceDegree()}
	n := len(rec.DeliveryResult)
	if n == 0 {
		c.AttemptTypes = emptyTypes
		return c
	}
	c.AttemptTypes = cx.types.Alloc(n)
	var seen uint32 // bit per ndr.Type (T0..T16 fit easily)
	var typeBuf [ndr.NumTypes + 1]ndr.Type
	nt := 0
	failed, ambiguousOnly := 0, true
	for i, line := range rec.DeliveryResult {
		if strings.HasPrefix(line, "2") {
			c.AttemptTypes[i] = ndr.TNone
			continue
		}
		failed++
		typ, amb := p.classifyLineWith(m, line)
		c.AttemptTypes[i] = typ
		if amb {
			continue
		}
		ambiguousOnly = false
		if seen&(1<<uint(typ)) == 0 {
			seen |= 1 << uint(typ)
			typeBuf[nt] = typ
			nt++
		}
	}
	if nt > 0 {
		c.Types = cx.types.Alloc(nt)
		copy(c.Types, typeBuf[:nt])
	}
	c.Ambiguous = failed > 0 && ambiguousOnly
	return c
}

// classifyLineWith is ClassifyLine with the tree walk through m (which
// must wrap p.Parser) instead of an allocating Parser.Match.
func (p *Pipeline) classifyLineWith(m *drain.Matcher, line string) (typ ndr.Type, ambiguous bool) {
	g := m.Match(line)
	if g == nil {
		if p.Classifier == nil {
			return ndr.T16Unknown, false
		}
		t, _ := p.Classifier.Predict(line)
		return t, false
	}
	if p.groupAmbiguous[g.ID] {
		return ndr.T16Unknown, true
	}
	if t, ok := p.groupType[g.ID]; ok {
		return t, false
	}
	return ndr.T16Unknown, false
}
