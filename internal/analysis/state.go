package analysis

import (
	"fmt"
	"time"

	"repro/internal/dataset"
	"repro/internal/drain"
	"repro/internal/ndr"
)

// Durable-checkpoint state for an Incremental: the slab store, the
// popularity counts (rebuilt, not serialized), the per-substream
// pipeline builders (Drain tree + template samples), and the training
// watermark. A restored Incremental continues byte-identically: the
// same records in the same order, the same mined templates with the
// same fingerprints, so every later Snapshot/Finish — and therefore the
// bounced report — matches a process that never died. The storage
// engine (internal/store) treats this blob as an opaque checkpoint
// section; only this package knows its layout.

const incStateVersion = 1

// IncrementalState is a point-in-time capture of an Incremental,
// consistent at a record boundary: the builders are trained to exactly
// Records(), so the WAL replay point is unambiguous.
type IncrementalState struct {
	cfg      PipelineConfig
	view     dataset.Records
	n        int
	builders [NumStreams]*PipelineBuilder
}

// CaptureState snapshots the accumulator for checkpointing without
// stopping ingestion. Like Snapshot it catches training up to the
// store, so the capture is self-consistent; unlike Snapshot it does not
// finish pipelines or classify anything — serialization cost is paid by
// the caller, off every hot path, via MarshalBinary.
func (inc *Incremental) CaptureState() *IncrementalState {
	inc.trainMu.Lock()
	inc.storeMu.Lock()
	n := inc.store.Len()
	view := inc.store.View()
	inc.storeMu.Unlock()
	inc.trainTo(view, n)
	st := &IncrementalState{cfg: inc.b[0].p.cfg, view: view, n: n}
	for s := range inc.b {
		st.builders[s] = inc.b[s].Clone()
	}
	inc.trainMu.Unlock()
	return st
}

// Records reports how many records the capture covers — the WAL index
// replay must resume from.
func (st *IncrementalState) Records() int { return st.n }

// MarshalBinary serializes the capture with the package's stable codec.
func (st *IncrementalState) MarshalBinary() ([]byte, error) {
	e := &enc{}
	e.version(incStateVersion)
	e.intv(st.cfg.TopTemplates)
	e.intv(st.cfg.SamplesPerType)
	e.intv(st.cfg.PredictSample)
	e.u64(st.cfg.Seed)

	e.u64(uint64(st.n))
	for i := 0; i < st.n; i++ {
		e.record(st.view.At(i))
	}
	for s := range st.builders {
		b := st.builders[s]
		e.intv(b.total)
		blob, err := b.p.Parser.MarshalBinary()
		if err != nil {
			return nil, err
		}
		e.bytes(blob)
		e.u64(uint64(len(b.p.groupSamples)))
		for _, gid := range sortedIntKeys(b.p.groupSamples) {
			e.intv(gid)
			e.strList(b.p.groupSamples[gid])
		}
	}
	return e.buf, nil
}

// RestoreIncremental rebuilds an Incremental from a MarshalBinary blob.
// The popularity counts are recomputed from the records (cheaper than
// storing them, and provably consistent); the verdict cache starts
// empty, so the first post-restore snapshot runs cold and later ones
// warm — results are byte-identical either way.
func RestoreIncremental(b []byte) (*Incremental, error) {
	d := &dec{b: b}
	d.checkVersion("incremental state", incStateVersion)
	var cfg PipelineConfig
	cfg.TopTemplates = d.intv()
	cfg.SamplesPerType = d.intv()
	cfg.PredictSample = d.intv()
	cfg.Seed = d.u64()
	if d.err != nil {
		return nil, d.err
	}

	inc := NewIncremental(cfg)
	n := d.count()
	for i := 0; i < n && d.err == nil; i++ {
		rec := d.record()
		inc.store.Append(rec)
		inc.counts[rec.ToDomain()]++
	}
	for s := range inc.b {
		total := d.intv()
		parser, err := drain.UnmarshalParser(d.bytes())
		if d.err == nil && err != nil {
			d.err = err
		}
		if d.err != nil {
			return nil, d.err
		}
		p := &Pipeline{
			Parser:         parser,
			cfg:            cfg,
			groupType:      make(map[int]ndr.Type),
			groupAmbiguous: make(map[int]bool),
			groupSamples:   make(map[int][]string),
		}
		ns := d.count()
		for j := 0; j < ns; j++ {
			gid := d.intv()
			p.groupSamples[gid] = d.strList()
		}
		inc.b[s] = &PipelineBuilder{p: p, total: total}
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("analysis: %d trailing bytes after incremental state", len(d.b))
	}
	inc.trained = n
	return inc, nil
}

// record serializes one stored record exactly: nanosecond instants and
// the nil-versus-empty distinction of each attempt slice survive the
// round trip (MarshalJSON renders nil as null and empty as []).
func (e *enc) record(r *dataset.Record) {
	e.str(r.From)
	e.str(r.To)
	e.i64(r.StartTime.UnixNano())
	e.i64(r.EndTime.UnixNano())
	e.recStrList(r.FromIP)
	e.recStrList(r.ToIP)
	e.recStrList(r.DeliveryResult)
	e.recI64List(r.DeliveryLatency)
	e.str(r.EmailFlag)
}

func (d *dec) record() dataset.Record {
	var r dataset.Record
	r.From = d.str()
	r.To = d.str()
	r.StartTime = time.Unix(0, d.i64()).UTC()
	r.EndTime = time.Unix(0, d.i64()).UTC()
	r.FromIP = d.recStrList()
	r.ToIP = d.recStrList()
	r.DeliveryResult = d.recStrList()
	r.DeliveryLatency = d.recI64List()
	r.EmailFlag = d.str()
	return r
}

func (e *enc) recStrList(s []string) {
	e.boolv(s != nil)
	if s != nil {
		e.strList(s)
	}
}

func (d *dec) recStrList() []string {
	if !d.boolv() {
		return nil
	}
	return d.strList()
}

// recI64List keeps the nil/empty distinction i64List drops.
func (e *enc) recI64List(v []int64) {
	e.boolv(v != nil)
	if v != nil {
		e.u64(uint64(len(v)))
		for _, x := range v {
			e.i64(x)
		}
	}
}

func (d *dec) recI64List() []int64 {
	if !d.boolv() {
		return nil
	}
	n := d.count()
	out := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, d.i64())
	}
	return out
}
