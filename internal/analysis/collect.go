package analysis

import (
	"fmt"
	"strings"

	"repro/internal/dataset"
	"repro/internal/ndr"
)

// Collector consumes one classified record at a time. Table and
// figure builders are implemented as collectors so they can run either
// over the Analysis's stored corpus (visit) or over a record stream
// that is never materialized (CollectStream).
type Collector interface {
	Add(rec *dataset.Record, c *ClassifiedRecord)
}

// PartialCollector is a collector whose state is a mergeable partial
// aggregate: Add-ing a corpus on one node and Merge-ing the results is
// indistinguishable from Add-ing the whole corpus on one node, for any
// split and any merge order. The contract every concrete collector
// obeys:
//
//   - Add accumulates raw, order-free state only. All tie-breaking,
//     ranking, truncation, and derived ratios live in the collector's
//     result() normalization, never in Add.
//   - Merge folds another collector of the same concrete type into the
//     receiver (commutative and associative over collector states).
//   - MarshalPartial/UnmarshalPartial round-trip the state through a
//     versioned, stable encoding: equal states encode to equal bytes.
type PartialCollector interface {
	Collector
	Merge(other PartialCollector) error
	MarshalPartial() []byte
	UnmarshalPartial(b []byte) error
}

// mergeTypeError reports a Merge called across concrete types.
func mergeTypeError(name string, got PartialCollector) error {
	return fmt.Errorf("analysis: merge %s partial with %T", name, got)
}

// RecordClassifier classifies one record — satisfied by both *Pipeline
// and *ShardedPipeline.
type RecordClassifier interface {
	ClassifyRecord(rec *dataset.Record) ClassifiedRecord
}

// visit feeds every stored record through the collectors in order.
func (a *Analysis) visit(cs ...Collector) {
	for i := 0; i < a.Records.Len(); i++ {
		rec := a.Records.At(i)
		for _, col := range cs {
			col.Add(rec, &a.Classified[i])
		}
	}
}

// CollectStream classifies records from src on the fly and feeds them
// to the collectors without retaining them — single-pass aggregation
// for datasets larger than memory. The classifier must already be
// trained (e.g. by a PipelineBuilder over an earlier pass, or loaded
// from a prior run). Returns the number of records consumed.
func CollectStream(src dataset.RecordSource, p RecordClassifier, cs ...Collector) int {
	n := 0
	for {
		rec, ok := src.Next()
		if !ok {
			return n
		}
		c := p.ClassifyRecord(rec)
		for _, col := range cs {
			col.Add(rec, &c)
		}
		n++
	}
}

// CollectPartials streams src through a full PartialSet — the sharded
// batch path: classify one shard's records, ship or merge the partial,
// and render from the merged set.
func CollectPartials(src dataset.RecordSource, p RecordClassifier, env *Environment) (*PartialSet, int) {
	ps := NewPartialSet(env)
	n := CollectStream(src, p, ps)
	if sp, ok := p.(*ShardedPipeline); ok {
		ps.Pipe = sp.Summary()
	}
	return ps, n
}

// overviewCollector accumulates the Section-4.1 headline statistic.
type overviewCollector struct {
	o            Overview
	softAttempts int
}

func (oc *overviewCollector) Add(rec *dataset.Record, c *ClassifiedRecord) {
	oc.o.Total++
	switch c.Degree {
	case dataset.NonBounced:
		oc.o.NonBounced++
	case dataset.SoftBounced:
		oc.o.SoftBounced++
		oc.softAttempts += rec.Attempts()
	default:
		oc.o.HardBounced++
	}
	if c.Ambiguous {
		oc.o.AmbiguousBounced++
	}
}

func (oc *overviewCollector) Merge(other PartialCollector) error {
	o, ok := other.(*overviewCollector)
	if !ok {
		return mergeTypeError("overview", other)
	}
	oc.o.Total += o.o.Total
	oc.o.NonBounced += o.o.NonBounced
	oc.o.SoftBounced += o.o.SoftBounced
	oc.o.HardBounced += o.o.HardBounced
	oc.o.AmbiguousBounced += o.o.AmbiguousBounced
	oc.softAttempts += o.softAttempts
	return nil
}

func (oc *overviewCollector) MarshalPartial() []byte {
	var e enc
	e.version(1)
	e.intv(oc.o.Total)
	e.intv(oc.o.NonBounced)
	e.intv(oc.o.SoftBounced)
	e.intv(oc.o.HardBounced)
	e.intv(oc.o.AmbiguousBounced)
	e.intv(oc.softAttempts)
	return e.buf
}

func (oc *overviewCollector) UnmarshalPartial(b []byte) error {
	d := dec{b: b}
	d.checkVersion("overview", 1)
	oc.o.Total = d.intv()
	oc.o.NonBounced = d.intv()
	oc.o.SoftBounced = d.intv()
	oc.o.HardBounced = d.intv()
	oc.o.AmbiguousBounced = d.intv()
	oc.softAttempts = d.intv()
	return d.err
}

func (oc *overviewCollector) result() Overview {
	o := oc.o
	if o.SoftBounced > 0 {
		o.SoftAvgAttempts = float64(oc.softAttempts) / float64(o.SoftBounced)
	}
	return o
}

// typeDistCollector accumulates Table 1.
type typeDistCollector struct {
	counts map[ndr.Type]int
}

func newTypeDistCollector() *typeDistCollector {
	return &typeDistCollector{counts: map[ndr.Type]int{}}
}

func (tc *typeDistCollector) Add(_ *dataset.Record, c *ClassifiedRecord) {
	if c.Degree == dataset.NonBounced || c.Ambiguous {
		return
	}
	for _, t := range c.Types {
		tc.counts[t]++
	}
}

func (tc *typeDistCollector) Merge(other PartialCollector) error {
	o, ok := other.(*typeDistCollector)
	if !ok {
		return mergeTypeError("typedist", other)
	}
	for t, n := range o.counts {
		tc.counts[t] += n
	}
	return nil
}

func (tc *typeDistCollector) MarshalPartial() []byte {
	keys := make(map[int]int, len(tc.counts))
	for t, n := range tc.counts {
		keys[int(t)] = n
	}
	var e enc
	e.version(1)
	e.u64(uint64(len(keys)))
	for _, t := range sortedIntKeys(keys) {
		e.intv(t)
		e.intv(keys[t])
	}
	return e.buf
}

func (tc *typeDistCollector) UnmarshalPartial(b []byte) error {
	d := dec{b: b}
	d.checkVersion("typedist", 1)
	n := d.count()
	tc.counts = make(map[ndr.Type]int, n)
	for i := 0; i < n; i++ {
		t := ndr.Type(d.intv())
		tc.counts[t] = d.intv()
	}
	return d.err
}

// enhancedCollector accumulates the RFC 3463 enhanced-status-code
// share over NDR lines.
type enhancedCollector struct {
	with, total int
}

func (ec *enhancedCollector) Add(rec *dataset.Record, _ *ClassifiedRecord) {
	for _, line := range rec.DeliveryResult {
		if strings.HasPrefix(line, "2") {
			continue
		}
		ec.total++
		if ndr.HasEnhancedCode(line) {
			ec.with++
		}
	}
}

func (ec *enhancedCollector) Merge(other PartialCollector) error {
	o, ok := other.(*enhancedCollector)
	if !ok {
		return mergeTypeError("enhanced", other)
	}
	ec.with += o.with
	ec.total += o.total
	return nil
}

func (ec *enhancedCollector) MarshalPartial() []byte {
	var e enc
	e.version(1)
	e.intv(ec.with)
	e.intv(ec.total)
	return e.buf
}

func (ec *enhancedCollector) UnmarshalPartial(b []byte) error {
	d := dec{b: b}
	d.checkVersion("enhanced", 1)
	ec.with = d.intv()
	ec.total = d.intv()
	return d.err
}

func (ec *enhancedCollector) result() float64 {
	if ec.total == 0 {
		return 0
	}
	return 1 - float64(ec.with)/float64(ec.total)
}
