package analysis

import (
	"repro/internal/dataset"
	"repro/internal/ndr"
)

// Collector consumes one classified record at a time. Table and
// figure builders are implemented as collectors so they can run either
// over the Analysis's stored corpus (visit) or over a record stream
// that is never materialized (CollectStream).
type Collector interface {
	Add(rec *dataset.Record, c *ClassifiedRecord)
}

// visit feeds every stored record through the collectors in order.
func (a *Analysis) visit(cs ...Collector) {
	for i := 0; i < a.Records.Len(); i++ {
		rec := a.Records.At(i)
		for _, col := range cs {
			col.Add(rec, &a.Classified[i])
		}
	}
}

// CollectStream classifies records from src on the fly and feeds them
// to the collectors without retaining them — single-pass aggregation
// for datasets larger than memory. The pipeline must already be
// trained (e.g. by a PipelineBuilder over an earlier pass, or loaded
// from a prior run). Returns the number of records consumed.
func CollectStream(src dataset.RecordSource, p *Pipeline, cs ...Collector) int {
	n := 0
	for {
		rec, ok := src.Next()
		if !ok {
			return n
		}
		c := p.ClassifyRecord(rec)
		for _, col := range cs {
			col.Add(rec, &c)
		}
		n++
	}
}

// overviewCollector accumulates the Section-4.1 headline statistic.
type overviewCollector struct {
	o            Overview
	softAttempts int
}

func (oc *overviewCollector) Add(rec *dataset.Record, c *ClassifiedRecord) {
	oc.o.Total++
	switch c.Degree {
	case dataset.NonBounced:
		oc.o.NonBounced++
	case dataset.SoftBounced:
		oc.o.SoftBounced++
		oc.softAttempts += rec.Attempts()
	default:
		oc.o.HardBounced++
	}
	if c.Ambiguous {
		oc.o.AmbiguousBounced++
	}
}

func (oc *overviewCollector) result() Overview {
	o := oc.o
	if o.SoftBounced > 0 {
		o.SoftAvgAttempts = float64(oc.softAttempts) / float64(o.SoftBounced)
	}
	return o
}

// typeDistCollector accumulates Table 1.
type typeDistCollector struct {
	counts map[ndr.Type]int
}

func newTypeDistCollector() *typeDistCollector {
	return &typeDistCollector{counts: map[ndr.Type]int{}}
}

func (tc *typeDistCollector) Add(_ *dataset.Record, c *ClassifiedRecord) {
	if c.Degree == dataset.NonBounced || c.Ambiguous {
		return
	}
	for _, t := range c.Types {
		tc.counts[t]++
	}
}
