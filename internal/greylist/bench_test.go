package greylist

import (
	"fmt"
	"testing"
	"time"
)

func BenchmarkCheck(b *testing.B) {
	g := New(300*time.Second, 0)
	at := time.Date(2022, 7, 1, 0, 0, 0, 0, time.UTC)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Check(fmt.Sprintf("5.0.%d.%d", i/250%250, i%250), "a@a.com", "b@b.com", at)
	}
}
