package greylist

import (
	"testing"
	"time"
)

var t0 = time.Date(2022, 7, 1, 0, 0, 0, 0, time.UTC)

func TestFirstAttemptDeferred(t *testing.T) {
	g := New(300*time.Second, 0)
	if v := g.Check("1.1.1.1", "a@a.com", "b@b.com", t0); v != Defer {
		t.Errorf("first attempt: %v want Defer", v)
	}
}

func TestSameTupleRetryAfterDelayAccepted(t *testing.T) {
	g := New(300*time.Second, 0)
	g.Check("1.1.1.1", "a@a.com", "b@b.com", t0)
	if v := g.Check("1.1.1.1", "a@a.com", "b@b.com", t0.Add(6*time.Minute)); v != Accept {
		t.Errorf("retry after delay: %v want Accept", v)
	}
	// Subsequent deliveries hit the whitelist.
	if v := g.Check("1.1.1.1", "a@a.com", "b@b.com", t0.Add(time.Hour)); v != AcceptKnown {
		t.Errorf("whitelisted tuple: %v want AcceptKnown", v)
	}
}

func TestTooFastRetryDeferred(t *testing.T) {
	g := New(300*time.Second, 0)
	g.Check("1.1.1.1", "a@a.com", "b@b.com", t0)
	if v := g.Check("1.1.1.1", "a@a.com", "b@b.com", t0.Add(time.Minute)); v != Defer {
		t.Errorf("fast retry: %v want Defer", v)
	}
	// The original first-seen clock keeps running: a retry 6 minutes
	// after the FIRST attempt passes.
	if v := g.Check("1.1.1.1", "a@a.com", "b@b.com", t0.Add(6*time.Minute)); v != Accept {
		t.Errorf("retry after original window: %v want Accept", v)
	}
}

// TestRetryWindowBoundaryExact pins the half-open window edges: a
// retry exactly minDelay after first sight is accepted, one
// nanosecond earlier is deferred, and a whitelist hit exactly at
// lifetime has expired. Both the engine chain and the smtpbridge wire
// path consult this same state, so these edges are what keeps their
// classifications consistent (see differential_test.go).
func TestRetryWindowBoundaryExact(t *testing.T) {
	const delay = 300 * time.Second
	g := New(delay, 24*time.Hour)
	g.Check("1.1.1.1", "a@a.com", "b@b.com", t0)
	if v := g.Check("1.1.1.1", "a@a.com", "b@b.com", t0.Add(delay-time.Nanosecond)); v != Defer {
		t.Errorf("retry at minDelay-1ns: %v want Defer", v)
	}
	if v := g.Check("1.1.1.1", "a@a.com", "b@b.com", t0.Add(delay)); v != Accept {
		t.Errorf("retry exactly at minDelay: %v want Accept", v)
	}

	// Whitelist lifetime is [accepted, accepted+lifetime): a hit 1ns
	// before expiry is known, a hit exactly at expiry re-enters
	// greylisting as a fresh defer.
	wl := t0.Add(delay)
	if v := g.Check("1.1.1.1", "a@a.com", "b@b.com", wl.Add(24*time.Hour-time.Nanosecond)); v != AcceptKnown {
		t.Errorf("whitelist hit at lifetime-1ns: %v want AcceptKnown", v)
	}
	if v := g.Check("1.1.1.1", "a@a.com", "b@b.com", wl.Add(24*time.Hour)); v != Defer {
		t.Errorf("whitelist hit exactly at lifetime: %v want Defer", v)
	}
}

func TestDifferentProxyIPIsNewTuple(t *testing.T) {
	// This is the Coremail failure mode from the paper: each retry comes
	// from a different proxy MTA, so the tuple never repeats and the
	// email keeps getting deferred.
	g := New(300*time.Second, 0)
	proxies := []string{"1.1.1.1", "2.2.2.2", "3.3.3.3", "4.4.4.4"}
	at := t0
	for _, ip := range proxies {
		if v := g.Check(ip, "a@a.com", "b@b.com", at); v != Defer {
			t.Fatalf("proxy %s: %v want Defer (tuple includes IP)", ip, v)
		}
		at = at.Add(10 * time.Minute)
	}
}

func TestTupleComponentsMatter(t *testing.T) {
	g := New(300*time.Second, 0)
	g.Check("1.1.1.1", "a@a.com", "b@b.com", t0)
	if v := g.Check("1.1.1.1", "other@a.com", "b@b.com", t0.Add(6*time.Minute)); v != Defer {
		t.Errorf("different sender should be new tuple: %v", v)
	}
	if v := g.Check("1.1.1.1", "a@a.com", "other@b.com", t0.Add(6*time.Minute)); v != Defer {
		t.Errorf("different recipient should be new tuple: %v", v)
	}
}

func TestWhitelistExpiry(t *testing.T) {
	g := New(300*time.Second, 24*time.Hour)
	g.Check("1.1.1.1", "a@a.com", "b@b.com", t0)
	g.Check("1.1.1.1", "a@a.com", "b@b.com", t0.Add(6*time.Minute)) // Accept
	// Two days later the whitelist entry expired; back to defer.
	if v := g.Check("1.1.1.1", "a@a.com", "b@b.com", t0.Add(48*time.Hour)); v != Defer {
		t.Errorf("expired whitelist: %v want Defer", v)
	}
}

func TestStateSizes(t *testing.T) {
	g := New(300*time.Second, 0)
	g.Check("1.1.1.1", "a@a.com", "b@b.com", t0)
	g.Check("2.2.2.2", "a@a.com", "b@b.com", t0)
	if g.PendingLen() != 2 || g.KnownLen() != 0 {
		t.Errorf("pending=%d known=%d", g.PendingLen(), g.KnownLen())
	}
	g.Check("1.1.1.1", "a@a.com", "b@b.com", t0.Add(6*time.Minute))
	if g.PendingLen() != 1 || g.KnownLen() != 1 {
		t.Errorf("after accept: pending=%d known=%d", g.PendingLen(), g.KnownLen())
	}
}

func TestDefaultsApplied(t *testing.T) {
	g := New(0, 0)
	if g.MinDelay() != 300*time.Second {
		t.Errorf("default MinDelay = %v", g.MinDelay())
	}
}

func TestPrefixMatching(t *testing.T) {
	g := NewPrefix(300*time.Second, 0, 24)
	g.Check("5.0.0.1", "a@a.com", "b@b.com", t0)
	// A different host in the same /24 satisfies the tuple.
	if v := g.Check("5.0.0.99", "a@a.com", "b@b.com", t0.Add(6*time.Minute)); v != Accept {
		t.Errorf("same /24 retry: %v want Accept", v)
	}
	// A host in another /24 is a fresh tuple.
	if v := g.Check("5.0.1.1", "a@a.com", "b@b.com", t0.Add(12*time.Minute)); v != Defer {
		t.Errorf("other /24: %v want Defer", v)
	}
}

func TestPrefixBoundsClamped(t *testing.T) {
	g := NewPrefix(0, 0, 40) // clamps to 32 = exact
	g.Check("1.1.1.1", "a@a", "b@b", t0)
	if v := g.Check("1.1.1.2", "a@a", "b@b", t0.Add(6*time.Minute)); v != Defer {
		t.Errorf("clamped exact matching: %v", v)
	}
	if NewPrefix(0, 0, -3).prefixBits != 0 {
		t.Error("negative prefix should clamp to 0")
	}
}

func TestPrefixNonIPClientFallsBack(t *testing.T) {
	g := NewPrefix(300*time.Second, 0, 24)
	g.Check("not-an-ip", "a@a", "b@b", t0)
	if v := g.Check("not-an-ip", "a@a", "b@b", t0.Add(6*time.Minute)); v != Accept {
		t.Errorf("literal client key retry: %v", v)
	}
}
