package greylist_test

import (
	"fmt"
	"time"

	"repro/internal/greylist"
)

func ExampleGreylist_Check() {
	g := greylist.New(300*time.Second, 0)
	t0 := time.Date(2022, 7, 1, 0, 0, 0, 0, time.UTC)

	// First contact from a tuple is deferred; retrying from the SAME
	// server after the delay is accepted. Coremail's random-proxy retry
	// changes the IP, so the tuple never repeats — the paper's T6.
	fmt.Println(g.Check("1.1.1.1", "a@a.com", "b@b.com", t0))
	fmt.Println(g.Check("2.2.2.2", "a@a.com", "b@b.com", t0.Add(6*time.Minute))) // different proxy
	fmt.Println(g.Check("1.1.1.1", "a@a.com", "b@b.com", t0.Add(6*time.Minute))) // same proxy
	// Output:
	// defer
	// defer
	// accept
}
