// Package greylist implements RFC-style greylisting (Harris 2003): a
// receiver temporarily rejects the first delivery attempt for an unseen
// (client IP, envelope sender, envelope recipient) tuple and accepts a
// retry of the same tuple after a minimum delay. The paper shows that
// Coremail's random-proxy retry strategy violates the tuple — every
// retry arrives from a different IP — which is exactly why 843K emails
// (T6) bounce against the 783 greylisting domains. The delivery engine
// reproduces that interaction mechanistically through this package.
package greylist

import (
	"fmt"
	"hash/fnv"
	"sync"
	"time"
)

// Verdict is the outcome of a greylist check.
type Verdict int

// Verdicts.
const (
	// Defer: tuple unseen (or retried too early); reply 450 and record it.
	Defer Verdict = iota
	// Accept: tuple seen before and the minimum delay has passed.
	Accept
	// AcceptKnown: tuple already whitelisted by a previous accept.
	AcceptKnown
)

// Greylist holds tuple state for one receiver domain (or a shared pool;
// tuples embed the recipient so sharing is safe). The zero value is not
// usable; call New.
type Greylist struct {
	minDelay   time.Duration
	lifetime   time.Duration
	prefixBits int // 0 = exact IP; 24 = match client by /24, etc.

	mu      sync.Mutex
	pending map[uint64]time.Time // tuple -> first-seen
	known   map[uint64]time.Time // tuple -> whitelisted-at
}

// New creates a greylist that defers unseen tuples for minDelay and
// remembers accepted tuples for lifetime. Conventional values are 300 s
// and 30 days.
func New(minDelay, lifetime time.Duration) *Greylist {
	if minDelay <= 0 {
		minDelay = 300 * time.Second
	}
	if lifetime <= 0 {
		lifetime = 30 * 24 * time.Hour
	}
	return &Greylist{
		minDelay: minDelay,
		lifetime: lifetime,
		pending:  make(map[uint64]time.Time),
		known:    make(map[uint64]time.Time),
	}
}

// NewPrefix creates a greylist whose tuple matches the client by IPv4
// prefix rather than exact address. Many real deployments key on /24 so
// that retries from a neighboring MTA in the same farm pass — which
// also softens the random-proxy problem when proxies share a subnet.
func NewPrefix(minDelay, lifetime time.Duration, prefixBits int) *Greylist {
	g := New(minDelay, lifetime)
	if prefixBits < 0 {
		prefixBits = 0
	}
	if prefixBits > 32 {
		prefixBits = 32
	}
	g.prefixBits = prefixBits
	return g
}

// MinDelay returns the configured retry delay.
func (g *Greylist) MinDelay() time.Duration { return g.minDelay }

// clientKey reduces an IPv4 address to the configured prefix.
func (g *Greylist) clientKey(ip string) string {
	if g.prefixBits == 0 || g.prefixBits >= 32 {
		return ip
	}
	var a, b, c, d int
	if _, err := fmt.Sscanf(ip, "%d.%d.%d.%d", &a, &b, &c, &d); err != nil {
		return ip
	}
	v := uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d)
	v &= ^uint32(0) << (32 - g.prefixBits)
	return fmt.Sprintf("%d.%d.%d.%d/%d", v>>24, v>>16&0xff, v>>8&0xff, v&0xff, g.prefixBits)
}

func tupleKey(ip, from, to string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(ip))
	h.Write([]byte{0})
	h.Write([]byte(from))
	h.Write([]byte{0})
	h.Write([]byte(to))
	return h.Sum64()
}

// Check evaluates a delivery attempt from client ip with the given
// envelope at time t and returns the verdict, updating state.
//
// Window boundaries are pinned half-open so every caller — the engine
// chain and the smtpbridge wire path share one Greylist per world —
// classifies an edge retry identically: a retry arriving exactly
// minDelay after first sight is accepted (the wait interval is
// [first, first+minDelay), retried-too-fast is strict <), and a
// whitelist entry is valid for [accepted, accepted+lifetime) — a hit
// exactly at lifetime has expired and re-enters greylisting.
func (g *Greylist) Check(ip, from, to string, t time.Time) Verdict {
	key := tupleKey(g.clientKey(ip), from, to)
	g.mu.Lock()
	defer g.mu.Unlock()

	if wl, ok := g.known[key]; ok {
		if t.Sub(wl) < g.lifetime {
			return AcceptKnown
		}
		delete(g.known, key)
	}
	first, ok := g.pending[key]
	if !ok {
		g.pending[key] = t
		return Defer
	}
	if t.Sub(first) < g.minDelay {
		return Defer // retried too fast; clock does not reset
	}
	delete(g.pending, key)
	g.known[key] = t
	return Accept
}

// PendingLen and KnownLen expose state sizes for tests and memory
// accounting.
func (g *Greylist) PendingLen() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.pending)
}

// KnownLen returns the number of whitelisted tuples.
func (g *Greylist) KnownLen() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.known)
}

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case Defer:
		return "defer"
	case Accept:
		return "accept"
	case AcceptKnown:
		return "accept-known"
	}
	return "?"
}
