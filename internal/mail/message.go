package mail

import "time"

// Flag is Coremail's content-compliance verdict recorded with each email
// (the email_flag field of the dataset schema in Figure 3 of the paper).
type Flag string

// Possible values of Flag.
const (
	FlagNormal Flag = "Normal"
	FlagSpam   Flag = "Spam"
)

// Message is one email submitted by a sender for delivery. It carries only
// the metadata the paper's dataset retains (no subject, no body text);
// Tokens stands in for the content features a spam filter would extract,
// so that receiver-side filters can disagree with the sender-side flag
// without the simulator shipping real content around.
type Message struct {
	ID        string    // unique within a run
	From      Address   // envelope sender
	To        Address   // envelope recipient
	QueuedAt  time.Time // when the sender ESP accepted the message
	SizeBytes int       // RFC 5321 size
	RcptCount int       // number of recipients on the original submission
	Flag      Flag      // sender-ESP (Coremail) spam-filter verdict

	// Tokens are content-derived features used by spam filters. They are
	// generated, not extracted from real mail, preserving the paper's
	// no-content ethics posture while still letting heterogeneous filters
	// reach different verdicts on the same message.
	Tokens []string
}

// IsSpam reports whether the sender ESP flagged the message as spam.
// Per the paper, the sender delivers spam-flagged email exactly once.
func (m *Message) IsSpam() bool { return m.Flag == FlagSpam }
