// Package mail provides the core email data model shared by every
// subsystem in the reproduction: addresses, messages, SMTP reply codes and
// RFC 3463 enhanced mail system status codes.
package mail

import (
	"errors"
	"fmt"
	"strings"
)

// Address is a parsed email address. Local is the part before '@'
// (the username in the paper's terminology) and Domain the part after.
type Address struct {
	Local  string
	Domain string
}

// ErrBadAddress is returned by ParseAddress for syntactically invalid input.
var ErrBadAddress = errors.New("mail: malformed address")

// ParseAddress splits addr at the last '@'. It performs the light-weight
// validation an MTA does at RCPT time (non-empty local part and domain,
// no spaces, domain contains a dot or is a bare label).
func ParseAddress(addr string) (Address, error) {
	at := strings.LastIndexByte(addr, '@')
	if at <= 0 || at == len(addr)-1 {
		return Address{}, fmt.Errorf("%w: %q", ErrBadAddress, addr)
	}
	local, domain := addr[:at], addr[at+1:]
	if strings.ContainsAny(local, " \t\r\n") || strings.ContainsAny(domain, " \t\r\n@") {
		return Address{}, fmt.Errorf("%w: %q", ErrBadAddress, addr)
	}
	return Address{Local: local, Domain: strings.ToLower(domain)}, nil
}

// MustParseAddress is ParseAddress that panics on error. For tests and
// literals in generators.
func MustParseAddress(addr string) Address {
	a, err := ParseAddress(addr)
	if err != nil {
		panic(err)
	}
	return a
}

// String renders the address as local@domain.
func (a Address) String() string { return a.Local + "@" + a.Domain }

// IsZero reports whether the address is the zero value.
func (a Address) IsZero() bool { return a.Local == "" && a.Domain == "" }
