package mail

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseAddress(t *testing.T) {
	cases := []struct {
		in      string
		want    Address
		wantErr bool
	}{
		{"alice@a.com", Address{"alice", "a.com"}, false},
		{"Bob.Smith@B.COM", Address{"Bob.Smith", "b.com"}, false},
		{"x@y", Address{"x", "y"}, false},
		{"weird@@double.com", Address{"weird@", "double.com"}, false}, // last @ wins
		{"noat", Address{}, true},
		{"@nodomainlocal.com", Address{}, true},
		{"nolocal@", Address{}, true},
		{"spa ce@x.com", Address{}, true},
		{"a@dom ain.com", Address{}, true},
		{"", Address{}, true},
	}
	for _, c := range cases {
		got, err := ParseAddress(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("ParseAddress(%q) err=%v wantErr=%v", c.in, err, c.wantErr)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("ParseAddress(%q)=%v want %v", c.in, got, c.want)
		}
	}
}

func TestAddressRoundTrip(t *testing.T) {
	f := func(local, domain string) bool {
		if local == "" || domain == "" {
			return true
		}
		if strings.ContainsAny(local, " \t\r\n") || strings.ContainsAny(domain, " \t\r\n@") {
			return true
		}
		a := Address{Local: local, Domain: strings.ToLower(domain)}
		got, err := ParseAddress(a.String())
		return err == nil && got == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMustParseAddressPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad address")
		}
	}()
	MustParseAddress("not-an-address")
}

func TestAddressIsZero(t *testing.T) {
	if !(Address{}).IsZero() {
		t.Error("zero Address should report IsZero")
	}
	if (Address{Local: "a", Domain: "b"}).IsZero() {
		t.Error("non-zero Address should not report IsZero")
	}
}

func TestReplyCodeClasses(t *testing.T) {
	cases := []struct {
		code                          ReplyCode
		success, temporary, permanent bool
	}{
		{CodeOK, true, false, false},
		{CodeReady, true, false, false},
		{CodeUnavailable, false, true, false},
		{CodeInsufficient, false, true, false},
		{CodeMailboxUnavail, false, false, true},
		{CodeTransactFailed, false, false, true},
		{CodeStartData, false, false, false},
	}
	for _, c := range cases {
		if got := c.code.Success(); got != c.success {
			t.Errorf("%d.Success()=%v want %v", c.code, got, c.success)
		}
		if got := c.code.Temporary(); got != c.temporary {
			t.Errorf("%d.Temporary()=%v want %v", c.code, got, c.temporary)
		}
		if got := c.code.Permanent(); got != c.permanent {
			t.Errorf("%d.Permanent()=%v want %v", c.code, got, c.permanent)
		}
	}
}

func TestEnhancedCodeString(t *testing.T) {
	if got := EnhMailboxFull.String(); got != "4.2.2" {
		t.Errorf("EnhMailboxFull.String()=%q want 4.2.2", got)
	}
	if got := EnhAuthFailure.String(); got != "5.7.26" {
		t.Errorf("EnhAuthFailure.String()=%q want 5.7.26", got)
	}
}

func TestParseEnhancedCode(t *testing.T) {
	cases := []struct {
		in   string
		want EnhancedCode
		ok   bool
	}{
		{"4.2.2", EnhMailboxFull, true},
		{"5.7.26", EnhAuthFailure, true},
		{"2.0.0", EnhOK, true},
		{"3.1.1", EnhancedCode{}, false}, // class 3 invalid
		{"5.7", EnhancedCode{}, false},
		{"5.7.26.1", EnhancedCode{}, false},
		{"a.b.c", EnhancedCode{}, false},
		{"", EnhancedCode{}, false},
		{"5.-1.2", EnhancedCode{}, false},
	}
	for _, c := range cases {
		got, ok := ParseEnhancedCode(c.in)
		if ok != c.ok || got != c.want {
			t.Errorf("ParseEnhancedCode(%q)=(%v,%v) want (%v,%v)", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestEnhancedCodeParseRoundTrip(t *testing.T) {
	f := func(class, subject, detail uint8) bool {
		cl := []int{2, 4, 5}[int(class)%3]
		e := EnhancedCode{Class: cl, Subject: int(subject) % 8, Detail: int(detail) % 100}
		got, ok := ParseEnhancedCode(e.String())
		return ok && got == e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMessageIsSpam(t *testing.T) {
	m := &Message{Flag: FlagSpam}
	if !m.IsSpam() {
		t.Error("FlagSpam message should report IsSpam")
	}
	m.Flag = FlagNormal
	if m.IsSpam() {
		t.Error("FlagNormal message should not report IsSpam")
	}
}
