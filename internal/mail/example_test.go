package mail_test

import (
	"fmt"

	"repro/internal/mail"
)

func ExampleParseAddress() {
	addr, _ := mail.ParseAddress("Jun.Li@B.COM")
	fmt.Println(addr.Local, addr.Domain)
	fmt.Println(addr)
	// Output:
	// Jun.Li b.com
	// Jun.Li@b.com
}

func ExampleParseEnhancedCode() {
	code, ok := mail.ParseEnhancedCode("4.2.2")
	fmt.Println(code, ok, code == mail.EnhMailboxFull)
	// Output: 4.2.2 true true
}
