package mail

import (
	"fmt"
	"strconv"
	"strings"
)

// ReplyCode is a three-digit SMTP reply code (RFC 5321 §4.2).
type ReplyCode int

// Common reply codes used by the simulator and the SMTP substrate.
const (
	CodeReady          ReplyCode = 220
	CodeClosing        ReplyCode = 221
	CodeOK             ReplyCode = 250
	CodeStartData      ReplyCode = 354
	CodeUnavailable    ReplyCode = 421
	CodeMailboxBusy    ReplyCode = 450
	CodeLocalError     ReplyCode = 451
	CodeInsufficient   ReplyCode = 452
	CodeSyntaxError    ReplyCode = 500
	CodeParamError     ReplyCode = 501
	CodeNotImplemented ReplyCode = 502
	CodeBadSequence    ReplyCode = 503
	CodeMailboxUnavail ReplyCode = 550
	CodeUserNotLocal   ReplyCode = 551
	CodeExceededQuota  ReplyCode = 552
	CodeNameNotAllowed ReplyCode = 553
	CodeTransactFailed ReplyCode = 554
)

// Temporary reports whether the reply code signals a transient (4xx)
// failure that the sender should retry.
func (c ReplyCode) Temporary() bool { return c >= 400 && c < 500 }

// Permanent reports whether the reply code signals a permanent (5xx)
// failure.
func (c ReplyCode) Permanent() bool { return c >= 500 && c < 600 }

// Success reports whether the reply code signals success (2xx).
func (c ReplyCode) Success() bool { return c >= 200 && c < 300 }

// EnhancedCode is an RFC 3463 enhanced mail system status code
// (class.subject.detail, e.g. 4.2.2 for "mailbox full").
type EnhancedCode struct {
	Class   int // 2 success, 4 persistent transient, 5 permanent
	Subject int
	Detail  int
}

// Enhanced status codes the NDR templates reference. Names follow the
// RFC 3463 subject/detail registry.
var (
	EnhOK              = EnhancedCode{2, 0, 0}
	EnhBadMailbox      = EnhancedCode{5, 1, 1} // bad destination mailbox address
	EnhBadDomain       = EnhancedCode{5, 1, 2} // bad destination system address
	EnhMailboxFull     = EnhancedCode{4, 2, 2} // mailbox full
	EnhMailboxDisabled = EnhancedCode{5, 2, 1} // mailbox disabled
	EnhMsgTooBig       = EnhancedCode{5, 3, 4} // message too big for system
	EnhNetworkError    = EnhancedCode{4, 4, 1} // no answer from host
	EnhBadConnection   = EnhancedCode{4, 4, 2} // bad connection
	EnhRoutingError    = EnhancedCode{5, 4, 4} // unable to route
	EnhCongestion      = EnhancedCode{4, 4, 5} // mail system congestion
	EnhProtocolError   = EnhancedCode{5, 5, 0} // protocol error
	EnhTooManyRcpts    = EnhancedCode{5, 5, 3} // too many recipients
	EnhSecurityPolicy  = EnhancedCode{5, 7, 1} // delivery not authorized
	EnhTLSRequired     = EnhancedCode{5, 7, 10}
	EnhAuthFailure     = EnhancedCode{5, 7, 26} // multiple auth checks failed
	EnhAuthTempFail    = EnhancedCode{4, 7, 0}
	EnhGreylisted      = EnhancedCode{4, 7, 1}
	EnhRateLimited     = EnhancedCode{4, 5, 2}
)

// IsZero reports whether e is unset. The paper finds 28.79% of NDR
// messages carry no enhanced status code; those render with a zero code.
func (e EnhancedCode) IsZero() bool { return e.Class == 0 }

// String renders class.subject.detail.
func (e EnhancedCode) String() string {
	return fmt.Sprintf("%d.%d.%d", e.Class, e.Subject, e.Detail)
}

// ParseEnhancedCode parses "c.s.d". It returns ok=false for strings that
// are not an enhanced status code (the common case for 28.79% of NDRs).
func ParseEnhancedCode(s string) (EnhancedCode, bool) {
	parts := strings.Split(s, ".")
	if len(parts) != 3 {
		return EnhancedCode{}, false
	}
	var vals [3]int
	for i, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil || n < 0 || n > 999 {
			return EnhancedCode{}, false
		}
		vals[i] = n
	}
	if vals[0] != 2 && vals[0] != 4 && vals[0] != 5 {
		return EnhancedCode{}, false
	}
	return EnhancedCode{vals[0], vals[1], vals[2]}, true
}
