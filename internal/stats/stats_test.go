package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil)")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %g", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	cases := []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {-5, 1}, {110, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("Percentile(%g) = %g want %g", c.p, got, c.want)
		}
	}
	if got := Percentile([]float64{1, 2}, 50); got != 1.5 {
		t.Errorf("interpolated median = %g", got)
	}
	if Percentile(nil, 50) != 0 {
		t.Error("Percentile(nil)")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Percentile mutated input")
	}
}

func TestMedianIsP50(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		return Median(xs) == Percentile(xs, 50)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFractionAtLeast(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	if got := FractionAtLeast(xs, 30); got != 0.5 {
		t.Errorf("FractionAtLeast = %g", got)
	}
	if FractionAtLeast(nil, 1) != 0 {
		t.Error("empty input")
	}
}

func TestCDF(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	pts := CDF(xs, []float64{0, 1, 2.5, 4, 9})
	want := []float64{0, 0.25, 0.5, 1, 1}
	for i, p := range pts {
		if p.F != want[i] {
			t.Errorf("CDF at %g = %g want %g", p.X, p.F, want[i])
		}
	}
}

func TestCDFMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		at := []float64{-10, -1, 0, 1, 10, 100}
		pts := CDF(xs, at)
		for i := 1; i < len(pts); i++ {
			if pts[i].F < pts[i-1].F {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{-5, 0, 1, 5, 9, 15}
	h := Histogram(xs, 0, 10, 2)
	if h[0] != 3 || h[1] != 3 { // -5 clamps to 0-bucket, 15 clamps to last; 5 opens bucket 1
		t.Errorf("Histogram = %v", h)
	}
	if Histogram(xs, 10, 0, 2) != nil || Histogram(xs, 0, 10, 0) != nil {
		t.Error("invalid params should return nil")
	}
	total := 0
	for _, c := range h {
		total += c
	}
	if total != len(xs) {
		t.Errorf("histogram loses values: %d", total)
	}
}

func TestRatioAndPct(t *testing.T) {
	if Ratio(1, 0) != 0 || Pct(1, 0) != 0 {
		t.Error("zero denominator should yield 0")
	}
	if Ratio(1, 4) != 0.25 || Pct(1, 4) != 25 {
		t.Error("ratio math")
	}
}
