// Package stats provides the small numeric helpers the analysis layer
// uses: means, percentiles, CDFs and fixed-bucket histograms.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between closest ranks. It sorts a copy.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// FractionAtLeast returns the share of values >= threshold.
func FractionAtLeast(xs []float64, threshold float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x >= threshold {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	X float64 // value
	F float64 // P(value <= X)
}

// CDF returns the empirical CDF of xs evaluated at the given points.
func CDF(xs []float64, at []float64) []CDFPoint {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	out := make([]CDFPoint, len(at))
	for i, x := range at {
		idx := sort.SearchFloat64s(s, math.Nextafter(x, math.Inf(1)))
		f := 0.0
		if len(s) > 0 {
			f = float64(idx) / float64(len(s))
		}
		out[i] = CDFPoint{X: x, F: f}
	}
	return out
}

// Histogram counts values into equal-width buckets over [lo, hi);
// values outside clamp to the edge buckets.
func Histogram(xs []float64, lo, hi float64, buckets int) []int {
	if buckets <= 0 || hi <= lo {
		return nil
	}
	counts := make([]int, buckets)
	w := (hi - lo) / float64(buckets)
	for _, x := range xs {
		i := int((x - lo) / w)
		if i < 0 {
			i = 0
		}
		if i >= buckets {
			i = buckets - 1
		}
		counts[i]++
	}
	return counts
}

// Ratio is a safe division returning 0 for a zero denominator.
func Ratio(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Pct is Ratio×100.
func Pct(num, den int) float64 { return Ratio(num, den) * 100 }
