// Package breach is the reproduction's HaveIBeenPwned substitute: an
// in-memory corpus of leaked email addresses with membership queries.
// The paper flags a sender domain as a bulk spammer when more than 80%
// of its recipients appear in the leak corpus (Section 4.2.1); the
// analysis pipeline runs the same rule against this corpus.
package breach

import (
	"strings"
	"sync"
)

// Corpus is a set of leaked addresses. It is safe for concurrent use.
type Corpus struct {
	mu    sync.RWMutex
	leaks map[string]struct{}
}

// NewCorpus returns an empty corpus.
func NewCorpus() *Corpus {
	return &Corpus{leaks: make(map[string]struct{})}
}

func norm(addr string) string { return strings.ToLower(strings.TrimSpace(addr)) }

// Add records addr as leaked.
func (c *Corpus) Add(addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.leaks[norm(addr)] = struct{}{}
}

// Pwned reports whether addr appears in the corpus.
func (c *Corpus) Pwned(addr string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.leaks[norm(addr)]
	return ok
}

// Len returns the corpus size.
func (c *Corpus) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.leaks)
}

// PwnedShare returns the fraction of addrs present in the corpus, the
// statistic the bulk-spammer rule thresholds at 0.80.
func (c *Corpus) PwnedShare(addrs []string) float64 {
	if len(addrs) == 0 {
		return 0
	}
	hits := 0
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, a := range addrs {
		if _, ok := c.leaks[norm(a)]; ok {
			hits++
		}
	}
	return float64(hits) / float64(len(addrs))
}
