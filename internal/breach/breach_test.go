package breach

import "testing"

func TestAddAndPwned(t *testing.T) {
	c := NewCorpus()
	c.Add("Alice@Example.com")
	if !c.Pwned("alice@example.com") {
		t.Error("case-insensitive lookup failed")
	}
	if !c.Pwned(" alice@example.com ") {
		t.Error("whitespace-tolerant lookup failed")
	}
	if c.Pwned("bob@example.com") {
		t.Error("unleaked address reported pwned")
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestAddIdempotent(t *testing.T) {
	c := NewCorpus()
	c.Add("a@b.com")
	c.Add("A@B.COM")
	if c.Len() != 1 {
		t.Errorf("duplicate adds grew corpus: %d", c.Len())
	}
}

func TestPwnedShare(t *testing.T) {
	c := NewCorpus()
	for _, a := range []string{"a@x.com", "b@x.com", "c@x.com", "d@x.com"} {
		c.Add(a)
	}
	addrs := []string{"a@x.com", "b@x.com", "c@x.com", "d@x.com", "fresh@x.com"}
	if got := c.PwnedShare(addrs); got != 0.8 {
		t.Errorf("PwnedShare = %g want 0.8", got)
	}
	if got := c.PwnedShare(nil); got != 0 {
		t.Errorf("PwnedShare(nil) = %g", got)
	}
}

func TestBulkSpammerRule(t *testing.T) {
	// The paper's rule: >80% of a sender's recipients in the corpus.
	c := NewCorpus()
	var recipients []string
	for i := 0; i < 100; i++ {
		addr := "victim" + string(rune('a'+i%26)) + string(rune('0'+i/26)) + "@leak.com"
		recipients = append(recipients, addr)
		if i < 85 {
			c.Add(addr)
		}
	}
	if c.PwnedShare(recipients) <= 0.80 {
		t.Error("85% leaked recipients should exceed the bulk-spammer threshold")
	}
}
