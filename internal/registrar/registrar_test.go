package registrar

import (
	"testing"
	"time"
)

var (
	t0 = time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC)
	t1 = time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)
	t2 = time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC)
	t3 = time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
)

func TestAvailability(t *testing.T) {
	r := NewRegistry()
	r.Register("expired.com", "OldCorp", t0, t1, true)
	if r.Available("expired.com", t0.AddDate(0, 6, 0)) {
		t.Error("registered domain reported available")
	}
	if !r.Available("expired.com", t1.AddDate(0, 1, 0)) {
		t.Error("expired domain reported unavailable")
	}
	if !r.Available("never-seen.com", t0) {
		t.Error("unknown domain should be available")
	}
}

func TestOpenEndedRegistration(t *testing.T) {
	r := NewRegistry()
	r.Register("alive.com", "Corp", t0, time.Time{}, true)
	if r.Available("alive.com", t3) {
		t.Error("open-ended registration should never expire")
	}
}

func TestWHOISHistoryAndRegistrantChange(t *testing.T) {
	r := NewRegistry()
	r.Register("squat.com", "LegitPublisher", t0, t1, true)
	r.Register("squat.com", "NewRegistrant", t2, time.Time{}, true)

	hist := r.WHOISHistory("squat.com")
	if len(hist) != 2 {
		t.Fatalf("history length %d", len(hist))
	}
	changed, ok := r.RegistrantChanged("squat.com", t0.AddDate(0, 1, 0), t2.AddDate(0, 1, 0))
	if !ok || !changed {
		t.Errorf("registrant change not detected: changed=%v ok=%v", changed, ok)
	}

	// Same registrant re-registering: unchanged.
	r2 := NewRegistry()
	r2.Register("renewed.com", "Same", t0, t1, true)
	r2.Register("renewed.com", "Same", t2, time.Time{}, true)
	changed, ok = r2.RegistrantChanged("renewed.com", t0.AddDate(0, 1, 0), t2.AddDate(0, 1, 0))
	if !ok || changed {
		t.Errorf("same registrant flagged as changed: changed=%v ok=%v", changed, ok)
	}

	// Gap with no registration: not ok.
	if _, ok := r.RegistrantChanged("squat.com", t1.AddDate(0, 1, 0), t2.AddDate(0, 1, 0)); ok {
		t.Error("change query over unregistered window should not be ok")
	}
}

func TestCurrentRegistration(t *testing.T) {
	r := NewRegistry()
	r.Register("x.com", "A", t0, t1, false)
	reg, ok := r.CurrentRegistration("X.COM", t0.AddDate(0, 3, 0))
	if !ok || reg.Registrant != "A" || reg.HasMX {
		t.Errorf("CurrentRegistration = %+v ok=%v", reg, ok)
	}
	if _, ok := r.CurrentRegistration("x.com", t2); ok {
		t.Error("expired tenure should not be current")
	}
}

func TestUsernameStates(t *testing.T) {
	u := NewUsernameRegistry("freemail.example", false)
	u.SetState("alice", UserActive)
	u.SetState("bob", UserFrozen)
	u.SetState("admin", UserReserved)
	u.SetState("carol", UserRecycled)

	if !u.Exists("alice") || u.Exists("bob") || u.Exists("ghost") {
		t.Error("Exists mismatch")
	}
	// The paper's distinction: non-existent ≠ registrable.
	cases := map[string]bool{
		"alice": false, // active
		"bob":   false, // frozen: NDR says no such user, UI refuses
		"admin": false, // reserved
		"carol": false, // recycled but provider does not recycle
		"ghost": true,  // never registered
	}
	for name, want := range cases {
		if got := u.Registrable(name); got != want {
			t.Errorf("Registrable(%s)=%v want %v", name, got, want)
		}
	}
}

func TestYahooStyleRecycling(t *testing.T) {
	u := NewUsernameRegistry("yahoo-like.example", true)
	u.SetState("olduser", UserRecycled)
	if !u.Registrable("olduser") {
		t.Error("recycling provider should release recycled usernames")
	}
}

func TestUsernameCaseInsensitive(t *testing.T) {
	u := NewUsernameRegistry("p", false)
	u.SetState("Alice", UserActive)
	if !u.Exists("alice") || !u.Exists("ALICE") {
		t.Error("username lookup should be case-insensitive")
	}
}
