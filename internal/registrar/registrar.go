// Package registrar simulates the registration infrastructure the
// paper's squatting study probes externally: a domain registry with
// availability queries (the GoDaddy API substitute), WHOIS registrant
// history (the WhoisXML substitute), and per-provider free-mail username
// registries with the frozen/reserved/available distinction the paper
// discovered via web registration UIs ("non-existent user does not
// necessarily mean the username is available for registration").
package registrar

import (
	"strings"
	"sync"
	"time"
)

// Registration is one tenure of a domain by one registrant.
type Registration struct {
	Registrant string
	From       time.Time
	Until      time.Time // zero = still registered
	HasMX      bool      // MX configured + TCP/25 open after (re-)registration
}

func (r *Registration) activeAt(t time.Time) bool {
	if t.Before(r.From) {
		return false
	}
	return r.Until.IsZero() || t.Before(r.Until)
}

// Registry is the domain registry. It is safe for concurrent use.
type Registry struct {
	mu      sync.RWMutex
	domains map[string][]Registration
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{domains: make(map[string][]Registration)}
}

// Register records a registration tenure for domain.
func (r *Registry) Register(domain, registrant string, from, until time.Time, hasMX bool) {
	domain = strings.ToLower(domain)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.domains[domain] = append(r.domains[domain], Registration{
		Registrant: registrant, From: from, Until: until, HasMX: hasMX,
	})
}

// Available reports whether domain can be purchased at time t — the
// GoDaddy availability check of Section 5.1.
func (r *Registry) Available(domain string, t time.Time) bool {
	domain = strings.ToLower(domain)
	r.mu.RLock()
	defer r.mu.RUnlock()
	for i := range r.domains[domain] {
		if r.domains[domain][i].activeAt(t) {
			return false
		}
	}
	return true
}

// CurrentRegistration returns the active tenure at t, if any.
func (r *Registry) CurrentRegistration(domain string, t time.Time) (Registration, bool) {
	domain = strings.ToLower(domain)
	r.mu.RLock()
	defer r.mu.RUnlock()
	for i := range r.domains[domain] {
		if r.domains[domain][i].activeAt(t) {
			return r.domains[domain][i], true
		}
	}
	return Registration{}, false
}

// WHOISHistory returns all tenures of domain in chronological order —
// the paper's registrant-change audit (56.19% unchanged, 26.67% changed).
func (r *Registry) WHOISHistory(domain string) []Registration {
	domain = strings.ToLower(domain)
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Registration, len(r.domains[domain]))
	copy(out, r.domains[domain])
	return out
}

// RegistrantChanged reports whether the registrant at t2 differs from
// the most recent registrant at-or-before t1. Either missing tenure
// yields ok=false.
func (r *Registry) RegistrantChanged(domain string, t1, t2 time.Time) (changed, ok bool) {
	prev, ok1 := r.CurrentRegistration(domain, t1)
	cur, ok2 := r.CurrentRegistration(domain, t2)
	if !ok1 || !ok2 {
		return false, false
	}
	return prev.Registrant != cur.Registrant, true
}

// UserState is the state of a username at a free-mail provider.
type UserState int

// Username states observed via registration-UI probing.
const (
	UserUnknown  UserState = iota // never registered: available
	UserActive                    // currently in use
	UserFrozen                    // deactivated but not released
	UserReserved                  // blocked from registration by policy
	UserRecycled                  // deleted and released for re-registration
)

// UsernameRegistry models one provider's account namespace and
// re-registration policy.
type UsernameRegistry struct {
	Provider string
	// RecyclesAccounts mirrors provider policy: the paper finds Yahoo
	// re-releases old usernames much more readily than others.
	RecyclesAccounts bool

	mu    sync.RWMutex
	users map[string]UserState
}

// NewUsernameRegistry creates a registry for provider.
func NewUsernameRegistry(provider string, recycles bool) *UsernameRegistry {
	return &UsernameRegistry{
		Provider:         provider,
		RecyclesAccounts: recycles,
		users:            make(map[string]UserState),
	}
}

// SetState records the state of a username.
func (u *UsernameRegistry) SetState(local string, s UserState) {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.users[strings.ToLower(local)] = s
}

// State returns the username's state.
func (u *UsernameRegistry) State(local string) UserState {
	u.mu.RLock()
	defer u.mu.RUnlock()
	return u.users[strings.ToLower(local)]
}

// Exists reports whether the username currently accepts mail (what an
// SMTP RCPT probe or NDR reveals).
func (u *UsernameRegistry) Exists(local string) bool {
	return u.State(local) == UserActive
}

// Registrable reports what the web registration UI would say: the
// paper's key distinction is that "no such user" NDRs do NOT imply
// registrable — frozen and reserved names are refused by the UI.
func (u *UsernameRegistry) Registrable(local string) bool {
	switch u.State(local) {
	case UserUnknown:
		return true
	case UserRecycled:
		return u.RecyclesAccounts
	default:
		return false
	}
}
