package auth

import (
	"strings"
	"time"

	"repro/internal/dns"
)

// DMARCPolicy is the p= disposition a domain publishes.
type DMARCPolicy int

// DMARC policies.
const (
	DMARCNone DMARCPolicy = iota
	DMARCQuarantine
	DMARCReject
)

// String returns the policy keyword.
func (p DMARCPolicy) String() string {
	switch p {
	case DMARCNone:
		return "none"
	case DMARCQuarantine:
		return "quarantine"
	case DMARCReject:
		return "reject"
	}
	return "?"
}

// DMARCRecord is a parsed _dmarc TXT record.
type DMARCRecord struct {
	Policy      DMARCPolicy
	StrictDKIM  bool // adkim=s
	StrictSPF   bool // aspf=s
	Percent     int  // pct= (default 100)
	RUA         string
	hasPolicyTg bool
}

// ParseDMARC parses a DMARC TXT record. It returns ok=false when the
// string is not a DMARC record at all, and a non-nil error-equivalent
// permerror via ok=false when required tags are missing.
func ParseDMARC(txt string) (DMARCRecord, bool) {
	if !strings.HasPrefix(strings.TrimSpace(txt), "v=DMARC1") {
		return DMARCRecord{}, false
	}
	rec := DMARCRecord{Percent: 100}
	for _, part := range strings.Split(txt, ";") {
		part = strings.TrimSpace(part)
		key, val, found := strings.Cut(part, "=")
		if !found {
			continue
		}
		switch strings.ToLower(key) {
		case "p":
			rec.hasPolicyTg = true
			switch strings.ToLower(val) {
			case "none":
				rec.Policy = DMARCNone
			case "quarantine":
				rec.Policy = DMARCQuarantine
			case "reject":
				rec.Policy = DMARCReject
			default:
				return DMARCRecord{}, false
			}
		case "adkim":
			rec.StrictDKIM = strings.EqualFold(val, "s")
		case "aspf":
			rec.StrictSPF = strings.EqualFold(val, "s")
		case "pct":
			rec.Percent = atoiDefault(val, 100)
		case "rua":
			rec.RUA = val
		}
	}
	if !rec.hasPolicyTg {
		return DMARCRecord{}, false
	}
	return rec, true
}

func atoiDefault(s string, def int) int {
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return def
		}
		n = n*10 + int(c-'0')
	}
	if s == "" {
		return def
	}
	return n
}

// DMARCResult is the outcome of DMARC evaluation for one message.
type DMARCResult struct {
	Found   bool        // a valid record was published
	Aligned bool        // SPF or DKIM passed with alignment
	Policy  DMARCPolicy // requested disposition when not aligned
}

// DMARCEvaluator evaluates DMARC for incoming mail.
type DMARCEvaluator struct {
	Resolver *dns.Resolver
}

// Evaluate applies RFC 7489: it fetches _dmarc.<fromDomain>, falling
// back to the organizational domain, and checks identifier alignment of
// the SPF-authenticated domain and the DKIM d= domain against the
// RFC5322.From domain.
func (e *DMARCEvaluator) Evaluate(fromDomain string, spf SPFResult, spfDomain string,
	dkim DKIMResult, dkimDomain string, t time.Time) DMARCResult {

	rec, found := e.fetch(fromDomain, t)
	if !found {
		rec, found = e.fetch(orgDomain(fromDomain), t)
	}
	if !found {
		return DMARCResult{}
	}
	aligned := false
	if spf.Pass() && domainsAligned(spfDomain, fromDomain, rec.StrictSPF) {
		aligned = true
	}
	if dkim.Pass() && domainsAligned(dkimDomain, fromDomain, rec.StrictDKIM) {
		aligned = true
	}
	return DMARCResult{Found: true, Aligned: aligned, Policy: rec.Policy}
}

func (e *DMARCEvaluator) fetch(domain string, t time.Time) (DMARCRecord, bool) {
	if domain == "" {
		return DMARCRecord{}, false
	}
	txts, code := e.Resolver.ResolveTXT("_dmarc."+domain, t)
	if code != dns.NoError {
		return DMARCRecord{}, false
	}
	for _, txt := range txts {
		if rec, ok := ParseDMARC(txt); ok {
			return rec, true
		}
	}
	return DMARCRecord{}, false
}

// domainsAligned implements relaxed/strict identifier alignment.
func domainsAligned(authDomain, fromDomain string, strict bool) bool {
	authDomain = strings.ToLower(authDomain)
	fromDomain = strings.ToLower(fromDomain)
	if authDomain == fromDomain {
		return true
	}
	if strict {
		return false
	}
	return orgDomain(authDomain) == orgDomain(fromDomain)
}

// orgDomain approximates the organizational domain with the same
// two-label heuristic the dns package uses.
func orgDomain(name string) string {
	labels := strings.Split(name, ".")
	if len(labels) <= 2 {
		return name
	}
	tld2 := labels[len(labels)-2] + "." + labels[len(labels)-1]
	switch tld2 {
	case "com.cn", "edu.cn", "org.cn", "net.cn", "co.uk", "ac.uk", "com.br", "co.jp":
		return labels[len(labels)-3] + "." + tld2
	}
	return tld2
}
