// Package auth implements the sender-authentication mechanisms whose
// misconfiguration the paper identifies as a major hard-bounce cause
// (T3, 701K emails, 2.19%): SPF (RFC 7208), a DKIM-style signature
// scheme over DNS-published Ed25519 keys (RFC 8463 flavor), and DMARC
// (RFC 7489) alignment and policy evaluation. Receiver MTAs in the
// simulation run these verifiers for real against the dns substrate, so
// authentication bounces are caused by actual failed evaluations of
// actually-broken records.
package auth

import (
	"net/netip"
	"strings"
	"time"

	"repro/internal/dns"
)

// SPFResult is an RFC 7208 §2.6 evaluation result.
type SPFResult int

// SPF results.
const (
	SPFNone SPFResult = iota
	SPFNeutral
	SPFPass
	SPFFail
	SPFSoftFail
	SPFTempError
	SPFPermError
)

// String returns the RFC 7208 result name.
func (r SPFResult) String() string {
	switch r {
	case SPFNone:
		return "none"
	case SPFNeutral:
		return "neutral"
	case SPFPass:
		return "pass"
	case SPFFail:
		return "fail"
	case SPFSoftFail:
		return "softfail"
	case SPFTempError:
		return "temperror"
	case SPFPermError:
		return "permerror"
	}
	return "?"
}

// Pass reports whether the result authenticates the sender.
func (r SPFResult) Pass() bool { return r == SPFPass }

// maxSPFLookups is the RFC 7208 §4.6.4 DNS-lookup budget.
const maxSPFLookups = 10

// SPFEvaluator evaluates SPF records against the simulated DNS.
type SPFEvaluator struct {
	Resolver *dns.Resolver
}

// Evaluate runs check_host() for the connection IP ip and the MAIL FROM
// domain at virtual time t.
func (e *SPFEvaluator) Evaluate(ip, domain string, t time.Time) SPFResult {
	addr, err := netip.ParseAddr(ip)
	if err != nil {
		return SPFPermError
	}
	budget := maxSPFLookups
	return e.checkHost(addr, domain, t, &budget, 0)
}

func (e *SPFEvaluator) checkHost(ip netip.Addr, domain string, t time.Time, budget *int, depth int) SPFResult {
	if depth > 10 {
		return SPFPermError
	}
	txts, code := e.Resolver.ResolveTXT(domain, t)
	switch code {
	case dns.NoError:
	case dns.NXDomain:
		return SPFNone
	default:
		return SPFTempError
	}
	var record string
	for _, txt := range txts {
		if txt == "v=spf1" || strings.HasPrefix(txt, "v=spf1 ") {
			if record != "" {
				return SPFPermError // multiple records
			}
			record = txt
		}
	}
	if record == "" {
		return SPFNone
	}
	return e.evalRecord(ip, domain, record, t, budget, depth)
}

func (e *SPFEvaluator) evalRecord(ip netip.Addr, domain, record string, t time.Time, budget *int, depth int) SPFResult {
	terms := strings.Fields(record)[1:] // skip v=spf1
	redirect := ""
	for _, term := range terms {
		if strings.HasPrefix(term, "redirect=") {
			redirect = strings.TrimPrefix(term, "redirect=")
			continue
		}
		if strings.Contains(term, "=") {
			continue // unknown modifier: ignored per RFC
		}
		qual := byte('+')
		mech := term
		switch term[0] {
		case '+', '-', '~', '?':
			qual, mech = term[0], term[1:]
		}
		if mech == "" || strings.Contains(mech, "%") {
			return SPFPermError // macros unsupported -> permerror
		}
		match, res := e.matchMechanism(ip, domain, mech, t, budget, depth)
		if res != SPFNone {
			return res // temperror/permerror bubbled up
		}
		if match {
			return qualResult(qual)
		}
	}
	if redirect != "" {
		*budget--
		if *budget < 0 {
			return SPFPermError
		}
		r := e.checkHost(ip, redirect, t, budget, depth+1)
		if r == SPFNone {
			return SPFPermError
		}
		return r
	}
	return SPFNeutral
}

// matchMechanism evaluates one mechanism. It returns (matched, fatal):
// fatal is SPFNone unless evaluation must abort with temp/permerror.
func (e *SPFEvaluator) matchMechanism(ip netip.Addr, domain, mech string, t time.Time, budget *int, depth int) (bool, SPFResult) {
	name, arg, _ := strings.Cut(mech, ":")
	switch strings.ToLower(name) {
	case "all":
		return true, SPFNone
	case "ip4", "ip6":
		if arg == "" {
			return false, SPFPermError
		}
		if !strings.Contains(arg, "/") {
			a, err := netip.ParseAddr(arg)
			if err != nil {
				return false, SPFPermError
			}
			return a == ip, SPFNone
		}
		pfx, err := netip.ParsePrefix(arg)
		if err != nil {
			return false, SPFPermError
		}
		return pfx.Contains(ip), SPFNone
	case "a":
		target := domain
		if arg != "" {
			target = arg
		}
		*budget--
		if *budget < 0 {
			return false, SPFPermError
		}
		ips, code := e.Resolver.ResolveA(target, t)
		if code == dns.ServFail || code == dns.Timeout {
			return false, SPFTempError
		}
		for _, s := range ips {
			if a, err := netip.ParseAddr(s); err == nil && a == ip {
				return true, SPFNone
			}
		}
		return false, SPFNone
	case "mx":
		target := domain
		if arg != "" {
			target = arg
		}
		*budget--
		if *budget < 0 {
			return false, SPFPermError
		}
		hosts, code := e.Resolver.ResolveMX(target, t)
		if code == dns.ServFail || code == dns.Timeout {
			return false, SPFTempError
		}
		for _, h := range hosts {
			ips, code := e.Resolver.ResolveA(h, t)
			if code == dns.ServFail || code == dns.Timeout {
				return false, SPFTempError
			}
			for _, s := range ips {
				if a, err := netip.ParseAddr(s); err == nil && a == ip {
					return true, SPFNone
				}
			}
		}
		return false, SPFNone
	case "include":
		if arg == "" {
			return false, SPFPermError
		}
		*budget--
		if *budget < 0 {
			return false, SPFPermError
		}
		switch r := e.checkHost(ip, arg, t, budget, depth+1); r {
		case SPFPass:
			return true, SPFNone
		case SPFFail, SPFSoftFail, SPFNeutral:
			return false, SPFNone
		case SPFTempError:
			return false, SPFTempError
		default: // none, permerror
			return false, SPFPermError
		}
	case "exists", "ptr":
		// Not modeled in the simulated namespace; treated as no-match.
		return false, SPFNone
	default:
		return false, SPFPermError
	}
}

func qualResult(q byte) SPFResult {
	switch q {
	case '-':
		return SPFFail
	case '~':
		return SPFSoftFail
	case '?':
		return SPFNeutral
	default:
		return SPFPass
	}
}
