package auth

import (
	"testing"

	"repro/internal/dns"
)

func benchSPFWorld() *SPFEvaluator {
	a := dns.NewAuthority()
	a.Add(dns.Record{Name: "corp.com", Type: dns.TypeTXT, TXT: "v=spf1 include:_spf.esp.com -all"})
	spf := "v=spf1"
	for i := 0; i < 34; i++ {
		spf += " ip4:10.0.0." + string(rune('0'+i%10))
	}
	a.Add(dns.Record{Name: "_spf.esp.com", Type: dns.TypeTXT, TXT: spf + " ip4:50.0.0.1 -all"})
	return &SPFEvaluator{Resolver: dns.NewResolver(a, nil)}
}

func BenchmarkSPFEvaluate(b *testing.B) {
	e := benchSPFWorld()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if r := e.Evaluate("50.0.0.1", "corp.com", t0); r != SPFPass {
			b.Fatal(r)
		}
	}
}

func BenchmarkDKIMSign(b *testing.B) {
	s := NewSigner("bench.com", "s1", seedBench(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Sign("msg-1")
	}
}

func BenchmarkDKIMVerify(b *testing.B) {
	s := NewSigner("bench.com", "s1", seedBench(2))
	a := dns.NewAuthority()
	a.Add(dns.Record{Name: s.RecordName(), Type: dns.TypeTXT, TXT: s.TXTRecord()})
	v := &DKIMVerifier{Resolver: dns.NewResolver(a, nil)}
	sig := s.Sign("msg-1")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := v.Verify(sig, "msg-1", t0); r != DKIMPass {
			b.Fatal(r)
		}
	}
}

func BenchmarkDMARCEvaluate(b *testing.B) {
	a := dns.NewAuthority()
	a.Add(dns.Record{Name: "_dmarc.bench.com", Type: dns.TypeTXT, TXT: "v=DMARC1; p=reject"})
	e := &DMARCEvaluator{Resolver: dns.NewResolver(a, nil)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Evaluate("bench.com", SPFPass, "bench.com", DKIMNone, "", t0)
	}
}

func seedBench(v byte) (s [32]byte) {
	for i := range s {
		s[i] = v
	}
	return
}
