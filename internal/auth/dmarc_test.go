package auth

import (
	"testing"
	"time"

	"repro/internal/dns"
)

func dmarcWorld(records map[string]string) *DMARCEvaluator {
	a := dns.NewAuthority()
	for name, v := range records {
		a.Add(dns.Record{Name: name, Type: dns.TypeTXT, TXT: v})
	}
	return &DMARCEvaluator{Resolver: dns.NewResolver(a, nil)}
}

func TestParseDMARC(t *testing.T) {
	rec, ok := ParseDMARC("v=DMARC1; p=reject; adkim=s; aspf=r; pct=50; rua=mailto:agg@a.com")
	if !ok {
		t.Fatal("parse failed")
	}
	if rec.Policy != DMARCReject || !rec.StrictDKIM || rec.StrictSPF || rec.Percent != 50 {
		t.Errorf("parsed %+v", rec)
	}
	if rec.RUA != "mailto:agg@a.com" {
		t.Errorf("rua %q", rec.RUA)
	}
}

func TestParseDMARCRejectsInvalid(t *testing.T) {
	for _, txt := range []string{
		"v=spf1 -all",
		"v=DMARC1",           // missing p=
		"v=DMARC1; p=banana", // bad policy
		"p=reject",           // missing version
	} {
		if _, ok := ParseDMARC(txt); ok {
			t.Errorf("ParseDMARC(%q) should fail", txt)
		}
	}
}

func TestParseDMARCDefaults(t *testing.T) {
	rec, ok := ParseDMARC("v=DMARC1; p=none")
	if !ok || rec.Policy != DMARCNone || rec.Percent != 100 || rec.StrictDKIM || rec.StrictSPF {
		t.Errorf("defaults wrong: %+v ok=%v", rec, ok)
	}
	// Bad pct falls back to 100.
	rec, _ = ParseDMARC("v=DMARC1; p=none; pct=abc")
	if rec.Percent != 100 {
		t.Errorf("bad pct should default: %d", rec.Percent)
	}
}

func TestDMARCAlignedBySPF(t *testing.T) {
	e := dmarcWorld(map[string]string{"_dmarc.a.com": "v=DMARC1; p=reject"})
	res := e.Evaluate("a.com", SPFPass, "a.com", DKIMNone, "", t0)
	if !res.Found || !res.Aligned {
		t.Errorf("SPF-aligned: %+v", res)
	}
}

func TestDMARCAlignedByDKIMOnly(t *testing.T) {
	e := dmarcWorld(map[string]string{"_dmarc.a.com": "v=DMARC1; p=quarantine"})
	res := e.Evaluate("a.com", SPFFail, "other.com", DKIMPass, "a.com", t0)
	if !res.Aligned {
		t.Errorf("DKIM-aligned despite SPF fail: %+v", res)
	}
}

func TestDMARCUnalignedPass(t *testing.T) {
	// SPF passes for a different, unrelated domain: no alignment.
	e := dmarcWorld(map[string]string{"_dmarc.a.com": "v=DMARC1; p=reject"})
	res := e.Evaluate("a.com", SPFPass, "esp-bulk.net", DKIMNone, "", t0)
	if !res.Found || res.Aligned || res.Policy != DMARCReject {
		t.Errorf("unaligned: %+v", res)
	}
}

func TestDMARCRelaxedVsStrictAlignment(t *testing.T) {
	// mail.a.com authenticates; From is a.com. Relaxed aligns, strict not.
	relaxed := dmarcWorld(map[string]string{"_dmarc.a.com": "v=DMARC1; p=reject"})
	strict := dmarcWorld(map[string]string{"_dmarc.a.com": "v=DMARC1; p=reject; aspf=s"})
	r1 := relaxed.Evaluate("a.com", SPFPass, "mail.a.com", DKIMNone, "", t0)
	r2 := strict.Evaluate("a.com", SPFPass, "mail.a.com", DKIMNone, "", t0)
	if !r1.Aligned {
		t.Errorf("relaxed alignment should pass: %+v", r1)
	}
	if r2.Aligned {
		t.Errorf("strict alignment should fail: %+v", r2)
	}
}

func TestDMARCOrgDomainFallback(t *testing.T) {
	// Record only at the organizational domain; From is a subdomain.
	e := dmarcWorld(map[string]string{"_dmarc.a.com": "v=DMARC1; p=reject"})
	res := e.Evaluate("news.a.com", SPFFail, "", DKIMNone, "", t0)
	if !res.Found || res.Policy != DMARCReject {
		t.Errorf("org-domain fallback: %+v", res)
	}
}

func TestDMARCNoRecord(t *testing.T) {
	e := dmarcWorld(map[string]string{})
	res := e.Evaluate("a.com", SPFPass, "a.com", DKIMNone, "", t0)
	if res.Found {
		t.Errorf("no record published: %+v", res)
	}
}

func TestDMARCWindowedMisconfiguration(t *testing.T) {
	// A domain publishes p=reject but its SPF/DKIM break for an episode:
	// during the episode mail is unaligned and subject to reject.
	a := dns.NewAuthority()
	a.Add(dns.Record{Name: "_dmarc.corp.com", Type: dns.TypeTXT, TXT: "v=DMARC1; p=reject"})
	e := &DMARCEvaluator{Resolver: dns.NewResolver(a, nil)}
	res := e.Evaluate("corp.com", SPFPermError, "corp.com", DKIMFail, "corp.com", t0)
	if !res.Found || res.Aligned || res.Policy != DMARCReject {
		t.Errorf("broken auth under reject policy: %+v", res)
	}
}

func TestDMARCPolicyString(t *testing.T) {
	if DMARCNone.String() != "none" || DMARCQuarantine.String() != "quarantine" ||
		DMARCReject.String() != "reject" || DMARCPolicy(9).String() != "?" {
		t.Error("DMARCPolicy.String mismatch")
	}
}

func TestOrgDomain(t *testing.T) {
	cases := map[string]string{
		"mail.a.com":          "a.com",
		"a.com":               "a.com",
		"x.y.tsinghua.edu.cn": "tsinghua.edu.cn",
		"com":                 "com",
	}
	for in, want := range cases {
		if got := orgDomain(in); got != want {
			t.Errorf("orgDomain(%q)=%q want %q", in, got, want)
		}
	}
}

var _ = time.Now // keep time import if unused in future edits
