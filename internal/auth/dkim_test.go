package auth

import (
	"testing"
	"testing/quick"

	"repro/internal/dns"
)

func seed(b byte) (s [32]byte) {
	for i := range s {
		s[i] = b
	}
	return
}

func dkimWorld(signer *Signer, record string) *DKIMVerifier {
	a := dns.NewAuthority()
	a.Add(dns.Record{Name: signer.RecordName(), Type: dns.TypeTXT, TXT: record})
	return &DKIMVerifier{Resolver: dns.NewResolver(a, nil)}
}

func TestDKIMSignVerify(t *testing.T) {
	s := NewSigner("a.com", "s1", seed(1))
	v := dkimWorld(s, s.TXTRecord())
	sig := s.Sign("msg-123")
	if got := v.Verify(sig, "msg-123", t0); got != DKIMPass {
		t.Errorf("verify own signature: %v", got)
	}
}

func TestDKIMTamperedMessageFails(t *testing.T) {
	s := NewSigner("a.com", "s1", seed(2))
	v := dkimWorld(s, s.TXTRecord())
	sig := s.Sign("msg-123")
	if got := v.Verify(sig, "msg-456", t0); got != DKIMFail {
		t.Errorf("verify over different message: %v want fail", got)
	}
}

func TestDKIMBrokenPublishedKeyFails(t *testing.T) {
	s := NewSigner("a.com", "s1", seed(3))
	v := dkimWorld(s, s.BrokenTXTRecord())
	sig := s.Sign("msg-1")
	if got := v.Verify(sig, "msg-1", t0); got != DKIMFail {
		t.Errorf("verify against corrupted key: %v want fail", got)
	}
}

func TestDKIMNoKeyPublished(t *testing.T) {
	s := NewSigner("a.com", "s1", seed(4))
	a := dns.NewAuthority()
	a.Add(dns.Record{Name: "a.com", Type: dns.TypeA, A: "1.1.1.1"}) // domain exists, no key
	v := &DKIMVerifier{Resolver: dns.NewResolver(a, nil)}
	sig := s.Sign("m")
	if got := v.Verify(sig, "m", t0); got != DKIMPermError {
		t.Errorf("no key record: %v want permerror", got)
	}
}

func TestDKIMKeyRemovedNXDomain(t *testing.T) {
	s := NewSigner("ghost.example", "s1", seed(5))
	a := dns.NewAuthority()
	v := &DKIMVerifier{Resolver: dns.NewResolver(a, nil)}
	if got := v.Verify(s.Sign("m"), "m", t0); got != DKIMPermError {
		t.Errorf("NXDOMAIN key: %v want permerror", got)
	}
}

func TestDKIMTempErrorOnOutage(t *testing.T) {
	s := NewSigner("a.com", "s1", seed(6))
	a := dns.NewAuthority()
	a.Add(dns.Record{Name: s.RecordName(), Type: dns.TypeTXT, TXT: s.TXTRecord()})
	a.AddOutage(dns.Outage{Name: s.RecordName(), Code: dns.ServFail})
	v := &DKIMVerifier{Resolver: dns.NewResolver(a, nil)}
	if got := v.Verify(s.Sign("m"), "m", t0); got != DKIMTempError {
		t.Errorf("outage: %v want temperror", got)
	}
}

func TestDKIMUnsignedMessage(t *testing.T) {
	v := &DKIMVerifier{Resolver: dns.NewResolver(dns.NewAuthority(), nil)}
	if got := v.Verify(Signature{}, "m", t0); got != DKIMNone {
		t.Errorf("empty signature: %v want none", got)
	}
}

func TestDKIMCrossDomainForgeryFails(t *testing.T) {
	// An attacker signing with their own key but claiming d=victim.com
	// must fail against victim.com's published key.
	victim := NewSigner("victim.com", "s1", seed(7))
	attacker := NewSigner("victim.com", "s1", seed(8)) // different key, same claims
	v := dkimWorld(victim, victim.TXTRecord())
	forged := attacker.Sign("m")
	if got := v.Verify(forged, "m", t0); got != DKIMFail {
		t.Errorf("forged signature: %v want fail", got)
	}
}

func TestDKIMDeterministicKeys(t *testing.T) {
	a := NewSigner("a.com", "s1", seed(9))
	b := NewSigner("a.com", "s1", seed(9))
	if a.TXTRecord() != b.TXTRecord() {
		t.Error("same seed must yield same key")
	}
	c := NewSigner("a.com", "s1", seed(10))
	if a.TXTRecord() == c.TXTRecord() {
		t.Error("different seeds must yield different keys")
	}
}

func TestDKIMSignaturePropertyRoundTrip(t *testing.T) {
	s := NewSigner("p.com", "sel", seed(11))
	v := dkimWorld(s, s.TXTRecord())
	f := func(msgID string) bool {
		sig := s.Sign(msgID)
		return v.Verify(sig, msgID, t0) == DKIMPass
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseDKIMKeyErrors(t *testing.T) {
	for _, txt := range []string{
		"not a dkim record",
		"v=DKIM1; k=ed25519",  // no p=
		"v=DKIM1; p=!!!",      // bad base64
		"v=DKIM1; p=aGVsbG8=", // wrong size
		"v=spf1 -all",         // different record type
	} {
		if _, err := parseDKIMKey(txt); err == nil {
			t.Errorf("parseDKIMKey(%q) should fail", txt)
		}
	}
}

func TestDKIMResultStrings(t *testing.T) {
	if DKIMPass.String() != "pass" || DKIMFail.String() != "fail" ||
		DKIMNone.String() != "none" || DKIMResult(99).String() != "?" {
		t.Error("DKIMResult.String mismatch")
	}
	if !DKIMPass.Pass() || DKIMFail.Pass() {
		t.Error("DKIMResult.Pass mismatch")
	}
}
