package auth

import (
	"crypto/ed25519"
	"encoding/base64"
	"fmt"
	"strings"
	"time"

	"repro/internal/dns"
)

// DKIMResult is the outcome of verifying a DKIM signature.
type DKIMResult int

// DKIM results.
const (
	DKIMNone DKIMResult = iota
	DKIMPass
	DKIMFail
	DKIMTempError
	DKIMPermError
)

// String returns the conventional result name.
func (r DKIMResult) String() string {
	switch r {
	case DKIMNone:
		return "none"
	case DKIMPass:
		return "pass"
	case DKIMFail:
		return "fail"
	case DKIMTempError:
		return "temperror"
	case DKIMPermError:
		return "permerror"
	}
	return "?"
}

// Pass reports whether the signature verified.
func (r DKIMResult) Pass() bool { return r == DKIMPass }

// Signature is a DKIM-style detached signature over a message digest.
// The simulation signs the message ID plus envelope fields (it never has
// bodies); the cryptography is real Ed25519 (RFC 8463 permits Ed25519
// DKIM keys), so broken published keys genuinely fail verification.
type Signature struct {
	Domain   string // d= tag
	Selector string // s= tag
	Sig      []byte // b= tag value
}

// Signer signs outgoing mail for one domain.
type Signer struct {
	Domain   string
	Selector string
	priv     ed25519.PrivateKey
	pub      ed25519.PublicKey
}

// NewSigner creates a signing identity for domain with the given
// selector, deriving the key pair from the supplied 32-byte seed so the
// world generator stays deterministic.
func NewSigner(domain, selector string, seed [32]byte) *Signer {
	priv := ed25519.NewKeyFromSeed(seed[:])
	return &Signer{
		Domain:   domain,
		Selector: selector,
		priv:     priv,
		pub:      priv.Public().(ed25519.PublicKey),
	}
}

// TXTRecord returns the DNS TXT value to publish at
// selector._domainkey.domain.
func (s *Signer) TXTRecord() string {
	return "v=DKIM1; k=ed25519; p=" + base64.StdEncoding.EncodeToString(s.pub)
}

// BrokenTXTRecord returns a record with a corrupted public key, used by
// misconfiguration episodes: it parses, but every verification fails.
func (s *Signer) BrokenTXTRecord() string {
	bad := make([]byte, len(s.pub))
	copy(bad, s.pub)
	bad[0] ^= 0xff
	bad[len(bad)-1] ^= 0xff
	return "v=DKIM1; k=ed25519; p=" + base64.StdEncoding.EncodeToString(bad)
}

// RecordName returns the DNS owner name the key lives at.
func (s *Signer) RecordName() string {
	return s.Selector + "._domainkey." + s.Domain
}

// Sign produces the signature over the canonical payload for msgID.
func (s *Signer) Sign(msgID string) Signature {
	return Signature{
		Domain:   s.Domain,
		Selector: s.Selector,
		Sig:      ed25519.Sign(s.priv, canonicalPayload(s.Domain, msgID)),
	}
}

func canonicalPayload(domain, msgID string) []byte {
	return []byte("dkim\x00" + domain + "\x00" + msgID)
}

// DKIMVerifier verifies signatures against keys published in the
// simulated DNS.
type DKIMVerifier struct {
	Resolver *dns.Resolver
}

// Verify checks sig over msgID at virtual time t.
func (v *DKIMVerifier) Verify(sig Signature, msgID string, t time.Time) DKIMResult {
	if sig.Domain == "" || len(sig.Sig) == 0 {
		return DKIMNone
	}
	name := sig.Selector + "._domainkey." + sig.Domain
	txts, code := v.Resolver.ResolveTXT(name, t)
	switch code {
	case dns.NoError:
	case dns.NXDomain:
		return DKIMPermError // no key published
	default:
		return DKIMTempError
	}
	for _, txt := range txts {
		pub, err := parseDKIMKey(txt)
		if err != nil {
			continue
		}
		if ed25519.Verify(pub, canonicalPayload(sig.Domain, msgID), sig.Sig) {
			return DKIMPass
		}
		return DKIMFail
	}
	return DKIMPermError
}

// parseDKIMKey extracts the Ed25519 public key from a DKIM TXT record.
func parseDKIMKey(txt string) (ed25519.PublicKey, error) {
	if !strings.Contains(txt, "v=DKIM1") {
		return nil, fmt.Errorf("auth: not a DKIM record")
	}
	for _, part := range strings.Split(txt, ";") {
		part = strings.TrimSpace(part)
		if rest, ok := strings.CutPrefix(part, "p="); ok {
			raw, err := base64.StdEncoding.DecodeString(rest)
			if err != nil {
				return nil, fmt.Errorf("auth: bad key encoding: %w", err)
			}
			if len(raw) != ed25519.PublicKeySize {
				return nil, fmt.Errorf("auth: bad key size %d", len(raw))
			}
			return ed25519.PublicKey(raw), nil
		}
	}
	return nil, fmt.Errorf("auth: no p= tag")
}
