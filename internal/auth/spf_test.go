package auth

import (
	"testing"
	"time"

	"repro/internal/dns"
)

var t0 = time.Date(2022, 7, 1, 0, 0, 0, 0, time.UTC)

func spfWorld(records map[string][]dns.Record) *SPFEvaluator {
	a := dns.NewAuthority()
	for _, recs := range records {
		for _, r := range recs {
			a.Add(r)
		}
	}
	return &SPFEvaluator{Resolver: dns.NewResolver(a, nil)}
}

func txt(name, v string) dns.Record { return dns.Record{Name: name, Type: dns.TypeTXT, TXT: v} }
func aRec(name, ip string) dns.Record {
	return dns.Record{Name: name, Type: dns.TypeA, A: ip}
}
func mxRec(name, host string, pref int) dns.Record {
	return dns.Record{Name: name, Type: dns.TypeMX, MX: dns.MX{Host: host, Pref: pref}}
}

func TestSPFIP4Mechanism(t *testing.T) {
	e := spfWorld(map[string][]dns.Record{
		"a.com": {txt("a.com", "v=spf1 ip4:5.6.7.8 ip4:9.0.0.0/8 -all")},
	})
	cases := []struct {
		ip   string
		want SPFResult
	}{
		{"5.6.7.8", SPFPass},
		{"9.1.2.3", SPFPass},
		{"5.6.7.9", SPFFail},
		{"10.0.0.1", SPFFail},
	}
	for _, c := range cases {
		if got := e.Evaluate(c.ip, "a.com", t0); got != c.want {
			t.Errorf("Evaluate(%s) = %v want %v", c.ip, got, c.want)
		}
	}
}

func TestSPFQualifiers(t *testing.T) {
	e := spfWorld(map[string][]dns.Record{
		"q.com": {txt("q.com", "v=spf1 ~ip4:1.1.1.1 ?ip4:2.2.2.2 +ip4:3.3.3.3 -all")},
	})
	cases := map[string]SPFResult{
		"1.1.1.1": SPFSoftFail,
		"2.2.2.2": SPFNeutral,
		"3.3.3.3": SPFPass,
		"4.4.4.4": SPFFail,
	}
	for ip, want := range cases {
		if got := e.Evaluate(ip, "q.com", t0); got != want {
			t.Errorf("Evaluate(%s) = %v want %v", ip, got, want)
		}
	}
}

func TestSPFAMechanism(t *testing.T) {
	e := spfWorld(map[string][]dns.Record{
		"a.com": {
			txt("a.com", "v=spf1 a a:alt.a.com -all"),
			aRec("a.com", "7.7.7.7"),
			aRec("alt.a.com", "8.8.8.8"),
		},
	})
	if got := e.Evaluate("7.7.7.7", "a.com", t0); got != SPFPass {
		t.Errorf("a mechanism self: %v", got)
	}
	if got := e.Evaluate("8.8.8.8", "a.com", t0); got != SPFPass {
		t.Errorf("a mechanism with arg: %v", got)
	}
	if got := e.Evaluate("9.9.9.9", "a.com", t0); got != SPFFail {
		t.Errorf("a mechanism nonmatch: %v", got)
	}
}

func TestSPFMXMechanism(t *testing.T) {
	e := spfWorld(map[string][]dns.Record{
		"m.com": {
			txt("m.com", "v=spf1 mx -all"),
			mxRec("m.com", "mx1.m.com", 10),
			aRec("mx1.m.com", "6.6.6.6"),
		},
	})
	if got := e.Evaluate("6.6.6.6", "m.com", t0); got != SPFPass {
		t.Errorf("mx mechanism: %v", got)
	}
	if got := e.Evaluate("6.6.6.7", "m.com", t0); got != SPFFail {
		t.Errorf("mx nonmatch: %v", got)
	}
}

func TestSPFInclude(t *testing.T) {
	e := spfWorld(map[string][]dns.Record{
		"corp.com": {txt("corp.com", "v=spf1 include:_spf.esp.com -all")},
		"_spf.esp.com": {
			txt("_spf.esp.com", "v=spf1 ip4:50.0.0.0/16 -all"),
			// authority requires apex registration; TXT above does that
		},
	})
	if got := e.Evaluate("50.0.1.2", "corp.com", t0); got != SPFPass {
		t.Errorf("include pass: %v", got)
	}
	// include's fail does NOT terminate: falls through to -all.
	if got := e.Evaluate("60.0.0.1", "corp.com", t0); got != SPFFail {
		t.Errorf("include fail-through: %v", got)
	}
}

func TestSPFIncludeMissingTargetIsPermError(t *testing.T) {
	e := spfWorld(map[string][]dns.Record{
		"corp.com": {txt("corp.com", "v=spf1 include:ghost.example -all")},
	})
	if got := e.Evaluate("1.2.3.4", "corp.com", t0); got != SPFPermError {
		t.Errorf("include of SPF-less domain: %v want permerror", got)
	}
}

func TestSPFRedirect(t *testing.T) {
	e := spfWorld(map[string][]dns.Record{
		"r.com":    {txt("r.com", "v=spf1 redirect=base.com")},
		"base.com": {txt("base.com", "v=spf1 ip4:77.0.0.1 -all")},
	})
	if got := e.Evaluate("77.0.0.1", "r.com", t0); got != SPFPass {
		t.Errorf("redirect pass: %v", got)
	}
	if got := e.Evaluate("78.0.0.1", "r.com", t0); got != SPFFail {
		t.Errorf("redirect fail: %v", got)
	}
}

func TestSPFNoRecord(t *testing.T) {
	e := spfWorld(map[string][]dns.Record{
		"x.com": {aRec("x.com", "1.1.1.1")}, // exists, but no SPF
	})
	if got := e.Evaluate("1.1.1.1", "x.com", t0); got != SPFNone {
		t.Errorf("no SPF record: %v want none", got)
	}
	if got := e.Evaluate("1.1.1.1", "ghost.com", t0); got != SPFNone {
		t.Errorf("NXDOMAIN: %v want none", got)
	}
}

func TestSPFMultipleRecordsPermError(t *testing.T) {
	e := spfWorld(map[string][]dns.Record{
		"d.com": {
			txt("d.com", "v=spf1 ip4:1.1.1.1 -all"),
			txt("d.com", "v=spf1 ip4:2.2.2.2 -all"),
		},
	})
	if got := e.Evaluate("1.1.1.1", "d.com", t0); got != SPFPermError {
		t.Errorf("multiple records: %v want permerror", got)
	}
}

func TestSPFBrokenRecordPermError(t *testing.T) {
	for _, rec := range []string{
		"v=spf1 bogusmech -all",
		"v=spf1 ip4:not-an-ip -all",
		"v=spf1 ip4:1.2.3.0/99 -all",
		"v=spf1 %{i}.lookup.com -all",
		"v=spf1 include: -all",
	} {
		e := spfWorld(map[string][]dns.Record{"b.com": {txt("b.com", rec)}})
		if got := e.Evaluate("1.2.3.4", "b.com", t0); got != SPFPermError {
			t.Errorf("record %q: %v want permerror", rec, got)
		}
	}
}

func TestSPFNeutralDefault(t *testing.T) {
	e := spfWorld(map[string][]dns.Record{
		"n.com": {txt("n.com", "v=spf1 ip4:1.1.1.1")},
	})
	if got := e.Evaluate("9.9.9.9", "n.com", t0); got != SPFNeutral {
		t.Errorf("record without all: %v want neutral", got)
	}
}

func TestSPFLookupBudget(t *testing.T) {
	// Chain of 12 includes exceeds the 10-lookup budget -> permerror.
	records := map[string][]dns.Record{}
	for i := 0; i < 12; i++ {
		name := domainN(i)
		next := domainN(i + 1)
		records[name] = []dns.Record{txt(name, "v=spf1 include:"+next+" -all")}
	}
	records[domainN(12)] = []dns.Record{txt(domainN(12), "v=spf1 +all")}
	e := spfWorld(records)
	if got := e.Evaluate("1.2.3.4", domainN(0), t0); got != SPFPermError {
		t.Errorf("lookup budget: %v want permerror", got)
	}
}

func domainN(i int) string { return "d" + string(rune('a'+i)) + ".com" }

func TestSPFTempErrorOnServfail(t *testing.T) {
	a := dns.NewAuthority()
	a.Add(txt("s.com", "v=spf1 a -all"))
	a.Add(aRec("s.com", "1.1.1.1"))
	a.AddOutage(dns.Outage{Name: "s.com", Types: []dns.RType{dns.TypeA}, Code: dns.ServFail})
	e := &SPFEvaluator{Resolver: dns.NewResolver(a, nil)}
	if got := e.Evaluate("1.1.1.1", "s.com", t0); got != SPFTempError {
		t.Errorf("servfail during a: %v want temperror", got)
	}
}

func TestSPFInvalidClientIP(t *testing.T) {
	e := spfWorld(map[string][]dns.Record{"a.com": {txt("a.com", "v=spf1 +all")}})
	if got := e.Evaluate("zzz", "a.com", t0); got != SPFPermError {
		t.Errorf("bad client ip: %v", got)
	}
}

func TestSPFResultStringsAndPass(t *testing.T) {
	if SPFPass.String() != "pass" || SPFSoftFail.String() != "softfail" ||
		SPFTempError.String() != "temperror" || SPFResult(99).String() != "?" {
		t.Error("SPFResult.String mismatch")
	}
	if !SPFPass.Pass() || SPFNeutral.Pass() {
		t.Error("SPFResult.Pass mismatch")
	}
}
