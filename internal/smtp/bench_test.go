package smtp

import (
	"testing"
	"time"

	"repro/internal/mail"
)

func BenchmarkSendMailRoundTrip(b *testing.B) {
	s := NewServer(Backend{Hostname: "bench.mx"})
	if err := s.ListenAndServe("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	addr := s.Addr().String()
	payload := []byte("Subject: bench\n\nhello world\n")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := SendMail(addr, "a@a.com", "b@b.com", payload, SendOptions{Timeout: 5 * time.Second})
		if err != nil || !rep.Success() {
			b.Fatalf("%v %v", err, rep)
		}
	}
}

func BenchmarkPersistentSession(b *testing.B) {
	s := NewServer(Backend{Hostname: "bench.mx"})
	if err := s.ListenAndServe("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr().String(), 5*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Quit()
	if _, err := c.Hello("bench.client"); err != nil {
		b.Fatal(err)
	}
	payload := []byte("hello")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Mail("a@a.com"); err != nil {
			b.Fatal(err)
		}
		if _, err := c.Rcpt("b@b.com"); err != nil {
			b.Fatal(err)
		}
		if rep, err := c.Data(payload); err != nil || !rep.Success() {
			b.Fatalf("%v %v", err, rep)
		}
	}
}

func BenchmarkReplyWire(b *testing.B) {
	r := NewReply(550, mail.EnhBadMailbox, "user unknown in the directory")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.wire()
	}
}

func BenchmarkFromNDRLine(b *testing.B) {
	line := "550-5.1.1 bob@b.com Email address could not be found, or was misspelled (v12)"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = FromNDRLine(line)
	}
}
