package smtp

import (
	"bufio"
	"bytes"
	"errors"
	"io"
)

// errTooLarge reports a DATA payload exceeding the advertised SIZE.
var errTooLarge = errors.New("smtp: message exceeds maximum size")

// lineReader reads CRLF-terminated command lines and dot-terminated
// DATA payloads with dot-unstuffing (RFC 5321 §4.5.2).
type lineReader struct {
	br *bufio.Reader
}

func newLineReader(r io.Reader) *lineReader {
	return &lineReader{br: bufio.NewReader(r)}
}

// ReadLine reads one command line without its line ending. Lines longer
// than 4096 bytes are an error (RFC 5321 limits command lines to 512).
func (l *lineReader) ReadLine() (string, error) {
	line, err := l.br.ReadString('\n')
	if err != nil {
		return "", err
	}
	if len(line) > 4096 {
		return "", errors.New("smtp: command line too long")
	}
	for len(line) > 0 && (line[len(line)-1] == '\n' || line[len(line)-1] == '\r') {
		line = line[:len(line)-1]
	}
	return line, nil
}

// ReadDotBytes reads a DATA payload up to the terminating
// "<CRLF>.<CRLF>", unstuffing leading dots. maxSize of 0 means
// unlimited; exceeding it returns errTooLarge after draining to the
// terminator so the session can continue.
func (l *lineReader) ReadDotBytes(maxSize int) ([]byte, error) {
	var buf bytes.Buffer
	tooLarge := false
	for {
		line, err := l.br.ReadString('\n')
		if err != nil {
			return nil, err
		}
		trimmed := line
		for len(trimmed) > 0 && (trimmed[len(trimmed)-1] == '\n' || trimmed[len(trimmed)-1] == '\r') {
			trimmed = trimmed[:len(trimmed)-1]
		}
		if trimmed == "." {
			if tooLarge {
				return nil, errTooLarge
			}
			return buf.Bytes(), nil
		}
		if len(trimmed) > 0 && trimmed[0] == '.' {
			trimmed = trimmed[1:] // dot-unstuff
		}
		if maxSize > 0 && buf.Len()+len(trimmed)+1 > maxSize {
			tooLarge = true
			continue // keep draining to the terminator
		}
		if !tooLarge {
			buf.WriteString(trimmed)
			buf.WriteByte('\n')
		}
	}
}
