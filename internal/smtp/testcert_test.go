package smtp

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"math/big"
	"testing"
	"time"
)

// newTestTLS builds a self-signed server certificate and the matching
// client config for loopback STARTTLS tests.
func newTestTLS(t *testing.T) (server *tls.Config, client *tls.Config) {
	t.Helper()
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	tmpl := x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: "mx.simulated.example"},
		DNSNames:              []string{"mx.simulated.example"},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(24 * time.Hour),
		KeyUsage:              x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		BasicConstraintsValid: true,
		IsCA:                  true,
	}
	der, err := x509.CreateCertificate(rand.Reader, &tmpl, &tmpl, &key.PublicKey, key)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		t.Fatal(err)
	}
	pool := x509.NewCertPool()
	pool.AddCert(cert)
	server = &tls.Config{
		Certificates: []tls.Certificate{{Certificate: [][]byte{der}, PrivateKey: key}},
	}
	client = &tls.Config{RootCAs: pool, ServerName: "mx.simulated.example"}
	return server, client
}
