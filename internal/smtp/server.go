package smtp

import (
	"crypto/tls"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"

	"repro/internal/mail"
)

// Session describes one SMTP connection for policy callbacks.
type Session struct {
	RemoteAddr string
	Hostname   string // EHLO/HELO argument
	TLS        bool   // STARTTLS completed
	From       string
	Rcpts      []string
}

// Backend supplies the receiver MTA's policy. Nil callbacks accept.
// Returning a non-nil Reply from a callback rejects that phase with the
// given reply — this is where blocklists, greylisting, quotas and auth
// checks plug in.
type Backend struct {
	Hostname   string
	TLSConfig  *tls.Config // enables the STARTTLS extension when non-nil
	RequireTLS bool        // reject MAIL until STARTTLS completes
	MaxSize    int         // advertised SIZE limit; 0 = unlimited

	OnConnect func(s *Session) *Reply
	OnMail    func(s *Session, from string) *Reply
	OnRcpt    func(s *Session, from, to string) *Reply
	OnData    func(s *Session, data []byte) *Reply

	// ReadTimeout bounds each command read; 0 = 30s.
	ReadTimeout time.Duration
}

// Server is an SMTP listener bound to a Backend.
type Server struct {
	backend Backend

	mu       sync.Mutex
	listener net.Listener
	closed   bool
	wg       sync.WaitGroup
}

// NewServer creates a server for the backend.
func NewServer(b Backend) *Server {
	if b.Hostname == "" {
		b.Hostname = "mx.simulated.example"
	}
	if b.ReadTimeout == 0 {
		b.ReadTimeout = 30 * time.Second
	}
	return &Server{backend: b}
}

// ListenAndServe binds addr ("127.0.0.1:0" for an ephemeral port) and
// serves until Close. It returns once the listener is bound; serving
// continues in background goroutines.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("smtp: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	s.listener = l
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(l)
	return nil
}

// Addr returns the bound listener address.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener == nil {
		return nil
	}
	return s.listener.Addr()
}

// Close stops the listener and waits for in-flight sessions.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	l := s.listener
	s.mu.Unlock()
	if l != nil {
		l.Close()
	}
	s.wg.Wait()
}

func (s *Server) acceptLoop(l net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

type connState struct {
	conn net.Conn
	r    *lineReader
	sess Session
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	st := &connState{
		conn: conn,
		r:    newLineReader(conn),
		sess: Session{RemoteAddr: remoteIP(conn)},
	}
	if cb := s.backend.OnConnect; cb != nil {
		if rep := cb(&st.sess); rep != nil {
			s.write(st, rep)
			return
		}
	}
	s.write(st, NewReply(mail.CodeReady, mail.EnhancedCode{}, s.backend.Hostname+" ESMTP ready"))
	for {
		conn.SetReadDeadline(time.Now().Add(s.backend.ReadTimeout))
		line, err := st.r.ReadLine()
		if err != nil {
			return
		}
		verb, arg := splitVerb(line)
		switch verb {
		case "EHLO", "HELO":
			st.sess.Hostname = arg
			s.writeEhlo(st, verb == "EHLO")
		case "STARTTLS":
			if s.backend.TLSConfig == nil {
				s.write(st, NewReply(mail.CodeNotImplemented, mail.EnhancedCode{}, "STARTTLS not offered"))
				continue
			}
			if st.sess.TLS {
				s.write(st, NewReply(mail.CodeBadSequence, mail.EnhancedCode{}, "TLS already active"))
				continue
			}
			s.write(st, NewReply(mail.CodeReady, mail.EnhancedCode{}, "Ready to start TLS"))
			tconn := tls.Server(st.conn, s.backend.TLSConfig)
			if err := tconn.Handshake(); err != nil {
				return
			}
			st.conn = tconn
			st.r = newLineReader(tconn)
			st.sess = Session{RemoteAddr: st.sess.RemoteAddr, TLS: true} // RFC 3207: reset state
		case "MAIL":
			s.handleMail(st, arg)
		case "RCPT":
			s.handleRcpt(st, arg)
		case "DATA":
			if !s.handleData(st) {
				return
			}
		case "RSET":
			st.sess.From, st.sess.Rcpts = "", nil
			s.write(st, NewReply(mail.CodeOK, mail.EnhOK, "Flushed"))
		case "NOOP":
			s.write(st, NewReply(mail.CodeOK, mail.EnhOK, "OK"))
		case "VRFY", "EXPN":
			// RFC 2505 anti-spam guidance: do not disclose user existence.
			s.write(st, NewReply(252, mail.EnhancedCode{}, "Cannot VRFY user, but will accept message and attempt delivery"))
		case "QUIT":
			s.write(st, NewReply(mail.CodeClosing, mail.EnhOK, s.backend.Hostname+" closing connection"))
			return
		default:
			s.write(st, NewReply(mail.CodeSyntaxError, mail.EnhancedCode{}, "Command unrecognized"))
		}
	}
}

func (s *Server) writeEhlo(st *connState, esmtp bool) {
	if !esmtp {
		s.write(st, NewReply(mail.CodeOK, mail.EnhancedCode{}, s.backend.Hostname))
		return
	}
	lines := []string{s.backend.Hostname + " greets " + st.sess.Hostname, "PIPELINING", "8BITMIME"}
	if s.backend.MaxSize > 0 {
		lines = append(lines, fmt.Sprintf("SIZE %d", s.backend.MaxSize))
	}
	if s.backend.TLSConfig != nil && !st.sess.TLS {
		lines = append(lines, "STARTTLS")
	}
	s.write(st, &Reply{Code: mail.CodeOK, Lines: lines})
}

func (s *Server) handleMail(st *connState, arg string) {
	if s.backend.RequireTLS && !st.sess.TLS {
		s.write(st, NewReply(530, mail.EnhTLSRequired, "Must issue a STARTTLS command first"))
		return
	}
	from, ok := parsePath(arg, "FROM")
	if !ok {
		s.write(st, NewReply(mail.CodeParamError, mail.EnhancedCode{}, "Syntax: MAIL FROM:<address>"))
		return
	}
	if cb := s.backend.OnMail; cb != nil {
		if rep := cb(&st.sess, from); rep != nil {
			s.write(st, rep)
			return
		}
	}
	st.sess.From = from
	st.sess.Rcpts = nil
	s.write(st, NewReply(mail.CodeOK, mail.EnhOK, "Sender OK"))
}

func (s *Server) handleRcpt(st *connState, arg string) {
	if st.sess.From == "" {
		s.write(st, NewReply(mail.CodeBadSequence, mail.EnhancedCode{}, "Need MAIL before RCPT"))
		return
	}
	to, ok := parsePath(arg, "TO")
	if !ok {
		s.write(st, NewReply(mail.CodeParamError, mail.EnhancedCode{}, "Syntax: RCPT TO:<address>"))
		return
	}
	if cb := s.backend.OnRcpt; cb != nil {
		if rep := cb(&st.sess, st.sess.From, to); rep != nil {
			s.write(st, rep)
			return
		}
	}
	st.sess.Rcpts = append(st.sess.Rcpts, to)
	s.write(st, NewReply(mail.CodeOK, mail.EnhOK, "Recipient OK"))
}

// handleData runs the DATA phase; it returns false when the connection
// should be dropped.
func (s *Server) handleData(st *connState) bool {
	if len(st.sess.Rcpts) == 0 {
		s.write(st, NewReply(mail.CodeBadSequence, mail.EnhancedCode{}, "Need RCPT before DATA"))
		return true
	}
	s.write(st, NewReply(mail.CodeStartData, mail.EnhancedCode{}, "Start mail input; end with <CRLF>.<CRLF>"))
	data, err := st.r.ReadDotBytes(s.backend.MaxSize)
	if err != nil {
		if errors.Is(err, errTooLarge) {
			s.write(st, NewReply(mail.CodeExceededQuota, mail.EnhMsgTooBig, "Message size exceeds fixed maximum message size"))
			return true
		}
		return false
	}
	rep := NewReply(mail.CodeOK, mail.EnhOK, "Message accepted for delivery")
	if cb := s.backend.OnData; cb != nil {
		if r := cb(&st.sess, data); r != nil {
			rep = r
		}
	}
	s.write(st, rep)
	st.sess.From, st.sess.Rcpts = "", nil
	return true
}

func (s *Server) write(st *connState, r *Reply) {
	st.conn.SetWriteDeadline(time.Now().Add(s.backend.ReadTimeout))
	io.WriteString(st.conn, r.wire())
}

func splitVerb(line string) (verb, arg string) {
	line = strings.TrimRight(line, "\r\n")
	if i := strings.IndexByte(line, ' '); i >= 0 {
		return strings.ToUpper(line[:i]), strings.TrimSpace(line[i+1:])
	}
	return strings.ToUpper(line), ""
}

// parsePath extracts the address from "FROM:<a@b>" / "TO:<a@b>" syntax,
// tolerating missing angle brackets and extensions after the path.
func parsePath(arg, keyword string) (string, bool) {
	rest, ok := cutPrefixFold(arg, keyword+":")
	if !ok {
		return "", false
	}
	rest = strings.TrimSpace(rest)
	if strings.HasPrefix(rest, "<") {
		end := strings.IndexByte(rest, '>')
		if end < 0 {
			return "", false
		}
		return rest[1:end], true
	}
	if i := strings.IndexByte(rest, ' '); i >= 0 {
		rest = rest[:i]
	}
	if rest == "" {
		return "", false
	}
	return rest, true
}

func cutPrefixFold(s, prefix string) (string, bool) {
	if len(s) < len(prefix) || !strings.EqualFold(s[:len(prefix)], prefix) {
		return s, false
	}
	return s[len(prefix):], true
}

func remoteIP(conn net.Conn) string {
	addr := conn.RemoteAddr().String()
	if host, _, err := net.SplitHostPort(addr); err == nil {
		return host
	}
	return addr
}
