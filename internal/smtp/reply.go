// Package smtp implements a minimal but real RFC 5321 SMTP server and
// client over net.Conn, with STARTTLS (RFC 3207). The live examples and
// integration tests deliver mail through actual sockets using the same
// receiver policy decisions as the bulk in-process simulator, so the
// wire protocol path is a true subset check of the delivery engine.
package smtp

import (
	"fmt"
	"strings"

	"repro/internal/mail"
)

// Reply is one SMTP reply, possibly multi-line.
type Reply struct {
	Code  mail.ReplyCode
	Enh   mail.EnhancedCode // optional
	Lines []string          // at least one line of text
}

// NewReply builds a single-line reply.
func NewReply(code mail.ReplyCode, enh mail.EnhancedCode, text string) *Reply {
	return &Reply{Code: code, Enh: enh, Lines: []string{text}}
}

// Success reports whether the reply is 2xx.
func (r *Reply) Success() bool { return r.Code.Success() }

// Temporary reports whether the reply is 4xx.
func (r *Reply) Temporary() bool { return r.Code.Temporary() }

// String renders the reply's first line the way it travels on the wire
// (without CRLF), which is also how delivery_result strings are stored.
func (r *Reply) String() string {
	text := ""
	if len(r.Lines) > 0 {
		text = r.Lines[0]
	}
	if r.Enh.IsZero() {
		return fmt.Sprintf("%d %s", r.Code, text)
	}
	return fmt.Sprintf("%d %s %s", r.Code, r.Enh, text)
}

// wire renders all lines with continuation markers and CRLFs.
func (r *Reply) wire() string {
	lines := r.Lines
	if len(lines) == 0 {
		lines = []string{""}
	}
	var b strings.Builder
	for i, l := range lines {
		sep := " "
		if i < len(lines)-1 {
			sep = "-"
		}
		if i == 0 && !r.Enh.IsZero() {
			fmt.Fprintf(&b, "%d%s%s %s\r\n", r.Code, sep, r.Enh, l)
		} else {
			fmt.Fprintf(&b, "%d%s%s\r\n", r.Code, sep, l)
		}
	}
	return b.String()
}

// FromNDRLine converts a rendered NDR catalog line (e.g.
// "550-5.1.1 user not found") into a Reply so policy engines can speak
// catalog templates over the wire.
func FromNDRLine(line string) *Reply {
	var code mail.ReplyCode
	var enh mail.EnhancedCode
	text := line
	if len(line) >= 3 {
		var n int
		if _, err := fmt.Sscanf(line[:3], "%d", &n); err == nil && n >= 200 && n < 600 {
			code = mail.ReplyCode(n)
			text = strings.TrimLeft(line[3:], "- ")
			if i := strings.IndexByte(text, ' '); i > 0 {
				if e, ok := mail.ParseEnhancedCode(text[:i]); ok {
					enh = e
					text = text[i+1:]
				}
			}
		}
	}
	if code == 0 {
		code = mail.CodeTransactFailed
	}
	return NewReply(code, enh, text)
}
