package smtp

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/mail"
)

// startServer launches a server on an ephemeral loopback port and
// returns its address.
func startServer(t *testing.T, b Backend) string {
	t.Helper()
	s := NewServer(b)
	if err := s.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s.Addr().String()
}

func TestBasicDelivery(t *testing.T) {
	var mu sync.Mutex
	var gotFrom, gotTo, gotData string
	addr := startServer(t, Backend{
		Hostname: "mx1.b.com",
		OnData: func(s *Session, data []byte) *Reply {
			mu.Lock()
			defer mu.Unlock()
			gotFrom, gotTo, gotData = s.From, s.Rcpts[0], string(data)
			return nil
		},
	})
	rep, err := SendMail(addr, "alice@a.com", "bob@b.com", []byte("Subject: hi\n\nhello\n.leading dot\n"), SendOptions{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Success() {
		t.Fatalf("delivery failed: %s", rep)
	}
	mu.Lock()
	defer mu.Unlock()
	if gotFrom != "alice@a.com" || gotTo != "bob@b.com" {
		t.Errorf("envelope = %q -> %q", gotFrom, gotTo)
	}
	if !strings.Contains(gotData, ".leading dot") {
		t.Errorf("dot-unstuffing failed: %q", gotData)
	}
}

func TestEhloExtensions(t *testing.T) {
	serverTLS, _ := newTestTLS(t)
	addr := startServer(t, Backend{MaxSize: 1 << 20, TLSConfig: serverTLS})
	c, err := Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Quit()
	if _, err := c.Hello("client.example"); err != nil {
		t.Fatal(err)
	}
	for _, ext := range []string{"STARTTLS", "SIZE", "PIPELINING"} {
		if ok, _ := c.Extension(ext); !ok {
			t.Errorf("extension %s not advertised (have %v)", ext, c.ExtensionNames())
		}
	}
	if c.MaxSize() != 1<<20 {
		t.Errorf("MaxSize = %d", c.MaxSize())
	}
}

func TestStartTLSUpgrade(t *testing.T) {
	serverTLS, clientTLS := newTestTLS(t)
	addr := startServer(t, Backend{TLSConfig: serverTLS})
	c, err := Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Quit()
	if _, err := c.Hello("client.example"); err != nil {
		t.Fatal(err)
	}
	rep, err := c.StartTLS(clientTLS, "client.example")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Success() || !c.TLSActive() {
		t.Fatalf("TLS upgrade failed: %s", rep)
	}
	// STARTTLS must disappear from the post-upgrade EHLO.
	if ok, _ := c.Extension("STARTTLS"); ok {
		t.Error("STARTTLS still advertised after upgrade")
	}
	// And mail must flow over TLS.
	if rep, _ := c.Mail("a@a.com"); !rep.Success() {
		t.Errorf("MAIL over TLS: %s", rep)
	}
}

func TestRequireTLSMandate(t *testing.T) {
	// An 11K-domain behaviour from the paper: the receiver mandates TLS,
	// so plaintext MAIL is rejected and the client must upgrade.
	serverTLS, clientTLS := newTestTLS(t)
	addr := startServer(t, Backend{TLSConfig: serverTLS, RequireTLS: true})

	c, err := Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	c.Hello("client.example")
	rep, err := c.Mail("a@a.com")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Code != 530 {
		t.Fatalf("plaintext MAIL: %s, want 530", rep)
	}
	c.Quit()

	// SendMail's Coremail-style fallback: plaintext first, upgrade on 530.
	rep, err = SendMail(addr, "a@a.com", "b@b.com", []byte("hi"), SendOptions{
		TLSConfig: clientTLS, Timeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Success() {
		t.Fatalf("TLS fallback delivery failed: %s", rep)
	}
}

func TestRequireTLSWithoutClientTLSBounces(t *testing.T) {
	// A sender MTA without STARTTLS support soft-bounces at TLS-mandating
	// domains (T4, 572K emails in the paper).
	serverTLS, _ := newTestTLS(t)
	addr := startServer(t, Backend{TLSConfig: serverTLS, RequireTLS: true})
	rep, err := SendMail(addr, "a@a.com", "b@b.com", []byte("hi"), SendOptions{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Code != 530 {
		t.Errorf("want 530 TLS-required bounce, got %s", rep)
	}
}

func TestPolicyRejections(t *testing.T) {
	addr := startServer(t, Backend{
		OnConnect: func(s *Session) *Reply {
			if s.RemoteAddr == "192.0.2.1" { // never matches loopback
				return NewReply(554, mail.EnhancedCode{}, "blocked")
			}
			return nil
		},
		OnMail: func(s *Session, from string) *Reply {
			if strings.HasSuffix(from, "@spammer.example") {
				return FromNDRLine("554 Service unavailable; Client host [1.2.3.4] blocked using Spamhaus")
			}
			return nil
		},
		OnRcpt: func(s *Session, from, to string) *Reply {
			if strings.HasPrefix(to, "ghost@") {
				return NewReply(550, mail.EnhBadMailbox, "user does not exist")
			}
			if strings.HasPrefix(to, "full@") {
				return NewReply(452, mail.EnhMailboxFull, "The email account that you tried to reach is over quota")
			}
			return nil
		},
		OnData: func(s *Session, data []byte) *Reply {
			if strings.Contains(string(data), "crypto-double") {
				return NewReply(550, mail.EnhSecurityPolicy, "Message contains spam or virus.")
			}
			return nil
		},
	})

	cases := []struct {
		from, to, body string
		wantCode       mail.ReplyCode
	}{
		{"ok@a.com", "bob@b.com", "hello", 250},
		{"x@spammer.example", "bob@b.com", "hello", 554},
		{"ok@a.com", "ghost@b.com", "hello", 550},
		{"ok@a.com", "full@b.com", "hello", 452},
		{"ok@a.com", "bob@b.com", "buy crypto-double now", 550},
	}
	for _, c := range cases {
		rep, err := SendMail(addr, c.from, c.to, []byte(c.body), SendOptions{Timeout: 5 * time.Second})
		if err != nil {
			t.Fatalf("%s->%s: %v", c.from, c.to, err)
		}
		if rep.Code != c.wantCode {
			t.Errorf("%s->%s: code %d want %d (%s)", c.from, c.to, rep.Code, c.wantCode, rep)
		}
	}
}

func TestBadSequence(t *testing.T) {
	addr := startServer(t, Backend{})
	c, err := Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Quit()
	c.Hello("x")
	if rep, _ := c.Rcpt("b@b.com"); rep.Code != mail.CodeBadSequence {
		t.Errorf("RCPT before MAIL: %s", rep)
	}
	if rep, _ := c.Data(nil); rep.Code != mail.CodeBadSequence {
		t.Errorf("DATA before RCPT: %s", rep)
	}
}

func TestMaxSizeRejection(t *testing.T) {
	addr := startServer(t, Backend{MaxSize: 100})
	big := strings.Repeat("x", 500)
	rep, err := SendMail(addr, "a@a.com", "b@b.com", []byte(big), SendOptions{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Code != mail.CodeExceededQuota {
		t.Errorf("oversized message: %s want 552", rep)
	}
}

func TestVRFYDisabled(t *testing.T) {
	// RFC 2505: VRFY must not disclose user existence (the paper notes
	// attackers fall back to NDR probing because of this).
	addr := startServer(t, Backend{})
	c, err := Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Quit()
	c.Hello("x")
	rep, err := c.cmd("VRFY bob")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Code != 252 {
		t.Errorf("VRFY: %s want 252", rep)
	}
}

func TestRsetClearsState(t *testing.T) {
	addr := startServer(t, Backend{})
	c, err := Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Quit()
	c.Hello("x")
	c.Mail("a@a.com")
	c.Rcpt("b@b.com")
	if rep, _ := c.cmd("RSET"); !rep.Success() {
		t.Fatalf("RSET: %s", rep)
	}
	if rep, _ := c.Data(nil); rep.Code != mail.CodeBadSequence {
		t.Errorf("DATA after RSET: %s", rep)
	}
}

func TestUnknownCommand(t *testing.T) {
	addr := startServer(t, Backend{})
	c, err := Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Quit()
	rep, err := c.cmd("BOGUS")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Code != mail.CodeSyntaxError {
		t.Errorf("BOGUS: %s", rep)
	}
}

func TestParsePath(t *testing.T) {
	cases := []struct {
		arg, keyword, want string
		ok                 bool
	}{
		{"FROM:<a@b.com>", "FROM", "a@b.com", true},
		{"from:<a@b.com> SIZE=100", "FROM", "a@b.com", true},
		{"TO:<b@c.com>", "TO", "b@c.com", true},
		{"TO:b@c.com", "TO", "b@c.com", true},
		{"TO:<>", "TO", "", true}, // null return path
		{"FROM:<unclosed", "FROM", "", false},
		{"TO:", "TO", "", false},
		{"WRONG:<a@b.com>", "FROM", "", false},
	}
	for _, c := range cases {
		got, ok := parsePath(c.arg, c.keyword)
		if ok != c.ok || got != c.want {
			t.Errorf("parsePath(%q,%q)=(%q,%v) want (%q,%v)", c.arg, c.keyword, got, ok, c.want, c.ok)
		}
	}
}

func TestFromNDRLine(t *testing.T) {
	rep := FromNDRLine("550-5.1.1 bob@b.com Email address could not be found")
	if rep.Code != 550 || rep.Enh != mail.EnhBadMailbox {
		t.Errorf("FromNDRLine: %+v", rep)
	}
	rep = FromNDRLine("554 Service unavailable")
	if rep.Code != 554 || !rep.Enh.IsZero() {
		t.Errorf("FromNDRLine no-enh: %+v", rep)
	}
	rep = FromNDRLine("garbage")
	if rep.Code != mail.CodeTransactFailed {
		t.Errorf("FromNDRLine fallback: %+v", rep)
	}
}

func TestReplyStringAndWire(t *testing.T) {
	r := NewReply(550, mail.EnhBadMailbox, "no such user")
	if got := r.String(); got != "550 5.1.1 no such user" {
		t.Errorf("String = %q", got)
	}
	multi := &Reply{Code: 250, Lines: []string{"mx greets you", "PIPELINING", "SIZE 100"}}
	wire := multi.wire()
	if !strings.Contains(wire, "250-mx greets you\r\n") || !strings.HasSuffix(wire, "250 SIZE 100\r\n") {
		t.Errorf("wire = %q", wire)
	}
}

func TestHeloCompatibility(t *testing.T) {
	addr := startServer(t, Backend{})
	c, err := Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Quit()
	rep, err := c.cmd("HELO old.client")
	if err != nil || !rep.Success() {
		t.Fatalf("HELO: %v %s", err, rep)
	}
}

func TestConcurrentSessions(t *testing.T) {
	addr := startServer(t, Backend{})
	var wg sync.WaitGroup
	errs := make(chan error, 20)
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rep, err := SendMail(addr, "a@a.com", "b@b.com", []byte("hello"), SendOptions{Timeout: 5 * time.Second})
			if err != nil {
				errs <- err
				return
			}
			if !rep.Success() {
				errs <- fmt.Errorf("delivery to %s failed: %s", addr, rep)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestDataDotStuffingRoundTripProperty(t *testing.T) {
	// Property: any payload the client sends over DATA arrives intact
	// (modulo CRLF normalization to \n), including dot-prefixed lines.
	var mu sync.Mutex
	var got string
	addr := startServer(t, Backend{
		OnData: func(s *Session, data []byte) *Reply {
			mu.Lock()
			got = string(data)
			mu.Unlock()
			return nil
		},
	})
	f := func(lines []string) bool {
		var payload strings.Builder
		for _, l := range lines {
			clean := strings.Map(func(r rune) rune {
				if r == '\r' || r == '\n' || r > 126 || r < 32 {
					return 'x'
				}
				return r
			}, l)
			if len(clean) > 60 {
				clean = clean[:60]
			}
			payload.WriteString(clean)
			payload.WriteString("\n")
		}
		payload.WriteString(".leading dot line\n..double\n")
		rep, err := SendMail(addr, "a@a.com", "b@b.com", []byte(payload.String()), SendOptions{Timeout: 5 * time.Second})
		if err != nil || !rep.Success() {
			return false
		}
		mu.Lock()
		defer mu.Unlock()
		return got == payload.String()
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
