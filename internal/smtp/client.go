package smtp

import (
	"crypto/tls"
	"fmt"
	"io"
	"net"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/mail"
)

// Client is an SMTP client connection.
type Client struct {
	conn    net.Conn
	r       *lineReader
	timeout time.Duration
	ext     map[string]string // EHLO extensions, e.g. "STARTTLS" -> ""
	tls     bool
}

// Dial connects to an SMTP server and consumes the greeting.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("smtp: dial %s: %w", addr, err)
	}
	c := &Client{conn: conn, r: newLineReader(conn), timeout: timeout}
	rep, err := c.readReply()
	if err != nil {
		conn.Close()
		return nil, err
	}
	if !rep.Success() {
		conn.Close()
		return nil, fmt.Errorf("smtp: greeting: %s", rep)
	}
	return c, nil
}

// Hello sends EHLO and records the advertised extensions.
func (c *Client) Hello(hostname string) (*Reply, error) {
	rep, err := c.cmd("EHLO " + hostname)
	if err != nil {
		return nil, err
	}
	c.ext = map[string]string{}
	for i, line := range rep.Lines {
		if i == 0 {
			continue
		}
		name, arg, _ := strings.Cut(line, " ")
		c.ext[strings.ToUpper(name)] = arg
	}
	return rep, nil
}

// Extension reports whether the server advertised ext and its argument.
func (c *Client) Extension(ext string) (bool, string) {
	arg, ok := c.ext[strings.ToUpper(ext)]
	return ok, arg
}

// MaxSize returns the server's advertised SIZE limit (0 = none).
func (c *Client) MaxSize() int {
	if ok, arg := c.Extension("SIZE"); ok {
		if n, err := strconv.Atoi(arg); err == nil {
			return n
		}
	}
	return 0
}

// TLSActive reports whether STARTTLS has completed.
func (c *Client) TLSActive() bool { return c.tls }

// StartTLS upgrades the connection (RFC 3207) and re-issues EHLO.
func (c *Client) StartTLS(cfg *tls.Config, hostname string) (*Reply, error) {
	rep, err := c.cmd("STARTTLS")
	if err != nil {
		return nil, err
	}
	if !rep.Success() {
		return rep, nil
	}
	tconn := tls.Client(c.conn, cfg)
	if err := tconn.Handshake(); err != nil {
		return nil, fmt.Errorf("smtp: TLS handshake: %w", err)
	}
	c.conn = tconn
	c.r = newLineReader(tconn)
	c.tls = true
	return c.Hello(hostname)
}

// Mail sends MAIL FROM.
func (c *Client) Mail(from string) (*Reply, error) {
	return c.cmd("MAIL FROM:<" + from + ">")
}

// Rcpt sends RCPT TO.
func (c *Client) Rcpt(to string) (*Reply, error) {
	return c.cmd("RCPT TO:<" + to + ">")
}

// Data sends the DATA phase with dot-stuffing and returns the final
// acceptance reply.
func (c *Client) Data(payload []byte) (*Reply, error) {
	rep, err := c.cmd("DATA")
	if err != nil {
		return nil, err
	}
	if rep.Code != mail.CodeStartData {
		return rep, nil
	}
	var b strings.Builder
	lines := strings.Split(string(payload), "\n")
	// A trailing newline in the payload terminates the last line; it
	// must not become an extra blank line on the wire.
	if n := len(lines); n > 0 && lines[n-1] == "" {
		lines = lines[:n-1]
	}
	for _, line := range lines {
		line = strings.TrimRight(line, "\r")
		if strings.HasPrefix(line, ".") {
			b.WriteByte('.')
		}
		b.WriteString(line)
		b.WriteString("\r\n")
	}
	b.WriteString(".\r\n")
	c.conn.SetWriteDeadline(time.Now().Add(c.timeout))
	if _, err := io.WriteString(c.conn, b.String()); err != nil {
		return nil, err
	}
	return c.readReply()
}

// Quit sends QUIT and closes the connection.
func (c *Client) Quit() error {
	c.cmd("QUIT")
	return c.conn.Close()
}

// Close drops the connection without QUIT.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) cmd(line string) (*Reply, error) {
	c.conn.SetWriteDeadline(time.Now().Add(c.timeout))
	if _, err := io.WriteString(c.conn, line+"\r\n"); err != nil {
		return nil, err
	}
	return c.readReply()
}

func (c *Client) readReply() (*Reply, error) {
	rep := &Reply{}
	for {
		c.conn.SetReadDeadline(time.Now().Add(c.timeout))
		line, err := c.r.ReadLine()
		if err != nil {
			return nil, err
		}
		if len(line) < 3 {
			return nil, fmt.Errorf("smtp: short reply %q", line)
		}
		code, err := strconv.Atoi(line[:3])
		if err != nil {
			return nil, fmt.Errorf("smtp: bad reply %q", line)
		}
		rep.Code = mail.ReplyCode(code)
		cont := len(line) > 3 && line[3] == '-'
		text := ""
		if len(line) > 4 {
			text = line[4:]
		}
		if len(rep.Lines) == 0 {
			// Try to lift a leading enhanced code out of the text.
			if i := strings.IndexByte(text, ' '); i > 0 {
				if e, ok := mail.ParseEnhancedCode(text[:i]); ok {
					rep.Enh = e
					text = text[i+1:]
				}
			}
		}
		rep.Lines = append(rep.Lines, text)
		if !cont {
			return rep, nil
		}
	}
}

// SendOptions tunes SendMail.
type SendOptions struct {
	Helo      string
	TLSConfig *tls.Config // used when the server requires/offers TLS
	ForceTLS  bool        // always attempt STARTTLS when offered
	Timeout   time.Duration
}

// SendMail performs one complete delivery attempt against addr and
// returns the decisive reply (the first rejection, or the final DATA
// acceptance). It mimics Coremail's compatibility behaviour from
// Section 4.3.1: it starts in plaintext and upgrades to STARTTLS only
// when the server mandates it (530/550 5.7.x after MAIL) or when
// ForceTLS is set.
func SendMail(addr, from, to string, payload []byte, opts SendOptions) (*Reply, error) {
	if opts.Helo == "" {
		opts.Helo = "proxy.sender.example"
	}
	c, err := Dial(addr, opts.Timeout)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	if _, err := c.Hello(opts.Helo); err != nil {
		return nil, err
	}
	if opts.ForceTLS {
		if ok, _ := c.Extension("STARTTLS"); ok && opts.TLSConfig != nil {
			if _, err := c.StartTLS(opts.TLSConfig, opts.Helo); err != nil {
				return nil, err
			}
		}
	}
	rep, err := c.Mail(from)
	if err != nil {
		return nil, err
	}
	if !rep.Success() {
		// TLS-mandating servers reject MAIL with 530: upgrade and retry,
		// like Coremail's immediate STARTTLS redelivery.
		if rep.Code == 530 && opts.TLSConfig != nil && !c.TLSActive() {
			if ok, _ := c.Extension("STARTTLS"); ok {
				if _, err := c.StartTLS(opts.TLSConfig, opts.Helo); err != nil {
					return nil, err
				}
				if rep, err = c.Mail(from); err != nil {
					return nil, err
				}
				if !rep.Success() {
					return rep, nil
				}
				goto rcpt
			}
		}
		return rep, nil
	}
rcpt:
	rep, err = c.Rcpt(to)
	if err != nil {
		return nil, err
	}
	if !rep.Success() {
		return rep, nil
	}
	rep, err = c.Data(payload)
	if err != nil {
		return nil, err
	}
	c.Quit()
	return rep, nil
}

// ExtensionNames lists advertised extensions sorted, for tests.
func (c *Client) ExtensionNames() []string {
	names := make([]string, 0, len(c.ext))
	for n := range c.ext {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
