// Package dns implements the simulated DNS substrate: authoritative
// zones whose records can change over virtual time (misconfiguration
// episodes), and a caching resolver with transient-failure injection.
// Every MX/A/TXT lookup the delivery engine performs goes through this
// package, so T1/T2 bounces (sender/receiver DNS failures) and T3
// bounces (bad SPF/DKIM/DMARC records) arise from genuine lookups rather
// than labels.
package dns

import (
	"sort"
	"strings"
	"sync"
	"time"
)

// RType is a DNS record type.
type RType uint8

// Record types the simulation uses.
const (
	TypeA RType = iota + 1
	TypeNS
	TypeMX
	TypeTXT
	TypeCNAME
)

// String returns the conventional mnemonic.
func (t RType) String() string {
	switch t {
	case TypeA:
		return "A"
	case TypeNS:
		return "NS"
	case TypeMX:
		return "MX"
	case TypeTXT:
		return "TXT"
	case TypeCNAME:
		return "CNAME"
	}
	return "TYPE?"
}

// RCode is a DNS response code. TIMEOUT is a synthetic code standing in
// for an unanswered query.
type RCode uint8

// Response codes.
const (
	NoError RCode = iota
	NXDomain
	ServFail
	Timeout
)

// String returns the conventional mnemonic.
func (c RCode) String() string {
	switch c {
	case NoError:
		return "NOERROR"
	case NXDomain:
		return "NXDOMAIN"
	case ServFail:
		return "SERVFAIL"
	case Timeout:
		return "TIMEOUT"
	}
	return "RCODE?"
}

// MX is a mail-exchanger record value.
type MX struct {
	Host string
	Pref int
}

// Record is one DNS resource record, optionally valid only inside a
// window of virtual time. A zero From/Until means unbounded. Windowed
// records are how the world model schedules misconfiguration episodes:
// e.g. a broken SPF TXT record valid for 12 days replaces the good one.
type Record struct {
	Name string
	Type RType
	TTL  time.Duration

	// Value fields; which one is populated depends on Type.
	A      string // TypeA
	MX     MX     // TypeMX
	TXT    string // TypeTXT
	Target string // TypeNS, TypeCNAME

	From  time.Time // inclusive; zero = since forever
	Until time.Time // exclusive; zero = until forever
}

// activeAt reports whether the record is valid at time t.
func (r *Record) activeAt(t time.Time) bool {
	if !r.From.IsZero() && t.Before(r.From) {
		return false
	}
	if !r.Until.IsZero() && !t.Before(r.Until) {
		return false
	}
	return true
}

// Outage marks a window during which queries for a name (all types, or a
// specific set) fail with the given code. MX-resolution misconfigurations
// (T2, "Error MX record for receiver domain") are modeled as outages.
type Outage struct {
	Name  string
	Types []RType // empty = all types
	Code  RCode
	From  time.Time
	Until time.Time
}

func (o *Outage) covers(name string, typ RType, t time.Time) bool {
	if o.Name != name {
		return false
	}
	if !o.From.IsZero() && t.Before(o.From) {
		return false
	}
	if !o.Until.IsZero() && !t.Before(o.Until) {
		return false
	}
	if len(o.Types) == 0 {
		return true
	}
	for _, ot := range o.Types {
		if ot == typ {
			return true
		}
	}
	return false
}

// Authority is the authoritative record store for the whole simulated
// Internet. It is safe for concurrent use.
type Authority struct {
	mu      sync.RWMutex
	records map[string][]*Record // key: lowercased fqdn
	outages map[string][]*Outage
	domains map[string]bool // apex domains that exist at all
}

// NewAuthority returns an empty authoritative store.
func NewAuthority() *Authority {
	return &Authority{
		records: make(map[string][]*Record),
		outages: make(map[string][]*Outage),
		domains: make(map[string]bool),
	}
}

// Add installs a record.
func (a *Authority) Add(r Record) {
	name := strings.ToLower(r.Name)
	r.Name = name
	if r.TTL == 0 {
		r.TTL = 5 * time.Minute
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.records[name] = append(a.records[name], &r)
	a.domains[apex(name)] = true
}

// AddOutage installs an outage window.
func (a *Authority) AddOutage(o Outage) {
	o.Name = strings.ToLower(o.Name)
	a.mu.Lock()
	defer a.mu.Unlock()
	a.outages[o.Name] = append(a.outages[o.Name], &o)
}

// DomainExists reports whether any record was ever registered under the
// apex domain. The squat scanner uses it to distinguish typo domains
// (never existed → NXDOMAIN) from broken ones.
func (a *Authority) DomainExists(domain string) bool {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.domains[apex(strings.ToLower(domain))]
}

// apex reduces a fqdn to its registrable apex using a simple two-label
// heuristic with a small multi-label public-suffix set, which is enough
// for the synthetic namespace.
func apex(name string) string {
	labels := strings.Split(name, ".")
	if len(labels) <= 2 {
		return name
	}
	tld2 := labels[len(labels)-2] + "." + labels[len(labels)-1]
	switch tld2 {
	case "com.cn", "edu.cn", "org.cn", "net.cn", "co.uk", "ac.uk", "com.br", "co.jp":
		if len(labels) >= 3 {
			return labels[len(labels)-3] + "." + tld2
		}
	}
	return tld2
}

// Answer is the result of an authoritative query.
type Answer struct {
	Code    RCode
	Records []Record
	TTL     time.Duration
}

// Query resolves name/typ at virtual time t against the authority.
// Semantics follow DNS: a name with no records at all under an existing
// apex yields NOERROR with no answers (NODATA); a name whose apex never
// existed yields NXDOMAIN; outages yield their configured code.
func (a *Authority) Query(name string, typ RType, t time.Time) Answer {
	name = strings.ToLower(name)
	a.mu.RLock()
	defer a.mu.RUnlock()
	for _, o := range a.outages[name] {
		if o.covers(name, typ, t) {
			return Answer{Code: o.Code}
		}
	}
	var out []Record
	minTTL := time.Duration(0)
	for _, r := range a.records[name] {
		if r.Type == typ && r.activeAt(t) {
			out = append(out, *r)
			if minTTL == 0 || r.TTL < minTTL {
				minTTL = r.TTL
			}
		}
	}
	if len(out) > 0 {
		if typ == TypeMX {
			sort.Slice(out, func(i, j int) bool { return out[i].MX.Pref < out[j].MX.Pref })
		}
		return Answer{Code: NoError, Records: out, TTL: minTTL}
	}
	// Any record of any type at this exact name, now or ever?
	if !a.domains[apex(name)] {
		return Answer{Code: NXDomain, TTL: 5 * time.Minute}
	}
	return Answer{Code: NoError, TTL: 5 * time.Minute} // NODATA
}
