package dns

import (
	"testing"
	"time"

	"repro/internal/simrng"
)

var t0 = time.Date(2022, 6, 14, 0, 0, 0, 0, time.UTC)

func newTestAuthority() *Authority {
	a := NewAuthority()
	a.Add(Record{Name: "b.com", Type: TypeNS, Target: "ns1.b.com"})
	a.Add(Record{Name: "ns1.b.com", Type: TypeA, A: "20.0.0.1"})
	a.Add(Record{Name: "b.com", Type: TypeMX, MX: MX{Host: "mx2.b.com", Pref: 20}})
	a.Add(Record{Name: "b.com", Type: TypeMX, MX: MX{Host: "mx1.b.com", Pref: 10}})
	a.Add(Record{Name: "mx1.b.com", Type: TypeA, A: "20.0.0.10"})
	a.Add(Record{Name: "mx2.b.com", Type: TypeA, A: "20.0.0.20"})
	a.Add(Record{Name: "b.com", Type: TypeTXT, TXT: "v=spf1 mx -all"})
	return a
}

func TestQueryMXPreferenceOrder(t *testing.T) {
	a := newTestAuthority()
	ans := a.Query("b.com", TypeMX, t0)
	if ans.Code != NoError || len(ans.Records) != 2 {
		t.Fatalf("MX query: %+v", ans)
	}
	if ans.Records[0].MX.Host != "mx1.b.com" || ans.Records[1].MX.Host != "mx2.b.com" {
		t.Errorf("MX records not in preference order: %+v", ans.Records)
	}
}

func TestQueryCaseInsensitive(t *testing.T) {
	a := newTestAuthority()
	ans := a.Query("B.COM", TypeMX, t0)
	if ans.Code != NoError || len(ans.Records) != 2 {
		t.Errorf("case-insensitive query failed: %+v", ans)
	}
}

func TestNXDomainVsNodata(t *testing.T) {
	a := newTestAuthority()
	if ans := a.Query("never-registered.com", TypeA, t0); ans.Code != NXDomain {
		t.Errorf("unknown apex: code=%v want NXDOMAIN", ans.Code)
	}
	// b.com exists but has no A record at the apex: NODATA.
	if ans := a.Query("b.com", TypeA, t0); ans.Code != NoError || len(ans.Records) != 0 {
		t.Errorf("NODATA: %+v", ans)
	}
	// subdomain of an existing apex: NOERROR empty (exists at apex level).
	if ans := a.Query("sub.b.com", TypeA, t0); ans.Code != NoError {
		t.Errorf("subdomain of existing apex: code=%v", ans.Code)
	}
}

func TestDomainExists(t *testing.T) {
	a := newTestAuthority()
	if !a.DomainExists("b.com") || !a.DomainExists("mx1.b.com") {
		t.Error("b.com apex should exist")
	}
	if a.DomainExists("nope.org") {
		t.Error("nope.org should not exist")
	}
}

func TestApexMultiLabelSuffix(t *testing.T) {
	cases := map[string]string{
		"mail.tsinghua.edu.cn": "tsinghua.edu.cn",
		"www.example.co.uk":    "example.co.uk",
		"mx1.b.com":            "b.com",
		"b.com":                "b.com",
		"com":                  "com",
	}
	for in, want := range cases {
		if got := apex(in); got != want {
			t.Errorf("apex(%q)=%q want %q", in, got, want)
		}
	}
}

func TestWindowedRecords(t *testing.T) {
	a := NewAuthority()
	// Good SPF before and after; broken SPF during a 12-day episode.
	epStart := t0.AddDate(0, 0, 30)
	epEnd := epStart.AddDate(0, 0, 12)
	a.Add(Record{Name: "a.com", Type: TypeTXT, TXT: "v=spf1 ip4=good -all", Until: epStart})
	a.Add(Record{Name: "a.com", Type: TypeTXT, TXT: "v=spf1 broken", From: epStart, Until: epEnd})
	a.Add(Record{Name: "a.com", Type: TypeTXT, TXT: "v=spf1 ip4=good -all", From: epEnd})

	get := func(at time.Time) string {
		ans := a.Query("a.com", TypeTXT, at)
		if len(ans.Records) != 1 {
			t.Fatalf("at %v: %d records", at, len(ans.Records))
		}
		return ans.Records[0].TXT
	}
	if got := get(t0); got != "v=spf1 ip4=good -all" {
		t.Errorf("before episode: %q", got)
	}
	if got := get(epStart.Add(time.Hour)); got != "v=spf1 broken" {
		t.Errorf("during episode: %q", got)
	}
	if got := get(epEnd); got != "v=spf1 ip4=good -all" {
		t.Errorf("after episode (boundary is exclusive): %q", got)
	}
}

func TestOutage(t *testing.T) {
	a := newTestAuthority()
	from := t0.AddDate(0, 0, 10)
	until := from.Add(20 * time.Hour)
	a.AddOutage(Outage{Name: "b.com", Types: []RType{TypeMX}, Code: ServFail, From: from, Until: until})

	if ans := a.Query("b.com", TypeMX, from.Add(time.Hour)); ans.Code != ServFail {
		t.Errorf("during outage: code=%v want SERVFAIL", ans.Code)
	}
	// Other types unaffected.
	if ans := a.Query("b.com", TypeTXT, from.Add(time.Hour)); ans.Code != NoError {
		t.Errorf("TXT during MX outage: code=%v", ans.Code)
	}
	if ans := a.Query("b.com", TypeMX, until.Add(time.Hour)); ans.Code != NoError {
		t.Errorf("after outage: code=%v", ans.Code)
	}
}

func TestOutageAllTypes(t *testing.T) {
	a := newTestAuthority()
	a.AddOutage(Outage{Name: "b.com", Code: NXDomain, From: t0, Until: t0.Add(time.Hour)})
	if ans := a.Query("b.com", TypeTXT, t0.Add(time.Minute)); ans.Code != NXDomain {
		t.Errorf("all-type outage: code=%v", ans.Code)
	}
}

func TestResolverCaching(t *testing.T) {
	a := newTestAuthority()
	r := NewResolver(a, nil)
	ans1 := r.Lookup("b.com", TypeMX, t0)
	ans2 := r.Lookup("b.com", TypeMX, t0.Add(time.Minute))
	if ans1.Code != NoError || ans2.Code != NoError {
		t.Fatal("lookups failed")
	}
	hits, misses, _ := r.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("hits=%d misses=%d want 1/1", hits, misses)
	}
	// After TTL expiry the cache must re-query.
	r.Lookup("b.com", TypeMX, t0.Add(10*time.Minute))
	hits, misses, _ = r.Stats()
	if misses != 2 {
		t.Errorf("expected cache expiry to force a miss, misses=%d", misses)
	}
}

func TestResolverCachesStaleDataAcrossChange(t *testing.T) {
	// The paper distinguishes genuine misconfiguration from stale caches;
	// the resolver must actually exhibit staleness within TTL.
	a := NewAuthority()
	cut := t0.Add(time.Minute)
	a.Add(Record{Name: "x.com", Type: TypeA, A: "1.1.1.1", TTL: time.Hour, Until: cut})
	a.Add(Record{Name: "x.com", Type: TypeA, A: "2.2.2.2", TTL: time.Hour, From: cut})
	r := NewResolver(a, nil)
	first, _ := r.ResolveA("x.com", t0)
	second, _ := r.ResolveA("x.com", cut.Add(time.Minute)) // within TTL: stale
	if first[0] != "1.1.1.1" || second[0] != "1.1.1.1" {
		t.Errorf("expected stale cached answer, got %v then %v", first, second)
	}
	r.Flush()
	third, _ := r.ResolveA("x.com", cut.Add(time.Minute))
	if third[0] != "2.2.2.2" {
		t.Errorf("after flush want fresh answer, got %v", third)
	}
}

func TestTransientFailureInjection(t *testing.T) {
	a := newTestAuthority()
	r := NewResolver(a, simrng.New(11))
	r.TransientFailProb = 0.5
	fails := 0
	for i := 0; i < 1000; i++ {
		r.Flush()
		if ans := r.Lookup("b.com", TypeMX, t0); ans.Code == ServFail {
			fails++
		}
	}
	if fails < 400 || fails > 600 {
		t.Errorf("injected failure count %d/1000, want ~500", fails)
	}
	// Transients must not be cached.
	_, _, transients := r.Stats()
	if transients != fails {
		t.Errorf("transient counter %d != observed %d", transients, fails)
	}
}

func TestResolveMXExplicitAndImplicit(t *testing.T) {
	a := newTestAuthority()
	a.Add(Record{Name: "implicit.com", Type: TypeA, A: "30.0.0.1"})
	r := NewResolver(a, nil)

	hosts, code := r.ResolveMX("b.com", t0)
	if code != NoError || len(hosts) != 2 || hosts[0] != "mx1.b.com" {
		t.Errorf("explicit MX: %v %v", hosts, code)
	}
	hosts, code = r.ResolveMX("implicit.com", t0)
	if code != NoError || len(hosts) != 1 || hosts[0] != "implicit.com" {
		t.Errorf("implicit MX fallback: %v %v", hosts, code)
	}
	_, code = r.ResolveMX("ghost.com", t0)
	if code != NXDomain {
		t.Errorf("missing domain: %v want NXDOMAIN", code)
	}
}

func TestResolveAAndTXT(t *testing.T) {
	a := newTestAuthority()
	r := NewResolver(a, nil)
	ips, code := r.ResolveA("mx1.b.com", t0)
	if code != NoError || len(ips) != 1 || ips[0] != "20.0.0.10" {
		t.Errorf("ResolveA: %v %v", ips, code)
	}
	txts, code := r.ResolveTXT("b.com", t0)
	if code != NoError || len(txts) != 1 || txts[0] != "v=spf1 mx -all" {
		t.Errorf("ResolveTXT: %v %v", txts, code)
	}
	// NODATA TXT is empty slice + NoError.
	txts, code = r.ResolveTXT("mx1.b.com", t0)
	if code != NoError || len(txts) != 0 {
		t.Errorf("NODATA TXT: %v %v", txts, code)
	}
}

func TestRTypeAndRCodeStrings(t *testing.T) {
	if TypeMX.String() != "MX" || TypeTXT.String() != "TXT" || RType(99).String() != "TYPE?" {
		t.Error("RType.String mismatch")
	}
	if NXDomain.String() != "NXDOMAIN" || Timeout.String() != "TIMEOUT" || RCode(99).String() != "RCODE?" {
		t.Error("RCode.String mismatch")
	}
}

func TestDefaultTTLApplied(t *testing.T) {
	a := NewAuthority()
	a.Add(Record{Name: "y.com", Type: TypeA, A: "1.2.3.4"})
	ans := a.Query("y.com", TypeA, t0)
	if ans.TTL != 5*time.Minute {
		t.Errorf("default TTL = %v", ans.TTL)
	}
}

func TestResolveAFollowsCNAME(t *testing.T) {
	a := NewAuthority()
	a.Add(Record{Name: "www.c.com", Type: TypeCNAME, Target: "real.c.com"})
	a.Add(Record{Name: "real.c.com", Type: TypeA, A: "40.0.0.1"})
	r := NewResolver(a, nil)
	ips, code := r.ResolveA("www.c.com", t0)
	if code != NoError || len(ips) != 1 || ips[0] != "40.0.0.1" {
		t.Errorf("CNAME chase: %v %v", ips, code)
	}
}

func TestResolveACNAMEChainAndLoop(t *testing.T) {
	a := NewAuthority()
	// Two-hop chain resolves.
	a.Add(Record{Name: "a1.x.com", Type: TypeCNAME, Target: "a2.x.com"})
	a.Add(Record{Name: "a2.x.com", Type: TypeCNAME, Target: "a3.x.com"})
	a.Add(Record{Name: "a3.x.com", Type: TypeA, A: "41.0.0.1"})
	// Loop must terminate with SERVFAIL, not hang.
	a.Add(Record{Name: "loop1.x.com", Type: TypeCNAME, Target: "loop2.x.com"})
	a.Add(Record{Name: "loop2.x.com", Type: TypeCNAME, Target: "loop1.x.com"})
	r := NewResolver(a, nil)
	if ips, code := r.ResolveA("a1.x.com", t0); code != NoError || ips[0] != "41.0.0.1" {
		t.Errorf("chain: %v %v", ips, code)
	}
	if _, code := r.ResolveA("loop1.x.com", t0); code != ServFail {
		t.Errorf("loop: %v want SERVFAIL", code)
	}
}

func TestResolveMXTargetBehindCNAME(t *testing.T) {
	// MX pointing at a CNAME is a misconfiguration MTAs tolerate by
	// chasing the chain; the substrate supports it so the world can
	// model it.
	a := NewAuthority()
	a.Add(Record{Name: "m.com", Type: TypeMX, MX: MX{Host: "alias.m.com", Pref: 10}})
	a.Add(Record{Name: "alias.m.com", Type: TypeCNAME, Target: "real.m.com"})
	a.Add(Record{Name: "real.m.com", Type: TypeA, A: "42.0.0.1"})
	r := NewResolver(a, nil)
	hosts, code := r.ResolveMX("m.com", t0)
	if code != NoError || hosts[0] != "alias.m.com" {
		t.Fatalf("MX: %v %v", hosts, code)
	}
	ips, code := r.ResolveA(hosts[0], t0)
	if code != NoError || ips[0] != "42.0.0.1" {
		t.Errorf("MX target behind CNAME: %v %v", ips, code)
	}
}
