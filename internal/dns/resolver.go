package dns

import (
	"sync"
	"time"

	"repro/internal/simrng"
)

// Resolver is a caching stub resolver over an Authority. It adds the two
// behaviours real MTAs experience that the Authority alone does not
// model: positive/negative caching with TTL expiry in virtual time, and
// transient resolution failures (SERVFAIL/timeout) injected with a small
// probability — the source of T1-style temporary DNS errors that clear
// on retry.
type Resolver struct {
	auth *Authority

	// TransientFailProb is the per-query probability of a transient
	// SERVFAIL when the query misses the cache. Zero disables injection.
	TransientFailProb float64

	mu    sync.Mutex
	rng   *simrng.RNG
	cache map[cacheKey]cacheEntry

	// counters for tests and reports
	hits, misses, transients int
}

type cacheKey struct {
	name string
	typ  RType
}

type cacheEntry struct {
	ans    Answer
	expiry time.Time
}

// NewResolver builds a resolver over auth. rng may be nil if
// TransientFailProb stays zero.
func NewResolver(auth *Authority, rng *simrng.RNG) *Resolver {
	return &Resolver{
		auth:  auth,
		rng:   rng,
		cache: make(map[cacheKey]cacheEntry),
	}
}

// Lookup resolves name/typ at virtual time t, consulting the cache
// first. Transient failures are never cached.
func (r *Resolver) Lookup(name string, typ RType, t time.Time) Answer {
	key := cacheKey{name, typ}
	r.mu.Lock()
	if e, ok := r.cache[key]; ok && t.Before(e.expiry) {
		r.hits++
		r.mu.Unlock()
		return e.ans
	}
	r.misses++
	inject := r.TransientFailProb > 0 && r.rng != nil && r.rng.Bool(r.TransientFailProb)
	if inject {
		r.transients++
		r.mu.Unlock()
		return Answer{Code: ServFail}
	}
	r.mu.Unlock()

	ans := r.auth.Query(name, typ, t)
	ttl := ans.TTL
	if ttl <= 0 {
		ttl = 5 * time.Minute
	}
	r.mu.Lock()
	r.cache[key] = cacheEntry{ans: ans, expiry: t.Add(ttl)}
	r.mu.Unlock()
	return ans
}

// Flush drops all cached entries.
func (r *Resolver) Flush() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cache = make(map[cacheKey]cacheEntry)
}

// Stats returns cache hit/miss and injected-transient counts.
func (r *Resolver) Stats() (hits, misses, transients int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hits, r.misses, r.transients
}

// ResolveMX returns the MX target hosts for domain in preference order
// at time t, falling back to the implicit-MX rule (the domain's own A
// record) when the domain has an address but no MX, per RFC 5321 §5.1.
func (r *Resolver) ResolveMX(domain string, t time.Time) ([]string, RCode) {
	ans := r.Lookup(domain, TypeMX, t)
	switch ans.Code {
	case NoError:
		if len(ans.Records) > 0 {
			hosts := make([]string, len(ans.Records))
			for i, rec := range ans.Records {
				hosts[i] = rec.MX.Host
			}
			return hosts, NoError
		}
		// NODATA: implicit MX if an A record exists.
		if a := r.Lookup(domain, TypeA, t); a.Code == NoError && len(a.Records) > 0 {
			return []string{domain}, NoError
		}
		return nil, NXDomain
	default:
		return nil, ans.Code
	}
}

// ResolveA returns the IPv4 addresses of host at time t, following up
// to maxCNAMEChain CNAME records (RFC 1034 resolution; chains beyond
// the limit are treated as broken and return SERVFAIL, like resolvers
// guarding against loops).
func (r *Resolver) ResolveA(host string, t time.Time) ([]string, RCode) {
	const maxCNAMEChain = 4
	for hop := 0; hop <= maxCNAMEChain; hop++ {
		ans := r.Lookup(host, TypeA, t)
		if ans.Code != NoError {
			return nil, ans.Code
		}
		ips := make([]string, 0, len(ans.Records))
		for _, rec := range ans.Records {
			ips = append(ips, rec.A)
		}
		if len(ips) > 0 {
			return ips, NoError
		}
		// No address: is there a CNAME to chase?
		cname := r.Lookup(host, TypeCNAME, t)
		if cname.Code != NoError || len(cname.Records) == 0 {
			return nil, NXDomain
		}
		host = cname.Records[0].Target
	}
	return nil, ServFail // chain too long / loop
}

// ResolveTXT returns the TXT strings at name at time t. A NODATA answer
// yields an empty slice with NoError, matching how SPF/DMARC evaluators
// treat "no record published".
func (r *Resolver) ResolveTXT(name string, t time.Time) ([]string, RCode) {
	ans := r.Lookup(name, TypeTXT, t)
	if ans.Code != NoError {
		return nil, ans.Code
	}
	txts := make([]string, 0, len(ans.Records))
	for _, rec := range ans.Records {
		txts = append(txts, rec.TXT)
	}
	return txts, NoError
}
