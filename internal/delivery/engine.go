// Package delivery executes email deliveries against a generated
// world: Coremail's random-proxy retry strategy on the sender side, and
// the receiver-side policy gauntlet (the internal/policy stage chain:
// DNS, TLS mandate, DNSBL, greylisting, rate limits, SPF/DKIM/DMARC,
// recipient existence, quota, size, content filtering) on the other.
// Every delivery produces a Figure-3 dataset record; the bounce-reason
// ground truth is returned separately for validation only and never
// enters the dataset.
package delivery

import (
	"fmt"
	"hash/fnv"
	"math"
	"sync"
	"time"

	"repro/internal/auth"
	"repro/internal/dataset"
	"repro/internal/dns"
	"repro/internal/mail"
	"repro/internal/ndr"
	"repro/internal/policy"
	"repro/internal/simrng"
	"repro/internal/world"
)

// NumShards is the fixed number of receiver-domain partitions the
// engine's mutable state is split into. It is independent of the
// worker count: a worker owns every shard s with s % workers == its
// index, so the shard→state mapping (and therefore the dataset) never
// changes when the worker count does.
const NumShards = 16

// Engine drives deliveries. Create with New. The engine is safe for
// concurrent use through DeliverBatch/ParallelRun: mutable delivery
// state is partitioned into NumShards receiver-domain shards, each
// owned by exactly one worker goroutine per batch, and every
// submission draws from a private RNG stream derived from its message
// ID rather than from engine-call order. Any worker count therefore
// produces a byte-identical dataset for the same seed.
type Engine struct {
	W *world.World

	// MaxAttempts is Coremail's retry budget for Normal email; Spam is
	// delivered exactly once (Section 3.1).
	MaxAttempts int

	// PinProxy repeats the same proxy MTA for every retry of an email
	// instead of picking randomly — the greylist-friendly remediation
	// the paper says Coremail promised (ablation knob).
	PinProxy bool

	// Metrics counts per-stage rejections across every receiver chain.
	Metrics *policy.Metrics

	env         *policy.Env
	chains      map[string]*policy.Chain // receiver domain -> assembled gauntlet
	seedBase    uint64
	shards      [NumShards]*shard
	domainShard map[string]int // receiver domain -> shard (built from world ranks)

	histMu        sync.Mutex
	senderHistory map[string][]string // sender domain -> recipient addrs (for analysis substrates)
}

// shard holds the delivery state for one receiver-domain partition:
// the DNS resolver (its cache and transient-failure draws are
// order-sensitive, so each shard gets its own), the auth evaluators
// bound to that resolver, and the policy-stage counter and
// learned-mandate maps (keyed by policy.Key, shared across the shard's
// domains).
type shard struct {
	resolver *dns.Resolver
	spf      *auth.SPFEvaluator
	dkim     *auth.DKIMVerifier
	dmarc    *auth.DMARCEvaluator

	counters map[uint64]int  // rate-limit windows (T7/T11)
	learned  map[uint64]bool // TLS mandates discovered (T4)
}

// New creates an engine over w with the default 5-attempt budget.
func New(w *world.World) *Engine {
	e := &Engine{
		W:             w,
		MaxAttempts:   5,
		Metrics:       policy.NewMetrics(),
		env:           policy.NewEnv(w),
		seedBase:      w.Cfg.Seed ^ 0xde11ef27,
		chains:        make(map[string]*policy.Chain, len(w.Domains)),
		domainShard:   make(map[string]int, len(w.Domains)),
		senderHistory: make(map[string][]string),
	}
	root := simrng.New(e.seedBase)
	for i := range e.shards {
		res := dns.NewResolver(w.DNS, root.Stream(fmt.Sprintf("shard:%d:resolver", i)))
		res.TransientFailProb = w.Cfg.TransientDNSFailProb
		e.shards[i] = &shard{
			resolver: res,
			spf:      &auth.SPFEvaluator{Resolver: res},
			dkim:     &auth.DKIMVerifier{Resolver: res},
			dmarc:    &auth.DMARCEvaluator{Resolver: res},
			counters: make(map[uint64]int),
			learned:  make(map[uint64]bool),
		}
	}
	// Spread known domains round-robin by popularity rank so the Zipf
	// head doesn't pile onto one shard; unknown (dead/typo) domains
	// fall back to hashing in shardOf. Each domain gets its policy
	// chain assembled once, up front.
	for _, d := range w.Domains {
		e.domainShard[d.Name] = d.Rank % NumShards
		e.chains[d.Name] = policy.NewChain(e.env, d, policy.ChainOptions{Metrics: e.Metrics})
	}
	return e
}

// DisableStages turns the named policy stages off in every receiver
// chain (the -disable-stage ablation knob). Call before delivering.
func (e *Engine) DisableStages(names ...string) error {
	for _, c := range e.chains {
		if err := c.Disable(names...); err != nil {
			return err
		}
	}
	return nil
}

// ForceStages makes the named policy stages reject unconditionally in
// every receiver chain. Call before delivering.
func (e *Engine) ForceStages(names ...string) error {
	for _, c := range e.chains {
		if err := c.Force(names...); err != nil {
			return err
		}
	}
	return nil
}

// StageHits snapshots the per-stage rejection counts accumulated so
// far.
func (e *Engine) StageHits() map[string]uint64 { return e.Metrics.Hits() }

// shardOf maps a receiver domain to its shard.
func (e *Engine) shardOf(domain string) int {
	if s, ok := e.domainShard[domain]; ok {
		return s
	}
	h := fnv.New64a()
	h.Write([]byte(domain))
	return int(h.Sum64() % NumShards)
}

// submissionRNG derives the private RNG stream for one submission from
// its stable message ID, so a delivery's randomness is independent of
// how deliveries interleave across workers.
func (e *Engine) submissionRNG(id string) *simrng.RNG {
	return simrng.New(e.seedBase).Stream("msg:" + id)
}

// Truth is the engine's ground-truth annotation for one delivered
// email: the bounce type of each failed attempt. Validation tests use
// it; the analysis pipeline never sees it.
type Truth struct {
	AttemptTypes []ndr.Type
}

// attemptOutcome is one delivery attempt's result.
type attemptOutcome struct {
	reply     string
	latencyMS int64
	toIP      string
	success   bool
	temporary bool
	typ       ndr.Type
}

// spamReport is a buffered spamtrap hit awaiting ordered application
// to the shared blocklist.
type spamReport struct {
	ip string
	at time.Time
}

// result is one delivered submission awaiting the ordered merge.
type result struct {
	rec     dataset.Record
	truth   Truth
	reports []spamReport
}

// dctx bundles everything one delivery touches: the engine, the
// receiver domain's shard, and the submission's private RNG stream.
// Spamtrap reports are buffered here so the caller can apply them to
// the shared blocklist in deterministic sequence order.
//
// dctx is the engine's policy.StageState: stages read and write the
// owning shard's counter and learned maps, which only the shard's
// worker goroutine touches during a batch — ParallelRun determinism is
// unchanged by routing the mutations through the interface.
type dctx struct {
	e       *Engine
	sh      *shard
	rng     *simrng.RNG
	reports []spamReport
}

// RNG returns the submission's private random stream.
func (dc *dctx) RNG() *simrng.RNG { return dc.rng }

// Resolver returns the shard's DNS resolver.
func (dc *dctx) Resolver() *dns.Resolver { return dc.sh.resolver }

// SPF returns the shard's SPF evaluator.
func (dc *dctx) SPF() *auth.SPFEvaluator { return dc.sh.spf }

// DKIM returns the shard's DKIM verifier.
func (dc *dctx) DKIM() *auth.DKIMVerifier { return dc.sh.dkim }

// DMARC returns the shard's DMARC evaluator.
func (dc *dctx) DMARC() *auth.DMARCEvaluator { return dc.sh.dmarc }

// Bump increments and returns the shard counter at key.
func (dc *dctx) Bump(key uint64) int {
	dc.sh.counters[key]++
	return dc.sh.counters[key]
}

// Peek returns the shard counter at key.
func (dc *dctx) Peek(key uint64) int { return dc.sh.counters[key] }

// LearnOnce records key in the shard's learned set and reports whether
// it was already known.
func (dc *dctx) LearnOnce(key uint64) bool {
	if dc.sh.learned[key] {
		return true
	}
	dc.sh.learned[key] = true
	return false
}

// ReportSpam buffers a spamtrap hit for ordered application to the
// shared blocklist at merge time.
func (dc *dctx) ReportSpam(ip string, at time.Time) {
	dc.reports = append(dc.reports, spamReport{ip: ip, at: at})
}

// Deliver executes the full delivery of one submission and returns its
// dataset record plus ground truth. Spamtrap reports and sender
// history are applied immediately; batch runs instead defer both to
// the ordered merge (see DeliverBatch).
func (e *Engine) Deliver(sub *world.Submission) (dataset.Record, Truth) {
	res := e.deliver(sub)
	e.recordHistory(&res.rec)
	e.applyReports(res.reports)
	return res.rec, res.truth
}

// deliver runs one submission with no cross-shard writes: blocklist
// reports and sender history are returned for the caller to apply.
func (e *Engine) deliver(sub *world.Submission) result {
	msg := sub.Msg
	dc := &dctx{
		e:   e,
		sh:  e.shards[e.shardOf(msg.To.Domain)],
		rng: e.submissionRNG(msg.ID),
	}
	maxAttempts := e.MaxAttempts
	if msg.IsSpam() {
		maxAttempts = 1 // "Coremail sends emails that are determined to be spam once"
	}
	rec := dataset.Record{
		From:      msg.From.String(),
		To:        msg.To.String(),
		StartTime: msg.QueuedAt,
		EmailFlag: string(msg.Flag),
	}
	var truth Truth
	t := msg.QueuedAt
	var pinned *world.ProxyMTA
	st := deliveryState{}
	for attempt := 0; attempt < maxAttempts; attempt++ {
		proxy := e.W.PickProxy(dc.rng)
		if e.PinProxy {
			if pinned == nil {
				pinned = proxy
			}
			proxy = pinned
		}
		st.first = attempt == 0
		out := dc.attempt(msg, proxy, t, &st)
		if out.typ == ndr.T4STARTTLS {
			// Coremail "immediately switches to using STARTTLS to
			// redeliver the email": later attempts of this message
			// negotiate TLS up front.
			st.forceTLS = true
		}
		rec.FromIP = append(rec.FromIP, proxy.IP)
		rec.ToIP = append(rec.ToIP, out.toIP)
		rec.DeliveryResult = append(rec.DeliveryResult, out.reply)
		rec.DeliveryLatency = append(rec.DeliveryLatency, out.latencyMS)
		truth.AttemptTypes = append(truth.AttemptTypes, out.typ)
		t = t.Add(time.Duration(out.latencyMS) * time.Millisecond)
		rec.EndTime = t
		if out.success || attempt == maxAttempts-1 {
			break
		}
		t = t.Add(dc.retryDelay(attempt))
	}
	return result{rec: rec, truth: truth, reports: dc.reports}
}

// retryDelay is Coremail's backoff schedule: minutes at first, hours
// later (soft-bounced emails average ~3 attempts over tens of minutes).
func (dc *dctx) retryDelay(attempt int) time.Duration {
	base := []time.Duration{
		7 * time.Minute, 22 * time.Minute, time.Hour, 3 * time.Hour,
	}
	d := base[minInt(attempt, len(base)-1)]
	jitter := 0.7 + 0.6*dc.rng.Float64()
	return time.Duration(float64(d) * jitter)
}

// attempt runs one delivery attempt through DNS, the network model,
// and the receiver's policy gauntlet.
// deliveryState carries per-message knowledge across retry attempts.
type deliveryState struct {
	first    bool
	forceTLS bool
}

func (dc *dctx) attempt(msg *mail.Message, proxy *world.ProxyMTA, t time.Time, st *deliveryState) attemptOutcome {
	w := dc.e.W

	rcvrDomain := msg.To.Domain

	// 1. Resolve the receiver's MX (T2 on failure).
	hosts, code := dc.sh.resolver.ResolveMX(rcvrDomain, t)
	if code != dns.NoError {
		return dc.senderSideBounce(msg, proxy, t, ndr.T2ReceiverDNS, code, "")
	}
	ips, code := dc.sh.resolver.ResolveA(hosts[0], t)
	if code != dns.NoError || len(ips) == 0 {
		return dc.senderSideBounce(msg, proxy, t, ndr.T2ReceiverDNS, code, hosts[0])
	}
	mxIP := ips[0]

	d := w.DomainByName[rcvrDomain]
	lat := dc.sessionLatencyMS(proxy, d, rcvrDomain)

	// 2. Network quality (T14 timeout / T15 interruption).
	country := ""
	if d != nil {
		country = d.Country
	} else if cc, _, ok := w.Geo.Lookup(mxIP); ok {
		country = cc
	}
	pTimeout := w.Geo.TimeoutProb(proxy.Region, country)
	if dc.rng.Bool(pTimeout) {
		out := dc.senderSideBounce(msg, proxy, t, ndr.T14Timeout, dns.NoError, hosts[0])
		out.toIP = mxIP
		out.latencyMS = 30000 + int64(dc.rng.IntN(270000))
		return out
	}
	if dc.rng.Bool(pTimeout * 0.45) {
		out := dc.senderSideBounce(msg, proxy, t, ndr.T15Interrupted, dns.NoError, hosts[0])
		out.toIP = mxIP
		out.latencyMS = lat / 2
		return out
	}

	// Mid-study dead domains (and other MX-resolvable hosts without a
	// live policy object) accept mail.
	if d == nil {
		return attemptOutcome{
			reply:     ndr.RenderSuccess(dc.rng.IntN(4), ndr.Params{Vendor: dc.vendor(), Domain: rcvrDomain}),
			latencyMS: lat, toIP: mxIP, success: true, typ: ndr.TNone,
		}
	}

	// 3. Receiver policy gauntlet: the domain's stage chain evaluated
	// linearly, with this dctx as the shard-owned StageState.
	req := &policy.Request{
		From:        msg.From,
		To:          msg.To,
		MsgID:       msg.ID,
		ClientIP:    proxy.IP,
		Proxy:       proxy,
		At:          t,
		First:       st.first,
		TLS:         st.forceTLS,
		SpamFlagged: msg.IsSpam(),
		RcptCount:   msg.RcptCount,
		SizeBytes:   msg.SizeBytes,
		Tokens:      msg.Tokens,
	}
	chain := dc.e.chains[d.Name]
	if v := chain.Evaluate(dc, req); v.Rejected() {
		return dc.renderReceiverBounce(msg, proxy, d, chain.Resolve(v, req), lat, mxIP)
	}

	return attemptOutcome{
		reply:     ndr.RenderSuccess(int(dc.rng.Uint64()), ndr.Params{Vendor: dc.vendor(), Domain: rcvrDomain}),
		latencyMS: lat, toIP: mxIP, success: true, typ: ndr.TNone,
	}
}

// renderReceiverBounce renders the receiver's NDR for the chain's
// resolved rejection.
func (dc *dctx) renderReceiverBounce(msg *mail.Message, proxy *world.ProxyMTA, d *world.ReceiverDomain, res policy.Resolved, lat int64, mxIP string) attemptOutcome {
	tp := &ndr.Catalog[res.Index]
	params := ndr.Params{
		Addr:   msg.To.String(),
		Local:  msg.To.Local,
		Domain: policy.TemplateDomain(res.Type, msg.From.Domain, d.Name),
		IP:     proxy.IP,
		MX:     d.MXHost,
		BL:     policy.BlocklistName(d.Name),
		Vendor: dc.vendor(),
		Sec:    "300",
		Size:   fmt.Sprintf("%d", d.Policy.MaxMsgSize),
	}
	return attemptOutcome{
		reply:     tp.Render(params),
		latencyMS: lat,
		toIP:      mxIP,
		temporary: res.Temporary,
		typ:       res.Type,
	}
}

// senderSideBounce renders an NDR written by Coremail's own proxy (DNS
// failures and connection errors never reach the receiver MTA).
func (dc *dctx) senderSideBounce(msg *mail.Message, proxy *world.ProxyMTA, t time.Time, typ ndr.Type, code dns.RCode, mxHost string) attemptOutcome {
	idxs := ndr.NonAmbiguousTemplatesFor(typ)
	// Temporary DNS trouble uses the 4xx variant; NXDOMAIN the 5xx one.
	var idx int
	switch typ {
	case ndr.T2ReceiverDNS:
		if code == dns.ServFail || code == dns.Timeout {
			idx = pickByCodeClass(idxs, true, dc.rng)
		} else {
			idx = pickByCodeClass(idxs, false, dc.rng)
		}
	default:
		idx = idxs[dc.rng.IntN(len(idxs))]
	}
	tp := &ndr.Catalog[idx]
	if mxHost == "" {
		mxHost = "mx1." + msg.To.Domain
	}
	params := ndr.Params{
		Addr: msg.To.String(), Local: msg.To.Local, Domain: msg.To.Domain,
		IP: proxy.IP, MX: mxHost, Vendor: dc.vendor(),
		Sec: fmt.Sprintf("%d", 30+dc.rng.IntN(270)),
	}
	return attemptOutcome{
		reply:     tp.Render(params),
		latencyMS: 200 + int64(dc.rng.IntN(2500)),
		temporary: tp.Soft(),
		typ:       typ,
	}
}

func pickByCodeClass(idxs []int, temporary bool, r *simrng.RNG) int {
	var matching []int
	for _, i := range idxs {
		if ndr.Catalog[i].Soft() == temporary {
			matching = append(matching, i)
		}
	}
	if len(matching) == 0 {
		matching = idxs
	}
	return matching[r.IntN(len(matching))]
}

// sessionLatencyMS draws the SMTP session latency for a successful or
// policy-terminated session.
func (dc *dctx) sessionLatencyMS(proxy *world.ProxyMTA, d *world.ReceiverDomain, domain string) int64 {
	country := ""
	if d != nil {
		country = d.Country
	}
	median := dc.e.W.Geo.MedianLatencyMS(proxy.Region, country)
	v := dc.rng.LogNormal(math.Log(median), 0.55)
	if v < 400 {
		v = 400
	}
	if v > 590000 {
		v = 590000
	}
	return int64(v)
}

func (dc *dctx) vendor() string {
	return fmt.Sprintf("x%08x", uint32(dc.rng.Uint64()))
}

// recordHistory keeps the per-sender-domain recipient history the
// bulk-spammer detection rule needs (Section 4.2.1).
func (e *Engine) recordHistory(rec *dataset.Record) {
	dom := rec.FromDomain()
	e.histMu.Lock()
	if len(e.senderHistory[dom]) < 5000 {
		e.senderHistory[dom] = append(e.senderHistory[dom], rec.To)
	}
	e.histMu.Unlock()
}

// applyReports feeds buffered spamtrap hits to the shared blocklist.
// The blocklist draws its delist delay in call order, so callers must
// apply reports in deterministic sequence order.
func (e *Engine) applyReports(reports []spamReport) {
	for _, r := range reports {
		e.W.Blocklist.ReportSpam(r.ip, r.at)
	}
}

// SenderRecipients returns the recorded recipient history of a sender
// domain.
func (e *Engine) SenderRecipients(domain string) []string {
	e.histMu.Lock()
	defer e.histMu.Unlock()
	return e.senderHistory[domain]
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
