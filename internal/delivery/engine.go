// Package delivery executes email deliveries against a generated
// world: Coremail's random-proxy retry strategy on the sender side, and
// the full receiver-side policy gauntlet (DNS, TLS mandate, DNSBL,
// greylisting, rate limits, SPF/DKIM/DMARC, recipient existence, quota,
// size, content filtering) on the other. Every delivery produces a
// Figure-3 dataset record; the bounce-reason ground truth is returned
// separately for validation only and never enters the dataset.
package delivery

import (
	"fmt"
	"hash/fnv"
	"math"
	"strings"
	"sync"
	"time"

	"repro/internal/auth"
	"repro/internal/clock"
	"repro/internal/dataset"
	"repro/internal/dns"
	"repro/internal/greylist"
	"repro/internal/mail"
	"repro/internal/ndr"
	"repro/internal/simrng"
	"repro/internal/world"
)

// NumShards is the fixed number of receiver-domain partitions the
// engine's mutable state is split into. It is independent of the
// worker count: a worker owns every shard s with s % workers == its
// index, so the shard→state mapping (and therefore the dataset) never
// changes when the worker count does.
const NumShards = 16

// Engine drives deliveries. Create with New. The engine is safe for
// concurrent use through DeliverBatch/ParallelRun: mutable delivery
// state is partitioned into NumShards receiver-domain shards, each
// owned by exactly one worker goroutine per batch, and every
// submission draws from a private RNG stream derived from its message
// ID rather than from engine-call order. Any worker count therefore
// produces a byte-identical dataset for the same seed.
type Engine struct {
	W *world.World

	// MaxAttempts is Coremail's retry budget for Normal email; Spam is
	// delivered exactly once (Section 3.1).
	MaxAttempts int

	// PinProxy repeats the same proxy MTA for every retry of an email
	// instead of picking randomly — the greylist-friendly remediation
	// the paper says Coremail promised (ablation knob).
	PinProxy bool

	seedBase    uint64
	shards      [NumShards]*shard
	domainShard map[string]int // receiver domain -> shard (built from world ranks)

	histMu        sync.Mutex
	senderHistory map[string][]string // sender domain -> recipient addrs (for analysis substrates)
}

// shard holds the delivery state for one receiver-domain partition:
// the DNS resolver (its cache and transient-failure draws are
// order-sensitive, so each shard gets its own), the auth evaluators
// bound to that resolver, and the per-domain policy counters.
type shard struct {
	resolver *dns.Resolver
	spf      *auth.SPFEvaluator
	dkim     *auth.DKIMVerifier
	dmarc    *auth.DMARCEvaluator

	tlsLearned   map[uint64]bool // (proxy, domain) -> mandate learned
	perProxyHour map[uint64]int  // (domain, proxy, hour) inbound counter
	perUserDay   map[uint64]int  // (recipient, day) inbound counter
}

// New creates an engine over w with the default 5-attempt budget.
func New(w *world.World) *Engine {
	e := &Engine{
		W:             w,
		MaxAttempts:   5,
		seedBase:      w.Cfg.Seed ^ 0xde11ef27,
		domainShard:   make(map[string]int, len(w.Domains)),
		senderHistory: make(map[string][]string),
	}
	root := simrng.New(e.seedBase)
	for i := range e.shards {
		res := dns.NewResolver(w.DNS, root.Stream(fmt.Sprintf("shard:%d:resolver", i)))
		res.TransientFailProb = w.Cfg.TransientDNSFailProb
		e.shards[i] = &shard{
			resolver:     res,
			spf:          &auth.SPFEvaluator{Resolver: res},
			dkim:         &auth.DKIMVerifier{Resolver: res},
			dmarc:        &auth.DMARCEvaluator{Resolver: res},
			tlsLearned:   make(map[uint64]bool),
			perProxyHour: make(map[uint64]int),
			perUserDay:   make(map[uint64]int),
		}
	}
	// Spread known domains round-robin by popularity rank so the Zipf
	// head doesn't pile onto one shard; unknown (dead/typo) domains
	// fall back to hashing in shardOf.
	for _, d := range w.Domains {
		e.domainShard[d.Name] = d.Rank % NumShards
	}
	return e
}

// shardOf maps a receiver domain to its shard.
func (e *Engine) shardOf(domain string) int {
	if s, ok := e.domainShard[domain]; ok {
		return s
	}
	h := fnv.New64a()
	h.Write([]byte(domain))
	return int(h.Sum64() % NumShards)
}

// submissionRNG derives the private RNG stream for one submission from
// its stable message ID, so a delivery's randomness is independent of
// how deliveries interleave across workers.
func (e *Engine) submissionRNG(id string) *simrng.RNG {
	return simrng.New(e.seedBase).Stream("msg:" + id)
}

// Truth is the engine's ground-truth annotation for one delivered
// email: the bounce type of each failed attempt. Validation tests use
// it; the analysis pipeline never sees it.
type Truth struct {
	AttemptTypes []ndr.Type
}

// attemptOutcome is one delivery attempt's result.
type attemptOutcome struct {
	reply     string
	latencyMS int64
	toIP      string
	success   bool
	temporary bool
	typ       ndr.Type
}

// spamReport is a buffered spamtrap hit awaiting ordered application
// to the shared blocklist.
type spamReport struct {
	ip string
	at time.Time
}

// result is one delivered submission awaiting the ordered merge.
type result struct {
	rec     dataset.Record
	truth   Truth
	reports []spamReport
}

// dctx bundles everything one delivery touches: the engine, the
// receiver domain's shard, and the submission's private RNG stream.
// Spamtrap reports are buffered here so the caller can apply them to
// the shared blocklist in deterministic sequence order.
type dctx struct {
	e       *Engine
	sh      *shard
	rng     *simrng.RNG
	reports []spamReport
}

// Deliver executes the full delivery of one submission and returns its
// dataset record plus ground truth. Spamtrap reports and sender
// history are applied immediately; batch runs instead defer both to
// the ordered merge (see DeliverBatch).
func (e *Engine) Deliver(sub *world.Submission) (dataset.Record, Truth) {
	res := e.deliver(sub)
	e.recordHistory(&res.rec)
	e.applyReports(res.reports)
	return res.rec, res.truth
}

// deliver runs one submission with no cross-shard writes: blocklist
// reports and sender history are returned for the caller to apply.
func (e *Engine) deliver(sub *world.Submission) result {
	msg := sub.Msg
	dc := &dctx{
		e:   e,
		sh:  e.shards[e.shardOf(msg.To.Domain)],
		rng: e.submissionRNG(msg.ID),
	}
	maxAttempts := e.MaxAttempts
	if msg.IsSpam() {
		maxAttempts = 1 // "Coremail sends emails that are determined to be spam once"
	}
	rec := dataset.Record{
		From:      msg.From.String(),
		To:        msg.To.String(),
		StartTime: msg.QueuedAt,
		EmailFlag: string(msg.Flag),
	}
	var truth Truth
	t := msg.QueuedAt
	var pinned *world.ProxyMTA
	st := deliveryState{}
	for attempt := 0; attempt < maxAttempts; attempt++ {
		proxy := e.W.PickProxy(dc.rng)
		if e.PinProxy {
			if pinned == nil {
				pinned = proxy
			}
			proxy = pinned
		}
		st.first = attempt == 0
		out := dc.attempt(msg, proxy, t, &st)
		if out.typ == ndr.T4STARTTLS {
			// Coremail "immediately switches to using STARTTLS to
			// redeliver the email": later attempts of this message
			// negotiate TLS up front.
			st.forceTLS = true
		}
		rec.FromIP = append(rec.FromIP, proxy.IP)
		rec.ToIP = append(rec.ToIP, out.toIP)
		rec.DeliveryResult = append(rec.DeliveryResult, out.reply)
		rec.DeliveryLatency = append(rec.DeliveryLatency, out.latencyMS)
		truth.AttemptTypes = append(truth.AttemptTypes, out.typ)
		t = t.Add(time.Duration(out.latencyMS) * time.Millisecond)
		rec.EndTime = t
		if out.success || attempt == maxAttempts-1 {
			break
		}
		t = t.Add(dc.retryDelay(attempt))
	}
	return result{rec: rec, truth: truth, reports: dc.reports}
}

// retryDelay is Coremail's backoff schedule: minutes at first, hours
// later (soft-bounced emails average ~3 attempts over tens of minutes).
func (dc *dctx) retryDelay(attempt int) time.Duration {
	base := []time.Duration{
		7 * time.Minute, 22 * time.Minute, time.Hour, 3 * time.Hour,
	}
	d := base[minInt(attempt, len(base)-1)]
	jitter := 0.7 + 0.6*dc.rng.Float64()
	return time.Duration(float64(d) * jitter)
}

// attempt runs one delivery attempt through DNS, the network model,
// and the receiver's policy gauntlet.
// deliveryState carries per-message knowledge across retry attempts.
type deliveryState struct {
	first    bool
	forceTLS bool
}

func (dc *dctx) attempt(msg *mail.Message, proxy *world.ProxyMTA, t time.Time, st *deliveryState) attemptOutcome {
	w := dc.e.W

	rcvrDomain := msg.To.Domain

	// 1. Resolve the receiver's MX (T2 on failure).
	hosts, code := dc.sh.resolver.ResolveMX(rcvrDomain, t)
	if code != dns.NoError {
		return dc.senderSideBounce(msg, proxy, t, ndr.T2ReceiverDNS, code, "")
	}
	ips, code := dc.sh.resolver.ResolveA(hosts[0], t)
	if code != dns.NoError || len(ips) == 0 {
		return dc.senderSideBounce(msg, proxy, t, ndr.T2ReceiverDNS, code, hosts[0])
	}
	mxIP := ips[0]

	d := w.DomainByName[rcvrDomain]
	lat := dc.sessionLatencyMS(proxy, d, rcvrDomain)

	// 2. Network quality (T14 timeout / T15 interruption).
	country := ""
	if d != nil {
		country = d.Country
	} else if cc, _, ok := w.Geo.Lookup(mxIP); ok {
		country = cc
	}
	pTimeout := w.Geo.TimeoutProb(proxy.Region, country)
	if dc.rng.Bool(pTimeout) {
		out := dc.senderSideBounce(msg, proxy, t, ndr.T14Timeout, dns.NoError, hosts[0])
		out.toIP = mxIP
		out.latencyMS = 30000 + int64(dc.rng.IntN(270000))
		return out
	}
	if dc.rng.Bool(pTimeout * 0.45) {
		out := dc.senderSideBounce(msg, proxy, t, ndr.T15Interrupted, dns.NoError, hosts[0])
		out.toIP = mxIP
		out.latencyMS = lat / 2
		return out
	}

	// Mid-study dead domains (and other MX-resolvable hosts without a
	// live policy object) accept mail.
	if d == nil {
		return attemptOutcome{
			reply:     ndr.RenderSuccess(dc.rng.IntN(4), ndr.Params{Vendor: dc.vendor(), Domain: rcvrDomain}),
			latencyMS: lat, toIP: mxIP, success: true, typ: ndr.TNone,
		}
	}

	// 3. Receiver policy gauntlet. Each closure returns a non-zero type
	// on rejection; the first hit decides the reply.
	if typ, tmpl := dc.policyVerdict(msg, proxy, d, t, st); typ != ndr.TNone {
		out := dc.renderReceiverBounce(msg, proxy, d, typ, tmpl, lat, mxIP)
		return out
	}

	return attemptOutcome{
		reply:     ndr.RenderSuccess(int(dc.rng.Uint64()), ndr.Params{Vendor: dc.vendor(), Domain: rcvrDomain}),
		latencyMS: lat, toIP: mxIP, success: true, typ: ndr.TNone,
	}
}

// policyVerdict runs the receiver's checks in MTA order and returns the
// bounce type plus an optional template override (-1 = dialect pick).
func (dc *dctx) policyVerdict(msg *mail.Message, proxy *world.ProxyMTA, d *world.ReceiverDomain, t time.Time, st *deliveryState) (ndr.Type, int) {
	w := dc.e.W
	pol := &d.Policy

	// STARTTLS mandate (T4): Coremail starts in plaintext and learns
	// per proxy+domain (Section 4.3.1).
	// STARTTLS mandate (T4): Coremail starts in plaintext and learns the
	// mandate on first contact. High-volume domains get their mandate
	// propagated across a region's proxies (shared configuration); for
	// tail domains every proxy discovers it individually.
	if pol.TLS == world.TLSMandatory && !st.forceTLS {
		var key uint64
		if d.Rank < 100 {
			key = pairKey("tls", int(proxy.Region[0])<<8|int(proxy.Region[1]), d.Name, 0)
		} else {
			key = pairKey("tls", proxy.ID+1000, d.Name, 0)
		}
		if !dc.sh.tlsLearned[key] {
			dc.sh.tlsLearned[key] = true
			return ndr.T4STARTTLS, -1
		}
	}

	// DNSBL (T5).
	if pol.UsesDNSBL && !t.Before(pol.DNSBLFrom) && w.Blocklist.Listed(proxy.IP, t) {
		return ndr.T5Blocklisted, -1
	}

	// Greylisting (T6).
	if pol.Greylisting && d.Greylist != nil {
		v := d.Greylist.Check(proxy.IP, msg.From.String(), msg.To.String(), t)
		if v == greylist.Defer {
			return ndr.T6Greylisted, -1
		}
	}

	// Spamtraps fire once the sender is past connection-level blocks:
	// spam content reaching trap addresses damages the proxy's
	// reputation (drives Figure 6). The report is buffered and applied
	// to the shared blocklist at merge time, in sequence order.
	if msg.IsSpam() || d.Filter.Classify(msg.Tokens) {
		if dc.rng.Bool(w.TrapProb * proxy.TrapExposure * (pol.SpamtrapShare / 0.03)) {
			dc.reports = append(dc.reports, spamReport{ip: proxy.IP, at: t})
		}
	}

	// Source rate limiting (T7). Quota is consumed by fresh emails only
	// (retries re-test the limit without draining it, like a real MTA
	// rejecting at connection time).
	if pol.PerProxyHourlyLimit > 0 {
		key := pairKey("hr", proxy.ID, d.Name, clock.Day(t))
		if st.first {
			dc.sh.perProxyHour[key]++
		}
		if dc.sh.perProxyHour[key] > pol.PerProxyHourlyLimit {
			return ndr.T7TooFast, -1
		}
	}

	// Sender-domain DNS health (T1): the receiver resolves the MAIL
	// FROM domain for basic validation and SPF.
	senderDomain := msg.From.Domain
	if ans := dc.sh.resolver.Lookup(senderDomain, dns.TypeNS, t); ans.Code == dns.ServFail || ans.Code == dns.Timeout {
		return ndr.T1SenderDNS, -1
	}

	// Authentication (T3).
	if pol.EnforceAuth {
		if typ, tmpl := dc.authVerdict(msg, proxy, t); typ != ndr.TNone {
			return typ, tmpl
		}
	}

	// Recipient count (T10).
	if pol.MaxRcpts > 0 && msg.RcptCount > pol.MaxRcpts {
		return ndr.T10TooManyRcpts, -1
	}

	// Recipient existence (T8) / inactive accounts.
	mbox, ok := d.Users[msg.To.Local]
	if !ok {
		return ndr.T8NoSuchUser, -1
	}
	if mbox.InactiveAt(t) {
		return ndr.T8NoSuchUser, inactiveTemplate()
	}

	// Quota (T9).
	if mbox.FullAt(t) {
		return ndr.T9MailboxFull, -1
	}

	// Per-user and per-domain inbound rate (T11).
	if pol.UserDailyLimit > 0 {
		key := pairKey("ud", 0, msg.To.String(), clock.Day(t))
		if st.first {
			dc.sh.perUserDay[key]++
		}
		if dc.sh.perUserDay[key] > pol.UserDailyLimit {
			return ndr.T11RateLimited, -1
		}
	}
	if pol.DomainDailyLimit > 0 {
		key := pairKey("dd", 0, d.Name, clock.Day(t))
		if st.first {
			dc.sh.perUserDay[key]++
		}
		if dc.sh.perUserDay[key] > pol.DomainDailyLimit {
			return ndr.T11RateLimited, -1
		}
	}

	// Size (T12).
	if pol.MaxMsgSize > 0 && msg.SizeBytes > pol.MaxMsgSize {
		return ndr.T12TooLarge, -1
	}

	// Content (T13).
	if d.Filter.Classify(msg.Tokens) {
		return ndr.T13ContentSpam, -1
	}

	// Idiosyncratic rejections (T16: RFC-compliance pedantry, intrusion
	// prevention, and similar receiver quirks the paper catalogs).
	if pol.QuirkProb > 0 && dc.rng.Bool(pol.QuirkProb) {
		return ndr.T16Unknown, -1
	}
	return ndr.TNone, -1
}

// authVerdict evaluates SPF, DKIM and DMARC for the message.
func (dc *dctx) authVerdict(msg *mail.Message, proxy *world.ProxyMTA, t time.Time) (ndr.Type, int) {
	senderDomain := msg.From.Domain
	spfRes := dc.sh.spf.Evaluate(proxy.IP, senderDomain, t)

	var sd *world.SenderDomain
	for _, cand := range dc.e.W.SenderDomains {
		if cand.Name == senderDomain {
			sd = cand
			break
		}
	}
	dkimRes := auth.DKIMNone
	if sd != nil {
		dkimRes = dc.sh.dkim.Verify(sd.Signer.Sign(msg.ID), msg.ID, t)
	}
	if spfRes.Pass() || dkimRes.Pass() {
		return ndr.TNone, -1
	}
	if spfRes == auth.SPFTempError || dkimRes == auth.DKIMTempError {
		return ndr.T3AuthFail, tmplAuthBoth // temp 421 variant
	}
	dm := dc.sh.dmarc.Evaluate(senderDomain, spfRes, senderDomain, dkimRes, senderDomain, t)
	if dm.Found && dm.Policy == auth.DMARCReject && !dm.Aligned {
		return ndr.T3AuthFail, tmplAuthDMARC
	}
	// Neither mechanism passed; strict receivers bounce (the paper's
	// 42%/55% both-vs-either split emerges from how records break).
	if spfRes == auth.SPFFail && dkimRes == auth.DKIMFail {
		return ndr.T3AuthFail, tmplAuthBoth
	}
	return ndr.T3AuthFail, tmplAuthEither
}

// Template override markers resolved in renderReceiverBounce.
const (
	tmplAuthBoth   = -2
	tmplAuthEither = -3
	tmplAuthDMARC  = -4
)

// inactiveTemplate returns the catalog index of the "account inactive"
// T8 variant.
func inactiveTemplate() int {
	for _, i := range ndr.TemplatesFor(ndr.T8NoSuchUser) {
		if ndr.Catalog[i].Enh == (mail.EnhancedCode{Class: 5, Subject: 2, Detail: 1}) {
			return i
		}
	}
	return -1
}

// renderReceiverBounce renders the receiver's NDR for the decided type.
func (dc *dctx) renderReceiverBounce(msg *mail.Message, proxy *world.ProxyMTA, d *world.ReceiverDomain, typ ndr.Type, tmplOverride int, lat int64, mxIP string) attemptOutcome {
	idx := -1
	switch tmplOverride {
	case tmplAuthBoth:
		idx = findAuthTemplate("SPF and DKIM both")
	case tmplAuthEither:
		idx = findAuthTemplate("SPF or DKIM")
	case tmplAuthDMARC:
		idx = findAuthTemplate("DMARC policy")
	default:
		if tmplOverride >= 0 {
			idx = tmplOverride
		}
	}
	// Ambiguous-NDR domains obscure reception refusals (Table 6).
	if d.Policy.AmbiguousNDR && ambiguousEligible(typ) {
		idx = d.AmbiguousTemplate(dc.rng)
	}
	if idx < 0 {
		idx = d.TemplateFor(typ, dc.rng)
	}
	tp := &ndr.Catalog[idx]
	params := ndr.Params{
		Addr:   msg.To.String(),
		Local:  msg.To.Local,
		Domain: templateDomain(typ, msg, d),
		IP:     proxy.IP,
		MX:     d.MXHost,
		BL:     blName(d),
		Vendor: dc.vendor(),
		Sec:    "300",
		Size:   fmt.Sprintf("%d", d.Policy.MaxMsgSize),
	}
	return attemptOutcome{
		reply:     tp.Render(params),
		latencyMS: lat,
		toIP:      mxIP,
		temporary: tp.Soft(),
		typ:       typ,
	}
}

// templateDomain picks which domain name appears in the NDR text:
// sender-side identity types reference the sender domain.
func templateDomain(typ ndr.Type, msg *mail.Message, d *world.ReceiverDomain) string {
	switch typ {
	case ndr.T1SenderDNS, ndr.T3AuthFail:
		return msg.From.Domain
	case ndr.T4STARTTLS, ndr.T11RateLimited:
		return d.Name
	default:
		return msg.To.Domain
	}
}

func ambiguousEligible(typ ndr.Type) bool {
	switch typ {
	case ndr.T8NoSuchUser, ndr.T13ContentSpam, ndr.T11RateLimited,
		ndr.T5Blocklisted, ndr.T3AuthFail, ndr.T1SenderDNS:
		return true
	}
	return false
}

func findAuthTemplate(marker string) int {
	for _, i := range ndr.TemplatesFor(ndr.T3AuthFail) {
		if strings.Contains(ndr.Catalog[i].Text, marker) {
			return i
		}
	}
	return -1
}

// senderSideBounce renders an NDR written by Coremail's own proxy (DNS
// failures and connection errors never reach the receiver MTA).
func (dc *dctx) senderSideBounce(msg *mail.Message, proxy *world.ProxyMTA, t time.Time, typ ndr.Type, code dns.RCode, mxHost string) attemptOutcome {
	idxs := ndr.NonAmbiguousTemplatesFor(typ)
	// Temporary DNS trouble uses the 4xx variant; NXDOMAIN the 5xx one.
	var idx int
	switch typ {
	case ndr.T2ReceiverDNS:
		if code == dns.ServFail || code == dns.Timeout {
			idx = pickByCodeClass(idxs, true, dc.rng)
		} else {
			idx = pickByCodeClass(idxs, false, dc.rng)
		}
	default:
		idx = idxs[dc.rng.IntN(len(idxs))]
	}
	tp := &ndr.Catalog[idx]
	if mxHost == "" {
		mxHost = "mx1." + msg.To.Domain
	}
	params := ndr.Params{
		Addr: msg.To.String(), Local: msg.To.Local, Domain: msg.To.Domain,
		IP: proxy.IP, MX: mxHost, Vendor: dc.vendor(),
		Sec: fmt.Sprintf("%d", 30+dc.rng.IntN(270)),
	}
	return attemptOutcome{
		reply:     tp.Render(params),
		latencyMS: 200 + int64(dc.rng.IntN(2500)),
		temporary: tp.Soft(),
		typ:       typ,
	}
}

func pickByCodeClass(idxs []int, temporary bool, r *simrng.RNG) int {
	var matching []int
	for _, i := range idxs {
		if ndr.Catalog[i].Soft() == temporary {
			matching = append(matching, i)
		}
	}
	if len(matching) == 0 {
		matching = idxs
	}
	return matching[r.IntN(len(matching))]
}

// sessionLatencyMS draws the SMTP session latency for a successful or
// policy-terminated session.
func (dc *dctx) sessionLatencyMS(proxy *world.ProxyMTA, d *world.ReceiverDomain, domain string) int64 {
	country := ""
	if d != nil {
		country = d.Country
	}
	median := dc.e.W.Geo.MedianLatencyMS(proxy.Region, country)
	v := dc.rng.LogNormal(math.Log(median), 0.55)
	if v < 400 {
		v = 400
	}
	if v > 590000 {
		v = 590000
	}
	return int64(v)
}

// blName picks the blocklist the domain names in its T5 NDRs.
func blName(d *world.ReceiverDomain) string {
	h := fnv.New32a()
	h.Write([]byte(d.Name))
	switch h.Sum32() % 10 {
	case 0:
		return "SpamCop"
	case 1:
		return "Barracuda"
	default:
		return "Spamhaus"
	}
}

func (dc *dctx) vendor() string {
	return fmt.Sprintf("x%08x", uint32(dc.rng.Uint64()))
}

// recordHistory keeps the per-sender-domain recipient history the
// bulk-spammer detection rule needs (Section 4.2.1).
func (e *Engine) recordHistory(rec *dataset.Record) {
	dom := rec.FromDomain()
	e.histMu.Lock()
	if len(e.senderHistory[dom]) < 5000 {
		e.senderHistory[dom] = append(e.senderHistory[dom], rec.To)
	}
	e.histMu.Unlock()
}

// applyReports feeds buffered spamtrap hits to the shared blocklist.
// The blocklist draws its delist delay in call order, so callers must
// apply reports in deterministic sequence order.
func (e *Engine) applyReports(reports []spamReport) {
	for _, r := range reports {
		e.W.Blocklist.ReportSpam(r.ip, r.at)
	}
}

// SenderRecipients returns the recorded recipient history of a sender
// domain.
func (e *Engine) SenderRecipients(domain string) []string {
	e.histMu.Lock()
	defer e.histMu.Unlock()
	return e.senderHistory[domain]
}

func pairKey(kind string, a int, s string, b int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(kind))
	h.Write([]byte{byte(a), byte(a >> 8)})
	h.Write([]byte(s))
	var buf [4]byte
	buf[0], buf[1], buf[2], buf[3] = byte(b), byte(b>>8), byte(b>>16), byte(b>>24)
	h.Write(buf[:])
	return h.Sum64()
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
