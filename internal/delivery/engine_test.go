package delivery

import (
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/dataset"
	"repro/internal/mail"
	"repro/internal/ndr"
	"repro/internal/simrng"
	"repro/internal/spamfilter"
	"repro/internal/world"
)

func tinyEngine(t *testing.T) (*world.World, *Engine) {
	t.Helper()
	w := world.New(world.TinyConfig())
	return w, New(w)
}

// msgTo builds a normal message to the given recipient at study day 5.
func msgTo(to mail.Address, id string) *mail.Message {
	return &mail.Message{
		ID:        id,
		From:      mail.Address{Local: "tester", Domain: "senderdom.example"},
		To:        to,
		QueuedAt:  clock.StudyStart.AddDate(0, 0, 5).Add(10 * time.Hour),
		SizeBytes: 40_000,
		RcptCount: 1,
		Flag:      mail.FlagNormal,
		Tokens:    []string{"meeting", "agenda", "invoice", "timesheet"},
	}
}

func existingUser(w *world.World, name string) mail.Address {
	d := w.DomainByName[name]
	return mail.Address{Local: d.UserList[0], Domain: name}
}

// findDomain returns the first tail domain satisfying pred.
func findDomain(w *world.World, pred func(*world.ReceiverDomain) bool) *world.ReceiverDomain {
	for _, d := range w.Domains {
		if pred(d) {
			return d
		}
	}
	return nil
}

func TestRecordShapeConsistent(t *testing.T) {
	w, e := tinyEngine(t)
	for _, sub := range w.EmailsForDay(10) {
		rec, truth := e.Deliver(sub)
		n := rec.Attempts()
		if n == 0 || n > e.MaxAttempts {
			t.Fatalf("attempts = %d", n)
		}
		if len(rec.FromIP) != n || len(rec.ToIP) != n || len(rec.DeliveryLatency) != n ||
			len(truth.AttemptTypes) != n {
			t.Fatalf("parallel slices inconsistent: %d/%d/%d/%d/%d",
				n, len(rec.FromIP), len(rec.ToIP), len(rec.DeliveryLatency), len(truth.AttemptTypes))
		}
		if rec.EndTime.Before(rec.StartTime) {
			t.Fatal("EndTime before StartTime")
		}
		for _, l := range rec.DeliveryLatency {
			if l <= 0 {
				t.Fatalf("non-positive latency %d", l)
			}
		}
		for i, line := range rec.DeliveryResult {
			ok := strings.HasPrefix(line, "2")
			if (truth.AttemptTypes[i] == ndr.TNone) != ok {
				t.Fatalf("truth %v vs reply %q", truth.AttemptTypes[i], line)
			}
		}
	}
}

func TestSpamDeliveredOnce(t *testing.T) {
	w, e := tinyEngine(t)
	// Force a spam-flagged message to a ghost user: any failure must not
	// be retried.
	to := mail.Address{Local: "no-such-user-xyz", Domain: w.Domains[2].Name}
	msg := msgTo(to, "m-spam-1")
	msg.Flag = mail.FlagSpam
	rec, _ := e.Deliver(&world.Submission{Msg: msg})
	if rec.Attempts() != 1 {
		t.Errorf("spam attempted %d times, want 1", rec.Attempts())
	}
	if rec.BounceDegree() != dataset.HardBounced {
		t.Errorf("rejected spam should be hard-bounced")
	}
}

func TestGhostUserHardBounceT8(t *testing.T) {
	w, e := tinyEngine(t)
	// Pick a tail domain without ambiguous NDRs, DNSBL, greylisting, or
	// MX outages so the T8 path is clean.
	d := findDomain(w, func(d *world.ReceiverDomain) bool {
		p := d.Policy
		return d.Rank >= 11 && !p.AmbiguousNDR && !p.UsesDNSBL && !p.Greylisting &&
			p.TLS != world.TLSMandatory && len(d.MXOutages) == 0 && !p.EnforceAuth && p.QuirkProb == 0
	})
	if d == nil {
		t.Skip("no clean tail domain in tiny world")
	}
	msg := msgTo(mail.Address{Local: "definitely-not-a-user-q", Domain: d.Name}, "m-ghost")
	rec, truth := e.Deliver(&world.Submission{Msg: msg})
	if rec.BounceDegree() != dataset.HardBounced {
		t.Fatalf("ghost user: %v (%v)", rec.BounceDegree(), rec.DeliveryResult)
	}
	sawT8 := false
	for _, tt := range truth.AttemptTypes {
		if tt == ndr.T8NoSuchUser {
			sawT8 = true
		}
	}
	if !sawT8 {
		t.Errorf("no T8 in truth %v (results %v)", truth.AttemptTypes, rec.DeliveryResult)
	}
}

func TestTypoDomainNXDomainT2(t *testing.T) {
	_, e := tinyEngine(t)
	msg := msgTo(mail.Address{Local: "bob", Domain: "never-registered-typo.example"}, "m-typo")
	rec, truth := e.Deliver(&world.Submission{Msg: msg})
	if rec.BounceDegree() != dataset.HardBounced {
		t.Fatalf("typo domain should hard-bounce: %v", rec.DeliveryResult)
	}
	for _, tt := range truth.AttemptTypes {
		if tt != ndr.T2ReceiverDNS {
			t.Errorf("expected all T2, got %v", truth.AttemptTypes)
			break
		}
	}
	if !strings.Contains(strings.Join(rec.DeliveryResult, " "), "never-registered-typo.example") {
		t.Errorf("NDR should mention the failing domain: %v", rec.DeliveryResult)
	}
}

func TestMXOutageBouncesDuringWindow(t *testing.T) {
	w := world.New(world.DefaultConfig())
	e := New(w)
	d := findDomain(w, func(d *world.ReceiverDomain) bool { return len(d.MXOutages) > 0 })
	if d == nil {
		t.Fatal("no MX outages at default scale")
	}
	win := d.MXOutages[0]
	to := mail.Address{Local: d.UserList[0], Domain: d.Name}
	msg := msgTo(to, "m-mxout")
	msg.QueuedAt = win.From.Add(time.Minute)
	w.Resolver.Flush()
	rec, truth := e.Deliver(&world.Submission{Msg: msg})
	if truth.AttemptTypes[0] != ndr.T2ReceiverDNS {
		t.Errorf("during MX outage: %v (%v)", truth.AttemptTypes, rec.DeliveryResult)
	}
}

func TestMailboxFullT9(t *testing.T) {
	w := world.New(world.DefaultConfig())
	e := New(w)
	var d *world.ReceiverDomain
	var local string
	var at time.Time
	for _, cand := range w.Domains {
		p := cand.Policy
		if p.AmbiguousNDR || p.UsesDNSBL || p.Greylisting || p.TLS == world.TLSMandatory ||
			len(cand.MXOutages) > 0 || p.EnforceAuth || p.QuirkProb > 0 {
			continue
		}
		for _, l := range cand.UserList {
			m := cand.Users[l]
			if len(m.FullWindows) > 0 && m.InactiveFrom.IsZero() {
				mid := m.FullWindows[0].From.Add(12 * time.Hour)
				if mid.Before(clock.StudyEnd) {
					d, local, at = cand, l, mid
					break
				}
			}
		}
		if d != nil {
			break
		}
	}
	if d == nil {
		t.Skip("no clean full mailbox found")
	}
	msg := msgTo(mail.Address{Local: local, Domain: d.Name}, "m-full")
	msg.QueuedAt = at
	rec, truth := e.Deliver(&world.Submission{Msg: msg})
	sawT9 := false
	for _, tt := range truth.AttemptTypes {
		if tt == ndr.T9MailboxFull {
			sawT9 = true
		}
	}
	if !sawT9 {
		t.Errorf("full mailbox: %v (%v)", truth.AttemptTypes, rec.DeliveryResult)
	}
	if !strings.Contains(strings.ToLower(strings.Join(rec.DeliveryResult, " ")), "quota") &&
		!strings.Contains(strings.ToLower(strings.Join(rec.DeliveryResult, " ")), "full") &&
		!strings.Contains(strings.ToLower(strings.Join(rec.DeliveryResult, " ")), "storage") &&
		!strings.Contains(strings.ToLower(strings.Join(rec.DeliveryResult, " ")), "disk space") {
		t.Errorf("T9 NDR text: %v", rec.DeliveryResult)
	}
}

func TestTLSMandateLearnedOnce(t *testing.T) {
	w, e := tinyEngine(t)
	d := findDomain(w, func(d *world.ReceiverDomain) bool {
		return d.Policy.TLS == world.TLSMandatory && len(d.MXOutages) == 0 &&
			!d.Policy.UsesDNSBL && !d.Policy.Greylisting
	})
	if d == nil {
		t.Skip("no TLS-mandating domain in tiny world")
	}
	to := mail.Address{Local: "tlsuser", Domain: d.Name}
	if len(d.UserList) > 0 {
		to.Local = d.UserList[0]
	}
	msg := msgTo(to, "m-tls-1")
	rec, truth := e.Deliver(&world.Submission{Msg: msg})
	if truth.AttemptTypes[0] != ndr.T4STARTTLS {
		t.Fatalf("first contact should be T4: %v (%v)", truth.AttemptTypes, rec.DeliveryResult)
	}
	// Coremail switches to STARTTLS immediately: within one delivery, T4
	// must not repeat.
	for i := 1; i < len(truth.AttemptTypes); i++ {
		if truth.AttemptTypes[i] == ndr.T4STARTTLS {
			t.Errorf("T4 repeated after switch: %v", truth.AttemptTypes)
		}
	}
	// And a second message to the same domain must not see T4 at all
	// (mandate learned at least region-wide; pin to the same proxy by
	// retrying enough).
	msg2 := msgTo(to, "m-tls-2")
	sawT4 := 0
	for i := 0; i < 10; i++ {
		_, tr := e.Deliver(&world.Submission{Msg: msg2})
		for _, tt := range tr.AttemptTypes {
			if tt == ndr.T4STARTTLS {
				sawT4++
			}
		}
	}
	// A few T4s are expected while the remaining regions learn, but the
	// mandate must not keep bouncing forever.
	if sawT4 > 6 {
		t.Errorf("mandate never learned: %d T4s across retries", sawT4)
	}
}

func TestBlocklistedProxyT5(t *testing.T) {
	w, e := tinyEngine(t)
	d := findDomain(w, func(d *world.ReceiverDomain) bool {
		return d.Policy.UsesDNSBL && !d.Policy.DNSBLFrom.After(clock.StudyStart) &&
			len(d.MXOutages) == 0 && d.Rank >= 11 && !d.Policy.AmbiguousNDR && !d.Policy.EnforceAuth
	})
	if d == nil {
		d = w.DomainByName["yahoo.com"]
	}
	// List every proxy so the first attempt must hit a listed one.
	at := clock.StudyStart.AddDate(0, 0, 5)
	for _, p := range w.Proxies {
		w.Blocklist.ReportSpam(p.IP, at.Add(-time.Hour))
	}
	to := existingUser(w, d.Name)
	msg := msgTo(to, "m-bl")
	msg.QueuedAt = at
	rec, truth := e.Deliver(&world.Submission{Msg: msg})
	sawT5 := false
	for _, tt := range truth.AttemptTypes {
		if tt == ndr.T5Blocklisted {
			sawT5 = true
		}
	}
	if !sawT5 {
		t.Errorf("all proxies listed, no T5: %v (%v)", truth.AttemptTypes, rec.DeliveryResult)
	}
}

func TestAmbiguousDomainRepliesAccessDenied(t *testing.T) {
	w, e := tinyEngine(t)
	d := w.DomainByName["hotmail.com"] // always AmbiguousNDR
	// Use a real customer domain so authentication passes and the ghost
	// user is what bounces.
	var from mail.Address
	for _, sd := range w.SenderDomains {
		if !sd.AlwaysBrokenAuth && len(sd.AuthBreakWindows) == 0 && len(sd.DNSOutages) == 0 {
			from = mail.Address{Local: "real", Domain: sd.Name}
			break
		}
	}
	msg := msgTo(mail.Address{Local: "ghost-user-zzz", Domain: d.Name}, "m-amb")
	msg.From = from
	rec, _ := e.Deliver(&world.Submission{Msg: msg})
	joined := strings.Join(rec.DeliveryResult, " ")
	if !strings.Contains(joined, "Access denied. AS(201806281)") &&
		!strings.Contains(joined, "local policy") &&
		!strings.Contains(joined, "rejected by recipients") &&
		!strings.Contains(joined, "Not allowed") &&
		!strings.Contains(joined, "Relay access denied") {
		t.Errorf("ambiguous domain gave informative NDR: %v", rec.DeliveryResult)
	}
}

func TestPinProxyHelpsGreylisting(t *testing.T) {
	// With PinProxy the greylist tuple repeats and the email lands on the
	// retry; with random proxies it usually keeps deferring (the paper's
	// Coremail remediation, ablation-benched).
	run := func(pin bool) int {
		w := world.New(world.TinyConfig())
		e := New(w)
		e.PinProxy = pin
		d := findDomain(w, func(d *world.ReceiverDomain) bool { return d.Policy.Greylisting })
		if d == nil {
			t.Skip("no greylisting domain in tiny world")
		}
		success := 0
		for i := 0; i < 40; i++ {
			to := existingUser(w, d.Name)
			msg := msgTo(to, "m-gl-"+string(rune('a'+i%26))+string(rune('a'+i/26)))
			rec, _ := e.Deliver(&world.Submission{Msg: msg})
			if rec.Succeeded() {
				success++
			}
		}
		return success
	}
	pinned := run(true)
	random := run(false)
	if pinned <= random {
		t.Errorf("pinned proxy success %d <= random %d", pinned, random)
	}
}

func TestDeterministicDelivery(t *testing.T) {
	build := func() []dataset.Record {
		w := world.New(world.TinyConfig())
		e := New(w)
		var out []dataset.Record
		for _, sub := range w.EmailsForDay(3) {
			rec, _ := e.Deliver(sub)
			out = append(out, rec)
		}
		return out
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].To != b[i].To || a[i].FinalResult() != b[i].FinalResult() ||
			a[i].Attempts() != b[i].Attempts() {
			t.Fatalf("record %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestOversizedMessageT12(t *testing.T) {
	w, e := tinyEngine(t)
	d := findDomain(w, func(d *world.ReceiverDomain) bool {
		p := d.Policy
		return d.Rank >= 11 && p.MaxMsgSize > 0 && p.MaxMsgSize < 10<<20 &&
			!p.AmbiguousNDR && !p.UsesDNSBL && !p.Greylisting && p.TLS != world.TLSMandatory &&
			len(d.MXOutages) == 0 && !p.EnforceAuth
	})
	if d == nil {
		t.Skip("no strict-size domain in tiny world")
	}
	to := existingUser(w, d.Name)
	msg := msgTo(to, "m-big")
	msg.SizeBytes = 60 << 20
	_, truth := e.Deliver(&world.Submission{Msg: msg})
	sawT12 := false
	for _, tt := range truth.AttemptTypes {
		if tt == ndr.T12TooLarge {
			sawT12 = true
		}
	}
	if !sawT12 {
		t.Errorf("oversized message: %v", truth.AttemptTypes)
	}
}

func TestSpamContentT13(t *testing.T) {
	w, e := tinyEngine(t)
	d := findDomain(w, func(d *world.ReceiverDomain) bool {
		p := d.Policy
		return d.Rank >= 11 && !p.AmbiguousNDR && !p.UsesDNSBL && !p.Greylisting &&
			p.TLS != world.TLSMandatory && len(d.MXOutages) == 0 && !p.EnforceAuth
	})
	if d == nil {
		t.Skip("no clean domain")
	}
	rng := simrngForTest()
	to := existingUser(w, d.Name)
	msg := msgTo(to, "m-spamy")
	msg.Tokens = spamfilter.GenerateTokens(rng, 0.98, 16)
	// Flag stays Normal so retries happen; every attempt should hit T13
	// (or rate/trap noise) and end hard.
	rec, truth := e.Deliver(&world.Submission{Msg: msg})
	sawT13 := false
	for _, tt := range truth.AttemptTypes {
		if tt == ndr.T13ContentSpam {
			sawT13 = true
		}
	}
	if !sawT13 {
		t.Errorf("spammy content not rejected: %v (%v)", truth.AttemptTypes, rec.DeliveryResult)
	}
}

func TestRunProducesFullCorpus(t *testing.T) {
	w := world.New(world.TinyConfig())
	e := New(w)
	n := 0
	e.Run(func(rec dataset.Record, sub *world.Submission, truth Truth) { n++ })
	if n < w.Cfg.TotalEmails*85/100 {
		t.Errorf("Run produced %d records, want ≈%d", n, w.Cfg.TotalEmails)
	}
}

func TestSenderHistoryRecorded(t *testing.T) {
	w, e := tinyEngine(t)
	sub := w.EmailsForDay(2)[0]
	e.Deliver(sub)
	hist := e.SenderRecipients(sub.Msg.From.Domain)
	if len(hist) == 0 || hist[0] != sub.Msg.To.String() {
		t.Errorf("sender history not recorded: %v", hist)
	}
}

func simrngForTest() *simrng.RNG { return simrng.New(77) }
