package delivery

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"testing"

	"repro/internal/dataset"
	"repro/internal/world"
)

// runHash delivers the full tiny workload with the given worker count
// on a fresh world and returns an FNV hash of the serialized dataset
// plus the record count. Worlds cannot be reused: workload generation
// consumes their RNG streams.
func runHash(t *testing.T, workers int) (uint64, int) {
	t.Helper()
	w := world.New(world.TinyConfig())
	e := New(w)
	h := fnv.New64a()
	n := 0
	e.ParallelRun(workers, func(rec dataset.Record, _ *world.Submission, truth Truth) {
		b, err := json.Marshal(&rec)
		if err != nil {
			t.Fatal(err)
		}
		h.Write(b)
		fmt.Fprintf(h, "|%v\n", truth.AttemptTypes)
		n++
	})
	return h.Sum64(), n
}

// TestParallelRunWorkerInvariance is the tentpole guarantee: the same
// seed must produce a byte-identical record stream (and truth stream)
// for any worker count.
func TestParallelRunWorkerInvariance(t *testing.T) {
	baseHash, baseN := runHash(t, 1)
	if baseN == 0 {
		t.Fatal("no records delivered")
	}
	for _, workers := range []int{2, 4, 8} {
		h, n := runHash(t, workers)
		if n != baseN {
			t.Fatalf("workers=%d delivered %d records, workers=1 delivered %d", workers, n, baseN)
		}
		if h != baseHash {
			t.Fatalf("workers=%d dataset hash %x != workers=1 hash %x", workers, h, baseHash)
		}
	}
}

// TestRunMatchesParallelRun pins Run to the one-worker batch path:
// both must emit identical streams record by record.
func TestRunMatchesParallelRun(t *testing.T) {
	collect := func(run func(*Engine, func(dataset.Record, *world.Submission, Truth))) []dataset.Record {
		w := world.New(world.TinyConfig())
		e := New(w)
		var out []dataset.Record
		run(e, func(rec dataset.Record, _ *world.Submission, _ Truth) {
			out = append(out, rec)
		})
		return out
	}
	serial := collect(func(e *Engine, f func(dataset.Record, *world.Submission, Truth)) { e.Run(f) })
	parallel := collect(func(e *Engine, f func(dataset.Record, *world.Submission, Truth)) { e.ParallelRun(4, f) })
	if len(serial) != len(parallel) {
		t.Fatalf("Run emitted %d records, ParallelRun(4) %d", len(serial), len(parallel))
	}
	for i := range serial {
		a, _ := json.Marshal(&serial[i])
		b, _ := json.Marshal(&parallel[i])
		if string(a) != string(b) {
			t.Fatalf("record %d differs:\nRun:            %s\nParallelRun(4): %s", i, a, b)
		}
	}
}

// TestDeliverBatchOrderPreserved checks the merge hands records back in
// submission order even when many workers race.
func TestDeliverBatchOrderPreserved(t *testing.T) {
	w := world.New(world.TinyConfig())
	e := New(w)
	subs := w.EmailsForDay(10)
	if len(subs) == 0 {
		t.Skip("empty day")
	}
	i := 0
	e.DeliverBatch(subs, 8, func(rec dataset.Record, sub *world.Submission, _ Truth) {
		if sub != subs[i] {
			t.Fatalf("position %d: got submission %s, want %s", i, sub.Msg.ID, subs[i].Msg.ID)
		}
		if rec.To != sub.Msg.To.String() {
			t.Fatalf("position %d: record To %q does not match submission %q", i, rec.To, sub.Msg.To)
		}
		i++
	})
	if i != len(subs) {
		t.Fatalf("consumed %d of %d submissions", i, len(subs))
	}
}

// TestShardAssignmentStable pins the domain→shard mapping properties
// the determinism argument rests on: ranked domains spread round-robin
// and unknown domains hash consistently.
func TestShardAssignmentStable(t *testing.T) {
	w := world.New(world.TinyConfig())
	e := New(w)
	for _, d := range w.Domains {
		if got, want := e.shardOf(d.Name), d.Rank%NumShards; got != want {
			t.Fatalf("domain %s (rank %d): shard %d, want %d", d.Name, d.Rank, got, want)
		}
	}
	if a, b := e.shardOf("unknown-domain.example"), e.shardOf("unknown-domain.example"); a != b {
		t.Fatalf("unstable hash shard: %d vs %d", a, b)
	}
}

// TestParallelRunCtxCancelStopsEarlyWithCleanPrefix: cancelling
// mid-run must stop at a day boundary, return the context error, and
// leave a record prefix identical to the uncancelled run's.
func TestParallelRunCtxCancelStopsEarlyWithCleanPrefix(t *testing.T) {
	w := world.New(world.TinyConfig())
	e := New(w)
	var full []dataset.Record
	e.ParallelRun(2, func(rec dataset.Record, _ *world.Submission, _ Truth) {
		full = append(full, rec)
	})

	w2 := world.New(world.TinyConfig())
	e2 := New(w2)
	ctx, cancel := context.WithCancel(context.Background())
	stopAt := len(full) / 3
	var partial []dataset.Record
	err := e2.ParallelRunCtx(ctx, 2, func(rec dataset.Record, _ *world.Submission, _ Truth) {
		partial = append(partial, rec)
		if len(partial) == stopAt {
			cancel()
		}
	})
	if err != context.Canceled {
		t.Fatalf("ParallelRunCtx returned %v, want context.Canceled", err)
	}
	if len(partial) >= len(full) {
		t.Fatalf("cancelled run delivered the full workload (%d records)", len(partial))
	}
	if len(partial) < stopAt {
		t.Fatalf("cancelled run delivered %d records, fewer than the %d before cancel", len(partial), stopAt)
	}
	for i := range partial {
		a, _ := json.Marshal(partial[i])
		b, _ := json.Marshal(full[i])
		if string(a) != string(b) {
			t.Fatalf("record %d differs between cancelled and full run", i)
		}
	}
}
