package delivery

import (
	"context"
	"sync"

	"repro/internal/clock"
	"repro/internal/dataset"
	"repro/internal/world"
)

// DeliverBatch delivers one scheduling batch (normally a study day)
// across workers goroutines and hands results to consume in submission
// order.
//
// Determinism: each worker owns the shards s with s % workers == its
// index and processes that subset of subs in slice order, so every
// shard sees its submissions in global sequence order no matter how
// many workers run. Cross-shard state — sender history and blocklist
// spam reports — is buffered per delivery and applied in a single
// ordered merge after the barrier, which also means all deliveries in
// a batch observe the blocklist as of batch start (spamtrap listings
// propagate at the next batch, like a real DNSBL's publication delay).
func (e *Engine) DeliverBatch(subs []*world.Submission, workers int, consume func(rec dataset.Record, sub *world.Submission, truth Truth)) {
	if len(subs) == 0 {
		return
	}
	if workers < 1 {
		workers = 1
	}
	if workers > NumShards {
		workers = NumShards
	}
	results := make([]result, len(subs))
	if workers == 1 {
		for i, sub := range subs {
			results[i] = e.deliver(sub)
		}
	} else {
		shards := make([]int, len(subs))
		for i, sub := range subs {
			shards[i] = e.shardOf(sub.Msg.To.Domain)
		}
		var wg sync.WaitGroup
		for wk := 0; wk < workers; wk++ {
			wg.Add(1)
			go func(wk int) {
				defer wg.Done()
				for i, sub := range subs {
					if shards[i]%workers == wk {
						results[i] = e.deliver(sub)
					}
				}
			}(wk)
		}
		wg.Wait()
	}
	// Ordered merge: cross-shard state mutates in global sequence
	// order regardless of which worker produced each record.
	for i := range results {
		res := &results[i]
		e.recordHistory(&res.rec)
		e.applyReports(res.reports)
		if consume != nil {
			consume(res.rec, subs[i], res.truth)
		}
	}
}

// ParallelRun delivers the whole 15-month workload in chronological
// order across workers goroutines, passing each record to consume in
// submission order. Workload generation stays serial (it mutates the
// world); each day's submissions fan out to the shard workers and
// merge back deterministically, so any worker count produces a
// byte-identical dataset for the same seed.
func (e *Engine) ParallelRun(workers int, consume func(rec dataset.Record, sub *world.Submission, truth Truth)) {
	e.ParallelRunCtx(context.Background(), workers, consume)
}

// ParallelRunCtx is ParallelRun with cancellation: the run stops at
// the next day-batch boundary once ctx is done (a day is well under a
// second of wall time at any configured scale, so Ctrl-C feels
// immediate) and returns ctx's error. Every record consumed before
// cancellation is exactly the record an uncancelled run would have
// produced — stopping early never reorders or alters the prefix.
func (e *Engine) ParallelRunCtx(ctx context.Context, workers int, consume func(rec dataset.Record, sub *world.Submission, truth Truth)) error {
	for day := 0; day < clock.StudyDays; day++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		e.DeliverBatch(e.W.EmailsForDay(day), workers, consume)
	}
	return nil
}

// Run delivers the whole 15-month workload single-threaded; it is
// ParallelRun with one worker and shares the same batch semantics.
func (e *Engine) Run(consume func(rec dataset.Record, sub *world.Submission, truth Truth)) {
	e.ParallelRun(1, consume)
}
