// Package store is the durability layer behind bounced: a pluggable
// storage engine holding a segment-rotated write-ahead log of ingested
// records plus periodic checkpoints of opaque, named state sections
// (the analysis layer owns their encoding; the engine never looks
// inside). The lifecycle is
//
//	eng := store.Open(...)          // filesystem engine
//	cp, _ := eng.Recover()          // newest decodable checkpoint
//	eng.Tail(cp.Records, apply)     // replay records the checkpoint missed
//	eng.Append(batch)               // WAL ahead of every ack, from here on
//	eng.Checkpoint(cp)              // off the hot path, prunes the log
//
// The contract that makes crash recovery byte-identical: Append order
// is replay order (template mining is order-deterministic), a batch is
// one atomic unit (replay sees all of it or none of it), and a torn
// trailing write — the crash signature — is truncated away rather than
// failing recovery. See DESIGN.md §11.
package store

import (
	"errors"
	"fmt"

	"repro/internal/dataset"
)

// ErrTailTruncated reports that a tail read asked for records older
// than the oldest retained WAL segment — checkpoint pruning already
// discarded them. A replication follower that sees it must fall back
// to a full checkpoint fetch; a recovery that sees it has a data dir
// whose checkpoint and WAL disagree (operator error, not crash
// damage). Match with errors.Is.
var ErrTailTruncated = errors.New("store: tail truncated (records pruned below requested index)")

// ErrStopTail, returned by a ReadTail callback, ends the scan early
// without error — the unit that returned it still counts as delivered.
var ErrStopTail = errors.New("store: stop tail")

// RawBatch is one atomic WAL unit in wire form: a committed client
// batch (ID, one payload per record) or a single bare record (ID "",
// one payload). Payloads are the NDJSON bytes exactly as appended, so
// replication ships them without a decode/re-encode round trip. The
// payload slices are only valid during the ReadTail callback.
type RawBatch struct {
	ID       string
	Payloads [][]byte
}

// Batch is one atomic append: either a client batch with its
// idempotency key, or a single bare record (ID ""). Replay never
// surfaces a batch partially — a crash between its first record and
// its commit marker discards it, which is exactly right because the
// ack the client retries on was never sent.
type Batch struct {
	ID      string
	Records []dataset.Record
}

// Checkpoint is a point-in-time capture of everything above the WAL,
// valid at a record boundary: Sections reflect exactly the first
// Records entries of the log, so recovery replays the tail from there.
type Checkpoint struct {
	Records  uint64
	Sections map[string][]byte
}

// TailInfo summarizes a Tail replay.
type TailInfo struct {
	// Replayed is how many records the apply callback received.
	Replayed int
	// NextIndex is the total number of records in the log after the
	// scan — the index the next Append assigns.
	NextIndex uint64
	// Batches maps committed batch IDs whose records intersect the
	// replayed range to their record counts, so the caller can restore
	// idempotency state for batches newer than the checkpoint.
	Batches map[string]int
	// DroppedUncommitted counts records discarded from a trailing batch
	// whose commit marker never hit the disk (the batch was never
	// acked; the client will retry it).
	DroppedUncommitted int
	// TornTruncated reports that a torn or corrupt trailing frame was
	// cut from the last segment (or skipped, in read-only mode).
	TornTruncated bool
}

// Engine is the storage abstraction. The filesystem implementation
// lives in this package; the interface is what a SQLite/Postgres
// backend would implement instead. Methods are safe for concurrent use
// unless noted; the expected call order is Recover, Tail, then Append/
// Sync/Rotate/Checkpoint freely.
type Engine interface {
	// Recover returns the newest decodable checkpoint, or nil when none
	// exists. Corrupt checkpoints are skipped with a warning in favor of
	// older ones.
	Recover() (*Checkpoint, error)
	// Tail replays records [from, end-of-log) in append order. The
	// record pointer is only valid during the callback — copy to keep.
	// Must run once before the first Append (it establishes the next
	// record index and repairs a torn tail).
	Tail(from uint64, apply func(index uint64, rec *dataset.Record) error) (TailInfo, error)
	// Append writes one batch to the WAL as an atomic unit and flushes
	// it to the OS (surviving process death; Sync covers power loss).
	Append(b Batch) error
	// Sync makes previous appends durable per the engine's fsync mode.
	// Call before acking when batching fsyncs.
	Sync() error
	// Rotate seals the active WAL segment; the next append starts a
	// fresh one.
	Rotate() error
	// Checkpoint atomically persists cp and prunes WAL segments wholly
	// covered by the retained checkpoints.
	Checkpoint(cp *Checkpoint) error
	// ReadTail scans committed units [from, end-of-log) in append order
	// without mutating anything: no torn-tail truncation, no recovery
	// state. It is the replication read path — safe to call repeatedly
	// and concurrently with Append. The scan stops silently at the first
	// incomplete or damaged frame (the writer may still be flushing it)
	// and returns the index one past the last unit delivered. A unit may
	// straddle `from` when `from` is a mid-batch checkpoint boundary; the
	// callback receives the whole unit with its true start index and
	// skips the prefix itself. Returns ErrTailTruncated when `from`
	// predates the oldest retained segment. The callback may return
	// ErrStopTail to end the scan early without error.
	ReadTail(from uint64, apply func(start uint64, b RawBatch) error) (uint64, error)
	// Reset discards the entire log and all checkpoints and restarts the
	// record index at next — a replication follower resynchronizing onto
	// a fetched checkpoint. The engine is recovered (appendable) after.
	Reset(next uint64) error
	// Stats reports durability counters for /v1/stats and /metrics.
	Stats() Stats
	Close() error
}

// FsyncMode selects when the WAL calls fsync.
type FsyncMode int

const (
	// FsyncBatch syncs once per Sync call (per acked ingest batch) —
	// the default: group commit, bounded loss only on power failure.
	FsyncBatch FsyncMode = iota
	// FsyncAlways syncs inside every Append.
	FsyncAlways
	// FsyncOff never syncs; flush-to-OS still survives kill -9.
	FsyncOff
)

func (m FsyncMode) String() string {
	switch m {
	case FsyncAlways:
		return "always"
	case FsyncOff:
		return "off"
	default:
		return "batch"
	}
}

// ParseFsyncMode parses the -fsync flag values.
func ParseFsyncMode(s string) (FsyncMode, error) {
	switch s {
	case "batch", "":
		return FsyncBatch, nil
	case "always":
		return FsyncAlways, nil
	case "off":
		return FsyncOff, nil
	}
	return FsyncBatch, fmt.Errorf("store: unknown fsync mode %q (want always, batch, or off)", s)
}

// FsyncBounds are the fsync latency histogram bucket upper bounds in
// nanoseconds (2µs doubling to ~16ms, +Inf implied), exported so the
// metrics endpoint can render the histogram.
var FsyncBounds = func() []int64 {
	b := make([]int64, 14)
	for i := range b {
		b[i] = 2000 << i
	}
	return b
}()

// Stats is a point-in-time snapshot of engine counters. Counters are
// per-process (they reset on restart, like every bounced counter);
// gauges (Segments, WALBytes, NextIndex, LastCheckpoint*) describe the
// on-disk state.
type Stats struct {
	Segments        int
	WALBytes        int64
	NextIndex       uint64
	AppendedRecords uint64
	AppendedBatches uint64
	Fsyncs          uint64
	FsyncNanos      int64
	// FsyncHist has len(FsyncBounds)+1 buckets; the last is +Inf.
	FsyncHist             []uint64
	Checkpoints           uint64
	LastCheckpointRecords uint64
	LastCheckpointUnix    int64
	PrunedSegments        uint64
}
