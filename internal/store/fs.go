package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/dataset"
)

// Filesystem engine. On-disk layout under Dir:
//
//	wal/seg-<first-index hex>.wal    segment-rotated record log
//	checkpoint/cp-<records hex>.ckpt atomic state snapshots
//
// A segment is a 13-byte header (magic "BWAL", version, first record
// index) followed by frames: [kind u8][payload len uvarint][crc32c u32
// LE over kind+payload][payload]. Kind 1 is one record (its NDJSON wire
// form — the same bytes HTTP ingest carries, decoded on replay by the
// fast-path decoder); kinds 2/3 bracket a client batch with its
// idempotency key, making the batch atomic under crash replay. A batch
// group never spans segments. Frames are flushed to the OS before
// Append returns (kill -9 loses nothing acked); fsync placement is the
// FsyncMode's call.
//
// Checkpoints are written tmp → fsync → rename → dir fsync, so a crash
// leaves either the old set or the new set, never a half file; a
// whole-file CRC catches torn tmp leftovers and bit rot. The newest
// KeepCheckpoints stay; WAL segments wholly below the oldest retained
// checkpoint are pruned.
const (
	walMagic    = "BWAL"
	ckptMagic   = "BCKP"
	walVersion  = 1
	ckptVersion = 1

	frameRecord byte = 1
	frameBegin  byte = 2
	frameCommit byte = 3

	segHeaderSize = 4 + 1 + 8
	maxFrameBytes = 1 << 30

	defaultSegmentBytes    = 64 << 20
	defaultKeepCheckpoints = 2
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// FSOptions configures Open.
type FSOptions struct {
	Dir string
	// SegmentBytes rotates the WAL once the active segment reaches this
	// size (default 64 MiB). A batch group is never split: the segment
	// that starts it finishes it.
	SegmentBytes int64
	Mode         FsyncMode
	// ReadOnly opens the store for offline analysis: no truncation of
	// torn tails, no appends, no checkpoints.
	ReadOnly bool
	// KeepCheckpoints retains the newest N checkpoints (default 2), so
	// a checkpoint corrupted in flight still leaves a fallback.
	KeepCheckpoints int
	// Logf receives recovery warnings (torn tails, dropped batches,
	// skipped checkpoints); default log.Printf.
	Logf func(format string, args ...any)
}

// FS is the filesystem Engine.
type FS struct {
	opts    FSOptions
	walDir  string
	ckptDir string
	logf    func(format string, args ...any)

	mu        sync.Mutex
	recovered bool // Tail ran; nextIndex is authoritative
	closed    bool
	nextIndex uint64
	seg       *os.File
	segW      *bufio.Writer
	segBytes  int64
	segments  int
	walBytes  int64
	scratch   []byte

	appendedRecords uint64
	appendedBatches uint64
	fsyncs          uint64
	fsyncNanos      int64
	fsyncHist       []uint64
	checkpoints     uint64
	lastCPRecords   uint64
	lastCPUnix      int64
	pruned          uint64

	cpMu sync.Mutex // serializes checkpoint file IO, off the append path
}

// Open opens (creating, unless ReadOnly) the store directory. Call
// Recover and Tail before the first Append.
func Open(opts FSOptions) (*FS, error) {
	if opts.Dir == "" {
		return nil, errors.New("store: empty data dir")
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegmentBytes
	}
	if opts.KeepCheckpoints <= 0 {
		opts.KeepCheckpoints = defaultKeepCheckpoints
	}
	f := &FS{
		opts:      opts,
		walDir:    filepath.Join(opts.Dir, "wal"),
		ckptDir:   filepath.Join(opts.Dir, "checkpoint"),
		logf:      opts.Logf,
		fsyncHist: make([]uint64, len(FsyncBounds)+1),
	}
	if f.logf == nil {
		f.logf = log.Printf
	}
	if opts.ReadOnly {
		if _, err := os.Stat(opts.Dir); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		return f, nil
	}
	for _, d := range []string{opts.Dir, f.walDir, f.ckptDir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	return f, nil
}

// Mode reports the engine's fsync mode.
func (f *FS) Mode() FsyncMode { return f.opts.Mode }

type segInfo struct {
	path  string
	first uint64
	size  int64
}

func (f *FS) listSegments() ([]segInfo, error) {
	ents, err := os.ReadDir(f.walDir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var segs []segInfo
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".wal") {
			continue
		}
		first, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), ".wal"), 16, 64)
		if err != nil {
			f.logf("store: ignoring unparseable segment name %q", name)
			continue
		}
		fi, err := e.Info()
		if err != nil {
			if os.IsNotExist(err) {
				continue // pruned between ReadDir and stat
			}
			return nil, err
		}
		segs = append(segs, segInfo{path: filepath.Join(f.walDir, name), first: first, size: fi.Size()})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	return segs, nil
}

type cpInfo struct {
	path    string
	records uint64
	mtime   time.Time
}

func (f *FS) listCheckpoints() ([]cpInfo, error) {
	ents, err := os.ReadDir(f.ckptDir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var cps []cpInfo
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, "cp-") || !strings.HasSuffix(name, ".ckpt") {
			continue
		}
		records, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "cp-"), ".ckpt"), 16, 64)
		if err != nil {
			f.logf("store: ignoring unparseable checkpoint name %q", name)
			continue
		}
		fi, err := e.Info()
		if err != nil {
			if os.IsNotExist(err) {
				continue // pruned between ReadDir and stat
			}
			return nil, err
		}
		cps = append(cps, cpInfo{path: filepath.Join(f.ckptDir, name), records: records, mtime: fi.ModTime()})
	}
	// Newest first.
	sort.Slice(cps, func(i, j int) bool { return cps[i].records > cps[j].records })
	return cps, nil
}

// Recover returns the newest checkpoint that decodes cleanly.
func (f *FS) Recover() (*Checkpoint, error) {
	cps, err := f.listCheckpoints()
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	for _, ci := range cps {
		b, err := os.ReadFile(ci.path)
		if err != nil {
			f.logf("store: skipping checkpoint %s: %v", filepath.Base(ci.path), err)
			continue
		}
		cp, err := decodeCheckpoint(b)
		if err != nil {
			f.logf("store: skipping corrupt checkpoint %s: %v", filepath.Base(ci.path), err)
			continue
		}
		f.mu.Lock()
		f.lastCPRecords = cp.Records
		f.lastCPUnix = ci.mtime.Unix()
		f.mu.Unlock()
		return cp, nil
	}
	return nil, nil
}

// Tail replays records [from, end) in append order, repairing a torn
// tail on the way (truncated in place unless ReadOnly). It must run
// before the first Append even when from already covers the whole log.
func (f *FS) Tail(from uint64, apply func(index uint64, rec *dataset.Record) error) (TailInfo, error) {
	info := TailInfo{Batches: map[string]int{}}
	segs, err := f.listSegments()
	if err != nil {
		return info, fmt.Errorf("store: %w", err)
	}
	var walBytes int64
	for _, s := range segs {
		walBytes += s.size
	}
	idx := from
	if len(segs) > 0 {
		if from < segs[0].first {
			return info, fmt.Errorf("replay needs records from %d but oldest segment starts at %d (over-pruned wal): %w", from, segs[0].first, ErrTailTruncated)
		}
		dec := &dataset.Decoder{}
		scanned := false
		for k, s := range segs {
			// A segment is skippable when every record it holds is below
			// the replay point, i.e. the next segment starts at or below it.
			if !scanned && k+1 < len(segs) && segs[k+1].first <= from {
				continue
			}
			if !scanned {
				idx = s.first
				scanned = true
			} else if s.first != idx {
				return info, fmt.Errorf("store: segment %s starts at %d, want %d (gap)", filepath.Base(s.path), s.first, idx)
			}
			cut, err := f.scanSegment(s, k == len(segs)-1, from, &idx, &info, dec, apply)
			if err != nil {
				return info, err
			}
			if cut >= 0 {
				if !f.opts.ReadOnly {
					if err := os.Truncate(s.path, cut); err != nil {
						return info, fmt.Errorf("store: truncating torn tail: %w", err)
					}
					walBytes -= s.size - cut
				}
			}
		}
	}
	info.NextIndex = idx
	f.mu.Lock()
	f.recovered = true
	f.nextIndex = idx
	f.segments = len(segs)
	f.walBytes = walBytes
	f.mu.Unlock()
	return info, nil
}

// countReader tracks consumed bytes so torn-tail truncation knows the
// offset of the frame it is cutting.
type countReader struct {
	br *bufio.Reader
	n  int64
}

func (c *countReader) ReadByte() (byte, error) {
	b, err := c.br.ReadByte()
	if err == nil {
		c.n++
	}
	return b, err
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.br.Read(p)
	c.n += int64(n)
	return n, err
}

// scanSegment walks one segment's frames, applying records at or past
// the replay point. It returns the offset to truncate the file at (-1
// for none): the start of a torn/corrupt trailing frame, or of an
// uncommitted trailing batch group.
func (f *FS) scanSegment(s segInfo, last bool, from uint64, idx *uint64, info *TailInfo, dec *dataset.Decoder, apply func(uint64, *dataset.Record) error) (int64, error) {
	file, err := os.Open(s.path)
	if err != nil {
		return -1, fmt.Errorf("store: %w", err)
	}
	defer file.Close()
	name := filepath.Base(s.path)

	var hdr [segHeaderSize]byte
	if _, err := io.ReadFull(file, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) && s.size == 0 {
			// Empty file: a prior recovery truncated it away entirely.
			return -1, nil
		}
		if last && (errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF)) {
			// A crash between file creation and the header flush; nothing
			// in it was ever acked.
			f.logf("store: WARNING: %s has a torn header; truncating to empty", name)
			info.TornTruncated = true
			return 0, nil
		}
		return -1, fmt.Errorf("store: reading %s header: %w", name, err)
	}
	if string(hdr[:4]) != walMagic {
		return -1, fmt.Errorf("store: %s is not a WAL segment", name)
	}
	if hdr[4] != walVersion {
		return -1, fmt.Errorf("store: %s has segment version %d, want %d", name, hdr[4], walVersion)
	}
	if first := binary.LittleEndian.Uint64(hdr[5:]); first != s.first {
		return -1, fmt.Errorf("store: %s header claims first index %d", name, first)
	}

	cr := &countReader{br: bufio.NewReaderSize(file, 1<<20), n: segHeaderSize}
	// Open batch group state: records buffered until their commit frame.
	var (
		gOpen  bool
		gID    string
		gCount int
		gStart int64
		gRecs  [][]byte
	)
	applyOne := func(payload []byte) error {
		if *idx >= from {
			var rec dataset.Record
			if err := dec.Decode(payload, &rec); err != nil {
				return fmt.Errorf("store: record %d in %s fails to decode: %w", *idx, name, err)
			}
			if err := apply(*idx, &rec); err != nil {
				return err
			}
			info.Replayed++
		}
		*idx++
		return nil
	}
	// torn reports a torn/corrupt trailing frame: in a writable store
	// the file is truncated at the frame start (or at the start of the
	// batch group it belongs to, since a headless group could never
	// commit) so the next process appends to a clean log.
	torn := func(frameStart int64, why string) (int64, error) {
		cut := frameStart
		dropped := ""
		if gOpen {
			cut = gStart
			info.DroppedUncommitted += len(gRecs)
			dropped = fmt.Sprintf(" (dropping uncommitted batch %q, %d records)", gID, len(gRecs))
		}
		action := "truncating"
		if f.opts.ReadOnly {
			action = "ignoring (read-only)"
		}
		f.logf("store: WARNING: torn WAL tail in %s at offset %d: %s; %s%s", name, frameStart, why, action, dropped)
		info.TornTruncated = true
		return cut, nil
	}

	for {
		frameStart := cr.n
		kind, err := cr.ReadByte()
		if err == io.EOF {
			if gOpen {
				// Clean EOF mid-group: the commit frame never made it, so
				// the batch was never acked. Drop it (and cut it from a
				// writable log so it does not linger).
				if !last {
					return -1, fmt.Errorf("store: uncommitted batch group mid-log in %s", name)
				}
				info.DroppedUncommitted += len(gRecs)
				action := "truncating"
				if f.opts.ReadOnly {
					action = "ignoring (read-only)"
				}
				f.logf("store: WARNING: uncommitted batch %q (%d records) at tail of %s; %s", gID, len(gRecs), name, action)
				return gStart, nil
			}
			return -1, nil
		}
		if err != nil {
			return -1, fmt.Errorf("store: reading %s: %w", name, err)
		}
		plen, err := binary.ReadUvarint(cr)
		if err != nil {
			if last {
				return torn(frameStart, "frame length cut short")
			}
			return -1, fmt.Errorf("store: torn frame mid-log in %s at offset %d", name, frameStart)
		}
		if plen > maxFrameBytes || frameStart+int64(plen) > s.size {
			if last {
				return torn(frameStart, fmt.Sprintf("frame length %d exceeds file", plen))
			}
			return -1, fmt.Errorf("store: corrupt frame length %d mid-log in %s at offset %d", plen, name, frameStart)
		}
		var crcb [4]byte
		if _, err := io.ReadFull(cr, crcb[:]); err != nil {
			if last {
				return torn(frameStart, "frame checksum cut short")
			}
			return -1, fmt.Errorf("store: torn frame mid-log in %s at offset %d", name, frameStart)
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(cr, payload); err != nil {
			if last {
				return torn(frameStart, "frame payload cut short")
			}
			return -1, fmt.Errorf("store: torn frame mid-log in %s at offset %d", name, frameStart)
		}
		if frameCRC(kind, payload) != binary.LittleEndian.Uint32(crcb[:]) {
			// A checksum mismatch on the very last frame is the crash
			// signature (half-written sector); anywhere else it is damage
			// recovery must not paper over.
			if last && cr.n == s.size {
				return torn(frameStart, "checksum mismatch on final frame")
			}
			return -1, fmt.Errorf("store: checksum mismatch mid-log in %s at offset %d", name, frameStart)
		}

		switch kind {
		case frameRecord:
			if gOpen {
				gRecs = append(gRecs, payload)
			} else if err := applyOne(payload); err != nil {
				return -1, err
			}
		case frameBegin:
			if gOpen {
				return -1, fmt.Errorf("store: nested batch group in %s at offset %d", name, frameStart)
			}
			id, count, err := parseMarker(payload)
			if err != nil {
				return -1, fmt.Errorf("store: %s at offset %d: %w", name, frameStart, err)
			}
			gOpen, gID, gCount, gStart, gRecs = true, id, count, frameStart, gRecs[:0]
		case frameCommit:
			if !gOpen {
				return -1, fmt.Errorf("store: commit without batch group in %s at offset %d", name, frameStart)
			}
			id, count, err := parseMarker(payload)
			if err != nil {
				return -1, fmt.Errorf("store: %s at offset %d: %w", name, frameStart, err)
			}
			if id != gID || count != gCount || len(gRecs) != gCount {
				return -1, fmt.Errorf("store: batch group %q in %s commits %q with %d/%d records", gID, name, id, len(gRecs), gCount)
			}
			for _, p := range gRecs {
				if err := applyOne(p); err != nil {
					return -1, err
				}
			}
			if gID != "" && *idx > from {
				info.Batches[gID] = gCount
			}
			gOpen = false
		default:
			return -1, fmt.Errorf("store: unknown frame kind %d in %s at offset %d", kind, name, frameStart)
		}
	}
}

func frameCRC(kind byte, payload []byte) uint32 {
	crc := crc32.Update(0, crcTable, []byte{kind})
	return crc32.Update(crc, crcTable, payload)
}

func appendMarker(b []byte, id string, count int) []byte {
	b = binary.AppendUvarint(b, uint64(len(id)))
	b = append(b, id...)
	return binary.AppendUvarint(b, uint64(count))
}

func parseMarker(b []byte) (id string, count int, err error) {
	n, w := binary.Uvarint(b)
	if w <= 0 || uint64(len(b)-w) < n {
		return "", 0, errors.New("corrupt batch marker")
	}
	id = string(b[w : w+int(n)])
	c, w2 := binary.Uvarint(b[w+int(n):])
	if w2 <= 0 {
		return "", 0, errors.New("corrupt batch marker")
	}
	return id, int(c), nil
}

// ReadTail scans committed units [from, end) without mutating the log
// or the engine: the replication read path. Unlike Tail it tolerates
// everything a concurrent writer can leave behind — a frame mid-flush,
// a batch group awaiting its commit, a segment created after the
// directory listing — by stopping silently at the first anomaly and
// reporting how far it got. A vanished starting segment (checkpoint
// pruning won the race) is ErrTailTruncated: the caller refetches a
// full checkpoint instead.
func (f *FS) ReadTail(from uint64, apply func(start uint64, b RawBatch) error) (uint64, error) {
	segs, err := f.listSegments()
	if err != nil {
		return from, fmt.Errorf("store: %w", err)
	}
	if len(segs) == 0 {
		f.mu.Lock()
		next, recovered := f.nextIndex, f.recovered
		f.mu.Unlock()
		if recovered && from < next {
			return from, fmt.Errorf("tail from %d but the log is empty below %d: %w", from, next, ErrTailTruncated)
		}
		return from, nil
	}
	if from < segs[0].first {
		return from, fmt.Errorf("tail from %d predates oldest retained segment (first %d): %w", from, segs[0].first, ErrTailTruncated)
	}
	start := 0
	for k := range segs {
		if segs[k].first <= from {
			start = k
		}
	}
	idx := segs[start].first
	delivered := false
	for k := start; k < len(segs); k++ {
		if segs[k].first != idx {
			// A gap can only mean the listing raced rotation/pruning in a
			// way recovery would reject; stop at the last clean boundary.
			break
		}
		next, stop, err := f.readSegmentUnits(segs[k], from, idx, &delivered, apply)
		idx = next
		if err != nil {
			if !delivered && errors.Is(err, os.ErrNotExist) && k == start {
				return from, fmt.Errorf("tail segment pruned underfoot at %d: %w", from, ErrTailTruncated)
			}
			if errors.Is(err, ErrStopTail) {
				return idx, nil
			}
			if errors.Is(err, os.ErrNotExist) {
				break
			}
			return idx, err
		}
		if stop {
			break
		}
	}
	return idx, nil
}

// readSegmentUnits walks one segment emitting whole committed units at
// or past the replay point. It returns the index after the last clean
// unit boundary, and stop=true when the scan hit an anomaly (torn
// frame, open group at EOF) that ends the whole tail read.
func (f *FS) readSegmentUnits(s segInfo, from, idx uint64, delivered *bool, apply func(uint64, RawBatch) error) (uint64, bool, error) {
	file, err := os.Open(s.path)
	if err != nil {
		return idx, true, err
	}
	defer file.Close()

	var hdr [segHeaderSize]byte
	if _, err := io.ReadFull(file, hdr[:]); err != nil {
		return idx, true, nil // header still flushing, or truncated-empty
	}
	if string(hdr[:4]) != walMagic || hdr[4] != walVersion || binary.LittleEndian.Uint64(hdr[5:]) != s.first {
		return idx, true, nil
	}

	br := bufio.NewReaderSize(file, 1<<20)
	emit := func(start uint64, u RawBatch) error {
		n := uint64(len(u.Payloads))
		if start+n <= from {
			return nil // wholly below the replay point
		}
		if err := apply(start, u); err != nil {
			return err
		}
		*delivered = true
		return nil
	}
	var (
		gOpen  bool
		gID    string
		gCount int
		gStart uint64
		gRecs  [][]byte
	)
	for {
		kind, err := br.ReadByte()
		if err != nil {
			if gOpen {
				return gStart, true, nil // commit frame not flushed yet
			}
			return idx, err != io.EOF, nil
		}
		plen, err := binary.ReadUvarint(br)
		if err != nil || plen > maxFrameBytes {
			if gOpen {
				idx = gStart
			}
			return idx, true, nil
		}
		var crcb [4]byte
		if _, err := io.ReadFull(br, crcb[:]); err != nil {
			if gOpen {
				idx = gStart
			}
			return idx, true, nil
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(br, payload); err != nil {
			if gOpen {
				idx = gStart
			}
			return idx, true, nil
		}
		if frameCRC(kind, payload) != binary.LittleEndian.Uint32(crcb[:]) {
			if gOpen {
				idx = gStart
			}
			return idx, true, nil
		}
		switch kind {
		case frameRecord:
			if gOpen {
				gRecs = append(gRecs, payload)
			} else {
				if err := emit(idx, RawBatch{Payloads: [][]byte{payload}}); err != nil {
					return idx + 1, true, err
				}
				idx++
			}
		case frameBegin:
			if gOpen {
				return gStart, true, nil
			}
			id, count, err := parseMarker(payload)
			if err != nil {
				return idx, true, nil
			}
			gOpen, gID, gCount, gStart, gRecs = true, id, count, idx, gRecs[:0]
		case frameCommit:
			if !gOpen {
				return idx, true, nil
			}
			id, count, err := parseMarker(payload)
			if err != nil || id != gID || count != gCount || len(gRecs) != gCount {
				return gStart, true, nil
			}
			end := gStart + uint64(len(gRecs))
			if err := emit(gStart, RawBatch{ID: gID, Payloads: gRecs}); err != nil {
				return end, true, err
			}
			idx = end
			gOpen = false
			gRecs = nil // emitted slices escape to the callback's lifetime
		default:
			if gOpen {
				idx = gStart
			}
			return idx, true, nil
		}
	}
}

// Reset discards the whole log and every checkpoint and restarts the
// record index at next — a standby resynchronizing onto a checkpoint
// fetched from its primary. The engine is appendable afterwards
// without another Tail.
func (f *FS) Reset(next uint64) error {
	if f.opts.ReadOnly {
		return errors.New("store: read-only")
	}
	f.cpMu.Lock()
	defer f.cpMu.Unlock()
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return errors.New("store: closed")
	}
	if err := f.sealLocked(); err != nil {
		return err
	}
	segs, err := f.listSegments()
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	for _, s := range segs {
		if err := os.Remove(s.path); err != nil {
			return fmt.Errorf("store: reset: %w", err)
		}
	}
	cps, err := f.listCheckpoints()
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	for _, c := range cps {
		if err := os.Remove(c.path); err != nil {
			return fmt.Errorf("store: reset: %w", err)
		}
	}
	if f.opts.Mode != FsyncOff {
		if err := syncDir(f.walDir); err != nil {
			return err
		}
		if err := syncDir(f.ckptDir); err != nil {
			return err
		}
	}
	f.recovered = true
	f.nextIndex = next
	f.segments = 0
	f.walBytes = 0
	f.segBytes = 0
	f.lastCPRecords = 0
	f.lastCPUnix = 0
	return nil
}

func (f *FS) writable() error {
	if f.opts.ReadOnly {
		return errors.New("store: read-only")
	}
	if f.closed {
		return errors.New("store: closed")
	}
	if !f.recovered {
		return errors.New("store: Tail must run before Append")
	}
	return nil
}

// Append writes b to the WAL as one atomic group and flushes it to the
// OS. With FsyncAlways it is durable on return; otherwise call Sync.
func (f *FS) Append(b Batch) error {
	if len(b.Records) == 0 {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.writable(); err != nil {
		return err
	}
	if f.seg != nil && f.segBytes >= f.opts.SegmentBytes {
		if err := f.sealLocked(); err != nil {
			return err
		}
	}
	if f.seg == nil {
		if err := f.openSegLocked(); err != nil {
			return err
		}
	}
	batched := b.ID != "" || len(b.Records) > 1
	if batched {
		if err := f.writeFrame(frameBegin, appendMarker(nil, b.ID, len(b.Records))); err != nil {
			return err
		}
	}
	for i := range b.Records {
		payload, err := b.Records[i].MarshalJSON()
		if err != nil {
			return fmt.Errorf("store: encoding record: %w", err)
		}
		if err := f.writeFrame(frameRecord, payload); err != nil {
			return err
		}
	}
	if batched {
		if err := f.writeFrame(frameCommit, appendMarker(nil, b.ID, len(b.Records))); err != nil {
			return err
		}
	}
	if err := f.segW.Flush(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	f.nextIndex += uint64(len(b.Records))
	f.appendedRecords += uint64(len(b.Records))
	if b.ID != "" {
		f.appendedBatches++
	}
	if f.opts.Mode == FsyncAlways {
		return f.fsyncLocked()
	}
	return nil
}

func (f *FS) writeFrame(kind byte, payload []byte) error {
	f.scratch = f.scratch[:0]
	f.scratch = append(f.scratch, kind)
	f.scratch = binary.AppendUvarint(f.scratch, uint64(len(payload)))
	f.scratch = binary.LittleEndian.AppendUint32(f.scratch, frameCRC(kind, payload))
	if _, err := f.segW.Write(f.scratch); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := f.segW.Write(payload); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	n := int64(len(f.scratch) + len(payload))
	f.segBytes += n
	f.walBytes += n
	return nil
}

func (f *FS) openSegLocked() error {
	path := filepath.Join(f.walDir, fmt.Sprintf("seg-%016x.wal", f.nextIndex))
	file, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	var hdr [segHeaderSize]byte
	copy(hdr[:], walMagic)
	hdr[4] = walVersion
	binary.LittleEndian.PutUint64(hdr[5:], f.nextIndex)
	if _, err := file.Write(hdr[:]); err != nil {
		file.Close()
		return fmt.Errorf("store: %w", err)
	}
	if f.opts.Mode != FsyncOff {
		// Make the new segment's directory entry durable so a power cut
		// cannot orphan records fsynced into a file that is not findable.
		if err := syncDir(f.walDir); err != nil {
			file.Close()
			return err
		}
	}
	f.seg = file
	f.segW = bufio.NewWriterSize(file, 1<<20)
	f.segBytes = int64(segHeaderSize)
	f.walBytes += int64(segHeaderSize)
	f.segments++
	return nil
}

func (f *FS) sealLocked() error {
	if f.seg == nil {
		return nil
	}
	if err := f.segW.Flush(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if f.opts.Mode != FsyncOff {
		if err := f.fsyncLocked(); err != nil {
			return err
		}
	}
	err := f.seg.Close()
	f.seg, f.segW = nil, nil
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

func (f *FS) fsyncLocked() error {
	start := time.Now()
	if err := f.seg.Sync(); err != nil {
		return fmt.Errorf("store: fsync: %w", err)
	}
	d := time.Since(start).Nanoseconds()
	f.fsyncs++
	f.fsyncNanos += d
	i := 0
	for i < len(FsyncBounds) && d > FsyncBounds[i] {
		i++
	}
	f.fsyncHist[i]++
	return nil
}

// Sync makes everything appended so far durable (one fsync for any
// number of preceding appends — group commit). No-op under FsyncOff,
// and under FsyncAlways, where Append already synced.
func (f *FS) Sync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.seg == nil || f.opts.Mode != FsyncBatch {
		return nil
	}
	if err := f.segW.Flush(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return f.fsyncLocked()
}

// Rotate seals the active segment; the next Append opens a fresh one.
func (f *FS) Rotate() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.writable(); err != nil {
		return err
	}
	return f.sealLocked()
}

// Checkpoint persists cp atomically and prunes. Serialized against
// itself; concurrent Appends proceed (checkpoint IO never holds the
// append lock).
func (f *FS) Checkpoint(cp *Checkpoint) error {
	if f.opts.ReadOnly {
		return errors.New("store: read-only")
	}
	f.cpMu.Lock()
	defer f.cpMu.Unlock()

	payload := encodeCheckpoint(cp)
	final := filepath.Join(f.ckptDir, fmt.Sprintf("cp-%016x.ckpt", cp.Records))
	tmp := final + ".tmp"
	if err := writeFileSync(tmp, payload); err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := syncDir(f.ckptDir); err != nil {
		return err
	}

	f.mu.Lock()
	f.checkpoints++
	f.lastCPRecords = cp.Records
	f.lastCPUnix = time.Now().Unix()
	f.mu.Unlock()

	// Retain the newest KeepCheckpoints, then drop WAL segments every
	// retained checkpoint already covers.
	cps, err := f.listCheckpoints()
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	keep := f.opts.KeepCheckpoints
	if len(cps) > keep {
		for _, old := range cps[keep:] {
			if err := os.Remove(old.path); err != nil {
				f.logf("store: pruning checkpoint %s: %v", filepath.Base(old.path), err)
			}
		}
		cps = cps[:keep]
	}
	oldest := cps[len(cps)-1].records
	return f.pruneWAL(oldest)
}

// pruneWAL removes segments whose records all precede index `below`
// (i.e. the next segment starts at or below it). The active segment
// always stays.
func (f *FS) pruneWAL(below uint64) error {
	segs, err := f.listSegments()
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	for k := 0; k+1 < len(segs); k++ {
		if segs[k+1].first > below {
			break
		}
		if err := os.Remove(segs[k].path); err != nil {
			f.logf("store: pruning segment %s: %v", filepath.Base(segs[k].path), err)
			continue
		}
		f.mu.Lock()
		f.pruned++
		f.segments--
		f.walBytes -= segs[k].size
		f.mu.Unlock()
	}
	return nil
}

// Stats reports durability counters.
func (f *FS) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	hist := make([]uint64, len(f.fsyncHist))
	copy(hist, f.fsyncHist)
	return Stats{
		Segments:              f.segments,
		WALBytes:              f.walBytes,
		NextIndex:             f.nextIndex,
		AppendedRecords:       f.appendedRecords,
		AppendedBatches:       f.appendedBatches,
		Fsyncs:                f.fsyncs,
		FsyncNanos:            f.fsyncNanos,
		FsyncHist:             hist,
		Checkpoints:           f.checkpoints,
		LastCheckpointRecords: f.lastCPRecords,
		LastCheckpointUnix:    f.lastCPUnix,
		PrunedSegments:        f.pruned,
	}
}

// Close seals the active segment. It does not checkpoint — callers
// that want a final checkpoint take one first (Server.Drain does).
func (f *FS) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	f.closed = true
	return f.sealLocked()
}

// EncodeCheckpoint renders cp in the self-validating single-file form
// (magic, version, record count, named sections, whole-file CRC) — the
// same bytes Checkpoint writes to disk, so a standby can fetch one over
// HTTP and persist or decode it with no second format.
func EncodeCheckpoint(cp *Checkpoint) []byte { return encodeCheckpoint(cp) }

// DecodeCheckpoint parses and validates EncodeCheckpoint's output.
func DecodeCheckpoint(b []byte) (*Checkpoint, error) { return decodeCheckpoint(b) }

func encodeCheckpoint(cp *Checkpoint) []byte {
	names := make([]string, 0, len(cp.Sections))
	for name := range cp.Sections {
		names = append(names, name)
	}
	sort.Strings(names)
	b := make([]byte, 0, 64)
	b = append(b, ckptMagic...)
	b = append(b, ckptVersion)
	b = binary.LittleEndian.AppendUint64(b, cp.Records)
	b = binary.AppendUvarint(b, uint64(len(names)))
	for _, name := range names {
		b = binary.AppendUvarint(b, uint64(len(name)))
		b = append(b, name...)
		sec := cp.Sections[name]
		b = binary.AppendUvarint(b, uint64(len(sec)))
		b = append(b, sec...)
	}
	return binary.LittleEndian.AppendUint32(b, crc32.Checksum(b, crcTable))
}

func decodeCheckpoint(b []byte) (*Checkpoint, error) {
	if len(b) < 4+1+8+4 {
		return nil, errors.New("truncated checkpoint")
	}
	body, sum := b[:len(b)-4], binary.LittleEndian.Uint32(b[len(b)-4:])
	if crc32.Checksum(body, crcTable) != sum {
		return nil, errors.New("checkpoint checksum mismatch")
	}
	if string(body[:4]) != ckptMagic {
		return nil, errors.New("not a checkpoint file")
	}
	if body[4] != ckptVersion {
		return nil, fmt.Errorf("checkpoint version %d, want %d", body[4], ckptVersion)
	}
	cp := &Checkpoint{Records: binary.LittleEndian.Uint64(body[5:13]), Sections: map[string][]byte{}}
	rest := body[13:]
	n, w := binary.Uvarint(rest)
	if w <= 0 {
		return nil, errors.New("truncated checkpoint")
	}
	rest = rest[w:]
	for i := uint64(0); i < n; i++ {
		nameLen, w := binary.Uvarint(rest)
		if w <= 0 || uint64(len(rest)-w) < nameLen {
			return nil, errors.New("truncated checkpoint")
		}
		name := string(rest[w : w+int(nameLen)])
		rest = rest[w+int(nameLen):]
		secLen, w2 := binary.Uvarint(rest)
		if w2 <= 0 || uint64(len(rest)-w2) < secLen {
			return nil, errors.New("truncated checkpoint")
		}
		cp.Sections[name] = append([]byte(nil), rest[w2:w2+int(secLen)]...)
		rest = rest[w2+int(secLen):]
	}
	if len(rest) != 0 {
		return nil, errors.New("trailing bytes in checkpoint")
	}
	return cp, nil
}

func writeFileSync(path string, b []byte) error {
	file, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := file.Write(b); err != nil {
		file.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := file.Sync(); err != nil {
		file.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := file.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	err = d.Sync()
	d.Close()
	if err != nil {
		return fmt.Errorf("store: fsync dir: %w", err)
	}
	return nil
}
