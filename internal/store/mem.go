package store

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/dataset"
)

// Mem is an in-memory Engine: the same contract as the filesystem
// store — append order is replay order, units are atomic, pruning
// below the oldest retained checkpoint — with none of the IO. It is
// the first proof the Engine interface holds beyond the filesystem,
// and what replication unit tests run against: fast, deterministic,
// and race-detector friendly.
type Mem struct {
	retain int // checkpoints kept (default 2, like the FS engine)

	mu        sync.Mutex
	recovered bool
	closed    bool
	oldest    uint64 // first record index still in the log
	next      uint64 // index the next Append assigns
	units     []memUnit
	cps       []*Checkpoint // newest first
	bytes     int64

	appendedRecords uint64
	appendedBatches uint64
	syncs           uint64
	checkpoints     uint64
	lastCPRecords   uint64
	lastCPUnix      int64
	prunedUnits     uint64
}

type memUnit struct {
	id       string
	start    uint64
	payloads [][]byte
}

// NewMem returns an empty in-memory engine.
func NewMem() *Mem {
	return &Mem{retain: defaultKeepCheckpoints}
}

// Recover returns the newest checkpoint, or nil when none exists.
func (m *Mem) Recover() (*Checkpoint, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.cps) == 0 {
		return nil, nil
	}
	return m.cps[0], nil
}

// Tail replays records [from, end) in append order; see Engine.
func (m *Mem) Tail(from uint64, apply func(index uint64, rec *dataset.Record) error) (TailInfo, error) {
	m.mu.Lock()
	units := m.units
	oldest := m.oldest
	next := m.next
	m.mu.Unlock()

	info := TailInfo{Batches: map[string]int{}, NextIndex: next}
	if from < oldest {
		return info, fmt.Errorf("replay needs records from %d but oldest retained index is %d: %w", from, oldest, ErrTailTruncated)
	}
	dec := &dataset.Decoder{}
	idx := oldest
	for _, u := range units {
		idx = u.start
		for _, p := range u.payloads {
			if idx >= from {
				var rec dataset.Record
				if err := dec.Decode(p, &rec); err != nil {
					return info, fmt.Errorf("store: record %d fails to decode: %w", idx, err)
				}
				if err := apply(idx, &rec); err != nil {
					return info, err
				}
				info.Replayed++
			}
			idx++
		}
		if u.id != "" && idx > from {
			info.Batches[u.id] = len(u.payloads)
		}
	}
	m.mu.Lock()
	m.recovered = true
	m.mu.Unlock()
	return info, nil
}

// ReadTail scans committed units [from, end) in append order; see
// Engine. The in-memory log has no torn tails, so the only early stops
// are ErrStopTail and pruning (ErrTailTruncated).
func (m *Mem) ReadTail(from uint64, apply func(start uint64, b RawBatch) error) (uint64, error) {
	m.mu.Lock()
	units := m.units
	oldest := m.oldest
	m.mu.Unlock()

	if from < oldest {
		return from, fmt.Errorf("tail from %d predates oldest retained index %d: %w", from, oldest, ErrTailTruncated)
	}
	idx := from
	for _, u := range units {
		end := u.start + uint64(len(u.payloads))
		if end <= from {
			continue
		}
		if err := apply(u.start, RawBatch{ID: u.id, Payloads: u.payloads}); err != nil {
			if errors.Is(err, ErrStopTail) {
				return end, nil
			}
			return idx, err
		}
		idx = end
	}
	return idx, nil
}

func (m *Mem) writableLocked() error {
	if m.closed {
		return errors.New("store: closed")
	}
	if !m.recovered {
		return errors.New("store: Tail must run before Append")
	}
	return nil
}

// Append stores one batch as an atomic unit.
func (m *Mem) Append(b Batch) error {
	if len(b.Records) == 0 {
		return nil
	}
	payloads := make([][]byte, len(b.Records))
	var n int64
	for i := range b.Records {
		p, err := b.Records[i].MarshalJSON()
		if err != nil {
			return fmt.Errorf("store: encoding record: %w", err)
		}
		payloads[i] = p
		n += int64(len(p))
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.writableLocked(); err != nil {
		return err
	}
	m.units = append(m.units, memUnit{id: b.ID, start: m.next, payloads: payloads})
	m.next += uint64(len(payloads))
	m.bytes += n
	m.appendedRecords += uint64(len(payloads))
	if b.ID != "" {
		m.appendedBatches++
	}
	return nil
}

// Sync is durability-free by construction; it only counts.
func (m *Mem) Sync() error {
	m.mu.Lock()
	m.syncs++
	m.mu.Unlock()
	return nil
}

// Rotate is a no-op: the in-memory log has no segments.
func (m *Mem) Rotate() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.writableLocked()
}

// Checkpoint retains cp (newest retain kept) and prunes units wholly
// below the oldest retained checkpoint.
func (m *Mem) Checkpoint(cp *Checkpoint) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return errors.New("store: closed")
	}
	// Validate the round trip so a section the codec cannot carry fails
	// here, like the filesystem engine's write would.
	cp2, err := decodeCheckpoint(encodeCheckpoint(cp))
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	m.cps = append([]*Checkpoint{cp2}, m.cps...)
	if len(m.cps) > m.retain {
		m.cps = m.cps[:m.retain]
	}
	m.checkpoints++
	m.lastCPRecords = cp.Records
	m.lastCPUnix = time.Now().Unix()

	below := m.cps[len(m.cps)-1].Records
	for len(m.units) > 0 {
		u := m.units[0]
		end := u.start + uint64(len(u.payloads))
		if end > below {
			break
		}
		for _, p := range u.payloads {
			m.bytes -= int64(len(p))
		}
		m.units = m.units[1:]
		m.prunedUnits++
		m.oldest = end
	}
	if len(m.units) > 0 {
		m.oldest = m.units[0].start
	}
	return nil
}

// Reset discards the log and all checkpoints and restarts at next.
func (m *Mem) Reset(next uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return errors.New("store: closed")
	}
	m.units = nil
	m.cps = nil
	m.bytes = 0
	m.oldest = next
	m.next = next
	m.recovered = true
	return nil
}

// Stats reports engine counters; fsync fields are structurally present
// (metrics rendering expects the histogram shape) but always zero.
func (m *Mem) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{
		Segments:              len(m.units),
		WALBytes:              m.bytes,
		NextIndex:             m.next,
		AppendedRecords:       m.appendedRecords,
		AppendedBatches:       m.appendedBatches,
		Fsyncs:                m.syncs,
		FsyncHist:             make([]uint64, len(FsyncBounds)+1),
		Checkpoints:           m.checkpoints,
		LastCheckpointRecords: m.lastCPRecords,
		LastCheckpointUnix:    m.lastCPUnix,
		PrunedSegments:        m.prunedUnits,
	}
}

// Close marks the engine closed; the log stays readable for Stats.
func (m *Mem) Close() error {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	return nil
}

var _ Engine = (*Mem)(nil)
var _ Engine = (*FS)(nil)
