package store

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/faultinject"
)

func mkRec(i int) dataset.Record {
	start := time.Date(2023, 3, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(i) * time.Second)
	return dataset.Record{
		From:            fmt.Sprintf("sender%d@esp.com", i),
		To:              fmt.Sprintf("user%d@rcv.com", i),
		StartTime:       start,
		EndTime:         start.Add(2 * time.Second),
		FromIP:          []string{"203.0.113.9"},
		ToIP:            []string{"198.51.100.7"},
		DeliveryResult:  []string{fmt.Sprintf("550 5.1.1 user user%d not found", i)},
		DeliveryLatency: []int64{int64(10 + i)},
		EmailFlag:       "Normal",
	}
}

func mkRecs(lo, hi int) []dataset.Record {
	out := make([]dataset.Record, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, mkRec(i))
	}
	return out
}

func openT(t *testing.T, opts FSOptions) *FS {
	t.Helper()
	if opts.Logf == nil {
		opts.Logf = t.Logf
	}
	f, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// recoverT runs the standard open sequence and collects the replay.
func recoverT(t *testing.T, f *FS, from uint64) ([]dataset.Record, TailInfo) {
	t.Helper()
	var got []dataset.Record
	next := from
	info, err := f.Tail(from, func(idx uint64, rec *dataset.Record) error {
		if idx != next {
			t.Fatalf("replay index %d, want %d", idx, next)
		}
		next++
		got = append(got, rec.Clone())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return got, info
}

func TestFSAppendTailRoundTrip(t *testing.T) {
	dir := t.TempDir()
	f := openT(t, FSOptions{Dir: dir})
	if cp, err := f.Recover(); err != nil || cp != nil {
		t.Fatalf("fresh dir Recover = %v, %v", cp, err)
	}
	if got, info := recoverT(t, f, 0); len(got) != 0 || info.NextIndex != 0 {
		t.Fatalf("fresh dir Tail replayed %d, next %d", len(got), info.NextIndex)
	}
	if err := f.Append(Batch{Records: mkRecs(0, 1)}); err != nil {
		t.Fatal(err)
	}
	if err := f.Append(Batch{ID: "batch-a", Records: mkRecs(1, 5)}); err != nil {
		t.Fatal(err)
	}
	if err := f.Append(Batch{ID: "batch-b", Records: mkRecs(5, 8)}); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	g := openT(t, FSOptions{Dir: dir})
	got, info := recoverT(t, g, 0)
	if len(got) != 8 || info.NextIndex != 8 || info.Replayed != 8 {
		t.Fatalf("replayed %d records, next %d", len(got), info.NextIndex)
	}
	for i := range got {
		want := mkRec(i)
		if got[i].From != want.From || got[i].DeliveryResult[0] != want.DeliveryResult[0] ||
			!got[i].StartTime.Equal(want.StartTime) {
			t.Fatalf("record %d corrupted in flight: %+v", i, got[i])
		}
	}
	if len(info.Batches) != 2 || info.Batches["batch-a"] != 4 || info.Batches["batch-b"] != 3 {
		t.Fatalf("batches = %v", info.Batches)
	}
	// The engine accepts appends after recovery and a third incarnation
	// sees them.
	if err := g.Append(Batch{ID: "batch-c", Records: mkRecs(8, 10)}); err != nil {
		t.Fatal(err)
	}
	g.Close()
	h := openT(t, FSOptions{Dir: dir})
	got, info = recoverT(t, h, 0)
	if len(got) != 10 || info.Batches["batch-c"] != 2 {
		t.Fatalf("after second incarnation: %d records, batches %v", len(got), info.Batches)
	}
	h.Close()
}

func TestFSAppendRequiresRecovery(t *testing.T) {
	f := openT(t, FSOptions{Dir: t.TempDir()})
	err := f.Append(Batch{Records: mkRecs(0, 1)})
	if err == nil || !strings.Contains(err.Error(), "Tail") {
		t.Fatalf("Append before Tail: %v", err)
	}
}

func TestFSCheckpointRecoverTail(t *testing.T) {
	dir := t.TempDir()
	f := openT(t, FSOptions{Dir: dir})
	recoverT(t, f, 0)
	if err := f.Append(Batch{ID: "early", Records: mkRecs(0, 60)}); err != nil {
		t.Fatal(err)
	}
	cp := &Checkpoint{Records: 60, Sections: map[string][]byte{
		"alpha": []byte("first section"),
		"beta":  {0, 1, 2, 255},
		"empty": {},
	}}
	if err := f.Checkpoint(cp); err != nil {
		t.Fatal(err)
	}
	if err := f.Append(Batch{ID: "late", Records: mkRecs(60, 100)}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	g := openT(t, FSOptions{Dir: dir})
	rcp, err := g.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rcp == nil || rcp.Records != 60 {
		t.Fatalf("Recover = %+v", rcp)
	}
	if string(rcp.Sections["alpha"]) != "first section" || len(rcp.Sections) != 3 {
		t.Fatalf("sections = %v", rcp.Sections)
	}
	got, info := recoverT(t, g, rcp.Records)
	if len(got) != 40 || info.NextIndex != 100 {
		t.Fatalf("tail replayed %d, next %d; want 40, 100", len(got), info.NextIndex)
	}
	if got[0].From != mkRec(60).From {
		t.Fatalf("tail starts at %q", got[0].From)
	}
	// "early" ends exactly at the checkpoint — fully covered, must not
	// resurface; "late" intersects the tail.
	if _, ok := info.Batches["early"]; ok {
		t.Fatal("fully-checkpointed batch resurfaced in tail")
	}
	if info.Batches["late"] != 40 {
		t.Fatalf("batches = %v", info.Batches)
	}
	g.Close()
}

// lastSegment returns the path of the newest WAL segment.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "wal", "seg-*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	return segs[len(segs)-1]
}

// tearFile truncates path after `keep` bytes using the faultinject torn
// reader — the same fault the chaos client injects on the wire.
func tearFile(t *testing.T, path string, keep int) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn, _ := io.ReadAll(faultinject.Plan{Torn: true, TornAfter: keep}.WrapRaw(bytes.NewReader(b)))
	if len(torn) != keep {
		t.Fatalf("torn reader kept %d bytes, want %d", len(torn), keep)
	}
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestFSTornTailTruncated: a crash mid-append leaves a partial trailing
// frame; recovery must cut exactly that frame, keep every complete
// record, warn, and leave the log appendable.
func TestFSTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	f := openT(t, FSOptions{Dir: dir})
	recoverT(t, f, 0)
	for i := 0; i < 20; i++ {
		if err := f.Append(Batch{Records: mkRecs(i, i+1)}); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()
	seg := lastSegment(t, dir)
	full, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Cut mid-way into the final frame (anywhere strictly inside it).
	tearFile(t, seg, len(full)-3)

	var warned bool
	g := openT(t, FSOptions{Dir: dir, Logf: func(format string, args ...any) {
		if strings.Contains(format, "WARNING") {
			warned = true
		}
		t.Logf(format, args...)
	}})
	got, info := recoverT(t, g, 0)
	if len(got) != 19 || info.NextIndex != 19 {
		t.Fatalf("replayed %d, next %d; want 19", len(got), info.NextIndex)
	}
	if !info.TornTruncated || !warned {
		t.Fatalf("torn tail not reported: info=%+v warned=%v", info, warned)
	}
	// The 20th record is gone from disk too; appending resumes at 19.
	if err := g.Append(Batch{Records: mkRecs(19, 21)}); err != nil {
		t.Fatal(err)
	}
	g.Close()
	h := openT(t, FSOptions{Dir: dir})
	got, info = recoverT(t, h, 0)
	if len(got) != 21 || info.TornTruncated {
		t.Fatalf("after repair: %d records, torn=%v", len(got), info.TornTruncated)
	}
	h.Close()
}

// TestFSTornTailSweep: every cut point inside the final record frame
// must recover to exactly the complete prefix.
func TestFSTornTailSweep(t *testing.T) {
	build := func(dir string) (string, int64) {
		f := openT(t, FSOptions{Dir: dir})
		recoverT(t, f, 0)
		for i := 0; i < 5; i++ {
			if err := f.Append(Batch{Records: mkRecs(i, i+1)}); err != nil {
				t.Fatal(err)
			}
		}
		f.Close()
		seg := lastSegment(t, dir)
		fi, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		return seg, fi.Size()
	}
	_, size := build(t.TempDir())
	// The final frame starts where a 4-record log ends (appends are
	// deterministic and the first 4 records are byte-identical).
	probe4dir := t.TempDir()
	f4 := openT(t, FSOptions{Dir: probe4dir})
	recoverT(t, f4, 0)
	for i := 0; i < 4; i++ {
		f4.Append(Batch{Records: mkRecs(i, i+1)})
	}
	f4.Close()
	fi4, _ := os.Stat(lastSegment(t, probe4dir))
	lastFrameStart := fi4.Size()

	for cut := lastFrameStart + 1; cut < size; cut += 5 {
		dir := t.TempDir()
		seg, _ := build(dir)
		tearFile(t, seg, int(cut))
		g := openT(t, FSOptions{Dir: dir, Logf: func(string, ...any) {}})
		got, info := recoverT(t, g, 0)
		if len(got) != 4 || !info.TornTruncated {
			t.Fatalf("cut %d: replayed %d records, torn=%v", cut, len(got), info.TornTruncated)
		}
		g.Close()
	}
}

// TestFSUncommittedBatchDropped: a crash before a batch's commit frame
// lands must discard the whole batch — it was never acked, and the
// client's retry will re-deliver it.
func TestFSUncommittedBatchDropped(t *testing.T) {
	dir := t.TempDir()
	f := openT(t, FSOptions{Dir: dir})
	recoverT(t, f, 0)
	if err := f.Append(Batch{ID: "keep", Records: mkRecs(0, 3)}); err != nil {
		t.Fatal(err)
	}
	if err := f.Append(Batch{ID: "lost", Records: mkRecs(3, 8)}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	seg := lastSegment(t, dir)
	full, _ := os.ReadFile(seg)
	// Cut inside the trailing commit frame: the group loses its commit.
	tearFile(t, seg, len(full)-2)

	g := openT(t, FSOptions{Dir: dir, Logf: func(string, ...any) {}})
	got, info := recoverT(t, g, 0)
	if len(got) != 3 || info.NextIndex != 3 {
		t.Fatalf("replayed %d, next %d; want 3", len(got), info.NextIndex)
	}
	if info.DroppedUncommitted != 5 {
		t.Fatalf("dropped %d uncommitted records, want 5", info.DroppedUncommitted)
	}
	if _, ok := info.Batches["lost"]; ok {
		t.Fatal("uncommitted batch registered")
	}
	// Retrying the batch after recovery lands it cleanly.
	if err := g.Append(Batch{ID: "lost", Records: mkRecs(3, 8)}); err != nil {
		t.Fatal(err)
	}
	g.Close()
	h := openT(t, FSOptions{Dir: dir})
	got, info = recoverT(t, h, 0)
	if len(got) != 8 || info.Batches["lost"] != 5 {
		t.Fatalf("after retry: %d records, batches %v", len(got), info.Batches)
	}
	h.Close()
}

// TestFSCorruption: a flipped byte at the tail truncates like a torn
// write; a flipped byte mid-log is unrecoverable damage and must error
// rather than silently drop records.
func TestFSCorruption(t *testing.T) {
	build := func(dir string) string {
		f := openT(t, FSOptions{Dir: dir})
		recoverT(t, f, 0)
		for i := 0; i < 10; i++ {
			if err := f.Append(Batch{Records: mkRecs(i, i+1)}); err != nil {
				t.Fatal(err)
			}
		}
		f.Close()
		return lastSegment(t, dir)
	}
	corrupt := func(path string, at int) {
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		flipped, _ := io.ReadAll(faultinject.Plan{Corrupt: true, CorruptAt: at}.WrapDecoded(bytes.NewReader(b)))
		if err := os.WriteFile(path, flipped, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// Tail corruption: flip a byte in the final frame's payload.
	dir := t.TempDir()
	seg := build(dir)
	fi, _ := os.Stat(seg)
	corrupt(seg, int(fi.Size())-4)
	g := openT(t, FSOptions{Dir: dir, Logf: func(string, ...any) {}})
	got, info := recoverT(t, g, 0)
	if len(got) != 9 || !info.TornTruncated {
		t.Fatalf("tail corruption: replayed %d, torn=%v", len(got), info.TornTruncated)
	}
	g.Close()

	// Mid-log corruption: flip a byte early; recovery must refuse.
	dir2 := t.TempDir()
	seg2 := build(dir2)
	corrupt(seg2, segHeaderSize+20)
	h := openT(t, FSOptions{Dir: dir2, Logf: func(string, ...any) {}})
	_, err := h.Tail(0, func(uint64, *dataset.Record) error { return nil })
	if err == nil {
		t.Fatal("mid-log corruption accepted")
	}
	h.Close()
}

// TestFSRotationAndPrune: segments rotate at the size threshold, a
// checkpoint prunes fully-covered segments, and replay from the
// checkpoint still works while replay from zero reports over-pruning.
func TestFSRotationAndPrune(t *testing.T) {
	dir := t.TempDir()
	f := openT(t, FSOptions{Dir: dir, SegmentBytes: 4 << 10, KeepCheckpoints: 1})
	recoverT(t, f, 0)
	for i := 0; i < 200; i++ {
		if err := f.Append(Batch{Records: mkRecs(i, i+1)}); err != nil {
			t.Fatal(err)
		}
	}
	st := f.Stats()
	if st.Segments < 3 {
		t.Fatalf("expected rotation, got %d segments (%d bytes)", st.Segments, st.WALBytes)
	}
	if st.NextIndex != 200 || st.AppendedRecords != 200 {
		t.Fatalf("stats = %+v", st)
	}
	if err := f.Checkpoint(&Checkpoint{Records: 200, Sections: map[string][]byte{"s": []byte("x")}}); err != nil {
		t.Fatal(err)
	}
	st = f.Stats()
	if st.PrunedSegments == 0 || st.Segments != 1 {
		t.Fatalf("pruning did not happen: %+v", st)
	}
	f.Close()

	g := openT(t, FSOptions{Dir: dir})
	cp, err := g.Recover()
	if err != nil || cp == nil || cp.Records != 200 {
		t.Fatalf("Recover = %+v, %v", cp, err)
	}
	got, info := recoverT(t, g, cp.Records)
	if len(got) != 0 || info.NextIndex != 200 {
		t.Fatalf("tail after full checkpoint: %d records, next %d", len(got), info.NextIndex)
	}
	g.Close()

	h := openT(t, FSOptions{Dir: dir})
	if _, err := h.Tail(0, func(uint64, *dataset.Record) error { return nil }); err == nil {
		t.Fatal("replay below the pruned floor accepted")
	}
	h.Close()
}

// TestFSCheckpointFallback: a corrupted newest checkpoint must fall
// back to the previous one, not fail recovery.
func TestFSCheckpointFallback(t *testing.T) {
	dir := t.TempDir()
	f := openT(t, FSOptions{Dir: dir})
	recoverT(t, f, 0)
	if err := f.Append(Batch{Records: mkRecs(0, 10)}); err != nil {
		t.Fatal(err)
	}
	if err := f.Checkpoint(&Checkpoint{Records: 5, Sections: map[string][]byte{"v": []byte("old")}}); err != nil {
		t.Fatal(err)
	}
	if err := f.Checkpoint(&Checkpoint{Records: 10, Sections: map[string][]byte{"v": []byte("new")}}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	// Smash the newest checkpoint.
	newest := filepath.Join(dir, "checkpoint", fmt.Sprintf("cp-%016x.ckpt", 10))
	b, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xff
	os.WriteFile(newest, b, 0o644)

	g := openT(t, FSOptions{Dir: dir, Logf: func(string, ...any) {}})
	cp, err := g.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if cp == nil || cp.Records != 5 || string(cp.Sections["v"]) != "old" {
		t.Fatalf("fallback checkpoint = %+v", cp)
	}
	got, _ := recoverT(t, g, cp.Records)
	if len(got) != 5 {
		t.Fatalf("tail from fallback replayed %d", len(got))
	}
	g.Close()
}

// TestFSReadOnly: offline analysis must not repair the log or accept
// writes.
func TestFSReadOnly(t *testing.T) {
	dir := t.TempDir()
	f := openT(t, FSOptions{Dir: dir})
	recoverT(t, f, 0)
	for i := 0; i < 10; i++ {
		f.Append(Batch{Records: mkRecs(i, i+1)})
	}
	f.Close()
	seg := lastSegment(t, dir)
	fi, _ := os.Stat(seg)
	tearFile(t, seg, int(fi.Size())-3)
	sizeAfterTear, _ := os.Stat(seg)

	ro := openT(t, FSOptions{Dir: dir, ReadOnly: true, Logf: func(string, ...any) {}})
	got, info := recoverT(t, ro, 0)
	if len(got) != 9 || !info.TornTruncated {
		t.Fatalf("read-only replay: %d records, torn=%v", len(got), info.TornTruncated)
	}
	if err := ro.Append(Batch{Records: mkRecs(10, 11)}); err == nil {
		t.Fatal("read-only Append accepted")
	}
	if err := ro.Checkpoint(&Checkpoint{Records: 9}); err == nil {
		t.Fatal("read-only Checkpoint accepted")
	}
	ro.Close()
	after, _ := os.Stat(seg)
	if after.Size() != sizeAfterTear.Size() {
		t.Fatal("read-only open modified the segment")
	}
}
