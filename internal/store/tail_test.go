package store

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"

	"repro/internal/dataset"
)

// collectTail drains ReadTail into a unit list.
type tailUnit struct {
	id       string
	start    uint64
	payloads []string
}

func collectTail(t *testing.T, eng Engine, from uint64) ([]tailUnit, uint64) {
	t.Helper()
	var units []tailUnit
	next, err := eng.ReadTail(from, func(start uint64, b RawBatch) error {
		u := tailUnit{id: b.ID, start: start}
		for _, p := range b.Payloads {
			u.payloads = append(u.payloads, string(p))
		}
		units = append(units, u)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return units, next
}

// engines runs a subtest against both Engine implementations — the
// point of the interface is that they are interchangeable.
func engines(t *testing.T, run func(t *testing.T, eng Engine)) {
	t.Run("fs", func(t *testing.T) {
		f := openT(t, FSOptions{Dir: t.TempDir()})
		defer f.Close()
		run(t, f)
	})
	t.Run("mem", func(t *testing.T) {
		m := NewMem()
		defer m.Close()
		run(t, m)
	})
}

func TestReadTailUnits(t *testing.T) {
	engines(t, func(t *testing.T, eng Engine) {
		if _, err := eng.Tail(0, func(uint64, *dataset.Record) error { return nil }); err != nil {
			t.Fatal(err)
		}
		if err := eng.Append(Batch{Records: mkRecs(0, 1)}); err != nil {
			t.Fatal(err)
		}
		if err := eng.Append(Batch{ID: "b1", Records: mkRecs(1, 4)}); err != nil {
			t.Fatal(err)
		}
		if err := eng.Append(Batch{ID: "b2", Records: mkRecs(4, 6)}); err != nil {
			t.Fatal(err)
		}

		units, next := collectTail(t, eng, 0)
		if next != 6 {
			t.Fatalf("next = %d, want 6", next)
		}
		if len(units) != 3 {
			t.Fatalf("units = %d, want 3", len(units))
		}
		if units[0].id != "" || units[0].start != 0 || len(units[0].payloads) != 1 {
			t.Fatalf("bare unit = %+v", units[0])
		}
		if units[1].id != "b1" || units[1].start != 1 || len(units[1].payloads) != 3 {
			t.Fatalf("b1 unit = %+v", units[1])
		}
		if units[2].id != "b2" || units[2].start != 4 {
			t.Fatalf("b2 unit = %+v", units[2])
		}
		// Payloads are the appended wire bytes; they must decode back to
		// the same record the batch carried.
		var rec dataset.Record
		if err := (&dataset.Decoder{}).Decode([]byte(units[1].payloads[0]), &rec); err != nil {
			t.Fatal(err)
		}
		if rec.From != mkRec(1).From {
			t.Fatalf("payload decodes to %q", rec.From)
		}

		// From a later offset only the units past it appear; a unit
		// straddling `from` is delivered whole with its true start.
		units, next = collectTail(t, eng, 2)
		if next != 6 || len(units) != 2 {
			t.Fatalf("from 2: %d units, next %d", len(units), next)
		}
		if units[0].id != "b1" || units[0].start != 1 || len(units[0].payloads) != 3 {
			t.Fatalf("straddling unit = %+v", units[0])
		}

		// From the end: empty scan, no error.
		units, next = collectTail(t, eng, 6)
		if len(units) != 0 || next != 6 {
			t.Fatalf("from end: %d units, next %d", len(units), next)
		}

		// ErrStopTail ends early; the stopping unit counts as delivered.
		var got int
		next, err := eng.ReadTail(0, func(start uint64, b RawBatch) error {
			got++
			if b.ID == "b1" {
				return ErrStopTail
			}
			return nil
		})
		if err != nil || got != 2 || next != 4 {
			t.Fatalf("stop: err=%v got=%d next=%d", err, got, next)
		}
	})
}

func TestReadTailTruncatedTyped(t *testing.T) {
	engines(t, func(t *testing.T, eng Engine) {
		if _, err := eng.Tail(0, func(uint64, *dataset.Record) error { return nil }); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			if err := eng.Append(Batch{ID: fmt.Sprintf("b%d", i), Records: mkRecs(i*4, i*4+4)}); err != nil {
				t.Fatal(err)
			}
		}
		if f, ok := eng.(*FS); ok {
			// Force the WAL below the checkpoint into separate prunable
			// segments.
			if err := f.Rotate(); err != nil {
				t.Fatal(err)
			}
			if err := eng.Append(Batch{Records: mkRecs(200, 201)}); err != nil {
				t.Fatal(err)
			}
		}
		if err := eng.Checkpoint(&Checkpoint{Records: 200, Sections: map[string][]byte{}}); err != nil {
			t.Fatal(err)
		}
		if err := eng.Checkpoint(&Checkpoint{Records: 200, Sections: map[string][]byte{"v": []byte("2")}}); err != nil {
			t.Fatal(err)
		}

		_, err := eng.ReadTail(0, func(uint64, RawBatch) error { return nil })
		if !errors.Is(err, ErrTailTruncated) {
			t.Fatalf("ReadTail below the pruned floor: %v", err)
		}
		// The recovery path reports the same typed error (satellite: a
		// stale offset must not silently replay from the wrong point).
		_, err = eng.Tail(0, func(uint64, *dataset.Record) error { return nil })
		if !errors.Is(err, ErrTailTruncated) {
			t.Fatalf("Tail below the pruned floor: %v", err)
		}
		// From the checkpoint the tail is clean.
		if _, err := eng.ReadTail(200, func(uint64, RawBatch) error { return nil }); err != nil {
			t.Fatal(err)
		}
	})
}

func TestReadTailStopsAtTornFrame(t *testing.T) {
	dir := t.TempDir()
	f := openT(t, FSOptions{Dir: dir})
	recoverT(t, f, 0)
	for i := 0; i < 10; i++ {
		if err := f.Append(Batch{ID: fmt.Sprintf("b%d", i), Records: mkRecs(i, i+1)}); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()
	seg := lastSegment(t, dir)
	fi, _ := os.Stat(seg)
	tearFile(t, seg, int(fi.Size())-3)

	// The read-only scan must stop at the last complete unit — no
	// truncation, no error: the writer could still be mid-flush.
	g := openT(t, FSOptions{Dir: dir, ReadOnly: true, Logf: func(string, ...any) {}})
	units, next := collectTail(t, g, 0)
	if len(units) != 9 || next != 9 {
		t.Fatalf("torn tail scan: %d units, next %d; want 9", len(units), next)
	}
	after, _ := os.Stat(seg)
	if after.Size() != fi.Size()-3 {
		t.Fatal("ReadTail modified the segment")
	}
	g.Close()
}

func TestEngineReset(t *testing.T) {
	engines(t, func(t *testing.T, eng Engine) {
		if _, err := eng.Tail(0, func(uint64, *dataset.Record) error { return nil }); err != nil {
			t.Fatal(err)
		}
		if err := eng.Append(Batch{ID: "stale", Records: mkRecs(0, 30)}); err != nil {
			t.Fatal(err)
		}
		if err := eng.Checkpoint(&Checkpoint{Records: 30, Sections: map[string][]byte{"v": []byte("stale")}}); err != nil {
			t.Fatal(err)
		}

		// Resync onto a checkpoint from elsewhere: everything local goes.
		if err := eng.Reset(100); err != nil {
			t.Fatal(err)
		}
		if cp, err := eng.Recover(); err != nil || cp != nil {
			t.Fatalf("Recover after Reset = %+v, %v", cp, err)
		}
		cp := &Checkpoint{Records: 100, Sections: map[string][]byte{"v": []byte("fetched")}}
		if err := eng.Checkpoint(cp); err != nil {
			t.Fatal(err)
		}
		// Appendable immediately, indices continuing from the reset point.
		if err := eng.Append(Batch{ID: "fresh", Records: mkRecs(100, 104)}); err != nil {
			t.Fatal(err)
		}
		units, next := collectTail(t, eng, 100)
		if next != 104 || len(units) != 1 || units[0].start != 100 || units[0].id != "fresh" {
			t.Fatalf("after reset: units=%+v next=%d", units, next)
		}
		if st := eng.Stats(); st.NextIndex != 104 {
			t.Fatalf("stats after reset: %+v", st)
		}
	})
}

func TestMemEngineContract(t *testing.T) {
	m := NewMem()
	if err := m.Append(Batch{Records: mkRecs(0, 1)}); err == nil {
		t.Fatal("Append before Tail accepted")
	}
	info, err := m.Tail(0, func(uint64, *dataset.Record) error { return nil })
	if err != nil || info.NextIndex != 0 {
		t.Fatalf("fresh Tail: %+v, %v", info, err)
	}
	if err := m.Append(Batch{ID: "a", Records: mkRecs(0, 5)}); err != nil {
		t.Fatal(err)
	}
	if err := m.Append(Batch{Records: mkRecs(5, 6)}); err != nil {
		t.Fatal(err)
	}
	// Replay everything, indices and batch registry intact.
	var got []string
	info, err = m.Tail(0, func(idx uint64, rec *dataset.Record) error {
		got = append(got, rec.From)
		return nil
	})
	if err != nil || len(got) != 6 || info.NextIndex != 6 || info.Replayed != 6 {
		t.Fatalf("replay: %d records, info %+v, %v", len(got), info, err)
	}
	if got[0] != mkRec(0).From || got[5] != mkRec(5).From {
		t.Fatalf("replay order: %v", got)
	}
	if info.Batches["a"] != 5 || len(info.Batches) != 1 {
		t.Fatalf("batches = %v", info.Batches)
	}
	// Checkpoint round-trips through the on-disk codec and prunes.
	if err := m.Checkpoint(&Checkpoint{Records: 5, Sections: map[string][]byte{"s": []byte("x")}}); err != nil {
		t.Fatal(err)
	}
	if err := m.Checkpoint(&Checkpoint{Records: 6, Sections: map[string][]byte{"s": []byte("y")}}); err != nil {
		t.Fatal(err)
	}
	if err := m.Checkpoint(&Checkpoint{Records: 6, Sections: map[string][]byte{"s": []byte("z")}}); err != nil {
		t.Fatal(err)
	}
	cp, err := m.Recover()
	if err != nil || cp == nil || cp.Records != 6 || string(cp.Sections["s"]) != "z" {
		t.Fatalf("Recover = %+v, %v", cp, err)
	}
	if st := m.Stats(); st.Checkpoints != 3 || st.LastCheckpointRecords != 6 {
		t.Fatalf("stats = %+v", st)
	}
	// Units below the oldest retained checkpoint are gone.
	if _, err := m.Tail(0, func(uint64, *dataset.Record) error { return nil }); !errors.Is(err, ErrTailTruncated) {
		t.Fatalf("pruned replay: %v", err)
	}
	if _, err := m.Tail(6, func(uint64, *dataset.Record) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

// TestFSCheckpointRotateTailRace drives Append/Rotate/Checkpoint/
// ReadTail/Tail(read-only)/Stats concurrently with tiny segments so
// checkpoint pruning constantly races rotation and the tail scans —
// the -race proof for the replication read path. Every ReadTail must
// see a clean prefix of committed units (ascending, gapless from its
// start) or a typed truncation; never an error, never reordered data.
func TestFSCheckpointRotateTailRace(t *testing.T) {
	dir := t.TempDir()
	f := openT(t, FSOptions{Dir: dir, SegmentBytes: 2 << 10, Mode: FsyncOff, KeepCheckpoints: 1, Logf: func(string, ...any) {}})
	recoverT(t, f, 0)

	const total = 400
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		confirmed uint64 // record count acked by Append, monotone
	)
	stop := make(chan struct{})

	wg.Add(1)
	go func() { // writer: appends with periodic rotations
		defer wg.Done()
		defer close(stop)
		for i := 0; i < total; i += 4 {
			if err := f.Append(Batch{ID: fmt.Sprintf("b%d", i), Records: mkRecs(i, i+4)}); err != nil {
				t.Errorf("append: %v", err)
				return
			}
			mu.Lock()
			confirmed = uint64(i + 4)
			mu.Unlock()
			if i%40 == 0 {
				if err := f.Rotate(); err != nil {
					t.Errorf("rotate: %v", err)
					return
				}
			}
		}
	}()

	wg.Add(1)
	go func() { // checkpointer: prunes aggressively behind the writer
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			mu.Lock()
			n := confirmed
			mu.Unlock()
			if n > 0 {
				if err := f.Checkpoint(&Checkpoint{Records: n, Sections: map[string][]byte{}}); err != nil {
					t.Errorf("checkpoint: %v", err)
					return
				}
			}
		}
	}()

	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() { // tailers: replication reads from moving offsets
			defer wg.Done()
			from := uint64(0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				expect := from
				valid := false
				next, err := f.ReadTail(from, func(start uint64, b RawBatch) error {
					if !valid {
						// First unit may straddle `from`; it anchors the scan.
						if start > expect {
							t.Errorf("tail from %d starts at %d (gap)", from, start)
						}
						expect = start
						valid = true
					} else if start != expect {
						t.Errorf("unit at %d, want %d (reorder/gap)", start, expect)
					}
					expect = start + uint64(len(b.Payloads))
					return nil
				})
				if err != nil {
					if errors.Is(err, ErrTailTruncated) {
						// Pruning outran this reader: restart from the floor,
						// exactly the standby's checkpoint-refetch path.
						mu.Lock()
						from = confirmed
						mu.Unlock()
						continue
					}
					t.Errorf("readtail: %v", err)
					return
				}
				if next < from {
					t.Errorf("tail went backwards: from %d to %d", from, next)
					return
				}
				from = next
				f.Stats()
			}
		}()
	}

	wg.Wait()
	// One deterministic final checkpoint (the storm's checkpointer may
	// have lost every race), then the log must recover cleanly.
	if err := f.Checkpoint(&Checkpoint{Records: total, Sections: map[string][]byte{}}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	g := openT(t, FSOptions{Dir: dir, Logf: func(string, ...any) {}})
	cp, err := g.Recover()
	if err != nil || cp == nil || cp.Records != total {
		t.Fatalf("Recover after race: %+v, %v", cp, err)
	}
	_, info := recoverT(t, g, cp.Records)
	if info.NextIndex != total {
		t.Fatalf("next after race = %d, want %d", info.NextIndex, total)
	}
	g.Close()
}
