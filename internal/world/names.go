package world

import (
	"fmt"

	"repro/internal/simrng"
)

// Deterministic name generation for domains and usernames. Names look
// plausible (the typo generator needs realistic character material) but
// never collide with real infrastructure: synthetic domains live under
// invented second-level labels.

var domainSyllables = []string{
	"acme", "blue", "cloud", "data", "east", "fast", "glob", "hong",
	"iron", "jade", "kite", "lake", "mint", "nova", "orbit", "pine",
	"quanta", "river", "star", "tech", "ultra", "vertex", "wave", "xenon",
	"yield", "zen", "north", "south", "micro", "mega", "trade", "ship",
	"bank", "med", "edu", "agro", "petro", "tele", "auto", "aero",
}

var domainSuffixes = []string{"corp", "group", "labs", "net", "sys", "soft", "works", "hub", "link", "mail"}

var tlds = []struct {
	tld    string
	weight float64
}{
	{".com", 52}, {".net", 9}, {".org", 8}, {".com.cn", 6}, {".edu.cn", 5},
	{".de", 4}, {".co.uk", 3}, {".fr", 3}, {".io", 2}, {".co", 2},
	{".com.br", 2}, {".co.jp", 2}, {".in", 2},
}

var tldSampler = func() *simrng.Weighted {
	w := make([]float64, len(tlds))
	for i, t := range tlds {
		w[i] = t.weight
	}
	return simrng.NewWeighted(w)
}()

// randDomain generates a synthetic domain name, unique across calls via
// the taken set.
func randDomain(r *simrng.RNG, taken map[string]bool) string {
	for {
		name := simrng.Pick(r, domainSyllables)
		if r.Bool(0.7) {
			name += simrng.Pick(r, domainSuffixes)
		}
		if r.Bool(0.45) {
			name += fmt.Sprintf("%d", r.IntN(900)+10)
		}
		name += tlds[tldSampler.Sample(r)].tld
		if !taken[name] {
			taken[name] = true
			return name
		}
	}
}

var firstNames = []string{
	"wei", "li", "ming", "hua", "jun", "yan", "lei", "fang", "tao", "jing",
	"alice", "bob", "carol", "david", "erin", "frank", "grace", "henry",
	"ivy", "jack", "karen", "leo", "mona", "nina", "oscar", "paul",
	"qing", "rachel", "sam", "tina", "victor", "wendy", "xin", "yong", "zoe",
}

var lastNames = []string{
	"zhang", "wang", "liu", "chen", "yang", "zhao", "huang", "zhou",
	"smith", "jones", "brown", "miller", "davis", "garcia", "wilson",
	"moore", "taylor", "thomas", "lee", "white", "harris", "clark",
}

// randLocal generates a username in one of several human-habit shapes
// (the same shapes the paper's guessing attackers exploit).
func randLocal(r *simrng.RNG) string {
	f := simrng.Pick(r, firstNames)
	l := simrng.Pick(r, lastNames)
	switch r.IntN(6) {
	case 0:
		return f + "." + l
	case 1:
		return f + l
	case 2:
		return f + "_" + l
	case 3:
		return string(f[0]) + l
	case 4:
		return f + fmt.Sprintf("%d", r.IntN(99)+1)
	default:
		return f + "." + l + fmt.Sprintf("%d", r.IntN(9)+1)
	}
}

// mutateLocal produces username guesses the way the paper's attackers
// do ("combining social engineering to create numerous email addresses
// with mutated usernames... abbreviate, add hyphens").
func mutateLocal(r *simrng.RNG, base string) string {
	switch r.IntN(7) {
	case 0:
		return base + fmt.Sprintf("%d", r.IntN(99)+1)
	case 1:
		if i := indexByte(base, '.'); i > 0 {
			return base[:1] + base[i+1:] // abbreviate first name
		}
		return base[:1] + base
	case 2:
		if i := indexByte(base, '.'); i > 0 {
			return base[:i] + "-" + base[i+1:] // dot -> hyphen
		}
		return base + "-" + string(base[0])
	case 3:
		if i := indexByte(base, '.'); i > 0 {
			return base[i+1:] + "." + base[:i] // swap order
		}
		return "the." + base
	case 4:
		return base + ".work"
	case 5:
		if i := indexByte(base, '.'); i > 0 {
			return base[:i] // first name only
		}
		return base + "1"
	default:
		if i := indexByte(base, '.'); i > 0 {
			return base[:i] + base[i+1:i+2] // first + initial
		}
		return string(base[0]) + "." + base
	}
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}
