package world

import (
	"hash/fnv"
	"time"

	"repro/internal/auth"
	"repro/internal/greylist"
	"repro/internal/mail"
	"repro/internal/ndr"
	"repro/internal/simrng"
	"repro/internal/spamfilter"
)

// Window is a half-open interval of virtual time [From, Until). A zero
// Until means "until the end of the study".
type Window struct {
	From  time.Time
	Until time.Time
}

// Contains reports whether t falls inside the window.
func (w Window) Contains(t time.Time) bool {
	if t.Before(w.From) {
		return false
	}
	return w.Until.IsZero() || t.Before(w.Until)
}

// Bounded reports whether the window closes inside the study.
func (w Window) Bounded() bool { return !w.Until.IsZero() }

// Duration returns the window length (0 for unbounded windows).
func (w Window) Duration() time.Duration {
	if w.Until.IsZero() {
		return 0
	}
	return w.Until.Sub(w.From)
}

// ProxyMTA is one of Coremail's 34 outgoing proxy servers.
type ProxyMTA struct {
	ID       int
	Region   string // country code of the hosting region
	Hostname string
	IP       string
	// TrapExposure multiplies the spamtrap-hit probability for spam
	// routed through this proxy; a few proxies serve trap-dense routes,
	// which is why five of them spend >70% of days blocklisted.
	TrapExposure float64
}

// TLSLevel is the STARTTLS posture of a receiver domain (Section 4.3.1).
type TLSLevel int

// TLS postures.
const (
	TLSNone      TLSLevel = iota // does not support STARTTLS
	TLSSupported                 // offers STARTTLS, accepts plaintext
	TLSMandatory                 // rejects MAIL until STARTTLS
)

// ReceiverPolicy is the protection configuration of one receiver domain.
type ReceiverPolicy struct {
	UsesDNSBL bool
	DNSBLFrom time.Time // adoption date (Figure 6's Feb-2023 jump)

	Greylisting bool

	TLS TLSLevel

	// EnforceAuth rejects mail failing SPF/DKIM (and honors DMARC
	// reject policies).
	EnforceAuth bool

	// AmbiguousNDR makes the domain reply with Table-6 templates for
	// reception refusals instead of informative text.
	AmbiguousNDR bool

	MaxMsgSize int // bytes; 0 = unlimited
	MaxRcpts   int // per message; 0 = unlimited

	// UserDailyLimit bounds per-recipient inbound volume (T11).
	UserDailyLimit int
	// DomainDailyLimit bounds the domain's total inbound volume per day
	// (T11); 0 = unlimited.
	DomainDailyLimit int
	// PerProxyHourlyLimit bounds per-source-IP inbound volume per
	// clock.Hour window (T7).
	PerProxyHourlyLimit int
	// QuirkProb is the probability of an idiosyncratic rejection (T16:
	// RFC-compliance or intrusion-prevention style).
	QuirkProb float64

	// SpamtrapShare is the probability that spam delivered to this
	// domain trips a spamtrap report against the sending proxy.
	SpamtrapShare float64
}

// Mailbox is one recipient account.
type Mailbox struct {
	Local        string
	FullWindows  []Window
	InactiveFrom time.Time // zero = always active
}

// FullAt reports whether the mailbox is over quota at t.
func (m *Mailbox) FullAt(t time.Time) bool {
	for _, w := range m.FullWindows {
		if w.Contains(t) {
			return true
		}
	}
	return false
}

// InactiveAt reports whether the account is deactivated at t.
func (m *Mailbox) InactiveAt(t time.Time) bool {
	return !m.InactiveFrom.IsZero() && !t.Before(m.InactiveFrom)
}

// ReceiverDomain is one live receiver domain with its mail
// infrastructure and policy.
type ReceiverDomain struct {
	Name    string
	Country string
	ASN     int
	Rank    int     // InEmailRank position assigned at generation
	Weight  float64 // popularity share used by the workload sampler

	MXHost string
	MXIP   string

	Policy   ReceiverPolicy
	Users    map[string]*Mailbox
	UserList []string // stable ordering for sampling

	Filter   *spamfilter.Filter
	Greylist *greylist.Greylist

	// MXOutages are the Figure-7 "error MX record" episodes (also
	// installed in the DNS authority as outages).
	MXOutages []Window

	dialectSeed uint64
}

// TemplateFor picks the catalog template index this domain's MTA uses
// for bounce type t, weighted by template prevalence but stable per
// domain — the "dialect" that makes identical causes yield different
// NDR text across ESPs.
func (d *ReceiverDomain) TemplateFor(t ndr.Type, r *simrng.RNG) int {
	idxs := ndr.NonAmbiguousTemplatesFor(t)
	if len(idxs) == 1 {
		return idxs[0]
	}
	// The domain prefers one dialect template but occasionally uses
	// alternates (software updates, clustered MXes).
	h := fnv.New64a()
	h.Write([]byte(d.Name))
	h.Write([]byte{byte(t)})
	preferred := idxs[int(h.Sum64()%uint64(len(idxs)))]
	if r.Bool(0.85) {
		return preferred
	}
	return idxs[r.IntN(len(idxs))]
}

// AmbiguousTemplate picks the Table-6 template this domain replies
// with, dominated by the Microsoft-style Access-denied line.
func (d *ReceiverDomain) AmbiguousTemplate(r *simrng.RNG) int {
	idxs := ndr.AmbiguousTemplates()
	weights := make([]float64, len(idxs))
	for i, idx := range idxs {
		weights[i] = ndr.Catalog[idx].Weight
	}
	return idxs[simrng.NewWeighted(weights).Sample(r)]
}

// UserExists reports whether local names an existing, active-or-not
// mailbox.
func (d *ReceiverDomain) UserExists(local string) bool {
	_, ok := d.Users[local]
	return ok
}

// AttackerKind classifies a sender domain's role.
type AttackerKind int

// Attacker kinds (Section 4.2.1).
const (
	NotAttacker AttackerKind = iota
	UsernameGuesser
	BulkSpammer
)

// SenderDomain is one Coremail customer domain.
type SenderDomain struct {
	Name     string
	Signer   *auth.Signer
	Attacker AttackerKind

	// HasDMARC/DMARCPolicy describe the published DMARC record.
	HasDMARC    bool
	DMARCPolicy auth.DMARCPolicy

	// AuthBreakWindows are the Figure-7 DKIM/SPF misconfiguration
	// episodes (installed in DNS as windowed broken records).
	AuthBreakWindows []Window
	// AlwaysBrokenAuth marks the 25.81% of misconfiguring domains whose
	// records never worked.
	AlwaysBrokenAuth bool

	// DNSOutages are windows where the domain's own DNS is down (T1).
	DNSOutages []Window
}

// AuthBrokenAt reports whether the domain's DKIM/SPF records are broken
// at t.
func (s *SenderDomain) AuthBrokenAt(t time.Time) bool {
	if s.AlwaysBrokenAuth {
		return true
	}
	for _, w := range s.AuthBreakWindows {
		if w.Contains(t) {
			return true
		}
	}
	return false
}

// Contact is one recipient in a sender's address book.
type Contact struct {
	Addr mail.Address
	// Weight is the relative frequency this contact is mailed.
	Weight float64
}

// Sender is one active email account at a customer domain.
type Sender struct {
	Addr     mail.Address
	Dom      *SenderDomain
	Contacts []Contact
	// Volume is the sender's relative share of its domain's traffic.
	Volume float64
	// SpamminessMean centers the latent content spamminess of the
	// sender's messages.
	SpamminessMean float64
	// PersistentTypo, when set, is a misspelled recipient this sender's
	// automation keeps mailing (the forwarding-service failure mode).
	PersistentTypo mail.Address
	// FloodTargets are the guessed-and-confirmed victim addresses a
	// guessing attacker bombards after its campaign.
	FloodTargets []Contact

	contactSampler *simrng.Weighted
}
