package world

import (
	"math"
	"sort"
	"time"

	"repro/internal/clock"
	"repro/internal/mail"
	"repro/internal/simrng"
	"repro/internal/spamfilter"
	"repro/internal/typo"
)

// Submission is one email handed to the delivery engine, with the
// ground truth the generator knows (used by validation tests, never by
// the analysis pipeline).
type Submission struct {
	Msg    *mail.Message
	Sender *Sender

	// Intended is the pre-typo recipient; equal to Msg.To when no typo
	// was injected.
	Intended mail.Address
	// TypoKind is set when a typo was injected into the recipient.
	TypoKind typo.Kind
	// TypoInDomain reports whether the typo hit the domain (vs. the
	// local part).
	TypoInDomain bool
}

// workload holds the lazily initialized day schedule.
type workload struct {
	dayShare  []float64 // fraction of base volume per day
	bulkDays  map[int][]*Sender
	bulkPer   int // emails per spammer per burst day
	guessDays map[int][]*Sender
	guessPer  int
	floodDays map[int][]*Sender
	cursors   map[*Sender]int
}

func (w *World) initWorkload() {
	if w.wl != nil {
		return
	}
	r := w.workRNG
	wl := &workload{
		bulkDays:  map[int][]*Sender{},
		guessDays: map[int][]*Sender{},
		floodDays: map[int][]*Sender{},
		cursors:   map[*Sender]int{},
	}
	sum := 0.0
	wl.dayShare = make([]float64, clock.StudyDays)
	for d := 0; d < clock.StudyDays; d++ {
		wl.dayShare[d] = clock.ActivityFactor(d)
		sum += wl.dayShare[d]
	}
	for d := range wl.dayShare {
		wl.dayShare[d] /= sum
	}

	var bulk, guess []*Sender
	for _, s := range w.Senders {
		switch s.Dom.Attacker {
		case BulkSpammer:
			bulk = append(bulk, s)
		case UsernameGuesser:
			guess = append(guess, s)
		}
	}
	// Bulk spammers run ~25 burst days each, spread over the window.
	bulkTotal := int(float64(w.Cfg.TotalEmails) * w.Cfg.BulkSpamEmailsShare)
	if len(bulk) > 0 {
		burstDays := 25
		wl.bulkPer = maxInt(1, bulkTotal/(len(bulk)*burstDays))
		for _, s := range bulk {
			for i := 0; i < burstDays; i++ {
				d := r.IntN(clock.StudyDays)
				wl.bulkDays[d] = append(wl.bulkDays[d], s)
			}
		}
	}
	// Guessing attackers run three waves over their contact list, then
	// bombard the addresses they confirmed (Section 4.2.1: 39 victims
	// received 536 malicious emails).
	for _, s := range guess {
		waves := 3
		wl.guessPer = maxInt(1, len(s.Contacts)/waves)
		last := 0
		for i := 0; i < waves; i++ {
			d := 30 + r.IntN(clock.StudyDays-90)
			wl.guessDays[d] = append(wl.guessDays[d], s)
			if d > last {
				last = d
			}
		}
		for i := 0; i < w.Cfg.GuessFloodDays; i++ {
			d := last + 3 + r.IntN(30)
			if d >= clock.StudyDays {
				d = clock.StudyDays - 1
			}
			wl.floodDays[d] = append(wl.floodDays[d], s)
		}
	}
	w.wl = wl
}

// EmailsForDay generates the submissions queued on study day d, in
// chronological order. Call it for d = 0..clock.StudyDays-1 to produce
// the full corpus.
func (w *World) EmailsForDay(day int) []*Submission {
	w.initWorkload()
	r := w.workRNG
	baseShare := 1.0 - w.Cfg.BulkSpamEmailsShare
	n := int(float64(w.Cfg.TotalEmails)*baseShare*w.wl.dayShare[day] + 0.5)
	subs := make([]*Submission, 0, n+64)
	for i := 0; i < n; i++ {
		s := w.Senders[w.senderSampler.Sample(r)]
		if len(s.Contacts) == 0 {
			continue
		}
		subs = append(subs, w.makeSubmission(r, s, day, s.Contacts[s.contactSampler.Sample(r)].Addr, true))
	}
	for _, s := range w.wl.bulkDays[day] {
		for i := 0; i < w.wl.bulkPer; i++ {
			c := s.Contacts[w.wl.cursors[s]%len(s.Contacts)]
			w.wl.cursors[s]++
			subs = append(subs, w.makeSubmission(r, s, day, c.Addr, false))
		}
	}
	for _, s := range w.wl.guessDays[day] {
		for i := 0; i < w.wl.guessPer; i++ {
			cur := w.wl.cursors[s]
			if cur >= len(s.Contacts) {
				break
			}
			w.wl.cursors[s]++
			subs = append(subs, w.makeSubmission(r, s, day, s.Contacts[cur].Addr, false))
		}
	}
	for _, s := range w.wl.floodDays[day] {
		for _, target := range s.FloodTargets {
			for i := 0; i < w.Cfg.GuessFloodPerHit; i++ {
				subs = append(subs, w.makeSubmission(r, s, day, target.Addr, false))
			}
		}
	}
	sort.Slice(subs, func(i, j int) bool { return subs[i].Msg.QueuedAt.Before(subs[j].Msg.QueuedAt) })
	return subs
}

var hourSampler = func() *simrng.Weighted {
	weights := make([]float64, 24)
	for h := range weights {
		weights[h] = clock.HourOfDayWeight(h)
	}
	return simrng.NewWeighted(weights)
}()

func (w *World) makeSubmission(r *simrng.RNG, s *Sender, day int, to mail.Address, allowTypos bool) *Submission {
	sub := &Submission{Sender: s, Intended: to}

	if allowTypos {
		if !s.PersistentTypo.IsZero() && r.Bool(0.5) {
			sub.Intended = mail.Address{Local: s.Contacts[0].Addr.Local, Domain: s.PersistentTypo.Domain}
			to = s.PersistentTypo
			sub.TypoKind = typo.Omission // recorded; kind irrelevant for automation typos
		} else if r.Bool(w.Cfg.DomainTypoRate) {
			if cand, kind, ok := w.pickDomainTypo(r, to.Domain); ok {
				to = mail.Address{Local: to.Local, Domain: cand}
				sub.TypoKind, sub.TypoInDomain = kind, true
			}
		} else if r.Bool(w.Cfg.UserTypoRate) {
			if c, ok := pickTypo(r, typo.Username(to.Local)); ok {
				to = mail.Address{Local: c.Name, Domain: to.Domain}
				sub.TypoKind = c.Kind
			}
		}
		// A typo'd (or persistently misconfigured) recipient at a
		// freemail provider is a fresh non-existent address whose
		// registration-UI state gets decided on first contact.
		if sub.TypoKind != typo.KindNone && !sub.TypoInDomain {
			if d := w.DomainByName[to.Domain]; d != nil && !d.UserExists(to.Local) {
				w.AssignGhostState(r, to.Domain, to.Local)
			}
		}
	}

	spamminess := clamp01(s.SpamminessMean + 0.08*r.NormFloat64())
	tokens := spamfilter.GenerateTokens(r, spamminess, 12)
	rcpts := 1
	if allowTypos && r.Bool(w.Cfg.NewsletterShare) {
		rcpts = 2 + r.Poisson(40)
	}
	size := int(r.LogNormal(math.Log(w.Cfg.MsgSizeMedianKB*1024), w.Cfg.MsgSizeSigma))
	if r.Bool(0.0015) {
		size = (8 + r.IntN(70)) << 20 // oversized attachment
	}

	hour := hourSampler.Sample(r)
	qt := clock.DayStart(day).
		Add(time.Duration(hour) * time.Hour).
		Add(time.Duration(r.IntN(3600)) * time.Second)

	w.nextMsg++
	msg := &mail.Message{
		ID:        msgID(w.nextMsg),
		From:      s.Addr,
		To:        to,
		QueuedAt:  qt,
		SizeBytes: size,
		RcptCount: rcpts,
		Tokens:    tokens,
	}
	msg.Flag = mail.FlagNormal
	if w.CoremailFilter.Classify(tokens) {
		msg.Flag = mail.FlagSpam
	}
	sub.Msg = msg
	return sub
}

// pickDomainTypo draws a typo of domain that does not collide with a
// live domain (colliding typos deliver elsewhere and are out of scope,
// as in the paper, which only studies never-resolving typo domains).
func (w *World) pickDomainTypo(r *simrng.RNG, domain string) (string, typo.Kind, bool) {
	cands := typo.Domain(domain)
	if len(cands) == 0 {
		return "", typo.KindNone, false
	}
	for try := 0; try < 4; try++ {
		c, ok := pickTypo(r, cands)
		if !ok {
			break
		}
		if w.DomainByName[c.Name] == nil {
			return c.Name, c.Kind, true
		}
	}
	return "", typo.KindNone, false
}

// typoKindWeight reflects how humans actually mistype (the paper:
// omission dominates at ~40%, then replacement and bitsquatting);
// uniform sampling over candidates would over-represent the prolific
// generators (insertion, bitsquatting).
var typoKindWeight = map[typo.Kind]float64{
	typo.Omission:      0.42,
	typo.Replacement:   0.14,
	typo.Bitsquatting:  0.13,
	typo.Transposition: 0.09,
	typo.Insertion:     0.07,
	typo.Repetition:    0.06,
	typo.VowelSwap:     0.04,
	typo.Hyphenation:   0.03,
	typo.TLDRepetition: 0.02,
}

// pickTypo samples a candidate weighted by kind prevalence.
func pickTypo(r *simrng.RNG, cands []typo.Candidate) (typo.Candidate, bool) {
	if len(cands) == 0 {
		return typo.Candidate{}, false
	}
	byKind := map[typo.Kind][]typo.Candidate{}
	var kinds []typo.Kind
	var weights []float64
	for _, c := range cands {
		if len(byKind[c.Kind]) == 0 {
			kinds = append(kinds, c.Kind)
			weights = append(weights, typoKindWeight[c.Kind])
		}
		byKind[c.Kind] = append(byKind[c.Kind], c)
	}
	for i, w := range weights {
		if w == 0 {
			weights[i] = 0.01
		}
	}
	k := kinds[simrng.NewWeighted(weights).Sample(r)]
	pool := byKind[k]
	return pool[r.IntN(len(pool))], true
}

// typoCandidates returns typo'd local parts for a username.
func typoCandidates(local string) []string {
	cands := typo.Username(local)
	out := make([]string, len(cands))
	for i, c := range cands {
		out[i] = c.Name
	}
	return out
}

func msgID(n int) string {
	const hex = "0123456789abcdef"
	var b [12]byte
	b[0], b[1] = 'm', '-'
	for i := 11; i >= 2; i-- {
		b[i] = hex[n&0xf]
		n >>= 4
	}
	return string(b[:])
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
