package world

import "testing"

func BenchmarkNewTinyWorld(b *testing.B) {
	cfg := TinyConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		New(cfg)
	}
}

func BenchmarkNewDefaultWorld(b *testing.B) {
	cfg := DefaultConfig()
	for i := 0; i < b.N; i++ {
		New(cfg)
	}
}

func BenchmarkEmailsForDay(b *testing.B) {
	w := New(DefaultConfig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.EmailsForDay(i % 450)
	}
}
