package world

import (
	"strings"
	"testing"
	"time"

	"repro/internal/auth"
	"repro/internal/clock"
	"repro/internal/dns"
	"repro/internal/mail"
	"repro/internal/simrng"
	"repro/internal/typo"
)

func tinyWorld(t *testing.T) *World {
	t.Helper()
	return New(TinyConfig())
}

func TestDeterministicGeneration(t *testing.T) {
	a, b := New(TinyConfig()), New(TinyConfig())
	if len(a.Domains) != len(b.Domains) || len(a.Senders) != len(b.Senders) {
		t.Fatal("entity counts differ across identical seeds")
	}
	for i := range a.Domains {
		if a.Domains[i].Name != b.Domains[i].Name || a.Domains[i].MXIP != b.Domains[i].MXIP {
			t.Fatalf("domain %d differs: %s vs %s", i, a.Domains[i].Name, b.Domains[i].Name)
		}
	}
	sa := a.EmailsForDay(10)
	sb := b.EmailsForDay(10)
	if len(sa) != len(sb) {
		t.Fatalf("day-10 submissions differ: %d vs %d", len(sa), len(sb))
	}
	for i := range sa {
		if sa[i].Msg.To != sb[i].Msg.To || sa[i].Msg.ID != sb[i].Msg.ID {
			t.Fatalf("submission %d differs", i)
		}
	}
}

func TestProxyFleet(t *testing.T) {
	w := tinyWorld(t)
	if len(w.Proxies) != 34 {
		t.Fatalf("proxies = %d want 34", len(w.Proxies))
	}
	regions := map[string]int{}
	hot := 0
	for _, p := range w.Proxies {
		regions[p.Region]++
		if p.TrapExposure > 1 {
			hot++
		}
		// Proxy A records must resolve.
		ips, code := w.Resolver.ResolveA(p.Hostname, clock.StudyStart)
		if code != dns.NoError || len(ips) != 1 || ips[0] != p.IP {
			t.Errorf("proxy %s DNS broken: %v %v", p.Hostname, ips, code)
		}
		// Geo must place the proxy in its region.
		cc, asn, ok := w.Geo.Lookup(p.IP)
		if !ok || cc != p.Region || asn != ProxyASN {
			t.Errorf("proxy %s geo lookup: %s/%d/%v", p.Hostname, cc, asn, ok)
		}
	}
	if len(regions) != 6 {
		t.Errorf("proxy regions = %v", regions)
	}
	if hot != 5 {
		t.Errorf("trap-hot proxies = %d want 5", hot)
	}
}

func TestWellKnownDomains(t *testing.T) {
	w := tinyWorld(t)
	gmail := w.DomainByName["gmail.com"]
	if gmail == nil || gmail.Rank != 0 || gmail.ASN != 15169 {
		t.Fatalf("gmail: %+v", gmail)
	}
	hotmail := w.DomainByName["hotmail.com"]
	if hotmail == nil || !hotmail.Policy.UsesDNSBL || !hotmail.Policy.AmbiguousNDR {
		t.Fatalf("hotmail policy: %+v", hotmail.Policy)
	}
	if w.DomainByName["bbva.com"].Policy.TLS != TLSMandatory {
		t.Error("bbva.com should mandate TLS")
	}
	// Weight sum ≈ 1.
	sum := 0.0
	for _, d := range w.Domains {
		sum += d.Weight
	}
	if sum < 0.98 || sum > 1.02 {
		t.Errorf("domain weights sum to %g", sum)
	}
}

func TestReceiverDNSResolvable(t *testing.T) {
	w := tinyWorld(t)
	for _, d := range w.Domains {
		if len(d.MXOutages) > 0 {
			continue
		}
		hosts, code := w.Resolver.ResolveMX(d.Name, clock.StudyStart)
		if code == dns.ServFail {
			continue // injected transient; resolver-level, fine
		}
		if code != dns.NoError || len(hosts) == 0 || hosts[0] != d.MXHost {
			t.Errorf("MX(%s) = %v %v", d.Name, hosts, code)
		}
	}
}

func TestMXOutageVisibleInDNS(t *testing.T) {
	w := New(DefaultConfig())
	found := false
	for _, d := range w.Domains {
		for _, win := range d.MXOutages {
			found = true
			mid := win.From.Add(win.Duration() / 2)
			// Query the authority directly: the resolver layer may also
			// inject transient SERVFAILs, which are not what this test
			// verifies.
			if ans := w.DNS.Query(d.Name, dns.TypeMX, mid); ans.Code != dns.NXDomain {
				t.Errorf("MX(%s) during outage = %v want NXDOMAIN", d.Name, ans.Code)
			}
		}
	}
	if !found {
		t.Error("no MX outages generated at default scale")
	}
}

func TestSenderAuthLifecycle(t *testing.T) {
	w := New(DefaultConfig())
	spf := &auth.SPFEvaluator{Resolver: w.Resolver}
	dkim := &auth.DKIMVerifier{Resolver: w.Resolver}
	proxyIP := w.Proxies[0].IP

	var healthy, broken *SenderDomain
	for _, sd := range w.SenderDomains {
		if sd.AlwaysBrokenAuth && broken == nil {
			broken = sd
		}
		if !sd.AlwaysBrokenAuth && len(sd.AuthBreakWindows) == 0 && len(sd.DNSOutages) == 0 && healthy == nil {
			healthy = sd
		}
	}
	if healthy == nil || broken == nil {
		t.Fatal("world lacks healthy/broken sender domains")
	}

	at := clock.StudyStart.AddDate(0, 0, 7)
	w.Resolver.Flush()
	if got := spf.Evaluate(proxyIP, healthy.Name, at); got != auth.SPFPass {
		t.Errorf("healthy SPF = %v", got)
	}
	sig := healthy.Signer.Sign("m-1")
	if got := dkim.Verify(sig, "m-1", at); got != auth.DKIMPass {
		t.Errorf("healthy DKIM = %v", got)
	}

	w.Resolver.Flush()
	if got := spf.Evaluate(proxyIP, broken.Name, at); got == auth.SPFPass {
		t.Errorf("always-broken SPF passed")
	}
	sig = broken.Signer.Sign("m-2")
	if got := dkim.Verify(sig, "m-2", at); got == auth.DKIMPass {
		t.Errorf("always-broken DKIM passed")
	}
}

func TestEpisodicAuthBreakWindows(t *testing.T) {
	w := New(DefaultConfig())
	spf := &auth.SPFEvaluator{Resolver: w.Resolver}
	proxyIP := w.Proxies[3].IP
	checked := 0
	for _, sd := range w.SenderDomains {
		if sd.AlwaysBrokenAuth || len(sd.AuthBreakWindows) == 0 || len(sd.DNSOutages) > 0 {
			continue
		}
		win := sd.AuthBreakWindows[0]
		if !win.Bounded() || win.From.Before(clock.StudyStart) {
			continue
		}
		mid := win.From.Add(win.Duration() / 2)
		w.Resolver.Flush()
		during := spf.Evaluate(proxyIP, sd.Name, mid)
		w.Resolver.Flush()
		before := spf.Evaluate(proxyIP, sd.Name, win.From.Add(-time.Hour))
		if before != auth.SPFPass {
			t.Errorf("%s before episode: %v", sd.Name, before)
		}
		if during == auth.SPFPass {
			t.Errorf("%s during episode: pass", sd.Name)
		}
		checked++
		if checked >= 5 {
			break
		}
	}
	if checked == 0 {
		t.Error("no bounded auth episodes found")
	}
}

func TestWorkloadVolumeAndOrdering(t *testing.T) {
	w := tinyWorld(t)
	total := 0
	for d := 0; d < clock.StudyDays; d++ {
		subs := w.EmailsForDay(d)
		total += len(subs)
		for i := 1; i < len(subs); i++ {
			if subs[i].Msg.QueuedAt.Before(subs[i-1].Msg.QueuedAt) {
				t.Fatalf("day %d not sorted", d)
			}
		}
		for _, s := range subs {
			if clock.Day(s.Msg.QueuedAt) != d {
				t.Fatalf("submission queued on wrong day: %v vs %d", s.Msg.QueuedAt, d)
			}
		}
	}
	want := w.Cfg.TotalEmails
	if total < want*90/100 || total > want*115/100 {
		t.Errorf("total submissions %d, want ≈%d", total, want)
	}
}

func TestWorkloadWeekendDip(t *testing.T) {
	w := tinyWorld(t)
	// Day 4 is Saturday 2022-06-18; day 6 is Monday 2022-06-20.
	sat := len(w.EmailsForDay(4))
	mon := len(w.EmailsForDay(6))
	if sat >= mon {
		t.Errorf("weekend volume %d >= weekday %d", sat, mon)
	}
}

func TestMessageIDsUnique(t *testing.T) {
	w := tinyWorld(t)
	seen := map[string]bool{}
	for d := 0; d < 30; d++ {
		for _, s := range w.EmailsForDay(d) {
			if seen[s.Msg.ID] {
				t.Fatalf("duplicate message ID %s", s.Msg.ID)
			}
			seen[s.Msg.ID] = true
		}
	}
}

func TestTypoInjectionRates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TotalEmails = 60000
	w := New(cfg)
	var userTypos, domTypos, n int
	for d := 0; d < 60; d++ {
		for _, s := range w.EmailsForDay(d) {
			if s.Sender.Dom.Attacker != NotAttacker || !s.Sender.PersistentTypo.IsZero() {
				continue
			}
			n++
			if s.TypoKind != typo.KindNone {
				if s.TypoInDomain {
					domTypos++
				} else {
					userTypos++
				}
			}
		}
	}
	userRate := float64(userTypos) / float64(n)
	if userRate < cfg.UserTypoRate*0.5 || userRate > cfg.UserTypoRate*1.6 {
		t.Errorf("user typo rate %g want ≈%g", userRate, cfg.UserTypoRate)
	}
	if domTypos == 0 {
		t.Error("no domain typos injected")
	}
}

func TestTypoTargetsMostlyNonexistent(t *testing.T) {
	w := tinyWorld(t)
	for d := 0; d < 120; d++ {
		for _, s := range w.EmailsForDay(d) {
			if s.TypoInDomain {
				if w.DomainByName[s.Msg.To.Domain] != nil {
					t.Errorf("domain typo %s collides with live domain", s.Msg.To.Domain)
				}
			}
		}
	}
}

func TestGuessingAttackerHitRate(t *testing.T) {
	w := New(DefaultConfig())
	var guesser *Sender
	for _, s := range w.Senders {
		if s.Dom.Attacker == UsernameGuesser {
			guesser = s
			break
		}
	}
	if guesser == nil {
		t.Fatal("no guessing attacker")
	}
	victim := w.DomainByName[guesser.Contacts[0].Addr.Domain]
	hits := 0
	for _, c := range guesser.Contacts {
		if c.Addr.Domain != victim.Name {
			t.Fatalf("guesser targets multiple domains")
		}
		if victim.UserExists(c.Addr.Local) {
			hits++
		}
	}
	rate := float64(hits) / float64(len(guesser.Contacts))
	if rate < 0.004 || rate > 0.03 {
		t.Errorf("guess hit rate %g want ≈0.009", rate)
	}
	if len(guesser.Contacts) != w.Cfg.GuessUsernamesPerAttacker {
		t.Errorf("guess list size %d want %d", len(guesser.Contacts), w.Cfg.GuessUsernamesPerAttacker)
	}
}

func TestBulkSpammerLeakShare(t *testing.T) {
	w := New(DefaultConfig())
	for _, s := range w.Senders {
		if s.Dom.Attacker != BulkSpammer {
			continue
		}
		addrs := make([]string, len(s.Contacts))
		for i, c := range s.Contacts {
			addrs[i] = c.Addr.String()
		}
		if share := w.Breach.PwnedShare(addrs); share <= 0.80 {
			t.Errorf("bulk spammer %s leak share %g, want > 0.80", s.Addr, share)
		}
	}
}

func TestSpamFlagging(t *testing.T) {
	w := tinyWorld(t)
	flags := map[mail.Flag]int{}
	for d := 100; d < 160; d++ {
		for _, s := range w.EmailsForDay(d) {
			flags[s.Msg.Flag]++
		}
	}
	total := flags[mail.FlagSpam] + flags[mail.FlagNormal]
	spamShare := float64(flags[mail.FlagSpam]) / float64(total)
	if spamShare < 0.01 || spamShare > 0.30 {
		t.Errorf("spam share %g out of plausible range", spamShare)
	}
}

func TestFreemailRegistries(t *testing.T) {
	w := tinyWorld(t)
	for _, p := range FreemailProviders {
		if w.UserRegs[p] == nil {
			t.Errorf("no username registry for %s", p)
		}
	}
	yahoo := w.UserRegs["yahoo.com"]
	if !yahoo.RecyclesAccounts {
		t.Error("yahoo should recycle accounts")
	}
	if w.UserRegs["hotmail.com"].RecyclesAccounts {
		t.Error("hotmail should not recycle accounts")
	}
	// Active users must be registered active.
	d := w.DomainByName["yahoo.com"]
	for _, local := range d.UserList[:minInt(5, len(d.UserList))] {
		st := yahoo.State(local)
		if st != 1 && st != 4 { // UserActive or UserRecycled
			t.Errorf("yahoo user %s state %v", local, st)
		}
	}
}

func TestDeadDomainsExpiredAndAudited(t *testing.T) {
	w := New(DefaultConfig())
	if len(w.DeadDomains) != w.Cfg.DeadDomains {
		t.Fatalf("dead domains = %d", len(w.DeadDomains))
	}
	reRegistered := 0
	auditDate := time.Date(2024, 2, 3, 0, 0, 0, 0, time.UTC)
	for _, dd := range w.DeadDomains {
		// Dead after expiry: MX must not resolve.
		w.Resolver.Flush()
		after := dd.ExpiredAt.Add(24 * time.Hour)
		if after.Before(clock.StudyEnd) {
			if _, code := w.Resolver.ResolveMX(dd.Name, after); code == dns.NoError {
				t.Errorf("dead domain %s resolves after expiry", dd.Name)
			}
		}
		if _, ok := w.Registry.CurrentRegistration(dd.Name, auditDate); ok {
			reRegistered++
		}
	}
	if reRegistered == 0 {
		t.Error("no dead domains re-registered by audit time")
	}
}

func TestMailboxEpisodes(t *testing.T) {
	w := New(DefaultConfig())
	full, inactive, total := 0, 0, 0
	for _, d := range w.Domains {
		for _, m := range d.Users {
			total++
			if len(m.FullWindows) > 0 {
				full++
			}
			if !m.InactiveFrom.IsZero() {
				inactive++
			}
		}
	}
	if full == 0 || inactive == 0 {
		t.Fatalf("full=%d inactive=%d of %d mailboxes", full, inactive, total)
	}
	rate := float64(full) / float64(total)
	if rate < 0.004 || rate > 0.15 {
		t.Errorf("mailbox-full rate %g implausible", rate)
	}
}

func TestTemplateDialectStable(t *testing.T) {
	w := tinyWorld(t)
	d := w.Domains[3]
	r := simrng.New(9)
	counts := map[int]int{}
	for i := 0; i < 200; i++ {
		counts[d.TemplateFor(8, r)]++ // T8NoSuchUser
	}
	// One preferred template should dominate (~85%).
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 140 {
		t.Errorf("dialect not stable: %v", counts)
	}
}

func TestPersistentTypoSenderExists(t *testing.T) {
	w := New(DefaultConfig())
	found := 0
	for _, s := range w.Senders {
		if !s.PersistentTypo.IsZero() {
			found++
			if w.DomainByName[s.PersistentTypo.Domain] == nil {
				t.Errorf("persistent typo at unknown domain %s", s.PersistentTypo.Domain)
			}
		}
	}
	if found == 0 {
		t.Error("no forwarding-typo senders generated")
	}
}

func TestSubmissionAddressesParse(t *testing.T) {
	w := tinyWorld(t)
	for _, s := range w.EmailsForDay(50) {
		if _, err := mail.ParseAddress(s.Msg.To.String()); err != nil {
			t.Errorf("unparseable recipient %q", s.Msg.To)
		}
		if _, err := mail.ParseAddress(s.Msg.From.String()); err != nil {
			t.Errorf("unparseable sender %q", s.Msg.From)
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

var _ = strings.Contains
