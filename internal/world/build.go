package world

import (
	"fmt"
	"math"
	"time"

	"repro/internal/auth"
	"repro/internal/breach"
	"repro/internal/clock"
	"repro/internal/dns"
	"repro/internal/dnsbl"
	"repro/internal/geo"
	"repro/internal/greylist"
	"repro/internal/mail"
	"repro/internal/registrar"
	"repro/internal/simrng"
	"repro/internal/spamfilter"
)

// ProxyASN is the AS number of Coremail's international proxy fleet.
const ProxyASN = 63888

// SPFIncludeName is the shared SPF record customer domains include,
// authorizing all 34 proxy IPs.
const SPFIncludeName = "_spf.coremail-intl.example"

// FreemailProviders are the five registration-probeable providers of
// Section 5.1.
var FreemailProviders = []string{"gmail.com", "hotmail.com", "yahoo.com", "outlook.com", "aol.com"}

// World is one fully generated ecosystem.
type World struct {
	Cfg Config

	Geo       *geo.DB
	DNS       *dns.Authority
	Resolver  *dns.Resolver
	Blocklist *dnsbl.Blocklist
	Breach    *breach.Corpus
	Registry  *registrar.Registry
	UserRegs  map[string]*registrar.UsernameRegistry

	Proxies       []*ProxyMTA
	Domains       []*ReceiverDomain
	DomainByName  map[string]*ReceiverDomain
	DeadDomains   []*DeadDomain
	SenderDomains []*SenderDomain
	Senders       []*Sender

	CoremailFilter *spamfilter.Filter

	// TrapProb is the auto-scaled per-spam spamtrap hit probability
	// (see Config.SpamtrapHitProb).
	TrapProb float64

	domainSampler *simrng.Weighted
	senderSampler *simrng.Weighted
	workRNG       *simrng.RNG
	wl            *workload
	nextMsg       int
}

// DeadDomain is an expired domain real users still write to.
type DeadDomain struct {
	Name      string
	ExpiredAt time.Time // may precede the study window
}

// wellKnown pins the paper's Table-3 top receiver domains with their
// volume shares (fractions of all email), hosting AS, MTA country, and
// policy traits. aol.com is added for the Section-5.1 probe set.
var wellKnown = []struct {
	name        string
	frac        float64
	asn         int
	country     string
	fullMult    float64
	dnsbl       bool
	enforce     bool
	ambiguous   bool
	tls         TLSLevel
	spamMagnet  float64 // extra weight as a bulk-spam target
	trapShare   float64
	recycleable bool
}{
	{"gmail.com", 0.0796, 15169, "US", 2.5, false, true, false, TLSSupported, 3.0, 0.05, false},
	{"hotmail.com", 0.0163, 8075, "US", 1.2, true, true, true, TLSSupported, 4.0, 0.06, false},
	{"yahoo.com", 0.0104, 10310, "US", 2.0, true, true, false, TLSSupported, 4.0, 0.06, true},
	{"apple.com", 0.0099, 714, "US", 0.8, false, true, false, TLSSupported, 1.5, 0.03, false},
	{"bbva.com", 0.0098, 52129, "ES", 0.2, false, false, false, TLSMandatory, 0.1, 0.02, false},
	{"cma-cgm.com", 0.0065, 22843, "FR", 0.2, false, false, false, TLSSupported, 0.2, 0.02, false},
	{"outlook.com", 0.0059, 8075, "US", 1.2, true, true, true, TLSSupported, 4.0, 0.06, false},
	{"dbschenker.com", 0.0050, 26211, "DE", 0.2, false, false, false, TLSSupported, 0.2, 0.02, false},
	{"dhl.com", 0.0046, 16417, "DE", 0.2, false, false, false, TLSMandatory, 0.2, 0.02, false},
	{"amazon.com", 0.0044, 16509, "US", 0.2, false, false, false, TLSSupported, 0.5, 0.04, false},
	{"aol.com", 0.0040, 10310, "US", 1.8, true, true, false, TLSSupported, 2.0, 0.05, true},
}

// hostedAS assigns corporate-domain MX hosting: the Office-365 /
// Google-Workspace / security-vendor concentration that produces the
// paper's Table 4.
var hostedAS = []struct {
	asn    int
	weight float64
}{
	{8075, 33}, {15169, 13}, {16509, 4.5}, {52129, 2.8}, {22843, 2.2},
	{26211, 1.8}, {3462, 1.7}, {16417, 1.1}, {30238, 1.0}, {0, 39}, // 0 = generic country AS
}

// New generates a world from cfg. Generation is deterministic in
// cfg.Seed.
func New(cfg Config) *World {
	root := simrng.New(cfg.Seed)
	w := &World{
		Cfg:          cfg,
		Geo:          geo.NewDB(),
		DNS:          dns.NewAuthority(),
		Breach:       breach.NewCorpus(),
		Registry:     registrar.NewRegistry(),
		UserRegs:     make(map[string]*registrar.UsernameRegistry),
		DomainByName: make(map[string]*ReceiverDomain),
	}
	blCfg := dnsbl.DefaultConfig()
	blCfg.ReportThreshold = 1  // Spamhaus-style: one trap hit lists the source
	blCfg.DelistMeanHours = 60 // delisting "is not always simple and timely"
	w.Blocklist = dnsbl.New(blCfg, root.Stream("dnsbl"))
	w.TrapProb = cfg.SpamtrapHitProb
	if w.TrapProb == 0 {
		// Auto-scale so that expected trap reports keep roughly half the
		// proxy fleet listed regardless of corpus size.
		w.TrapProb = 90000 / float64(cfg.TotalEmails)
		if w.TrapProb > 1 {
			w.TrapProb = 1
		}
		if w.TrapProb < 0.02 {
			w.TrapProb = 0.02
		}
	}
	w.Resolver = dns.NewResolver(w.DNS, root.Stream("resolver"))
	w.Resolver.TransientFailProb = cfg.TransientDNSFailProb
	w.CoremailFilter = spamfilter.NewCanonical("coremail")
	w.Geo.RegisterASOrg(ProxyASN, "Coremail International")
	w.Geo.RegisterASOrg(10310, "Yahoo (Oath Holdings)")
	w.workRNG = root.Stream("workload")

	taken := map[string]bool{}
	for _, wk := range wellKnown {
		taken[wk.name] = true
	}
	w.buildProxies(root.Stream("proxies"))
	w.buildReceiverDomains(root.Stream("receivers"), taken)
	w.buildDomainSampler()
	w.buildDeadDomains(root.Stream("dead"), taken)
	w.buildSenderDomains(root.Stream("senderdoms"), taken)
	w.buildSenders(root.Stream("senders"))
	w.buildSenderSampler()
	return w
}

func (w *World) buildProxies(r *simrng.RNG) {
	// Five proxies carry trap-dense routes (the paper's five proxies
	// blocklisted on >70% of days).
	hot := map[int]bool{1: true, 5: true, 12: true, 20: true, 28: true}
	id := 0
	var spfTerms string
	for _, region := range geo.ProxyRegions {
		for i := 0; i < region.Proxies; i++ {
			p := &ProxyMTA{
				ID:       id,
				Region:   region.Code,
				Hostname: fmt.Sprintf("proxy%d.coremail-intl.example", id),
				IP:       w.Geo.AllocIP(region.Code, ProxyASN),
			}
			p.TrapExposure = 1.0
			if hot[id] {
				p.TrapExposure = 6.0
			}
			w.Proxies = append(w.Proxies, p)
			w.DNS.Add(dns.Record{Name: p.Hostname, Type: dns.TypeA, A: p.IP})
			spfTerms += " ip4:" + p.IP
			id++
		}
	}
	w.DNS.Add(dns.Record{Name: SPFIncludeName, Type: dns.TypeTXT, TXT: "v=spf1" + spfTerms + " -all"})
}

func (w *World) buildReceiverDomains(r *simrng.RNG, taken map[string]bool) {
	cfg := w.Cfg
	n := cfg.ReceiverDomains
	if n < len(wellKnown) {
		n = len(wellKnown)
	}
	// Popularity: pinned top shares + Zipf tail over the remainder.
	var topMass float64
	for _, wk := range wellKnown {
		topMass += wk.frac
	}
	tailN := n - len(wellKnown)
	zipf := simrng.NewZipf(maxInt(tailN, 1), cfg.ZipfS)

	hostedW := make([]float64, len(hostedAS))
	for i, h := range hostedAS {
		hostedW[i] = h.weight
	}
	hostedSampler := simrng.NewWeighted(hostedW)

	for i := 0; i < n; i++ {
		var d *ReceiverDomain
		if i < len(wellKnown) {
			wk := wellKnown[i]
			d = &ReceiverDomain{
				Name:    wk.name,
				Country: wk.country,
				ASN:     wk.asn,
				Weight:  wk.frac,
			}
			d.Policy = ReceiverPolicy{
				UsesDNSBL:           wk.dnsbl,
				DNSBLFrom:           clock.StudyStart,
				TLS:                 wk.tls,
				EnforceAuth:         wk.enforce,
				AmbiguousNDR:        wk.ambiguous,
				MaxMsgSize:          25 << 20,
				MaxRcpts:            100,
				UserDailyLimit:      60,
				PerProxyHourlyLimit: 0, // set below from volume
				SpamtrapShare:       wk.trapShare,
			}
		} else {
			country := w.Geo.SampleCountry(r)
			asn := hostedAS[hostedSampler.Sample(r)].asn
			if asn == 0 {
				asn = geo.GenericASN(country.Code)
				w.Geo.RegisterASOrg(asn, country.Name+" Regional ISP")
			}
			d = &ReceiverDomain{
				Name:    randDomain(r, taken),
				Country: country.Code,
				ASN:     asn,
				Weight:  (1 - topMass) * zipf.Prob(i-len(wellKnown)),
			}
			d.Policy = ReceiverPolicy{
				MaxMsgSize:     25 << 20,
				MaxRcpts:       100,
				UserDailyLimit: 60,
				SpamtrapShare:  0.015,
			}
			if r.Bool(cfg.DNSBLAdoptionRate) {
				d.Policy.UsesDNSBL = true
				if r.Bool(cfg.DNSBLFebAdoptersShare) {
					d.Policy.DNSBLFrom = time.Date(2023, 2, 1, 0, 0, 0, 0, time.UTC)
				} else {
					d.Policy.DNSBLFrom = clock.StudyStart
				}
			}
			if r.Bool(cfg.AuthEnforceRate) {
				d.Policy.EnforceAuth = true
			}
			if r.Bool(cfg.AmbiguousNDRRate) {
				d.Policy.AmbiguousNDR = true
			}
			switch {
			case i < 100 && r.Bool(cfg.TLSMandateTop100):
				d.Policy.TLS = TLSMandatory
			case r.Bool(cfg.TLSMandateRest):
				d.Policy.TLS = TLSMandatory
			case r.Bool(0.75):
				d.Policy.TLS = TLSSupported
			default:
				d.Policy.TLS = TLSNone
			}
			if i >= 40 && i < 300 && r.Bool(cfg.GreylistAdoptionRate) {
				d.Policy.Greylisting = true
				d.Greylist = greylist.NewPrefix(300*time.Second, 30*24*time.Hour, cfg.GreylistPrefixBits)
			}
			if r.Bool(0.02) {
				d.Policy.MaxMsgSize = (2 + r.IntN(6)) << 20 // strict 2-7 MB
			}
			if r.Bool(0.3) {
				d.Policy.MaxRcpts = 20 + r.IntN(60)
			}
			if r.Bool(cfg.QuirkDomainRate) {
				d.Policy.QuirkProb = cfg.QuirkProb
			}
			if r.Bool(cfg.DomainLimitRate) {
				d.Policy.DomainDailyLimit = -1 // resolved from volume below
			}
		}
		d.Rank = i
		d.dialectSeed = r.Uint64()
		d.Filter = spamfilter.NewPerturbed(d.Name, r.Stream("filter:"+d.Name), 0.55, (r.Float64()-0.62)*0.3)
		d.MXHost = "mx1." + d.Name
		d.MXIP = w.Geo.AllocIP(d.Country, d.ASN)
		w.DNS.Add(dns.Record{Name: d.Name, Type: dns.TypeNS, Target: "ns1." + d.Name})
		w.DNS.Add(dns.Record{Name: d.Name, Type: dns.TypeMX, MX: dns.MX{Host: d.MXHost, Pref: 10}})
		w.DNS.Add(dns.Record{Name: d.MXHost, Type: dns.TypeA, A: d.MXIP})
		w.Registry.Register(d.Name, "org:"+d.Name, time.Date(2012, 1, 1, 0, 0, 0, 0, time.UTC), time.Time{}, true)

		w.populateUsers(r, d, i)
		w.scheduleMXOutages(r, d)
		w.Domains = append(w.Domains, d)
		w.DomainByName[d.Name] = d
	}
	// Per-proxy hourly limits scale with expected volume: receivers
	// throttle sources that exceed ~5x their fair peak-hour share (T7).
	// The peak hour carries ~9.5% of a day's volume (HourOfDayWeight),
	// so the threshold is half the source's fair daily share. The floor
	// is 1/hour: at simulation scale a single proxy rarely lands two
	// fresh emails on one domain in the same hour unless a campaign is
	// behind them, which is exactly the burst the throttle exists for.
	dailyMean := float64(cfg.TotalEmails) / clock.StudyDays
	for _, d := range w.Domains {
		perProxyDay := d.Weight * dailyMean / float64(len(w.Proxies))
		d.Policy.PerProxyHourlyLimit = maxInt(1, int(perProxyDay*0.5))
		if d.Policy.DomainDailyLimit == -1 {
			mean := d.Weight * dailyMean
			d.Policy.DomainDailyLimit = maxInt(3, int(mean*(1.6+r.Float64())))
		}
	}
	// Chronic MX breakage: a few mid-popularity domains stay broken for
	// months, carrying the Figure-7 long tail and most of T2's volume.
	chronic := 0
	for _, d := range w.Domains {
		if chronic >= cfg.ChronicMXDomains {
			break
		}
		if d.Rank < 15 || d.Rank > 100 || len(d.MXOutages) > 0 {
			continue
		}
		start := clock.StudyStart.AddDate(0, 0, 30+r.IntN(150))
		win := Window{From: start, Until: start.AddDate(0, 0, 60+r.IntN(140))}
		d.MXOutages = append(d.MXOutages, win)
		w.DNS.AddOutage(dns.Outage{
			Name: d.Name, Types: []dns.RType{dns.TypeMX},
			Code: dns.NXDomain, From: win.From, Until: win.Until,
		})
		chronic++
	}
}

// populateUsers creates the mailbox pool, quota/inactive schedules, the
// breach-corpus entries, and the freemail username registries.
func (w *World) populateUsers(r *simrng.RNG, d *ReceiverDomain, rank int) {
	cfg := w.Cfg
	base := float64(cfg.UsersPerDomainBase)
	if base <= 0 {
		base = 40
	}
	// Pool sizes grow sublinearly with volume: distinct correspondents
	// scale with the square root of traffic. The default base of 40
	// yields a 2x multiplier.
	pool := int(math.Sqrt(d.Weight*float64(cfg.TotalEmails))*(base/20)) + 4
	if pool > 4000 {
		pool = 4000
	}
	fullMult := 1.0
	if rank < len(wellKnown) {
		fullMult = wellKnown[rank].fullMult
	}
	var ureg *registrar.UsernameRegistry
	if isFreemail(d.Name) {
		ureg = registrar.NewUsernameRegistry(d.Name, d.Name == "yahoo.com" || d.Name == "aol.com")
		w.UserRegs[d.Name] = ureg
	}
	d.Users = make(map[string]*Mailbox, pool)
	for i := 0; i < pool; i++ {
		local := randLocal(r)
		for d.Users[local] != nil {
			local = randLocal(r) + fmt.Sprintf("%d", r.IntN(999))
		}
		m := &Mailbox{Local: local}
		if r.Bool(cfg.MailboxFullRate * fullMult) {
			m.FullWindows = w.quotaWindows(r)
		}
		if r.Bool(cfg.InactiveRate) {
			m.InactiveFrom = clock.StudyStart.AddDate(0, 0, r.IntN(clock.StudyDays))
		}
		d.Users[local] = m
		d.UserList = append(d.UserList, local)
		if ureg != nil {
			state := registrar.UserActive
			// Deleted-then-recycled accounts: the residual-trust takeover
			// vector (mostly at recycling providers).
			if ureg.RecyclesAccounts && r.Bool(0.035) {
				state = registrar.UserRecycled
				m.InactiveFrom = clock.StudyStart.AddDate(0, 0, r.IntN(200))
			}
			ureg.SetState(local, state)
		}
		// Half of freemail users appear in the leak corpus.
		if isFreemail(d.Name) && r.Bool(0.5) {
			w.Breach.Add(local + "@" + d.Name)
		}
	}
}

// quotaWindows draws the Figure-7 mailbox-full episodes: most full
// mailboxes never recover inside the window; the rest fix after a
// log-normal delay (median ~31 days).
func (w *World) quotaWindows(r *simrng.RNG) []Window {
	start := clock.StudyStart.AddDate(0, 0, r.IntN(clock.StudyDays*3/4))
	if r.Bool(w.Cfg.ConsistentlyFullShare) {
		return []Window{{From: start}}
	}
	n := 1
	if r.Bool(0.15) {
		n = 2 // repeat offenders
	}
	var out []Window
	for i := 0; i < n; i++ {
		days := r.LogNormal(math.Log(w.Cfg.FullFixMedianDays), 1.0)
		until := start.Add(time.Duration(days * 24 * float64(time.Hour)))
		out = append(out, Window{From: start, Until: until})
		start = until.AddDate(0, 0, 20+r.IntN(60))
	}
	return out
}

// scheduleMXOutages draws the Figure-7 MX misconfiguration episodes and
// installs them as DNS outages.
func (w *World) scheduleMXOutages(r *simrng.RNG, d *ReceiverDomain) {
	if !r.Bool(w.Cfg.MXErrorRate) {
		return
	}
	n := 1 + r.IntN(2)
	for i := 0; i < n; i++ {
		start := clock.StudyStart.AddDate(0, 0, r.IntN(clock.StudyDays-1))
		hours := r.LogNormal(math.Log(w.Cfg.MXFixMedianHours), 1.3)
		win := Window{From: start, Until: start.Add(time.Duration(hours * float64(time.Hour)))}
		d.MXOutages = append(d.MXOutages, win)
		w.DNS.AddOutage(dns.Outage{
			Name: d.Name, Types: []dns.RType{dns.TypeMX},
			Code: dns.NXDomain, From: win.From, Until: win.Until,
		})
	}
}

func (w *World) buildDeadDomains(r *simrng.RNG, taken map[string]bool) {
	for i := 0; i < w.Cfg.DeadDomains; i++ {
		name := randDomain(r, taken)
		var expired time.Time
		if r.Bool(0.3) {
			// Died mid-study: resolvable (and delivering) until expiry.
			expired = clock.StudyStart.AddDate(0, 0, 30+r.IntN(clock.StudyDays-60))
			w.DNS.Add(dns.Record{Name: name, Type: dns.TypeMX, MX: dns.MX{Host: "mx1." + name, Pref: 10}, Until: expired})
			w.DNS.Add(dns.Record{Name: "mx1." + name, Type: dns.TypeA, A: w.Geo.AllocIP("US", geo.GenericASN("US")), Until: expired})
		} else {
			expired = clock.StudyStart.AddDate(0, 0, -r.IntN(700)-30)
		}
		w.Registry.Register(name, "orig:"+name, expired.AddDate(-5, 0, 0), expired, true)
		// A quarter get re-registered after the study (the paper's
		// Feb-2024 audit: 751 of 3K re-registered; 105 with MX; 56%
		// same registrant, 27% changed).
		if r.Bool(0.25) {
			reRegAt := time.Date(2023, 10, 1, 0, 0, 0, 0, time.UTC).AddDate(0, 0, r.IntN(120))
			registrant := "orig:" + name
			if r.Bool(0.32) {
				registrant = fmt.Sprintf("newreg:%d", r.IntN(1000))
			}
			w.Registry.Register(name, registrant, reRegAt, time.Time{}, r.Bool(0.14))
		}
		w.DeadDomains = append(w.DeadDomains, &DeadDomain{Name: name, ExpiredAt: expired})
	}
}

func (w *World) buildSenderDomains(r *simrng.RNG, taken map[string]bool) {
	cfg := w.Cfg
	n := cfg.SenderDomains
	attackers := make([]AttackerKind, n)
	for i := 0; i < cfg.GuessingAttackers && i < n; i++ {
		attackers[i] = UsernameGuesser
	}
	for i := cfg.GuessingAttackers; i < cfg.GuessingAttackers+cfg.BulkSpamAttackers && i < n; i++ {
		attackers[i] = BulkSpammer
	}
	r.Shuffle(n, func(i, j int) { attackers[i], attackers[j] = attackers[j], attackers[i] })

	for i := 0; i < n; i++ {
		name := randDomain(r, taken)
		var seed [32]byte
		for j := range seed {
			seed[j] = byte(r.IntN(256))
		}
		sd := &SenderDomain{
			Name:     name,
			Signer:   auth.NewSigner(name, "s1", seed),
			Attacker: attackers[i],
		}
		// Base DNS: NS + good SPF + good DKIM key, possibly interrupted
		// by misconfiguration episodes below.
		w.DNS.Add(dns.Record{Name: name, Type: dns.TypeNS, Target: "ns1." + name})
		if r.Bool(0.6) {
			sd.HasDMARC = true
			switch {
			case r.Bool(0.15):
				sd.DMARCPolicy = auth.DMARCReject
			case r.Bool(0.3):
				sd.DMARCPolicy = auth.DMARCQuarantine
			default:
				sd.DMARCPolicy = auth.DMARCNone
			}
			w.DNS.Add(dns.Record{Name: "_dmarc." + name, Type: dns.TypeTXT,
				TXT: "v=DMARC1; p=" + sd.DMARCPolicy.String()})
		}
		if sd.Attacker == NotAttacker && r.Bool(cfg.SenderAuthBreakRate) {
			w.scheduleAuthEpisodes(r, sd)
		} else {
			w.publishGoodAuth(sd, Window{From: clock.StudyStart.AddDate(-1, 0, 0)})
		}
		if sd.Attacker == NotAttacker && r.Bool(cfg.SenderDNSOutageRate) {
			start := clock.StudyStart.AddDate(0, 0, r.IntN(clock.StudyDays-2))
			until := start.Add(time.Duration(r.LogNormal(math.Log(36), 0.9) * float64(time.Hour)))
			sd.DNSOutages = append(sd.DNSOutages, Window{From: start, Until: until})
			w.DNS.AddOutage(dns.Outage{Name: name, Code: dns.ServFail, From: start, Until: until})
			w.DNS.AddOutage(dns.Outage{Name: sd.Signer.RecordName(), Code: dns.ServFail, From: start, Until: until})
		}
		w.SenderDomains = append(w.SenderDomains, sd)
	}
}

// publishGoodAuth installs working SPF + DKIM records for the window.
func (w *World) publishGoodAuth(sd *SenderDomain, win Window) {
	w.DNS.Add(dns.Record{Name: sd.Name, Type: dns.TypeTXT,
		TXT: "v=spf1 include:" + SPFIncludeName + " -all", From: win.From, Until: win.Until})
	w.DNS.Add(dns.Record{Name: sd.Signer.RecordName(), Type: dns.TypeTXT,
		TXT: sd.Signer.TXTRecord(), From: win.From, Until: win.Until})
}

// publishBrokenAuth installs broken records for the window: SPF that
// no longer authorizes the proxies, and a corrupted DKIM key.
func (w *World) publishBrokenAuth(sd *SenderDomain, win Window) {
	w.DNS.Add(dns.Record{Name: sd.Name, Type: dns.TypeTXT,
		TXT: "v=spf1 ip4:198.51.100.17 -all", From: win.From, Until: win.Until})
	w.DNS.Add(dns.Record{Name: sd.Signer.RecordName(), Type: dns.TypeTXT,
		TXT: sd.Signer.BrokenTXTRecord(), From: win.From, Until: win.Until})
}

// scheduleAuthEpisodes draws the Figure-7 DKIM/SPF misconfiguration
// schedule for a domain: always-broken, recurrent, or one-off.
func (w *World) scheduleAuthEpisodes(r *simrng.RNG, sd *SenderDomain) {
	cfg := w.Cfg
	switch {
	case r.Bool(cfg.AuthAlwaysBrokenShare):
		sd.AlwaysBrokenAuth = true
		w.publishBrokenAuth(sd, Window{From: clock.StudyStart.AddDate(-1, 0, 0)})
		return
	case r.Bool(cfg.AuthRecurrentShare / (1 - cfg.AuthAlwaysBrokenShare)):
		n := 2 + r.IntN(3)
		cursor := clock.StudyStart
		preStudy := clock.StudyStart.AddDate(-1, 0, 0)
		prevEnd := preStudy
		for i := 0; i < n; i++ {
			gap := time.Duration(r.Exp(float64(clock.StudyDays)/float64(n+1)) * 24 * float64(time.Hour))
			start := cursor.Add(gap)
			days := r.LogNormal(math.Log(cfg.AuthFixMedianDays), 1.0)
			end := start.Add(time.Duration(days * 24 * float64(time.Hour)))
			w.publishGoodAuth(sd, Window{From: prevEnd, Until: start})
			w.publishBrokenAuth(sd, Window{From: start, Until: end})
			sd.AuthBreakWindows = append(sd.AuthBreakWindows, Window{From: start, Until: end})
			prevEnd = end
			cursor = end.AddDate(0, 0, 10)
		}
		w.publishGoodAuth(sd, Window{From: prevEnd})
	default:
		start := clock.StudyStart.AddDate(0, 0, r.IntN(clock.StudyDays*3/4))
		days := r.LogNormal(math.Log(cfg.AuthFixMedianDays), 1.0)
		end := start.Add(time.Duration(days * 24 * float64(time.Hour)))
		w.publishGoodAuth(sd, Window{From: clock.StudyStart.AddDate(-1, 0, 0), Until: start})
		w.publishBrokenAuth(sd, Window{From: start, Until: end})
		w.publishGoodAuth(sd, Window{From: end})
		sd.AuthBreakWindows = append(sd.AuthBreakWindows, Window{From: start, Until: end})
	}
}

func (w *World) buildSenders(r *simrng.RNG) {
	cfg := w.Cfg
	forwardingLeft := cfg.ForwardingTypoSenders
	for _, sd := range w.SenderDomains {
		n := maxInt(1, r.Poisson(float64(cfg.SendersPerDomain)))
		switch sd.Attacker {
		case UsernameGuesser:
			w.Senders = append(w.Senders, w.buildGuessingSender(r, sd))
			continue
		case BulkSpammer:
			w.Senders = append(w.Senders, w.buildBulkSpammer(r, sd))
			continue
		}
		for i := 0; i < n; i++ {
			s := &Sender{
				Addr:   mail.Address{Local: randLocal(r), Domain: sd.Name},
				Dom:    sd,
				Volume: r.Pareto(1, 1.3),
			}
			if r.Bool(0.08) {
				s.SpamminessMean = 0.32 // marketing / newsletters
				s.Volume *= 0.6
			} else {
				s.SpamminessMean = 0.08
			}
			if sd.AlwaysBrokenAuth {
				// Domains that never fixed their records are marginal
				// senders; heavy senders notice and fix.
				s.Volume *= 0.12
			}
			w.buildContacts(r, s)
			if forwardingLeft > 0 && r.Bool(0.02) && len(s.Contacts) > 0 {
				// Automated forwarding with a persistent username typo.
				base := s.Contacts[0].Addr
				if cands := typoCandidates(base.Local); len(cands) > 0 {
					s.PersistentTypo = mail.Address{Local: simrng.Pick(r, cands), Domain: base.Domain}
					s.Volume *= 3
					forwardingLeft--
				}
			}
			w.Senders = append(w.Senders, s)
		}
	}
}

// buildContacts fills a sender's address book: mostly existing users at
// popularity-sampled domains, a few stale addresses, and (for ~6% of
// senders) legacy contacts at dead domains.
func (w *World) buildContacts(r *simrng.RNG, s *Sender) {
	cfg := w.Cfg
	n := maxInt(3, r.Poisson(float64(cfg.ContactsPerSender)))
	legacy := r.Bool(0.06) && len(w.DeadDomains) > 0
	weights := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		var addr mail.Address
		if legacy && i < 2 {
			dd := simrng.Pick(r, w.DeadDomains)
			addr = mail.Address{Local: randLocal(r), Domain: dd.Name}
		} else {
			d := w.Domains[w.domainIdx(r)]
			if r.Bool(cfg.StaleContactRate) || len(d.UserList) == 0 {
				addr = mail.Address{Local: w.ghostLocal(r, d), Domain: d.Name}
			} else {
				addr = mail.Address{Local: simrng.Pick(r, d.UserList), Domain: d.Name}
			}
		}
		s.Contacts = append(s.Contacts, Contact{Addr: addr, Weight: r.Pareto(1, 1.5)})
		weights = append(weights, s.Contacts[len(s.Contacts)-1].Weight)
	}
	s.contactSampler = simrng.NewWeighted(weights)
}

// ghostLocal invents a non-existent local part at d and assigns its
// registration-UI state.
func (w *World) ghostLocal(r *simrng.RNG, d *ReceiverDomain) string {
	local := randLocal(r)
	for d.Users[local] != nil {
		local = randLocal(r) + fmt.Sprintf("%d", r.IntN(99))
	}
	w.AssignGhostState(r, d.Name, local)
	return local
}

// AssignGhostState gives a non-existent freemail local part its
// registration-UI state (frozen/reserved/available) on first
// observation — the paper's "non-existent ≠ registrable" distribution
// (about two-thirds of no-such-user addresses are NOT registrable).
func (w *World) AssignGhostState(r *simrng.RNG, domain, local string) {
	ureg := w.UserRegs[domain]
	if ureg == nil {
		return
	}
	if ureg.State(local) == registrar.UserUnknown {
		switch {
		case r.Bool(0.52):
			ureg.SetState(local, registrar.UserFrozen)
		case r.Bool(0.18):
			ureg.SetState(local, registrar.UserReserved)
		}
	}
}

// buildGuessingSender creates a username-guessing attacker: thousands
// of mutated usernames aimed at one victim domain, a small fraction of
// which exist (paper: 4,273 guesses, 0.91% hits).
func (w *World) buildGuessingSender(r *simrng.RNG, sd *SenderDomain) *Sender {
	s := &Sender{
		Addr:           mail.Address{Local: "security-notice", Domain: sd.Name},
		Dom:            sd,
		Volume:         1,
		SpamminessMean: 0.78,
	}
	// Victim: a corporate (non-freemail) domain with a decent user pool
	// and informative NDRs (attackers probe domains where "no such
	// user" replies leak existence).
	var victim *ReceiverDomain
	for _, d := range w.Domains[len(wellKnown):] {
		if len(d.UserList) >= 20 && !d.Policy.AmbiguousNDR && !d.Policy.UsesDNSBL {
			victim = d
			break
		}
	}
	if victim == nil {
		victim = w.Domains[0]
	}
	n := w.Cfg.GuessUsernamesPerAttacker
	hits := maxInt(1, int(float64(n)*w.Cfg.GuessHitRate+0.5))
	seen := map[string]bool{}
	for i := 0; i < hits && i < len(victim.UserList); i++ {
		local := victim.UserList[r.IntN(len(victim.UserList))]
		if seen[local] {
			continue
		}
		seen[local] = true
		c := Contact{Addr: mail.Address{Local: local, Domain: victim.Name}, Weight: 1}
		s.Contacts = append(s.Contacts, c)
		s.FloodTargets = append(s.FloodTargets, c)
	}
	for len(s.Contacts) < n {
		base := victim.UserList[r.IntN(len(victim.UserList))]
		guess := mutateLocal(r, base)
		if seen[guess] || victim.Users[guess] != nil {
			guess += fmt.Sprintf("%d", r.IntN(99))
			if seen[guess] || victim.Users[guess] != nil {
				continue
			}
		}
		seen[guess] = true
		s.Contacts = append(s.Contacts, Contact{Addr: mail.Address{Local: guess, Domain: victim.Name}, Weight: 1})
	}
	weights := make([]float64, len(s.Contacts))
	for i := range weights {
		weights[i] = 1
	}
	s.contactSampler = simrng.NewWeighted(weights)
	return s
}

// buildBulkSpammer creates a leaked-list spammer: >80% of its contacts
// appear in the breach corpus, many of them long dead (the paper's
// 70.12% hard-bounce rate).
func (w *World) buildBulkSpammer(r *simrng.RNG, sd *SenderDomain) *Sender {
	s := &Sender{
		Addr:           mail.Address{Local: "offers", Domain: sd.Name},
		Dom:            sd,
		Volume:         1,
		SpamminessMean: 0.72,
	}
	n := 120 // leaked lists are recycled: each address gets hit repeatedly
	for i := 0; i < n; i++ {
		// Spam magnets: freemail domains dominate leaked lists.
		d := w.spamTargetDomain(r)
		var addr mail.Address
		if r.Bool(0.22) || len(d.UserList) == 0 {
			addr = mail.Address{Local: w.ghostLocal(r, d), Domain: d.Name} // dead leaked account
		} else {
			addr = mail.Address{Local: simrng.Pick(r, d.UserList), Domain: d.Name}
		}
		if r.Bool(0.92) {
			w.Breach.Add(addr.String())
		}
		s.Contacts = append(s.Contacts, Contact{Addr: addr, Weight: 1})
	}
	weights := make([]float64, len(s.Contacts))
	for i := range weights {
		weights[i] = 1
	}
	s.contactSampler = simrng.NewWeighted(weights)
	return s
}

// spamTargetDomain samples a domain weighted by volume times its
// spam-magnet factor.
func (w *World) spamTargetDomain(r *simrng.RNG) *ReceiverDomain {
	// Freemail providers take most spam; otherwise popularity-weighted.
	if r.Bool(0.6) {
		wk := wellKnown[r.IntN(len(wellKnown))]
		if wk.spamMagnet >= 1.5 {
			return w.DomainByName[wk.name]
		}
	}
	return w.Domains[w.domainIdx(r)]
}

func (w *World) buildDomainSampler() {
	dw := make([]float64, len(w.Domains))
	for i, d := range w.Domains {
		dw[i] = d.Weight
	}
	w.domainSampler = simrng.NewWeighted(dw)
}

func (w *World) buildSenderSampler() {
	sw := make([]float64, len(w.Senders))
	for i, s := range w.Senders {
		if s.Dom.Attacker != NotAttacker {
			sw[i] = 0 // attacker traffic is injected by campaigns, not base load
		} else {
			sw[i] = s.Volume
		}
	}
	w.senderSampler = simrng.NewWeighted(sw)
}

func (w *World) domainIdx(r *simrng.RNG) int { return w.domainSampler.Sample(r) }

// PickProxy selects a proxy MTA uniformly at random — Coremail's
// random-proxy strategy (Figure 2).
func (w *World) PickProxy(r *simrng.RNG) *ProxyMTA {
	return w.Proxies[r.IntN(len(w.Proxies))]
}

func isFreemail(name string) bool {
	for _, p := range FreemailProviders {
		if p == name {
			return true
		}
	}
	return false
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
