// Package world generates the synthetic email ecosystem the delivery
// engine runs against: Coremail's 34 proxy MTAs, receiver domains with
// their DNS zones, policies, users and misconfiguration schedules,
// sender domains with authentication records and attacker roles, and
// the per-day workload of email submissions. Nothing here stamps bounce
// outcomes — bounces happen later, when the delivery engine executes
// these mechanisms.
package world

// Config holds every generation knob. Counts are scaled down from the
// paper's 298M-email / 3M-domain corpus; all reported statistics are
// ratios and distributions, which survive scaling. The defaults are
// calibrated so the analysis pipeline reproduces the paper's shape
// (see EXPERIMENTS.md for paper-vs-measured).
type Config struct {
	Seed uint64

	// TotalEmails is the target number of email submissions across the
	// 15-month study window (paper: 298M).
	TotalEmails int

	// ReceiverDomains is the number of live receiver domains
	// (paper: 3M; the top 10 are the well-known domains of Table 3).
	ReceiverDomains int
	// DeadDomains is the number of expired domains real users still
	// write to (squatting exposure, Section 5).
	DeadDomains int
	// ZipfS is the popularity exponent of the InEmailRank tail.
	ZipfS float64
	// UsersPerDomainBase scales mailbox-pool sizes: the pool is
	// sqrt(share × TotalEmails) × base/20 (so the default 40 doubles the
	// square-root law; minimum 4, maximum 4000 per domain).
	UsersPerDomainBase int

	// SenderDomains is the number of Coremail customer domains
	// (paper: 68K). A few of them are attackers.
	SenderDomains int
	// SendersPerDomain is the mean number of active senders per domain.
	SendersPerDomain int
	// ContactsPerSender is the mean contact-list size.
	ContactsPerSender int

	// GuessingAttackers / BulkSpamAttackers are attacker sender-domain
	// counts (paper: 9 username-guessing domains, 31 bulk spammers).
	GuessingAttackers int
	BulkSpamAttackers int
	// GuessUsernamesPerAttacker scales the 4,273 generated usernames.
	GuessUsernamesPerAttacker int
	// GuessHitRate is the fraction of guessed usernames that exist
	// (paper: 0.91%).
	GuessHitRate float64
	// GuessFloodDays / GuessFloodPerHit: after a guessing campaign, the
	// attacker bombards discovered addresses (paper: 39 victims received
	// 536 malicious emails).
	GuessFloodDays   int
	GuessFloodPerHit int
	// BulkSpamEmailsShare is the fraction of TotalEmails sent by bulk
	// spammers (paper: 3M/298M ≈ 1%).
	BulkSpamEmailsShare float64

	// StaleContactRate is the probability a generated contact points at
	// a non-existent mailbox (old address books, unsubscribed users).
	StaleContactRate float64
	// UserTypoRate / DomainTypoRate are per-send typo probabilities
	// (paper: username typos cause 2M bounces ≈ 0.7% of emails; domain
	// typos 89K ≈ 0.03%).
	UserTypoRate   float64
	DomainTypoRate float64
	// ForwardingTypoSenders is the number of automated senders with a
	// persistent username typo in their configuration (the paper's five
	// typos that received >20K emails each).
	ForwardingTypoSenders int

	// DNSBL adoption (Figure 6): share of tail domains using the
	// blocklist, and the share of adopters who switch it on in
	// February 2023 (the paper's 63K-domain jump).
	DNSBLAdoptionRate     float64
	DNSBLFebAdoptersShare float64
	// SpamtrapHitProb is the chance a spam submission trips a spamtrap
	// report against its proxy MTA.
	SpamtrapHitProb float64

	// GreylistAdoptionRate applies to domains ranked 40-300
	// (paper: 783 domains, T6 = 2.63% of bounces).
	GreylistAdoptionRate float64
	// GreylistPrefixBits keys greylist tuples by client-IP prefix
	// (0 = exact address, the strictest and the paper's assumption;
	// 24 = /24, the common lenient deployment).
	GreylistPrefixBits int

	// TLSMandateTop100 / TLSMandateRest are the shares of domains that
	// mandate STARTTLS (paper: 38% of top-100, 8.53% of top-10K).
	TLSMandateTop100 float64
	TLSMandateRest   float64

	// AuthEnforceRate is the share of tail domains that reject on
	// SPF/DKIM/DMARC failure (big freemail providers always enforce).
	AuthEnforceRate float64
	// SenderAuthBreakRate is the share of sender domains that ever
	// misconfigure DKIM/SPF (paper: 9K of 68K).
	SenderAuthBreakRate float64
	// AuthAlwaysBrokenShare / AuthRecurrentShare split the
	// misconfiguring domains (paper: 25.81% always broken, 33.72%
	// recurrent, rest one-off). Episode duration is log-normal with
	// AuthFixMedianDays median (paper: 12-day average fix time).
	AuthAlwaysBrokenShare float64
	AuthRecurrentShare    float64
	AuthFixMedianDays     float64

	// SenderDNSOutageRate is the share of sender domains with DNS
	// outages (T1 bounces at the receiver).
	SenderDNSOutageRate float64

	// MXErrorRate is the share of receiver domains with MX
	// misconfiguration episodes (paper: 684 domains, 4M emails,
	// mostly fixed within a day).
	MXErrorRate      float64
	MXFixMedianHours float64
	// ChronicMXDomains is the number of mid-popularity domains whose MX
	// stays broken for months — the Figure-7 long tail that carries the
	// email-volume mass of T2 (the paper's 40+ domains broken >1 week).
	ChronicMXDomains int

	// MailboxFullRate is the share of mailboxes that ever fill up
	// (T9); ConsistentlyFullShare never recover inside the window
	// (paper: 58K of 75K), and the rest fix after a log-normal delay
	// with FullFixMedianDays median (paper: >51% of episodes ≥30 days,
	// 86-day average fix).
	MailboxFullRate       float64
	ConsistentlyFullShare float64
	FullFixMedianDays     float64

	// InactiveRate is the share of mailboxes that become inactive.
	InactiveRate float64

	// AmbiguousNDRRate is the share of tail domains that reply with the
	// Table-6 ambiguous templates (Microsoft properties always do).
	AmbiguousNDRRate float64

	// DomainLimitRate is the share of tail domains enforcing a daily
	// inbound quota (T11); QuirkDomainRate/QuirkProb give a small set of
	// domains idiosyncratic rejections (the paper's non-ambiguous T16:
	// RFC-compliance checks, intrusion prevention, etc.).
	DomainLimitRate float64
	QuirkDomainRate float64
	QuirkProb       float64

	// NewsletterShare of messages carry multiple recipients; spam share
	// etc. are emergent from sender spamminess mixes.
	NewsletterShare float64

	// MsgSizeMedianKB / MsgSizeSigma parameterize message sizes.
	MsgSizeMedianKB float64
	MsgSizeSigma    float64

	// TransientDNSFailProb is the resolver-level transient failure rate.
	TransientDNSFailProb float64
}

// DefaultConfig returns the calibrated default scale (~1/750 of the
// paper's corpus).
func DefaultConfig() Config {
	return Config{
		Seed:               42,
		TotalEmails:        400_000,
		ReceiverDomains:    700,
		DeadDomains:        36,
		ZipfS:              0.82,
		UsersPerDomainBase: 40,

		SenderDomains:     150,
		SendersPerDomain:  10,
		ContactsPerSender: 30,

		GuessingAttackers:         3,
		BulkSpamAttackers:         8,
		GuessUsernamesPerAttacker: 100,
		GuessHitRate:              0.0091,
		GuessFloodDays:            3,
		GuessFloodPerHit:          8,
		BulkSpamEmailsShare:       0.014,

		StaleContactRate:      0.0015,
		UserTypoRate:          0.0060,
		DomainTypoRate:        0.0006,
		ForwardingTypoSenders: 3,

		DNSBLAdoptionRate:     0.13,
		DNSBLFebAdoptersShare: 0.22,
		SpamtrapHitProb:       0, // 0 = auto-scale to TotalEmails

		GreylistAdoptionRate: 0.018,

		TLSMandateTop100: 0.38,
		TLSMandateRest:   0.085,

		AuthEnforceRate:       0.28,
		SenderAuthBreakRate:   0.12,
		AuthAlwaysBrokenShare: 0.2581,
		AuthRecurrentShare:    0.3372,
		AuthFixMedianDays:     11,

		SenderDNSOutageRate: 0.06,

		MXErrorRate:      0.10,
		MXFixMedianHours: 14,
		ChronicMXDomains: 6,

		MailboxFullRate:       0.0055,
		ConsistentlyFullShare: 0.70,
		FullFixMedianDays:     31,

		InactiveRate: 0.0015,

		AmbiguousNDRRate: 0.03,

		DomainLimitRate: 0.06,
		QuirkDomainRate: 0.15,
		QuirkProb:       0.07,

		NewsletterShare: 0.015,

		MsgSizeMedianKB: 60,
		MsgSizeSigma:    1.5,

		TransientDNSFailProb: 0.004,
	}
}

// TinyConfig returns a miniature world for unit tests and quick
// examples (a few thousand emails).
func TinyConfig() Config {
	c := DefaultConfig()
	c.TotalEmails = 6000
	c.ReceiverDomains = 60
	c.DeadDomains = 6
	c.SenderDomains = 25
	c.SendersPerDomain = 4
	c.ContactsPerSender = 12
	c.GuessingAttackers = 1
	c.BulkSpamAttackers = 2
	c.GuessUsernamesPerAttacker = 60
	c.ForwardingTypoSenders = 1
	c.UsersPerDomainBase = 12
	return c
}
