package clock

import (
	"testing"
	"time"
)

func TestStudyDaysMatchesWindow(t *testing.T) {
	got := int(StudyEnd.Sub(StudyStart).Hours()/24) + 1
	if got != StudyDays {
		t.Errorf("window spans %d days, StudyDays=%d", got, StudyDays)
	}
}

func TestDayClamping(t *testing.T) {
	if d := Day(StudyStart.Add(-time.Hour)); d != 0 {
		t.Errorf("before-window day = %d, want 0", d)
	}
	if d := Day(StudyEnd.AddDate(0, 0, 5)); d != StudyDays-1 {
		t.Errorf("after-window day = %d, want %d", d, StudyDays-1)
	}
	if d := Day(StudyStart); d != 0 {
		t.Errorf("Day(StudyStart) = %d", d)
	}
	if d := Day(StudyStart.AddDate(0, 0, 100).Add(13 * time.Hour)); d != 100 {
		t.Errorf("mid-window day = %d, want 100", d)
	}
}

// TestDayHourBoundaryExact pins the bucketing to integer Duration
// arithmetic: one nanosecond either side of a boundary deep in the
// window must land in different buckets. The old float64 .Hours()
// math lost ns precision past 2^53 ns (~day 104) and could put a
// time at boundary-1ns into the *next* bucket.
func TestDayHourBoundaryExact(t *testing.T) {
	for _, d := range []int{1, 103, 104, 200, 449} {
		edge := StudyStart.AddDate(0, 0, d)
		if got := Day(edge); got != d {
			t.Errorf("Day(day-%d midnight) = %d", d, got)
		}
		if got := Day(edge.Add(-time.Nanosecond)); got != d-1 {
			t.Errorf("Day(day-%d midnight - 1ns) = %d, want %d", d, got, d-1)
		}
	}
	for _, h := range []int{1, 2500, 2501, 5000, StudyHours - 1} {
		edge := StudyStart.Add(time.Duration(h) * time.Hour)
		if got := Hour(edge); got != h {
			t.Errorf("Hour(hour-%d edge) = %d", h, got)
		}
		if got := Hour(edge.Add(-time.Nanosecond)); got != h-1 {
			t.Errorf("Hour(hour-%d edge - 1ns) = %d, want %d", h, got, h-1)
		}
	}
}

func TestDayStartRoundTrip(t *testing.T) {
	for _, d := range []int{0, 1, 100, 250, StudyDays - 1} {
		if got := Day(DayStart(d)); got != d {
			t.Errorf("Day(DayStart(%d)) = %d", d, got)
		}
	}
}

func TestWeek(t *testing.T) {
	if w := Week(StudyStart); w != 0 {
		t.Errorf("first week = %d", w)
	}
	if w := Week(StudyStart.AddDate(0, 0, 13)); w != 1 {
		t.Errorf("day 13 week = %d, want 1", w)
	}
	if StudyWeeks != 65 {
		t.Errorf("StudyWeeks = %d, want 65 (450 days)", StudyWeeks)
	}
}

func TestMonthKey(t *testing.T) {
	if k := MonthKey(time.Date(2023, 1, 5, 0, 0, 0, 0, time.UTC)); k != "2023-01" {
		t.Errorf("MonthKey = %q", k)
	}
}

func TestIsWeekend(t *testing.T) {
	sat := time.Date(2022, 6, 18, 12, 0, 0, 0, time.UTC)
	mon := time.Date(2022, 6, 20, 12, 0, 0, 0, time.UTC)
	if !IsWeekend(sat) {
		t.Error("2022-06-18 is a Saturday")
	}
	if IsWeekend(mon) {
		t.Error("2022-06-20 is a Monday")
	}
}

func TestActivityFactorWeekendDip(t *testing.T) {
	// 2022-06-20 (Mon) is day 6; 2022-06-18 (Sat) is day 4.
	mon := ActivityFactor(6)
	sat := ActivityFactor(4)
	if sat >= mon {
		t.Errorf("weekend factor %g >= weekday factor %g", sat, mon)
	}
	if ratio := sat / mon; ratio < 0.3 || ratio > 0.5 {
		t.Errorf("weekend/weekday ratio %g, want ~0.4", ratio)
	}
}

func TestActivityFactorCNYSurge(t *testing.T) {
	// Compare a weekday ~1 week before CNY with a weekday in early
	// December (outside the surge), and a weekday inside the holiday
	// week with both.
	preCNY := Day(time.Date(2023, 1, 16, 0, 0, 0, 0, time.UTC))   // Monday
	baseline := Day(time.Date(2022, 12, 5, 0, 0, 0, 0, time.UTC)) // Monday
	holiday := Day(time.Date(2023, 1, 25, 0, 0, 0, 0, time.UTC))  // Wednesday
	if ActivityFactor(preCNY) <= ActivityFactor(baseline) {
		t.Errorf("pre-CNY %g not above baseline %g",
			ActivityFactor(preCNY), ActivityFactor(baseline))
	}
	if ActivityFactor(holiday) >= ActivityFactor(baseline)*0.6 {
		t.Errorf("holiday week %g not depressed vs baseline %g",
			ActivityFactor(holiday), ActivityFactor(baseline))
	}
}

func TestActivityFactorGrowth(t *testing.T) {
	// Same weekday one year apart, both outside CNY effects: later should
	// be higher (secular growth).
	early := Day(time.Date(2022, 7, 4, 0, 0, 0, 0, time.UTC))
	late := Day(time.Date(2023, 7, 3, 0, 0, 0, 0, time.UTC))
	if ActivityFactor(late) <= ActivityFactor(early) {
		t.Errorf("growth trend violated: %g <= %g", ActivityFactor(late), ActivityFactor(early))
	}
}

func TestHourOfDayWeightShape(t *testing.T) {
	if HourOfDayWeight(10) <= HourOfDayWeight(3) {
		t.Error("working hours should outweigh night")
	}
	for h := 0; h < 24; h++ {
		if HourOfDayWeight(h) <= 0 {
			t.Errorf("hour %d weight must be positive", h)
		}
	}
}
