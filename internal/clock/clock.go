// Package clock models the paper's 15-month study window
// (2022-06-14 through 2023-09-06) as virtual time. The workload generator
// uses its calendar helpers to reproduce the temporal shape of Figure 5:
// weekend dips, the surge ahead of Chinese New Year (2023-01-22), and a
// mild growth trend across the window.
package clock

import "time"

// Study window bounds, matching Section 3.1 of the paper.
var (
	StudyStart = time.Date(2022, 6, 14, 0, 0, 0, 0, time.UTC)
	StudyEnd   = time.Date(2023, 9, 6, 23, 59, 59, 0, time.UTC)
	// ChineseNewYear2023 drives the January 2023 delivery surge the paper
	// observes ("increased user work and company business ahead of the
	// Chinese New Year").
	ChineseNewYear2023 = time.Date(2023, 1, 22, 0, 0, 0, 0, time.UTC)
)

// StudyDays is the number of calendar days in the study window.
const StudyDays = 450

// Day returns the zero-based day index of t within the study window.
// Times before the window map to 0 and after to StudyDays-1. The
// bucketing is exact integer Duration division: float64 hours lose
// nanosecond precision past 2^53 ns (~104 days into the window), which
// would misbucket times within a few hundred nanoseconds of a day
// boundary — exactly where greylist retry-window edges land.
func Day(t time.Time) int {
	d := int(t.Sub(StudyStart) / (24 * time.Hour))
	if d < 0 {
		return 0
	}
	if d >= StudyDays {
		return StudyDays - 1
	}
	return d
}

// DayStart returns the midnight UTC time of study day d.
func DayStart(d int) time.Time { return StudyStart.AddDate(0, 0, d) }

// StudyHours is the number of hours in the study window.
const StudyHours = StudyDays * 24

// Hour returns the zero-based hour index of t within the study window,
// clamped and integer-exact like Day.
func Hour(t time.Time) int {
	h := int(t.Sub(StudyStart) / time.Hour)
	if h < 0 {
		return 0
	}
	if h >= StudyHours {
		return StudyHours - 1
	}
	return h
}

// Week returns the zero-based ISO-agnostic week index (blocks of 7 study
// days), used by the squatting timeline (Figure 9, 64 weeks).
func Week(t time.Time) int { return Day(t) / 7 }

// StudyWeeks is the number of 7-day blocks in the window (the paper's
// Figure 9 spans 64 full weeks).
const StudyWeeks = (StudyDays + 6) / 7

// MonthKey returns a sortable YYYY-MM key for t, used by the monthly
// volume line of Figure 5.
func MonthKey(t time.Time) string { return t.Format("2006-01") }

// IsWeekend reports whether t falls on Saturday or Sunday. The paper
// observes a "significant decrease in the number of email deliveries on
// Saturdays and Sundays".
func IsWeekend(t time.Time) bool {
	wd := t.Weekday()
	return wd == time.Saturday || wd == time.Sunday
}

// ActivityFactor returns the relative email-submission intensity for
// study day d (1.0 = baseline weekday). It composes:
//
//   - a weekend dip to ~40% of weekday volume,
//   - a pre-Chinese-New-Year surge peaking in the two weeks before
//     2023-01-22 and a quiet holiday week after it,
//   - a slow secular growth across the window.
func ActivityFactor(d int) float64 {
	t := DayStart(d)
	f := 1.0 + 0.25*float64(d)/float64(StudyDays) // secular growth
	if IsWeekend(t) {
		f *= 0.40
	}
	daysToCNY := int(ChineseNewYear2023.Sub(t).Hours() / 24)
	switch {
	case daysToCNY > 0 && daysToCNY <= 21:
		// Ramp up over the three weeks before the holiday.
		f *= 1.0 + 0.6*float64(21-daysToCNY)/21
	case daysToCNY <= 0 && daysToCNY > -7:
		// Holiday week: offices are closed.
		f *= 0.35
	}
	return f
}

// HourOfDayWeight returns the relative submission intensity for an hour
// of the (sender-local) day; senders are mostly Chinese staff and
// students, so volume concentrates in working hours.
func HourOfDayWeight(hour int) float64 {
	switch {
	case hour >= 9 && hour < 12:
		return 2.0
	case hour >= 14 && hour < 18:
		return 1.8
	case hour >= 12 && hour < 14:
		return 1.0
	case hour >= 19 && hour < 23:
		return 0.8
	case hour >= 7 && hour < 9:
		return 0.7
	default:
		return 0.15
	}
}
