// Package advise turns the paper's Section-6.2 recommendations into an
// advisory engine: given a classified corpus, it emits the concrete,
// evidence-backed actions the paper recommends to each audience — the
// sender ESP (monitor proxy reputation, honor greylisting), receiver
// ESPs (weigh blocklist collateral), domain managers (fix DKIM/SPF and
// MX records, consider protective registration), and users (clean full
// mailboxes, fix typo'd contacts, deactivate stale accounts).
package advise

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/analysis"
	"repro/internal/clock"
	"repro/internal/ndr"
	"repro/internal/squat"
	"repro/internal/stats"
)

// Audience is who an advisory targets (the paper's four audiences).
type Audience int

// Audiences.
const (
	Community Audience = iota
	SenderESP
	ReceiverESP
	DomainManager
	EmailUser
)

// String names the audience.
func (a Audience) String() string {
	switch a {
	case Community:
		return "email community"
	case SenderESP:
		return "sender ESP"
	case ReceiverESP:
		return "receiver ESP"
	case DomainManager:
		return "domain manager"
	case EmailUser:
		return "email user"
	}
	return "?"
}

// Severity grades an advisory.
type Severity int

// Severities.
const (
	Info Severity = iota
	Warning
	Critical
)

// String names the severity.
func (s Severity) String() string {
	switch s {
	case Info:
		return "INFO"
	case Warning:
		return "WARN"
	case Critical:
		return "CRIT"
	}
	return "?"
}

// Advisory is one actionable recommendation with its evidence.
type Advisory struct {
	Audience Audience
	Severity Severity
	Subject  string // the entity the advisory is about
	Action   string
	Evidence string
}

// Config tunes the rule thresholds.
type Config struct {
	// ProxyListedDutyWarn flags proxies blocklisted more than this share
	// of days (paper: five proxies exceeded 0.70).
	ProxyListedDutyWarn float64
	// BlocklistCollateralWarn flags the receiver-side blocklist when
	// more than this share of blocked mail was flagged Normal by the
	// sender (paper: 78.06%).
	BlocklistCollateralWarn float64
	// AuthEpisodeDaysCrit flags sender domains whose DKIM/SPF breakage
	// exceeded this many days (paper: 384 domains took >1 month).
	AuthEpisodeDaysCrit float64
	// FullMailboxDaysWarn flags recipients over quota at least this long
	// (paper: >51% of episodes exceed 30 days).
	FullMailboxDaysWarn float64
	// MaxPerRule bounds the advisories emitted per rule.
	MaxPerRule int
}

// DefaultConfig uses the paper's thresholds.
func DefaultConfig() Config {
	return Config{
		ProxyListedDutyWarn:     0.70,
		BlocklistCollateralWarn: 0.50,
		AuthEpisodeDaysCrit:     30,
		FullMailboxDaysWarn:     30,
		MaxPerRule:              10,
	}
}

// Run evaluates every rule over the corpus. det may be nil (recomputed)
// and sq may be nil (the squatting rules are skipped).
func Run(a *analysis.Analysis, det *analysis.Detections, sq *squat.Result, cfg Config) []Advisory {
	if cfg.MaxPerRule <= 0 {
		cfg = DefaultConfig()
	}
	if det == nil {
		det = a.Detect()
	}
	var out []Advisory
	out = append(out, communityRules(a)...)
	out = append(out, senderESPRules(a, cfg)...)
	out = append(out, receiverESPRules(a, cfg)...)
	out = append(out, domainManagerRules(a, det, cfg)...)
	out = append(out, userRules(a, det, cfg)...)
	if sq != nil {
		out = append(out, squattingRules(sq, cfg)...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Severity != out[j].Severity {
			return out[i].Severity > out[j].Severity
		}
		return out[i].Audience < out[j].Audience
	})
	return out
}

// communityRules: standardize NDR reporting (the paper's headline call).
func communityRules(a *analysis.Analysis) []Advisory {
	var out []Advisory
	noCode := a.NoEnhancedCodeShare()
	if noCode > 0.15 {
		out = append(out, Advisory{
			Audience: Community, Severity: Warning,
			Subject:  "NDR standardization",
			Action:   "standardize bounce templates and enhanced status code usage (IETF)",
			Evidence: fmt.Sprintf("%.1f%% of NDR lines carry no RFC 3463 enhanced status code", noCode*100),
		})
	}
	o := a.Overview()
	if o.AmbiguousBounced > 0 {
		out = append(out, Advisory{
			Audience: Community, Severity: Warning,
			Subject: "ambiguous NDR templates",
			Action:  "define informative templates for reception refusals",
			Evidence: fmt.Sprintf("%d bounced emails (%.1f%%) returned only ambiguous text like \"Access denied\"",
				o.AmbiguousBounced, stats.Pct(o.AmbiguousBounced, o.Bounced())),
		})
	}
	return out
}

// senderESPRules: reputation monitoring, greylist compliance, retry
// budget.
func senderESPRules(a *analysis.Analysis, cfg Config) []Advisory {
	var out []Advisory
	if a.Env != nil && a.Env.Blocklist != nil {
		for i, ip := range a.Env.ProxyIPs {
			days := 0
			for d := 0; d < clock.StudyDays; d++ {
				if a.Env.Blocklist.Listed(ip, clock.DayStart(d).Add(12*time.Hour)) {
					days++
				}
			}
			duty := float64(days) / clock.StudyDays
			if duty > cfg.ProxyListedDutyWarn && len(out) < cfg.MaxPerRule {
				out = append(out, Advisory{
					Audience: SenderESP, Severity: Critical,
					Subject:  fmt.Sprintf("proxy MTA %s", ip),
					Action:   "rotate or delist this proxy and audit the customers routed through it",
					Evidence: fmt.Sprintf("blocklisted on %.0f%% of days (proxy #%d)", duty*100, i),
				})
			}
		}
	}
	dist := a.TypeDistribution()
	o := a.Overview()
	bounced := o.Bounced() - o.AmbiguousBounced
	if t6 := dist[ndr.T6Greylisted]; t6 > 0 && stats.Pct(t6, bounced) > 1 {
		out = append(out, Advisory{
			Audience: SenderESP, Severity: Warning,
			Subject: "greylisting compliance",
			Action:  "retry greylisted deliveries from the same proxy MTA (tuple-preserving retry)",
			Evidence: fmt.Sprintf("%d emails (%.1f%% of bounces) deferred by greylisting; random-proxy retries violate the tuple",
				t6, stats.Pct(t6, bounced)),
		})
	}
	if o.SoftAvgAttempts > 0 && o.SoftAvgAttempts < 3 {
		out = append(out, Advisory{
			Audience: SenderESP, Severity: Info,
			Subject:  "retry budget",
			Action:   "make at least three delivery attempts before declaring failure",
			Evidence: fmt.Sprintf("soft-bounced emails recovered after %.1f attempts on average", o.SoftAvgAttempts),
		})
	}
	return out
}

// receiverESPRules: blocklist collateral.
func receiverESPRules(a *analysis.Analysis, cfg Config) []Advisory {
	var out []Advisory
	f := a.BlocklistFigure()
	if f.NormalShare > cfg.BlocklistCollateralWarn {
		out = append(out, Advisory{
			Audience: ReceiverESP, Severity: Critical,
			Subject:  "DNSBL collateral damage",
			Action:   "weigh blocklist verdicts against the host's historical delivery behavior",
			Evidence: fmt.Sprintf("%.1f%% of blocklist-rejected emails were flagged Normal by the sender ESP", f.NormalShare*100),
		})
	}
	return out
}

// domainManagerRules: auth and MX episodes.
func domainManagerRules(a *analysis.Analysis, det *analysis.Detections, cfg Config) []Advisory {
	var out []Advisory
	fig := a.Durations(det)
	if fig.AuthDKIMSPF.Entities > 0 {
		mean := fig.AuthDKIMSPF.MeanDays()
		sev := Warning
		if mean > cfg.AuthEpisodeDaysCrit {
			sev = Critical
		}
		out = append(out, Advisory{
			Audience: DomainManager, Severity: sev,
			Subject: "DKIM/SPF records",
			Action:  "monitor authentication records continuously; bulk-sender mandates (Gmail/Yahoo 2024) reject on failure",
			Evidence: fmt.Sprintf("%d sender domains had auth episodes; mean fix time %.1f days, %d never fixed",
				fig.AuthDKIMSPF.Entities, mean, fig.AuthDKIMSPF.AlwaysBroken),
		})
	}
	if fig.MXRecords.Entities > 0 {
		slow := int(float64(len(fig.MXRecords.Durations)) * fig.MXRecords.ShareAtLeast(7))
		if slow > 0 {
			out = append(out, Advisory{
				Audience: DomainManager, Severity: Warning,
				Subject:  "MX records",
				Action:   "alert on resolution failures of your own MX records",
				Evidence: fmt.Sprintf("%d MX-error episodes lasted over a week", slow),
			})
		}
	}
	return out
}

// userRules: full mailboxes, inactive accounts, typo'd contacts.
func userRules(a *analysis.Analysis, det *analysis.Detections, cfg Config) []Advisory {
	var out []Advisory
	fig := a.Durations(det)
	if n := fig.MailboxFull.Entities; n > 0 {
		longShare := fig.MailboxFull.ShareAtLeast(cfg.FullMailboxDaysWarn)
		out = append(out, Advisory{
			Audience: EmailUser, Severity: Warning,
			Subject: "full mailboxes",
			Action:  "remind users out-of-band (e.g. SMS) to clean up over-quota mailboxes",
			Evidence: fmt.Sprintf("%d mailboxes hit quota; %.0f%% of recoveries took ≥%.0f days (%d never recovered)",
				n, longShare*100, cfg.FullMailboxDaysWarn, fig.MailboxFull.AlwaysBroken),
		})
	}
	if n := len(det.InactiveAddrs); n > 0 {
		out = append(out, Advisory{
			Audience: EmailUser, Severity: Info,
			Subject:  "inactive accounts",
			Action:   "reactivate or properly deactivate unused accounts; providers should recycle them",
			Evidence: fmt.Sprintf("%d recipient addresses bounced as inactive", n),
		})
	}
	if n := len(det.UsernameTypos); n > 0 {
		out = append(out, Advisory{
			Audience: EmailUser, Severity: Warning,
			Subject:  "typo'd contacts",
			Action:   "notify the senders of verified typo'd recipients (the paper's 672-user notification)",
			Evidence: fmt.Sprintf("%d recipient addresses verified as typos of working contacts", n),
		})
	}
	return out
}

// squattingRules: protective registration.
func squattingRules(sq *squat.Result, cfg Config) []Advisory {
	var out []Advisory
	if sq.VulnerableCount > 0 {
		out = append(out, Advisory{
			Audience: DomainManager, Severity: Critical,
			Subject: "vulnerable domains",
			Action:  "protectively register the most-mailed registrable domains (the paper registered 30)",
			Evidence: fmt.Sprintf("%d registrable domains received %d emails from %d senders",
				sq.VulnerableCount, sq.DomainEmails, sq.DomainSenders),
		})
	}
	if sq.RegistrantChanged > 0 {
		out = append(out, Advisory{
			Audience: DomainManager, Severity: Critical,
			Subject:  "re-registered domains",
			Action:   "audit mail still flowing to domains re-registered by new owners",
			Evidence: fmt.Sprintf("%d previously-vulnerable domains now belong to a different registrant", sq.RegistrantChanged),
		})
	}
	if sq.RegistrableCount > 0 {
		out = append(out, Advisory{
			Audience: ReceiverESP, Severity: Warning,
			Subject: "recyclable usernames",
			Action:  "tighten username re-registration for addresses still receiving mail",
			Evidence: fmt.Sprintf("%d of %d probed non-existent usernames are registrable; %d previously received mail",
				sq.RegistrableCount, sq.ProbedUsernames, sq.PastWorking),
		})
	}
	return out
}

// ProtectivePlan selects the top-n vulnerable domains for protective
// registration, the paper's Section-5.2 intervention ("we registered 30
// domain names with the highest number of email receipts").
func ProtectivePlan(sq *squat.Result, n int) []squat.DomainFinding {
	plan := append([]squat.DomainFinding(nil), sq.VulnerableDomains...)
	sort.SliceStable(plan, func(i, j int) bool { return plan[i].Emails > plan[j].Emails })
	if n < len(plan) {
		plan = plan[:n]
	}
	return plan
}

// Notification is one scheduled risk-notification email (the paper's
// protective outreach: "we send emails at a rate of one per minute and
// only send one email per user").
type Notification struct {
	To      string
	Subject string
	SendAt  time.Time
}

// NotificationPlan schedules one notification per distinct sender that
// mailed a vulnerable domain or username, rate-limited to one per
// minute starting at start.
func NotificationPlan(a *analysis.Analysis, sq *squat.Result, start time.Time) []Notification {
	vulnDomains := map[string]bool{}
	for _, f := range sq.VulnerableDomains {
		vulnDomains[f.Domain] = true
	}
	vulnUsers := map[string]bool{}
	for _, f := range sq.VulnerableUsernames {
		vulnUsers[f.Address] = true
	}
	seen := map[string]bool{}
	var order []string
	reason := map[string]string{}
	for i := 0; i < a.Records.Len(); i++ {
		rec := a.Records.At(i)
		var subj string
		switch {
		case vulnDomains[rec.ToDomain()]:
			subj = "the domain " + rec.ToDomain() + " you email is registrable by squatters"
		case vulnUsers[rec.To]:
			subj = "the address " + rec.To + " you email is registrable by squatters"
		default:
			continue
		}
		if !seen[rec.From] {
			seen[rec.From] = true
			order = append(order, rec.From)
			reason[rec.From] = subj
		}
	}
	sort.Strings(order)
	out := make([]Notification, len(order))
	for i, sender := range order {
		out[i] = Notification{
			To:      sender,
			Subject: reason[sender],
			SendAt:  start.Add(time.Duration(i) * time.Minute),
		}
	}
	return out
}
