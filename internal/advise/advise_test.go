package advise

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/clock"
	"repro/internal/dataset"
	"repro/internal/dnsbl"
	"repro/internal/ndr"
	"repro/internal/simrng"
	"repro/internal/squat"
)

func day(d int) time.Time { return clock.StudyStart.AddDate(0, 0, d).Add(10 * time.Hour) }

func rec(from, to string, at time.Time, results ...string) dataset.Record {
	r := dataset.Record{From: from, To: to, StartTime: at, EndTime: at.Add(time.Minute), EmailFlag: "Normal"}
	for range results {
		r.FromIP = append(r.FromIP, "5.0.0.1")
		r.ToIP = append(r.ToIP, "20.0.0.1")
		r.DeliveryLatency = append(r.DeliveryLatency, 5000)
	}
	r.DeliveryResult = results
	return r
}

func tpl(t ndr.Type, addr string) string {
	idx := ndr.NonAmbiguousTemplatesFor(t)[0]
	return ndr.Catalog[idx].Render(ndr.Params{
		Addr: addr, Local: addr, Domain: "x.com", IP: "5.0.0.1",
		MX: "mx1.x.com", BL: "Spamhaus", Vendor: "v", Sec: "60", Size: "1",
	})
}

// corpus exhibits every misbehavior the advisory rules fire on.
func corpus() []dataset.Record {
	var out []dataset.Record
	for i := 0; i < 150; i++ {
		out = append(out, rec("a@s.com", fmt.Sprintf("u%d@x.com", i%20), day(i%300), "250 OK"))
	}
	// Greylist deferrals (>1% of bounces).
	for i := 0; i < 40; i++ {
		out = append(out, rec("a@s.com", "g@x.com", day(i*3), tpl(ndr.T6Greylisted, "g@x.com"), "250 OK"))
	}
	// Blocklist hits on Normal mail.
	for i := 0; i < 40; i++ {
		out = append(out, rec("a@s.com", "b@x.com", day(i*3), tpl(ndr.T5Blocklisted, "b@x.com"), "250 OK"))
	}
	// Full mailbox that never recovers.
	for i := 0; i < 25; i++ {
		out = append(out, rec("a@s.com", "full@x.com", day(i*10), tpl(ndr.T9MailboxFull, "full@x.com")))
	}
	// Auth failures for a sender domain that recovers after 60 days.
	for i := 0; i < 20; i++ {
		out = append(out, rec("m@broken.com", "u0@x.com", day(i*3), tpl(ndr.T3AuthFail, "u0@x.com")))
	}
	out = append(out, rec("m@broken.com", "u0@x.com", day(62), "250 OK"))
	// Inactive recipient.
	inactiveTpl := ""
	for _, i := range ndr.TemplatesFor(ndr.T8NoSuchUser) {
		if strings.Contains(ndr.Catalog[i].Text, "inactive") {
			inactiveTpl = ndr.Catalog[i].Render(ndr.Params{Addr: "gone@x.com", Vendor: "v"})
		}
	}
	for i := 0; i < 10; i++ {
		out = append(out, rec("a@s.com", "gone@x.com", day(100+i), inactiveTpl))
	}
	return out
}

func env() *analysis.Environment {
	bl := dnsbl.New(dnsbl.Config{ReportThreshold: 1, DelistMeanHours: 24 * 400}, simrng.New(1))
	bl.ReportSpam("9.9.9.9", clock.StudyStart) // listed essentially forever
	return &analysis.Environment{
		Blocklist: bl,
		ProxyIPs:  []string{"9.9.9.9", "8.8.8.8"},
	}
}

func TestRulesFire(t *testing.T) {
	a := analysis.New(corpus(), env())
	advs := Run(a, nil, nil, DefaultConfig())
	bySubject := map[string]Advisory{}
	for _, adv := range advs {
		bySubject[adv.Subject] = adv
	}
	for _, want := range []string{
		"NDR standardization", "greylisting compliance", "retry budget",
		"DNSBL collateral damage", "DKIM/SPF records", "full mailboxes",
		"inactive accounts", "proxy MTA 9.9.9.9",
	} {
		if _, ok := bySubject[want]; !ok {
			subjects := make([]string, 0, len(bySubject))
			for s := range bySubject {
				subjects = append(subjects, s)
			}
			t.Errorf("advisory %q missing (have %v)", want, subjects)
		}
	}
	// The healthy proxy must NOT be flagged.
	if _, ok := bySubject["proxy MTA 8.8.8.8"]; ok {
		t.Error("healthy proxy flagged")
	}
	// DKIM/SPF episode mean 62 days > 30 => critical.
	if adv := bySubject["DKIM/SPF records"]; adv.Severity != Critical {
		t.Errorf("auth advisory severity %v want Critical (%s)", adv.Severity, adv.Evidence)
	}
}

func TestAdvisoriesSortedBySeverity(t *testing.T) {
	a := analysis.New(corpus(), env())
	advs := Run(a, nil, nil, DefaultConfig())
	for i := 1; i < len(advs); i++ {
		if advs[i].Severity > advs[i-1].Severity {
			t.Fatalf("advisories not sorted by severity at %d", i)
		}
	}
}

func TestSquattingRules(t *testing.T) {
	sq := &squat.Result{
		VulnerableCount: 12, DomainEmails: 300, DomainSenders: 40,
		RegistrantChanged: 2,
		ProbedUsernames:   30, RegistrableCount: 11, PastWorking: 1,
		VulnerableDomains: []squat.DomainFinding{
			{Domain: "low.com", Emails: 5},
			{Domain: "high.com", Emails: 90},
			{Domain: "mid.com", Emails: 40},
		},
	}
	a := analysis.New(corpus(), nil)
	advs := Run(a, nil, sq, DefaultConfig())
	found := 0
	for _, adv := range advs {
		switch adv.Subject {
		case "vulnerable domains", "re-registered domains", "recyclable usernames":
			found++
			if adv.Severity == Info {
				t.Errorf("%s should not be Info", adv.Subject)
			}
		}
	}
	if found != 3 {
		t.Errorf("squatting advisories: %d want 3", found)
	}

	plan := ProtectivePlan(sq, 2)
	if len(plan) != 2 || plan[0].Domain != "high.com" || plan[1].Domain != "mid.com" {
		t.Errorf("protective plan: %+v", plan)
	}
}

func TestCleanCorpusFewAdvisories(t *testing.T) {
	var clean []dataset.Record
	for i := 0; i < 100; i++ {
		clean = append(clean, rec("a@s.com", fmt.Sprintf("u%d@x.com", i%10), day(i), "250 2.0.0 OK"))
	}
	// Pipeline needs some NDR text to train; give it a handful of
	// recoveries that do not trip any threshold.
	for i := 0; i < 4; i++ {
		clean = append(clean, rec("a@s.com", "t@x.com", day(i*50), tpl(ndr.T14Timeout, "t@x.com"), "250 OK"))
	}
	a := analysis.New(clean, nil)
	advs := Run(a, nil, nil, DefaultConfig())
	for _, adv := range advs {
		if adv.Severity == Critical {
			t.Errorf("clean corpus produced critical advisory: %+v", adv)
		}
	}
}

func TestStringers(t *testing.T) {
	if Community.String() == "?" || EmailUser.String() == "?" || Audience(99).String() != "?" {
		t.Error("Audience.String")
	}
	if Info.String() != "INFO" || Critical.String() != "CRIT" || Severity(9).String() != "?" {
		t.Error("Severity.String")
	}
}

func TestNotificationPlan(t *testing.T) {
	records := []dataset.Record{
		rec("s1@a.com", "u@dead.com", day(1), tpl(ndr.T2ReceiverDNS, "u@dead.com")),
		rec("s2@a.com", "u@dead.com", day(2), tpl(ndr.T2ReceiverDNS, "u@dead.com")),
		rec("s1@a.com", "u@dead.com", day(3), tpl(ndr.T2ReceiverDNS, "u@dead.com")), // duplicate sender
		rec("s3@a.com", "ghost@free.com", day(4), tpl(ndr.T8NoSuchUser, "ghost@free.com")),
		rec("s4@a.com", "other@ok.com", day(5), "250 OK"),
	}
	// Pipeline needs some corpus: append the shared one.
	records = append(records, corpus()...)
	a := analysis.New(records, nil)
	sq := &squat.Result{
		VulnerableDomains:   []squat.DomainFinding{{Domain: "dead.com"}},
		VulnerableUsernames: []squat.UsernameFinding{{Address: "ghost@free.com"}},
	}
	start := time.Date(2023, 10, 1, 9, 0, 0, 0, time.UTC)
	plan := NotificationPlan(a, sq, start)
	if len(plan) != 3 {
		t.Fatalf("plan size %d want 3 (one per distinct sender): %+v", len(plan), plan)
	}
	// One email per minute, one per user.
	seen := map[string]bool{}
	for i, n := range plan {
		if seen[n.To] {
			t.Errorf("duplicate notification to %s", n.To)
		}
		seen[n.To] = true
		if want := start.Add(time.Duration(i) * time.Minute); !n.SendAt.Equal(want) {
			t.Errorf("notification %d at %v want %v", i, n.SendAt, want)
		}
		if n.Subject == "" {
			t.Error("empty subject")
		}
	}
}
